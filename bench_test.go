// Package pride's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's experiment index), plus
// ablation benchmarks for the design choices Section IV/VIII discusses.
//
// Each benchmark regenerates its experiment end-to-end and reports the
// headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a one-shot reproduction run. Paper-scale fidelity knobs live in
// the cmd/ tools; benchmarks use reduced iteration counts with identical
// code paths.
package pride_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"pride/internal/addrmap"
	"pride/internal/analytic"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/energy"
	"pride/internal/fuzz"
	"pride/internal/montecarlo"
	"pride/internal/patterns"
	"pride/internal/perfsim"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trace"
	"pride/internal/tracker"
	"pride/internal/workload"
)

// BenchmarkTable1Params derives the Table I quantities (W, ACTs per tREFW).
func BenchmarkTable1Params(b *testing.B) {
	p := dram.DDR5()
	acts := 0
	for i := 0; i < b.N; i++ {
		acts = p.ACTsPerTREFI()
	}
	b.ReportMetric(float64(acts), "ACTs/tREFI")
}

// BenchmarkFig8LossVsPosition runs the single-entry per-position Monte-Carlo
// (paper: 100M periods; bench: 50K per iteration) and reports the worst
// (position-1) loss probability, which the paper pins at 0.63.
func BenchmarkFig8LossVsPosition(b *testing.B) {
	w := dram.DDR5().ACTsPerTREFI()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		res := montecarlo.SimulateLoss(montecarlo.LossConfig{
			Entries: 1, Window: w, InsertionProb: 1 / float64(w), Periods: 50_000,
		}, rng.New(uint64(i)))
		worst = res.PerPosition[0].LossProb()
	}
	b.ReportMetric(worst, "loss@K=1")
}

// BenchmarkTable3LossProb runs the exact multi-entry loss model for every
// buffer size of Table III and reports the N=4 loss (paper: 0.119).
func BenchmarkTable3LossProb(b *testing.B) {
	w := dram.DDR5().ACTsPerTREFI()
	l4 := 0.0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4, 8, 16} {
			l := analytic.LossProbability(n, w, 1/float64(w))
			if n == 4 {
				l4 = l
			}
		}
	}
	b.ReportMetric(l4, "loss(N=4)")
}

// BenchmarkFig9TRHvsSize sweeps buffer sizes 1..16 and reports the minimum
// TRH* (paper: ~3.78K at N=4-5).
func BenchmarkFig9TRHvsSize(b *testing.B) {
	p := dram.DDR5()
	w := p.ACTsPerTREFI()
	best := 0.0
	for i := 0; i < b.N; i++ {
		best = 1e18
		for n := 1; n <= 16; n++ {
			r := analytic.Analyze("PrIDE", n, w, 1/float64(w), p.TREFI, analytic.DefaultTargetTTFYears)
			if r.TRHStar < best {
				best = r.TRHStar
			}
		}
	}
	b.ReportMetric(best, "minTRH*")
}

// BenchmarkTable4PARA evaluates the PARA-DRFM comparison and reports
// PARA-DRFM's TRH* (paper: 17K).
func BenchmarkTable4PARA(b *testing.B) {
	p := dram.DDR5()
	trh := 0.0
	for i := 0; i < b.N; i++ {
		trh = analytic.EvaluateScheme(analytic.SchemePARADRFM, p, analytic.DefaultTargetTTFYears).TRHStar
		analytic.EvaluateScheme(analytic.SchemePARADRFMPlus, p, analytic.DefaultTargetTTFYears)
		analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	}
	b.ReportMetric(trh, "PARA-DRFM-TRH*")
}

// BenchmarkTable5RFM evaluates every mitigation rate of Table V and reports
// PrIDE+RFM16's TRH* (paper: 823).
func BenchmarkTable5RFM(b *testing.B) {
	p := dram.DDR5()
	trh := 0.0
	for i := 0; i < b.N; i++ {
		for _, s := range []analytic.Scheme{analytic.SchemePrIDEHalfRate, analytic.SchemePrIDE,
			analytic.SchemePrIDERFM40, analytic.SchemePrIDERFM16} {
			r := analytic.EvaluateScheme(s, p, analytic.DefaultTargetTTFYears)
			if s == analytic.SchemePrIDERFM16 {
				trh = r.TRHStar
			}
		}
	}
	b.ReportMetric(trh, "RFM16-TRH*")
}

// BenchmarkTable6DoubleSided reports PrIDE's double-sided threshold
// (paper: 1.92K).
func BenchmarkTable6DoubleSided(b *testing.B) {
	p := dram.DDR5()
	trhd := 0.0
	for i := 0; i < b.N; i++ {
		trhd = analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears).TRHDoubleSided()
	}
	b.ReportMetric(trhd, "TRH-D*")
}

// BenchmarkTable8TTF computes the Target-TTF sensitivity sweep.
func BenchmarkTable8TTF(b *testing.B) {
	p := dram.DDR5()
	var rows []analytic.SensitivityRow
	for i := 0; i < b.N; i++ {
		rows = analytic.TTFSensitivity(p, []float64{100, 1_000, 10_000, 100_000, 1_000_000})
	}
	b.ReportMetric(rows[2].TRHSingle, "TRH-S*@10Ky")
}

// BenchmarkTable9DeviceTTF computes the device-threshold TTF table and
// reports PrIDE's system TTF at TRH-D=2000 in years (paper: 2936).
func BenchmarkTable9DeviceTTF(b *testing.B) {
	p := dram.DDR5()
	years := 0.0
	thresholds := []int{4800, 2000, 1800, 1600, 1400, 1200, 1000, 800, 600, 400, 200}
	schemes := []analytic.Scheme{analytic.SchemePrIDE, analytic.SchemePrIDERFM40, analytic.SchemePrIDERFM16}
	for i := 0; i < b.N; i++ {
		rows := analytic.DeviceTTFTable(p, thresholds, schemes)
		years = rows[1].TTFYears["PrIDE"]
	}
	b.ReportMetric(years, "TTF@2000-years")
}

// BenchmarkTable10Energy computes the Table X energy rows and reports the
// RFM16 total factor (paper: ~1.02-1.04x).
func BenchmarkTable10Energy(b *testing.B) {
	m := energy.DefaultModel()
	total := 0.0
	for i := 0; i < b.N; i++ {
		rows := energy.TableX(m)
		total = rows[2].TotalFactor
	}
	b.ReportMetric(total, "RFM16-energy-x")
}

// BenchmarkTable11SRAM computes the storage comparison and reports PrIDE's
// bytes (paper: 10).
func BenchmarkTable11SRAM(b *testing.B) {
	bytes := 0.0
	for i := 0; i < b.N; i++ {
		rows := analytic.SRAMOverheadTable([]int{4000, 400}, 84)
		bytes = rows[len(rows)-1].Bytes[400]
	}
	b.ReportMetric(bytes, "PrIDE-bytes")
}

// BenchmarkTable12SaroiuWolman runs both reliability models across buffer
// sizes and reports the N=4 divergence in TRH (paper: ~10).
func BenchmarkTable12SaroiuWolman(b *testing.B) {
	p := dram.DDR5()
	diff := 0.0
	for i := 0; i < b.N; i++ {
		rows := analytic.SaroiuWolmanTable(p, []int{1, 2, 4, 8, 16}, analytic.DefaultTargetTTFYears)
		diff = rows[3].OurTRH - rows[3].SWTRH
	}
	b.ReportMetric(diff, "model-delta@N=4")
}

// BenchmarkFig14Performance runs the perf model across all 34 workloads and
// reports the RFM16 geometric-mean slowdown (paper: ~1.6%).
func BenchmarkFig14Performance(b *testing.B) {
	cfg := perfsim.DefaultConfig()
	specs := workload.All()
	slow := 0.0
	for i := 0; i < b.N; i++ {
		rows := perfsim.Fig14(cfg, specs, 4_000, uint64(i))
		slow = 1 - perfsim.GeoMean(rows, "PrIDE+RFM16")
	}
	b.ReportMetric(slow*100, "RFM16-slowdown-%")
}

// BenchmarkFig15MaxDisturbance runs a reduced Fig 15 suite against PrIDE and
// reports its worst disturbance (paper: ~1.3K; must stay under TRH*=3.83K).
func BenchmarkFig15MaxDisturbance(b *testing.B) {
	p := dram.DDR5()
	p.RowsPerBank = 8192
	p.RowBits = 13
	suite := patterns.Fig15Suite(p.RowsPerBank, 8, 1)
	cfg := sim.AttackConfig{Params: p, ACTs: 100_000}
	worst := 0
	for i := 0; i < b.N; i++ {
		res := sim.MaxDisturbanceOverSuite(cfg, sim.PrIDEScheme(), suite, 1, uint64(i))
		worst = res.MaxDisturbance
	}
	b.ReportMetric(float64(worst), "PrIDE-maxDist")
}

// BenchmarkFig18LossValidation measures pattern loss against the model over
// a reduced Fig 18 suite and reports the worst measured/model ratio
// (Appendix C: must stay at or below ~1).
func BenchmarkFig18LossValidation(b *testing.B) {
	w := dram.DDR5().ACTsPerTREFI()
	model := analytic.LossProbability(4, w, 1/float64(w))
	suite := patterns.Fig18Suite(8192, 300, 2)
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		worst := 0.0
		for _, pat := range suite {
			m := sim.MeasurePatternLoss(4, w, pat, 400_000, uint64(i))
			// Compare only well-sampled rows: a max over rows with a
			// handful of resolutions is an order statistic, not a loss
			// estimate (see cmd/pride-attack's Fig 18 handling).
			for _, row := range m.Rows {
				if row.Evicted+row.Mitigated < 150 {
					continue
				}
				if l := row.LossProb(); l > worst {
					worst = l
				}
			}
		}
		ratio = worst / model
	}
	b.ReportMetric(ratio, "measured/model")
}

// lossEngine10M is the acceptance workload for the parallel trial runner: a
// fixed-seed 10M-period single-entry loss run (1/10th of the paper's Fig 8
// budget).
var lossEngine10M = montecarlo.LossConfig{
	Entries: 1, Window: 79, InsertionProb: 1.0 / 79, Periods: 10_000_000,
}

// BenchmarkLossEngine compares the sharded Monte-Carlo loss engine across
// worker counts on the fixed-seed 10M-period run. Every variant asserts its
// merged result is bit-identical to the serial (workers=1) reference, so the
// speedup numbers are for provably the same computation. On an idle machine
// with >= 8 cores the workers=8 case should run >= 3x faster than workers=1:
//
//	go test -bench=LossEngine -benchtime=1x
func BenchmarkLossEngine(b *testing.B) {
	const seed = 1
	reference := montecarlo.SimulateLossParallel(lossEngine10M, seed, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				res := montecarlo.SimulateLossParallel(lossEngine10M, seed, workers)
				if !reflect.DeepEqual(res, reference) {
					b.Fatalf("workers=%d merged output differs from serial", workers)
				}
				worst = res.WorstLoss()
			}
			b.ReportMetric(worst, "worstLoss")
		})
	}
}

// BenchmarkAttackSuiteEngine compares the parallel attack-suite runner
// against its own serial (workers=1) execution on a reduced Fig 15 workload,
// asserting worker-count invariance of the merged result.
func BenchmarkAttackSuiteEngine(b *testing.B) {
	p := dram.DDR5()
	p.RowsPerBank = 8192
	p.RowBits = 13
	suite := patterns.Fig15Suite(p.RowsPerBank, 8, 1)
	cfg := sim.AttackConfig{Params: p, ACTs: 100_000}
	reference := sim.MaxDisturbanceOverSuiteParallel(cfg, sim.PrIDEScheme(), suite, 2, 1, 1)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sim.MaxDisturbanceOverSuiteParallel(cfg, sim.PrIDEScheme(), suite, 2, 1, workers)
				if res != reference {
					b.Fatalf("workers=%d merged output differs from serial", workers)
				}
			}
			b.ReportMetric(float64(reference.MaxDisturbance), "maxDist")
		})
	}
}

// serverReplayWorkload builds the fixed server-scale replay input: a
// 64-shard topology (4 channels x 2 ranks x 8 banks) and 400K lbm-calibrated
// trace records.
func serverReplayWorkload(b *testing.B) (*system.Topology, addrmap.Mapping, []uint64) {
	b.Helper()
	m := addrmap.Mapping{ColumnBits: 4, BankBits: 3, RowBits: 12, RankBits: 1, ChannelBits: 2, XORBankHash: true}
	addrs, err := trace.Drain(workload.NewAddrSource(workload.SPEC2017()[1], m, 400_000, 7), nil)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := system.NewTopology(system.TopologyConfig{
		Params:  dram.DDR5(),
		Mapping: m,
		Scheme:  sim.PrIDEScheme(),
		TRH:     1000,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return topo, m, addrs
}

// BenchmarkServerReplay compares the sharded trace-replay campaign across
// worker counts on a fixed 400K-record server-scale input. Every variant
// asserts its merged result is bit-identical to the serial (workers=1)
// reference, so the speedup numbers are for provably the same computation. On
// an idle machine with >= 8 cores the workers=8 case should run >= 3x faster
// than workers=1:
//
//	go test -bench=ServerReplay -benchtime=1x
func BenchmarkServerReplay(b *testing.B) {
	topo, m, addrs := serverReplayWorkload(b)
	reference, err := topo.Replay(trace.NewSliceSource(m, addrs))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := topo.ReplayCampaign(context.Background(), trace.NewSliceSource(m, addrs),
					system.ReplayOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(res, reference) {
					b.Fatalf("workers=%d merged output differs from serial", workers)
				}
			}
			b.ReportMetric(float64(reference.TotalFlips()), "flips")
		})
	}
}

// BenchmarkTraceDecode measures the streaming binary-trace decoder in MB/s
// (the b.SetBytes rate): one op decodes the whole encoded stream through a
// reused Reader (Reset) and record batch, so the steady-state decode path
// allocates nothing at all.
func BenchmarkTraceDecode(b *testing.B) {
	_, m, addrs := serverReplayWorkload(b)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, m, addrs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	br := bytes.NewReader(data)
	r, err := trace.NewReader(br)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]uint64, 4096)
	var sink uint64
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(data)
		if err := r.Reset(br); err != nil {
			b.Fatal(err)
		}
		for {
			n, err := r.ReadBatch(batch)
			for _, a := range batch[:n] {
				sink += a
			}
			if err != nil {
				break
			}
		}
	}
	if sink == 0 {
		b.Fatal("decoded stream summed to zero")
	}
}

// BenchmarkAblationEviction compares the loss probability of PrIDE's
// FIFO/FIFO policies against the PROTEAS-style Random/Random ablation
// (Section VIII) and reports the penalty ratio.
func BenchmarkAblationEviction(b *testing.B) {
	w := dram.DDR5().ACTsPerTREFI()
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		fifo := analytic.LossProbability(4, w, 1/float64(w))
		rr := analytic.RandomRandomLoss(4, w, 1/float64(w))
		ratio = rr / fifo
	}
	b.ReportMetric(ratio, "random/fifo-loss")
}

// BenchmarkAblationInsertionRequirements measures how badly violating
// requirement R1 (always insert into invalid entries) inflates evictions —
// the Section IV-B rationale — under a uniform stream.
func BenchmarkAblationInsertionRequirements(b *testing.B) {
	w := dram.DDR5().ACTsPerTREFI()
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		secure := core.DefaultConfig(w)
		insecure := core.DefaultConfig(w)
		insecure.InsecureAlwaysInsertIfInvalid = true
		var ev [2]uint64
		for v, cfg := range []core.Config{secure, insecure} {
			trk := core.New(cfg, rng.New(uint64(i)))
			for a := 0; a < 50_000; a++ {
				trk.OnActivate(a % 997)
				if a%w == w-1 {
					trk.OnMitigate()
				}
			}
			ev[v] = trk.Stats().Evictions
		}
		if ev[0] > 0 {
			ratio = float64(ev[1]) / float64(ev[0])
		}
	}
	b.ReportMetric(ratio, "R1-violation-evictions-x")
}

// BenchmarkAblationBufferSize sweeps the FIFO depth under a live attack and
// reports N=4's disturbance, demonstrating Fig 9's "bigger is not better" in
// simulation rather than analytically.
func BenchmarkAblationBufferSize(b *testing.B) {
	p := dram.DDR5()
	p.RowsPerBank = 8192
	p.RowBits = 13
	pat := patterns.DoubleSided(4000)
	dist4 := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 4, 16} {
			s := sim.PrIDEScheme()
			entries := n
			s.New = func(pp dram.Params, r *rng.Stream) tracker.Tracker {
				cfg := core.DefaultConfig(pp.ACTsPerTREFI())
				cfg.Entries = entries
				cfg.RowBits = pp.RowBits
				return core.New(cfg, r)
			}
			res := sim.RunAttack(sim.AttackConfig{Params: p, ACTs: 100_000}, s, pat, uint64(i))
			if n == 4 {
				dist4 = res.MaxDisturbance
			}
		}
	}
	b.ReportMetric(float64(dist4), "maxDist(N=4)")
}

// BenchmarkPrIDEHotPath measures the tracker's per-activation cost — the
// operation a DRAM bank would perform in hardware on every ACT.
func BenchmarkPrIDEHotPath(b *testing.B) {
	trk := core.New(core.DefaultConfig(79), rng.New(1))
	for i := 0; i < b.N; i++ {
		trk.OnActivate(i & 0x1FFFF)
		if i%79 == 78 {
			trk.OnMitigate()
		}
	}
}

// BenchmarkSystemTTFValidation runs the multi-bank empirical TTF experiment
// (cmd/pride-ttfsim's core) at a low threshold and reports the measured
// system MTTF in milliseconds.
func BenchmarkSystemTTFValidation(b *testing.B) {
	p := dram.DDR5()
	p.RowsPerBank = 1024
	p.RowBits = 10
	cfg := system.Config{Params: p, Banks: 2, TRH: 300, MaxTREFI: 100_000}
	mttf := 0.0
	for i := 0; i < b.N; i++ {
		mean, failed := system.MeasureMTTF(cfg, sim.PrIDEScheme(), 3, uint64(i))
		if failed > 0 {
			mttf = mean * 1000
		}
	}
	b.ReportMetric(mttf, "measured-MTTF-ms")
}

// BenchmarkAdversarialSearch runs a short island-model search campaign
// against PrIDE and reports the plateau disturbance (must stay under
// TRH* = 3.8K).
func BenchmarkAdversarialSearch(b *testing.B) {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	cfg := fuzz.Config{
		Attack:       sim.AttackConfig{Params: p, ACTs: 40_000},
		Generations:  3,
		Islands:      2,
		Population:   3,
		MigrateEvery: 2,
		MaxPairs:     8,
	}
	best := 0
	for i := 0; i < b.N; i++ {
		res := fuzz.Search(cfg, sim.PrIDEScheme(), uint64(i))
		best = res.BestDisturbance
	}
	b.ReportMetric(float64(best), "fuzz-plateau")
}
