package dram

import (
	"fmt"

	"pride/internal/guard"
)

// Flip records a Rowhammer failure: a victim row crossed the device's
// Rowhammer threshold without an intervening refresh.
type Flip struct {
	// Row is the victim row that flipped.
	Row int
	// Hammers is the disturbance count at the moment of the flip.
	Hammers int
	// ACTIndex is the global activation index at which the flip occurred.
	ACTIndex uint64
}

// Stats aggregates the activity counters a Bank maintains; the energy model
// and the experiment harnesses both consume them.
type Stats struct {
	// DemandACTs counts activations issued by the memory controller.
	DemandACTs uint64
	// MitigativeACTs counts activations performed internally by victim
	// refreshes (each refreshed row is one activation).
	MitigativeACTs uint64
	// Mitigations counts mitigation operations (one per tracker pop).
	Mitigations uint64
	// PeriodicRefreshes counts rows refreshed by the regular REF stream.
	PeriodicRefreshes uint64
	// Flips counts Rowhammer failures observed.
	Flips uint64
}

// Bank is a behavioural model of one DRAM bank: per-row disturbance
// accounting with a configurable blast radius and Rowhammer threshold.
//
// Activations of row r disturb rows r±1..r±BlastRadius. Refreshing a row
// resets its disturbance count, and — because a refresh is internally an
// activation of that row — disturbs *its* neighbours in turn. This is the
// physical mechanism behind transitive attacks such as Half-Double
// (Section IV-E, Figure 10), and the model reproduces it faithfully.
type Bank struct {
	params Params
	trh    int

	// hammers[r] counts disturbances to row r since r was last refreshed.
	hammers []int
	// actRun[r] counts activations of row r since a mitigation last
	// targeted r (the paper's "attack round" length for r, Section III-A).
	actRun []int
	// flipped[r] marks rows already reported as failed, so one sustained
	// over-threshold run yields one Flip.
	flipped []bool

	// maxDisturbance is the paper's Fig 15 metric: the maximum number of
	// activations any row received before a mitigation ended its round.
	maxDisturbance int
	// maxHammers is the peak disturbance any victim row accumulated.
	maxHammers int

	refreshCursor int
	actIndex      uint64
	stats         Stats
	flips         []Flip
	// flipScratch is HammerN's reusable candidate buffer (≤ 2·BlastRadius
	// entries), kept on the bank so bursts stay allocation-free.
	flipScratch []Flip
	// cplan caches HammerCycle's compiled group schedule, keyed on the
	// group slice's identity. Depends only on params and the group, never
	// on disturbance state, so it survives Reset.
	cplan *cyclePlan

	// onFlip, when non-nil, is invoked for every failure as it happens.
	onFlip func(Flip)

	// selfCheck enables runtime invariant guards (flip-accounting
	// consistency, activation-run bounds). Not part of Params so enabling
	// it never perturbs checkpoint keys. Survives Reset.
	selfCheck bool
}

// NewBank returns a bank with the given parameters and device Rowhammer
// threshold trh (the number of disturbances a victim tolerates before
// flipping). trh <= 0 disables failure detection, which is useful when only
// disturbance metrics are wanted.
func NewBank(p Params, trh int) (*Bank, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Bank{
		params:  p,
		trh:     trh,
		hammers: make([]int, p.RowsPerBank),
		actRun:  make([]int, p.RowsPerBank),
		flipped: make([]bool, p.RowsPerBank),
	}, nil
}

// MustNewBank is NewBank for callers with compile-time-correct parameters.
func MustNewBank(p Params, trh int) *Bank {
	b, err := NewBank(p, trh)
	if err != nil {
		panic(err)
	}
	return b
}

// Params returns the bank's timing/structural parameters.
func (b *Bank) Params() Params { return b.params }

// Rows returns the number of rows in the bank.
func (b *Bank) Rows() int { return b.params.RowsPerBank }

// OnFlip registers fn to be called for each Rowhammer failure.
func (b *Bank) OnFlip(fn func(Flip)) { b.onFlip = fn }

// SetSelfCheck enables or disables the bank's runtime invariant guards.
func (b *Bank) SetSelfCheck(on bool) { b.selfCheck = on }

// Activate issues a demand activation to row. It returns the row's
// activation-run length so callers can track disturbance without re-reading
// state.
func (b *Bank) Activate(row int) int {
	b.mustValidRow(row)
	b.actIndex++
	b.stats.DemandACTs++
	// An activation senses and restores the row's own cells, so the
	// activated row's disturbance count resets — this is why PrIDE's
	// multi-level mitigation never needs to refresh the aggressor row
	// itself (Section IV-E: "the aggressor row A does not need to be
	// refreshed").
	b.hammers[row] = 0
	b.flipped[row] = false
	b.actRun[row]++
	if b.actRun[row] > b.maxDisturbance {
		b.maxDisturbance = b.actRun[row]
	}
	if b.selfCheck && uint64(b.actRun[row]) > b.actIndex {
		guard.Failf("dram.bank", "actrun-bound", "row %d run %d exceeds global ACT index %d", row, b.actRun[row], b.actIndex)
	}
	b.disturbNeighbors(row)
	return b.actRun[row]
}

// HammerN issues n consecutive demand activations to row in closed form.
// It is ACT-for-ACT equivalent to calling Activate(row) n times — counters,
// disturbance state, maxima, and the Flip records (victim, hammer count,
// and global ACT index, in the same order) all match the stepped path — but
// costs O(BlastRadius) instead of O(n·BlastRadius). The event-driven
// engines use it to retire a whole hammer burst between cadence boundaries
// in one call. It returns the row's activation-run length after the burst.
func (b *Bank) HammerN(row, n int) int {
	b.mustValidRow(row)
	if n < 0 {
		panic(fmt.Sprintf("dram: HammerN(%d, %d)", row, n))
	}
	if n == 0 {
		return b.actRun[row]
	}
	startIndex := b.actIndex
	b.actIndex += uint64(n)
	b.stats.DemandACTs += uint64(n)
	// Each activation resets the activated row's own disturbance state, so
	// only the final reset is observable.
	b.hammers[row] = 0
	b.flipped[row] = false
	// actRun grows monotonically through the burst; the final value
	// dominates every intermediate maximum.
	b.actRun[row] += n
	if b.actRun[row] > b.maxDisturbance {
		b.maxDisturbance = b.actRun[row]
	}
	// Victims within the blast radius each take n disturbances. A victim
	// whose count crosses the threshold flips exactly once, at the k-th
	// activation of the burst (1-based) where its count first reaches trh;
	// the stepped path orders same-ACT flips by the d-loop visit order, so
	// candidates are collected in that order and stable-sorted by k.
	b.flipScratch = b.flipScratch[:0]
	for d := 1; d <= b.params.BlastRadius; d++ {
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= len(b.hammers) {
				continue
			}
			start := b.hammers[v]
			b.hammers[v] = start + n
			if b.hammers[v] > b.maxHammers {
				b.maxHammers = b.hammers[v]
			}
			if b.trh > 0 && b.hammers[v] >= b.trh && !b.flipped[v] {
				k := b.trh - start
				if k < 1 {
					k = 1 // already over threshold: flips on the first ACT
				}
				if b.selfCheck && k > n {
					guard.Failf("dram.bank", "flip-accounting", "burst flip of row %d at intra-burst ACT %d > burst length %d", v, k, n)
				}
				b.flipped[v] = true
				b.flipScratch = append(b.flipScratch, Flip{
					Row:      v,
					Hammers:  start + k,
					ACTIndex: startIndex + uint64(k),
				})
			}
		}
	}
	// Stable insertion sort by ACT index (at most 2·BlastRadius entries).
	for i := 1; i < len(b.flipScratch); i++ {
		for j := i; j > 0 && b.flipScratch[j].ACTIndex < b.flipScratch[j-1].ACTIndex; j-- {
			b.flipScratch[j], b.flipScratch[j-1] = b.flipScratch[j-1], b.flipScratch[j]
		}
	}
	for _, f := range b.flipScratch {
		b.flips = append(b.flips, f)
		b.stats.Flips++
		if b.onFlip != nil {
			b.onFlip(f)
		}
	}
	return b.actRun[row]
}

// disturbNeighbors increments the hammer count of every row within the blast
// radius of row and detects threshold crossings.
func (b *Bank) disturbNeighbors(row int) {
	for d := 1; d <= b.params.BlastRadius; d++ {
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= len(b.hammers) {
				continue
			}
			b.hammers[v]++
			if b.hammers[v] > b.maxHammers {
				b.maxHammers = b.hammers[v]
			}
			if b.trh > 0 && b.hammers[v] >= b.trh && !b.flipped[v] {
				if b.selfCheck && b.hammers[v] > b.trh {
					// The count steps by one per ACT, so the first crossing
					// must land exactly on the threshold.
					guard.Failf("dram.bank", "flip-accounting", "row %d first crossed threshold at %d > trh %d", v, b.hammers[v], b.trh)
				}
				b.flipped[v] = true
				f := Flip{Row: v, Hammers: b.hammers[v], ACTIndex: b.actIndex}
				b.flips = append(b.flips, f)
				b.stats.Flips++
				if b.onFlip != nil {
					b.onFlip(f)
				}
			}
		}
	}
}

// refreshRow resets row's disturbance state. A refresh is internally an
// activation of the row, so it disturbs the row's own neighbours; that is
// the "silent activation" transitive attacks exploit.
func (b *Bank) refreshRow(row int) {
	if row < 0 || row >= len(b.hammers) {
		return // refreshes beyond the array edge are harmless no-ops
	}
	b.hammers[row] = 0
	b.flipped[row] = false
	b.disturbNeighbors(row)
}

// Mitigate performs a victim refresh for aggressor row at the given
// mitigation level: rows row-level*R.. and row+level*R.. within one blast
// radius band at distance level are refreshed (Section IV-E: level m
// refreshes the m-th neighbours). Level 1 is the ordinary victim refresh.
// It returns the number of rows refreshed.
func (b *Bank) Mitigate(row, level int) int {
	b.mustValidRow(row)
	if level < 1 {
		panic(fmt.Sprintf("dram: mitigation level must be >= 1, got %d", level))
	}
	b.stats.Mitigations++
	refreshed := 0
	r := b.params.BlastRadius
	// Level m refreshes the band of rows at distances ((m-1)*R, m*R] on
	// each side: for R=1 that is exactly rows row±m.
	for d := (level-1)*r + 1; d <= level*r; d++ {
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= len(b.hammers) {
				continue
			}
			b.refreshRow(v)
			b.stats.MitigativeACTs++
			refreshed++
		}
	}
	// A mitigation targeting row ends row's attack round (Section III-A).
	if level == 1 {
		b.actRun[row] = 0
	}
	return refreshed
}

// StepRefresh models one REF command's worth of periodic refresh: the next
// RowsPerBank/TREFIsPerTREFW rows in sequence are refreshed. Periodic
// refreshes reset hammer counts but, as genuine row activations, also
// disturb neighbours.
func (b *Bank) StepRefresh() {
	n := b.params.RowsPerBank / b.params.TREFIsPerTREFW()
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		row := b.refreshCursor
		b.refreshCursor = (b.refreshCursor + 1) % b.params.RowsPerBank
		b.refreshRow(row)
		b.stats.PeriodicRefreshes++
	}
}

// HammerCount returns the current disturbance count of row.
func (b *Bank) HammerCount(row int) int {
	b.mustValidRow(row)
	return b.hammers[row]
}

// ActivationRun returns the length of row's current attack round.
func (b *Bank) ActivationRun(row int) int {
	b.mustValidRow(row)
	return b.actRun[row]
}

// MaxDisturbance returns the maximum activations any row received before a
// mitigation ended its round (Fig 15's metric).
func (b *Bank) MaxDisturbance() int { return b.maxDisturbance }

// MaxHammers returns the peak disturbance any victim accumulated.
func (b *Bank) MaxHammers() int { return b.maxHammers }

// Flips returns all recorded failures in occurrence order.
func (b *Bank) Flips() []Flip { return b.flips }

// Stats returns a copy of the bank's activity counters.
func (b *Bank) Stats() Stats { return b.stats }

// Reset clears all disturbance state and statistics, keeping parameters.
func (b *Bank) Reset() {
	for i := range b.hammers {
		b.hammers[i] = 0
		b.actRun[i] = 0
		b.flipped[i] = false
	}
	b.maxDisturbance = 0
	b.maxHammers = 0
	b.refreshCursor = 0
	b.actIndex = 0
	b.stats = Stats{}
	b.flips = nil
}

func (b *Bank) mustValidRow(row int) {
	if row < 0 || row >= b.params.RowsPerBank {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", row, b.params.RowsPerBank))
	}
}
