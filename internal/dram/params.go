// Package dram models the DRAM device substrate the PrIDE paper's trackers
// live in: timing parameters (Table I), banks with per-row disturbance
// accounting, mitigative victim refreshes with a configurable blast radius,
// and the transitive ("silent") activations those refreshes induce.
//
// The model is behavioural, not cycle-accurate: it advances in units of row
// activations (ACTs) and refresh intervals (tREFI), which is exactly the
// granularity at which the paper's security analysis operates.
package dram

import (
	"fmt"
	"time"
)

// Params captures the DRAM timing parameters of Table I plus the structural
// parameters the security analysis needs. All durations are physical; the
// derived quantities used everywhere else (ACTs per tREFI, tREFIs per tREFW)
// are computed, not stored, so a Params value can never be self-inconsistent.
type Params struct {
	// TREFW is the refresh period: every row is refreshed once per tREFW.
	TREFW time.Duration
	// TREFI is the time between successive REF commands.
	TREFI time.Duration
	// TRFC is the execution time of a REF command, during which the bank
	// is unavailable and the device performs Rowhammer mitigations.
	TRFC time.Duration
	// TRC is the minimum time between successive ACTs to the same bank.
	TRC time.Duration
	// TFAWLimit is the number of banks that can be activated concurrently
	// across the channel due to tFAW power constraints (Section VII-B uses
	// 22 of 64 banks).
	TFAWLimit int
	// BanksPerRank is the number of banks in a rank (32 for DDR5).
	BanksPerRank int
	// Banks is the total number of banks in the evaluated system (64 in
	// the paper's 32GB configuration: 32 banks x 1 rank x 1 channel, with
	// two sub-ranks of devices... the paper simply states "64 banks").
	Banks int
	// RowsPerBank is the number of rows per bank (128K in Table VII).
	RowsPerBank int
	// RowBits is the width of a row address in bits (17 for 128K rows).
	RowBits int
	// MitigationsPerTREFI is the number of tracker mitigations the device
	// performs at each REF (the paper's default is 1; DDR5 permits 1 every
	// one or two tREFI, Section II-E).
	MitigationsPerTREFI float64
	// BlastRadius is the number of neighbouring rows on each side of an
	// aggressor that are disturbed by (and refreshed in response to) its
	// activations.
	BlastRadius int
}

// DDR5 returns the paper's default DDR5 configuration (Table I, Table VII).
func DDR5() Params {
	return Params{
		TREFW:               32 * time.Millisecond,
		TREFI:               3900 * time.Nanosecond,
		TRFC:                350 * time.Nanosecond,
		TRC:                 45 * time.Nanosecond,
		TFAWLimit:           22,
		BanksPerRank:        32,
		Banks:               64,
		RowsPerBank:         128 * 1024,
		RowBits:             17,
		MitigationsPerTREFI: 1,
		BlastRadius:         1,
	}
}

// DDR4 returns a DDR4-like configuration used for the PARFM comparison
// (Mithril evaluates PARFM with a 166-ACT mitigation window).
func DDR4() Params {
	return Params{
		TREFW:               64 * time.Millisecond,
		TREFI:               7800 * time.Nanosecond,
		TRFC:                350 * time.Nanosecond,
		TRC:                 45 * time.Nanosecond,
		TFAWLimit:           16,
		BanksPerRank:        16,
		Banks:               32,
		RowsPerBank:         64 * 1024,
		RowBits:             16,
		MitigationsPerTREFI: 1,
		BlastRadius:         1,
	}
}

// ACTsPerTREFI returns the maximum number of activations that fit in one
// tREFI window: (tREFI - tRFC) / tRC, rounded to the nearest integer. For
// the DDR5 defaults this is 79 (the paper's W, Table I); for DDR4 it is 166
// (the PARFM window Mithril uses).
func (p Params) ACTsPerTREFI() int {
	num := int64(p.TREFI - p.TRFC)
	den := int64(p.TRC)
	return int((num + den/2) / den)
}

// TREFIsPerTREFW returns how many refresh commands occur per refresh period
// (8192 for DDR5: 32ms / 3.9us).
func (p Params) TREFIsPerTREFW() int {
	return int(p.TREFW / p.TREFI)
}

// ACTsPerTREFW returns the maximum number of activations within a full
// refresh period (about 650K for DDR5, Section II-E).
func (p Params) ACTsPerTREFW() int {
	return p.ACTsPerTREFI() * p.TREFIsPerTREFW()
}

// MitigationWindow returns W, the number of demand activations per tracker
// mitigation opportunity. With 1 mitigation per tREFI this is ACTsPerTREFI
// (79); with 1 per two tREFI it is 158 (the paper's 0.5x rate).
func (p Params) MitigationWindow() int {
	if p.MitigationsPerTREFI <= 0 {
		panic("dram: MitigationsPerTREFI must be positive")
	}
	return int(float64(p.ACTsPerTREFI()) / p.MitigationsPerTREFI)
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.TREFI <= 0 || p.TREFW <= 0 || p.TRC <= 0:
		return fmt.Errorf("dram: non-positive timing parameter: %+v", p)
	case p.TRFC >= p.TREFI:
		return fmt.Errorf("dram: tRFC (%v) must be less than tREFI (%v)", p.TRFC, p.TREFI)
	case p.TREFI >= p.TREFW:
		return fmt.Errorf("dram: tREFI (%v) must be less than tREFW (%v)", p.TREFI, p.TREFW)
	case p.RowsPerBank <= 0:
		return fmt.Errorf("dram: RowsPerBank must be positive, got %d", p.RowsPerBank)
	case p.RowBits <= 0 || 1<<p.RowBits < p.RowsPerBank:
		return fmt.Errorf("dram: RowBits %d cannot address %d rows", p.RowBits, p.RowsPerBank)
	case p.BlastRadius < 1:
		return fmt.Errorf("dram: BlastRadius must be >= 1, got %d", p.BlastRadius)
	case p.MitigationsPerTREFI <= 0:
		return fmt.Errorf("dram: MitigationsPerTREFI must be positive, got %v", p.MitigationsPerTREFI)
	case p.Banks <= 0 || p.TFAWLimit <= 0 || p.TFAWLimit > p.Banks:
		return fmt.Errorf("dram: inconsistent bank counts: Banks=%d tFAW=%d", p.Banks, p.TFAWLimit)
	}
	return nil
}

// ThresholdEntry is one row of the paper's Table II: the published Rowhammer
// threshold for a DRAM generation.
type ThresholdEntry struct {
	Generation string
	// SingleSided is TRH-S; 0 means "not reported".
	SingleSided int
	// DoubleSidedLow/High bound TRH-D; 0 means "not reported".
	DoubleSidedLow  int
	DoubleSidedHigh int
	Source          string
}

// ThresholdHistory reproduces Table II: Rowhammer thresholds over time.
func ThresholdHistory() []ThresholdEntry {
	return []ThresholdEntry{
		{Generation: "DDR3-old", SingleSided: 139_000, Source: "Kim et al., ISCA 2014"},
		{Generation: "DDR3-new", DoubleSidedLow: 22_400, DoubleSidedHigh: 22_400, Source: "Kim et al., ISCA 2020"},
		{Generation: "DDR4", DoubleSidedLow: 10_000, DoubleSidedHigh: 17_500, Source: "Kim et al., ISCA 2020"},
		{Generation: "LPDDR4", DoubleSidedLow: 4_800, DoubleSidedHigh: 9_000, Source: "Kim et al. 2020; Kogler et al. 2022"},
	}
}
