package dram

import (
	"testing"
	"time"
)

func TestDDR5DerivedParameters(t *testing.T) {
	p := DDR5()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR5 defaults invalid: %v", err)
	}
	// Table I: ACTs-per-tREFI = (tREFI - tRFC)/tRC = (3900-350)/45 = 78.9,
	// which the paper reports as 79.
	if got := p.ACTsPerTREFI(); got != 79 {
		t.Fatalf("ACTsPerTREFI = %d, want the paper's 79", got)
	}
	if got := p.TREFIsPerTREFW(); got != 8205 {
		t.Fatalf("TREFIsPerTREFW = %d, want 8205", got)
	}
	// Section II-E: ~650K activations per tREFW.
	acts := p.ACTsPerTREFW()
	if acts < 600_000 || acts > 700_000 {
		t.Fatalf("ACTsPerTREFW = %d, want ~650K", acts)
	}
}

func TestMitigationWindow(t *testing.T) {
	p := DDR5()
	w1 := p.MitigationWindow()
	p.MitigationsPerTREFI = 0.5
	w05 := p.MitigationWindow()
	if w05 != 2*w1 {
		t.Fatalf("halving the mitigation rate must double W: got %d vs %d", w05, w1)
	}
	p.MitigationsPerTREFI = 2
	if got := p.MitigationWindow(); got != w1/2 {
		t.Fatalf("doubling the mitigation rate must halve W: got %d, want %d", got, w1/2)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero tREFI", func(p *Params) { p.TREFI = 0 }},
		{"tRFC >= tREFI", func(p *Params) { p.TRFC = p.TREFI }},
		{"tREFI >= tREFW", func(p *Params) { p.TREFI = p.TREFW }},
		{"no rows", func(p *Params) { p.RowsPerBank = 0 }},
		{"rowbits too small", func(p *Params) { p.RowBits = 10 }},
		{"blast radius zero", func(p *Params) { p.BlastRadius = 0 }},
		{"zero mitigation rate", func(p *Params) { p.MitigationsPerTREFI = 0 }},
		{"tFAW > banks", func(p *Params) { p.TFAWLimit = p.Banks + 1 }},
		{"negative tRC", func(p *Params) { p.TRC = -time.Nanosecond }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := DDR5()
			c.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestDDR4Valid(t *testing.T) {
	p := DDR4()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR4 defaults invalid: %v", err)
	}
	// Mithril's PARFM window for DDR4 is ~166 ACTs per tREFI.
	if w := p.ACTsPerTREFI(); w < 160 || w > 170 {
		t.Fatalf("DDR4 ACTsPerTREFI = %d, want ~166", w)
	}
}

func TestThresholdHistoryShape(t *testing.T) {
	h := ThresholdHistory()
	if len(h) != 4 {
		t.Fatalf("Table II has 4 generations, got %d", len(h))
	}
	if h[0].SingleSided != 139_000 {
		t.Fatalf("DDR3-old TRH-S = %d, want 139K", h[0].SingleSided)
	}
	// Thresholds must be non-increasing across generations (the paper's
	// point: TRH dropped from 139K to 4.8K).
	last := h[0].SingleSided
	for _, e := range h[1:] {
		v := e.DoubleSidedLow
		if v == 0 {
			v = e.SingleSided
		}
		if v > last {
			t.Fatalf("thresholds should decline over generations: %s has %d after %d", e.Generation, v, last)
		}
		last = v
	}
	if last != 4_800 {
		t.Fatalf("latest TRH-D = %d, want 4.8K", last)
	}
}
