package dram

import (
	"fmt"
	"reflect"
	"testing"
)

// cycleBanksEqual extends banksEqual (bank_test.go) with the cycle path's
// extra internal obligations: the flipped latch per row and the global ACT
// index, which the closed form must also reproduce exactly.
func cycleBanksEqual(t *testing.T, label string, stepped, cycled *Bank) {
	t.Helper()
	banksEqual(t, label, stepped, cycled)
	for r := 0; r < stepped.Rows(); r++ {
		if stepped.flipped[r] != cycled.flipped[r] {
			t.Fatalf("%s: row %d flipped: stepped %v, cycled %v", label, r, stepped.flipped[r], cycled.flipped[r])
		}
	}
	if stepped.actIndex != cycled.actIndex {
		t.Fatalf("%s: actIndex: stepped %d, cycled %d", label, stepped.actIndex, cycled.actIndex)
	}
	if !reflect.DeepEqual(stepped.flips, cycled.flips) {
		t.Fatalf("%s: flips diverge:\nstepped %v\ncycled  %v", label, stepped.flips, cycled.flips)
	}
}

// cycleCase is one group/burst schedule driven against a stepped and a
// cycled twin bank.
type cycleCase struct {
	name   string
	params Params
	trh    int
	group  []int
	// bursts are (phase, n) pairs applied back to back, with an interleaved
	// Mitigate/Activate disruption between bursts when disrupt is set.
	bursts  [][2]int
	disrupt bool
}

func cycleCases() []cycleCase {
	p := testParams()
	wide := testParams()
	wide.BlastRadius = 2
	return []cycleCase{
		{
			name: "double-sided", params: p, trh: 50,
			group:  []int{99, 101},
			bursts: [][2]int{{0, 500}, {1, 37}, {0, 4}, {1, 500}},
		},
		{
			name: "double-sided-no-trh", params: p, trh: 0,
			group:  []int{99, 101},
			bursts: [][2]int{{0, 300}, {1, 300}},
		},
		{
			name: "adjacent-members-disturb-each-other", params: p, trh: 40,
			group:  []int{200, 201, 203},
			bursts: [][2]int{{0, 400}, {2, 91}, {1, 260}},
		},
		{
			name: "half-double-repeats-member", params: p, trh: 60,
			group:  []int{300, 304, 300, 304, 301, 303},
			bursts: [][2]int{{0, 700}, {3, 650}, {5, 13}},
		},
		{
			name: "many-sided-spacing-1", params: p, trh: 35,
			group:  []int{400, 401, 402, 403, 404, 405, 406, 407},
			bursts: [][2]int{{0, 900}, {5, 123}, {7, 16}, {2, 333}},
		},
		{
			name: "edge-rows", params: p, trh: 30,
			group:  []int{0, 1023, 1},
			bursts: [][2]int{{0, 450}, {1, 5}, {2, 200}},
		},
		{
			name: "blast-radius-2", params: wide, trh: 45,
			group:  []int{500, 503, 501},
			bursts: [][2]int{{0, 600}, {1, 77}, {2, 600}},
		},
		{
			name: "low-trh-flips-every-cycle", params: p, trh: 3,
			group:  []int{700, 710},
			bursts: [][2]int{{0, 64}, {1, 31}},
		},
		{
			name: "interleaved-mitigations", params: p, trh: 25,
			group:   []int{800, 802},
			bursts:  [][2]int{{0, 180}, {1, 180}, {0, 180}},
			disrupt: true,
		},
	}
}

// TestHammerCycleEquivalentToStepped drives the same burst schedule through
// Activate steps and HammerCycle and requires bit-identical bank state,
// including flip order.
func TestHammerCycleEquivalentToStepped(t *testing.T) {
	for _, tc := range cycleCases() {
		t.Run(tc.name, func(t *testing.T) {
			stepped := MustNewBank(tc.params, tc.trh)
			cycled := MustNewBank(tc.params, tc.trh)
			cycled.SetSelfCheck(true)
			q := len(tc.group)
			for bi, burst := range tc.bursts {
				phase, n := burst[0], burst[1]
				for i := 0; i < n; i++ {
					stepped.Activate(tc.group[(phase+i)%q])
				}
				cycled.HammerCycle(tc.group, phase, n)
				cycleBanksEqual(t, fmt.Sprintf("%s burst %d", tc.name, bi), stepped, cycled)
				if tc.disrupt {
					// A mitigation and a stray activation between bursts
					// perturb hammer/run state so the next burst starts from
					// a non-trivial baseline.
					stepped.Mitigate(tc.group[0], 1)
					cycled.Mitigate(tc.group[0], 1)
					stepped.Activate(tc.group[0] + 1)
					cycled.Activate(tc.group[0] + 1)
				}
			}
		})
	}
}

// TestHammerCycleRandomizedSchedules fuzzes group shapes and burst lengths
// with a deterministic LCG, covering the stepped fallback (n < 2q), the
// q==1 delegation, and bursts that start at every phase.
func TestHammerCycleRandomizedSchedules(t *testing.T) {
	p := testParams()
	lcg := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(mod))
	}
	for trial := 0; trial < 40; trial++ {
		trh := 1 + next(60)
		q := 1 + next(6)
		group := make([]int, q)
		base := 10 + next(900)
		for i := range group {
			group[i] = base + next(8)
		}
		stepped := MustNewBank(p, trh)
		cycled := MustNewBank(p, trh)
		cycled.SetSelfCheck(true)
		for burst := 0; burst < 6; burst++ {
			phase := next(q)
			n := next(200) // exercises n < 2q and long bursts alike
			for i := 0; i < n; i++ {
				stepped.Activate(group[(phase+i)%q])
			}
			cycled.HammerCycle(group, phase, n)
			cycleBanksEqual(t, fmt.Sprintf("trial %d burst %d group %v phase %d n %d", trial, burst, group, phase, n), stepped, cycled)
		}
	}
}

// TestHammerCyclePlanCache pins the pointer-identity cache contract: the
// same group slice reuses the compiled plan, a different slice recompiles.
func TestHammerCyclePlanCache(t *testing.T) {
	b := MustNewBank(testParams(), 100)
	g1 := []int{10, 12}
	b.HammerCycle(g1, 0, 50)
	p1 := b.cplan
	if p1 == nil {
		t.Fatal("no plan compiled")
	}
	b.HammerCycle(g1, 1, 50)
	if b.cplan != p1 {
		t.Fatal("same group slice should reuse the cached plan")
	}
	g2 := []int{20, 22}
	b.HammerCycle(g2, 0, 50)
	if b.cplan == p1 {
		t.Fatal("different group slice must recompile the plan")
	}
	b.Reset()
	if b.cplan == nil {
		t.Fatal("plan cache should survive Reset (depends only on params and group)")
	}
}

func TestHammerCyclePanics(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"empty-group", func() { b.HammerCycle(nil, 0, 10) }},
		{"negative-n", func() { b.HammerCycle([]int{1, 2}, 0, -1) }},
		{"phase-out-of-range", func() { b.HammerCycle([]int{1, 2}, 2, 10) }},
		{"invalid-row", func() { b.HammerCycle([]int{1, 5000}, 0, 10) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.call()
		})
	}
}
