package dram

import (
	"testing"
	"testing/quick"
)

// testParams returns small parameters so tests run fast and edge rows are
// easy to reach.
func testParams() Params {
	p := DDR5()
	p.RowsPerBank = 1024
	p.RowBits = 10
	return p
}

func TestActivateDisturbsNeighbors(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	b.Activate(100)
	if got := b.HammerCount(99); got != 1 {
		t.Fatalf("row 99 hammers = %d, want 1", got)
	}
	if got := b.HammerCount(101); got != 1 {
		t.Fatalf("row 101 hammers = %d, want 1", got)
	}
	if got := b.HammerCount(100); got != 0 {
		t.Fatalf("aggressor row itself should not accumulate hammers, got %d", got)
	}
	if got := b.HammerCount(98); got != 0 {
		t.Fatalf("row 98 beyond blast radius 1 hammered: %d", got)
	}
}

func TestBlastRadiusTwo(t *testing.T) {
	p := testParams()
	p.BlastRadius = 2
	b := MustNewBank(p, 0)
	b.Activate(100)
	for _, r := range []int{98, 99, 101, 102} {
		if got := b.HammerCount(r); got != 1 {
			t.Fatalf("row %d hammers = %d, want 1 at blast radius 2", r, got)
		}
	}
	if got := b.HammerCount(97); got != 0 {
		t.Fatalf("row 97 outside blast radius hammered")
	}
}

func TestEdgeRowsClamped(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	b.Activate(0)    // row -1 does not exist
	b.Activate(1023) // row 1024 does not exist
	if got := b.HammerCount(1); got != 1 {
		t.Fatalf("row 1 hammers = %d, want 1", got)
	}
	if got := b.HammerCount(1022); got != 1 {
		t.Fatalf("row 1022 hammers = %d, want 1", got)
	}
}

func TestFlipAtThreshold(t *testing.T) {
	const trh = 50
	b := MustNewBank(testParams(), trh)
	var flips []Flip
	b.OnFlip(func(f Flip) { flips = append(flips, f) })
	for i := 0; i < trh; i++ {
		b.Activate(200)
	}
	if len(flips) != 2 {
		t.Fatalf("expected flips in both neighbours (199, 201), got %d", len(flips))
	}
	for _, f := range flips {
		if f.Row != 199 && f.Row != 201 {
			t.Fatalf("flip in unexpected row %d", f.Row)
		}
		if f.Hammers != trh {
			t.Fatalf("flip at %d hammers, want exactly %d", f.Hammers, trh)
		}
	}
	if got := b.Stats().Flips; got != 2 {
		t.Fatalf("stats.Flips = %d, want 2", got)
	}
}

func TestNoFlipBelowThreshold(t *testing.T) {
	const trh = 50
	b := MustNewBank(testParams(), trh)
	for i := 0; i < trh-1; i++ {
		b.Activate(200)
	}
	if n := len(b.Flips()); n != 0 {
		t.Fatalf("flips below threshold: %d", n)
	}
}

func TestFlipReportedOncePerRun(t *testing.T) {
	const trh = 10
	b := MustNewBank(testParams(), trh)
	for i := 0; i < 5*trh; i++ {
		b.Activate(300)
	}
	// 299 and 301 each flipped once despite 5x threshold hammers.
	if n := len(b.Flips()); n != 2 {
		t.Fatalf("flips = %d, want 2 (one per victim per run)", n)
	}
	// After a mitigation (refresh) the victim can flip again.
	b.Mitigate(300, 1)
	for i := 0; i < trh+2; i++ { // +2: the refresh disturbed 300's victims' neighbours, not the victims of 300 themselves
		b.Activate(300)
	}
	if n := len(b.Flips()); n != 4 {
		t.Fatalf("flips after re-hammering = %d, want 4", n)
	}
}

func TestMitigateResetsVictims(t *testing.T) {
	const trh = 0
	b := MustNewBank(testParams(), trh)
	for i := 0; i < 30; i++ {
		b.Activate(400)
	}
	if b.HammerCount(399) != 30 {
		t.Fatal("setup failed")
	}
	n := b.Mitigate(400, 1)
	if n != 2 {
		t.Fatalf("Mitigate refreshed %d rows, want 2", n)
	}
	if got := b.HammerCount(399); got > 1 {
		// The refresh of 401 disturbs 400 and 402, not 399; the refresh
		// of 399 resets it, then the refresh of 401 doesn't touch it.
		// Allow <=1 because refresh order: refreshing 399 disturbs 398
		// and 400; refreshing 401 disturbs 400 and 402.
		t.Fatalf("victim 399 hammers after mitigation = %d, want 0 or residual 1", got)
	}
	if got := b.ActivationRun(400); got != 0 {
		t.Fatalf("mitigation must end the aggressor's attack round, run = %d", got)
	}
}

func TestMitigationLevelTargetsDistantBand(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	for i := 0; i < 20; i++ {
		b.Activate(500) // hammers 499, 501
	}
	// Hammer 499's and 501's own neighbours via transitive refreshes first.
	b.hammers[498] = 7
	b.hammers[502] = 7
	b.Mitigate(500, 2) // refreshes rows 498 and 502 only
	if got := b.HammerCount(498); got != 0 {
		t.Fatalf("level-2 mitigation should refresh row 498, hammers = %d", got)
	}
	if got := b.HammerCount(502); got != 0 {
		t.Fatalf("level-2 mitigation should refresh row 502, hammers = %d", got)
	}
	if got := b.HammerCount(499); got == 0 {
		t.Fatal("level-2 mitigation must NOT refresh the level-1 victims")
	}
}

func TestRefreshIsSilentActivation(t *testing.T) {
	// The transitive-attack mechanism: mitigating aggressor A refreshes
	// A±1, and each refresh disturbs ITS neighbours (A±2).
	b := MustNewBank(testParams(), 0)
	b.Mitigate(600, 1) // refreshes 599 and 601
	if got := b.HammerCount(598); got != 1 {
		t.Fatalf("row 598 should receive a transitive hammer, got %d", got)
	}
	if got := b.HammerCount(602); got != 1 {
		t.Fatalf("row 602 should receive a transitive hammer, got %d", got)
	}
	// 600 itself gets disturbed by both refreshes.
	if got := b.HammerCount(600); got != 2 {
		t.Fatalf("row 600 should receive 2 transitive hammers, got %d", got)
	}
}

func TestHalfDoubleTransitiveFailure(t *testing.T) {
	// Hammering A drives mitigations of A±1; those mitigative refreshes
	// silently hammer A±2. With enough mitigations, A±2 flips even though
	// no demand ACT ever touched its neighbours — the Half-Double effect.
	const trh = 100
	b := MustNewBank(testParams(), trh)
	agg := 700
	for i := 0; i < trh*3; i++ {
		// Naive mitigation after every 10 ACTs, always at level 1.
		b.Activate(agg)
		if i%10 == 9 {
			b.Mitigate(agg, 1)
		}
	}
	// Victim refreshes of 699/701 hammered 698/702 (and 700) silently.
	if got := b.HammerCount(698); got == 0 {
		t.Fatal("expected transitive hammers on row 698")
	}
	if got := b.Stats().MitigativeACTs; got == 0 {
		t.Fatal("expected mitigative ACT accounting")
	}
}

func TestMaxDisturbanceTracksRunLength(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	for i := 0; i < 17; i++ {
		b.Activate(50)
	}
	b.Mitigate(50, 1)
	for i := 0; i < 9; i++ {
		b.Activate(50)
	}
	if got := b.MaxDisturbance(); got != 17 {
		t.Fatalf("MaxDisturbance = %d, want 17", got)
	}
	if got := b.ActivationRun(50); got != 9 {
		t.Fatalf("current run = %d, want 9", got)
	}
}

func TestStepRefreshCoversAllRowsInTREFW(t *testing.T) {
	p := testParams()
	b := MustNewBank(p, 0)
	for i := 0; i < 200; i++ {
		b.Activate(i % p.RowsPerBank)
	}
	steps := p.TREFIsPerTREFW()
	for i := 0; i < steps; i++ {
		b.StepRefresh()
	}
	if got := b.Stats().PeriodicRefreshes; got < uint64(p.RowsPerBank) {
		t.Fatalf("one tREFW of refreshes covered %d rows, want >= %d", got, p.RowsPerBank)
	}
	// Every row's hammer count is now bounded by the residual transitive
	// disturbances of the refresh sweep itself (at most a few).
	for r := 0; r < p.RowsPerBank; r++ {
		if b.HammerCount(r) > 4 {
			t.Fatalf("row %d retained %d hammers after full refresh period", r, b.HammerCount(r))
		}
	}
}

func TestResetClearsEverything(t *testing.T) {
	b := MustNewBank(testParams(), 5)
	for i := 0; i < 50; i++ {
		b.Activate(10)
	}
	b.Reset()
	if b.MaxDisturbance() != 0 || b.MaxHammers() != 0 || len(b.Flips()) != 0 {
		t.Fatal("Reset left metrics behind")
	}
	if b.Stats() != (Stats{}) {
		t.Fatalf("Reset left stats behind: %+v", b.Stats())
	}
	if b.HammerCount(9) != 0 || b.ActivationRun(10) != 0 {
		t.Fatal("Reset left row state behind")
	}
}

func TestActivatePanicsOutOfRange(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	for _, row := range []int{-1, 1024, 1 << 30} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Activate(%d) did not panic", row)
				}
			}()
			b.Activate(row)
		}()
	}
}

func TestMitigatePanicsOnBadLevel(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Mitigate(level=0) did not panic")
		}
	}()
	b.Mitigate(5, 0)
}

// Property: hammer counts are conserved — every demand ACT contributes
// exactly min(2, in-range neighbours) hammers, and refreshes only move
// counts to zero plus their own transitive contributions.
func TestHammerConservationProperty(t *testing.T) {
	check := func(seed uint64, nACT uint16) bool {
		p := testParams()
		b := MustNewBank(p, 0)
		n := int(nACT%500) + 1
		row := 512 // interior row: always two in-range neighbours
		for i := 0; i < n; i++ {
			b.Activate(row)
		}
		return b.HammerCount(row-1) == n && b.HammerCount(row+1) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxDisturbance never decreases and is always >= any current run.
func TestMaxDisturbanceMonotoneProperty(t *testing.T) {
	check := func(seed uint64) bool {
		b := MustNewBank(testParams(), 0)
		prev := 0
		s := seed
		for i := 0; i < 2000; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			row := int(s>>33) % 1024
			if row < 0 {
				row = -row
			}
			if s%13 == 0 {
				b.Mitigate(row, 1)
			} else {
				b.Activate(row)
			}
			md := b.MaxDisturbance()
			if md < prev || md < b.ActivationRun(row) {
				return false
			}
			prev = md
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// banksEqual compares every piece of observable bank state, reporting the
// first divergence.
func banksEqual(t *testing.T, label string, stepped, bulk *Bank) {
	t.Helper()
	if a, b := stepped.Stats(), bulk.Stats(); a != b {
		t.Fatalf("%s: stats diverged: stepped %+v, bulk %+v", label, a, b)
	}
	if a, b := stepped.MaxDisturbance(), bulk.MaxDisturbance(); a != b {
		t.Fatalf("%s: MaxDisturbance %d vs %d", label, a, b)
	}
	if a, b := stepped.MaxHammers(), bulk.MaxHammers(); a != b {
		t.Fatalf("%s: MaxHammers %d vs %d", label, a, b)
	}
	af, bf := stepped.Flips(), bulk.Flips()
	if len(af) != len(bf) {
		t.Fatalf("%s: %d flips vs %d", label, len(af), len(bf))
	}
	for i := range af {
		if af[i] != bf[i] {
			t.Fatalf("%s: flip %d diverged: stepped %+v, bulk %+v", label, i, af[i], bf[i])
		}
	}
	for r := 0; r < stepped.Rows(); r++ {
		if a, b := stepped.HammerCount(r), bulk.HammerCount(r); a != b {
			t.Fatalf("%s: row %d hammers %d vs %d", label, r, a, b)
		}
		if a, b := stepped.ActivationRun(r), bulk.ActivationRun(r); a != b {
			t.Fatalf("%s: row %d actRun %d vs %d", label, r, a, b)
		}
	}
}

// Property: HammerN(row, n) is ACT-for-ACT equivalent to n Activate(row)
// calls — counters, maxima, and every Flip record (row, hammer count,
// global ACT index, order) — across random interleavings of bursts,
// mitigations, and periodic refresh steps, including threshold crossings
// and pre-loaded over-threshold victims.
func TestHammerNEquivalentToSteppedActivates(t *testing.T) {
	for _, radius := range []int{1, 2} {
		for _, trh := range []int{0, 7, 50} {
			p := testParams()
			p.BlastRadius = radius
			stepped := MustNewBank(p, trh)
			bulk := MustNewBank(p, trh)
			s := uint64(trh*31 + radius)
			for ev := 0; ev < 400; ev++ {
				s = s*6364136223846793005 + 1442695040888963407
				row := int(s>>33) % p.RowsPerBank
				switch s % 5 {
				case 0:
					stepped.Mitigate(row, 1)
					bulk.Mitigate(row, 1)
				case 1:
					stepped.StepRefresh()
					bulk.StepRefresh()
				default:
					n := int(s>>17) % 100
					for i := 0; i < n; i++ {
						stepped.Activate(row)
					}
					if a, b := bulk.HammerN(row, n), stepped.ActivationRun(row); a != b {
						t.Fatalf("HammerN returned run %d, stepped run is %d", a, b)
					}
				}
			}
			banksEqual(t, "random interleaving", stepped, bulk)
		}
	}
}

func TestHammerNEdgeRowFlipOrdering(t *testing.T) {
	// At an edge row only one neighbour exists; with radius 2 starting from
	// asymmetric preloads, flips land on different burst ACTs and must come
	// out sorted by ACT index exactly as the stepped path emits them.
	p := testParams()
	p.BlastRadius = 2
	stepped := MustNewBank(p, 10)
	bulk := MustNewBank(p, 10)
	for _, b := range []*Bank{stepped, bulk} {
		// Preload victim 513 closer to the threshold than 511/514.
		for i := 0; i < 6; i++ {
			b.Activate(514)
		}
		b.Activate(100) // park the aggressor run elsewhere
	}
	for i := 0; i < 30; i++ {
		stepped.Activate(512)
	}
	bulk.HammerN(512, 30)
	banksEqual(t, "edge/preload", stepped, bulk)
	if len(bulk.Flips()) < 3 {
		t.Fatalf("scenario produced %d flips, want >= 3 to exercise ordering", len(bulk.Flips()))
	}
}

func TestHammerNZeroAndNegative(t *testing.T) {
	b := MustNewBank(testParams(), 0)
	b.Activate(200)
	st := b.Stats()
	if got := b.HammerN(200, 0); got != b.ActivationRun(200) {
		t.Fatalf("HammerN(_, 0) returned %d", got)
	}
	if b.Stats() != st {
		t.Fatal("HammerN(_, 0) mutated state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HammerN(_, -1) did not panic")
		}
	}()
	b.HammerN(200, -1)
}

func TestHammerNAllocationFree(t *testing.T) {
	p := testParams()
	b := MustNewBank(p, 50)
	b.HammerN(512, 100) // warm the flip scratch buffer
	row := 0
	if avg := testing.AllocsPerRun(500, func() {
		b.Mitigate(512, 1) // reset the round so no new flips append
		b.HammerN(512, 40)
		row++
	}); avg > 0 {
		t.Fatalf("HammerN steady state allocates %v per burst, want 0", avg)
	}
}
