package dram

import (
	"fmt"

	"pride/internal/guard"
)

// This file implements HammerCycle, the multi-row generalization of HammerN:
// a closed-form replay of n consecutive activations that walk a repeating
// row group cyclically (the event engines' alternating-pattern case, e.g.
// the double-sided pair). The burst is compiled once per group into a
// cyclePlan: for every row the group touches — members and their
// blast-radius neighbours — the plan records the cycle positions that RESET
// the row (its own activations) and the positions that DISTURB it, with
// prefix counts so the number of events in any slot range, and the slot of
// the k-th event, resolve in O(1). Per-row state then follows from the
// segment structure of the burst: a prefix climb up to the row's first
// reset, cyclically repeating inter-reset climbs, and a final partial climb
// after its last reset.

// cycleRow is one affected row's compiled event schedule within a group
// cycle of length q.
type cycleRow struct {
	row int
	// resPos are the cycle positions (sorted) whose activation IS this row:
	// the row's own disturbance state resets and its activation run grows.
	resPos []int32
	// incPos are the cycle positions (sorted) whose activation disturbs
	// this row; incRank is the stepped disturbNeighbors visit order within
	// that one ACT (2d for the lower victim at distance d, 2d+1 for the
	// upper), the tie-break for same-ACT flip ordering.
	incPos  []int32
	incRank []int32
	// preRes[t] / preInc[t] count reset/disturb positions < t, t in [0,q].
	preRes []int32
	preInc []int32
	// maxGap is the largest disturbance climb of any FULL inter-reset
	// segment (reset to next reset, circularly); 0 when the row is never
	// reset. Valid as a peak-disturbance candidate whenever every segment
	// occurs fully in the burst, which n >= 2q guarantees.
	maxGap int
}

// incsBefore returns the number of disturbances to the row in the unrolled
// stream positions [0, x), where position t of cycle c is x = c*q + t.
func (rw *cycleRow) incsBefore(x, q int) int {
	return (x/q)*len(rw.incPos) + int(rw.preInc[x%q])
}

// resBefore is incsBefore for the row's resets.
func (rw *cycleRow) resBefore(x, q int) int {
	return (x/q)*len(rw.resPos) + int(rw.preRes[x%q])
}

// incAt returns the unrolled stream position and rank of the row's j-th
// disturbance (0-based, counted from stream position 0).
func (rw *cycleRow) incAt(j, q int) (x int, rank int32) {
	c := len(rw.incPos)
	return (j/c)*q + int(rw.incPos[j%c]), rw.incRank[j%c]
}

// resAt returns the unrolled stream position of the row's j-th reset.
func (rw *cycleRow) resAt(j, q int) int {
	c := len(rw.resPos)
	return (j/c)*q + int(rw.resPos[j%c])
}

// cycleFlip is a flip candidate plus its within-ACT ordering rank.
type cycleFlip struct {
	Flip
	rank int32
}

// cyclePlan is the compiled schedule of one repeating activation group.
type cyclePlan struct {
	// group is the exact slice the plan was compiled for; plans are keyed
	// on slice identity (pattern sequences are read-only after
	// construction, so identical identity implies identical contents).
	group []int
	rows  []cycleRow
	// flips is the reusable flip-collection scratch, so steady-state bursts
	// stay allocation-free.
	flips []cycleFlip
}

// plan returns the cached plan for group, compiling it on first sight (or
// when the bank last ran a different group).
func (b *Bank) plan(group []int) *cyclePlan {
	if p := b.cplan; p != nil && len(p.group) == len(group) && &p.group[0] == &group[0] {
		return p
	}
	q := len(group)
	p := &cyclePlan{group: group}
	index := make(map[int]int, q)
	at := func(row int) int {
		idx, ok := index[row]
		if !ok {
			idx = len(p.rows)
			p.rows = append(p.rows, cycleRow{row: row})
			index[row] = idx
		}
		return idx
	}
	for t, u := range group {
		b.mustValidRow(u)
		rw := &p.rows[at(u)]
		rw.resPos = append(rw.resPos, int32(t))
		for d := 1; d <= b.params.BlastRadius; d++ {
			for side, v := range [2]int{u - d, u + d} {
				if v < 0 || v >= b.params.RowsPerBank {
					continue
				}
				rw := &p.rows[at(v)]
				rw.incPos = append(rw.incPos, int32(t))
				rw.incRank = append(rw.incRank, int32(2*d+side))
			}
		}
	}
	for i := range p.rows {
		rw := &p.rows[i]
		rw.preRes = prefixCounts(rw.resPos, q)
		rw.preInc = prefixCounts(rw.incPos, q)
		for a := range rw.resPos {
			next := int(rw.resPos[(a+1)%len(rw.resPos)])
			if a+1 == len(rw.resPos) {
				next += q
			}
			if gap := rw.incsBefore(next, q) - rw.incsBefore(int(rw.resPos[a])+1, q); gap > rw.maxGap {
				rw.maxGap = gap
			}
		}
	}
	b.cplan = p
	return p
}

// prefixCounts builds the length-(q+1) table counting sorted positions < t.
func prefixCounts(pos []int32, q int) []int32 {
	pre := make([]int32, q+1)
	j := 0
	for t := 1; t <= q; t++ {
		for j < len(pos) && int(pos[j]) < t {
			j++
		}
		pre[t] = int32(j)
	}
	return pre
}

// HammerCycle issues n consecutive demand activations that walk the
// repeating row group cyclically starting at phase: activation i goes to
// group[(phase+i) mod len(group)]. It is ACT-for-ACT equivalent to the
// stepped Activate sequence — counters, disturbance state, maxima, and the
// Flip records (victim, hammer count, global ACT index, and the stepped
// path's within-ACT ordering) all match exactly — but costs O(rows touched
// + flips) instead of O(n·BlastRadius). Bursts shorter than two full cycles
// step through Activate (not every inter-reset segment completes, so the
// closed form's peak accounting does not apply); the event engines' cadence
// segments are almost always longer.
func (b *Bank) HammerCycle(group []int, phase, n int) {
	q := len(group)
	if q == 0 {
		panic("dram: HammerCycle with empty group")
	}
	if phase < 0 || phase >= q || n < 0 {
		panic(fmt.Sprintf("dram: HammerCycle(|%d|, %d, %d)", q, phase, n))
	}
	if n == 0 {
		return
	}
	if q == 1 {
		b.HammerN(group[0], n)
		return
	}
	if n < 2*q {
		for i := 0; i < n; i++ {
			b.Activate(group[(phase+i)%q])
		}
		return
	}
	p := b.plan(group)
	startIndex := b.actIndex
	b.actIndex += uint64(n)
	b.stats.DemandACTs += uint64(n)
	p.flips = p.flips[:0]
	// The unrolled stream runs positions [phase, phase+n); slot s of the
	// burst is position phase+s, so counts over slot ranges come from the
	// prefix helpers and every event position converts to a slot by
	// subtracting phase.
	for i := range p.rows {
		rw := &p.rows[i]
		v := rw.row
		totalIncs := rw.incsBefore(phase+n, q) - rw.incsBefore(phase, q)
		if len(rw.resPos) == 0 {
			// Pure victim: disturbance climbs monotonically, at most one flip.
			start := b.hammers[v]
			b.hammers[v] = start + totalIncs
			if b.hammers[v] > b.maxHammers {
				b.maxHammers = b.hammers[v]
			}
			if b.trh > 0 && b.hammers[v] >= b.trh && !b.flipped[v] {
				k := b.trh - start
				if k < 1 {
					k = 1 // already over threshold: flips on its first disturbance
				}
				if b.selfCheck && k > totalIncs {
					guard.Failf("dram.bank", "flip-accounting", "cycle flip of row %d at disturbance %d > total %d", v, k, totalIncs)
				}
				b.flipped[v] = true
				x, rank := rw.incAt(rw.incsBefore(phase, q)+k-1, q)
				p.flips = append(p.flips, cycleFlip{
					Flip: Flip{Row: v, Hammers: start + k, ACTIndex: startIndex + uint64(x-phase) + 1},
					rank: rank,
				})
			}
			continue
		}

		// Member row: the burst divides into a prefix climb up to the first
		// reset, full inter-reset segments (each a fixed climb from zero,
		// repeating cyclically), and a final partial climb after the last
		// reset. n >= 2q guarantees every distinct segment occurs fully at
		// least once, so the plan's maxGap is a realized peak.
		resets := rw.resBefore(phase+n, q) - rw.resBefore(phase, q)
		firstRes := rw.resBefore(phase, q)
		firstSlot := rw.resAt(firstRes, q) - phase
		prefixIncs := rw.incsBefore(phase+firstSlot, q) - rw.incsBefore(phase, q)
		h0 := b.hammers[v]

		if b.trh > 0 && !b.flipped[v] && prefixIncs > 0 && h0+prefixIncs >= b.trh {
			k := b.trh - h0
			if k < 1 {
				k = 1
			}
			if k <= prefixIncs {
				x, rank := rw.incAt(rw.incsBefore(phase, q)+k-1, q)
				p.flips = append(p.flips, cycleFlip{
					Flip: Flip{Row: v, Hammers: h0 + k, ACTIndex: startIndex + uint64(x-phase) + 1},
					rank: rank,
				})
			}
		}
		if b.trh > 0 && rw.maxGap >= b.trh {
			// Segments that cross the threshold flip at their trh-th
			// disturbance on EVERY occurrence (the reset clears the flipped
			// latch); enumerate occurrences — O(flips), same as stepped.
			for a := range rw.resPos {
				next := int(rw.resPos[(a+1)%len(rw.resPos)])
				if a+1 == len(rw.resPos) {
					next += q
				}
				if rw.incsBefore(next, q)-rw.incsBefore(int(rw.resPos[a])+1, q) < b.trh {
					continue
				}
				for s := (int(rw.resPos[a]) - phase + q) % q; s < n; s += q {
					j := rw.incsBefore(phase+s+1, q) + b.trh - 1
					x, rank := rw.incAt(j, q)
					f := x - phase
					if f >= n {
						break
					}
					p.flips = append(p.flips, cycleFlip{
						Flip: Flip{Row: v, Hammers: b.trh, ACTIndex: startIndex + uint64(f) + 1},
						rank: rank,
					})
				}
			}
		}

		lastSlot := rw.resAt(firstRes+resets-1, q) - phase
		finalIncs := rw.incsBefore(phase+n, q) - rw.incsBefore(phase+lastSlot+1, q)
		b.hammers[v] = finalIncs
		b.flipped[v] = b.trh > 0 && finalIncs >= b.trh
		b.actRun[v] += resets
		if b.actRun[v] > b.maxDisturbance {
			b.maxDisturbance = b.actRun[v]
		}
		if b.selfCheck && uint64(b.actRun[v]) > b.actIndex {
			guard.Failf("dram.bank", "actrun-bound", "row %d run %d exceeds global ACT index %d", v, b.actRun[v], b.actIndex)
		}
		if prefixIncs > 0 && h0+prefixIncs > b.maxHammers {
			b.maxHammers = h0 + prefixIncs
		}
		if rw.maxGap > b.maxHammers {
			b.maxHammers = rw.maxGap
		}
	}
	// Stable ordering: by ACT index, ties broken by the stepped path's
	// within-ACT visit rank (distinct victims of one ACT have distinct
	// ranks, so the order is total).
	for i := 1; i < len(p.flips); i++ {
		for j := i; j > 0 && (p.flips[j].ACTIndex < p.flips[j-1].ACTIndex ||
			(p.flips[j].ACTIndex == p.flips[j-1].ACTIndex && p.flips[j].rank < p.flips[j-1].rank)); j-- {
			p.flips[j], p.flips[j-1] = p.flips[j-1], p.flips[j]
		}
	}
	for i := range p.flips {
		f := p.flips[i].Flip
		b.flips = append(b.flips, f)
		b.stats.Flips++
		if b.onFlip != nil {
			b.onFlip(f)
		}
	}
}
