package patterns

import (
	"testing"
	"testing/quick"

	"pride/internal/rng"
)

func TestSingleSided(t *testing.T) {
	p := SingleSided(42)
	for i := 0; i < 5; i++ {
		if got := p.Next(); got != 42 {
			t.Fatalf("Next() = %d, want 42", got)
		}
	}
}

func TestDoubleSidedAlternates(t *testing.T) {
	p := DoubleSided(100)
	want := []int{99, 101, 99, 101}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("Next()[%d] = %d, want %d", i, got, w)
		}
	}
	if len(p.Aggressors) != 2 {
		t.Fatalf("aggressors = %v", p.Aggressors)
	}
}

func TestVictimSharingBR2(t *testing.T) {
	p := VictimSharing(100, 2)
	if len(p.Aggressors) != 4 {
		t.Fatalf("BR=2 aggressors = %v, want 4 rows", p.Aggressors)
	}
	seen := map[int]bool{}
	for i := 0; i < p.Len(); i++ {
		seen[p.Next()] = true
	}
	for _, want := range []int{98, 99, 101, 102} {
		if !seen[want] {
			t.Fatalf("row %d missing from BR=2 pattern", want)
		}
	}
}

func TestHalfDoubleComposition(t *testing.T) {
	p := HalfDouble(100, 8)
	far, near := 0, 0
	for i := 0; i < p.Len(); i++ {
		switch p.Next() {
		case 98, 102:
			far++
		case 99, 101:
			near++
		default:
			t.Fatal("unexpected row in half-double pattern")
		}
	}
	if far != 16 || near != 2 {
		t.Fatalf("far=%d near=%d, want 16 far and 2 near per period", far, near)
	}
}

func TestTRRespassSpacing(t *testing.T) {
	p := TRRespass(1000, 5, 4)
	want := []int{1000, 1004, 1008, 1012, 1016}
	for i, w := range want {
		if p.Aggressors[i] != w {
			t.Fatalf("aggressors = %v, want %v", p.Aggressors, want)
		}
	}
}

func TestPatternCycles(t *testing.T) {
	p := TRRespass(10, 3, 1)
	first := make([]int, 6)
	for i := range first {
		first[i] = p.Next()
	}
	if first[0] != first[3] || first[1] != first[4] || first[2] != first[5] {
		t.Fatalf("pattern does not cycle: %v", first)
	}
	p.Reset()
	if got := p.Next(); got != first[0] {
		t.Fatalf("Reset did not rewind: %d vs %d", got, first[0])
	}
}

func TestBlacksmithSchedule(t *testing.T) {
	p := Blacksmith(BlacksmithConfig{
		Base:        100,
		Pairs:       2,
		Period:      8,
		Frequencies: []int{2, 4},
		Phases:      []int{0, 1},
		Amplitudes:  []int{1, 2},
		DecoyRows:   []int{500, 600},
	})
	if len(p.Aggressors) != 4 {
		t.Fatalf("aggressors = %v, want 4", p.Aggressors)
	}
	// Pair 1 (rows 100,102) fires in slots 0,2,4,6 (4 times, amp 1);
	// pair 2 (rows 103,105) fires in slots 1,5 (2 times, amp 2).
	counts := map[int]int{}
	for i := 0; i < p.Len(); i++ {
		counts[p.Next()]++
	}
	if counts[100] != 4 || counts[102] != 4 {
		t.Fatalf("pair-1 counts = %d/%d, want 4/4", counts[100], counts[102])
	}
	if counts[103] != 4 || counts[105] != 4 { // 2 firings x amplitude 2
		t.Fatalf("pair-2 counts = %d/%d, want 4/4", counts[103], counts[105])
	}
	// Slots 3 and 7 were free: two decoy accesses.
	if counts[500]+counts[600] != 2 {
		t.Fatalf("decoy accesses = %d, want 2", counts[500]+counts[600])
	}
}

func TestBlacksmithNonUniformFrequencies(t *testing.T) {
	// Different frequencies must yield different access counts — the
	// frequency-domain structure that defeats deterministic samplers.
	p := Blacksmith(BlacksmithConfig{
		Base:        100,
		Pairs:       2,
		Period:      16,
		Frequencies: []int{2, 8},
		Phases:      []int{0, 0},
		Amplitudes:  []int{1, 1},
	})
	counts := map[int]int{}
	for i := 0; i < p.Len(); i++ {
		counts[p.Next()]++
	}
	if counts[100] <= counts[103] {
		t.Fatalf("high-frequency pair (%d) should out-access low-frequency pair (%d)",
			counts[100], counts[103])
	}
}

func TestUniformRandomWithinRange(t *testing.T) {
	p := UniformRandom(1000, 500, rng.New(1))
	for i := 0; i < p.Len(); i++ {
		if row := p.Next(); row < 0 || row >= 1000 {
			t.Fatalf("row %d out of range", row)
		}
	}
}

func TestFig15SuiteComposition(t *testing.T) {
	suite := Fig15Suite(4096, 30, 7)
	if len(suite) != 31 { // 30 + Half-Double
		t.Fatalf("suite size = %d, want 31", len(suite))
	}
	_ = suite
	families := map[string]int{}
	for _, p := range suite {
		switch {
		case len(p.Name) >= 9 && p.Name[:9] == "trrespass":
			families["trrespass"]++
		case len(p.Name) >= 10 && p.Name[:10] == "blacksmith":
			families["blacksmith"]++
		case len(p.Name) >= 7 && p.Name[:7] == "uniform":
			families["uniform"]++
		case len(p.Name) >= 15 && p.Name[:15] == "counter-starver":
			families["starver"]++
		case len(p.Name) >= 11 && p.Name[:11] == "half-double":
			families["halfdouble"]++
		default:
			t.Fatalf("unknown family: %s", p.Name)
		}
	}
	for fam, n := range families {
		if n == 0 {
			t.Fatalf("family %s missing from suite", fam)
		}
	}
}

func TestFig18SuiteScale(t *testing.T) {
	suite := Fig18Suite(8192, 100, 9)
	if len(suite) != 9 { // 500/100 + 400/100
		t.Fatalf("scaled suite = %d patterns, want 9", len(suite))
	}
	full := Fig18Suite(8192, 100, 9)
	for i := range suite {
		if suite[i].Name != full[i].Name || suite[i].Len() != full[i].Len() {
			t.Fatal("Fig18Suite not deterministic for a fixed seed")
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := Fig15Suite(4096, 12, 42)
	b := Fig15Suite(4096, 12, 42)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Len() != b[i].Len() {
			t.Fatalf("pattern %d differs across identical seeds", i)
		}
		for j := range a[i].Sequence {
			if a[i].Sequence[j] != b[i].Sequence[j] {
				t.Fatalf("pattern %d sequence differs at %d", i, j)
			}
		}
	}
}

func TestSuiteRowsWithinBank(t *testing.T) {
	const rowLimit = 2048
	for _, p := range Fig15Suite(rowLimit, 60, 3) {
		for _, row := range p.Sequence {
			if row < 0 || row >= rowLimit {
				t.Fatalf("pattern %s accesses row %d outside [0,%d)", p.Name, row, rowLimit)
			}
		}
	}
}

// Property: every generated pattern has a non-empty sequence and at least
// one aggressor, for arbitrary seeds.
func TestSuitePropertiesHold(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		for _, p := range []*Pattern{
			RandomTRRespass(4096, 32, r.Fork()),
			RandomBlacksmith(4096, 8, r.Fork()),
			UniformRandom(4096, 64, r.Fork()),
		} {
			if p.Len() == 0 || len(p.Aggressors) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"victim sharing BR0": func() { VictimSharing(10, 0) },
		"half-double 0":      func() { HalfDouble(10, 0) },
		"trrespass n0":       func() { TRRespass(10, 0, 1) },
		"blacksmith empty":   func() { Blacksmith(BlacksmithConfig{}) },
		"blacksmith lens": func() {
			Blacksmith(BlacksmithConfig{Pairs: 2, Period: 8, Frequencies: []int{1}})
		},
		"uniform 0":    func() { UniformRandom(0, 10, rng.New(1)) },
		"empty next":   func() { (&Pattern{}).Next() },
		"fig18 scale0": func() { Fig18Suite(4096, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdvanceMatchesNext(t *testing.T) {
	// Advance(n) must land the cursor exactly where n Next calls would, for
	// arbitrary interleavings, including advances spanning many periods.
	pat := TRRespass(100, 7, 3)
	ref := pat.Clone()
	r := rng.New(41)
	for step := 0; step < 200; step++ {
		n := r.Intn(25)
		pat.Advance(n)
		for i := 0; i < n; i++ {
			ref.Next()
		}
		if got, want := pat.Next(), ref.Next(); got != want {
			t.Fatalf("step %d: after Advance(%d) Next() = %d, stepped clone = %d", step, n, got, want)
		}
	}
	pat.Reset()
	pat.Advance(7*1_000_003 + 2)
	if got, want := pat.Next(), pat.Sequence[2]; got != want {
		t.Fatalf("multi-period advance: Next() = %d, want %d", got, want)
	}
}

func TestRunReportsSameRowPrefix(t *testing.T) {
	p := &Pattern{Name: "runs", Sequence: []int{5, 5, 5, 7, 5}}
	for _, tc := range []struct {
		pos, max, wantRow, wantN int
	}{
		{0, 100, 5, 3}, // three 5s then a 7
		{0, 2, 5, 2},   // capped by max
		{3, 100, 7, 1},
		{4, 100, 5, 4}, // wraps: 5 at pos 4, then 5,5,5 at 0..2
		{4, 0, 5, 0},   // max 0: row reported, zero slots claimable
	} {
		p.Reset()
		p.Advance(tc.pos)
		row, n := p.Run(tc.max)
		if row != tc.wantRow || n != tc.wantN {
			t.Errorf("pos %d max %d: Run = (%d, %d), want (%d, %d)",
				tc.pos, tc.max, row, n, tc.wantRow, tc.wantN)
		}
		if again, _ := p.Run(tc.max); again != tc.wantRow {
			t.Errorf("pos %d: Run moved the cursor", tc.pos)
		}
	}

	// A single-row period batches without bound (this is what makes
	// single-sided hammers O(boundaries) on the event engine).
	single := SingleSided(9)
	if row, n := single.Run(1 << 20); row != 9 || n != 1<<20 {
		t.Errorf("single-sided Run = (%d, %d), want (9, %d)", row, n, 1<<20)
	}
	uniform := &Pattern{Name: "uniform", Sequence: []int{3, 3}}
	if row, n := uniform.Run(500); row != 3 || n != 500 {
		t.Errorf("uniform two-slot Run = (%d, %d), want (3, 500)", row, n)
	}
}

func TestAdvanceAndRunPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"advance negative": func() { SingleSided(1).Advance(-1) },
		"advance empty":    func() { (&Pattern{}).Advance(1) },
		"run empty":        func() { (&Pattern{}).Run(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
