package patterns

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadTrace throws arbitrary byte soup at the trace parser. The parser
// must never panic, and whenever it accepts an input, the parsed pattern
// must survive a WriteTrace/ReadTrace round trip with its observable
// behaviour (name, sequence, aggressor set) intact — the property the
// archive-and-replay workflow depends on.
func FuzzReadTrace(f *testing.F) {
	seeds := []string{
		"",
		"name: demo\nseq: 1 2 3\n",
		"# comment\n\nname: x\naggressors: 5 7\nseq: 5 7 5 7\nseq: 9\n",
		"seq: 0\n",
		"seq: 1 2\nname: late-name\n",
		"aggressors:\nseq: 4 4 4\n",
		"name: no-colon\nbogus line\n",
		"unknown: 1 2\nseq: 1\n",
		"seq: -3\n",
		"seq: 1 two 3\n",
		"seq: 99999999999999999999\n",
		"name: spaced  name \n seq : 8 9 \n",
		"name: dup\nname: dup2\nseq: 1\n",
		strings.Repeat("seq: 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16\n", 4),
		// The shape committed corpus entries take: a blacksmith-family name,
		// a sorted aggressors header, and wrapped seq lines (see
		// internal/corpus).
		"name: blacksmith(pairs=2,period=16)\n" +
			"aggressors: 1000 1002 1003 1005\n" +
			"seq: 1000 1002 1000 1002 1003 1005 1003 1005 1000 1002 1000 1002 1003 1005 1003 1005\n" +
			"seq: 3000 3001\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if p != nil {
				t.Fatalf("non-nil pattern alongside error %v", err)
			}
			return
		}
		// Accepted traces must uphold the parser's documented guarantees.
		if len(p.Sequence) == 0 {
			t.Fatal("accepted trace has an empty sequence")
		}
		if p.Name == "" {
			t.Fatal("accepted trace has an empty name")
		}
		if len(p.Aggressors) == 0 {
			t.Fatal("accepted trace derived no aggressors")
		}
		for _, row := range p.Sequence {
			if row < 0 {
				t.Fatalf("negative row %d survived parsing", row)
			}
		}

		// Round trip: what WriteTrace emits, ReadTrace must reproduce.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, p); err != nil {
			t.Fatalf("serializing an accepted pattern failed: %v", err)
		}
		q, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a written trace failed: %v\ntrace:\n%s", err, buf.String())
		}
		if q.Name != p.Name {
			t.Fatalf("name changed across round trip: %q -> %q", p.Name, q.Name)
		}
		if !reflect.DeepEqual(q.Sequence, p.Sequence) {
			t.Fatal("sequence changed across round trip")
		}
		if !sameRowSet(q.Aggressors, p.Aggressors) {
			t.Fatalf("aggressor set changed across round trip: %v -> %v", p.Aggressors, q.Aggressors)
		}
	})
}

// sameRowSet compares aggressor lists as sets: WriteTrace sorts and ReadTrace
// preserves duplicates, so order and multiplicity are not part of the
// contract — membership is.
func sameRowSet(a, b []int) bool {
	as, bs := map[int]bool{}, map[int]bool{}
	for _, v := range a {
		as[v] = true
	}
	for _, v := range b {
		bs[v] = true
	}
	return reflect.DeepEqual(as, bs)
}
