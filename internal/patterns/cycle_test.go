package patterns

import (
	"reflect"
	"testing"
)

func TestCycleLen(t *testing.T) {
	for _, tc := range []struct {
		name string
		pat  *Pattern
		want int
	}{
		{"single-sided", SingleSided(100), 1},
		{"double-sided", DoubleSided(100), 2},
		{"victim-sharing-br2", VictimSharing(100, 2), 4},
		{"trrespass", TRRespass(100, 5, 2), 5},
		{"explicit-repeat", &Pattern{Name: "rep", Sequence: []int{7, 9, 7, 9}}, 2},
		{"repeat-of-three", &Pattern{Name: "rep3", Sequence: []int{1, 2, 2, 1, 2, 2}}, 3},
		{"aperiodic", &Pattern{Name: "ap", Sequence: []int{1, 2, 1, 3}}, 4},
		{"constant", &Pattern{Name: "const", Sequence: []int{5, 5, 5}}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pat.CycleLen(); got != tc.want {
				t.Fatalf("CycleLen() = %d, want %d", got, tc.want)
			}
			// The defining property: the infinite stream is CycleLen-periodic
			// from every position.
			seq, q := tc.pat.Sequence, tc.pat.CycleLen()
			for i := range seq {
				if seq[i] != seq[(i+q)%len(seq)] {
					t.Fatalf("sequence not %d-periodic at %d", q, i)
				}
			}
		})
	}
}

// TestGroupTracksCursor pins the Group contract: at any cursor position the
// next CycleLen activations are rows[phase], rows[phase+1 mod q], ...
func TestGroupTracksCursor(t *testing.T) {
	pats := []*Pattern{
		DoubleSided(50),
		TRRespass(100, 3, 3),
		&Pattern{Name: "rep", Sequence: []int{7, 9, 7, 9}},
		HalfDouble(200, 2),
	}
	for _, p := range pats {
		for step := 0; step < 2*p.Len()+3; step++ {
			rows, phase := p.Group()
			q := p.CycleLen()
			if len(rows) != q {
				t.Fatalf("%s: group size %d != CycleLen %d", p.Name, len(rows), q)
			}
			probe := p.Clone()
			probe.Advance(step) // replay cursor position on a fresh clone
			for i := 0; i < 2*q; i++ {
				if got, want := probe.Next(), rows[(phase+i)%q]; got != want {
					t.Fatalf("%s step %d: activation %d = %d, want group[%d] = %d",
						p.Name, step, i, got, (phase+i)%q, want)
				}
			}
			p.Next()
		}
	}
}

func TestGroupSharesSequencePrefix(t *testing.T) {
	p := DoubleSided(50)
	rows, _ := p.Group()
	if &rows[0] != &p.Sequence[0] {
		t.Fatal("Group must return a shared subslice of Sequence (plan caching keys on slice identity)")
	}
	rows2, _ := p.Group()
	if &rows2[0] != &rows[0] {
		t.Fatal("repeated Group calls must return the identical subslice")
	}
}

func TestClonePropagatesCycleCache(t *testing.T) {
	p := DoubleSided(50)
	if p.CycleLen() != 2 {
		t.Fatal("setup")
	}
	c := p.Clone()
	if c.cycle != 2 {
		t.Fatal("Clone must carry the cached cycle length")
	}
	if !reflect.DeepEqual(c.Sequence, p.Sequence) {
		t.Fatal("Clone must share the sequence")
	}
}
