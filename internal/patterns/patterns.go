// Package patterns generates the Rowhammer attack access patterns the paper
// evaluates against (Section VII-F, Appendix C): classic single/double-sided
// hammering, TRRespass many-sided patterns, Blacksmith frequency-domain
// patterns, Half-Double transitive patterns, victim-sharing patterns, and
// randomized fuzz suites built from those families.
//
// A Pattern is a deterministic, infinitely repeating activation sequence; the
// simulator replays it against a (bank, tracker) pair and measures
// disturbance. Generators take explicit seeds so every figure is exactly
// reproducible.
package patterns

import (
	"fmt"

	"pride/internal/rng"
)

// MaxBatchGroup bounds the repeating-group size the batched multi-row
// engines retire in closed form (dram.Bank.HammerCycle compiles a per-row
// plan of the group, so the useful group size is limited by the plan's
// footprint, not correctness). Patterns with a longer fundamental cycle fall
// back to same-row run batching.
const MaxBatchGroup = 64

// Pattern is a repeating row-activation sequence.
type Pattern struct {
	// Name describes the pattern family and parameters.
	Name string
	// Sequence is one period of row activations.
	Sequence []int
	// Aggressors lists the rows the attack intends as aggressors (used by
	// the metrics to distinguish decoys).
	Aggressors []int

	pos int
	// cycle caches CycleLen's fundamental circular period (0 = not yet
	// computed; Sequence is read-only after construction, so the cache
	// never invalidates).
	cycle int
}

// Next returns the next row to activate, cycling over the period.
func (p *Pattern) Next() int {
	if len(p.Sequence) == 0 {
		panic(fmt.Sprintf("patterns: pattern %q has an empty sequence", p.Name))
	}
	row := p.Sequence[p.pos]
	p.pos++
	if p.pos == len(p.Sequence) {
		p.pos = 0
	}
	return row
}

// Reset rewinds the pattern to the beginning of its period.
func (p *Pattern) Reset() { p.pos = 0 }

// Advance moves the cursor n slots forward in O(1), exactly as n Next calls
// would (without returning the rows). The event-driven simulators use it to
// retire a whole batched activation run in one step.
func (p *Pattern) Advance(n int) {
	if n < 0 {
		panic(fmt.Sprintf("patterns: Advance(%d)", n))
	}
	if len(p.Sequence) == 0 {
		panic(fmt.Sprintf("patterns: pattern %q has an empty sequence", p.Name))
	}
	p.pos = (p.pos + n) % len(p.Sequence)
}

// Run returns the row at the cursor and how many consecutive upcoming slots
// (at most max) activate that same row, scanning circularly. A pattern whose
// entire period is one row reports the full max, so single-sided hammers
// batch without bound. Run does not move the cursor; pair it with Advance.
func (p *Pattern) Run(max int) (row, n int) {
	if len(p.Sequence) == 0 {
		panic(fmt.Sprintf("patterns: pattern %q has an empty sequence", p.Name))
	}
	row = p.Sequence[p.pos]
	if max <= 0 {
		return row, 0
	}
	n = 1
	q := p.pos + 1
	if q == len(p.Sequence) {
		q = 0
	}
	for n < max && p.Sequence[q] == row {
		if q == p.pos {
			// Wrapped all the way around on the same row: the whole period
			// is this row, so the run is unbounded.
			return row, max
		}
		n++
		q++
		if q == len(p.Sequence) {
			q = 0
		}
	}
	return row, n
}

// Clone returns an independent iterator over the same sequence, rewound to
// the start. The sequence and aggressor slices are shared (they are
// read-only after construction), so clones are cheap; only the iteration
// cursor is private. Parallel trial runners clone per trial so concurrent
// replays of one pattern do not race on the cursor.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{Name: p.Name, Sequence: p.Sequence, Aggressors: p.Aggressors, cycle: p.cycle}
}

// Len returns the period length.
func (p *Pattern) Len() int { return len(p.Sequence) }

// CycleLen returns the fundamental circular period of the pattern: the
// smallest q >= 1 such that Sequence[i] == Sequence[(i+q) mod Len()] for
// every i. Such a q always divides Len(), and the infinitely repeated
// activation stream is then q-periodic from ANY cursor position — which is
// what lets the event engines retire an insertion-free stretch as whole
// cycles of a length-q row group (Group) no matter where the cursor sits.
// Computed once per pattern and cached; clones share the cached value.
func (p *Pattern) CycleLen() int {
	if p.cycle == 0 {
		if len(p.Sequence) == 0 {
			panic(fmt.Sprintf("patterns: pattern %q has an empty sequence", p.Name))
		}
		p.cycle = fundamentalPeriod(p.Sequence)
	}
	return p.cycle
}

// fundamentalPeriod finds the smallest circular period of seq. The set of
// valid rotation periods of a circular sequence forms a subgroup of Z_L, so
// the minimum is a divisor of L and only divisors need checking.
func fundamentalPeriod(seq []int) int {
	l := len(seq)
	for q := 1; q < l; q++ {
		if l%q != 0 {
			continue
		}
		periodic := true
		for i := 0; i < l-q; i++ {
			if seq[i] != seq[i+q] {
				periodic = false
				break
			}
		}
		if periodic {
			return q
		}
	}
	return l
}

// Group returns the pattern's repeating row group — one fundamental cycle of
// upcoming rows, as a shared read-only subslice of Sequence — and the
// cursor's phase within it: the next CycleLen() activations are
// rows[phase], rows[phase+1 mod q], ... and the stream repeats with period q
// from there. Group does not move the cursor; pair it with Advance, exactly
// like Run.
func (p *Pattern) Group() (rows []int, phase int) {
	q := p.CycleLen()
	return p.Sequence[:q], p.pos % q
}

// SingleSided returns the classic single-aggressor pattern: row is hammered
// continuously.
func SingleSided(row int) *Pattern {
	return &Pattern{
		Name:       fmt.Sprintf("single-sided(row=%d)", row),
		Sequence:   []int{row},
		Aggressors: []int{row},
	}
}

// DoubleSided returns the double-sided pattern around victim: the two
// adjacent rows are hammered alternately, sharing the victim (Section VI,
// BR=1 victim sharing).
func DoubleSided(victim int) *Pattern {
	return &Pattern{
		Name:       fmt.Sprintf("double-sided(victim=%d)", victim),
		Sequence:   []int{victim - 1, victim + 1},
		Aggressors: []int{victim - 1, victim + 1},
	}
}

// VictimSharing returns the generalized victim-sharing pattern of Figure 13:
// all aggressor rows within blastRadius of the victim are hammered round-
// robin (BR=1 gives 2 aggressors, BR=2 gives 4).
func VictimSharing(victim, blastRadius int) *Pattern {
	if blastRadius < 1 {
		panic(fmt.Sprintf("patterns: blast radius must be >= 1, got %d", blastRadius))
	}
	aggs := make([]int, 0, 2*blastRadius)
	for d := 1; d <= blastRadius; d++ {
		aggs = append(aggs, victim-d, victim+d)
	}
	seq := append([]int(nil), aggs...)
	return &Pattern{
		Name:       fmt.Sprintf("victim-sharing(victim=%d,BR=%d)", victim, blastRadius),
		Sequence:   seq,
		Aggressors: aggs,
	}
}

// HalfDouble returns the Half-Double transitive pattern (Figure 10): the
// far aggressors at distance 2 from the victim are hammered heavily, with
// occasional accesses to the distance-1 rows. Mitigations of the far
// aggressors refresh the distance-1 rows, and those silent refresh
// activations hammer the victim.
func HalfDouble(victim int, farHammersPerNear int) *Pattern {
	if farHammersPerNear < 1 {
		panic(fmt.Sprintf("patterns: farHammersPerNear must be >= 1, got %d", farHammersPerNear))
	}
	far := []int{victim - 2, victim + 2}
	near := []int{victim - 1, victim + 1}
	seq := make([]int, 0, 2*farHammersPerNear+2)
	for i := 0; i < farHammersPerNear; i++ {
		seq = append(seq, far[0], far[1])
	}
	seq = append(seq, near[0], near[1])
	return &Pattern{
		Name:       fmt.Sprintf("half-double(victim=%d)", victim),
		Sequence:   seq,
		Aggressors: append(far, near...),
	}
}

// TRRespass returns a many-sided pattern: nAggressors rows, spaced
// `spacing` rows apart starting at base, hammered round-robin. Exceeding
// the tracker capacity evicts tracked aggressors (Section II-F).
func TRRespass(base, nAggressors, spacing int) *Pattern {
	if nAggressors < 1 || spacing < 1 {
		panic(fmt.Sprintf("patterns: bad TRRespass parameters n=%d spacing=%d", nAggressors, spacing))
	}
	aggs := make([]int, nAggressors)
	for i := range aggs {
		aggs[i] = base + i*spacing
	}
	return &Pattern{
		Name:       fmt.Sprintf("trrespass(n=%d)", nAggressors),
		Sequence:   append([]int(nil), aggs...),
		Aggressors: aggs,
	}
}

// BlacksmithConfig parameterizes a Blacksmith frequency-domain pattern
// (Jattke et al., Oakland 2022): aggressor pairs are scheduled into a
// repeating period at a per-pair frequency, phase and amplitude, with decoy
// rows filling the remaining slots — the structure that defeats
// deterministic in-DRAM samplers.
type BlacksmithConfig struct {
	// Base is the first aggressor row; pairs are spaced 3 rows apart so
	// each pair double-sides its own victim.
	Base int
	// Pairs is the number of double-sided aggressor pairs.
	Pairs int
	// Period is the schedule length in activation slots.
	Period int
	// Frequencies[i] is pair i's schedule period in slots (the pair fires
	// every Frequencies[i] slots).
	Frequencies []int
	// Phases[i] is pair i's offset within its frequency.
	Phases []int
	// Amplitudes[i] is how many back-to-back repeats the pair gets each
	// time it fires.
	Amplitudes []int
	// DecoyRows fill unassigned slots round-robin.
	DecoyRows []int
}

// Blacksmith builds the pattern for cfg.
func Blacksmith(cfg BlacksmithConfig) *Pattern {
	if cfg.Pairs < 1 || cfg.Period < 1 {
		panic(fmt.Sprintf("patterns: bad Blacksmith config %+v", cfg))
	}
	if len(cfg.Frequencies) != cfg.Pairs || len(cfg.Phases) != cfg.Pairs || len(cfg.Amplitudes) != cfg.Pairs {
		panic("patterns: Blacksmith per-pair parameter lengths must equal Pairs")
	}
	slots := make([][]int, cfg.Period)
	aggs := make([]int, 0, 2*cfg.Pairs)
	for i := 0; i < cfg.Pairs; i++ {
		a1 := cfg.Base + 3*i
		a2 := a1 + 2 // double-sides the row between them
		aggs = append(aggs, a1, a2)
		freq, phase, amp := cfg.Frequencies[i], cfg.Phases[i], cfg.Amplitudes[i]
		if freq < 1 || amp < 1 {
			panic(fmt.Sprintf("patterns: Blacksmith pair %d has freq=%d amp=%d", i, freq, amp))
		}
		for slot := phase % cfg.Period; slot < cfg.Period; slot += freq {
			for rep := 0; rep < amp; rep++ {
				slots[slot] = append(slots[slot], a1, a2)
			}
		}
	}
	seq := make([]int, 0, 2*cfg.Period)
	decoy := 0
	for _, s := range slots {
		if len(s) == 0 {
			if len(cfg.DecoyRows) > 0 {
				seq = append(seq, cfg.DecoyRows[decoy%len(cfg.DecoyRows)])
				decoy++
			}
			continue
		}
		seq = append(seq, s...)
	}
	if len(seq) == 0 {
		panic("patterns: Blacksmith produced an empty sequence")
	}
	return &Pattern{
		Name:       fmt.Sprintf("blacksmith(pairs=%d,period=%d)", cfg.Pairs, cfg.Period),
		Sequence:   seq,
		Aggressors: aggs,
	}
}

// CounterStarver builds the decoy-count-gradient pattern that defeats
// counter-driven trackers (the structure TRRespass/Blacksmith fuzzing
// discovers against DSAC-like designs, Section VII-F):
//
//   - nDecoys decoy rows are hammered in bursts, keeping their tracked
//     counters far above any aggressor's. The mitigation policy (max
//     counter) therefore always retires decoys.
//   - The nAggressors true aggressor rows are interleaved at low per-row
//     rates: when tracked they hold the MINIMUM counter, so the insertion
//     policy (replace-min with probability 1/(min+1)) both starves their
//     insertion and churns them out before they can accumulate counts.
//
// The aggressors' activation counts therefore grow without bound between
// mitigations — while the same sequence against PrIDE is just traffic, each
// activation sampled with the same probability p.
func CounterStarver(base, nAggressors, nDecoys, decoyBurst, aggressorReps int) *Pattern {
	if nAggressors < 1 || nDecoys < 1 || decoyBurst < 1 || aggressorReps < 1 {
		panic(fmt.Sprintf("patterns: bad CounterStarver parameters n=%d d=%d burst=%d reps=%d",
			nAggressors, nDecoys, decoyBurst, aggressorReps))
	}
	aggs := make([]int, nAggressors)
	for i := range aggs {
		aggs[i] = base + 3*i
	}
	decoyBase := base + 3*nAggressors + 8
	seq := make([]int, 0, nDecoys*(decoyBurst+nAggressors*aggressorReps))
	for d := 0; d < nDecoys; d++ {
		decoy := decoyBase + 3*d
		for i := 0; i < decoyBurst; i++ {
			seq = append(seq, decoy)
		}
		for rep := 0; rep < aggressorReps; rep++ {
			seq = append(seq, aggs...)
		}
	}
	return &Pattern{
		Name:       fmt.Sprintf("counter-starver(agg=%d,decoys=%d)", nAggressors, nDecoys),
		Sequence:   seq,
		Aggressors: aggs,
	}
}

// UniformRandom returns a pattern of period activations drawn uniformly
// from [0, rows): the unstructured fuzz component of the Fig 15 suite.
func UniformRandom(rows, period int, r *rng.Stream) *Pattern {
	if rows < 1 || period < 1 {
		panic(fmt.Sprintf("patterns: bad UniformRandom rows=%d period=%d", rows, period))
	}
	seq := make([]int, period)
	seen := map[int]bool{}
	for i := range seq {
		seq[i] = r.Intn(rows)
		seen[seq[i]] = true
	}
	aggs := make([]int, 0, len(seen))
	for row := range seen {
		aggs = append(aggs, row)
	}
	return &Pattern{
		Name:       fmt.Sprintf("uniform-random(rows=%d)", len(seen)),
		Sequence:   seq,
		Aggressors: aggs,
	}
}
