package patterns

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The trace file format is line-oriented and diff-friendly, so attack
// patterns can be exported, archived alongside experiment results, edited by
// hand, and replayed bit-identically:
//
//	# optional comments
//	name: blacksmith(pairs=8,period=32)
//	aggressors: 1000 1002 1003 1005
//	seq: 1000 1002 1000 1002 3000
//	seq: 1003 1005
//
// Multiple seq lines concatenate. Row addresses are decimal.

// WriteTrace serializes p to w in the trace file format.
func WriteTrace(w io.Writer, p *Pattern) error {
	if p == nil || len(p.Sequence) == 0 {
		return fmt.Errorf("patterns: cannot serialize an empty pattern")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "name: %s\n", p.Name)
	fmt.Fprintf(bw, "aggressors:")
	aggs := append([]int(nil), p.Aggressors...)
	sort.Ints(aggs)
	for _, a := range aggs {
		fmt.Fprintf(bw, " %d", a)
	}
	fmt.Fprintln(bw)
	const perLine = 16
	for i := 0; i < len(p.Sequence); i += perLine {
		end := i + perLine
		if end > len(p.Sequence) {
			end = len(p.Sequence)
		}
		fmt.Fprintf(bw, "seq:")
		for _, row := range p.Sequence[i:end] {
			fmt.Fprintf(bw, " %d", row)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadTrace parses a pattern from the trace file format. Unknown keys are
// rejected (a typo in a hand-edited trace should fail loudly, not silently
// change the experiment).
func ReadTrace(r io.Reader) (*Pattern, error) {
	p := &Pattern{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("patterns: trace line %d: missing ':' in %q", lineNo, line)
		}
		rest = strings.TrimSpace(rest)
		switch strings.TrimSpace(key) {
		case "name":
			p.Name = rest
		case "aggressors":
			rows, err := parseRows(rest)
			if err != nil {
				return nil, fmt.Errorf("patterns: trace line %d: %v", lineNo, err)
			}
			p.Aggressors = append(p.Aggressors, rows...)
		case "seq":
			rows, err := parseRows(rest)
			if err != nil {
				return nil, fmt.Errorf("patterns: trace line %d: %v", lineNo, err)
			}
			p.Sequence = append(p.Sequence, rows...)
		default:
			return nil, fmt.Errorf("patterns: trace line %d: unknown key %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("patterns: reading trace: %v", err)
	}
	if len(p.Sequence) == 0 {
		return nil, fmt.Errorf("patterns: trace contains no seq lines")
	}
	if p.Name == "" {
		p.Name = "trace"
	}
	if len(p.Aggressors) == 0 {
		// Derive: every distinct row is a potential aggressor.
		seen := map[int]bool{}
		for _, row := range p.Sequence {
			if !seen[row] {
				seen[row] = true
				p.Aggressors = append(p.Aggressors, row)
			}
		}
	}
	return p, nil
}

func parseRows(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	rows := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad row %q", f)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative row %d", v)
		}
		rows = append(rows, v)
	}
	return rows, nil
}
