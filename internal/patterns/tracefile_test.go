package patterns

import (
	"strings"
	"testing"
	"testing/quick"

	"pride/internal/rng"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := Blacksmith(BlacksmithConfig{
		Base: 100, Pairs: 3, Period: 16,
		Frequencies: []int{2, 4, 8},
		Phases:      []int{0, 1, 2},
		Amplitudes:  []int{1, 2, 1},
		DecoyRows:   []int{900},
	})
	var sb strings.Builder
	if err := WriteTrace(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Fatalf("name %q != %q", got.Name, orig.Name)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("length %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Sequence {
		if got.Sequence[i] != orig.Sequence[i] {
			t.Fatalf("sequence differs at %d", i)
		}
	}
	if len(got.Aggressors) != len(orig.Aggressors) {
		t.Fatalf("aggressors %v != %v", got.Aggressors, orig.Aggressors)
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		p := RandomTRRespass(4096, 16, rng.New(seed))
		var sb strings.Builder
		if WriteTrace(&sb, p) != nil {
			return false
		}
		got, err := ReadTrace(strings.NewReader(sb.String()))
		if err != nil || got.Len() != p.Len() {
			return false
		}
		for i := range p.Sequence {
			if got.Sequence[i] != p.Sequence[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceTolerances(t *testing.T) {
	in := `
# a hand-written trace
name: my-attack

seq: 1 2 3
# interleaved comment
seq: 4 5
`
	p, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-attack" || p.Len() != 5 {
		t.Fatalf("parsed %q len %d", p.Name, p.Len())
	}
	// Aggressors derived from distinct rows when omitted.
	if len(p.Aggressors) != 5 {
		t.Fatalf("derived aggressors = %v", p.Aggressors)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"no seq":        "name: x\n",
		"bad row":       "seq: 1 two 3\n",
		"negative":      "seq: -4\n",
		"unknown key":   "bogus: 1\nseq: 1\n",
		"missing colon": "seq 1 2 3\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteTraceRejectsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTrace(&sb, &Pattern{Name: "empty"}); err == nil {
		t.Fatal("empty pattern serialized")
	}
	if err := WriteTrace(&sb, nil); err == nil {
		t.Fatal("nil pattern serialized")
	}
}
