package patterns

import "pride/internal/rng"

// suiteRowBudget keeps generated patterns inside small test banks: rows are
// placed in [64, rowLimit) with enough spacing to avoid shared victims
// unless the family wants them.
const suiteMargin = 64

// RandomTRRespass generates a randomized many-sided pattern in the Fig 18
// style: 2 to maxAggressors aggressor rows at random spacing, optionally
// interleaved with decoy rows accessed once per round.
func RandomTRRespass(rowLimit, maxAggressors int, r *rng.Stream) *Pattern {
	if maxAggressors < 2 {
		panic("patterns: maxAggressors must be >= 2")
	}
	n := 2 + r.Intn(maxAggressors-1)
	spacing := 3 + r.Intn(5)
	maxBase := rowLimit - suiteMargin - n*spacing
	if maxBase <= suiteMargin {
		panic("patterns: rowLimit too small for the aggressor span")
	}
	base := suiteMargin + r.Intn(maxBase-suiteMargin)
	p := TRRespass(base, n, spacing)

	// Optionally append decoys (non-adjacent rows) to make the pattern
	// non-uniform: trackers driven by counters chase them.
	if r.Bernoulli(0.5) {
		decoys := 1 + r.Intn(8)
		for d := 0; d < decoys; d++ {
			row := suiteMargin + r.Intn(rowLimit-2*suiteMargin)
			reps := 1 + r.Intn(4)
			for i := 0; i < reps; i++ {
				p.Sequence = append(p.Sequence, row)
			}
		}
		p.Name += "+decoys"
	}
	return p
}

// RandomBlacksmith generates a randomized frequency-domain pattern in the
// Fig 18 style: 2 to maxPairs aggressor pairs with random frequencies,
// phases and amplitudes, plus decoy rows.
func RandomBlacksmith(rowLimit, maxPairs int, r *rng.Stream) *Pattern {
	if maxPairs < 2 {
		panic("patterns: maxPairs must be >= 2")
	}
	pairs := 2 + r.Intn(maxPairs-1)
	period := 16 << r.Intn(3) // 16, 32 or 64 slots
	maxBase := rowLimit - suiteMargin - 3*pairs - 2
	if maxBase <= suiteMargin {
		panic("patterns: rowLimit too small for the pair span")
	}
	base := suiteMargin + r.Intn(maxBase-suiteMargin)

	freqs := make([]int, pairs)
	phases := make([]int, pairs)
	amps := make([]int, pairs)
	for i := range freqs {
		freqs[i] = 1 << (1 + r.Intn(4)) // 2..16 slots
		phases[i] = r.Intn(freqs[i])
		amps[i] = 1 + r.Intn(4)
	}
	nDecoys := 2 + r.Intn(8)
	decoys := make([]int, nDecoys)
	for i := range decoys {
		decoys[i] = suiteMargin + r.Intn(rowLimit-2*suiteMargin)
	}
	return Blacksmith(BlacksmithConfig{
		Base:        base,
		Pairs:       pairs,
		Period:      period,
		Frequencies: freqs,
		Phases:      phases,
		Amplitudes:  amps,
		DecoyRows:   decoys,
	})
}

// Fig15Suite generates the Section VII-F evaluation suite: `count` randomly
// generated uniform and non-uniform patterns based on TRRespass and
// Blacksmith, plus one Half-Double pattern. The paper uses count=500.
func Fig15Suite(rowLimit, count int, seed uint64) []*Pattern {
	r := rng.New(seed)
	out := make([]*Pattern, 0, count+1)
	for i := 0; i < count; i++ {
		switch i % 4 {
		case 0:
			out = append(out, RandomTRRespass(rowLimit, 64, r.Fork()))
		case 1:
			out = append(out, RandomBlacksmith(rowLimit, 16, r.Fork()))
		case 2:
			fork := r.Fork()
			out = append(out, CounterStarver(
				suiteMargin+fork.Intn(rowLimit/2),
				2+fork.Intn(10),  // aggressors
				16+fork.Intn(16), // decoys
				20+fork.Intn(20), // decoy burst
				1+fork.Intn(4),   // aggressor reps
			))
		default:
			out = append(out, UniformRandom(rowLimit-suiteMargin, 64+r.Intn(256), r.Fork()))
		}
	}
	out = append(out, HalfDouble(rowLimit/2, 16))
	return out
}

// Fig18Suite generates the Appendix C validation suite: 500 TRRespass traces
// with 2 to maxTRRespassRows aggressors and 400 Blacksmith traces with up to
// maxBlacksmithPairs pairs and 20-80 decoy rows. The paper uses 900 traces
// with up to 501 TRRespass rows; `scale` divides the trace counts so tests
// can run a subset (scale=1 reproduces the full suite).
func Fig18Suite(rowLimit int, scale int, seed uint64) []*Pattern {
	if scale < 1 {
		panic("patterns: scale must be >= 1")
	}
	r := rng.New(seed)
	out := make([]*Pattern, 0, 900/scale)
	for i := 0; i < 500/scale; i++ {
		out = append(out, RandomTRRespass(rowLimit, 96, r.Fork()))
	}
	for i := 0; i < 400/scale; i++ {
		p := RandomBlacksmith(rowLimit, 16, r.Fork())
		// The Fig 18 traces repeat the core pattern 2-32 times with 20-80
		// decoys; approximate by extending the sequence with decoy bursts.
		decoys := 20 + r.Intn(61)
		for d := 0; d < decoys; d++ {
			p.Sequence = append(p.Sequence, suiteMargin+r.Intn(rowLimit-2*suiteMargin))
		}
		out = append(out, p)
	}
	return out
}
