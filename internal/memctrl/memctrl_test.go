package memctrl

import (
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/rng"
	"pride/internal/tracker"
)

func smallParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 2048
	p.RowBits = 11
	return p
}

func newPride(seed uint64) *core.PrIDE {
	return core.New(core.DefaultConfig(79), rng.New(seed))
}

func TestREFCadence(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(1))
	w := p.ACTsPerTREFI()
	for i := 0; i < 5*w; i++ {
		c.Activate(100)
	}
	if got := c.Stats().REFs; got != 5 {
		t.Fatalf("REFs = %d after 5 windows, want 5", got)
	}
	if got := c.Stats().ACTs; got != uint64(5*w) {
		t.Fatalf("ACTs = %d, want %d", got, 5*w)
	}
}

func TestMitigationEverySecondREF(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.MitigationEveryNREF = 2

	// p=1 tracker: every ACT inserts, so every opportunity mitigates.
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1
	tcfg.TransitiveProtection = false
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(2)))

	w := p.ACTsPerTREFI()
	for i := 0; i < 10*w; i++ {
		c.Activate(100 + i%3)
	}
	st := c.Stats()
	if st.REFs != 10 {
		t.Fatalf("REFs = %d, want 10", st.REFs)
	}
	if st.Mitigations != 5 {
		t.Fatalf("mitigations = %d with every-2-REF cadence, want 5", st.Mitigations)
	}
}

func TestRFMIssuesExtraMitigations(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.RFMThreshold = 16

	tcfg := core.RFMConfig(core.RFM16)
	tcfg.InsertionProb = 1 // force full queues so every opportunity fires
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(3)))

	w := p.ACTsPerTREFI()
	for i := 0; i < 10*w; i++ {
		c.Activate(100 + i%5)
	}
	st := c.Stats()
	wantRFMs := uint64(10 * w / 16)
	if st.RFMs != wantRFMs {
		t.Fatalf("RFMs = %d, want %d (one per 16 ACTs)", st.RFMs, wantRFMs)
	}
	// Mitigations come from both REF and RFM opportunities.
	if st.Mitigations <= st.REFs {
		t.Fatalf("mitigations = %d should exceed REF-only %d", st.Mitigations, st.REFs)
	}
}

func TestImmediateMitigationDispatch(t *testing.T) {
	p := smallParams()
	bank := dram.MustNewBank(p, 0)
	para := baseline.NewPARA(1, rng.New(4)) // mitigate every ACT
	c := New(DefaultConfig(p), bank, para)
	c.Activate(500)
	st := c.Stats()
	if st.Mitigations != 1 {
		t.Fatalf("PARA immediate mitigations = %d, want 1", st.Mitigations)
	}
	if st.VictimRefreshes != 2 {
		t.Fatalf("victim refreshes = %d, want 2 (both neighbours)", st.VictimRefreshes)
	}
	if bank.HammerCount(499) > 1 {
		t.Fatalf("victim 499 hammers = %d after immediate mitigation", bank.HammerCount(499))
	}
}

func TestVictimRefreshAccounting(t *testing.T) {
	p := smallParams()
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1
	tcfg.TransitiveProtection = false
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), core.New(tcfg, rng.New(5)))
	w := p.ACTsPerTREFI()
	for i := 0; i < w; i++ {
		c.Activate(1000)
	}
	st := c.Stats()
	if st.Mitigations != 1 {
		t.Fatalf("mitigations = %d, want 1", st.Mitigations)
	}
	if st.VictimRefreshes != 2 {
		t.Fatalf("victim refreshes = %d, want 2", st.VictimRefreshes)
	}
}

func TestIdleAdvancesREF(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(6))
	for i := 0; i < 7; i++ {
		c.Idle()
	}
	if got := c.Stats().REFs; got != 7 {
		t.Fatalf("REFs after 7 idle tREFIs = %d, want 7", got)
	}
}

func TestPeriodicRefreshClearsHammers(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.PeriodicRefresh = true
	// A tracker that never mitigates isolates the periodic sweep.
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1e-12
	tcfg.TransitiveProtection = false
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(7)))
	w := p.ACTsPerTREFI()
	victim := 201
	for i := 0; i < p.TREFIsPerTREFW()*w+w; i++ {
		c.Activate(200)
	}
	// After a full tREFW of REFs, the victim's count must have been reset
	// at least once: its current count is far below the total ACT count.
	if got := c.Bank().HammerCount(victim); got >= int(c.Stats().ACTs)/2 {
		t.Fatalf("victim hammers = %d never reset by periodic refresh", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(8))
	for i := 0; i < 500; i++ {
		c.Activate(i % 100)
	}
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", c.Stats())
	}
	if c.Bank().MaxDisturbance() != 0 || c.Tracker().Occupancy() != 0 {
		t.Fatal("bank/tracker state survived Reset")
	}
}

func TestConfigValidation(t *testing.T) {
	p := smallParams()
	cases := []Config{
		{Params: p, MitigationEveryNREF: 0},
		{Params: p, MitigationEveryNREF: 1, RFMThreshold: -1},
		{Params: dram.Params{}, MitigationEveryNREF: 1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with nil bank did not panic")
			}
		}()
		New(DefaultConfig(p), nil, newPride(9))
	}()
}

func TestTrackerInterfaceThreading(t *testing.T) {
	// The controller must work with any tracker.Tracker.
	p := smallParams()
	var trackers = []tracker.Tracker{
		newPride(10),
		baseline.NewDSAC(20, 11, rng.New(11)),
		baseline.NewTRR(16, 11),
		baseline.NewPARFM(79, 11, rng.New(12)),
	}
	for _, trk := range trackers {
		c := New(DefaultConfig(p), dram.MustNewBank(p, 0), trk)
		for i := 0; i < 1000; i++ {
			c.Activate(i % 50)
		}
		if c.Stats().ACTs != 1000 {
			t.Errorf("%s: ACTs = %d", trk.Name(), c.Stats().ACTs)
		}
	}
}
