package memctrl

import (
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/rng"
	"pride/internal/tracker"
)

func smallParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 2048
	p.RowBits = 11
	return p
}

func newPride(seed uint64) *core.PrIDE {
	return core.New(core.DefaultConfig(79), rng.New(seed))
}

func TestREFCadence(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(1))
	w := p.ACTsPerTREFI()
	for i := 0; i < 5*w; i++ {
		c.Activate(100)
	}
	if got := c.Stats().REFs; got != 5 {
		t.Fatalf("REFs = %d after 5 windows, want 5", got)
	}
	if got := c.Stats().ACTs; got != uint64(5*w) {
		t.Fatalf("ACTs = %d, want %d", got, 5*w)
	}
}

func TestMitigationEverySecondREF(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.MitigationEveryNREF = 2

	// p=1 tracker: every ACT inserts, so every opportunity mitigates.
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1
	tcfg.TransitiveProtection = false
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(2)))

	w := p.ACTsPerTREFI()
	for i := 0; i < 10*w; i++ {
		c.Activate(100 + i%3)
	}
	st := c.Stats()
	if st.REFs != 10 {
		t.Fatalf("REFs = %d, want 10", st.REFs)
	}
	if st.Mitigations != 5 {
		t.Fatalf("mitigations = %d with every-2-REF cadence, want 5", st.Mitigations)
	}
}

func TestRFMIssuesExtraMitigations(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.RFMThreshold = 16

	tcfg := core.RFMConfig(core.RFM16)
	tcfg.InsertionProb = 1 // force full queues so every opportunity fires
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(3)))

	w := p.ACTsPerTREFI()
	for i := 0; i < 10*w; i++ {
		c.Activate(100 + i%5)
	}
	st := c.Stats()
	wantRFMs := uint64(10 * w / 16)
	if st.RFMs != wantRFMs {
		t.Fatalf("RFMs = %d, want %d (one per 16 ACTs)", st.RFMs, wantRFMs)
	}
	// Mitigations come from both REF and RFM opportunities.
	if st.Mitigations <= st.REFs {
		t.Fatalf("mitigations = %d should exceed REF-only %d", st.Mitigations, st.REFs)
	}
}

func TestImmediateMitigationDispatch(t *testing.T) {
	p := smallParams()
	bank := dram.MustNewBank(p, 0)
	para := baseline.NewPARA(1, rng.New(4)) // mitigate every ACT
	c := New(DefaultConfig(p), bank, para)
	c.Activate(500)
	st := c.Stats()
	if st.Mitigations != 1 {
		t.Fatalf("PARA immediate mitigations = %d, want 1", st.Mitigations)
	}
	if st.VictimRefreshes != 2 {
		t.Fatalf("victim refreshes = %d, want 2 (both neighbours)", st.VictimRefreshes)
	}
	if bank.HammerCount(499) > 1 {
		t.Fatalf("victim 499 hammers = %d after immediate mitigation", bank.HammerCount(499))
	}
}

func TestVictimRefreshAccounting(t *testing.T) {
	p := smallParams()
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1
	tcfg.TransitiveProtection = false
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), core.New(tcfg, rng.New(5)))
	w := p.ACTsPerTREFI()
	for i := 0; i < w; i++ {
		c.Activate(1000)
	}
	st := c.Stats()
	if st.Mitigations != 1 {
		t.Fatalf("mitigations = %d, want 1", st.Mitigations)
	}
	if st.VictimRefreshes != 2 {
		t.Fatalf("victim refreshes = %d, want 2", st.VictimRefreshes)
	}
}

func TestIdleAdvancesREF(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(6))
	for i := 0; i < 7; i++ {
		c.Idle()
	}
	if got := c.Stats().REFs; got != 7 {
		t.Fatalf("REFs after 7 idle tREFIs = %d, want 7", got)
	}
}

func TestPeriodicRefreshClearsHammers(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.PeriodicRefresh = true
	// A tracker that never mitigates isolates the periodic sweep.
	tcfg := core.DefaultConfig(79)
	tcfg.InsertionProb = 1e-12
	tcfg.TransitiveProtection = false
	c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.New(7)))
	w := p.ACTsPerTREFI()
	victim := 201
	for i := 0; i < p.TREFIsPerTREFW()*w+w; i++ {
		c.Activate(200)
	}
	// After a full tREFW of REFs, the victim's count must have been reset
	// at least once: its current count is far below the total ACT count.
	if got := c.Bank().HammerCount(victim); got >= int(c.Stats().ACTs)/2 {
		t.Fatalf("victim hammers = %d never reset by periodic refresh", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := smallParams()
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), newPride(8))
	for i := 0; i < 500; i++ {
		c.Activate(i % 100)
	}
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", c.Stats())
	}
	if c.Bank().MaxDisturbance() != 0 || c.Tracker().Occupancy() != 0 {
		t.Fatal("bank/tracker state survived Reset")
	}
}

func TestConfigValidation(t *testing.T) {
	p := smallParams()
	cases := []Config{
		{Params: p, MitigationEveryNREF: 0},
		{Params: p, MitigationEveryNREF: 1, RFMThreshold: -1},
		{Params: dram.Params{}, MitigationEveryNREF: 1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with nil bank did not panic")
			}
		}()
		New(DefaultConfig(p), nil, newPride(9))
	}()
}

func TestTrackerInterfaceThreading(t *testing.T) {
	// The controller must work with any tracker.Tracker.
	p := smallParams()
	var trackers = []tracker.Tracker{
		newPride(10),
		baseline.NewDSAC(20, 11, rng.New(11)),
		baseline.NewTRR(16, 11),
		baseline.NewPARFM(79, 11, rng.New(12)),
	}
	for _, trk := range trackers {
		c := New(DefaultConfig(p), dram.MustNewBank(p, 0), trk)
		for i := 0; i < 1000; i++ {
			c.Activate(i % 50)
		}
		if c.Stats().ACTs != 1000 {
			t.Errorf("%s: ACTs = %d", trk.Name(), c.Stats().ACTs)
		}
	}
}

// modeSource is a rigged rng source whose constant output the test switches
// between events, deciding every tracker threshold compare: fireDraw makes
// any Bernoulli fire, idleDraw makes any Bernoulli with p < 1 fail.
type modeSource struct{ v uint64 }

func (m *modeSource) Uint64() uint64 { return m.v }

const (
	fireDraw = uint64(0)
	idleDraw = ^uint64(0)
)

// controllersEqual compares all observable controller, bank, and tracker
// state between the stepped reference and the bulk-advance instance.
func controllersEqual(t *testing.T, label string, stepped, bulk *Controller) {
	t.Helper()
	if a, b := stepped.Stats(), bulk.Stats(); a != b {
		t.Fatalf("%s: controller stats diverged:\nstepped %+v\nbulk    %+v", label, a, b)
	}
	sb, bb := stepped.Bank(), bulk.Bank()
	if a, b := sb.Stats(), bb.Stats(); a != b {
		t.Fatalf("%s: bank stats diverged:\nstepped %+v\nbulk    %+v", label, a, b)
	}
	if a, b := sb.MaxDisturbance(), bb.MaxDisturbance(); a != b {
		t.Fatalf("%s: MaxDisturbance %d vs %d", label, a, b)
	}
	af, bf := sb.Flips(), bb.Flips()
	if len(af) != len(bf) {
		t.Fatalf("%s: %d flips vs %d", label, len(af), len(bf))
	}
	for i := range af {
		if af[i] != bf[i] {
			t.Fatalf("%s: flip %d diverged: stepped %+v, bulk %+v", label, i, af[i], bf[i])
		}
	}
	for r := 0; r < sb.Rows(); r++ {
		if a, b := sb.HammerCount(r), bb.HammerCount(r); a != b {
			t.Fatalf("%s: row %d hammers %d vs %d", label, r, a, b)
		}
		if a, b := sb.ActivationRun(r), bb.ActivationRun(r); a != b {
			t.Fatalf("%s: row %d actRun %d vs %d", label, r, a, b)
		}
	}
	sp, okS := stepped.Tracker().(*core.PrIDE)
	bp, okB := bulk.Tracker().(*core.PrIDE)
	if okS && okB {
		a, b := sp.Snapshot(), bp.Snapshot()
		if len(a) != len(b) {
			t.Fatalf("%s: tracker occupancy %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: tracker entry %d diverged: %+v vs %+v", label, i, a[i], b[i])
			}
		}
		if sp.Stats() != bp.Stats() {
			t.Fatalf("%s: tracker stats diverged:\nstepped %+v\nbulk    %+v", label, sp.Stats(), bp.Stats())
		}
	}
}

// TestActivateRunEquivalentToStepped drives a stepped controller (one
// Activate per ACT, insertion draws scripted per ACT) and a bulk controller
// (ActivateRun for idle stretches, ActivateInsert at insertion points)
// through identical schedules and requires every observable — controller
// stats, REF/RFM cadence, bank hammer state, flips, tracker queue — to
// match exactly. Covers RFM on/off, periodic refresh, and flips.
func TestActivateRunEquivalentToStepped(t *testing.T) {
	for _, rfm := range []int{0, 16} {
		p := smallParams()
		cfg := DefaultConfig(p)
		cfg.RFMThreshold = rfm
		cfg.PeriodicRefresh = true

		tcfg := core.DefaultConfig(79)
		tcfg.TransitiveProtection = false // OnMitigate must not draw: the
		// stepped source's per-ACT mode also feeds boundary mitigations.
		newCtl := func(src *modeSource) *Controller {
			return New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(src)))
		}
		steppedSrc := &modeSource{v: idleDraw}
		bulkSrc := &modeSource{v: idleDraw}
		stepped := newCtl(steppedSrc)
		bulk := newCtl(bulkSrc)
		if _, ok := bulk.SkipAdvancer(); !ok {
			t.Fatal("secure PrIDE config did not expose a SkipAdvancer")
		}

		s := uint64(rfm + 7)
		for ev := 0; ev < 300; ev++ {
			s = s*6364136223846793005 + 1442695040888963407
			row := int(s>>33) % p.RowsPerBank
			switch s % 8 {
			case 0:
				stepped.Idle()
				bulk.Idle()
			case 1:
				steppedSrc.v = fireDraw
				stepped.Activate(row)
				bulk.ActivateInsert(row)
			default:
				n := int(s>>17) % 250 // up to ~3 tREFI windows per run
				steppedSrc.v = idleDraw
				for i := 0; i < n; i++ {
					stepped.Activate(row)
				}
				bulk.ActivateRun(row, n)
			}
		}
		controllersEqual(t, "rfm="+string(rune('0'+rfm%10)), stepped, bulk)
	}
}

// TestActivateInsertEquivalentWithTransitive covers the draw-consuming
// mitigation path: with transitive protection on and every compare rigged to
// fire, the stepped path (Activate, insertion draw fires every ACT) and the
// bulk path (ActivateInsert every ACT) must stay identical through REF/RFM
// boundaries whose OnMitigate re-insertion draws also fire.
func TestActivateInsertEquivalentWithTransitive(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.RFMThreshold = 32

	tcfg := core.DefaultConfig(79)
	steppedSrc := &modeSource{v: fireDraw}
	bulkSrc := &modeSource{v: fireDraw}
	stepped := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.NewStream(steppedSrc)))
	bulk := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.NewStream(bulkSrc)))

	s := uint64(5)
	for act := 0; act < 2000; act++ {
		s = s*6364136223846793005 + 1442695040888963407
		row := int(s>>33) % p.RowsPerBank
		stepped.Activate(row)
		bulk.ActivateInsert(row)
	}
	controllersEqual(t, "transitive all-fire", stepped, bulk)
}

// TestActivateRunWithPARA exercises the immediate-mitigation drain on the
// skip-ahead path: PARA's insertions dispatch inline, idle runs dispatch
// nothing.
func TestActivateRunWithPARA(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	steppedSrc := &modeSource{v: idleDraw}
	stepped := New(cfg, dram.MustNewBank(p, 25), baseline.NewPARA(1.0/80, rng.NewStream(steppedSrc)))
	bulk := New(cfg, dram.MustNewBank(p, 25), baseline.NewPARA(1.0/80, rng.New(1)))
	if _, ok := bulk.SkipAdvancer(); !ok {
		t.Fatal("PARA did not expose a SkipAdvancer")
	}

	s := uint64(11)
	for ev := 0; ev < 200; ev++ {
		s = s*6364136223846793005 + 1442695040888963407
		row := int(s>>33) % p.RowsPerBank
		if s%6 == 0 {
			steppedSrc.v = fireDraw
			stepped.Activate(row)
			bulk.ActivateInsert(row)
		} else {
			n := int(s>>17) % 150
			steppedSrc.v = idleDraw
			for i := 0; i < n; i++ {
				stepped.Activate(row)
			}
			bulk.ActivateRun(row, n)
		}
	}
	controllersEqual(t, "PARA", stepped, bulk)
}

// TestSkipAdvancerGate pins the setup-time decision: insecure PrIDE configs
// and non-skip-capable trackers must not expose a SkipAdvancer.
func TestSkipAdvancerGate(t *testing.T) {
	p := smallParams()
	insecure := core.DefaultConfig(79)
	insecure.InsecureAlwaysInsertIfInvalid = true
	c := New(DefaultConfig(p), dram.MustNewBank(p, 0), core.New(insecure, rng.New(1)))
	if _, ok := c.SkipAdvancer(); ok {
		t.Fatal("insecure PrIDE config exposed a SkipAdvancer")
	}
	c = New(DefaultConfig(p), dram.MustNewBank(p, 0), baseline.NewTRR(16, 11))
	if _, ok := c.SkipAdvancer(); ok {
		t.Fatal("TRR exposed a SkipAdvancer")
	}
}
