package memctrl

import (
	"fmt"
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/guard"
	"pride/internal/rng"
)

// groupTestGroups are the repeating row groups the multi-row tests walk:
// the double-sided pair, a many-sided group whose members disturb each
// other, and a Half-Double-shaped group that repeats a member per cycle.
func groupTestGroups() [][]int {
	return [][]int{
		{500, 502},
		{700, 701, 703},
		{900, 904, 900, 904, 901, 903},
	}
}

// TestActivateRunGroupEquivalentToStepped drives a stepped controller (one
// Activate per ACT, draws scripted) and a bulk controller (ActivateRunGroup
// for idle stretches, ActivateInsert at insertion points) through identical
// schedules walking a repeating row group, and requires every observable to
// match exactly. PeriodicRefresh keeps the quiet-cadence collapse out of
// play so the boundary-splitting loop itself is what's exercised; RFM on
// and off covers both cadence shapes.
func TestActivateRunGroupEquivalentToStepped(t *testing.T) {
	for _, rfm := range []int{0, 16} {
		for gi, group := range groupTestGroups() {
			t.Run(fmt.Sprintf("rfm=%d/group=%d", rfm, gi), func(t *testing.T) {
				p := smallParams()
				cfg := DefaultConfig(p)
				cfg.RFMThreshold = rfm
				cfg.PeriodicRefresh = true
				cfg.SelfCheck = true

				tcfg := core.DefaultConfig(79)
				tcfg.TransitiveProtection = false // boundary mitigations must not draw
				steppedSrc := &modeSource{v: idleDraw}
				stepped := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(steppedSrc)))
				bulk := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))

				q := len(group)
				phase := 0
				s := uint64(rfm*13 + gi + 5)
				for ev := 0; ev < 250; ev++ {
					s = s*6364136223846793005 + 1442695040888963407
					switch s % 8 {
					case 0:
						stepped.Idle()
						bulk.Idle()
					case 1:
						row := int(s>>33) % p.RowsPerBank
						steppedSrc.v = fireDraw
						stepped.Activate(row)
						bulk.ActivateInsert(row)
					default:
						n := int(s>>17) % 250 // spans multiple tREFI windows
						steppedSrc.v = idleDraw
						for i := 0; i < n; i++ {
							stepped.Activate(group[(phase+i)%q])
						}
						bulk.ActivateRunGroup(group, phase, n)
						phase = (phase + n) % q
					}
				}
				controllersEqual(t, fmt.Sprintf("rfm=%d group=%v", rfm, group), stepped, bulk)
			})
		}
	}
}

// TestQuietCadenceCollapseBitIdentical pins the multi-tREFI closed-form
// advance: with periodic refresh off and an empty IdleMitigator tracker,
// ActivateRun/ActivateRunGroup retire the whole cadence in modular
// arithmetic. A twin controller with the capability stripped (idm = nil)
// walks the same schedule through the boundary loop; both must land on
// bit-identical controller, bank, and tracker state — including PrIDE's
// IdleMitigations counter.
func TestQuietCadenceCollapseBitIdentical(t *testing.T) {
	for _, rfm := range []int{0, 16} {
		for gi, group := range groupTestGroups() {
			t.Run(fmt.Sprintf("rfm=%d/group=%d", rfm, gi), func(t *testing.T) {
				p := smallParams()
				cfg := DefaultConfig(p)
				cfg.RFMThreshold = rfm
				cfg.SelfCheck = true
				// PeriodicRefresh off: collapse eligible whenever the tracker
				// is empty.

				tcfg := core.DefaultConfig(79)
				tcfg.TransitiveProtection = false
				collapsed := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))
				walked := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))
				walked.idm = nil // force the boundary-splitting loop

				q := len(group)
				phase := 0
				s := uint64(rfm*7 + gi + 3)
				for ev := 0; ev < 120; ev++ {
					s = s*6364136223846793005 + 1442695040888963407
					if s%5 == 0 {
						// Occupy the tracker so some stretches run with the
						// collapse ineligible, mixing both paths.
						row := int(s>>33) % p.RowsPerBank
						collapsed.ActivateInsert(row)
						walked.ActivateInsert(row)
					}
					// Long stretches: hundreds of tREFI windows in one call.
					n := int(s>>17) % 40000
					collapsed.ActivateRunGroup(group, phase, n)
					walked.ActivateRunGroup(group, phase, n)
					phase = (phase + n) % q
				}
				controllersEqual(t, fmt.Sprintf("rfm=%d group=%v", rfm, group), walked, collapsed)
				if got := collapsed.Tracker().(*core.PrIDE).Stats().IdleMitigations; got == 0 {
					t.Fatal("collapse never saw an idle mitigation — test lost its bite")
				}
			})
		}
	}
}

// TestQuietCadenceCollapseWithPARA covers the IdleMitigator no-op
// implementation: PARA performs nothing at refresh, so the collapsed and
// walked cadences must agree there too.
func TestQuietCadenceCollapseWithPARA(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	collapsed := New(cfg, dram.MustNewBank(p, 25), baseline.NewPARA(1.0/80, rng.New(1)))
	walked := New(cfg, dram.MustNewBank(p, 25), baseline.NewPARA(1.0/80, rng.New(1)))
	walked.idm = nil

	group := []int{300, 302}
	phase := 0
	s := uint64(17)
	for ev := 0; ev < 100; ev++ {
		s = s*6364136223846793005 + 1442695040888963407
		if s%6 == 0 {
			row := int(s>>33) % p.RowsPerBank
			collapsed.ActivateInsert(row)
			walked.ActivateInsert(row)
		}
		n := int(s>>17) % 10000
		collapsed.ActivateRunGroup(group, phase, n)
		walked.ActivateRunGroup(group, phase, n)
		phase = (phase + n) % 2
	}
	controllersEqual(t, "PARA collapse", walked, collapsed)
}

// TestActivateRunGroupGuardTrip pins the -selfcheck contract on the
// multi-row segment splitter: corrupted cadence state must surface as a
// named guard.Violation, not as silently wrong segmentation.
func TestActivateRunGroupGuardTrip(t *testing.T) {
	p := smallParams()
	group := []int{100, 102}
	for _, tc := range []struct {
		name      string
		corrupt   func(c *Controller)
		invariant string
	}{
		{
			name:      "trefi-position",
			corrupt:   func(c *Controller) { c.actsInTREFI = p.ACTsPerTREFI() },
			invariant: "trefi-position",
		},
		{
			name:      "raa-bound",
			corrupt:   func(c *Controller) { c.raa = -3 },
			invariant: "raa-bound",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(p)
			cfg.RFMThreshold = 16
			cfg.PeriodicRefresh = true // keep the collapse out; hit the splitter
			cfg.SelfCheck = true
			tcfg := core.DefaultConfig(79)
			tcfg.TransitiveProtection = false
			c := New(cfg, dram.MustNewBank(p, 0), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))
			tc.corrupt(c)
			defer func() {
				v, ok := guard.AsViolation(recover())
				if !ok {
					t.Fatal("corrupted cadence state did not trip a guard.Violation")
				}
				if v.Component != "memctrl" || v.Invariant != tc.invariant {
					t.Fatalf("tripped %s/%s, want memctrl/%s", v.Component, v.Invariant, tc.invariant)
				}
			}()
			c.ActivateRunGroup(group, 0, 500)
		})
	}
}

// TestActivateRunGroupDelegatesSingleRow pins the q==1 path: a length-1
// group is exactly ActivateRun.
func TestActivateRunGroupDelegatesSingleRow(t *testing.T) {
	p := smallParams()
	cfg := DefaultConfig(p)
	cfg.PeriodicRefresh = true
	tcfg := core.DefaultConfig(79)
	tcfg.TransitiveProtection = false
	a := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))
	b := New(cfg, dram.MustNewBank(p, 30), core.New(tcfg, rng.NewStream(&modeSource{v: idleDraw})))
	a.ActivateRun(100, 500)
	b.ActivateRunGroup([]int{100}, 0, 500)
	controllersEqual(t, "single-row delegation", a, b)
}
