// Package memctrl models the memory-controller-side machinery the paper's
// schemes rely on: the per-bank Rolling Accumulation of ACTs (RAA) counter
// that drives Refresh Management (RFM, Section V-A), the regular REF cadence
// that gives in-DRAM trackers their mitigation opportunities, and the
// dispatch of tracker decisions to the DRAM bank.
//
// The controller advances in activation granularity: every ACTsPerTREFI
// demand activations constitute one tREFI, at whose boundary a REF command
// is issued. This matches the granularity of the paper's security analysis
// (worst case: the attacker saturates the command bus).
package memctrl

import (
	"fmt"

	"pride/internal/baseline"
	"pride/internal/dram"
	"pride/internal/guard"
	"pride/internal/tracker"
)

// Config parameterizes a Controller.
type Config struct {
	// Params are the DRAM timing/structure parameters.
	Params dram.Params
	// RFMThreshold, when positive, issues an RFM command (an extra
	// mitigation opportunity) every time the bank's RAA counter reaches
	// it (Section V-A). Zero disables RFM.
	RFMThreshold int
	// MitigationEveryNREF is how many REF commands pass between tracker
	// mitigations (DDR5 allows 1 or 2; the paper defaults to 1).
	MitigationEveryNREF int
	// PeriodicRefresh, when true, models the regular refresh sweep
	// (resetting row hammer counts once per tREFW). Attack experiments
	// shorter than a tREFW can disable it for speed.
	PeriodicRefresh bool
	// SelfCheck enables runtime invariant guards on the controller's
	// cadence machinery (tREFI position, RAA counter bounds, skip-ahead
	// progress) and propagates to the bank and tracker at construction.
	// A violated guard panics with a guard.Violation.
	SelfCheck bool
}

// DefaultConfig returns the paper's default controller configuration for
// the given parameters: mitigation every REF, no RFM.
func DefaultConfig(p dram.Params) Config {
	return Config{Params: p, MitigationEveryNREF: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.MitigationEveryNREF < 1 {
		return fmt.Errorf("memctrl: MitigationEveryNREF must be >= 1, got %d", c.MitigationEveryNREF)
	}
	if c.RFMThreshold < 0 {
		return fmt.Errorf("memctrl: RFMThreshold must be >= 0, got %d", c.RFMThreshold)
	}
	return nil
}

// Stats counts controller-level events for the performance and energy
// models.
type Stats struct {
	// ACTs is the number of demand activations issued.
	ACTs uint64
	// REFs is the number of refresh commands issued.
	REFs uint64
	// RFMs is the number of RFM commands issued.
	RFMs uint64
	// Mitigations is the number of tracker mitigations dispatched.
	Mitigations uint64
	// VictimRefreshes is the number of rows refreshed by mitigations.
	VictimRefreshes uint64
}

// Controller drives one DRAM bank and its tracker.
type Controller struct {
	cfg  Config
	bank *dram.Bank
	trk  tracker.Tracker
	// im and sa cache the tracker's optional capabilities, hoisting the
	// interface assertions out of the per-ACT hot path. Either is nil when
	// the tracker lacks the capability. sa is the shared fast-forward
	// surface; the engines refine it to SkipAdvancer (geometric gaps) or
	// ScheduledAdvancer (interval schedules) at setup time.
	im baseline.ImmediateMitigator
	sa tracker.Advancer
	// idm caches the tracker's IdleMitigator capability: when non-nil and
	// the tracker is empty, whole insertion-free cadence stretches collapse
	// to modular arithmetic (see quietCadence).
	idm tracker.IdleMitigator

	actsInTREFI         int
	refsSinceMitigation int
	raa                 int
	stats               Stats
}

// New returns a controller gluing bank and trk under cfg. It panics on an
// invalid configuration (experiment-setup-time failure).
func New(cfg Config, bank *dram.Bank, trk tracker.Tracker) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if bank == nil || trk == nil {
		panic("memctrl: nil bank or tracker")
	}
	c := &Controller{cfg: cfg, bank: bank, trk: trk}
	c.im, _ = trk.(baseline.ImmediateMitigator)
	c.sa, _ = trk.(tracker.Advancer)
	c.idm, _ = trk.(tracker.IdleMitigator)
	if cfg.SelfCheck {
		bank.SetSelfCheck(true)
		if sc, ok := trk.(tracker.SelfChecker); ok {
			sc.SetSelfCheck(true)
		}
	}
	return c
}

// Bank returns the controlled bank.
func (c *Controller) Bank() *dram.Bank { return c.bank }

// Tracker returns the controlled tracker.
func (c *Controller) Tracker() tracker.Tracker { return c.trk }

// Stats returns a copy of the event counters.
func (c *Controller) Stats() Stats { return c.stats }

// Activate issues one demand activation: the bank hammers its neighbours,
// the tracker observes the row, immediate (controller-side) mitigations are
// drained, the RAA counter advances, and tREFI boundaries trigger REF.
func (c *Controller) Activate(row int) {
	c.stats.ACTs++
	c.bank.Activate(row)
	c.trk.OnActivate(row)
	c.postActivate()
}

// SkipAdvancer returns the tracker's geometric skip-ahead capability, if the
// tracker implements it AND its current configuration supports
// pattern-independent insertion. The event-driven engines call this once at
// setup to decide between the skip-ahead and exact paths.
func (c *Controller) SkipAdvancer() (tracker.SkipAdvancer, bool) {
	if c.sa == nil || !c.sa.SupportsSkipAhead() {
		return nil, false
	}
	sa, ok := c.sa.(tracker.SkipAdvancer)
	return sa, ok
}

// ScheduledAdvancer returns the tracker's scheduled skip-ahead capability
// (MINT-style interval schedules), under the same setup-time gating as
// SkipAdvancer.
func (c *Controller) ScheduledAdvancer() (tracker.ScheduledAdvancer, bool) {
	if c.sa == nil || !c.sa.SupportsSkipAhead() {
		return nil, false
	}
	sa, ok := c.sa.(tracker.ScheduledAdvancer)
	return sa, ok
}

// ACTsToNextMitigation returns how many demand activations from now the next
// mitigation opportunity fires (REF at the configured cadence, or RFM,
// whichever comes first) — always >= 1. Scheduled skip-ahead engines use it
// to bound idle stretches so the tracker's schedule is re-queried after
// every opportunity.
func (c *Controller) ACTsToNextMitigation() int {
	w := c.cfg.Params.ACTsPerTREFI()
	refsNeeded := c.cfg.MitigationEveryNREF - c.refsSinceMitigation
	n := (refsNeeded-1)*w + (w - c.actsInTREFI)
	if c.cfg.RFMThreshold > 0 {
		if d := c.cfg.RFMThreshold - c.raa; d < n {
			n = d
		}
	}
	return n
}

// ActivateInsert issues one demand activation whose tracker insertion was
// pre-decided by the caller's geometric gap draw: identical to Activate
// except the tracker applies the insertion without drawing. The tracker must
// support skip-ahead (see SkipAdvancer); calling it otherwise panics.
func (c *Controller) ActivateInsert(row int) {
	c.stats.ACTs++
	c.bank.Activate(row)
	c.sa.ActivateInsert(row)
	c.postActivate()
}

// ActivateRun issues n consecutive demand activations of row, all of whose
// tracker insertion draws failed (the caller's gap sampling guarantees no
// insertion lands inside the run). The bank's hammer accounting is retired
// in closed-form segments split EXACTLY at the cadence boundaries the
// stepped path would hit — every RFM and REF fires after the same ACT, in
// the same order (RFM before REF when both land on one ACT) — so the
// deterministic component is ACT-for-ACT identical to n Activate calls.
// Cost is O(n/W) boundary events instead of O(n).
func (c *Controller) ActivateRun(row, n int) {
	if n < 0 {
		panic(fmt.Sprintf("memctrl: ActivateRun(%d, %d)", row, n))
	}
	w := c.cfg.Params.ACTsPerTREFI()
	for n > 0 {
		// Re-checked every segment, not just at entry: a run that starts with
		// an occupied tracker walks boundaries only until the REFs drain it,
		// then the remaining stretch collapses to modular arithmetic.
		if c.quietCadence(n) {
			c.bank.HammerN(row, n)
			return
		}
		if c.cfg.SelfCheck {
			// Cadence monotonicity: the loop must sit strictly inside the
			// current tREFI (and RFM window), or a boundary was missed and
			// the split will drift from the stepped path.
			if c.actsInTREFI < 0 || c.actsInTREFI >= w {
				guard.Failf("memctrl", "trefi-position", "ActivateRun: actsInTREFI %d outside [0,%d)", c.actsInTREFI, w)
			}
			if c.cfg.RFMThreshold > 0 && (c.raa < 0 || c.raa >= c.cfg.RFMThreshold) {
				guard.Failf("memctrl", "raa-bound", "ActivateRun: raa %d outside [0,%d)", c.raa, c.cfg.RFMThreshold)
			}
		}
		// Distance to the next cadence boundary, capped by the run.
		k := w - c.actsInTREFI
		if c.cfg.RFMThreshold > 0 {
			if d := c.cfg.RFMThreshold - c.raa; d < k {
				k = d
			}
		}
		if n < k {
			k = n
		}
		if c.cfg.SelfCheck && k < 1 {
			// Progress: every segment must retire at least one ACT, or the
			// split loops forever.
			guard.Failf("memctrl", "skip-progress", "ActivateRun: segment length %d with %d ACTs left", k, n)
		}
		c.stats.ACTs += uint64(k)
		c.bank.HammerN(row, k)
		c.sa.AdvanceIdle(k)

		if c.cfg.RFMThreshold > 0 {
			c.raa += k
			if c.raa >= c.cfg.RFMThreshold {
				c.raa = 0
				c.stats.RFMs++
				c.mitigationOpportunity()
			}
		}
		c.actsInTREFI += k
		if c.actsInTREFI >= w {
			c.actsInTREFI = 0
			c.ref()
		}
		n -= k
	}
}

// ActivateRunGroup issues n consecutive demand activations that walk the
// repeating row group cyclically starting at phase — activation i goes to
// rows[(phase+i) mod len(rows)] — all of whose tracker insertion draws
// failed. It is the multi-row generalization of ActivateRun: segments are
// split at EXACTLY the stepped path's cadence boundaries (RFM before REF on
// coincident ACTs) and the bank's per-row hammer accounting is retired in
// closed form by dram.Bank.HammerCycle, so an alternating pattern like the
// double-sided pair no longer degenerates to per-ACT calls.
func (c *Controller) ActivateRunGroup(rows []int, phase, n int) {
	q := len(rows)
	if q == 0 || phase < 0 || phase >= q || n < 0 {
		panic(fmt.Sprintf("memctrl: ActivateRunGroup(|%d|, %d, %d)", q, phase, n))
	}
	if q == 1 {
		c.ActivateRun(rows[0], n)
		return
	}
	w := c.cfg.Params.ACTsPerTREFI()
	for n > 0 {
		// Same mid-run collapse as ActivateRun: once the REF cadence empties
		// the tracker, the rest of the stretch is one HammerCycle burst.
		if c.quietCadence(n) {
			c.bank.HammerCycle(rows, phase, n)
			return
		}
		if c.cfg.SelfCheck {
			if c.actsInTREFI < 0 || c.actsInTREFI >= w {
				guard.Failf("memctrl", "trefi-position", "ActivateRunGroup: actsInTREFI %d outside [0,%d)", c.actsInTREFI, w)
			}
			if c.cfg.RFMThreshold > 0 && (c.raa < 0 || c.raa >= c.cfg.RFMThreshold) {
				guard.Failf("memctrl", "raa-bound", "ActivateRunGroup: raa %d outside [0,%d)", c.raa, c.cfg.RFMThreshold)
			}
			if phase < 0 || phase >= q {
				guard.Failf("memctrl", "group-phase", "ActivateRunGroup: phase %d outside [0,%d)", phase, q)
			}
		}
		k := w - c.actsInTREFI
		if c.cfg.RFMThreshold > 0 {
			if d := c.cfg.RFMThreshold - c.raa; d < k {
				k = d
			}
		}
		if n < k {
			k = n
		}
		if c.cfg.SelfCheck && k < 1 {
			guard.Failf("memctrl", "skip-progress", "ActivateRunGroup: segment length %d with %d ACTs left", k, n)
		}
		c.stats.ACTs += uint64(k)
		c.bank.HammerCycle(rows, phase, k)
		c.sa.AdvanceIdle(k)
		phase = (phase + k) % q

		if c.cfg.RFMThreshold > 0 {
			c.raa += k
			if c.raa >= c.cfg.RFMThreshold {
				c.raa = 0
				c.stats.RFMs++
				c.mitigationOpportunity()
			}
		}
		c.actsInTREFI += k
		if c.actsInTREFI >= w {
			c.actsInTREFI = 0
			c.ref()
		}
		n -= k
	}
}

// quietCadence attempts to retire the controller-side cadence of n
// insertion-free demand ACTs in closed form. When the tracker is an
// IdleMitigator and currently EMPTY, and the periodic refresh sweep is off,
// every cadence event inside the run is pure bookkeeping: no insertion can
// land mid-run (the caller's gap draw guarantees it), so each REF and RFM
// finds the tracker empty, pops nothing, draws nothing, and touches no bank
// state. The counters then advance in modular arithmetic — O(1) instead of
// O(n/W) boundary events — with a result bit-identical to the boundary
// walk. Returns false, doing nothing, when the collapse does not apply; the
// caller falls back to the boundary-splitting loop. The bank's hammer burst
// is the caller's responsibility either way.
func (c *Controller) quietCadence(n int) bool {
	if c.idm == nil || c.cfg.PeriodicRefresh || c.trk.Occupancy() != 0 || n == 0 {
		return false
	}
	w := c.cfg.Params.ACTsPerTREFI()
	if c.cfg.SelfCheck {
		if c.actsInTREFI < 0 || c.actsInTREFI >= w {
			guard.Failf("memctrl", "trefi-position", "quietCadence: actsInTREFI %d outside [0,%d)", c.actsInTREFI, w)
		}
		if c.cfg.RFMThreshold > 0 && (c.raa < 0 || c.raa >= c.cfg.RFMThreshold) {
			guard.Failf("memctrl", "raa-bound", "quietCadence: raa %d outside [0,%d)", c.raa, c.cfg.RFMThreshold)
		}
	}
	c.stats.ACTs += uint64(n)
	c.sa.AdvanceIdle(n)
	rfms := 0
	if t := c.cfg.RFMThreshold; t > 0 {
		rfms = (c.raa + n) / t
		c.raa = (c.raa + n) % t
		c.stats.RFMs += uint64(rfms)
	}
	refs := (c.actsInTREFI + n) / w
	c.actsInTREFI = (c.actsInTREFI + n) % w
	c.stats.REFs += uint64(refs)
	mits := (c.refsSinceMitigation + refs) / c.cfg.MitigationEveryNREF
	c.refsSinceMitigation = (c.refsSinceMitigation + refs) % c.cfg.MitigationEveryNREF
	c.idm.AdvanceIdleMitigations(rfms + mits)
	return true
}

// postActivate performs the per-ACT controller bookkeeping shared by
// Activate and ActivateInsert: inline mitigation drain, RAA/RFM cadence, and
// the tREFI/REF boundary.
func (c *Controller) postActivate() {
	// Controller-side schemes (PARA, Graphene) mitigate inline.
	if c.im != nil {
		for _, m := range c.im.DrainImmediate() {
			c.dispatch(m)
		}
	}

	// RFM: one extra mitigation opportunity per threshold ACTs.
	if c.cfg.RFMThreshold > 0 {
		c.raa++
		if c.cfg.SelfCheck && c.raa > c.cfg.RFMThreshold {
			guard.Failf("memctrl", "raa-bound", "postActivate: raa %d exceeds threshold %d", c.raa, c.cfg.RFMThreshold)
		}
		if c.raa >= c.cfg.RFMThreshold {
			c.raa = 0
			c.stats.RFMs++
			c.mitigationOpportunity()
		}
	}

	c.actsInTREFI++
	if c.cfg.SelfCheck && c.actsInTREFI > c.cfg.Params.ACTsPerTREFI() {
		guard.Failf("memctrl", "trefi-position", "postActivate: actsInTREFI %d exceeds window %d", c.actsInTREFI, c.cfg.Params.ACTsPerTREFI())
	}
	if c.actsInTREFI >= c.cfg.Params.ACTsPerTREFI() {
		c.actsInTREFI = 0
		c.ref()
	}
}

// Idle advances time by one tREFI with no demand traffic (the bus is
// quiet, but REF keeps firing). Attackers never want this; victims do.
func (c *Controller) Idle() {
	c.actsInTREFI = 0
	c.ref()
}

// ref issues one REF command: the periodic refresh sweep (optional) plus the
// in-DRAM tracker's mitigation opportunity at the configured cadence.
func (c *Controller) ref() {
	c.stats.REFs++
	if c.cfg.PeriodicRefresh {
		c.bank.StepRefresh()
	}
	c.refsSinceMitigation++
	if c.refsSinceMitigation >= c.cfg.MitigationEveryNREF {
		c.refsSinceMitigation = 0
		c.mitigationOpportunity()
	}
}

// mitigationOpportunity lets the tracker pick a victim and dispatches it.
func (c *Controller) mitigationOpportunity() {
	if m, ok := c.trk.OnMitigate(); ok {
		c.dispatch(m)
	}
}

// dispatch performs one mitigation on the bank.
func (c *Controller) dispatch(m tracker.Mitigation) {
	c.stats.Mitigations++
	c.stats.VictimRefreshes += uint64(c.bank.Mitigate(m.Row, m.Level))
}

// Reset clears bank, tracker and controller state.
func (c *Controller) Reset() {
	c.bank.Reset()
	c.trk.Reset()
	c.actsInTREFI = 0
	c.refsSinceMitigation = 0
	c.raa = 0
	c.stats = Stats{}
}
