package baseline

import (
	"fmt"

	"pride/internal/tracker"
)

// Mithril implements the optimal-class in-DRAM tracker of Kim et al. (HPCA
// 2022), which Section II-E cites as one of the two provably secure
// in-DRAM designs (with ProTRR). It is a Counter-based Summary (Misra-Gries
// style, like Graphene) that lives INSIDE the DRAM and services mitigations
// at REF and RFM opportunities rather than issuing its own:
//
//   - Activations update a Misra-Gries table sized so that any row reaching
//     the mitigation threshold is guaranteed to be tracked.
//   - At each mitigation opportunity, the entry with the maximum estimated
//     count is mitigated and its counter rewinds to the spillover floor.
//
// With entries >= maxACTsPerWindow/threshold, Mithril never loses an
// aggressor (the Misra-Gries error bound), giving deterministic protection —
// at hundreds of entries per bank (Section II-F), which is exactly the cost
// PrIDE's 4 probabilistic entries undercut.
type Mithril struct {
	entries int
	rowBits int

	rows   []int
	counts []int
	valid  []bool
	spill  int
}

var _ tracker.Tracker = (*Mithril)(nil)

// MithrilEntries returns the entry count that guarantees no aggressor is
// missed: the maximum activations per refresh window divided by the
// per-window mitigation threshold.
func MithrilEntries(actsPerTREFW, threshold int) int {
	if threshold < 1 {
		panic(fmt.Sprintf("baseline: Mithril threshold must be >= 1, got %d", threshold))
	}
	n := actsPerTREFW / threshold
	if n < 1 {
		n = 1
	}
	return n
}

// NewMithril returns a Mithril tracker with the given table size.
func NewMithril(entries, rowBits int) *Mithril {
	if entries < 1 {
		panic(fmt.Sprintf("baseline: Mithril entries must be >= 1, got %d", entries))
	}
	return &Mithril{
		entries: entries,
		rowBits: rowBits,
		rows:    make([]int, entries),
		counts:  make([]int, entries),
		valid:   make([]bool, entries),
	}
}

// Name implements tracker.Tracker.
func (m *Mithril) Name() string { return "Mithril" }

// OnActivate applies the Misra-Gries update.
func (m *Mithril) OnActivate(row int) {
	minIdx, minCount := -1, int(^uint(0)>>1)
	for i := 0; i < m.entries; i++ {
		if !m.valid[i] {
			m.rows[i] = row
			m.counts[i] = m.spill + 1
			m.valid[i] = true
			return
		}
		if m.rows[i] == row {
			m.counts[i]++
			return
		}
		if m.counts[i] < minCount {
			minIdx, minCount = i, m.counts[i]
		}
	}
	m.spill++
	if m.spill >= minCount {
		m.rows[minIdx] = row
		m.counts[minIdx] = m.spill + 1
	}
}

// OnMitigate pops the maximum-count entry (the row closest to danger) and
// rewinds its counter to the spillover floor.
func (m *Mithril) OnMitigate() (tracker.Mitigation, bool) {
	maxIdx, maxCount := -1, -1
	for i := 0; i < m.entries; i++ {
		if m.valid[i] && m.counts[i] > maxCount {
			maxIdx, maxCount = i, m.counts[i]
		}
	}
	if maxIdx < 0 || maxCount <= m.spill {
		// Nothing is meaningfully hotter than the untracked mass; skip.
		return tracker.Mitigation{}, false
	}
	row := m.rows[maxIdx]
	m.counts[maxIdx] = m.spill
	return tracker.Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (m *Mithril) Occupancy() int {
	n := 0
	for _, v := range m.valid {
		if v {
			n++
		}
	}
	return n
}

// StorageBits implements tracker.Tracker.
func (m *Mithril) StorageBits() int {
	return m.entries*(m.rowBits+16+1) + 16
}

// Reset implements tracker.Tracker.
func (m *Mithril) Reset() {
	for i := range m.valid {
		m.valid[i] = false
		m.counts[i] = 0
	}
	m.spill = 0
}
