package baseline

import (
	"math"
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

func TestPARASamplingRate(t *testing.T) {
	const p = 1.0 / 80
	para := NewPARA(p, rng.New(1))
	const n = 400000
	mitigations := 0
	for i := 0; i < n; i++ {
		para.OnActivate(i % 1000)
		mitigations += len(para.DrainImmediate())
	}
	got := float64(mitigations) / n
	tol := 5 * math.Sqrt(p*(1-p)/n)
	if math.Abs(got-p) > tol {
		t.Fatalf("PARA mitigation rate %v, want %v", got, p)
	}
}

func TestPARAMitigatesActivatedRow(t *testing.T) {
	para := NewPARA(1, rng.New(2)) // p=1: every ACT mitigated
	para.OnActivate(42)
	ms := para.DrainImmediate()
	if len(ms) != 1 || ms[0].Row != 42 || ms[0].Level != 1 {
		t.Fatalf("mitigations = %+v, want [{42 1}]", ms)
	}
	// Drain clears.
	if len(para.DrainImmediate()) != 0 {
		t.Fatal("drain did not clear pending mitigations")
	}
	if m, ok := para.OnMitigate(); ok {
		t.Fatalf("PARA must not mitigate at refresh, got %+v", m)
	}
}

func TestPARAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPARA(0, rng.New(1)) },
		func() { NewPARA(1.5, rng.New(1)) },
		func() { NewPARA(0.5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPARADRFMRateLimit(t *testing.T) {
	d := NewPARADRFM(1, 2, 17, rng.New(3)) // p=1: always a pending row
	issued := 0
	for i := 0; i < 10; i++ {
		d.OnActivate(i)
		if _, ok := d.OnMitigate(); ok {
			issued++
		}
	}
	if issued != 5 {
		t.Fatalf("DRFM issued %d of 10 opportunities, want 5 (1 per 2 tREFI)", issued)
	}
}

func TestPARADRFMOverwrite(t *testing.T) {
	// A newer selection overwrites an unissued one — the single-entry
	// behaviour the analytic model of Section IV-G assumes.
	d := NewPARADRFM(1, 1, 17, rng.New(4))
	d.OnActivate(10)
	d.OnActivate(20)
	m, ok := d.OnMitigate()
	if !ok || m.Row != 20 {
		t.Fatalf("mitigation = %+v, want row 20 (overwrite)", m)
	}
	if _, ok := d.OnMitigate(); ok {
		t.Fatal("second mitigation without a new selection")
	}
}

func TestPARADRFMPlusName(t *testing.T) {
	if got := NewPARADRFM(0.5, 1, 17, rng.New(1)).Name(); got != "PARA-DRFM+" {
		t.Fatalf("interval-1 name = %q", got)
	}
	if got := NewPARADRFM(0.5, 2, 17, rng.New(1)).Name(); got != "PARA-DRFM" {
		t.Fatalf("interval-2 name = %q", got)
	}
}

func TestPARFMBuffersEpochAndClears(t *testing.T) {
	p := NewPARFM(79, 17, rng.New(5))
	for i := 0; i < 50; i++ {
		p.OnActivate(i)
	}
	if p.Occupancy() != 50 {
		t.Fatalf("occupancy = %d, want 50", p.Occupancy())
	}
	m, ok := p.OnMitigate()
	if !ok || m.Row < 0 || m.Row >= 50 {
		t.Fatalf("mitigation = %+v ok=%v, want a buffered row", m, ok)
	}
	if p.Occupancy() != 0 {
		t.Fatal("PARFM must clear its buffer after mitigation")
	}
}

func TestPARFMUniformSelection(t *testing.T) {
	p := NewPARFM(4, 17, rng.New(6))
	counts := map[int]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		for r := 0; r < 4; r++ {
			p.OnActivate(r)
		}
		m, _ := p.OnMitigate()
		counts[m.Row]++
	}
	for r := 0; r < 4; r++ {
		got := float64(counts[r]) / trials
		if math.Abs(got-0.25) > 0.02 {
			t.Fatalf("row %d selected %v, want ~0.25", r, got)
		}
	}
}

func TestDSACHitIncrementAndMaxMitigation(t *testing.T) {
	d := NewDSAC(4, 17, rng.New(7))
	for i := 0; i < 10; i++ {
		d.OnActivate(100)
	}
	d.OnActivate(200)
	m, ok := d.OnMitigate()
	if !ok || m.Row != 100 {
		t.Fatalf("mitigation = %+v, want max-counter row 100", m)
	}
	// Retired entry is gone; next mitigation takes row 200.
	m, ok = d.OnMitigate()
	if !ok || m.Row != 200 {
		t.Fatalf("second mitigation = %+v, want row 200", m)
	}
}

func TestDSACDecoyAttackSuppressesInsertion(t *testing.T) {
	// The paper's core claim about counter-driven insertion: an attacker
	// who fills the table with high-count decoys makes a fresh aggressor's
	// insertion probability 1/(minCount+1) ~ 0, so the aggressor hammers
	// freely between refreshes.
	tracked := func(d *DSAC, row int) bool {
		for j := 0; j < d.entries; j++ {
			if d.valid[j] && d.rows[j] == row {
				return true
			}
		}
		return false
	}
	const trials, hammers = 200, 100
	seed := rng.New(8)
	trackedWithDecoys := 0
	for trial := 0; trial < trials; trial++ {
		d := NewDSAC(4, 17, seed.Fork())
		for decoy := 0; decoy < 4; decoy++ {
			for i := 0; i < 1000; i++ {
				d.OnActivate(1000 + decoy)
			}
		}
		// Aggressor hammers: each miss inserts with probability ~1/1001.
		for i := 0; i < hammers; i++ {
			d.OnActivate(7)
		}
		if tracked(d, 7) {
			trackedWithDecoys++
		}
	}
	// Expected tracking probability ~ 1-(1-1/1001)^100 ~ 9.5%; a fresh
	// table tracks the aggressor on its first activation, always.
	if got := float64(trackedWithDecoys) / trials; got > 0.25 {
		t.Fatalf("aggressor tracked in %.0f%% of trials despite decoys; suppression failed", got*100)
	}
	fresh := NewDSAC(4, 17, seed.Fork())
	fresh.OnActivate(7)
	if !tracked(fresh, 7) {
		t.Fatal("fresh table must track the aggressor immediately")
	}
}

func TestPRoHITPromoteAndMitigate(t *testing.T) {
	p := NewPRoHIT(4, 17, 1, 1, rng.New(9)) // deterministic promote/insert
	p.OnActivate(1)
	p.OnActivate(2)
	p.OnActivate(2) // promotes 2 above 1
	m, ok := p.OnMitigate()
	if !ok || m.Row != 2 {
		t.Fatalf("top-ranked mitigation = %+v, want row 2", m)
	}
}

func TestPRoHITMissReplacesBottom(t *testing.T) {
	p := NewPRoHIT(2, 17, 1, 1, rng.New(10))
	p.OnActivate(1)
	p.OnActivate(2)
	p.OnActivate(3) // replaces bottom (row 2)
	m1, _ := p.OnMitigate()
	m2, _ := p.OnMitigate()
	if m1.Row != 1 || m2.Row != 3 {
		t.Fatalf("mitigations = %d,%d, want 1,3", m1.Row, m2.Row)
	}
}

func TestTRRespassBreaksTRR(t *testing.T) {
	// TRRespass: hammer more rows than the tracker has entries. With a
	// full table and non-decayed counters, extra aggressors are never
	// inserted, so they take unbounded activations without mitigation.
	trr := NewTRR(4, 17)
	mitigated := map[int]int{}
	const aggressors = 12
	for round := 0; round < 1000; round++ {
		for a := 0; a < aggressors; a++ {
			trr.OnActivate(a)
		}
		if round%6 == 5 { // one refresh per ~79 ACTs
			if m, ok := trr.OnMitigate(); ok {
				mitigated[m.Row]++
			}
		}
	}
	never := 0
	for a := 4; a < aggressors; a++ {
		if mitigated[a] == 0 {
			never++
		}
	}
	if never == 0 {
		t.Fatal("TRRespass pattern failed: every aggressor got mitigated at least once")
	}
}

func TestTRRTracksSingleAggressor(t *testing.T) {
	// TRR is fine against the naive single-row pattern.
	trr := NewTRR(4, 17)
	for i := 0; i < 100; i++ {
		trr.OnActivate(55)
	}
	m, ok := trr.OnMitigate()
	if !ok || m.Row != 55 {
		t.Fatalf("mitigation = %+v, want row 55", m)
	}
}

func TestGrapheneMitigatesAtThreshold(t *testing.T) {
	g := NewGraphene(8, 10, 17)
	for i := 0; i < 9; i++ {
		g.OnActivate(5)
		if ms := g.DrainImmediate(); len(ms) != 0 {
			t.Fatalf("mitigation before threshold at activation %d", i+1)
		}
	}
	g.OnActivate(5)
	ms := g.DrainImmediate()
	if len(ms) != 1 || ms[0].Row != 5 {
		t.Fatalf("mitigations = %+v, want row 5 at threshold", ms)
	}
}

func TestGrapheneNoMissGuarantee(t *testing.T) {
	// Misra-Gries with entries >= totalACTs/threshold: no row can reach
	// threshold activations untracked. Hammer 20 rows round-robin.
	const threshold = 50
	const total = 2000
	g := NewGraphene(total/threshold, threshold, 17)
	perRow := map[int]int{}
	mitigated := map[int]bool{}
	for i := 0; i < total; i++ {
		row := i % 20
		g.OnActivate(row)
		perRow[row]++
		for _, m := range g.DrainImmediate() {
			mitigated[m.Row] = true
		}
	}
	for row, acts := range perRow {
		if acts >= threshold && !mitigated[row] {
			t.Fatalf("row %d reached %d activations without mitigation", row, acts)
		}
	}
}

func TestGrapheneVictimSharingWeakness(t *testing.T) {
	// Section VI: two aggressors each staying at threshold-1 never trigger
	// a counter-based mitigation, so their shared victim absorbs
	// 2*(threshold-1) hammers.
	const threshold = 100
	g := NewGraphene(16, threshold, 17)
	for i := 0; i < threshold-1; i++ {
		g.OnActivate(10) // aggressor B
		g.OnActivate(12) // aggressor D; victim C=11 shared
	}
	if ms := g.DrainImmediate(); len(ms) != 0 {
		t.Fatalf("counter-based tracker mitigated below threshold: %+v", ms)
	}
	// The shared victim has now absorbed 2*(threshold-1) hammers without
	// any refresh — exactly the attack PrIDE's probabilistic mitigation
	// is immune to (tested in the sim package).
}

func TestStorageBitsSane(t *testing.T) {
	trackers := []tracker.Tracker{
		NewPARA(0.5, rng.New(1)),
		NewPARADRFM(0.5, 2, 17, rng.New(1)),
		NewPARFM(79, 17, rng.New(1)),
		NewDSAC(20, 17, rng.New(1)),
		NewPRoHIT(4, 17, 0.5, 0.5, rng.New(1)),
		NewTRR(16, 17),
		NewGraphene(325, 2000, 17),
	}
	for _, tr := range trackers {
		if tr.StorageBits() < 0 {
			t.Errorf("%s: negative storage", tr.Name())
		}
	}
	// PARFM's buffer (79 x 17b) dwarfs PrIDE's 4 x 20b (Section V-C).
	parfm := trackers[2].StorageBits()
	if parfm < 79*17 {
		t.Errorf("PARFM storage = %d bits, want >= %d", parfm, 79*17)
	}
}

func TestResetAll(t *testing.T) {
	rs := rng.New(11)
	trackers := []tracker.Tracker{
		NewPARA(0.9, rs.Fork()),
		NewPARADRFM(0.9, 2, 17, rs.Fork()),
		NewPARFM(79, 17, rs.Fork()),
		NewDSAC(20, 17, rs.Fork()),
		NewPRoHIT(4, 17, 0.9, 0.9, rs.Fork()),
		NewTRR(16, 17),
		NewGraphene(16, 100, 17),
	}
	for _, tr := range trackers {
		for i := 0; i < 200; i++ {
			tr.OnActivate(i % 7)
		}
		if im, ok := tr.(ImmediateMitigator); ok {
			im.DrainImmediate()
		}
		tr.Reset()
		if got := tr.Occupancy(); got != 0 {
			t.Errorf("%s: occupancy %d after Reset", tr.Name(), got)
		}
		if m, ok := tr.OnMitigate(); ok {
			t.Errorf("%s: mitigation %+v after Reset", tr.Name(), m)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"PARFM cap":       func() { NewPARFM(0, 17, rng.New(1)) },
		"PARFM rng":       func() { NewPARFM(79, 17, nil) },
		"DSAC entries":    func() { NewDSAC(0, 17, rng.New(1)) },
		"DSAC rng":        func() { NewDSAC(20, 17, nil) },
		"PRoHIT entries":  func() { NewPRoHIT(0, 17, 0.5, 0.5, rng.New(1)) },
		"PRoHIT probs":    func() { NewPRoHIT(4, 17, 0, 0.5, rng.New(1)) },
		"TRR entries":     func() { NewTRR(0, 17) },
		"Graphene thresh": func() { NewGraphene(4, 1, 17) },
		"DRFM interval":   func() { NewPARADRFM(0.5, 0, 17, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
