package baseline

import (
	"fmt"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// PRoHIT reimplements Son et al.'s probabilistic history table (DAC 2017,
// "Making DRAM Stronger Against Row Hammering") per its published
// description: a small table ordered by rank.
//
//   - On a hit, the entry is promoted by one rank with probability
//     promoteProb (frequently accessed rows bubble toward the top).
//   - On a miss, the lowest-ranked entry is replaced by the new row with
//     probability insertProb (the new row enters at the bottom).
//   - At each refresh, the top-ranked entry is mitigated and removed.
//
// Like DSAC, every policy depends on the relative access frequencies in the
// pattern, so crafted decoy traffic keeps real aggressors at the bottom of
// the table (or out of it) — which is why Fig 15 shows PRoHIT taking large
// maximum disturbance under adversarial patterns.
type PRoHIT struct {
	entries     int
	rowBits     int
	insertProb  float64
	promoteProb float64
	insertT     rng.Threshold
	promoteT    rng.Threshold
	rng         *rng.Stream

	// table[0] is the top rank; table[len-1] the bottom.
	table []int
	used  int
}

var _ tracker.Tracker = (*PRoHIT)(nil)

// Default PRoHIT parameters (table of 4 as evaluated in the DAC paper's
// low-cost configuration; insertion and promotion probabilities from its
// design-space discussion).
const (
	DefaultPRoHITEntries     = 4
	DefaultPRoHITInsertProb  = 1.0 / 16
	DefaultPRoHITPromoteProb = 1.0 / 2
)

// NewPRoHIT returns a PRoHIT tracker.
func NewPRoHIT(entries, rowBits int, insertProb, promoteProb float64, r *rng.Stream) *PRoHIT {
	if entries <= 0 {
		panic(fmt.Sprintf("baseline: PRoHIT entries must be positive, got %d", entries))
	}
	if insertProb <= 0 || insertProb > 1 || promoteProb <= 0 || promoteProb > 1 {
		panic(fmt.Sprintf("baseline: PRoHIT probabilities out of (0,1]: %v, %v", insertProb, promoteProb))
	}
	if r == nil {
		panic("baseline: nil rng stream")
	}
	return &PRoHIT{
		entries:     entries,
		rowBits:     rowBits,
		insertProb:  insertProb,
		promoteProb: promoteProb,
		insertT:     rng.NewThreshold(insertProb),
		promoteT:    rng.NewThreshold(promoteProb),
		rng:         r,
		table:       make([]int, entries),
	}
}

// Name implements tracker.Tracker.
func (p *PRoHIT) Name() string { return "PRoHIT" }

// OnActivate applies the promote-on-hit / probabilistic-insert-on-miss
// policy.
func (p *PRoHIT) OnActivate(row int) {
	for i := 0; i < p.used; i++ {
		if p.table[i] == row {
			if i > 0 && p.rng.BernoulliT(p.promoteT) {
				p.table[i], p.table[i-1] = p.table[i-1], p.table[i]
			}
			return
		}
	}
	if p.used < p.entries {
		p.table[p.used] = row
		p.used++
		return
	}
	if p.rng.BernoulliT(p.insertT) {
		p.table[p.entries-1] = row
	}
}

// OnMitigate pops the top-ranked entry.
func (p *PRoHIT) OnMitigate() (tracker.Mitigation, bool) {
	if p.used == 0 {
		return tracker.Mitigation{}, false
	}
	row := p.table[0]
	copy(p.table, p.table[1:p.used])
	p.used--
	return tracker.Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (p *PRoHIT) Occupancy() int { return p.used }

// StorageBits implements tracker.Tracker.
func (p *PRoHIT) StorageBits() int { return p.entries * p.rowBits }

// Reset implements tracker.Tracker.
func (p *PRoHIT) Reset() { p.used = 0 }
