package baseline

import (
	"testing"

	"pride/internal/tracker"
)

// --- TWiCe ---

func TestTWiCeMitigatesAtThreshold(t *testing.T) {
	tw := NewTWiCe(50, 10_000, 100, 17)
	for i := 0; i < 49; i++ {
		tw.OnActivate(7)
		if ms := tw.DrainImmediate(); len(ms) != 0 {
			t.Fatalf("mitigation before threshold at act %d", i+1)
		}
	}
	tw.OnActivate(7)
	ms := tw.DrainImmediate()
	if len(ms) != 1 || ms[0].Row != 7 {
		t.Fatalf("mitigations = %+v, want row 7", ms)
	}
}

func TestTWiCePrunesColdRows(t *testing.T) {
	tw := NewTWiCe(1000, 10_000, 100, 17)
	// One touch each for many cold rows, then enough traffic to age them
	// past several pruning intervals.
	for r := 0; r < 50; r++ {
		tw.OnActivate(1000 + r)
	}
	before := tw.Occupancy()
	for i := 0; i < 1_000; i++ {
		tw.OnActivate(1) // hot row keeps its entry
	}
	after := tw.Occupancy()
	if after >= before {
		t.Fatalf("pruning did not shrink the table: %d -> %d", before, after)
	}
	// The hot row must survive pruning.
	if _, ok := tw.entries[1]; !ok {
		t.Fatal("hot row pruned")
	}
}

func TestTWiCeNeverMissesSustainedAggressor(t *testing.T) {
	// A row hammered steadily above the threshold trajectory is mitigated
	// every threshold activations — the no-miss guarantee.
	tw := NewTWiCe(100, 10_000, 100, 17)
	mitigations := 0
	for i := 0; i < 1_000; i++ {
		tw.OnActivate(42)
		mitigations += len(tw.DrainImmediate())
	}
	if mitigations != 10 {
		t.Fatalf("mitigations = %d, want 10 (one per 100 ACTs)", mitigations)
	}
}

func TestTWiCeReset(t *testing.T) {
	tw := NewTWiCe(100, 10_000, 100, 17)
	for i := 0; i < 500; i++ {
		tw.OnActivate(i % 7)
	}
	tw.Reset()
	if tw.Occupancy() != 0 || tw.Mitigations() != 0 {
		t.Fatal("Reset left state")
	}
}

// --- CAT ---

func TestCATIsolatesHotRow(t *testing.T) {
	c := NewCAT(1024, 32, 64, 10)
	mitigated := map[int]int{}
	for i := 0; i < 32*12; i++ {
		c.OnActivate(300)
		for _, m := range c.DrainImmediate() {
			mitigated[m.Row]++
		}
	}
	if mitigated[300] == 0 {
		t.Fatalf("hot row 300 never mitigated; got %v", mitigated)
	}
	// The tree zoomed in: more than one node exists.
	if c.Nodes() <= 1 {
		t.Fatal("tree never split")
	}
}

func TestCATColdRegionsShareCounters(t *testing.T) {
	c := NewCAT(1024, 1000, 64, 10)
	// Uniform cold traffic never splits beyond a few nodes.
	for i := 0; i < 900; i++ {
		c.OnActivate(i % 1024)
	}
	if c.Nodes() > 3 {
		t.Fatalf("cold traffic grew the tree to %d nodes", c.Nodes())
	}
}

func TestCATBudgetExhaustionStillMitigates(t *testing.T) {
	c := NewCAT(1024, 8, 3, 10) // tree can split exactly once
	got := 0
	for i := 0; i < 200; i++ {
		c.OnActivate(511)
		got += len(c.DrainImmediate())
	}
	if got == 0 {
		t.Fatal("budget-exhausted CAT never mitigated")
	}
	if c.Nodes() > 3 {
		t.Fatalf("node budget exceeded: %d", c.Nodes())
	}
}

func TestCATOccupancyCountsLeaves(t *testing.T) {
	c := NewCAT(16, 4, 31, 4)
	if c.Occupancy() != 1 {
		t.Fatalf("fresh tree leaves = %d, want 1", c.Occupancy())
	}
	for i := 0; i < 64; i++ {
		c.OnActivate(5)
	}
	if c.Occupancy() < 2 {
		t.Fatal("hot traffic did not split the tree")
	}
}

func TestCATPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"rows":      func() { NewCAT(1, 8, 8, 1) },
		"threshold": func() { NewCAT(16, 1, 8, 4) },
		"nodes":     func() { NewCAT(16, 8, 2, 4) },
		"range":     func() { NewCAT(16, 8, 8, 4).OnActivate(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// --- Mithril ---

func TestMithrilNoMissGuarantee(t *testing.T) {
	// With entries >= ACTs/threshold, any row reaching the threshold is
	// tracked and is the max-count entry at some mitigation opportunity.
	const threshold = 64
	const totalACTs = 4096
	m := NewMithril(MithrilEntries(totalACTs, threshold), 17)
	mitigated := map[int]bool{}
	acts := map[int]int{}
	for i := 0; i < totalACTs; i++ {
		row := i % 40
		m.OnActivate(row)
		acts[row]++
		if i%79 == 78 {
			if mit, ok := m.OnMitigate(); ok {
				mitigated[mit.Row] = true
			}
		}
	}
	for row, n := range acts {
		if n >= 2*threshold && !mitigated[row] {
			t.Fatalf("row %d reached %d ACTs without mitigation", row, n)
		}
	}
}

func TestMithrilSkipsWhenNothingHot(t *testing.T) {
	m := NewMithril(4, 17)
	if _, ok := m.OnMitigate(); ok {
		t.Fatal("empty Mithril mitigated")
	}
}

func TestMithrilEntriesSizing(t *testing.T) {
	if got := MithrilEntries(650_000, 3250); got != 200 {
		t.Fatalf("entries = %d, want 200 (Section II-E's example)", got)
	}
	if got := MithrilEntries(10, 100); got != 1 {
		t.Fatalf("entries = %d, want floor of 1", got)
	}
}

func TestCounterSchemesImplementTracker(t *testing.T) {
	for _, tr := range []tracker.Tracker{
		NewTWiCe(100, 10_000, 100, 17),
		NewCAT(1024, 32, 64, 10),
		NewMithril(8, 17),
	} {
		tr.OnActivate(1)
		if tr.StorageBits() <= 0 {
			t.Errorf("%s: non-positive storage", tr.Name())
		}
		tr.Reset()
		if tr.Occupancy() > 1 { // CAT keeps its root leaf
			t.Errorf("%s: occupancy %d after Reset", tr.Name(), tr.Occupancy())
		}
	}
}

func TestCounterSchemesVictimSharingWeakness(t *testing.T) {
	// Section VI applies to every mitigate-at-threshold scheme: two
	// aggressors at threshold-1 never trigger anything.
	const threshold = 100
	tw := NewTWiCe(threshold, 100_000, 1000, 17)
	mith := NewMithril(64, 17)
	for i := 0; i < threshold-1; i++ {
		tw.OnActivate(10)
		tw.OnActivate(12)
		mith.OnActivate(10)
		mith.OnActivate(12)
	}
	if ms := tw.DrainImmediate(); len(ms) != 0 {
		t.Fatalf("TWiCe mitigated below threshold: %+v", ms)
	}
	// The victim row 11 absorbed 2*(threshold-1) hammers unprotected.
}
