package baseline

import (
	"fmt"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// DSAC reimplements Samsung's in-DRAM Stochastic and Approximate Counting
// tracker (Hong et al., arXiv:2302.03591) as described in Section II-F:
// a 20-entry counter table where
//
//   - a hit increments the entry's counter;
//   - a miss replaces the minimum-counter entry with probability
//     1/(minCount+1), inheriting minCount+1 as the new (approximate) count —
//     the "stochastic replacement" that makes the counts unbiased estimates;
//   - at each refresh, the maximum-counter entry is mitigated and retired.
//
// All three policies are counter-driven, so an attacker who inflates decoy
// rows' counters can keep a true aggressor's insertion probability low and
// evict it before mitigation — the access-pattern dependence the paper
// identifies as the root vulnerability (DSAC is broken by TRRespass and
// Blacksmith patterns in Section VII-F).
type DSAC struct {
	entries int
	rowBits int
	rng     *rng.Stream

	rows   []int
	counts []int
	valid  []bool
}

var _ tracker.Tracker = (*DSAC)(nil)

// DefaultDSACEntries is the per-bank table size reported for DSAC.
const DefaultDSACEntries = 20

// NewDSAC returns a DSAC tracker with the given table size.
func NewDSAC(entries, rowBits int, r *rng.Stream) *DSAC {
	if entries <= 0 {
		panic(fmt.Sprintf("baseline: DSAC entries must be positive, got %d", entries))
	}
	if r == nil {
		panic("baseline: nil rng stream")
	}
	return &DSAC{
		entries: entries,
		rowBits: rowBits,
		rng:     r,
		rows:    make([]int, entries),
		counts:  make([]int, entries),
		valid:   make([]bool, entries),
	}
}

// Name implements tracker.Tracker.
func (d *DSAC) Name() string { return "DSAC" }

// OnActivate applies the hit-increment / stochastic-replacement policy.
func (d *DSAC) OnActivate(row int) {
	minIdx, minCount := -1, int(^uint(0)>>1)
	for i := 0; i < d.entries; i++ {
		if !d.valid[i] {
			// Fill invalid entries first: a fresh entry starts at count 1.
			d.rows[i] = row
			d.counts[i] = 1
			d.valid[i] = true
			return
		}
		if d.rows[i] == row {
			d.counts[i]++
			return
		}
		if d.counts[i] < minCount {
			minIdx, minCount = i, d.counts[i]
		}
	}
	// Miss with a full table: stochastic replacement of the min entry.
	if d.rng.Bernoulli(1 / float64(minCount+1)) {
		d.rows[minIdx] = row
		d.counts[minIdx] = minCount + 1
	}
}

// OnMitigate retires the maximum-counter entry.
func (d *DSAC) OnMitigate() (tracker.Mitigation, bool) {
	maxIdx, maxCount := -1, -1
	for i := 0; i < d.entries; i++ {
		if d.valid[i] && d.counts[i] > maxCount {
			maxIdx, maxCount = i, d.counts[i]
		}
	}
	if maxIdx < 0 {
		return tracker.Mitigation{}, false
	}
	row := d.rows[maxIdx]
	d.valid[maxIdx] = false
	d.counts[maxIdx] = 0
	return tracker.Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (d *DSAC) Occupancy() int {
	n := 0
	for _, v := range d.valid {
		if v {
			n++
		}
	}
	return n
}

// StorageBits implements tracker.Tracker: row + 16-bit counter + valid.
func (d *DSAC) StorageBits() int { return d.entries * (d.rowBits + 16 + 1) }

// Reset implements tracker.Tracker.
func (d *DSAC) Reset() {
	for i := range d.valid {
		d.valid[i] = false
		d.counts[i] = 0
	}
}
