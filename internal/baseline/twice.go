package baseline

import (
	"fmt"

	"pride/internal/tracker"
)

// TWiCe implements Lee et al.'s Time Window Counter tracker (ISCA 2019), a
// memory-controller-side counter scheme from Table XI. It maintains one
// entry per candidate aggressor with an activation count and a lifetime
// (in refresh windows):
//
//   - On activation, the row's count increments (inserting it if absent).
//   - Periodically (each pruning interval, a fraction of tREFW), entries
//     whose count is too low to possibly reach the threshold within their
//     remaining lifetime are pruned — the insight that keeps the table
//     smaller than one-counter-per-row.
//   - A row whose count crosses the threshold is mitigated immediately and
//     reset.
//
// TWiCe never misses an aggressor (counts are exact while tracked), at the
// price of a table that scales inversely with the threshold (Table XI:
// 300KB per bank at TRH-D=4K, 3MB at 400) — the storage-vs-security trade
// PrIDE's 10 bytes sidestep.
type TWiCe struct {
	threshold   int
	pruneEvery  int
	maxLife     int
	rowBits     int
	sincePrune  int
	entries     map[int]*twiceEntry
	pending     []tracker.Mitigation
	mitigations uint64
}

type twiceEntry struct {
	count int
	life  int
}

var (
	_ tracker.Tracker    = (*TWiCe)(nil)
	_ ImmediateMitigator = (*TWiCe)(nil)
)

// NewTWiCe returns a TWiCe tracker that mitigates rows reaching threshold
// activations within a refresh window of windowACTs activations, pruning
// every pruneEvery activations.
func NewTWiCe(threshold, windowACTs, pruneEvery, rowBits int) *TWiCe {
	if threshold < 2 {
		panic(fmt.Sprintf("baseline: TWiCe threshold must be >= 2, got %d", threshold))
	}
	if pruneEvery < 1 || windowACTs < pruneEvery {
		panic(fmt.Sprintf("baseline: bad TWiCe window/prune %d/%d", windowACTs, pruneEvery))
	}
	return &TWiCe{
		threshold:  threshold,
		pruneEvery: pruneEvery,
		maxLife:    windowACTs / pruneEvery,
		rowBits:    rowBits,
		entries:    map[int]*twiceEntry{},
	}
}

// Name implements tracker.Tracker.
func (t *TWiCe) Name() string { return "TWiCe" }

// OnActivate counts the activation and applies threshold/pruning logic.
func (t *TWiCe) OnActivate(row int) {
	e, ok := t.entries[row]
	if !ok {
		e = &twiceEntry{}
		t.entries[row] = e
	}
	e.count++
	if e.count >= t.threshold {
		t.pending = append(t.pending, tracker.Mitigation{Row: row, Level: 1})
		t.mitigations++
		e.count = 0
		e.life = 0
	}

	t.sincePrune++
	if t.sincePrune >= t.pruneEvery {
		t.sincePrune = 0
		t.prune()
	}
}

// prune ages every entry and drops those that can no longer reach the
// threshold before their window expires: count < threshold * life/maxLife.
func (t *TWiCe) prune() {
	for row, e := range t.entries {
		e.life++
		if e.life >= t.maxLife {
			delete(t.entries, row)
			continue
		}
		// Minimum count needed at this age to still be on a
		// threshold-crossing trajectory.
		need := t.threshold * e.life / t.maxLife
		if e.count < need {
			delete(t.entries, row)
		}
	}
}

// DrainImmediate implements ImmediateMitigator. The returned slice is
// reused: it is valid only until the next OnActivate.
func (t *TWiCe) DrainImmediate() []tracker.Mitigation {
	out := t.pending
	t.pending = t.pending[:0]
	return out
}

// OnMitigate implements tracker.Tracker; TWiCe mitigates inline.
func (t *TWiCe) OnMitigate() (tracker.Mitigation, bool) {
	return tracker.Mitigation{}, false
}

// Occupancy implements tracker.Tracker.
func (t *TWiCe) Occupancy() int { return len(t.entries) }

// Mitigations returns the number of threshold crossings so far.
func (t *TWiCe) Mitigations() uint64 { return t.mitigations }

// StorageBits implements tracker.Tracker: TWiCe is sized for its worst-case
// occupancy, windowACTs/threshold-ish entries of (row + count + life).
func (t *TWiCe) StorageBits() int {
	cb := counterBits(t.threshold)
	lifeBits := counterBits(t.maxLife)
	capacity := t.maxLife * t.pruneEvery / t.threshold * 2 // pruning bound
	if capacity < 1 {
		capacity = 1
	}
	return capacity * (t.rowBits + cb + lifeBits)
}

// Reset implements tracker.Tracker.
func (t *TWiCe) Reset() {
	t.entries = map[int]*twiceEntry{}
	t.pending = nil
	t.sincePrune = 0
	t.mitigations = 0
}
