// Package baseline implements the Rowhammer trackers the paper compares
// PrIDE against: the memory-controller-side PARA family (PARA-MC,
// PARA-DRFM, PARFM) and the in-DRAM counter-based trackers (DSAC, PRoHIT,
// a TRR-style deterministic sampler, and Graphene).
//
// Every implementation follows the published description of the scheme; the
// counter-driven ones deliberately retain the access-pattern-dependent
// policy decisions that Section II-G identifies as their root vulnerability,
// because reproducing Fig 15 requires their weaknesses to be faithful.
package baseline

import (
	"fmt"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// ImmediateMitigator is implemented by controller-side schemes that issue
// mitigations immediately on an activation (PARA, Graphene) rather than
// waiting for a refresh opportunity. The simulator drains these after every
// activation.
type ImmediateMitigator interface {
	// DrainImmediate returns and clears mitigations to perform right now.
	// The returned slice is borrowed: implementations reuse its backing
	// array, so it is valid only until the next OnActivate on the same
	// tracker. Callers that retain mitigations must copy them out (ranging
	// over the slice and appending values, as the simulators do, is safe).
	DrainImmediate() []tracker.Mitigation
}

// PARA is Kim et al.'s probabilistic mitigation at the memory controller:
// on each activation, with probability p, the row's neighbours are refreshed
// immediately. It keeps no state at all, which makes it pattern-independent
// but — lacking DRAM adjacency knowledge and visibility into mitigative
// refreshes — vulnerable to transitive attacks (Section IV-G).
type PARA struct {
	p       float64
	pT      rng.Threshold
	rng     *rng.Stream
	pending []tracker.Mitigation
	acts    uint64
}

var (
	_ tracker.Tracker       = (*PARA)(nil)
	_ tracker.SkipAdvancer  = (*PARA)(nil)
	_ tracker.IdleMitigator = (*PARA)(nil)
	_ ImmediateMitigator    = (*PARA)(nil)
)

// NewPARA returns a PARA instance with refresh probability p.
func NewPARA(p float64, r *rng.Stream) *PARA {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("baseline: PARA probability must be in (0,1], got %v", p))
	}
	if r == nil {
		panic("baseline: nil rng stream")
	}
	return &PARA{p: p, pT: rng.NewThreshold(p), rng: r}
}

// Name implements tracker.Tracker.
func (p *PARA) Name() string { return "PARA-MC" }

// OnActivate samples the activation; selected rows are mitigated
// immediately (drained by the simulator after this call).
func (p *PARA) OnActivate(row int) {
	p.acts++
	if p.rng.BernoulliT(p.pT) {
		p.pending = append(p.pending, tracker.Mitigation{Row: row, Level: 1})
	}
}

// SupportsSkipAhead implements tracker.SkipAdvancer: PARA is stateless, so
// its sampling decision is unconditionally pattern-independent.
func (p *PARA) SupportsSkipAhead() bool { return true }

// InsertionProb implements tracker.SkipAdvancer, returning the
// lattice-rounded sampling probability (matching BernoulliT's firing rate).
func (p *PARA) InsertionProb() float64 { return p.pT.Prob() }

// AdvanceIdle implements tracker.SkipAdvancer: n activations whose sampling
// draws all failed change nothing but the activation count.
func (p *PARA) AdvanceIdle(n int) {
	if n < 0 {
		panic(fmt.Sprintf("baseline: AdvanceIdle(%d)", n))
	}
	p.acts += uint64(n)
}

// ActivateInsert implements tracker.SkipAdvancer: one activation whose
// sampling draw succeeded queues an immediate mitigation, consuming no
// draws.
func (p *PARA) ActivateInsert(row int) {
	p.acts++
	p.pending = append(p.pending, tracker.Mitigation{Row: row, Level: 1})
}

// DrainImmediate implements ImmediateMitigator. The returned slice is
// reused: it is valid only until the next OnActivate.
func (p *PARA) DrainImmediate() []tracker.Mitigation {
	out := p.pending
	p.pending = p.pending[:0]
	return out
}

// OnMitigate implements tracker.Tracker; PARA performs nothing at refresh.
func (p *PARA) OnMitigate() (tracker.Mitigation, bool) {
	return tracker.Mitigation{}, false
}

// AdvanceIdleMitigations implements tracker.IdleMitigator: PARA does
// nothing at refresh opportunities, so retiring n of them in bulk is a
// no-op (n is validated for contract symmetry).
func (p *PARA) AdvanceIdleMitigations(n int) {
	if n < 0 {
		panic(fmt.Sprintf("baseline: AdvanceIdleMitigations(%d)", n))
	}
}

// Occupancy implements tracker.Tracker; PARA tracks nothing.
func (p *PARA) Occupancy() int { return len(p.pending) }

// StorageBits implements tracker.Tracker: PARA only needs its RNG.
func (p *PARA) StorageBits() int { return 0 }

// Reset implements tracker.Tracker.
func (p *PARA) Reset() {
	p.pending = nil
	p.acts = 0
}

// PARADRFM adapts PARA to DDR5's Directed Refresh Management command
// (Section IV-G): the controller samples activations with probability p into
// a single pending-address register (a newer selection overwrites an
// unissued one — precisely the single-entry-tracker behaviour the analytic
// model assumes), and may issue at most one DRFM every `interval` refresh
// opportunities.
type PARADRFM struct {
	p        float64
	pT       rng.Threshold
	interval int
	rng      *rng.Stream

	pendingRow   int
	pendingValid bool
	sinceIssue   int
	rowBits      int
}

var _ tracker.Tracker = (*PARADRFM)(nil)

// NewPARADRFM returns a PARA-DRFM with sampling probability p, issuing at
// most one DRFM per interval mitigation opportunities (DDR5: interval=2;
// the enhanced PARA-DRFM+ uses interval=1).
func NewPARADRFM(p float64, interval, rowBits int, r *rng.Stream) *PARADRFM {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("baseline: PARA-DRFM probability must be in (0,1], got %v", p))
	}
	if interval < 1 {
		panic(fmt.Sprintf("baseline: DRFM interval must be >= 1, got %d", interval))
	}
	if r == nil {
		panic("baseline: nil rng stream")
	}
	return &PARADRFM{p: p, pT: rng.NewThreshold(p), interval: interval, rowBits: rowBits, rng: r, sinceIssue: interval}
}

// Name implements tracker.Tracker.
func (d *PARADRFM) Name() string {
	if d.interval == 1 {
		return "PARA-DRFM+"
	}
	return "PARA-DRFM"
}

// OnActivate samples the row into the pending register, overwriting any
// unissued selection.
func (d *PARADRFM) OnActivate(row int) {
	if d.rng.BernoulliT(d.pT) {
		d.pendingRow = row
		d.pendingValid = true
	}
}

// OnMitigate issues the pending DRFM if the rate limit allows.
func (d *PARADRFM) OnMitigate() (tracker.Mitigation, bool) {
	d.sinceIssue++
	if !d.pendingValid || d.sinceIssue < d.interval {
		return tracker.Mitigation{}, false
	}
	d.sinceIssue = 0
	d.pendingValid = false
	return tracker.Mitigation{Row: d.pendingRow, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (d *PARADRFM) Occupancy() int {
	if d.pendingValid {
		return 1
	}
	return 0
}

// StorageBits implements tracker.Tracker: one row register plus a valid bit
// and the rate-limit counter.
func (d *PARADRFM) StorageBits() int { return d.rowBits + 1 + 8 }

// Reset implements tracker.Tracker.
func (d *PARADRFM) Reset() {
	d.pendingValid = false
	d.sinceIssue = d.interval
}

// PARFM is PARA co-designed with RFM per Mithril (Section V-C): every
// activated address since the last mitigation is buffered; at each
// mitigation opportunity one buffered entry is chosen uniformly at random,
// mitigated, and the whole buffer is cleared for the next epoch. It needs a
// buffer as large as the mitigation window (79 entries for DDR5, 166 for
// DDR4) and remains vulnerable to transitive attacks.
type PARFM struct {
	capacity int
	rowBits  int
	rng      *rng.Stream
	buf      []int
}

var _ tracker.Tracker = (*PARFM)(nil)

// NewPARFM returns a PARFM with the given buffer capacity (the mitigation
// window W).
func NewPARFM(capacity, rowBits int, r *rng.Stream) *PARFM {
	if capacity <= 0 {
		panic(fmt.Sprintf("baseline: PARFM capacity must be positive, got %d", capacity))
	}
	if r == nil {
		panic("baseline: nil rng stream")
	}
	return &PARFM{capacity: capacity, rowBits: rowBits, rng: r, buf: make([]int, 0, capacity)}
}

// Name implements tracker.Tracker.
func (p *PARFM) Name() string { return "PARFM" }

// OnActivate buffers every activated address (dropping extras beyond the
// epoch capacity, which cannot happen when capacity == W).
func (p *PARFM) OnActivate(row int) {
	if len(p.buf) < p.capacity {
		p.buf = append(p.buf, row)
	}
}

// OnMitigate picks a uniformly random buffered address, then clears the
// buffer for the next epoch.
func (p *PARFM) OnMitigate() (tracker.Mitigation, bool) {
	if len(p.buf) == 0 {
		return tracker.Mitigation{}, false
	}
	row := p.buf[p.rng.Intn(len(p.buf))]
	p.buf = p.buf[:0]
	return tracker.Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (p *PARFM) Occupancy() int { return len(p.buf) }

// StorageBits implements tracker.Tracker.
func (p *PARFM) StorageBits() int { return p.capacity * p.rowBits }

// Reset implements tracker.Tracker.
func (p *PARFM) Reset() { p.buf = p.buf[:0] }
