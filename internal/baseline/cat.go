package baseline

import (
	"fmt"

	"pride/internal/tracker"
)

// CAT implements Seyedzadeh et al.'s Counter-based Adaptive Tree (ISCA
// 2018), Table XI's third counter scheme. A binary tree of counters covers
// the row-address space: each leaf counts activations to its address range;
// when a leaf's count crosses the split threshold and the range is wider
// than one row, the leaf splits, adaptively zooming in on hot regions until
// single hot ROWS are isolated and mitigated at the Rowhammer threshold.
//
// CAT trades a modest counter budget for exactness: cold regions share one
// counter, hot rows get their own. Its storage still scales inversely with
// the threshold (Table XI: 196KB at TRH-D=4K), and like all counter schemes
// its mitigation-at-threshold policy is exposed to victim-sharing
// (Section VI).
type CAT struct {
	threshold int
	maxNodes  int
	rowBits   int

	root        *catNode
	nodes       int
	pending     []tracker.Mitigation
	mitigations uint64
}

type catNode struct {
	lo, hi      int // row range [lo, hi)
	count       int
	left, right *catNode
}

var (
	_ tracker.Tracker    = (*CAT)(nil)
	_ ImmediateMitigator = (*CAT)(nil)
)

// NewCAT returns a CAT over rows [0, rows) that mitigates single rows
// reaching threshold activations, with at most maxNodes tree nodes (when
// the budget is exhausted, leaves stop splitting and ranges are mitigated
// conservatively as a whole).
func NewCAT(rows, threshold, maxNodes, rowBits int) *CAT {
	if rows < 2 {
		panic(fmt.Sprintf("baseline: CAT needs >= 2 rows, got %d", rows))
	}
	if threshold < 2 {
		panic(fmt.Sprintf("baseline: CAT threshold must be >= 2, got %d", threshold))
	}
	if maxNodes < 3 {
		panic(fmt.Sprintf("baseline: CAT needs >= 3 nodes, got %d", maxNodes))
	}
	return &CAT{
		threshold: threshold,
		maxNodes:  maxNodes,
		rowBits:   rowBits,
		root:      &catNode{lo: 0, hi: rows},
		nodes:     1,
	}
}

// Name implements tracker.Tracker.
func (c *CAT) Name() string { return "CAT" }

// OnActivate walks the tree to the covering leaf, increments it, and splits
// or mitigates per the adaptive policy.
func (c *CAT) OnActivate(row int) {
	n := c.root
	for n.left != nil {
		if row < n.left.hi {
			n = n.left
		} else {
			n = n.right
		}
	}
	if row < n.lo || row >= n.hi {
		panic(fmt.Sprintf("baseline: CAT row %d outside [%d,%d)", row, c.root.lo, c.root.hi))
	}
	n.count++
	if n.count < c.threshold {
		return
	}
	switch {
	case n.hi-n.lo == 1:
		// A single hot row isolated: mitigate and rewind.
		c.pending = append(c.pending, tracker.Mitigation{Row: n.lo, Level: 1})
		c.mitigations++
		n.count = 0
	case c.nodes+2 <= c.maxNodes:
		// Split: children inherit half the parent's count (the classic
		// CAT over-approximation that keeps counts conservative).
		mid := (n.lo + n.hi) / 2
		n.left = &catNode{lo: n.lo, hi: mid, count: n.count / 2}
		n.right = &catNode{lo: mid, hi: n.hi, count: n.count / 2}
		c.nodes += 2
		n.count = 0
	default:
		// Budget exhausted: conservatively mitigate the whole range's
		// midpoint region (refreshing around the hottest possible rows)
		// and rewind. Real CAT sizes the tree so this path is rare.
		mid := (n.lo + n.hi) / 2
		c.pending = append(c.pending, tracker.Mitigation{Row: mid, Level: 1})
		c.mitigations++
		n.count = 0
	}
}

// DrainImmediate implements ImmediateMitigator. The returned slice is
// reused: it is valid only until the next OnActivate.
func (c *CAT) DrainImmediate() []tracker.Mitigation {
	out := c.pending
	c.pending = c.pending[:0]
	return out
}

// OnMitigate implements tracker.Tracker; CAT mitigates inline.
func (c *CAT) OnMitigate() (tracker.Mitigation, bool) {
	return tracker.Mitigation{}, false
}

// Occupancy implements tracker.Tracker: the number of live leaves.
func (c *CAT) Occupancy() int {
	leaves := 0
	var walk func(*catNode)
	walk = func(n *catNode) {
		if n.left == nil {
			leaves++
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(c.root)
	return leaves
}

// Nodes returns the current tree size.
func (c *CAT) Nodes() int { return c.nodes }

// Mitigations returns the number of mitigations issued so far.
func (c *CAT) Mitigations() uint64 { return c.mitigations }

// StorageBits implements tracker.Tracker: maxNodes counters plus two range
// bounds each.
func (c *CAT) StorageBits() int {
	return c.maxNodes * (counterBits(c.threshold) + 2*c.rowBits)
}

// Reset implements tracker.Tracker.
func (c *CAT) Reset() {
	c.root = &catNode{lo: c.root.lo, hi: c.root.hi}
	c.nodes = 1
	c.pending = nil
	c.mitigations = 0
}
