package baseline

import (
	"fmt"

	"pride/internal/tracker"
)

// Graphene implements Park et al.'s Misra-Gries frequent-item tracker
// (MICRO 2020), the counter-based "optimal-class" design that Mithril and
// ProTRR build on (Section II-E, Table XI).
//
// A table of (row, counter) pairs plus a spillover counter maintains, per
// Misra-Gries, an underestimate of every row's activation count with bounded
// error. When a tracked row's estimated count reaches the mitigation
// threshold, the row is mitigated IMMEDIATELY (Graphene issues its own
// refreshes) and its counter rewinds.
//
// With enough entries (ACTs-per-tREFW / threshold) Graphene never misses an
// aggressor — but that is exactly the storage the paper's Table XI shows
// ballooning at low thresholds, and counter-based mitigation-at-threshold is
// what victim-sharing attacks exploit (Section VI): each aggressor can
// legally reach threshold-1 activations, so a victim shared by k aggressors
// absorbs k*(threshold-1) hammers without any refresh.
type Graphene struct {
	entries   int
	threshold int
	rowBits   int

	rows     []int
	counts   []int
	valid    []bool
	spill    int
	pending  []tracker.Mitigation
	mitCount uint64
}

var (
	_ tracker.Tracker    = (*Graphene)(nil)
	_ ImmediateMitigator = (*Graphene)(nil)
)

// NewGraphene returns a Graphene tracker that mitigates any row whose
// estimated count reaches threshold. entries should be at least
// ACTsPerTREFW/threshold for the no-miss guarantee; smaller tables degrade
// gracefully (higher estimation error).
func NewGraphene(entries, threshold, rowBits int) *Graphene {
	if entries <= 0 {
		panic(fmt.Sprintf("baseline: Graphene entries must be positive, got %d", entries))
	}
	if threshold <= 1 {
		panic(fmt.Sprintf("baseline: Graphene threshold must be > 1, got %d", threshold))
	}
	return &Graphene{
		entries:   entries,
		threshold: threshold,
		rowBits:   rowBits,
		rows:      make([]int, entries),
		counts:    make([]int, entries),
		valid:     make([]bool, entries),
	}
}

// Name implements tracker.Tracker.
func (g *Graphene) Name() string { return "Graphene" }

// OnActivate applies the Misra-Gries update and queues an immediate
// mitigation when a row's estimate reaches the threshold.
func (g *Graphene) OnActivate(row int) {
	minIdx, minCount := -1, int(^uint(0)>>1)
	for i := 0; i < g.entries; i++ {
		if !g.valid[i] {
			g.rows[i] = row
			g.counts[i] = g.spill + 1
			g.valid[i] = true
			g.checkThreshold(i)
			return
		}
		if g.rows[i] == row {
			g.counts[i]++
			g.checkThreshold(i)
			return
		}
		if g.counts[i] < minCount {
			minIdx, minCount = i, g.counts[i]
		}
	}
	// Misra-Gries miss on a full table: bump the spillover; if it reaches
	// the minimum tracked count, the new row takes that entry with count
	// spill+1 (the classic swap that preserves the error bound).
	g.spill++
	if g.spill >= minCount {
		g.rows[minIdx] = row
		g.counts[minIdx] = g.spill + 1
		g.checkThreshold(minIdx)
	}
}

// checkThreshold queues a mitigation and rewinds the counter when entry i
// crosses the mitigation threshold.
func (g *Graphene) checkThreshold(i int) {
	if g.counts[i] >= g.threshold {
		g.pending = append(g.pending, tracker.Mitigation{Row: g.rows[i], Level: 1})
		g.mitCount++
		// Rewind: the row restarts counting (Graphene resets to the
		// spillover floor so the estimate stays an overcount of spill).
		g.counts[i] = g.spill
	}
}

// DrainImmediate implements ImmediateMitigator. The returned slice is
// reused: it is valid only until the next OnActivate.
func (g *Graphene) DrainImmediate() []tracker.Mitigation {
	out := g.pending
	g.pending = g.pending[:0]
	return out
}

// OnMitigate implements tracker.Tracker; Graphene mitigates inline, so the
// refresh hook does nothing.
func (g *Graphene) OnMitigate() (tracker.Mitigation, bool) {
	return tracker.Mitigation{}, false
}

// Occupancy implements tracker.Tracker.
func (g *Graphene) Occupancy() int {
	n := 0
	for _, v := range g.valid {
		if v {
			n++
		}
	}
	return n
}

// StorageBits implements tracker.Tracker: row + counter wide enough to
// represent 0..threshold + valid bit, plus the spillover counter.
func (g *Graphene) StorageBits() int {
	cb := counterBits(g.threshold)
	return g.entries*(g.rowBits+cb+1) + cb
}

// Mitigations returns the total number of threshold crossings so far.
func (g *Graphene) Mitigations() uint64 { return g.mitCount }

// Reset implements tracker.Tracker.
func (g *Graphene) Reset() {
	for i := range g.valid {
		g.valid[i] = false
		g.counts[i] = 0
	}
	g.spill = 0
	g.pending = nil
	g.mitCount = 0
}
