package baseline

import (
	"fmt"

	"pride/internal/tracker"
)

// TRR models a DDR4-style vendor Targeted Row Refresh tracker as
// reverse-engineered by TRRespass and Uncovering-TRR (Section II-F): a small
// table of counters with DETERMINISTIC, counter-driven policies.
//
//   - A hit increments the entry's counter.
//   - A miss inserts the row if the table has room; otherwise it replaces
//     the minimum-counter entry only if that counter has decayed to zero.
//   - Counters decay by one at each refresh (the "sliding window" vendors
//     use to age out old aggressors).
//   - At each refresh the maximum-counter entry is mitigated and reset.
//
// Two published weaknesses follow directly and are exercised in tests and
// the Fig 15 reproduction:
//
//   - TRRespass: more aggressor rows than table entries means some
//     aggressors never displace tracked decoys (min counter never reaches
//     zero), so they hammer freely.
//   - Blacksmith: deterministic insertion means traffic placed at the right
//     phase keeps the true aggressors out of the table entirely.
type TRR struct {
	entries int
	rowBits int

	rows   []int
	counts []int
	valid  []bool
}

var _ tracker.Tracker = (*TRR)(nil)

// DefaultTRREntries is a mid-range DDR4 TRR table size (vendors use 1-30).
const DefaultTRREntries = 16

// NewTRR returns a TRR-style tracker.
func NewTRR(entries, rowBits int) *TRR {
	if entries <= 0 {
		panic(fmt.Sprintf("baseline: TRR entries must be positive, got %d", entries))
	}
	return &TRR{
		entries: entries,
		rowBits: rowBits,
		rows:    make([]int, entries),
		counts:  make([]int, entries),
		valid:   make([]bool, entries),
	}
}

// Name implements tracker.Tracker.
func (t *TRR) Name() string { return "TRR" }

// OnActivate applies the deterministic counter policy.
func (t *TRR) OnActivate(row int) {
	minIdx, minCount := -1, int(^uint(0)>>1)
	for i := 0; i < t.entries; i++ {
		if !t.valid[i] {
			t.rows[i] = row
			t.counts[i] = 1
			t.valid[i] = true
			return
		}
		if t.rows[i] == row {
			t.counts[i]++
			return
		}
		if t.counts[i] < minCount {
			minIdx, minCount = i, t.counts[i]
		}
	}
	// Deterministic replacement: only a fully decayed entry is displaced.
	if minCount == 0 {
		t.rows[minIdx] = row
		t.counts[minIdx] = 1
	}
}

// OnMitigate mitigates the maximum-counter entry and decays the rest.
func (t *TRR) OnMitigate() (tracker.Mitigation, bool) {
	maxIdx, maxCount := -1, 0
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.counts[i] > maxCount {
			maxIdx, maxCount = i, t.counts[i]
		}
	}
	// Decay all counters (aging window).
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.counts[i] > 0 {
			t.counts[i]--
		}
	}
	if maxIdx < 0 {
		return tracker.Mitigation{}, false
	}
	row := t.rows[maxIdx]
	t.counts[maxIdx] = 0
	return tracker.Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements tracker.Tracker.
func (t *TRR) Occupancy() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// StorageBits implements tracker.Tracker.
func (t *TRR) StorageBits() int { return t.entries * (t.rowBits + 16 + 1) }

// Reset implements tracker.Tracker.
func (t *TRR) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.counts[i] = 0
	}
}
