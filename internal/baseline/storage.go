package baseline

import "math/bits"

// counterBits returns the width of a hardware counter that must represent
// every value in 0..max inclusive: ceil(log2(max+1)) bits. Centralized
// because several schemes' storage accounting previously used ad-hoc
// shift loops that computed bits.Len(max)+1, overcounting every counter by
// one bit (a threshold-32 counter needs 6 bits, not 7).
func counterBits(max int) int {
	if max <= 0 {
		return 0
	}
	return bits.Len(uint(max))
}
