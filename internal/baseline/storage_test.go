package baseline

import (
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

func TestCounterBits(t *testing.T) {
	// A counter holding 0..max needs ceil(log2(max+1)) bits; the old shift
	// loop yielded one extra bit for every max.
	cases := []struct{ max, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{15, 4}, {16, 5}, {32, 6}, {1000, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := counterBits(c.max); got != c.want {
			t.Errorf("counterBits(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestStorageBitsHandComputed(t *testing.T) {
	// Hand-computed register budgets for every scheme, pinning the
	// counter-width accounting (counters representing 0..threshold need
	// ceil(log2(threshold+1)) bits, not one more).
	r := func() *rng.Stream { return rng.New(1) }
	cases := []struct {
		name string
		tr   tracker.Tracker
		want int
	}{
		// PARA keeps no state at all.
		{"PARA", NewPARA(0.01, r()), 0},
		// One pending-row register + valid bit + 8-bit rate-limit counter.
		{"PARA-DRFM", NewPARADRFM(0.01, 2, 17, r()), 17 + 1 + 8},
		// W-entry epoch buffer of row addresses.
		{"PARFM", NewPARFM(79, 17, r()), 79 * 17},
		// 4 ranked row entries.
		{"PRoHIT", NewPRoHIT(4, 17, 1.0/16, 0.5, r()), 4 * 17},
		// 4 entries of row + 16-bit count + valid.
		{"DSAC", NewDSAC(4, 17, r()), 4 * (17 + 16 + 1)},
		{"TRR", NewTRR(4, 17), 4 * (17 + 16 + 1)},
		{"Mithril", NewMithril(4, 17), 4*(17+16+1) + 16},
		// 8 entries of (17-bit row + 6-bit counter for 0..32 + valid),
		// plus the 6-bit spillover counter.
		{"Graphene", NewGraphene(8, 32, 17), 8*(17+6+1) + 6},
		// maxLife = 1024/128 = 8 (4 bits), count 0..32 (6 bits),
		// capacity = 8*128/32*2 = 64 entries.
		{"TWiCe", NewTWiCe(32, 1024, 128, 17), 64 * (17 + 6 + 4)},
		// 64 nodes of (6-bit counter + two 10-bit range bounds).
		{"CAT", NewCAT(1024, 32, 64, 10), 64 * (6 + 2*10)},
	}
	for _, c := range cases {
		if got := c.tr.StorageBits(); got != c.want {
			t.Errorf("%s.StorageBits() = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDrainImmediateReusesBuffer(t *testing.T) {
	// The drain contract: after a drain, the next activations reuse the
	// returned slice's backing array instead of allocating a fresh one.
	p := NewPARA(1, rng.New(1)) // p=1: every activation queues a mitigation
	p.OnActivate(7)
	first := p.DrainImmediate()
	if len(first) != 1 || first[0].Row != 7 {
		t.Fatalf("unexpected first drain %v", first)
	}
	p.OnActivate(8)
	second := p.DrainImmediate()
	if len(second) != 1 || second[0].Row != 8 {
		t.Fatalf("unexpected second drain %v", second)
	}
	if &first[0] != &second[0] {
		t.Fatal("drain buffer was not reused across epochs")
	}
}
