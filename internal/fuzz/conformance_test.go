// Adversarial-search conformance: the trackertest property run against the
// line-up, in an external test package because trackertest itself imports
// fuzz. The bounded specs assert the paper's pattern-obliviousness claim
// (search plateaus at or below the analytic TRH*); the climbing spec asserts
// its converse for a counter-based tracker. TRR also climbs past the bound
// but only with a full-refresh-window budget — the committed corpus carries
// that assertion (see corpus/), keeping this suite's runtime moderate.
package fuzz_test

import (
	"testing"

	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/fuzz"
	"pride/internal/sim"
	"pride/internal/tracker/trackertest"
)

func conformanceConfig(acts int) fuzz.Config {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	return fuzz.Config{
		Attack:       sim.AttackConfig{Params: p, ACTs: acts},
		Generations:  6,
		Islands:      3,
		Population:   4,
		MigrateEvery: 2,
		MaxPairs:     8,
		Engine:       engine.Event,
	}
}

func TestSearchConformance(t *testing.T) {
	mustScheme := func(name string) sim.Scheme {
		s, err := sim.SchemeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	specs := []trackertest.SearchSpec{
		{Name: "PrIDE", Scheme: sim.PrIDEScheme(), Config: conformanceConfig(60_000), Seed: 42, Bounded: true},
		{Name: "PrIDE+RFM40", Scheme: mustScheme("PrIDE+RFM40"), Config: conformanceConfig(60_000), Seed: 42, Bounded: true},
		{Name: "PrIDE+RFM16", Scheme: mustScheme("PrIDE+RFM16"), Config: conformanceConfig(60_000), Seed: 42, Bounded: true},
		// PRoHIT needs a longer trial for the search to climb past the
		// analytic bound (its table takes time to thrash).
		{Name: "PRoHIT", Scheme: mustScheme("PRoHIT"), Config: conformanceConfig(150_000), Seed: 42, Climbs: true},
		// The zoo: MINT is pattern-oblivious by construction (the insertion
		// position is committed before the interval begins), and MOAT's
		// deterministic ATO cap sits far below the PrIDE bound, so a guided
		// adversary cannot climb against either.
		{Name: "MINT", Scheme: mustScheme("MINT"), Config: conformanceConfig(60_000), Seed: 42, Bounded: true},
		{Name: "MOAT", Scheme: mustScheme("MOAT"), Config: conformanceConfig(60_000), Seed: 42, Bounded: true},
	}
	if testing.Short() {
		specs = specs[:1]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			trackertest.RunSearchConformance(t, spec)
		})
	}
}
