// Package fuzz implements guided adversarial search for worst-case attack
// patterns — the methodology behind Blacksmith (and behind the paper's
// Section VII-F evaluation) turned into a reusable harness.
//
// The search is an island-model population search: N islands each evolve an
// independent (mu+lambda)-style population in Blacksmith's
// frequency/phase/amplitude space, and every K generations the islands
// exchange elites over a deterministic ring (island i's best-so-far replaces
// island i+1's worst member). Islands explore independently between
// migrations, so the population covers far more of the pattern space than a
// single hill climb, while migration lets a strong lineage spread.
//
// Determinism contract (the same one the campaign engines keep): island i's
// evolution during epoch e draws every random decision — genome
// initialization, mutations, per-evaluation simulation seeds — from the
// private stream rng.Derived(seed, e*islands+i), never from shared state,
// and migration is a pure function of the epoch's island states applied in
// island order. Results are therefore bit-identical at any worker count,
// and because every island state round-trips exactly through encoding/json,
// an interrupted search resumes from its checkpoint to the bit-identical
// result.
//
// Against counter-driven trackers the search climbs quickly (their worst
// case is pattern-shaped); against PrIDE it plateaus at the bounded
// disturbance the analytic model predicts, because no pattern parameter can
// influence PrIDE's policy decisions. That contrast is the paper's central
// claim, demonstrated by search rather than by enumeration — and the
// committed corpus/ directory plus its replay suite re-assert it on every
// change.
package fuzz

import (
	"context"
	"encoding/json"
	"fmt"

	"pride/internal/engine"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// Config parameterizes an island-model search campaign.
type Config struct {
	// Attack is the per-evaluation trial configuration.
	Attack sim.AttackConfig
	// Generations is the number of mutate-evaluate generations per island.
	Generations int
	// Islands is the number of independent populations.
	Islands int
	// Population is the number of genomes per island.
	Population int
	// MigrateEvery is the elite-migration cadence in generations: after
	// every MigrateEvery generations each island's best-so-far replaces its
	// ring successor's worst member. Values >= Generations mean the islands
	// never exchange genomes.
	MigrateEvery int
	// MaxPairs bounds the genome size.
	MaxPairs int
	// Engine selects the evaluation engine. The zero value is
	// engine.Exact, the per-ACT reference; engine.Event evaluates
	// skip-ahead trackers (PrIDE, PARA) orders of magnitude faster and
	// falls back to the exact loop for everything else.
	Engine engine.Kind
}

func (c Config) validate() error {
	switch {
	case c.Generations < 1:
		return fmt.Errorf("fuzz: Generations must be >= 1, got %d", c.Generations)
	case c.Islands < 1:
		return fmt.Errorf("fuzz: Islands must be >= 1, got %d", c.Islands)
	case c.Population < 1:
		return fmt.Errorf("fuzz: Population must be >= 1, got %d", c.Population)
	case c.MigrateEvery < 1:
		return fmt.Errorf("fuzz: MigrateEvery must be >= 1, got %d", c.MigrateEvery)
	case c.MaxPairs < 1:
		return fmt.Errorf("fuzz: MaxPairs must be >= 1, got %d", c.MaxPairs)
	case c.Attack.ACTs < 1:
		return fmt.Errorf("fuzz: Attack.ACTs must be >= 1, got %d", c.Attack.ACTs)
	}
	return nil
}

// Epochs returns the number of migration epochs the search runs: the
// generations split into MigrateEvery-sized chunks, with a final short epoch
// when MigrateEvery does not divide Generations. An epoch is the checkpoint
// granularity — an interrupted search resumes at the last completed epoch.
func (c Config) Epochs() int {
	return (c.Generations + c.MigrateEvery - 1) / c.MigrateEvery
}

// generationsIn returns how many generations epoch e runs.
func (c Config) generationsIn(e int) int {
	g := c.Generations - e*c.MigrateEvery
	if g > c.MigrateEvery {
		g = c.MigrateEvery
	}
	return g
}

// Member is one genome with the score of its evaluation and the simulation
// seed that produced it, so the best-found attack replays exactly.
type Member struct {
	Genome Genome `json:"genome"`
	Score  int    `json:"score"`
	// Seed is the per-evaluation simulation seed Score was measured under.
	Seed uint64 `json:"seed"`
}

// IslandState is the complete state of one island after an epoch. It holds
// only plain integers and slices, so it round-trips exactly through
// encoding/json — which is what makes checkpoint resume bit-identical.
type IslandState struct {
	// Members is the island's current population.
	Members []Member `json:"members"`
	// Best is the best member the island has ever evaluated (elitist: it
	// never regresses, even if migration later overwrites its slot).
	Best Member `json:"best"`
	// History records Best.Score after each completed generation.
	History []int `json:"history"`
}

// epochState is one checkpointed trial result: every island's state after
// the epoch's generations and the following migration.
type epochState struct {
	Islands []IslandState `json:"islands"`
}

// Result reports a search campaign's outcome.
type Result struct {
	// BestDisturbance is the highest max-disturbance found on any island.
	BestDisturbance int
	// BestGenome is the genome that achieved it.
	BestGenome Genome
	// BestSeed is the simulation seed BestDisturbance was measured under;
	// replaying BestPattern with it reproduces BestDisturbance exactly.
	BestSeed uint64
	// BestIsland is the island that found it (lowest index on ties).
	BestIsland int
	// BestPattern is BestGenome materialized as a pattern.
	BestPattern *patterns.Pattern
	// History records the global best disturbance after each generation
	// (the maximum of the island bests), for plateau/climb analysis.
	History []int
	// IslandHistories records each island's best-so-far after each
	// generation. Every row is monotone non-decreasing.
	IslandHistories [][]int
	// Evaluations counts attack simulations performed.
	Evaluations int
}

// ProgressSink receives coarse progress counters from a running search, one
// update per completed epoch. internal/obs.Campaign satisfies it
// structurally; a sink is observation-only and cannot perturb determinism.
type ProgressSink interface {
	// AddActivations records n freshly-simulated demand activations.
	AddActivations(n int64)
}

// SearchOptions configures a cancellable, checkpointable, observable search
// campaign. The zero value runs inline at trialrunner.DefaultWorkers() with
// no checkpoint and no metering.
type SearchOptions struct {
	// Workers is the pool size islands are evaluated on within an epoch;
	// 0 selects trialrunner.DefaultWorkers(). Workers never affects the
	// result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the canonical experiment key (configuration + seed,
	// never the worker count). The checkpoint granularity is one epoch.
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives per-epoch counter updates.
	Progress ProgressSink
	// Observer, when non-nil, receives per-epoch lifecycle callbacks.
	Observer trialrunner.Observer
	// Retry bounds re-execution of panicked epochs; a retried epoch replays
	// the identical derived streams, so recovered runs stay bit-identical.
	Retry trialrunner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults into epoch
	// execution and checkpoint I/O (chaos testing). Production runs leave
	// it nil.
	Faults trialrunner.TrialFaults
}

// SearchKey is the canonical checkpoint key of a search campaign:
// everything the evolution and evaluations depend on (configuration, scheme
// name, seed, engine) and nothing else — never the worker count.
func SearchKey(cfg Config, s sim.Scheme, seed uint64) string {
	return fmt.Sprintf("fuzz.search|scheme=%s|params=%+v|acts=%d|trh=%d|policy=%d|gens=%d|islands=%d|pop=%d|migrate=%d|maxpairs=%d|seed=%d%s",
		s.Name, cfg.Attack.Params, cfg.Attack.ACTs, cfg.Attack.TRH, cfg.Attack.Policy,
		cfg.Generations, cfg.Islands, cfg.Population, cfg.MigrateEvery, cfg.MaxPairs,
		seed, engine.KeySuffix(cfg.Engine))
}

// Search runs the island-model search to completion on the calling
// goroutine's context with default options and returns the worst pattern
// found. It panics on an invalid configuration or a panicking evaluation,
// keeping the historical fail-loud contract of the single-threaded climber
// it replaced.
func Search(cfg Config, scheme sim.Scheme, seed uint64) Result {
	res, err := SearchCampaign(context.Background(), cfg, scheme, seed, SearchOptions{})
	trialrunner.MustPanicFree(err)
	return res
}

// SearchCampaign runs the island-model search as a long-running campaign:
// cancellation with graceful drain (the in-flight epoch completes and lands
// in the checkpoint), durable epoch-granularity checkpoint/resume, and
// progress metering. The result is bit-identical at any worker count and
// across any interrupt/resume split.
func SearchCampaign(ctx context.Context, cfg Config, scheme sim.Scheme, seed uint64, opts SearchOptions) (Result, error) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	epochs := cfg.Epochs()
	cp := opts.Checkpoint
	if cp.Enabled() && cp.Key == "" {
		cp.Key = SearchKey(cfg, scheme, seed)
	}

	// Epochs form a dependency chain (epoch e evolves epoch e-1's migrated
	// populations), so the outer runner executes them strictly in order on
	// one worker; the parallelism is across islands inside each epoch.
	// states[e] is epoch e's result, pre-filled from the checkpoint for
	// stored epochs (the checkpoint layer skips them) and written inline by
	// fresh epochs before the next epoch starts.
	states := make([]epochState, epochs)
	have := make([]bool, epochs)
	if cp.Enabled() {
		stored, err := trialrunner.LoadCheckpoint(cp, epochs)
		if err != nil {
			return Result{}, err
		}
		for e, raw := range stored {
			if err := json.Unmarshal(raw, &states[e]); err != nil {
				return Result{}, fmt.Errorf("fuzz: decoding checkpointed epoch %d: %w", e, err)
			}
			have[e] = true
		}
	}

	var onDone func(e int, st epochState) error
	if sink := opts.Progress; sink != nil {
		onDone = func(e int, st epochState) error {
			sink.AddActivations(int64(cfg.evaluationsIn(e)) * int64(cfg.Attack.ACTs))
			return nil
		}
	}
	_, err := trialrunner.MapCheckpointedWorker(ctx, epochs,
		func(_, e int) epochState {
			var in []IslandState
			if e > 0 {
				if !have[e-1] {
					// Unreachable by construction: the single outer worker
					// claims epochs in order and a checkpoint gap re-runs
					// the missing epoch first.
					panic(fmt.Sprintf("fuzz: epoch %d ran before epoch %d completed", e, e-1))
				}
				in = states[e-1].Islands
			}
			st := runEpoch(cfg, scheme, seed, e, in, opts.Workers)
			states[e] = st
			have[e] = true
			return st
		},
		onDone,
		trialrunner.Options{Workers: 1, Observer: opts.Observer, Retry: opts.Retry, Faults: opts.Faults},
		cp)
	if err != nil {
		return Result{}, err
	}
	return cfg.result(states[epochs-1]), nil
}

// evaluationsIn returns how many attack simulations epoch e performs: one
// per fresh genome, plus the initial population on epoch 0.
func (c Config) evaluationsIn(e int) int {
	evals := c.Islands * c.Population * c.generationsIn(e)
	if e == 0 {
		evals += c.Islands * c.Population
	}
	return evals
}

// streamIndex maps (epoch, island) to the derived-RNG sub-stream index that
// drives the island's evolution during that epoch.
func (c Config) streamIndex(e, island int) uint64 {
	return uint64(e)*uint64(c.Islands) + uint64(island)
}

// runEpoch evolves every island for one epoch (in parallel across islands)
// and applies the deterministic ring migration. in is nil for epoch 0
// (islands initialize their populations) and the previous epoch's migrated
// states otherwise.
func runEpoch(cfg Config, scheme sim.Scheme, seed uint64, e int, in []IslandState, workers int) epochState {
	if workers == 0 {
		workers = trialrunner.DefaultWorkers()
	}
	gens := cfg.generationsIn(e)
	out := trialrunner.Map(workers, cfg.Islands, func(i int) IslandState {
		r := rng.Derived(seed, cfg.streamIndex(e, i))
		var st IslandState
		if e == 0 {
			st = initialIsland(cfg, scheme, r)
		} else {
			st = cloneIsland(in[i])
		}
		evolve(cfg, scheme, &st, gens, r)
		return st
	})
	migrate(out)
	return epochState{Islands: out}
}

// initialIsland draws and evaluates a fresh population.
func initialIsland(cfg Config, scheme sim.Scheme, r *rng.Stream) IslandState {
	rows := cfg.Attack.Params.RowsPerBank
	st := IslandState{Members: make([]Member, cfg.Population)}
	for i := range st.Members {
		g := RandomGenome(rows, cfg.MaxPairs, r)
		st.Members[i] = evaluate(cfg, scheme, g, r)
		if i == 0 || st.Members[i].Score > st.Best.Score {
			st.Best = st.Members[i]
		}
	}
	return st
}

// evolve runs gens elitist mutate-evaluate generations on one island,
// appending the best-so-far to the island's history after each.
func evolve(cfg Config, scheme sim.Scheme, st *IslandState, gens int, r *rng.Stream) {
	rows := cfg.Attack.Params.RowsPerBank
	for g := 0; g < gens; g++ {
		for i := range st.Members {
			child := st.Members[i].Genome.Mutate(rows, cfg.MaxPairs, r)
			cand := evaluate(cfg, scheme, child, r)
			if cand.Score >= st.Members[i].Score {
				st.Members[i] = cand
			}
			// Checked every generation regardless of acceptance, so a
			// migrant elite that is never beaten by a child still ratchets
			// the island's best.
			if st.Members[i].Score > st.Best.Score {
				st.Best = st.Members[i]
			}
		}
		st.History = append(st.History, st.Best.Score)
	}
}

// evaluate scores one genome: its pattern is replayed for cfg.Attack.ACTs
// activations under a private simulation seed drawn from the island stream.
func evaluate(cfg Config, scheme sim.Scheme, g Genome, r *rng.Stream) Member {
	seed := r.Uint64()
	res := sim.RunAttackEngine(cfg.Attack, scheme, g.Build(), seed, cfg.Engine)
	return Member{Genome: g, Score: res.MaxDisturbance, Seed: seed}
}

// migrate applies the deterministic ring exchange: island i's best-so-far
// replaces island (i+1) mod N's worst member (lowest score; lowest index on
// ties). All elites are gathered before any replacement, so the exchange is
// simultaneous — a cascade would make island i+2 receive island i's elite in
// one step, which would depend on iteration order.
func migrate(islands []IslandState) {
	n := len(islands)
	if n < 2 {
		return
	}
	elites := make([]Member, n)
	for i := range islands {
		elites[i] = islands[i].Best
	}
	for i := range islands {
		dst := &islands[(i+1)%n]
		worst := 0
		for j := 1; j < len(dst.Members); j++ {
			if dst.Members[j].Score < dst.Members[worst].Score {
				worst = j
			}
		}
		dst.Members[worst] = elites[i]
	}
}

// cloneIsland deep-copies an island state so an epoch never aliases its
// input (which may be the checkpoint-restored previous epoch, reused on a
// retried attempt).
func cloneIsland(in IslandState) IslandState {
	out := IslandState{
		Members: make([]Member, len(in.Members)),
		Best:    in.Best,
		History: append([]int(nil), in.History...),
	}
	for i, m := range in.Members {
		out.Members[i] = Member{Genome: m.Genome.clone(), Score: m.Score, Seed: m.Seed}
	}
	out.Best.Genome = in.Best.Genome.clone()
	return out
}

// result assembles the campaign result from the final epoch's states.
func (c Config) result(final epochState) Result {
	res := Result{
		History:         make([]int, c.Generations),
		IslandHistories: make([][]int, c.Islands),
		Evaluations:     c.Islands * c.Population * (c.Generations + 1),
	}
	for i, st := range final.Islands {
		res.IslandHistories[i] = st.History
		for g, v := range st.History {
			if v > res.History[g] {
				res.History[g] = v
			}
		}
		if i == 0 || st.Best.Score > res.BestDisturbance {
			res.BestDisturbance = st.Best.Score
			res.BestGenome = st.Best.Genome
			res.BestSeed = st.Best.Seed
			res.BestIsland = i
		}
	}
	res.BestPattern = res.BestGenome.Build()
	return res
}
