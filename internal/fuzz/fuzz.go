// Package fuzz implements guided adversarial search for worst-case attack
// patterns — the methodology behind Blacksmith (and behind the paper's
// Section VII-F evaluation) turned into a reusable harness: mutate pattern
// parameters, keep what increases the tracker's maximum disturbance, repeat.
//
// Against counter-driven trackers the search climbs quickly (their worst
// case is pattern-shaped); against PrIDE it plateaus at the bounded
// disturbance the analytic model predicts, because no pattern parameter can
// influence PrIDE's policy decisions. That contrast is the paper's central
// claim, demonstrated by search rather than by enumeration.
package fuzz

import (
	"fmt"

	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/sim"
)

// Genome is a mutable encoding of a Blacksmith-family attack pattern.
type Genome struct {
	Base        int
	Pairs       int
	Period      int
	Frequencies []int
	Phases      []int
	Amplitudes  []int
	DecoyRows   []int
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Attack is the per-evaluation trial configuration.
	Attack sim.AttackConfig
	// Rounds is the number of mutate-evaluate iterations.
	Rounds int
	// Population is the number of genomes kept between rounds.
	Population int
	// MaxPairs bounds the genome size.
	MaxPairs int
}

func (c Config) validate() error {
	switch {
	case c.Rounds < 1:
		return fmt.Errorf("fuzz: Rounds must be >= 1, got %d", c.Rounds)
	case c.Population < 1:
		return fmt.Errorf("fuzz: Population must be >= 1, got %d", c.Population)
	case c.MaxPairs < 1:
		return fmt.Errorf("fuzz: MaxPairs must be >= 1, got %d", c.MaxPairs)
	case c.Attack.ACTs < 1:
		return fmt.Errorf("fuzz: Attack.ACTs must be >= 1, got %d", c.Attack.ACTs)
	}
	return nil
}

// Result reports a campaign's outcome.
type Result struct {
	// BestDisturbance is the highest max-disturbance found.
	BestDisturbance int
	// BestPattern is the pattern that achieved it.
	BestPattern *patterns.Pattern
	// History records the best disturbance after each round, for
	// plateau/climb analysis.
	History []int
	// Evaluations counts attack simulations performed.
	Evaluations int
}

// Search runs a (mu+lambda)-style hill climb against the scheme and returns
// the worst pattern found.
func Search(cfg Config, scheme sim.Scheme, seed uint64) Result {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed)
	rows := cfg.Attack.Params.RowsPerBank

	type candidate struct {
		g     Genome
		score int
	}

	evaluate := func(g Genome) (int, *patterns.Pattern) {
		pat := g.Build()
		res := sim.RunAttack(cfg.Attack, scheme, pat, r.Uint64())
		return res.MaxDisturbance, pat
	}

	pop := make([]candidate, cfg.Population)
	evals := 0
	for i := range pop {
		pop[i].g = RandomGenome(rows, cfg.MaxPairs, r)
		pop[i].score, _ = evaluate(pop[i].g)
		evals++
	}

	best := pop[0]
	for _, c := range pop[1:] {
		if c.score > best.score {
			best = c
		}
	}

	res := Result{}
	for round := 0; round < cfg.Rounds; round++ {
		for i := range pop {
			child := pop[i].g.Mutate(rows, cfg.MaxPairs, r)
			score, _ := evaluate(child)
			evals++
			if score >= pop[i].score {
				pop[i] = candidate{g: child, score: score}
			}
			if pop[i].score > best.score {
				best = pop[i]
			}
		}
		res.History = append(res.History, best.score)
	}
	_, bestPat := evaluate(best.g)
	evals++
	res.BestDisturbance = best.score
	res.BestPattern = bestPat
	res.Evaluations = evals
	return res
}

// RandomGenome draws a fresh genome within the bank's rows.
func RandomGenome(rows, maxPairs int, r *rng.Stream) Genome {
	pairs := 1 + r.Intn(maxPairs)
	g := Genome{
		Base:   rows/8 + r.Intn(rows/2),
		Pairs:  pairs,
		Period: 8 << r.Intn(3),
	}
	for i := 0; i < pairs; i++ {
		g.Frequencies = append(g.Frequencies, 1<<(1+r.Intn(4)))
		g.Phases = append(g.Phases, r.Intn(8))
		g.Amplitudes = append(g.Amplitudes, 1+r.Intn(4))
	}
	decoys := r.Intn(8)
	for i := 0; i < decoys; i++ {
		g.DecoyRows = append(g.DecoyRows, rows/16+r.Intn(rows/2))
	}
	return g
}

// Mutate returns a tweaked copy: one parameter class is perturbed.
func (g Genome) Mutate(rows, maxPairs int, r *rng.Stream) Genome {
	out := g.clone()
	switch r.Intn(6) {
	case 0: // shift the aggressor block
		out.Base = rows/8 + r.Intn(rows/2)
	case 1: // change one frequency
		i := r.Intn(out.Pairs)
		out.Frequencies[i] = 1 << (1 + r.Intn(4))
	case 2: // change one phase
		i := r.Intn(out.Pairs)
		out.Phases[i] = r.Intn(out.Period)
	case 3: // change one amplitude
		i := r.Intn(out.Pairs)
		out.Amplitudes[i] = 1 + r.Intn(4)
	case 4: // add or drop a pair
		if out.Pairs < maxPairs && r.Bernoulli(0.5) {
			out.Pairs++
			out.Frequencies = append(out.Frequencies, 1<<(1+r.Intn(4)))
			out.Phases = append(out.Phases, r.Intn(8))
			out.Amplitudes = append(out.Amplitudes, 1+r.Intn(4))
		} else if out.Pairs > 1 {
			out.Pairs--
			out.Frequencies = out.Frequencies[:out.Pairs]
			out.Phases = out.Phases[:out.Pairs]
			out.Amplitudes = out.Amplitudes[:out.Pairs]
		}
	default: // rework decoys
		out.DecoyRows = nil
		for i, n := 0, r.Intn(8); i < n; i++ {
			out.DecoyRows = append(out.DecoyRows, rows/16+r.Intn(rows/2))
		}
	}
	return out
}

func (g Genome) clone() Genome {
	out := g
	out.Frequencies = append([]int(nil), g.Frequencies...)
	out.Phases = append([]int(nil), g.Phases...)
	out.Amplitudes = append([]int(nil), g.Amplitudes...)
	out.DecoyRows = append([]int(nil), g.DecoyRows...)
	return out
}

// Build materializes the genome as a pattern.
func (g Genome) Build() *patterns.Pattern {
	return patterns.Blacksmith(patterns.BlacksmithConfig{
		Base:        g.Base,
		Pairs:       g.Pairs,
		Period:      g.Period,
		Frequencies: g.Frequencies,
		Phases:      g.Phases,
		Amplitudes:  g.Amplitudes,
		DecoyRows:   g.DecoyRows,
	})
}
