package fuzz

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// searchSink is a ProgressSink that can cancel a context after a fixed
// number of completed epochs — the test stand-in for a SIGINT landing
// mid-search.
type searchSink struct {
	mu          sync.Mutex
	cancel      context.CancelFunc
	cancelAfter int
	epochs      int
	activations int64
}

func (s *searchSink) AddActivations(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochs++
	s.activations += n
	if s.cancel != nil && s.epochs == s.cancelAfter {
		s.cancel()
	}
}

func TestSearchCampaignIsWorkerInvariant(t *testing.T) {
	cfg := fuzzConfig()
	want := Search(cfg, sim.PrIDEScheme(), 11) // default workers
	for _, workers := range []int{1, 2, 5} {
		got, err := SearchCampaign(context.Background(), cfg, sim.PrIDEScheme(), 11,
			SearchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result differs from default-worker run:\n%+v\nvs\n%+v",
				workers, got, want)
		}
	}
}

func TestSearchCampaignMeters(t *testing.T) {
	cfg := fuzzConfig()
	sink := &searchSink{}
	_, err := SearchCampaign(context.Background(), cfg, sim.PrIDEScheme(), 11,
		SearchOptions{Workers: 2, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if sink.epochs != cfg.Epochs() {
		t.Fatalf("progress updates = %d, want one per epoch (%d)", sink.epochs, cfg.Epochs())
	}
	wantActs := int64(cfg.Islands*cfg.Population*(cfg.Generations+1)) * int64(cfg.Attack.ACTs)
	if sink.activations != wantActs {
		t.Fatalf("metered activations = %d, want %d", sink.activations, wantActs)
	}
}

func TestSearchCampaignResumeIsBitIdentical(t *testing.T) {
	cfg := fuzzConfig()
	const seed = 23
	want := Search(cfg, sim.PrIDEScheme(), seed)

	cancelPoints := []int{1, 2}
	if testing.Short() {
		cancelPoints = []int{1}
	}
	for _, cancelAfter := range cancelPoints {
		for _, workers := range []int{1, 4} {
			path := filepath.Join(t.TempDir(), "search.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			sink := &searchSink{cancel: cancel, cancelAfter: cancelAfter}
			_, err := SearchCampaign(ctx, cfg, sim.PrIDEScheme(), seed, SearchOptions{
				Workers:    workers,
				Checkpoint: trialrunner.Checkpoint{Path: path},
				Progress:   sink,
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelAfter=%d workers=%d: err = %v, want Canceled", cancelAfter, workers, err)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: no checkpoint after interrupt: %v", cancelAfter, workers, err)
			}

			got, err := SearchCampaign(context.Background(), cfg, sim.PrIDEScheme(), seed, SearchOptions{
				Workers:    workers%3 + 1,
				Checkpoint: trialrunner.Checkpoint{Path: path},
			})
			if err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: resume failed: %v", cancelAfter, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cancelAfter=%d workers=%d: resumed result differs from uninterrupted:\n%+v\nvs\n%+v",
					cancelAfter, workers, got, want)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cancelAfter=%d workers=%d: completed search left its checkpoint behind", cancelAfter, workers)
			}
		}
	}
}

func TestSearchCampaignRejectsStaleCheckpoint(t *testing.T) {
	cfg := fuzzConfig()
	path := filepath.Join(t.TempDir(), "search.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	sink := &searchSink{cancel: cancel, cancelAfter: 1}
	_, err := SearchCampaign(ctx, cfg, sim.PrIDEScheme(), 5, SearchOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: path},
		Progress:   sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}

	// Resuming under a different seed is a different experiment.
	_, err = SearchCampaign(context.Background(), cfg, sim.PrIDEScheme(), 6, SearchOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: path},
	})
	if !errors.Is(err, trialrunner.ErrStaleCheckpoint) {
		t.Fatalf("resume under different seed: err = %v, want ErrStaleCheckpoint", err)
	}

	// ForceFresh archives the stale file and completes.
	got, err := SearchCampaign(context.Background(), cfg, sim.PrIDEScheme(), 6, SearchOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: path, ForceFresh: true},
	})
	if err != nil {
		t.Fatalf("forced fresh run failed: %v", err)
	}
	if !reflect.DeepEqual(got, Search(cfg, sim.PrIDEScheme(), 6)) {
		t.Fatal("forced fresh run differs from a clean run")
	}
	if _, err := os.Stat(path + ".stale"); err != nil {
		t.Fatalf("stale checkpoint was not archived: %v", err)
	}
}
