package fuzz

import (
	"pride/internal/patterns"
	"pride/internal/rng"
)

// Genome is a mutable encoding of a Blacksmith-family attack pattern. All
// fields are exported plain integers so a genome round-trips exactly through
// encoding/json — the property the island search's checkpoint layer and the
// corpus sidecars rely on.
type Genome struct {
	Base        int   `json:"base"`
	Pairs       int   `json:"pairs"`
	Period      int   `json:"period"`
	Frequencies []int `json:"frequencies"`
	Phases      []int `json:"phases"`
	Amplitudes  []int `json:"amplitudes"`
	DecoyRows   []int `json:"decoy_rows,omitempty"`
}

// RandomGenome draws a fresh genome within the bank's rows.
func RandomGenome(rows, maxPairs int, r *rng.Stream) Genome {
	pairs := 1 + r.Intn(maxPairs)
	g := Genome{
		Base:   rows/8 + r.Intn(rows/2),
		Pairs:  pairs,
		Period: 8 << r.Intn(3),
	}
	for i := 0; i < pairs; i++ {
		g.Frequencies = append(g.Frequencies, 1<<(1+r.Intn(4)))
		g.Phases = append(g.Phases, r.Intn(8))
		g.Amplitudes = append(g.Amplitudes, 1+r.Intn(4))
	}
	decoys := r.Intn(8)
	for i := 0; i < decoys; i++ {
		g.DecoyRows = append(g.DecoyRows, rows/16+r.Intn(rows/2))
	}
	return g
}

// Mutate returns a tweaked copy: one parameter class is perturbed.
func (g Genome) Mutate(rows, maxPairs int, r *rng.Stream) Genome {
	out := g.clone()
	switch r.Intn(6) {
	case 0: // shift the aggressor block
		out.Base = rows/8 + r.Intn(rows/2)
	case 1: // change one frequency
		i := r.Intn(out.Pairs)
		out.Frequencies[i] = 1 << (1 + r.Intn(4))
	case 2: // change one phase
		i := r.Intn(out.Pairs)
		out.Phases[i] = r.Intn(out.Period)
	case 3: // change one amplitude
		i := r.Intn(out.Pairs)
		out.Amplitudes[i] = 1 + r.Intn(4)
	case 4: // add or drop a pair
		if out.Pairs < maxPairs && r.Bernoulli(0.5) {
			out.Pairs++
			out.Frequencies = append(out.Frequencies, 1<<(1+r.Intn(4)))
			out.Phases = append(out.Phases, r.Intn(8))
			out.Amplitudes = append(out.Amplitudes, 1+r.Intn(4))
		} else if out.Pairs > 1 {
			out.Pairs--
			out.Frequencies = out.Frequencies[:out.Pairs]
			out.Phases = out.Phases[:out.Pairs]
			out.Amplitudes = out.Amplitudes[:out.Pairs]
		}
	default: // rework decoys
		out.DecoyRows = nil
		for i, n := 0, r.Intn(8); i < n; i++ {
			out.DecoyRows = append(out.DecoyRows, rows/16+r.Intn(rows/2))
		}
	}
	return out
}

func (g Genome) clone() Genome {
	out := g
	out.Frequencies = append([]int(nil), g.Frequencies...)
	out.Phases = append([]int(nil), g.Phases...)
	out.Amplitudes = append([]int(nil), g.Amplitudes...)
	out.DecoyRows = append([]int(nil), g.DecoyRows...)
	return out
}

// Build materializes the genome as a pattern.
func (g Genome) Build() *patterns.Pattern {
	return patterns.Blacksmith(patterns.BlacksmithConfig{
		Base:        g.Base,
		Pairs:       g.Pairs,
		Period:      g.Period,
		Frequencies: g.Frequencies,
		Phases:      g.Phases,
		Amplitudes:  g.Amplitudes,
		DecoyRows:   g.DecoyRows,
	})
}
