package fuzz

import (
	"testing"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/rng"
	"pride/internal/sim"
)

func fuzzParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	return p
}

func fuzzConfig() Config {
	return Config{
		Attack:     sim.AttackConfig{Params: fuzzParams(), ACTs: 60_000},
		Rounds:     6,
		Population: 4,
		MaxPairs:   8,
	}
}

func TestSearchReturnsValidResult(t *testing.T) {
	res := Search(fuzzConfig(), sim.PrIDEScheme(), 1)
	if res.BestPattern == nil || res.BestPattern.Len() == 0 {
		t.Fatal("no best pattern returned")
	}
	if res.BestDisturbance <= 0 {
		t.Fatal("non-positive best disturbance")
	}
	if len(res.History) != 6 {
		t.Fatalf("history length %d, want 6", len(res.History))
	}
	if res.Evaluations < 4*7 {
		t.Fatalf("evaluations = %d, suspiciously few", res.Evaluations)
	}
	// History is non-decreasing (elitist search).
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best score regressed: %v", res.History)
		}
	}
}

func TestPrIDEResistsGuidedSearch(t *testing.T) {
	// The headline: even a guided adversary cannot push PrIDE past its
	// analytic TRH*. (The paper evaluates 500 random patterns; this is
	// the stronger, search-based statement.)
	res := Search(fuzzConfig(), sim.PrIDEScheme(), 2)
	bound := analytic.EvaluateScheme(analytic.SchemePrIDE, fuzzParams(), analytic.DefaultTargetTTFYears)
	if float64(res.BestDisturbance) > bound.TRHStar {
		t.Fatalf("guided search pushed PrIDE to %d, above TRH* %.0f",
			res.BestDisturbance, bound.TRHStar)
	}
}

func TestSearchClimbsAgainstPRoHIT(t *testing.T) {
	// Against a pattern-dependent tracker the search must find patterns
	// substantially worse than PrIDE's plateau.
	cfg := fuzzConfig()
	var prohit sim.Scheme
	for _, s := range sim.Fig15Schemes() {
		if s.Name == "PRoHIT" {
			prohit = s
		}
	}
	resP := Search(cfg, prohit, 3)
	resPride := Search(cfg, sim.PrIDEScheme(), 3)
	if resP.BestDisturbance <= resPride.BestDisturbance {
		t.Fatalf("search against PRoHIT (%d) found nothing worse than PrIDE (%d)",
			resP.BestDisturbance, resPride.BestDisturbance)
	}
}

func TestGenomeMutationStaysValid(t *testing.T) {
	r := rng.New(4)
	g := RandomGenome(4096, 8, r)
	for i := 0; i < 300; i++ {
		g = g.Mutate(4096, 8, r)
		if g.Pairs < 1 || g.Pairs > 8 {
			t.Fatalf("pairs out of range: %d", g.Pairs)
		}
		if len(g.Frequencies) != g.Pairs || len(g.Phases) != g.Pairs || len(g.Amplitudes) != g.Pairs {
			t.Fatalf("parameter arrays out of sync with pairs: %+v", g)
		}
		pat := g.Build() // must not panic
		for _, row := range pat.Sequence {
			if row < 0 || row >= 4096 {
				t.Fatalf("mutated genome accesses row %d", row)
			}
		}
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	r := rng.New(5)
	parent := RandomGenome(4096, 8, r)
	wantFreq := append([]int(nil), parent.Frequencies...)
	for i := 0; i < 50; i++ {
		parent.Mutate(4096, 8, r)
	}
	for i := range wantFreq {
		if parent.Frequencies[i] != wantFreq[i] {
			t.Fatal("Mutate modified its receiver")
		}
	}
}

func TestSearchPanicsOnBadConfig(t *testing.T) {
	cfg := fuzzConfig()
	cfg.Rounds = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Search(cfg, sim.PrIDEScheme(), 1)
}
