package fuzz

import (
	"testing"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/rng"
	"pride/internal/sim"
)

func fuzzParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	return p
}

func fuzzConfig() Config {
	return Config{
		Attack:       sim.AttackConfig{Params: fuzzParams(), ACTs: 60_000},
		Generations:  6,
		Islands:      3,
		Population:   4,
		MigrateEvery: 2,
		MaxPairs:     8,
		Engine:       engine.Event,
	}
}

func TestSearchReturnsValidResult(t *testing.T) {
	cfg := fuzzConfig()
	res := Search(cfg, sim.PrIDEScheme(), 1)
	if res.BestPattern == nil || res.BestPattern.Len() == 0 {
		t.Fatal("no best pattern returned")
	}
	if res.BestDisturbance <= 0 {
		t.Fatal("non-positive best disturbance")
	}
	if len(res.History) != cfg.Generations {
		t.Fatalf("history length %d, want %d", len(res.History), cfg.Generations)
	}
	if len(res.IslandHistories) != cfg.Islands {
		t.Fatalf("island histories %d, want %d", len(res.IslandHistories), cfg.Islands)
	}
	wantEvals := cfg.Islands * cfg.Population * (cfg.Generations + 1)
	if res.Evaluations != wantEvals {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, wantEvals)
	}
	if res.BestIsland < 0 || res.BestIsland >= cfg.Islands {
		t.Fatalf("best island %d out of range", res.BestIsland)
	}
	// Per-island and global histories are non-decreasing (elitist search).
	for i, h := range res.IslandHistories {
		if len(h) != cfg.Generations {
			t.Fatalf("island %d history length %d, want %d", i, len(h), cfg.Generations)
		}
		for g := 1; g < len(h); g++ {
			if h[g] < h[g-1] {
				t.Fatalf("island %d best regressed: %v", i, h)
			}
		}
	}
	for g := 1; g < len(res.History); g++ {
		if res.History[g] < res.History[g-1] {
			t.Fatalf("global best regressed: %v", res.History)
		}
	}
	// The global best is the final global history entry and is reproducible
	// from (BestGenome, BestSeed) — the contract the corpus relies on.
	if res.History[len(res.History)-1] != res.BestDisturbance {
		t.Fatalf("history tail %d != best %d", res.History[len(res.History)-1], res.BestDisturbance)
	}
	replay := sim.RunAttackEngine(cfg.Attack, sim.PrIDEScheme(), res.BestGenome.Build(), res.BestSeed, cfg.Engine)
	if replay.MaxDisturbance != res.BestDisturbance {
		t.Fatalf("replaying best genome under its seed gave %d, search reported %d",
			replay.MaxDisturbance, res.BestDisturbance)
	}
}

func TestPrIDEResistsGuidedSearch(t *testing.T) {
	// The headline: even a guided adversary cannot push PrIDE past its
	// analytic TRH*. (The paper evaluates 500 random patterns; this is
	// the stronger, search-based statement.)
	res := Search(fuzzConfig(), sim.PrIDEScheme(), 2)
	bound := analytic.EvaluateScheme(analytic.SchemePrIDE, fuzzParams(), analytic.DefaultTargetTTFYears)
	if float64(res.BestDisturbance) > bound.TRHStar {
		t.Fatalf("guided search pushed PrIDE to %d, above TRH* %.0f",
			res.BestDisturbance, bound.TRHStar)
	}
}

func TestSearchClimbsAgainstPRoHIT(t *testing.T) {
	// Against a pattern-dependent tracker the search must find patterns
	// substantially worse than PrIDE's plateau.
	cfg := fuzzConfig()
	prohit, err := sim.SchemeByName("PRoHIT")
	if err != nil {
		t.Fatal(err)
	}
	resP := Search(cfg, prohit, 3)
	resPride := Search(cfg, sim.PrIDEScheme(), 3)
	if resP.BestDisturbance <= resPride.BestDisturbance {
		t.Fatalf("search against PRoHIT (%d) found nothing worse than PrIDE (%d)",
			resP.BestDisturbance, resPride.BestDisturbance)
	}
}

func TestSearchKeyCoversEvolutionInputs(t *testing.T) {
	// Everything the evolution depends on must be in the checkpoint key —
	// including MigrateEvery, because epoch boundaries define which derived
	// stream drives which generation. The worker count must NOT be in it.
	base := fuzzConfig()
	key := func(mutate func(*Config)) string {
		cfg := base
		mutate(&cfg)
		return SearchKey(cfg, sim.PrIDEScheme(), 1)
	}
	ref := key(func(*Config) {})
	mutations := map[string]func(*Config){
		"generations": func(c *Config) { c.Generations++ },
		"islands":     func(c *Config) { c.Islands++ },
		"population":  func(c *Config) { c.Population++ },
		"migrate":     func(c *Config) { c.MigrateEvery++ },
		"maxpairs":    func(c *Config) { c.MaxPairs++ },
		"acts":        func(c *Config) { c.Attack.ACTs++ },
		"engine":      func(c *Config) { c.Engine = engine.Exact },
	}
	for name, m := range mutations {
		if key(m) == ref {
			t.Errorf("changing %s did not change the checkpoint key", name)
		}
	}
	if SearchKey(base, sim.PrIDEScheme(), 2) == ref {
		t.Error("changing the seed did not change the checkpoint key")
	}
	if SearchKey(base, sim.TRRScheme(), 1) == ref {
		t.Error("changing the scheme did not change the checkpoint key")
	}
}

func TestEpochsPartition(t *testing.T) {
	cases := []struct{ gens, every, epochs int }{
		{6, 2, 3}, {6, 4, 2}, {1, 1, 1}, {7, 3, 3}, {5, 10, 1},
	}
	for _, c := range cases {
		cfg := Config{Generations: c.gens, MigrateEvery: c.every}
		if got := cfg.Epochs(); got != c.epochs {
			t.Fatalf("Epochs(%d,%d) = %d, want %d", c.gens, c.every, got, c.epochs)
		}
		total := 0
		for e := 0; e < cfg.Epochs(); e++ {
			g := cfg.generationsIn(e)
			if g < 1 || g > c.every {
				t.Fatalf("generationsIn(%d) = %d out of range for %+v", e, g, c)
			}
			total += g
		}
		if total != c.gens {
			t.Fatalf("epochs of %+v cover %d generations, want %d", c, total, c.gens)
		}
	}
}

func TestMigrateRingReplacesWorst(t *testing.T) {
	mk := func(scores ...int) IslandState {
		st := IslandState{}
		for _, s := range scores {
			st.Members = append(st.Members, Member{Score: s})
			if s > st.Best.Score {
				st.Best = Member{Score: s}
			}
		}
		return st
	}
	islands := []IslandState{mk(10, 2, 5), mk(7, 1, 3), mk(4, 9, 6)}
	migrate(islands)
	// Island 1's worst (1 at index 1) replaced by island 0's best (10), etc.
	if islands[1].Members[1].Score != 10 {
		t.Fatalf("island 1 did not receive island 0's elite: %+v", islands[1].Members)
	}
	if islands[2].Members[0].Score != 7 {
		t.Fatalf("island 2 did not receive island 1's elite: %+v", islands[2].Members)
	}
	if islands[0].Members[1].Score != 9 {
		t.Fatalf("island 0 did not receive island 2's elite: %+v", islands[0].Members)
	}
	// Simultaneous, not cascading: island 2 got island 1's original best (7),
	// not the migrated 10.
	for _, m := range islands[2].Members {
		if m.Score == 10 {
			t.Fatalf("migration cascaded: %+v", islands[2].Members)
		}
	}
}

func TestGenomeMutationStaysValid(t *testing.T) {
	r := rng.New(4)
	g := RandomGenome(4096, 8, r)
	for i := 0; i < 300; i++ {
		g = g.Mutate(4096, 8, r)
		if g.Pairs < 1 || g.Pairs > 8 {
			t.Fatalf("pairs out of range: %d", g.Pairs)
		}
		if len(g.Frequencies) != g.Pairs || len(g.Phases) != g.Pairs || len(g.Amplitudes) != g.Pairs {
			t.Fatalf("parameter arrays out of sync with pairs: %+v", g)
		}
		pat := g.Build() // must not panic
		for _, row := range pat.Sequence {
			if row < 0 || row >= 4096 {
				t.Fatalf("mutated genome accesses row %d", row)
			}
		}
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	r := rng.New(5)
	parent := RandomGenome(4096, 8, r)
	wantFreq := append([]int(nil), parent.Frequencies...)
	for i := 0; i < 50; i++ {
		parent.Mutate(4096, 8, r)
	}
	for i := range wantFreq {
		if parent.Frequencies[i] != wantFreq[i] {
			t.Fatal("Mutate modified its receiver")
		}
	}
}

func TestSearchPanicsOnBadConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.Islands = 0 },
		func(c *Config) { c.Population = 0 },
		func(c *Config) { c.MigrateEvery = 0 },
		func(c *Config) { c.MaxPairs = 0 },
		func(c *Config) { c.Attack.ACTs = 0 },
	}
	for i, breakIt := range bad {
		cfg := fuzzConfig()
		breakIt(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			Search(cfg, sim.PrIDEScheme(), 1)
		}()
	}
}
