package addrmap

import (
	"testing"
	"testing/quick"

	"pride/internal/dram"
)

func TestDecodeEncodeRoundTrip(t *testing.T) {
	m := DefaultDDR5()
	check := func(addr uint64) bool {
		addr &= (1 << 35) - 1 // 32GB space
		return m.Encode(m.Decode(addr)) == addr
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFieldRanges(t *testing.T) {
	m := DefaultDDR5()
	for addr := uint64(0); addr < 1<<22; addr += 7919 {
		c := m.Decode(addr)
		if c.Bank < 0 || c.Bank >= 32 {
			t.Fatalf("bank %d out of range", c.Bank)
		}
		if c.Row < 0 || c.Row >= 128*1024 {
			t.Fatalf("row %d out of range", c.Row)
		}
		if c.Column < 0 || c.Column >= 1<<13 {
			t.Fatalf("column %d out of range", c.Column)
		}
	}
}

func TestXORHashSpreadsRowConflicts(t *testing.T) {
	// Sequential rows in the same nominal bank position map to different
	// physical banks under the XOR hash.
	m := DefaultDDR5()
	banks := map[int]bool{}
	for row := 0; row < 32; row++ {
		addr := m.Encode(Coord{Row: row, Bank: 0})
		banks[m.Decode(addr).Bank] = true
		// Encode already pre-compensates the hash, so re-decoding gives
		// bank 0 back; what we check is the raw interleave:
	}
	raw := Mapping{ColumnBits: 13, BankBits: 5, RowBits: 17, XORBankHash: true}
	spread := map[int]bool{}
	for row := 0; row < 32; row++ {
		// Same low address bits, varying row: the decoded bank must vary.
		addr := uint64(row) << uint(raw.ColumnBits+raw.BankBits)
		spread[raw.Decode(addr).Bank] = true
	}
	if len(spread) != 32 {
		t.Fatalf("XOR hash spread %d banks, want 32", len(spread))
	}
	_ = banks
}

func TestMappingValidate(t *testing.T) {
	bad := []Mapping{
		{RowBits: 0},
		{RowBits: 17, ColumnBits: -1},
		{RowBits: 40, ColumnBits: 20, BankBits: 10},  // > 62 bits
		{RowBits: 2, BankBits: 5, XORBankHash: true}, // hash needs rows
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mapping %d accepted: %+v", i, m)
		}
	}
}

func TestScramblerBijection(t *testing.T) {
	for _, rows := range []int{1024, 4096, 100, 997} {
		s := NewRowScrambler(rows, 0xDEADBEEF)
		seen := make([]bool, rows)
		for r := 0; r < rows; r++ {
			p := s.Scramble(r)
			if p < 0 || p >= rows {
				t.Fatalf("rows=%d: scramble(%d) = %d out of range", rows, r, p)
			}
			if seen[p] {
				t.Fatalf("rows=%d: collision at %d", rows, p)
			}
			seen[p] = true
			if got := s.Unscramble(p); got != r {
				t.Fatalf("rows=%d: unscramble(scramble(%d)) = %d", rows, r, got)
			}
		}
	}
}

func TestScramblerDestroysAdjacency(t *testing.T) {
	s := NewRowScrambler(4096, 12345)
	adjacentPreserved := 0
	for r := 1; r < 1000; r++ {
		d := s.Scramble(r) - s.Scramble(r-1)
		if d == 1 || d == -1 {
			adjacentPreserved++
		}
	}
	if adjacentPreserved > 5 {
		t.Fatalf("scrambler preserved adjacency for %d of 999 pairs", adjacentPreserved)
	}
}

func TestScramblerKeyed(t *testing.T) {
	a := NewRowScrambler(1024, 1)
	b := NewRowScrambler(1024, 99991)
	same := 0
	for r := 0; r < 1024; r++ {
		if a.Scramble(r) == b.Scramble(r) {
			same++
		}
	}
	if same > 64 {
		t.Fatalf("different keys agreed on %d of 1024 rows", same)
	}
}

// TestMCSideAdjacencyFailure is the Section II-D argument as an experiment:
// an attacker who knows the internal geometry hammers internally adjacent
// aggressors; an MC-side defense that refreshes EXTERNALLY adjacent rows
// protects the wrong cells and the victim flips, while an in-DRAM defense
// refreshing true internal neighbours protects it.
func TestMCSideAdjacencyFailure(t *testing.T) {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	const trh = 200

	s := NewRowScrambler(p.RowsPerBank, 777)
	// The attacker picks the internal victim location and derives the
	// external addresses of the internally adjacent aggressors.
	victimInternal := 2000
	aggLoInternal, aggHiInternal := victimInternal-1, victimInternal+1
	aggLoExternal := s.Unscramble(aggLoInternal)
	aggHiExternal := s.Unscramble(aggHiInternal)

	run := func(inDRAM bool) int {
		bank := dram.MustNewBank(p, trh)
		for i := 0; i < 3*trh; i++ {
			// Double-sided hammer in internal space.
			bank.Activate(aggLoInternal)
			bank.Activate(aggHiInternal)
			// Defense: every 16 hammers, mitigate one aggressor.
			if i%16 == 15 {
				agg := aggLoExternal
				if i%32 == 31 {
					agg = aggHiExternal
				}
				if inDRAM {
					// The device knows the geometry: refresh the true
					// internal neighbours.
					bank.Mitigate(s.Scramble(agg), 1)
				} else {
					// The MC guesses external adjacency: refresh the
					// internal locations of external agg±1 — wrong rows.
					lo, hi := s.ExternalGuessNeighbors(agg)
					if lo >= 0 && lo < p.RowsPerBank {
						bank.Mitigate(lo, 1)
					}
					if hi >= 0 && hi < p.RowsPerBank {
						bank.Mitigate(hi, 1)
					}
				}
			}
		}
		return len(bank.Flips())
	}

	if flips := run(false); flips == 0 {
		t.Fatal("MC-side defense with wrong adjacency should have failed")
	}
	if flips := run(true); flips != 0 {
		t.Fatalf("in-DRAM defense with true adjacency flipped %d rows", flips)
	}
}

func TestCompiledMatchesMapping(t *testing.T) {
	mappings := []Mapping{
		DefaultDDR5(),
		{ColumnBits: 13, BankBits: 5, RowBits: 17, RankBits: 1, ChannelBits: 2, XORBankHash: true},
		{ColumnBits: 10, BankBits: 3, RowBits: 12, RankBits: 2, ChannelBits: 3},
		{ColumnBits: 0, BankBits: 2, RowBits: 8, RankBits: 0, ChannelBits: 1, XORBankHash: true},
	}
	for _, m := range mappings {
		c, err := m.Compile()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		bits := uint(c.AddrBits())
		for i := 0; i < 2000; i++ {
			addr := (uint64(i) * 0x9E3779B97F4A7C15) & ((1 << bits) - 1)
			got, want := c.Decode(addr), m.Decode(addr)
			if got != want {
				t.Fatalf("%v: Decode(%#x) = %+v, mapping path %+v", m, addr, got, want)
			}
			if enc := c.Encode(got); enc != addr {
				t.Fatalf("%v: Encode(Decode(%#x)) = %#x", m, addr, enc)
			}
			if enc := m.Encode(got); enc != addr {
				t.Fatalf("%v: mapping Encode disagrees at %#x", m, addr)
			}
			ch, rk, bk, row := c.Route(addr)
			if ch != want.Channel || rk != want.Rank || bk != want.Bank || row != want.Row {
				t.Fatalf("%v: Route(%#x) = (%d,%d,%d,%d), Decode gives %+v", m, addr, ch, rk, bk, row, want)
			}
		}
		if !c.InRange((1<<bits)-1) || (bits < 64 && c.InRange(1<<bits)) {
			t.Fatalf("%v: InRange boundary wrong at %d bits", m, bits)
		}
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := (Mapping{RowBits: 2, BankBits: 5, XORBankHash: true}).Compile(); err == nil {
		t.Fatal("Compile accepted an invalid mapping")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic on an invalid mapping")
		}
	}()
	Mapping{RowBits: 0}.MustCompile()
}

func TestCompiledGeometry(t *testing.T) {
	m := Mapping{ColumnBits: 6, BankBits: 3, RowBits: 10, RankBits: 1, ChannelBits: 2}
	c := m.MustCompile()
	if c.Channels() != 4 || c.Ranks() != 2 || c.Banks() != 8 || c.Rows() != 1024 {
		t.Fatalf("geometry: ch=%d rk=%d bk=%d rows=%d", c.Channels(), c.Ranks(), c.Banks(), c.Rows())
	}
	if c.Mapping() != m {
		t.Fatalf("Mapping() = %+v", c.Mapping())
	}
	if c.AddrBits() != 22 {
		t.Fatalf("AddrBits() = %d", c.AddrBits())
	}
}

func TestCompiledEncodePanicsOutOfRange(t *testing.T) {
	c := Mapping{ColumnBits: 2, BankBits: 2, RowBits: 4}.MustCompile()
	for name, co := range map[string]Coord{
		"row":      {Row: 16},
		"bank":     {Bank: 4},
		"column":   {Column: 4},
		"rank":     {Rank: 1},
		"channel":  {Channel: 1},
		"negative": {Row: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			c.Encode(co)
		}()
	}
}

func TestCompiledDecodeZeroAlloc(t *testing.T) {
	c := DefaultDDR5().MustCompile()
	var sink Coord
	allocs := testing.AllocsPerRun(1000, func() {
		sink = c.Decode(0x12345678)
	})
	if allocs != 0 {
		t.Fatalf("Compiled.Decode allocates %v per call", allocs)
	}
	_ = sink
}

func TestMappingStringParseRoundTrip(t *testing.T) {
	mappings := []Mapping{
		DefaultDDR5(),
		{ColumnBits: 13, BankBits: 5, RowBits: 17, RankBits: 1, ChannelBits: 2, XORBankHash: true},
		{ColumnBits: 10, BankBits: 3, RowBits: 12},
	}
	for _, m := range mappings {
		got, err := ParseMapping(m.String())
		if err != nil {
			t.Fatalf("ParseMapping(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round trip %q: got %+v, want %+v", m.String(), got, m)
		}
	}
	if s := DefaultDDR5().String(); s != "col=13 bank=5 row=17 rank=0 chan=0 xor=1" {
		t.Fatalf("canonical form changed: %q", s)
	}
	// Comma-separated form (CLI-friendly) parses too.
	if _, err := ParseMapping("col=13,bank=5,row=17,rank=0,chan=0,xor=0"); err != nil {
		t.Fatalf("comma form: %v", err)
	}
}

func TestParseMappingRejects(t *testing.T) {
	bad := map[string]string{
		"missing field": "col=13 bank=5 row=17 rank=0 chan=0",
		"duplicate":     "col=13 col=13 bank=5 row=17 rank=0 chan=0 xor=1",
		"unknown key":   "col=13 bank=5 row=17 rank=0 chan=0 xor=1 frob=2",
		"bad value":     "col=x bank=5 row=17 rank=0 chan=0 xor=1",
		"bad xor":       "col=13 bank=5 row=17 rank=0 chan=0 xor=2",
		"not key=value": "col bank=5 row=17 rank=0 chan=0 xor=1",
		"invalid":       "col=13 bank=5 row=0 rank=0 chan=0 xor=0",
	}
	for name, s := range bad {
		if _, err := ParseMapping(s); err == nil {
			t.Errorf("%s: ParseMapping(%q) accepted", name, s)
		}
	}
}

func BenchmarkCompiledDecode(b *testing.B) {
	c := DefaultDDR5().MustCompile()
	b.ReportAllocs()
	var sink Coord
	for i := 0; i < b.N; i++ {
		sink = c.Decode(uint64(i) * 0x9E3779B97F4A7C15 & ((1 << 35) - 1))
	}
	_ = sink
}

func TestScramblerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"rows":         func() { NewRowScrambler(1, 1) },
		"out of range": func() { NewRowScrambler(16, 1).Scramble(16) },
		"unscramble":   func() { NewRowScrambler(16, 1).Unscramble(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
