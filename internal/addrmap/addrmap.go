// Package addrmap models DRAM address translation: the controller-visible
// decomposition of physical addresses into (channel, rank, bank, row,
// column), and the proprietary in-DRAM row remapping that Section II-D
// identifies as the reason memory-controller-side mitigations struggle —
// "DRAM chips internally use proprietary mappings, which makes it hard to
// identify the row adjacency information".
//
// Two pieces:
//
//   - Mapping: a configurable bit-field decoder with XOR-based bank hashing
//     (the standard controller-side interleaving).
//   - RowScrambler: a keyed bijection over row addresses standing in for the
//     vendor's internal remap. External row r sits physically at
//     Scramble(r); externally adjacent rows are NOT physically adjacent, so
//     an MC-side defense refreshing r±1 protects the wrong cells.
package addrmap

import (
	"fmt"
	"strconv"
	"strings"
)

// Mapping describes how a physical address splits into DRAM coordinates,
// lowest bits first: column, then bank (XOR-hashed with row bits), then row,
// then rank/channel. All widths are in bits.
type Mapping struct {
	ColumnBits  int
	BankBits    int
	RowBits     int
	RankBits    int
	ChannelBits int
	// XORBankHash, when true, XORs the bank index with the low row bits —
	// the permutation-based interleaving controllers use to spread row
	// conflicts across banks.
	XORBankHash bool
}

// DefaultDDR5 returns a mapping for the paper's 32GB single-channel system:
// 8KB rows (13 column bits at 1B granularity... modelled as 13), 32 banks,
// 128K rows.
func DefaultDDR5() Mapping {
	return Mapping{ColumnBits: 13, BankBits: 5, RowBits: 17, RankBits: 0, ChannelBits: 0, XORBankHash: true}
}

// Validate reports whether the mapping is usable.
func (m Mapping) Validate() error {
	if m.ColumnBits < 0 || m.BankBits < 0 || m.RowBits <= 0 || m.RankBits < 0 || m.ChannelBits < 0 {
		return fmt.Errorf("addrmap: negative or zero field widths: %+v", m)
	}
	if total := m.ColumnBits + m.BankBits + m.RowBits + m.RankBits + m.ChannelBits; total > 62 {
		return fmt.Errorf("addrmap: %d address bits exceed 62", total)
	}
	if m.XORBankHash && m.RowBits < m.BankBits {
		return fmt.Errorf("addrmap: XOR hash needs RowBits >= BankBits")
	}
	return nil
}

// String renders the mapping in the canonical parseable form used by the
// trace text format and the CLI -mapping flag:
// "col=13 bank=5 row=17 rank=0 chan=0 xor=1".
func (m Mapping) String() string {
	xor := 0
	if m.XORBankHash {
		xor = 1
	}
	return fmt.Sprintf("col=%d bank=%d row=%d rank=%d chan=%d xor=%d",
		m.ColumnBits, m.BankBits, m.RowBits, m.RankBits, m.ChannelBits, xor)
}

// ParseMapping parses the canonical mapping syntax produced by String:
// space- or comma-separated key=value fields with keys col, bank, row, rank,
// chan, xor. Every key must appear exactly once, and the result must
// Validate — a typo in a hand-edited trace header should fail loudly, not
// silently change the geometry.
func ParseMapping(s string) (Mapping, error) {
	var m Mapping
	seen := map[string]bool{}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	for _, f := range fields {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return Mapping{}, fmt.Errorf("addrmap: mapping field %q is not key=value", f)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return Mapping{}, fmt.Errorf("addrmap: mapping field %q: bad value %q", key, val)
		}
		if seen[key] {
			return Mapping{}, fmt.Errorf("addrmap: duplicate mapping field %q", key)
		}
		seen[key] = true
		switch key {
		case "col":
			m.ColumnBits = v
		case "bank":
			m.BankBits = v
		case "row":
			m.RowBits = v
		case "rank":
			m.RankBits = v
		case "chan":
			m.ChannelBits = v
		case "xor":
			switch v {
			case 0:
			case 1:
				m.XORBankHash = true
			default:
				return Mapping{}, fmt.Errorf("addrmap: mapping field xor must be 0 or 1, got %d", v)
			}
		default:
			return Mapping{}, fmt.Errorf("addrmap: unknown mapping field %q", key)
		}
	}
	for _, key := range []string{"col", "bank", "row", "rank", "chan", "xor"} {
		if !seen[key] {
			return Mapping{}, fmt.Errorf("addrmap: mapping is missing field %q", key)
		}
	}
	if err := m.Validate(); err != nil {
		return Mapping{}, err
	}
	return m, nil
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Column  int
}

// Compiled is a mapping validated once, with the per-field shifts and masks
// precomputed, so the per-record Decode/Encode on the trace-replay hot path
// costs a handful of shift/mask operations and no validation branches. It is
// a plain value (no pointer, no allocation); build one with Compile or
// MustCompile and reuse it.
type Compiled struct {
	m Mapping

	colMask, bankMask, rowMask, rankMask, chanMask uint64
	bankShift, rowShift, rankShift, chanShift      uint
	// addrMask covers every mapped bit; addresses with bits outside it do
	// not correspond to any coordinate.
	addrMask uint64
	// xorMask is bankMask when the XOR bank hash is active, else 0, so the
	// hash costs one unconditional AND/XOR instead of a branch.
	xorMask uint64
}

// Compile validates the mapping once and returns its compiled form.
func (m Mapping) Compile() (Compiled, error) {
	if err := m.Validate(); err != nil {
		return Compiled{}, err
	}
	c := Compiled{m: m}
	mask := func(bits int) uint64 { return (uint64(1) << bits) - 1 }
	c.colMask = mask(m.ColumnBits)
	c.bankMask = mask(m.BankBits)
	c.rowMask = mask(m.RowBits)
	c.rankMask = mask(m.RankBits)
	c.chanMask = mask(m.ChannelBits)
	c.bankShift = uint(m.ColumnBits)
	c.rowShift = c.bankShift + uint(m.BankBits)
	c.rankShift = c.rowShift + uint(m.RowBits)
	c.chanShift = c.rankShift + uint(m.RankBits)
	c.addrMask = mask(m.ColumnBits + m.BankBits + m.RowBits + m.RankBits + m.ChannelBits)
	if m.XORBankHash {
		c.xorMask = c.bankMask
	}
	return c, nil
}

// MustCompile is Compile, panicking on an invalid mapping (construction-time
// misuse).
func (m Mapping) MustCompile() Compiled {
	c, err := m.Compile()
	if err != nil {
		panic(err)
	}
	return c
}

// Mapping returns the mapping the compiled form was built from.
func (c Compiled) Mapping() Mapping { return c.m }

// Channels returns the number of channels the mapping addresses.
func (c Compiled) Channels() int { return 1 << c.m.ChannelBits }

// Ranks returns the number of ranks per channel.
func (c Compiled) Ranks() int { return 1 << c.m.RankBits }

// Banks returns the number of banks per rank.
func (c Compiled) Banks() int { return 1 << c.m.BankBits }

// Rows returns the number of rows per bank.
func (c Compiled) Rows() int { return 1 << c.m.RowBits }

// AddrBits returns the total number of mapped address bits.
func (c Compiled) AddrBits() int {
	return c.m.ColumnBits + c.m.BankBits + c.m.RowBits + c.m.RankBits + c.m.ChannelBits
}

// InRange reports whether addr is representable under the mapping (no bits
// above the mapped width). Decode masks such bits off; strict consumers (the
// trace decoder) reject the address instead.
func (c Compiled) InRange(addr uint64) bool { return addr&^c.addrMask == 0 }

// Decode splits addr into coordinates: the allocation-free hot path.
func (c Compiled) Decode(addr uint64) Coord {
	row := (addr >> c.rowShift) & c.rowMask
	return Coord{
		Column:  int(addr & c.colMask),
		Bank:    int(((addr >> c.bankShift) & c.bankMask) ^ (row & c.xorMask)),
		Row:     int(row),
		Rank:    int((addr >> c.rankShift) & c.rankMask),
		Channel: int((addr >> c.chanShift) & c.chanMask),
	}
}

// Route decodes only the shard-routing fields — channel, rank, hashed bank,
// row — returning them in registers. The replay demux calls this once per
// trace record; skipping the column and the Coord struct keeps the per-record
// cost to the four shift/mask extractions it actually needs.
func (c Compiled) Route(addr uint64) (channel, rank, bank, row int) {
	r := (addr >> c.rowShift) & c.rowMask
	return int((addr >> c.chanShift) & c.chanMask),
		int((addr >> c.rankShift) & c.rankMask),
		int(((addr >> c.bankShift) & c.bankMask) ^ (r & c.xorMask)),
		int(r)
}

// Encode is the inverse of Decode. It panics when a coordinate exceeds its
// field width (the same construction-time misuse the uncompiled path
// rejected).
func (c Compiled) Encode(co Coord) uint64 {
	check := func(v int, mask uint64, name string) uint64 {
		if v < 0 || uint64(v) > mask {
			panic(fmt.Sprintf("addrmap: %s value %d exceeds mask %#x", name, v, mask))
		}
		return uint64(v)
	}
	bank := check(co.Bank, c.bankMask, "bank") ^ (check(co.Row, c.rowMask, "row") & c.xorMask)
	return check(co.Column, c.colMask, "column") |
		bank<<c.bankShift |
		uint64(co.Row)<<c.rowShift |
		check(co.Rank, c.rankMask, "rank")<<c.rankShift |
		check(co.Channel, c.chanMask, "channel")<<c.chanShift
}

// Decode splits addr into coordinates. It panics on an invalid mapping
// (construction-time misuse). Convenience form: it validates and compiles on
// every call, so hot paths (the trace decoder, the replay demux) should
// Compile once and call Compiled.Decode instead.
func (m Mapping) Decode(addr uint64) Coord {
	return m.MustCompile().Decode(addr)
}

// Encode is the inverse of Decode, with the same convenience-form caveat:
// hot paths should hold a Compiled.
func (m Mapping) Encode(c Coord) uint64 {
	return m.MustCompile().Encode(c)
}

// RowScrambler is a keyed bijection over [0, Rows) standing in for the
// vendor's internal row remap. It uses an affine map r -> (a*r + b) mod Rows
// with gcd(a, Rows) = 1, which destroys external adjacency (externally
// consecutive rows land `a` apart internally) while staying invertible.
type RowScrambler struct {
	rows int
	a, b int
	inv  int
}

// NewRowScrambler returns a scrambler over [0, rows) keyed by seed.
func NewRowScrambler(rows int, seed uint64) *RowScrambler {
	if rows < 2 {
		panic(fmt.Sprintf("addrmap: scrambler needs >= 2 rows, got %d", rows))
	}
	// Pick an odd multiplier coprime with rows. For power-of-two row
	// counts (the universal case) any odd a works; otherwise search.
	a := int(seed%uint64(rows)) | 1
	for gcd(a, rows) != 1 {
		a += 2
		if a >= rows {
			a = 1
		}
	}
	b := int((seed >> 32) % uint64(rows))
	return &RowScrambler{rows: rows, a: a, b: b, inv: modInverse(a, rows)}
}

// Scramble maps an external row to its internal physical location.
func (s *RowScrambler) Scramble(row int) int {
	if row < 0 || row >= s.rows {
		panic(fmt.Sprintf("addrmap: row %d out of [0,%d)", row, s.rows))
	}
	return (s.a*row + s.b) % s.rows
}

// Unscramble maps an internal physical location back to its external row.
func (s *RowScrambler) Unscramble(phys int) int {
	if phys < 0 || phys >= s.rows {
		panic(fmt.Sprintf("addrmap: row %d out of [0,%d)", phys, s.rows))
	}
	d := phys - s.b
	d %= s.rows
	if d < 0 {
		d += s.rows
	}
	return d * s.inv % s.rows
}

// Rows returns the scrambler's domain size.
func (s *RowScrambler) Rows() int { return s.rows }

// InternalNeighbors returns the internal physical rows adjacent to the
// internal location of external row r — what an in-DRAM mitigation
// refreshes (it knows the true geometry).
func (s *RowScrambler) InternalNeighbors(row int) (lo, hi int) {
	p := s.Scramble(row)
	return p - 1, p + 1
}

// ExternalGuessNeighbors returns the internal locations of the externally
// adjacent rows r±1 — what an MC-side mitigation actually refreshes when it
// assumes external adjacency. With a nontrivial scramble these are far from
// the true victims.
func (s *RowScrambler) ExternalGuessNeighbors(row int) (lo, hi int) {
	l, h := row-1, row+1
	if l < 0 {
		l += s.rows
	}
	if h >= s.rows {
		h -= s.rows
	}
	return s.Scramble(l), s.Scramble(h)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^-1 mod n for gcd(a,n)=1 via the extended Euclid
// algorithm.
func modInverse(a, n int) int {
	t, newT := 0, 1
	r, newR := n, a
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		panic(fmt.Sprintf("addrmap: %d not invertible mod %d", a, n))
	}
	if t < 0 {
		t += n
	}
	return t
}
