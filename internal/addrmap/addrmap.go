// Package addrmap models DRAM address translation: the controller-visible
// decomposition of physical addresses into (channel, rank, bank, row,
// column), and the proprietary in-DRAM row remapping that Section II-D
// identifies as the reason memory-controller-side mitigations struggle —
// "DRAM chips internally use proprietary mappings, which makes it hard to
// identify the row adjacency information".
//
// Two pieces:
//
//   - Mapping: a configurable bit-field decoder with XOR-based bank hashing
//     (the standard controller-side interleaving).
//   - RowScrambler: a keyed bijection over row addresses standing in for the
//     vendor's internal remap. External row r sits physically at
//     Scramble(r); externally adjacent rows are NOT physically adjacent, so
//     an MC-side defense refreshing r±1 protects the wrong cells.
package addrmap

import "fmt"

// Mapping describes how a physical address splits into DRAM coordinates,
// lowest bits first: column, then bank (XOR-hashed with row bits), then row,
// then rank/channel. All widths are in bits.
type Mapping struct {
	ColumnBits  int
	BankBits    int
	RowBits     int
	RankBits    int
	ChannelBits int
	// XORBankHash, when true, XORs the bank index with the low row bits —
	// the permutation-based interleaving controllers use to spread row
	// conflicts across banks.
	XORBankHash bool
}

// DefaultDDR5 returns a mapping for the paper's 32GB single-channel system:
// 8KB rows (13 column bits at 1B granularity... modelled as 13), 32 banks,
// 128K rows.
func DefaultDDR5() Mapping {
	return Mapping{ColumnBits: 13, BankBits: 5, RowBits: 17, RankBits: 0, ChannelBits: 0, XORBankHash: true}
}

// Validate reports whether the mapping is usable.
func (m Mapping) Validate() error {
	if m.ColumnBits < 0 || m.BankBits < 0 || m.RowBits <= 0 || m.RankBits < 0 || m.ChannelBits < 0 {
		return fmt.Errorf("addrmap: negative or zero field widths: %+v", m)
	}
	if total := m.ColumnBits + m.BankBits + m.RowBits + m.RankBits + m.ChannelBits; total > 62 {
		return fmt.Errorf("addrmap: %d address bits exceed 62", total)
	}
	if m.XORBankHash && m.RowBits < m.BankBits {
		return fmt.Errorf("addrmap: XOR hash needs RowBits >= BankBits")
	}
	return nil
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Column  int
}

// Decode splits addr into coordinates. It panics on an invalid mapping
// (construction-time misuse).
func (m Mapping) Decode(addr uint64) Coord {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	take := func(bits int) int {
		v := addr & ((1 << bits) - 1)
		addr >>= bits
		return int(v)
	}
	c := Coord{}
	c.Column = take(m.ColumnBits)
	c.Bank = take(m.BankBits)
	c.Row = take(m.RowBits)
	c.Rank = take(m.RankBits)
	c.Channel = take(m.ChannelBits)
	if m.XORBankHash && m.BankBits > 0 {
		c.Bank ^= c.Row & ((1 << m.BankBits) - 1)
	}
	return c
}

// Encode is the inverse of Decode.
func (m Mapping) Encode(c Coord) uint64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	bank := c.Bank
	if m.XORBankHash && m.BankBits > 0 {
		bank ^= c.Row & ((1 << m.BankBits) - 1)
	}
	addr := uint64(0)
	shift := 0
	put := func(v, bits int) {
		if bits == 0 {
			return
		}
		if v < 0 || v >= 1<<bits {
			panic(fmt.Sprintf("addrmap: field value %d exceeds %d bits", v, bits))
		}
		addr |= uint64(v) << shift
		shift += bits
	}
	put(c.Column, m.ColumnBits)
	put(bank, m.BankBits)
	put(c.Row, m.RowBits)
	put(c.Rank, m.RankBits)
	put(c.Channel, m.ChannelBits)
	return addr
}

// RowScrambler is a keyed bijection over [0, Rows) standing in for the
// vendor's internal row remap. It uses an affine map r -> (a*r + b) mod Rows
// with gcd(a, Rows) = 1, which destroys external adjacency (externally
// consecutive rows land `a` apart internally) while staying invertible.
type RowScrambler struct {
	rows int
	a, b int
	inv  int
}

// NewRowScrambler returns a scrambler over [0, rows) keyed by seed.
func NewRowScrambler(rows int, seed uint64) *RowScrambler {
	if rows < 2 {
		panic(fmt.Sprintf("addrmap: scrambler needs >= 2 rows, got %d", rows))
	}
	// Pick an odd multiplier coprime with rows. For power-of-two row
	// counts (the universal case) any odd a works; otherwise search.
	a := int(seed%uint64(rows)) | 1
	for gcd(a, rows) != 1 {
		a += 2
		if a >= rows {
			a = 1
		}
	}
	b := int((seed >> 32) % uint64(rows))
	return &RowScrambler{rows: rows, a: a, b: b, inv: modInverse(a, rows)}
}

// Scramble maps an external row to its internal physical location.
func (s *RowScrambler) Scramble(row int) int {
	if row < 0 || row >= s.rows {
		panic(fmt.Sprintf("addrmap: row %d out of [0,%d)", row, s.rows))
	}
	return (s.a*row + s.b) % s.rows
}

// Unscramble maps an internal physical location back to its external row.
func (s *RowScrambler) Unscramble(phys int) int {
	if phys < 0 || phys >= s.rows {
		panic(fmt.Sprintf("addrmap: row %d out of [0,%d)", phys, s.rows))
	}
	d := phys - s.b
	d %= s.rows
	if d < 0 {
		d += s.rows
	}
	return d * s.inv % s.rows
}

// Rows returns the scrambler's domain size.
func (s *RowScrambler) Rows() int { return s.rows }

// InternalNeighbors returns the internal physical rows adjacent to the
// internal location of external row r — what an in-DRAM mitigation
// refreshes (it knows the true geometry).
func (s *RowScrambler) InternalNeighbors(row int) (lo, hi int) {
	p := s.Scramble(row)
	return p - 1, p + 1
}

// ExternalGuessNeighbors returns the internal locations of the externally
// adjacent rows r±1 — what an MC-side mitigation actually refreshes when it
// assumes external adjacency. With a nontrivial scramble these are far from
// the true victims.
func (s *RowScrambler) ExternalGuessNeighbors(row int) (lo, hi int) {
	l, h := row-1, row+1
	if l < 0 {
		l += s.rows
	}
	if h >= s.rows {
		h -= s.rows
	}
	return s.Scramble(l), s.Scramble(h)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^-1 mod n for gcd(a,n)=1 via the extended Euclid
// algorithm.
func modInverse(a, n int) int {
	t, newT := 0, 1
	r, newR := n, a
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		panic(fmt.Sprintf("addrmap: %d not invertible mod %d", a, n))
	}
	if t < 0 {
		t += n
	}
	return t
}
