package workload

import (
	"math"
	"testing"
)

func TestSPEC2017Lineup(t *testing.T) {
	specs := SPEC2017()
	if len(specs) != 17 {
		t.Fatalf("workloads = %d, want the paper's 17", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%v", err)
		}
		if names[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		names[s.Name] = true
	}
	// The artifact's binary list must be present.
	for _, want := range []string{"blender", "lbm", "roms", "gcc", "mcf", "cactuBSSN",
		"xz", "deepsjeng", "imagick", "nab", "bwaves", "namd", "parest", "leela",
		"wrf", "povray", "exchange2"} {
		if !names[want] {
			t.Errorf("workload %s missing", want)
		}
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// The published characterization shape: mcf and lbm are memory-bound,
	// povray and exchange2 are compute-bound.
	byName := map[string]Spec{}
	for _, s := range SPEC2017() {
		byName[s.Name] = s
	}
	if byName["mcf"].MPKI < 10*byName["povray"].MPKI {
		t.Fatal("mcf must be far more memory-intensive than povray")
	}
	if byName["lbm"].RowHitRate <= byName["mcf"].RowHitRate {
		t.Fatal("lbm (streaming) must have better row locality than mcf (pointer chasing)")
	}
}

func TestMixes(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 17 {
		t.Fatalf("mixes = %d, want 17", len(mixes))
	}
	for _, m := range mixes {
		if err := m.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
	// Deterministic across calls.
	again := Mixes()
	for i := range mixes {
		if mixes[i] != again[i] {
			t.Fatal("Mixes not deterministic")
		}
	}
}

func TestAllIs34Sorted(t *testing.T) {
	all := All()
	if len(all) != 34 {
		t.Fatalf("All = %d workloads, want 34", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All not sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestTraceShape(t *testing.T) {
	spec := Spec{Name: "x", MPKI: 20, RowHitRate: 0.6, MLP: 2}
	tr := Trace(spec, 32, 1024, 50_000, 1)
	if len(tr) != 50_000 {
		t.Fatalf("trace length = %d", len(tr))
	}
	hits := 0
	for _, r := range tr {
		if r.Bank < 0 || r.Bank >= 32 || r.Row < 0 || r.Row >= 1024 {
			t.Fatalf("request out of range: %+v", r)
		}
		if r.InstrGap < 1 {
			t.Fatalf("non-positive instruction gap: %+v", r)
		}
		if r.RowHit {
			hits++
		}
	}
	got := float64(hits) / float64(len(tr))
	if math.Abs(got-0.6) > 0.02 {
		t.Fatalf("row hit rate = %v, want ~0.6", got)
	}
}

func TestTraceMeanGapMatchesMPKI(t *testing.T) {
	spec := Spec{Name: "x", MPKI: 10, RowHitRate: 0.5, MLP: 2}
	tr := Trace(spec, 4, 256, 100_000, 2)
	total := 0
	for _, r := range tr {
		total += r.InstrGap
	}
	mean := float64(total) / float64(len(tr))
	want := 1000.0 / 10
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean gap = %v instructions, want ~%v", mean, want)
	}
}

func TestTraceRowHitRepeatsAddress(t *testing.T) {
	spec := Spec{Name: "x", MPKI: 10, RowHitRate: 0.5, MLP: 2}
	tr := Trace(spec, 8, 512, 10_000, 3)
	for i := 1; i < len(tr); i++ {
		if tr[i].RowHit && (tr[i].Bank != tr[i-1].Bank || tr[i].Row != tr[i-1].Row) {
			t.Fatalf("row hit at %d changed address: %+v -> %+v", i, tr[i-1], tr[i])
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	spec := Spec{Name: "x", MPKI: 5, RowHitRate: 0.3, MLP: 1.5}
	a := Trace(spec, 4, 128, 5_000, 7)
	b := Trace(spec, 4, 128, 5_000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ at %d", i)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		{Name: "neg", MPKI: -1, RowHitRate: 0.5, MLP: 2},
		{Name: "hit", MPKI: 1, RowHitRate: 1.5, MLP: 2},
		{Name: "mlp", MPKI: 1, RowHitRate: 0.5, MLP: 0.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %s accepted", s.Name)
		}
	}
}

func TestTracePanics(t *testing.T) {
	spec := Spec{Name: "x", MPKI: 1, RowHitRate: 0.5, MLP: 2}
	for name, f := range map[string]func(){
		"banks":    func() { Trace(spec, 0, 10, 10, 1) },
		"rows":     func() { Trace(spec, 1, 0, 10, 1) },
		"bad spec": func() { Trace(Spec{MLP: 0}, 1, 10, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
