package workload

import (
	"fmt"
	"io"

	"pride/internal/addrmap"
	"pride/internal/rng"
)

// AddrSource streams a workload's ACT records as physical addresses under an
// address mapping: the generator→trace adapter that makes every workload one
// trace.Source among several, so Fig 14 traffic replays through the same
// server-scale pipeline as recorded traces.
//
// Locality is modelled exactly like Trace, lifted to the full topology: a
// row hit repeats the previous (channel, rank, bank, row); a miss draws a
// fresh coordinate uniformly. Columns are always zero — the replay pipeline
// works in ACT granularity, where the column carries no information. The
// stream is deterministic in (spec, mapping, n, seed), so writing the
// records to a trace file and replaying the file is bit-identical to
// replaying the source directly.
type AddrSource struct {
	spec     Spec
	compiled addrmap.Compiled
	n        int
	emitted  int
	r        *rng.Stream
	cur      addrmap.Coord
}

// NewAddrSource returns a source of exactly n ACT records for spec under
// mapping m, deterministically from seed. It panics on an invalid spec,
// mapping, or shape (experiment-setup-time failure).
func NewAddrSource(spec Spec, m addrmap.Mapping, n int, seed uint64) *AddrSource {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if n < 0 {
		panic(fmt.Sprintf("workload: negative record count %d", n))
	}
	s := &AddrSource{spec: spec, compiled: m.MustCompile(), n: n, r: rng.New(seed)}
	s.cur = addrmap.Coord{
		Channel: s.r.Intn(s.compiled.Channels()),
		Rank:    s.r.Intn(s.compiled.Ranks()),
		Bank:    s.r.Intn(s.compiled.Banks()),
		Row:     s.r.Intn(s.compiled.Rows()),
	}
	return s
}

// Mapping implements trace.Source.
func (s *AddrSource) Mapping() addrmap.Mapping { return s.compiled.Mapping() }

// Count returns the total number of records the source emits.
func (s *AddrSource) Count() uint64 { return uint64(s.n) }

// ReadBatch implements trace.Source.
func (s *AddrSource) ReadBatch(dst []uint64) (int, error) {
	if s.emitted == s.n {
		return 0, io.EOF
	}
	n := len(dst)
	if left := s.n - s.emitted; n > left {
		n = left
	}
	for i := 0; i < n; i++ {
		if !s.r.Bernoulli(s.spec.RowHitRate) {
			s.cur.Channel = s.r.Intn(s.compiled.Channels())
			s.cur.Rank = s.r.Intn(s.compiled.Ranks())
			s.cur.Bank = s.r.Intn(s.compiled.Banks())
			s.cur.Row = s.r.Intn(s.compiled.Rows())
		}
		dst[i] = s.compiled.Encode(s.cur)
	}
	s.emitted += n
	return n, nil
}
