// Package workload provides the SPEC2017-rate workload substitute for the
// paper's gem5 evaluation (Table VII, Fig 14).
//
// SPEC binaries cannot ship with this repository, so each workload is
// characterized by the three parameters that determine its DRAM behaviour —
// memory intensity (LLC misses per kilo-instruction), row-buffer locality,
// and exploitable memory-level parallelism — with values in line with the
// published memory-system characterizations of SPEC CPU2017 rate workloads.
// Figure 14's effect is purely a DRAM-bandwidth effect (RFM blocks a bank
// for 180ns every RFM_TH activations), so traces with realistic ACT rates
// reproduce its shape; see DESIGN.md's substitution table.
package workload

import (
	"fmt"
	"sort"

	"pride/internal/rng"
)

// Spec characterizes one workload's memory behaviour.
type Spec struct {
	// Name is the SPEC2017 binary name (or "mixNN" for multiprogrammed
	// mixes).
	Name string
	// MPKI is LLC misses per kilo-instruction reaching DRAM.
	MPKI float64
	// RowHitRate is the fraction of requests hitting an open row.
	RowHitRate float64
	// MLP is the average number of overlapping outstanding misses.
	MLP float64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.MPKI < 0:
		return fmt.Errorf("workload %s: negative MPKI", s.Name)
	case s.RowHitRate < 0 || s.RowHitRate > 1:
		return fmt.Errorf("workload %s: RowHitRate %v outside [0,1]", s.Name, s.RowHitRate)
	case s.MLP < 1:
		return fmt.Errorf("workload %s: MLP %v must be >= 1", s.Name, s.MLP)
	}
	return nil
}

// SPEC2017 returns the 17 rate workloads of the paper's Fig 14, with
// memory-behaviour parameters consistent with published SPEC CPU2017
// characterizations (memory-bound: mcf, lbm, bwaves, roms; moderate: gcc,
// cactuBSSN, wrf, xz, parest; compute-bound: leela, povray, exchange2, ...).
func SPEC2017() []Spec {
	return []Spec{
		{Name: "blender", MPKI: 1.2, RowHitRate: 0.55, MLP: 2.5},
		{Name: "lbm", MPKI: 45.0, RowHitRate: 0.75, MLP: 5.0},
		{Name: "roms", MPKI: 22.0, RowHitRate: 0.65, MLP: 4.0},
		{Name: "gcc", MPKI: 6.5, RowHitRate: 0.50, MLP: 2.0},
		{Name: "mcf", MPKI: 55.0, RowHitRate: 0.25, MLP: 3.5},
		{Name: "cactuBSSN", MPKI: 12.0, RowHitRate: 0.60, MLP: 3.0},
		{Name: "xz", MPKI: 4.5, RowHitRate: 0.40, MLP: 1.8},
		{Name: "deepsjeng", MPKI: 1.0, RowHitRate: 0.45, MLP: 1.5},
		{Name: "imagick", MPKI: 0.5, RowHitRate: 0.70, MLP: 1.5},
		{Name: "nab", MPKI: 1.8, RowHitRate: 0.60, MLP: 2.0},
		{Name: "bwaves", MPKI: 28.0, RowHitRate: 0.80, MLP: 5.5},
		{Name: "namd", MPKI: 0.8, RowHitRate: 0.65, MLP: 1.8},
		{Name: "parest", MPKI: 7.0, RowHitRate: 0.55, MLP: 2.5},
		{Name: "leela", MPKI: 0.3, RowHitRate: 0.50, MLP: 1.2},
		{Name: "wrf", MPKI: 9.0, RowHitRate: 0.70, MLP: 3.0},
		{Name: "povray", MPKI: 0.1, RowHitRate: 0.60, MLP: 1.2},
		{Name: "exchange2", MPKI: 0.05, RowHitRate: 0.50, MLP: 1.1},
	}
}

// Mixes returns 17 multiprogrammed mixes (the paper's "mix" workloads):
// deterministic 4-way combinations of the rate workloads, averaged into a
// single aggregate spec per mix (the perfsim core model is per-workload).
func Mixes() []Spec {
	base := SPEC2017()
	mixes := make([]Spec, 0, 17)
	r := rng.New(0x5EED5)
	for i := 0; i < 17; i++ {
		var mpki, hit, mlp float64
		for j := 0; j < 4; j++ {
			w := base[r.Intn(len(base))]
			mpki += w.MPKI
			hit += w.RowHitRate
			mlp += w.MLP
		}
		mixes = append(mixes, Spec{
			Name:       fmt.Sprintf("mix%02d", i+1),
			MPKI:       mpki / 4,
			RowHitRate: hit / 4,
			MLP:        mlp / 4,
		})
	}
	return mixes
}

// All returns the paper's full 34-workload line-up (17 rate + 17 mixes),
// sorted by name for stable reporting.
func All() []Spec {
	all := append(SPEC2017(), Mixes()...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Request is one DRAM request of a generated trace.
type Request struct {
	// Bank and Row address the request.
	Bank int
	Row  int
	// InstrGap is the number of instructions the core retires between the
	// previous request and this one.
	InstrGap int
	// RowHit records whether the generator intended an open-row hit.
	RowHit bool
}

// Trace generates n requests for spec over `banks` banks and `rows` rows per
// bank, deterministically from seed. Row-buffer locality is modelled by
// repeating the previous (bank,row) with probability RowHitRate; otherwise a
// fresh random (bank,row) is drawn.
func Trace(spec Spec, banks, rows, n int, seed uint64) []Request {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if banks < 1 || rows < 1 || n < 0 {
		panic(fmt.Sprintf("workload: bad trace shape banks=%d rows=%d n=%d", banks, rows, n))
	}
	r := rng.New(seed)
	out := make([]Request, n)
	curBank, curRow := r.Intn(banks), r.Intn(rows)
	// Mean instruction gap between misses: 1000/MPKI.
	meanGap := 1.0
	if spec.MPKI > 0 {
		meanGap = 1000.0 / spec.MPKI
	}
	for i := range out {
		hit := r.Bernoulli(spec.RowHitRate)
		if !hit {
			curBank = r.Intn(banks)
			curRow = r.Intn(rows)
		}
		// Geometric inter-arrival around the mean gap keeps the trace
		// bursty like real miss streams.
		gap := 1
		if meanGap > 1 {
			gap = 1 + r.Geometric(1/meanGap)
		}
		out[i] = Request{Bank: curBank, Row: curRow, InstrGap: gap, RowHit: hit}
	}
	return out
}
