package workload

import (
	"io"
	"testing"

	"pride/internal/addrmap"
	"pride/internal/trace"
)

func sourceMapping() addrmap.Mapping {
	return addrmap.Mapping{ColumnBits: 4, BankBits: 2, RowBits: 10, RankBits: 1, ChannelBits: 1, XORBankHash: true}
}

func TestAddrSourceDeterministic(t *testing.T) {
	spec := SPEC2017()[1] // lbm: high locality, high intensity
	m := sourceMapping()
	a, err := trace.Drain(NewAddrSource(spec, m, 5000, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Drain(NewAddrSource(spec, m, 5000, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
	c, err := trace.Drain(NewAddrSource(spec, m, 5000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestAddrSourceBatchSizeInvariant(t *testing.T) {
	// The stream is the same whether drained in one call or tiny batches.
	spec := SPEC2017()[0]
	m := sourceMapping()
	whole, err := trace.Drain(NewAddrSource(spec, m, 1000, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	src := NewAddrSource(spec, m, 1000, 3)
	var tiny []uint64
	batch := make([]uint64, 7)
	for {
		n, err := src.ReadBatch(batch)
		tiny = append(tiny, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(tiny) != len(whole) {
		t.Fatalf("%d vs %d records", len(tiny), len(whole))
	}
	for i := range tiny {
		if tiny[i] != whole[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if n, err := src.ReadBatch(batch); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF ReadBatch = (%d, %v)", n, err)
	}
}

func TestAddrSourceLocality(t *testing.T) {
	m := sourceMapping()
	compiled := m.MustCompile()
	measure := func(hitRate float64) float64 {
		spec := Spec{Name: "probe", MPKI: 10, RowHitRate: hitRate, MLP: 2}
		addrs, err := trace.Drain(NewAddrSource(spec, m, 20000, 5), nil)
		if err != nil {
			t.Fatal(err)
		}
		repeats := 0
		for i := 1; i < len(addrs); i++ {
			if compiled.Decode(addrs[i]) == compiled.Decode(addrs[i-1]) {
				repeats++
			}
		}
		return float64(repeats) / float64(len(addrs)-1)
	}
	// Observed repeat rate tracks the configured row-hit rate (a random
	// re-draw collides only ~1/2^14 of the time at this geometry).
	for _, hr := range []float64{0.0, 0.5, 0.9} {
		got := measure(hr)
		if got < hr-0.03 || got > hr+0.03 {
			t.Fatalf("hit rate %v: measured repeat rate %v", hr, got)
		}
	}
}

func TestAddrSourceCoversTopology(t *testing.T) {
	// A locality-free stream touches every (channel, rank, bank) shard.
	m := sourceMapping()
	compiled := m.MustCompile()
	spec := Spec{Name: "spray", MPKI: 10, RowHitRate: 0, MLP: 2}
	addrs, err := trace.Drain(NewAddrSource(spec, m, 4000, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[3]int]bool{}
	for _, a := range addrs {
		c := compiled.Decode(a)
		seen[[3]int{c.Channel, c.Rank, c.Bank}] = true
		if c.Column != 0 {
			t.Fatalf("nonzero column %d in ACT-granularity stream", c.Column)
		}
	}
	want := compiled.Channels() * compiled.Ranks() * compiled.Banks()
	if len(seen) != want {
		t.Fatalf("stream touched %d of %d shards", len(seen), want)
	}
}

func TestAddrSourcePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad spec":    func() { NewAddrSource(Spec{Name: "x", MPKI: -1, MLP: 1}, sourceMapping(), 10, 1) },
		"bad mapping": func() { NewAddrSource(SPEC2017()[0], addrmap.Mapping{}, 10, 1) },
		"negative n":  func() { NewAddrSource(SPEC2017()[0], sourceMapping(), -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
