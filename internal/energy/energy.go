// Package energy models the DRAM energy overheads of PrIDE and PrIDE+RFM
// (Table X, Section VII-E): extra activation energy from mitigative victim
// refreshes, the per-activation energy and leakage power of the random
// number generator, and the execution-time increase under RFM.
package energy

import "fmt"

// Model holds the energy constants. The TRNG figures are the paper's
// (Section VII-E: a 7-bit TRNG at 0.00025mm^2, 0.08mW leakage per bank,
// 24.9pJ per activation in 10nm); the activation-energy share comes from
// Table X's baseline split (ACT energy is 13% of total DRAM energy).
type Model struct {
	// ACTEnergyPJ is the energy of one row activation in picojoules.
	ACTEnergyPJ float64
	// RNGAccessPJ is the RNG energy consulted on each activation.
	RNGAccessPJ float64
	// RNGLeakageMWPerBank is the RNG's static power per bank.
	RNGLeakageMWPerBank float64
	// Banks in the device (leakage scales with it).
	Banks int
	// ACTShare is the fraction of total DRAM energy spent on activations
	// in the unmitigated baseline (Table X: 13%).
	ACTShare float64
	// NonACTPowerMW is the baseline non-activation power against which
	// RNG leakage is compared.
	NonACTPowerMW float64
	// ExecTimeEnergyShare is the fraction of non-ACT energy that scales
	// with execution time (the rest — refresh, fixed charge pumps — is
	// per-workload, not per-second). Calibrated to Table X's non-ACT
	// column.
	ExecTimeEnergyShare float64
}

// DefaultModel returns constants calibrated to Table X's baseline.
func DefaultModel() Model {
	return Model{
		ACTEnergyPJ:         860,
		RNGAccessPJ:         24.9,
		RNGLeakageMWPerBank: 0.08,
		Banks:               32,
		ACTShare:            0.13,
		NonACTPowerMW:       1200,
		ExecTimeEnergyShare: 0.5,
	}
}

// Validate reports whether the model constants are usable.
func (m Model) Validate() error {
	switch {
	case m.ACTEnergyPJ <= 0 || m.RNGAccessPJ < 0 || m.RNGLeakageMWPerBank < 0:
		return fmt.Errorf("energy: non-positive energy constants: %+v", m)
	case m.Banks < 1:
		return fmt.Errorf("energy: Banks must be >= 1, got %d", m.Banks)
	case m.ACTShare <= 0 || m.ACTShare >= 1:
		return fmt.Errorf("energy: ACTShare must be in (0,1), got %v", m.ACTShare)
	case m.NonACTPowerMW <= 0:
		return fmt.Errorf("energy: NonACTPowerMW must be positive, got %v", m.NonACTPowerMW)
	case m.ExecTimeEnergyShare < 0 || m.ExecTimeEnergyShare > 1:
		return fmt.Errorf("energy: ExecTimeEnergyShare must be in [0,1], got %v", m.ExecTimeEnergyShare)
	}
	return nil
}

// Activity describes one configuration's activity rates, in events per
// demand activation.
type Activity struct {
	Scheme string
	// VictimRefreshesPerACT is mitigative row refreshes per demand ACT
	// (each victim refresh is internally an activation).
	VictimRefreshesPerACT float64
	// RNGAccessesPerACT is RNG consultations per demand ACT (1 for PrIDE:
	// every activation samples the insertion decision).
	RNGAccessesPerACT float64
	// ExecTimeFactor is the execution-time increase from Fig 14 (1.0 for
	// PrIDE, ~1.001 for RFM40, ~1.016 for RFM16); non-ACT (background)
	// energy scales with it.
	ExecTimeFactor float64
}

// Overheads is one row of Table X.
type Overheads struct {
	Scheme string
	// ACTEnergyFactor is activation energy relative to baseline.
	ACTEnergyFactor float64
	// NonACTEnergyFactor is non-activation energy relative to baseline.
	NonACTEnergyFactor float64
	// TotalFactor is total DRAM energy relative to baseline.
	TotalFactor float64
}

// Evaluate computes Table X's row for the given activity.
func (m Model) Evaluate(a Activity) Overheads {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if a.VictimRefreshesPerACT < 0 || a.RNGAccessesPerACT < 0 || a.ExecTimeFactor < 1 {
		panic(fmt.Sprintf("energy: invalid activity %+v", a))
	}
	// ACT energy: extra mitigative activations plus RNG access energy,
	// both charged against the baseline per-ACT energy.
	actFactor := 1 + a.VictimRefreshesPerACT + a.RNGAccessesPerACT*m.RNGAccessPJ/m.ACTEnergyPJ
	// Non-ACT energy: RNG leakage added to background power, and the
	// whole background bill scales with execution time.
	leakage := m.RNGLeakageMWPerBank * float64(m.Banks)
	nonACTFactor := 1 + leakage/m.NonACTPowerMW + m.ExecTimeEnergyShare*(a.ExecTimeFactor-1)
	total := m.ACTShare*actFactor + (1-m.ACTShare)*nonACTFactor
	return Overheads{
		Scheme:             a.Scheme,
		ACTEnergyFactor:    actFactor,
		NonACTEnergyFactor: nonACTFactor,
		TotalFactor:        total,
	}
}

// TableX returns the paper's Table X line-up computed from first
// principles: victim refreshes per ACT follow from the mitigation rates
// (one 2-row mitigation per window of W demand ACTs, plus the RFM windows),
// and execution-time factors come from the Fig 14 slowdowns.
func TableX(m Model) []Overheads {
	blast := 2.0 // victim rows refreshed per mitigation (blast radius 1)
	rows := []Activity{
		{
			Scheme:                "PrIDE",
			VictimRefreshesPerACT: blast / 80,
			RNGAccessesPerACT:     1,
			ExecTimeFactor:        1.0,
		},
		{
			Scheme:                "PrIDE+RFM40",
			VictimRefreshesPerACT: blast/80 + blast/41,
			RNGAccessesPerACT:     1,
			ExecTimeFactor:        1.001,
		},
		{
			Scheme:                "PrIDE+RFM16",
			VictimRefreshesPerACT: blast/80 + blast/17,
			RNGAccessesPerACT:     1,
			ExecTimeFactor:        1.016,
		},
	}
	out := make([]Overheads, 0, len(rows))
	for _, a := range rows {
		out = append(out, m.Evaluate(a))
	}
	return out
}
