package energy

import (
	"math"
	"testing"
)

func TestTableXMatchesPaper(t *testing.T) {
	// Table X: ACT / non-ACT / total energy factors.
	rows := TableX(DefaultModel())
	want := []struct {
		scheme           string
		act, nonact, tot float64
		tolAct           float64
	}{
		{"PrIDE", 1.054, 1.002, 1.006, 0.01},
		{"PrIDE+RFM40", 1.086, 1.002, 1.008, 0.02},
		// Note: the paper's RFM16 total (1.024) is below what its own 13%%
		// ACT share implies from its ACT/non-ACT columns (1.038); we match
		// the columns and accept the recomputed total (see EXPERIMENTS.md).
		{"PrIDE+RFM16", 1.226, 1.010, 1.024, 0.06},
	}
	for i, w := range want {
		r := rows[i]
		if r.Scheme != w.scheme {
			t.Fatalf("row %d scheme = %s, want %s", i, r.Scheme, w.scheme)
		}
		if math.Abs(r.ACTEnergyFactor-w.act) > w.tolAct {
			t.Errorf("%s ACT factor = %.3f, paper says %.3f", w.scheme, r.ACTEnergyFactor, w.act)
		}
		if math.Abs(r.NonACTEnergyFactor-w.nonact) > 0.01 {
			t.Errorf("%s non-ACT factor = %.3f, paper says %.3f", w.scheme, r.NonACTEnergyFactor, w.nonact)
		}
		if math.Abs(r.TotalFactor-w.tot) > 0.015 {
			t.Errorf("%s total factor = %.3f, paper says %.3f", w.scheme, r.TotalFactor, w.tot)
		}
	}
}

func TestTotalEnergyOrdering(t *testing.T) {
	rows := TableX(DefaultModel())
	if !(rows[0].TotalFactor < rows[1].TotalFactor && rows[1].TotalFactor < rows[2].TotalFactor) {
		t.Fatalf("energy must increase with mitigation rate: %+v", rows)
	}
	// Section VII-E: ACT energy is only 13% of the bill, so even the 23%
	// ACT increase of RFM16 stays under 3% total.
	if rows[2].TotalFactor > 1.04 {
		t.Fatalf("RFM16 total = %v, want < 1.04", rows[2].TotalFactor)
	}
}

func TestEvaluateComposition(t *testing.T) {
	m := DefaultModel()
	// No extra activity: only RNG leakage remains.
	base := m.Evaluate(Activity{Scheme: "idle", ExecTimeFactor: 1})
	if base.ACTEnergyFactor != 1 {
		t.Fatalf("no-activity ACT factor = %v, want 1", base.ACTEnergyFactor)
	}
	if base.NonACTEnergyFactor <= 1 {
		t.Fatal("RNG leakage must raise non-ACT energy")
	}
	// Victim refreshes raise ACT energy by exactly their rate.
	vr := m.Evaluate(Activity{Scheme: "vr", VictimRefreshesPerACT: 0.1, ExecTimeFactor: 1})
	if math.Abs(vr.ACTEnergyFactor-base.ACTEnergyFactor-0.1) > 1e-12 {
		t.Fatalf("victim refreshes at 0.1/ACT raised ACT factor by %v, want 0.1",
			vr.ACTEnergyFactor-base.ACTEnergyFactor)
	}
}

func TestModelValidation(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.ACTEnergyPJ = 0 },
		func(m *Model) { m.Banks = 0 },
		func(m *Model) { m.ACTShare = 0 },
		func(m *Model) { m.ACTShare = 1 },
		func(m *Model) { m.NonACTPowerMW = 0 },
	}
	for i, mutate := range bad {
		m := DefaultModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestEvaluatePanicsOnBadActivity(t *testing.T) {
	m := DefaultModel()
	for _, a := range []Activity{
		{VictimRefreshesPerACT: -1, ExecTimeFactor: 1},
		{ExecTimeFactor: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("activity %+v accepted", a)
				}
			}()
			m.Evaluate(a)
		}()
	}
}
