// Package report formats experiment results as aligned ASCII tables and CSV
// series, and renders the human-readable time-to-failure strings Table IX
// uses ("> 1 Mln years", "153 days", "< 1 sec").
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be useful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		quoted[i] = c
	}
	fmt.Fprintf(w, "%s\n", strings.Join(quoted, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatTTFYears renders a time-to-failure in Table IX's style.
func FormatTTFYears(years float64) string {
	const (
		minute = 60.0
		hour   = 60 * minute
		day    = 24 * hour
		yearS  = 365.25 * day
	)
	switch {
	case years > 1e6:
		return "> 1 Mln years"
	case years >= 2:
		return fmt.Sprintf("%.0f years", years)
	case years >= 1:
		return fmt.Sprintf("%.1f years", years)
	default:
		secs := years * yearS
		switch {
		case secs >= 2*day:
			return fmt.Sprintf("%.0f days", secs/day)
		case secs >= 2*hour:
			return fmt.Sprintf("%.0f hours", secs/hour)
		case secs >= 2*minute:
			return fmt.Sprintf("%.0f mins", secs/minute)
		case secs >= 1:
			return fmt.Sprintf("%.0f sec", secs)
		default:
			return "< 1 sec"
		}
	}
}
