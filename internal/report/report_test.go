package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table T", "Scheme", "TRH*")
	tb.AddRow("PrIDE", 3830.0)
	tb.AddRow("PARA-DRFM", 17000.0)
	out := tb.String()
	if !strings.Contains(out, "Table T") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "PrIDE") || !strings.Contains(out, "3830") {
		t.Fatalf("row content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// All table lines are equally wide (aligned columns).
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("misaligned line %q (want width %d)", l, width)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	tb.CSV(&sb)
	got := sb.String()
	if !strings.Contains(got, `"with,comma"`) {
		t.Fatalf("comma not quoted: %q", got)
	}
	if !strings.Contains(got, `"with""quote"`) {
		t.Fatalf("quote not escaped: %q", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("headers missing: %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3830:   "3830",
		0.5:    "0.500",
		1.6:    "1.600",
		0.0001: "1.00e-04",
		0:      "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatTTFYears(t *testing.T) {
	const year = 1.0
	const sec = year / (365.25 * 24 * 3600)
	cases := []struct {
		years float64
		want  string
	}{
		{2e6, "> 1 Mln years"},
		{2936, "2936 years"},
		{36, "36 years"},
		{153.0 / 365.25, "153 days"},
		{32 * 60 * sec, "32 mins"},
		{23 * sec, "23 sec"},
		{0.4 * sec, "< 1 sec"},
		{140, "140 years"},
	}
	for _, c := range cases {
		if got := FormatTTFYears(c.years); got != c.want {
			t.Errorf("FormatTTFYears(%v) = %q, want %q", c.years, got, c.want)
		}
	}
}
