// Package corpus defines the committed attack-corpus format and its replay
// verification — the paper's Section VII-F security claim turned into a
// regression suite.
//
// A corpus entry is a pair of files sharing a base name:
//
//	<name>.trace  — the best-found attack pattern, in the patterns trace
//	               format (replayable bit-identically)
//	<name>.json   — a sidecar recording the tracker it was found against,
//	               the exact evaluation seed, the search configuration that
//	               produced it, the disturbance it achieved, and the
//	               tolerance the replay is held to
//
// Replay re-runs the trace against a freshly-constructed tracker under the
// recorded seed. Because the whole simulator is deterministic, today's
// replay reproduces the recorded disturbance exactly; the tolerance exists
// so that legitimate future simulator changes (a timing-model refinement, a
// tracker bug fix) shift numbers without tripping the suite, while real
// security regressions — a tracker change that suddenly lets a committed
// attack through, or cripples one that used to climb — fail loudly.
//
// Entries carry a class:
//
//   - ClassBounded: the replayed disturbance must stay at or below the
//     analytic PrIDE bound TRH*. PrIDE and its RFM co-designs are here by
//     design (pattern-obliviousness); some baselines land here empirically
//     (see their notes).
//   - ClassClimbing: the replayed disturbance must exceed TRH* — the
//     counter-based tracker's worst case is pattern-shaped, and this entry
//     is the proof. Weakening the committed attack (or "improving" the
//     tracker into un-attackability without explanation) breaks the build.
package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/patterns"
	"pride/internal/sim"
)

// Class partitions corpus entries by the security claim their replay
// asserts against the analytic PrIDE bound.
type Class string

const (
	// ClassBounded entries must replay at or below the analytic TRH*.
	ClassBounded Class = "bounded"
	// ClassClimbing entries must replay above the analytic TRH*.
	ClassClimbing Class = "climbing"
)

// DefaultTolerance is the relative tolerance replays are held to when a
// sidecar does not specify one.
const DefaultTolerance = 0.10

// Sidecar is the JSON metadata committed alongside each trace. Every field
// the replay needs is explicit — a sidecar plus its trace is a complete,
// self-describing experiment.
type Sidecar struct {
	// Scheme names the tracker the attack was found against; it must
	// resolve via sim.SchemeByName.
	Scheme string `json:"scheme"`
	// Class is the security claim the replay asserts.
	Class Class `json:"class"`
	// Seed is the simulation seed the disturbance was measured under.
	Seed uint64 `json:"seed"`
	// ACTs is the trial length in demand activations.
	ACTs int `json:"acts"`
	// RowsPerBank / RowBits override the DDR5 defaults, pinning the
	// address space the trace's rows live in.
	RowsPerBank int `json:"rows_per_bank"`
	RowBits     int `json:"row_bits"`
	// Engine is the evaluation engine ("exact" or "event").
	Engine string `json:"engine"`
	// The island-search configuration that produced the entry, recorded for
	// reproducibility (regenerating with these settings and the campaign
	// seed below rediscovers an equally-strong attack).
	Islands      int    `json:"islands"`
	Population   int    `json:"population"`
	Generations  int    `json:"generations"`
	MigrateEvery int    `json:"migrate_every"`
	MaxPairs     int    `json:"max_pairs"`
	CampaignSeed uint64 `json:"campaign_seed"`
	// ExpectedDisturbance is the max disturbance the search measured;
	// replay must land within Tolerance of it.
	ExpectedDisturbance int `json:"expected_disturbance"`
	// Tolerance is the relative replay tolerance; 0 selects
	// DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Note is free-form context (e.g. documented deviations).
	Note string `json:"note,omitempty"`
}

// Validate checks the sidecar for internal consistency, returning an
// actionable error naming the offending field.
func (s Sidecar) Validate() error {
	if _, err := sim.SchemeByName(s.Scheme); err != nil {
		return fmt.Errorf("corpus: sidecar field scheme: %w", err)
	}
	switch s.Class {
	case ClassBounded, ClassClimbing:
	default:
		return fmt.Errorf("corpus: sidecar field class: unknown class %q (want %q or %q)",
			s.Class, ClassBounded, ClassClimbing)
	}
	if s.ACTs < 1 {
		return fmt.Errorf("corpus: sidecar field acts: must be >= 1, got %d", s.ACTs)
	}
	if s.RowsPerBank < 1 {
		return fmt.Errorf("corpus: sidecar field rows_per_bank: must be >= 1, got %d", s.RowsPerBank)
	}
	if s.RowBits < 1 || 1<<s.RowBits < s.RowsPerBank {
		return fmt.Errorf("corpus: sidecar field row_bits: %d bits cannot address %d rows", s.RowBits, s.RowsPerBank)
	}
	if _, err := engine.Parse(s.Engine); err != nil {
		return fmt.Errorf("corpus: sidecar field engine: %w", err)
	}
	if s.ExpectedDisturbance < 1 {
		return fmt.Errorf("corpus: sidecar field expected_disturbance: must be >= 1, got %d", s.ExpectedDisturbance)
	}
	if math.IsNaN(s.Tolerance) || math.IsInf(s.Tolerance, 0) {
		return fmt.Errorf("corpus: sidecar field tolerance: must be a finite fraction, got %v", s.Tolerance)
	}
	if s.Tolerance < 0 || s.Tolerance >= 1 {
		return fmt.Errorf("corpus: sidecar field tolerance: must be in [0, 1), got %v", s.Tolerance)
	}
	return nil
}

// tolerance returns the effective relative tolerance.
func (s Sidecar) tolerance() float64 {
	if s.Tolerance == 0 {
		return DefaultTolerance
	}
	return s.Tolerance
}

// Params returns the DRAM parameter set the entry was measured under: the
// DDR5 defaults with the sidecar's address-space overrides.
func (s Sidecar) Params() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = s.RowsPerBank
	p.RowBits = s.RowBits
	return p
}

// Bound returns the analytic PrIDE bound TRH* for the entry's parameters —
// the line ClassBounded entries must stay under and ClassClimbing entries
// must exceed.
func (s Sidecar) Bound() float64 {
	return analytic.EvaluateScheme(analytic.SchemePrIDE, s.Params(), analytic.DefaultTargetTTFYears).TRHStar
}

// ReadSidecar decodes and validates a sidecar. Unknown fields are rejected:
// a typo in a hand-edited sidecar must fail loudly, not silently change the
// replayed experiment.
func ReadSidecar(data []byte) (Sidecar, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Sidecar
	if err := dec.Decode(&s); err != nil {
		return Sidecar{}, fmt.Errorf("corpus: decoding sidecar: %w", err)
	}
	// A second document in the same file is corruption, not data.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return Sidecar{}, fmt.Errorf("corpus: decoding sidecar: trailing data after the JSON object")
	}
	if err := s.Validate(); err != nil {
		return Sidecar{}, err
	}
	return s, nil
}

// MarshalSidecar encodes a validated sidecar in the committed format
// (indented, trailing newline — diff-friendly).
func MarshalSidecar(s Sidecar) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Entry is one loaded corpus entry.
type Entry struct {
	// Name is the shared base name of the trace/sidecar pair.
	Name    string
	Sidecar Sidecar
	Pattern *patterns.Pattern
}

// Slug converts a scheme name into a corpus file base name: lower-case,
// with path- and shell-hostile characters mapped to '-'.
func Slug(scheme string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(scheme) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// WriteEntry persists a trace/sidecar pair under dir, using Slug(scheme) as
// the base name, and returns the base name. The sidecar is validated and
// the pattern's rows are checked against the sidecar's address space, so a
// committed entry is replayable by construction.
func WriteEntry(dir string, s Sidecar, p *patterns.Pattern) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	for _, row := range p.Sequence {
		if row < 0 || row >= s.RowsPerBank {
			return "", fmt.Errorf("corpus: pattern accesses row %d outside the sidecar's %d-row bank", row, s.RowsPerBank)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := Slug(s.Scheme)
	var trace bytes.Buffer
	if err := patterns.WriteTrace(&trace, p); err != nil {
		return "", err
	}
	side, err := MarshalSidecar(s)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".trace"), trace.Bytes(), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), side, 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// Load reads every trace/sidecar pair in dir, sorted by name. A sidecar
// without its trace (or vice versa) is an error — a half-committed entry
// must not silently shrink the regression suite.
func Load(dir string) ([]Entry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: reading %s: %w", dir, err)
	}
	traces := map[string]bool{}
	var names []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		switch filepath.Ext(de.Name()) {
		case ".trace":
			traces[strings.TrimSuffix(de.Name(), ".trace")] = true
		case ".json":
			names = append(names, strings.TrimSuffix(de.Name(), ".json"))
		}
	}
	sort.Strings(names)
	var entries []Entry
	for _, name := range names {
		if !traces[name] {
			return nil, fmt.Errorf("corpus: %s/%s.json has no matching %s.trace", dir, name, name)
		}
		delete(traces, name)
		e, err := loadEntry(dir, name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	for name := range traces {
		return nil, fmt.Errorf("corpus: %s/%s.trace has no matching %s.json", dir, name, name)
	}
	return entries, nil
}

func loadEntry(dir, name string) (Entry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		return Entry{}, err
	}
	side, err := ReadSidecar(raw)
	if err != nil {
		return Entry{}, fmt.Errorf("%s/%s.json: %w", dir, name, err)
	}
	tf, err := os.Open(filepath.Join(dir, name+".trace"))
	if err != nil {
		return Entry{}, err
	}
	defer tf.Close()
	pat, err := patterns.ReadTrace(tf)
	if err != nil {
		return Entry{}, fmt.Errorf("%s/%s.trace: %w", dir, name, err)
	}
	return Entry{Name: name, Sidecar: side, Pattern: pat}, nil
}

// Replay re-runs the entry's trace against a fresh instance of its tracker
// under the recorded seed and engine, returning the measured max
// disturbance.
func (e Entry) Replay() (int, error) {
	scheme, err := sim.SchemeByName(e.Sidecar.Scheme)
	if err != nil {
		return 0, err
	}
	eng, err := engine.Parse(e.Sidecar.Engine)
	if err != nil {
		return 0, err
	}
	cfg := sim.AttackConfig{Params: e.Sidecar.Params(), ACTs: e.Sidecar.ACTs}
	res := sim.RunAttackEngine(cfg, scheme, e.Pattern, e.Sidecar.Seed, eng)
	return res.MaxDisturbance, nil
}

// Verify replays the entry and asserts the committed security claim: the
// measured disturbance is within tolerance of the recorded one, and on the
// recorded side of the analytic bound. It returns the measured disturbance
// so callers can make cross-entry assertions (climbing > PrIDE's measured).
func (e Entry) Verify() (int, error) {
	measured, err := e.Replay()
	if err != nil {
		return 0, err
	}
	s := e.Sidecar
	tol := s.tolerance()
	if diff := math.Abs(float64(measured - s.ExpectedDisturbance)); diff > tol*float64(s.ExpectedDisturbance) {
		allowed := tol * float64(s.ExpectedDisturbance)
		return measured, fmt.Errorf("corpus: %s: replayed disturbance %d deviates from committed %d by %.0f (%.1f%%), beyond the allowed ±%.0f (%.0f%%) — the simulator or the %s tracker changed behaviour; investigate before regenerating the corpus",
			e.Name, measured, s.ExpectedDisturbance, diff,
			100*diff/float64(s.ExpectedDisturbance), allowed, tol*100, s.Scheme)
	}
	bound := s.Bound()
	switch s.Class {
	case ClassBounded:
		if float64(measured) > bound {
			return measured, fmt.Errorf("corpus: %s: replayed disturbance %d exceeds the analytic bound %.1f — the committed attack now breaks %s",
				e.Name, measured, bound, s.Scheme)
		}
	case ClassClimbing:
		if float64(measured) <= bound {
			return measured, fmt.Errorf("corpus: %s: replayed disturbance %d no longer exceeds the analytic bound %.1f — the committed attack against %s has been neutralised; if the tracker change is intentional, regenerate the corpus and explain in the entry note",
				e.Name, measured, bound, s.Scheme)
		}
	}
	return measured, nil
}
