package corpus

import (
	"testing"
)

// FuzzReadSidecar throws arbitrary byte soup at the sidecar parser — the
// companion of patterns.FuzzReadTrace for the other half of a corpus entry.
// The parser must never panic, and whenever it accepts an input, the parsed
// sidecar must be valid and survive a MarshalSidecar/ReadSidecar round trip
// unchanged — the property that makes a committed entry self-describing.
func FuzzReadSidecar(f *testing.F) {
	valid, err := MarshalSidecar(Sidecar{
		Scheme: "PrIDE", Class: ClassBounded, Seed: 1, ACTs: 100,
		RowsPerBank: 64, RowBits: 6, Engine: "event",
		Islands: 2, Population: 3, Generations: 4, MigrateEvery: 2, MaxPairs: 8,
		CampaignSeed: 9, ExpectedDisturbance: 10, Tolerance: 0.2, Note: "seed",
	})
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		string(valid),
		"",
		"{}",
		"null",
		"[]",
		`{"scheme":"PrIDE"}`,
		`{"scheme":"TRR","class":"climbing","seed":2,"acts":650000,"rows_per_bank":8192,"row_bits":13,"engine":"event","expected_disturbance":7000}`,
		`{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":NaN}`,
		`{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5,"tolerance":1e308}`,
		`{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5,"extra":true}`,
		`{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5}{"trailing":1}`,
		`{"scheme":"PrIDE","class":"bounded","acts":-1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5}`,
		`{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":400,"engine":"event","expected_disturbance":5}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSidecar(data)
		if err != nil {
			return
		}
		// Accepted sidecars must uphold the parser's documented guarantees.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted sidecar fails Validate: %v", err)
		}
		out, err := MarshalSidecar(s)
		if err != nil {
			t.Fatalf("serializing an accepted sidecar failed: %v", err)
		}
		back, err := ReadSidecar(out)
		if err != nil {
			t.Fatalf("re-reading a written sidecar failed: %v\nsidecar:\n%s", err, out)
		}
		if back != s {
			t.Fatalf("sidecar changed across round trip:\n%+v\nvs\n%+v", s, back)
		}
		// RowBits validated against RowsPerBank means the shift below cannot
		// overflow into nonsense for accepted inputs.
		if s.RowBits > 62 {
			t.Fatalf("accepted sidecar has absurd row_bits %d", s.RowBits)
		}
	})
}
