package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/patterns"
)

func validSidecar() Sidecar {
	return Sidecar{
		Scheme:              "PrIDE",
		Class:               ClassBounded,
		Seed:                12345,
		ACTs:                60_000,
		RowsPerBank:         4096,
		RowBits:             12,
		Engine:              "event",
		Islands:             3,
		Population:          4,
		Generations:         6,
		MigrateEvery:        2,
		MaxPairs:            8,
		CampaignSeed:        42,
		ExpectedDisturbance: 900,
	}
}

func validPattern() *patterns.Pattern {
	return &patterns.Pattern{
		Name:       "blacksmith(test)",
		Aggressors: []int{1000, 1002},
		Sequence:   []int{1000, 1002, 1000, 1002, 2000},
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	s := validSidecar()
	s.Tolerance = 0.25
	s.Note = "round trip"
	raw, err := MarshalSidecar(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSidecar(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("sidecar changed across round trip:\n%+v\nvs\n%+v", s, got)
	}
}

func TestReadSidecarRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Sidecar)
		raw     string // when non-empty, used verbatim instead of a mutated sidecar
		wantErr string
	}{
		{
			name:    "missing scheme",
			mutate:  func(s *Sidecar) { s.Scheme = "" },
			wantErr: "scheme",
		},
		{
			name:    "wrong scheme name",
			mutate:  func(s *Sidecar) { s.Scheme = "PrlDE" },
			wantErr: `unknown scheme "PrlDE"`,
		},
		{
			name:    "unknown class",
			mutate:  func(s *Sidecar) { s.Class = "plateauing" },
			wantErr: "class",
		},
		{
			name:    "missing class",
			mutate:  func(s *Sidecar) { s.Class = "" },
			wantErr: "class",
		},
		{
			name:    "zero acts",
			mutate:  func(s *Sidecar) { s.ACTs = 0 },
			wantErr: "acts",
		},
		{
			name:    "missing geometry",
			mutate:  func(s *Sidecar) { s.RowsPerBank = 0 },
			wantErr: "rows_per_bank",
		},
		{
			name:    "row bits cannot address rows",
			mutate:  func(s *Sidecar) { s.RowBits = 4 },
			wantErr: "row_bits",
		},
		{
			name:    "unknown engine",
			mutate:  func(s *Sidecar) { s.Engine = "quantum" },
			wantErr: "engine",
		},
		{
			name:    "missing expected disturbance",
			mutate:  func(s *Sidecar) { s.ExpectedDisturbance = 0 },
			wantErr: "expected_disturbance",
		},
		{
			name:    "negative tolerance",
			mutate:  func(s *Sidecar) { s.Tolerance = -0.1 },
			wantErr: "tolerance",
		},
		{
			name:    "tolerance of one swallows any regression",
			mutate:  func(s *Sidecar) { s.Tolerance = 1.0 },
			wantErr: "tolerance",
		},
		{
			name:    "NaN disturbance",
			raw:     `{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":NaN}`,
			wantErr: "decoding sidecar",
		},
		{
			name:    "NaN tolerance",
			raw:     `{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5,"tolerance":NaN}`,
			wantErr: "decoding sidecar",
		},
		{
			name:    "unknown field",
			raw:     `{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5,"tollerance":0.2}`,
			wantErr: "tollerance",
		},
		{
			name:    "trailing garbage",
			raw:     `{"scheme":"PrIDE","class":"bounded","acts":1,"rows_per_bank":16,"row_bits":4,"engine":"event","expected_disturbance":5}{"again":true}`,
			wantErr: "trailing data",
		},
		{
			name:    "not json at all",
			raw:     "name: trace\nseq: 1 2 3\n",
			wantErr: "decoding sidecar",
		},
		{
			name:    "empty file",
			raw:     "",
			wantErr: "decoding sidecar",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := []byte(tc.raw)
			if tc.raw == "" && tc.mutate != nil {
				s := validSidecar()
				tc.mutate(&s)
				var err error
				raw, err = marshalUnvalidated(s)
				if err != nil {
					t.Fatal(err)
				}
			}
			_, err := ReadSidecar(raw)
			if err == nil {
				t.Fatalf("corrupted sidecar accepted: %s", raw)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// marshalUnvalidated encodes a sidecar without MarshalSidecar's validation,
// so the corruption table can exercise ReadSidecar's checks.
func marshalUnvalidated(s Sidecar) ([]byte, error) {
	return json.Marshal(s)
}

func TestWriteEntryLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := validSidecar()
	name, err := WriteEntry(dir, s, validPattern())
	if err != nil {
		t.Fatal(err)
	}
	if name != "pride" {
		t.Fatalf("entry name = %q, want pride", name)
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Name != "pride" || e.Sidecar != s {
		t.Fatalf("entry changed across write/load: %+v", e)
	}
	want := validPattern()
	if e.Pattern.Name != want.Name || len(e.Pattern.Sequence) != len(want.Sequence) {
		t.Fatalf("pattern changed across write/load: %+v", e.Pattern)
	}
	for i, row := range want.Sequence {
		if e.Pattern.Sequence[i] != row {
			t.Fatalf("sequence[%d] = %d, want %d", i, e.Pattern.Sequence[i], row)
		}
	}
}

func TestWriteEntryRejectsOutOfRangeRows(t *testing.T) {
	s := validSidecar()
	p := validPattern()
	p.Sequence = append(p.Sequence, s.RowsPerBank)
	if _, err := WriteEntry(t.TempDir(), s, p); err == nil {
		t.Fatal("pattern with out-of-range row accepted")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"PrIDE":       "pride",
		"PrIDE+RFM40": "pride-rfm40",
		"PARA-MC":     "para-mc",
		"TRR":         "trr",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Fatalf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadRejectsHalfCommittedEntries(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteEntry(dir, validSidecar(), validPattern()); err != nil {
		t.Fatal(err)
	}

	// Sidecar without trace.
	if err := os.Rename(filepath.Join(dir, "pride.trace"), filepath.Join(dir, "pride.trace.bak")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "no matching") {
		t.Fatalf("sidecar without trace: err = %v", err)
	}
	if err := os.Rename(filepath.Join(dir, "pride.trace.bak"), filepath.Join(dir, "pride.trace")); err != nil {
		t.Fatal(err)
	}

	// Trace without sidecar.
	if err := os.Remove(filepath.Join(dir, "pride.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "no matching") {
		t.Fatalf("trace without sidecar: err = %v", err)
	}
}

func TestVerifyCatchesTamperedExpectation(t *testing.T) {
	// A small, fast end-to-end check of the regression logic itself: replay
	// an entry whose committed expectation was tampered with.
	dir := t.TempDir()
	s := validSidecar()
	s.ACTs = 5_000
	name, err := WriteEntry(dir, s, validPattern())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := entries[0].Replay()
	if err != nil {
		t.Fatal(err)
	}
	if measured < 1 {
		t.Fatalf("replay measured %d, want a positive disturbance", measured)
	}

	// Re-commit with the true measurement: Verify passes.
	s.ExpectedDisturbance = measured
	if _, err := WriteEntry(dir, s, validPattern()); err != nil {
		t.Fatal(err)
	}
	entries, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entries[0].Verify(); err != nil {
		t.Fatalf("honest entry failed verification: %v (name %s)", err, name)
	}

	// Tamper: an expectation 3x the truth must fail, and the message must
	// name the entry, the actual delta, and the allowed band so a failing CI
	// replay is diagnosable without rerunning locally.
	s.ExpectedDisturbance = 3 * measured
	if _, err := WriteEntry(dir, s, validPattern()); err != nil {
		t.Fatal(err)
	}
	entries, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = entries[0].Verify()
	if err == nil {
		t.Fatal("tampered expectation passed verification")
	}
	delta := float64(s.ExpectedDisturbance - measured)
	for _, want := range []string{
		entries[0].Name,
		fmt.Sprintf("deviates from committed %d by %.0f", s.ExpectedDisturbance, delta),
		"allowed ±",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("verify error missing %q:\n%v", want, err)
		}
	}
}
