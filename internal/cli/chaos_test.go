package cli

import (
	"context"
	"flag"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"pride/internal/faultinject"
	"pride/internal/trialrunner"
)

func TestRetryPolicyMapping(t *testing.T) {
	if p := (CampaignFlags{}).RetryPolicy(); p != (trialrunner.RetryPolicy{}) {
		t.Fatalf("zero flags produced policy %+v", p)
	}
	p := CampaignFlags{TrialRetries: 2, TrialDeadline: 30 * time.Second}.RetryPolicy()
	if p.Attempts != 3 {
		t.Fatalf("2 retries mapped to %d attempts, want 3 (1 initial + 2 retries)", p.Attempts)
	}
	if p.Deadline != 30*time.Second {
		t.Fatalf("deadline = %v", p.Deadline)
	}
}

func TestInjectorParsesChaosSpec(t *testing.T) {
	inj, err := CampaignFlags{}.Injector()
	if err != nil || inj != nil {
		t.Fatalf("disabled chaos returned (%v, %v)", inj, err)
	}

	c := CampaignFlags{Chaos: "checkpoint.write:nth=2,kind=shortwrite;trial.panic:nth=1,kind=panic", ChaosSeed: 7}
	inj, err = c.Injector()
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatal("armed chaos returned nil injector")
	}
	// The spec round-trips through the injector, so -chaos values are
	// reproducible from logs.
	s := inj.String()
	for _, want := range []string{"checkpoint.write", "trial.panic", "nth=2", "kind=shortwrite"} {
		if !strings.Contains(s, want) {
			t.Fatalf("injector spec %q lost %q", s, want)
		}
	}

	if _, err := (CampaignFlags{Chaos: "trial.panic:nth=bogus"}).Injector(); err == nil {
		t.Fatal("malformed -chaos spec parsed without error")
	} else if !strings.Contains(err.Error(), "-chaos") {
		t.Fatalf("parse error does not name the flag: %v", err)
	}
}

func TestChaosContextDisabledReturnsUntypedNil(t *testing.T) {
	ctx := context.Background()
	got, stop, faults, err := CampaignFlags{}.ChaosContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if got != ctx {
		t.Fatal("disabled chaos replaced the context")
	}
	// Faults must be an UNTYPED nil: campaigns fast-path on Faults == nil,
	// and a typed-nil *Injector inside the interface would defeat it.
	if faults != nil {
		t.Fatalf("disabled chaos returned non-nil Faults %T", faults)
	}
}

func TestChaosContextBindsCancelSite(t *testing.T) {
	c := CampaignFlags{Chaos: "trial.cancel:nth=1", ChaosSeed: 1}
	ctx, stop, faults, err := c.ChaosContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if faults == nil {
		t.Fatal("armed chaos returned nil Faults")
	}
	inj, ok := faults.(*faultinject.Injector)
	if !ok {
		t.Fatalf("Faults is %T, want *faultinject.Injector", faults)
	}
	// Firing the cancel site must cancel the derived context — the injected
	// stand-in for a mid-campaign SIGINT.
	inj.TrialFault(0, 0)
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("trial.cancel fired but the chaos context never cancelled")
	}

	if _, _, _, err := (CampaignFlags{Chaos: "::"}).ChaosContext(context.Background()); err == nil {
		t.Fatal("malformed spec did not surface through ChaosContext")
	}
}

func TestCheckpointAtCarriesForceFresh(t *testing.T) {
	c := CampaignFlags{Checkpoint: "/tmp/run.ckpt", CheckpointForce: true}
	if cp := c.CheckpointAt("fig8"); !cp.ForceFresh {
		t.Fatal("-checkpoint-force not threaded into the section checkpoint")
	}
	if cp := (CampaignFlags{CheckpointForce: true}).CheckpointAt("fig8"); cp.ForceFresh {
		t.Fatal("disabled checkpoint carries ForceFresh")
	}
}

func TestRegisterInstallsResilienceFlags(t *testing.T) {
	var c CampaignFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{
		"-selfcheck",
		"-checkpoint-force",
		"-trial-retries", "2",
		"-trial-deadline", "45s",
		"-chaos", "trial.err:prob=0.1",
		"-chaos-seed", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.SelfCheck || !c.CheckpointForce || c.TrialRetries != 2 ||
		c.TrialDeadline != 45*time.Second || c.Chaos != "trial.err:prob=0.1" || c.ChaosSeed != 9 {
		t.Fatalf("parsed %+v", c)
	}
}

// TestSignalContextCancelsOnSIGTERM pins the satellite contract: SIGTERM
// (the signal a container runtime or batch scheduler sends) drains a
// campaign exactly like SIGINT instead of killing the process mid-write.
func TestSignalContextCancelsOnSIGTERM(t *testing.T) {
	ctx, cancel := SignalContext()
	defer cancel()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
}
