package cli

import (
	"context"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"pride/internal/engine"
	"pride/internal/trialrunner"
)

func TestCheckpointAtDerivesPerSectionPaths(t *testing.T) {
	c := CampaignFlags{Checkpoint: "/tmp/run.ckpt"}
	if got := c.CheckpointAt("fig15-PrIDE+RFM 40").Path; got != "/tmp/run.ckpt.fig15-PrIDE-RFM-40" {
		t.Fatalf("sanitized section path = %q", got)
	}
	if got := c.CheckpointAt("").Path; got != "/tmp/run.ckpt" {
		t.Fatalf("empty section path = %q", got)
	}
	if cp := (CampaignFlags{}).CheckpointAt("fig8"); cp.Path != "" {
		t.Fatalf("disabled flags produced checkpoint %q", cp.Path)
	}
}

func TestRegisterInstallsFlags(t *testing.T) {
	var c CampaignFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	if c.Engine.Kind != engine.Event {
		t.Fatalf("default engine %v, want event", c.Engine.Kind)
	}
	if err := fs.Parse([]string{"-checkpoint", "base", "-progress-every", "250ms", "-engine", "exact"}); err != nil {
		t.Fatal(err)
	}
	if c.Checkpoint != "base" || c.ProgressEvery != 250*time.Millisecond {
		t.Fatalf("parsed %+v", c)
	}
	if c.Engine.Kind != engine.Exact {
		t.Fatalf("-engine exact parsed to %v", c.Engine.Kind)
	}

	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{})
	c = CampaignFlags{}
	c.Register(fs)
	if err := fs.Parse([]string{"-engine", "warp"}); err == nil {
		t.Fatal("-engine warp parsed without error")
	}
}

func TestFailureCodeMapping(t *testing.T) {
	var errOut strings.Builder
	pe := &trialrunner.PanicError{Trial: 3, Value: "boom", Stack: []byte("goroutine 1\n")}
	if code := FailureCode(pe, "", &errOut); code != ExitError {
		t.Fatalf("panic exit code %d", code)
	}
	if !strings.Contains(errOut.String(), "goroutine 1") {
		t.Fatalf("panic stack not shown: %q", errOut.String())
	}

	errOut.Reset()
	if code := FailureCode(context.Canceled, "base", &errOut); code != ExitInterrupted {
		t.Fatalf("cancel exit code %d", code)
	}
	if !strings.Contains(errOut.String(), "-checkpoint base") {
		t.Fatalf("no resume hint: %q", errOut.String())
	}

	errOut.Reset()
	if code := FailureCode(errors.New("disk full"), "", &errOut); code != ExitError {
		t.Fatalf("plain error exit code %d", code)
	}
}

func TestStartCampaignReportsAndStops(t *testing.T) {
	c := CampaignFlags{ProgressEvery: time.Millisecond}
	var errOut strings.Builder
	camp, stop := c.StartCampaign(context.Background(), "unit", 4, 2, &errOut)
	camp.TrialStart(0)
	camp.TrialEnd(0, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	if !strings.Contains(errOut.String(), "progress campaign=unit") {
		t.Fatalf("no progress line emitted: %q", errOut.String())
	}
}
