// Package cli carries the campaign plumbing shared by the pride commands:
// the signal-aware run context, the -checkpoint and -progress-every flags,
// the obs.Campaign reporter lifecycle, and the mapping from campaign errors
// to process exit codes.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pride/internal/engine"
	"pride/internal/faultinject"
	"pride/internal/obs"
	"pride/internal/trialrunner"
)

// Exit codes beyond the flag-parse convention (2): ExitInterrupted is the
// shell convention for a SIGINT death (128 + signal 2), ExitError covers
// every other campaign failure (panicked trials, checkpoint I/O).
const (
	ExitError       = 1
	ExitInterrupted = 130
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM. The first
// signal triggers the campaigns' graceful drain (in-flight trials finish and
// land in the checkpoint); a second signal kills the process the usual way.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// CampaignFlags holds the shared durability/observability flag values.
type CampaignFlags struct {
	// Checkpoint is the checkpoint base path ("" disables). Sections of a
	// multi-section run each derive their own file from it (CheckpointAt).
	Checkpoint string
	// ProgressEvery is the progress-line cadence (0 disables).
	ProgressEvery time.Duration
	// Engine selects the simulation engine for stochastic sections. The
	// commands default to engine.Event (geometric skip-ahead); -engine=exact
	// selects the per-ACT reference oracle. Checkpoint keys embed the
	// engine, so a run checkpointed under one engine never resumes under
	// the other.
	Engine engine.Value
	// SelfCheck enables runtime invariant guards in the simulation engines;
	// an event-engine trial whose guard trips re-runs on the exact engine.
	SelfCheck bool
	// CheckpointForce archives a stale checkpoint (key mismatch) aside and
	// starts fresh instead of refusing to run.
	CheckpointForce bool
	// TrialRetries is how many times a panicked/errored trial is retried
	// before being quarantined (0 keeps single-attempt semantics).
	TrialRetries int
	// TrialDeadline, when > 0, fails any trial running longer than it.
	TrialDeadline time.Duration
	// Chaos is the fault-injection schedule spec ("" disables); see
	// faultinject.Parse. ChaosSeed seeds its deterministic streams.
	Chaos     string
	ChaosSeed uint64
}

// Register installs the -checkpoint, -progress-every and -engine flags on fs.
func (c *CampaignFlags) Register(fs *flag.FlagSet) {
	c.Engine.Kind = engine.Event
	fs.Var(&c.Engine, "engine",
		`simulation engine: "event" (geometric skip-ahead) or "exact" (per-ACT reference; bit-compatible with pre-engine checkpoints)`)
	fs.BoolVar(&c.SelfCheck, "selfcheck", false,
		"enable runtime invariant guards; an event-engine trial whose guard trips re-runs on the exact engine")
	c.registerDurability(fs)
}

// RegisterNoEngine installs the campaign flags for commands whose
// computation is inherently exact — trace replay consumes one record per
// demand ACT, so there is no stochastic engine to select and no -engine
// flag to mis-set. -selfcheck keeps its guard-only meaning (there is no
// event engine to fall back from).
func (c *CampaignFlags) RegisterNoEngine(fs *flag.FlagSet) {
	c.Engine.Kind = engine.Exact
	fs.BoolVar(&c.SelfCheck, "selfcheck", false,
		"enable runtime invariant guards in the controllers, banks and trackers")
	c.registerDurability(fs)
}

// registerDurability installs the engine-independent durability and
// observability flags shared by Register and RegisterNoEngine.
func (c *CampaignFlags) registerDurability(fs *flag.FlagSet) {
	fs.StringVar(&c.Checkpoint, "checkpoint", "",
		"checkpoint base path: completed trials are persisted there and an interrupted run resumes from it (\"\" disables)")
	fs.DurationVar(&c.ProgressEvery, "progress-every", 0,
		"emit a structured progress line to stderr at this interval, e.g. 10s (0 disables)")
	fs.BoolVar(&c.CheckpointForce, "checkpoint-force", false,
		"archive a stale checkpoint (key mismatch) to <path>.stale and start fresh instead of failing")
	fs.IntVar(&c.TrialRetries, "trial-retries", 0,
		"retry a panicked/errored trial this many times before quarantining it (0 disables)")
	fs.DurationVar(&c.TrialDeadline, "trial-deadline", 0,
		"fail any trial running longer than this, e.g. 30s (0 disables)")
	fs.StringVar(&c.Chaos, "chaos", "",
		`deterministic fault-injection schedule, e.g. "checkpoint.write:nth=2,kind=shortwrite;trial.panic:nth=1" ("" disables)`)
	fs.Uint64Var(&c.ChaosSeed, "chaos-seed", 1,
		"seed for the -chaos schedule's probabilistic triggers")
}

// RetryPolicy maps the -trial-retries / -trial-deadline flags to the
// trialrunner policy (retries are attempts beyond the first).
func (c CampaignFlags) RetryPolicy() trialrunner.RetryPolicy {
	p := trialrunner.RetryPolicy{Deadline: c.TrialDeadline}
	if c.TrialRetries > 0 {
		p.Attempts = c.TrialRetries + 1
	}
	return p
}

// Injector parses the -chaos schedule into a fault injector, or returns nil
// when chaos is disabled. Callers must assign the result to a campaign's
// Faults field only when it is non-nil (a typed-nil interface would defeat
// the campaigns' Faults == nil fast path).
func (c CampaignFlags) Injector() (*faultinject.Injector, error) {
	if c.Chaos == "" {
		return nil, nil
	}
	inj, err := faultinject.Parse(c.ChaosSeed, c.Chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %w", err)
	}
	return inj, nil
}

// ChaosContext wires the -chaos schedule for a command: it parses the
// injector, binds its trial.cancel site to a context derived from ctx, and
// returns the Faults value to thread into campaign options. When chaos is
// disabled the original context and a nil Faults interface come back (never
// a typed-nil injector), with a no-op stop. Callers must defer stop.
func (c CampaignFlags) ChaosContext(ctx context.Context) (context.Context, context.CancelFunc, trialrunner.TrialFaults, error) {
	inj, err := c.Injector()
	if err != nil || inj == nil {
		return ctx, func() {}, nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	inj.BindCancel(cancel)
	return ctx, cancel, inj, nil
}

// sanitizeSuffix keeps checkpoint-file suffixes filesystem-safe.
func sanitizeSuffix(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// CheckpointAt derives the checkpoint for one section of a run: the base
// path plus a sanitized section suffix, so the sections of a multi-section
// command (one per scheme, per buffer size, per threshold point) never share
// a file. Returns a disabled Checkpoint when no base path is set; the Key is
// left empty for the engine to fill with its canonical experiment key.
func (c CampaignFlags) CheckpointAt(section string) trialrunner.Checkpoint {
	if c.Checkpoint == "" {
		return trialrunner.Checkpoint{}
	}
	path := c.Checkpoint
	if section != "" {
		path += "." + sanitizeSuffix(section)
	}
	return trialrunner.Checkpoint{Path: path, ForceFresh: c.CheckpointForce}
}

// StartCampaign creates an obs.Campaign, publishes it on the expvar surface,
// and — when -progress-every is set — starts its periodic reporter on
// stderr. The returned stop function is idempotent-safe to defer: it halts
// the reporter (blocking until no further line can land), emits one final
// summary line when reporting was enabled, and unpublishes the campaign.
func (c CampaignFlags) StartCampaign(ctx context.Context, name string, trials, workers int, stderr io.Writer) (*obs.Campaign, func()) {
	camp := obs.NewCampaign(name, trials, workers)
	camp.Publish()
	stopReporter := camp.StartReporter(ctx, stderr, c.ProgressEvery)
	return camp, func() {
		stopReporter()
		if c.ProgressEvery > 0 {
			fmt.Fprintln(stderr, camp.Line())
		}
		camp.Unpublish()
	}
}

// FailureCode diagnoses a campaign error on stderr and maps it to an exit
// code: ExitInterrupted for a cancelled run (with a resume hint when a
// checkpoint was kept), ExitError for everything else (the full panic stack
// of a faulty trial included).
func FailureCode(err error, checkpointBase string, stderr io.Writer) int {
	var pe *trialrunner.PanicError
	if errors.As(err, &pe) {
		fmt.Fprintf(stderr, "%v\n%s", err, pe.Stack)
		return ExitError
	}
	if errors.Is(err, context.Canceled) {
		if checkpointBase != "" {
			fmt.Fprintf(stderr, "interrupted: completed trials saved; rerun the same command with -checkpoint %s to resume\n", checkpointBase)
		} else {
			fmt.Fprintln(stderr, "interrupted (rerun with -checkpoint PATH to make runs resumable)")
		}
		return ExitInterrupted
	}
	fmt.Fprintln(stderr, err)
	return ExitError
}
