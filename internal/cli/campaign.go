// Package cli carries the campaign plumbing shared by the pride commands:
// the signal-aware run context, the -checkpoint and -progress-every flags,
// the obs.Campaign reporter lifecycle, and the mapping from campaign errors
// to process exit codes.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pride/internal/engine"
	"pride/internal/obs"
	"pride/internal/trialrunner"
)

// Exit codes beyond the flag-parse convention (2): ExitInterrupted is the
// shell convention for a SIGINT death (128 + signal 2), ExitError covers
// every other campaign failure (panicked trials, checkpoint I/O).
const (
	ExitError       = 1
	ExitInterrupted = 130
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM. The first
// signal triggers the campaigns' graceful drain (in-flight trials finish and
// land in the checkpoint); a second signal kills the process the usual way.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// CampaignFlags holds the shared durability/observability flag values.
type CampaignFlags struct {
	// Checkpoint is the checkpoint base path ("" disables). Sections of a
	// multi-section run each derive their own file from it (CheckpointAt).
	Checkpoint string
	// ProgressEvery is the progress-line cadence (0 disables).
	ProgressEvery time.Duration
	// Engine selects the simulation engine for stochastic sections. The
	// commands default to engine.Event (geometric skip-ahead); -engine=exact
	// selects the per-ACT reference oracle. Checkpoint keys embed the
	// engine, so a run checkpointed under one engine never resumes under
	// the other.
	Engine engine.Value
}

// Register installs the -checkpoint, -progress-every and -engine flags on fs.
func (c *CampaignFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Checkpoint, "checkpoint", "",
		"checkpoint base path: completed trials are persisted there and an interrupted run resumes from it (\"\" disables)")
	fs.DurationVar(&c.ProgressEvery, "progress-every", 0,
		"emit a structured progress line to stderr at this interval, e.g. 10s (0 disables)")
	c.Engine.Kind = engine.Event
	fs.Var(&c.Engine, "engine",
		`simulation engine: "event" (geometric skip-ahead) or "exact" (per-ACT reference; bit-compatible with pre-engine checkpoints)`)
}

// sanitizeSuffix keeps checkpoint-file suffixes filesystem-safe.
func sanitizeSuffix(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// CheckpointAt derives the checkpoint for one section of a run: the base
// path plus a sanitized section suffix, so the sections of a multi-section
// command (one per scheme, per buffer size, per threshold point) never share
// a file. Returns a disabled Checkpoint when no base path is set; the Key is
// left empty for the engine to fill with its canonical experiment key.
func (c CampaignFlags) CheckpointAt(section string) trialrunner.Checkpoint {
	if c.Checkpoint == "" {
		return trialrunner.Checkpoint{}
	}
	path := c.Checkpoint
	if section != "" {
		path += "." + sanitizeSuffix(section)
	}
	return trialrunner.Checkpoint{Path: path}
}

// StartCampaign creates an obs.Campaign, publishes it on the expvar surface,
// and — when -progress-every is set — starts its periodic reporter on
// stderr. The returned stop function is idempotent-safe to defer: it halts
// the reporter (blocking until no further line can land), emits one final
// summary line when reporting was enabled, and unpublishes the campaign.
func (c CampaignFlags) StartCampaign(ctx context.Context, name string, trials, workers int, stderr io.Writer) (*obs.Campaign, func()) {
	camp := obs.NewCampaign(name, trials, workers)
	camp.Publish()
	stopReporter := camp.StartReporter(ctx, stderr, c.ProgressEvery)
	return camp, func() {
		stopReporter()
		if c.ProgressEvery > 0 {
			fmt.Fprintln(stderr, camp.Line())
		}
		camp.Unpublish()
	}
}

// FailureCode diagnoses a campaign error on stderr and maps it to an exit
// code: ExitInterrupted for a cancelled run (with a resume hint when a
// checkpoint was kept), ExitError for everything else (the full panic stack
// of a faulty trial included).
func FailureCode(err error, checkpointBase string, stderr io.Writer) int {
	var pe *trialrunner.PanicError
	if errors.As(err, &pe) {
		fmt.Fprintf(stderr, "%v\n%s", err, pe.Stack)
		return ExitError
	}
	if errors.Is(err, context.Canceled) {
		if checkpointBase != "" {
			fmt.Fprintf(stderr, "interrupted: completed trials saved; rerun the same command with -checkpoint %s to resume\n", checkpointBase)
		} else {
			fmt.Fprintln(stderr, "interrupted (rerun with -checkpoint PATH to make runs resumable)")
		}
		return ExitInterrupted
	}
	fmt.Fprintln(stderr, err)
	return ExitError
}
