package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsRegister(t *testing.T) {
	var p ProfileFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	p.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "cpu.out" || p.MemProfile != "mem.out" {
		t.Fatalf("parsed flags = %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("Enabled() = false with both profiles set")
	}
}

func TestProfileFlagsDisabledIsNoop(t *testing.T) {
	var p ProfileFlags
	if p.Enabled() {
		t.Fatal("zero value reports enabled")
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestProfileFlagsWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	p := ProfileFlags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUProfile, p.MemProfile} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// Idempotent: a deferred second stop after an explicit one is a no-op.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestProfileFlagsBadCPUPathFailsFast(t *testing.T) {
	p := ProfileFlags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if _, err := p.Start(); err == nil {
		t.Fatal("Start succeeded with an unwritable CPU profile path")
	}
}

func TestProfileFlagsBadMemPathSurfacesOnStop(t *testing.T) {
	p := ProfileFlags{MemProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with an unwritable heap profile path")
	}
}
