package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags holds the shared -cpuprofile/-memprofile flag values. The
// profiles are written with runtime/pprof and are directly consumable by
// `go tool pprof`; see EXPERIMENTS.md for the workflow.
type ProfileFlags struct {
	// CPUProfile is the CPU profile output path ("" disables).
	CPUProfile string
	// MemProfile is the heap profile output path ("" disables). The profile
	// is captured on the way out, after a final GC, so it reflects live heap
	// rather than transient garbage.
	MemProfile string
}

// Register installs the -cpuprofile and -memprofile flags on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a CPU profile to this file (\"\" disables)")
	fs.StringVar(&p.MemProfile, "memprofile", "",
		"write a heap profile to this file on exit (\"\" disables)")
}

// Enabled reports whether any profile output was requested.
func (p ProfileFlags) Enabled() bool { return p.CPUProfile != "" || p.MemProfile != "" }

// Start begins CPU profiling when -cpuprofile is set and returns a stop
// function that finishes the CPU profile and, when -memprofile is set,
// captures the heap profile. Stop is idempotent, so it is safe both to defer
// it and to call it explicitly on the success path. With no profiling flags
// set, Start is a no-op returning a no-op stop.
func (p ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cli: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cli: starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("cli: closing CPU profile: %w", err)
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("cli: creating heap profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize the live heap before snapshotting it
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("cli: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("cli: closing heap profile: %w", err)
			}
		}
		return first
	}, nil
}
