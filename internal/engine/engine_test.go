package engine

import (
	"flag"
	"io"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{Exact, Event} {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
		if !k.Valid() {
			t.Fatalf("%v.Valid() = false", k)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	for _, s := range []string{"", "fast", "EXACT", "Event"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted an unknown engine", s)
		}
	}
}

func TestUnknownKindString(t *testing.T) {
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Fatalf("Kind(42).String() = %q", got)
	}
	if Kind(42).Valid() {
		t.Fatal("Kind(42).Valid() = true")
	}
}

func TestValueAsFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	v := Value{Kind: Event}
	fs.Var(&v, "engine", "")
	if err := fs.Parse([]string{"-engine=exact"}); err != nil {
		t.Fatal(err)
	}
	if v.Kind != Exact {
		t.Fatalf("flag parse left kind %v, want Exact", v.Kind)
	}
	if err := v.Set("bogus"); err == nil {
		t.Fatal("Set(bogus) did not error")
	}
	var nilV *Value
	if got := nilV.String(); got != "exact" {
		t.Fatalf("nil Value.String() = %q", got)
	}
}

func TestKeySuffix(t *testing.T) {
	// Exact must render empty so checkpoint keys minted before engines
	// existed keep resuming; Event must be explicit.
	if got := KeySuffix(Exact); got != "" {
		t.Errorf("KeySuffix(Exact) = %q, want empty", got)
	}
	if got := KeySuffix(Event); got != "|engine=event" {
		t.Errorf("KeySuffix(Event) = %q", got)
	}
}
