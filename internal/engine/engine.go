// Package engine names the two simulation engines every stochastic
// experiment in this repository can run on:
//
//   - Exact steps every activation: one RNG draw, one tracker probe, one
//     bank-counter update per ACT. It is the reference oracle — the direct
//     transcription of the paper's methodology — and the baseline the
//     event engine is validated against.
//   - Event advances the simulation clock directly to the next event (a
//     probabilistic insertion, a tREFI/mitigation boundary, an RFM issue,
//     or a pattern phase change) using geometric inter-arrival sampling,
//     turning O(ACTs) work into O(events) work.
//
// The two engines consume different numbers of raw RNG draws, so their
// outputs are not bit-identical under one seed; they simulate the same
// stochastic process, and the cross-validation suites hold their loss,
// disturbance and MTTF distributions to agree within tight confidence
// bounds. Deterministic components (bank hammer accounting, REF/RFM
// cadence) are required to agree ACT-for-ACT.
//
// Checkpoint keys embed the engine kind: a campaign checkpointed under one
// engine never resumes under the other.
package engine

import "fmt"

// Kind selects a simulation engine.
type Kind int

const (
	// Exact is the per-ACT reference engine.
	Exact Kind = iota
	// Event is the event-driven geometric skip-ahead engine.
	Event
)

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Event:
		return "event"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k names a known engine.
func (k Kind) Valid() bool { return k == Exact || k == Event }

// KeySuffix renders the engine component of a canonical checkpoint key:
// empty for Exact — the historical spelling, so checkpoints written before
// engines existed still resume — and "|engine=event" for Event. Every
// campaign key helper appends it, which is what guarantees a campaign never
// resumes across an engine switch.
func KeySuffix(k Kind) string {
	if k == Exact {
		return ""
	}
	return "|engine=" + k.String()
}

// Parse converts a flag spelling into a Kind.
func Parse(s string) (Kind, error) {
	switch s {
	case "exact":
		return Exact, nil
	case "event":
		return Event, nil
	default:
		return Exact, fmt.Errorf(`engine: unknown engine %q (want "exact" or "event")`, s)
	}
}

// Value adapts a Kind to the flag.Value interface so commands can register
// -engine flags without repeating the parse/print plumbing. The zero Value
// selects Exact; initialize with the desired default (the commands default
// to Event, keeping Exact as the documented reference oracle).
type Value struct {
	Kind Kind
}

// String implements flag.Value.
func (v *Value) String() string {
	if v == nil {
		return Exact.String()
	}
	return v.Kind.String()
}

// Set implements flag.Value.
func (v *Value) Set(s string) error {
	k, err := Parse(s)
	if err != nil {
		return err
	}
	v.Kind = k
	return nil
}
