package obs

import (
	"strings"
	"testing"
)

func TestResilienceCountersInSnapshot(t *testing.T) {
	c := NewCampaign("unit", 10, 4)
	c.AddTrialRetries(2)
	c.AddCheckpointRetries(1)
	c.AddEngineFallbacks(3)
	c.AddQuarantined(1)
	s := c.Snapshot()
	if s.TrialRetries != 2 || s.CheckpointRetries != 1 || s.EngineFallbacks != 3 || s.Quarantined != 1 {
		t.Fatalf("resilience snapshot wrong: %+v", s)
	}
}

func TestLineHidesResilienceKeysWhenClean(t *testing.T) {
	c := NewCampaign("unit", 10, 4)
	if line := c.Line(); strings.Contains(line, "trial_retries") {
		t.Fatalf("healthy line carries resilience keys: %q", line)
	}
	// One retry flips the whole resilience group on, so a non-clean run is
	// visible at a glance even when the other counters are still zero.
	c.AddTrialRetries(1)
	line := c.Line()
	for _, want := range []string{"trial_retries=1", "checkpoint_retries=0", "engine_fallbacks=0", "quarantined=0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line missing %q: %q", want, line)
		}
	}
}
