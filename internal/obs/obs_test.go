package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCampaignCountersAndSnapshot(t *testing.T) {
	c := NewCampaign("unit", 10, 4)
	c.TrialStart(0)
	c.TrialEnd(0, 5*time.Millisecond)
	c.TrialStart(1)
	c.AddPeriods(1000)
	c.AddMitigations(12)
	c.AddActivations(79_000)
	c.SkipTrials(3)

	s := c.Snapshot()
	if s.TrialsDone != 1 || s.TrialsTotal != 10 || s.TrialsSkipped != 3 {
		t.Fatalf("trials snapshot wrong: %+v", s)
	}
	if s.ActiveWorkers != 1 {
		t.Fatalf("active workers = %d, want 1", s.ActiveWorkers)
	}
	if s.Periods != 1000 || s.Mitigations != 12 || s.Activations != 79_000 {
		t.Fatalf("counter snapshot wrong: %+v", s)
	}
	if s.TrialsPerSec <= 0 || s.PeriodsPerSec <= 0 {
		t.Fatalf("rates not derived: %+v", s)
	}
	// The test feeds a synthetic 5ms busy duration against microseconds of
	// real elapsed time, so only positivity is meaningful here.
	if s.Utilization <= 0 {
		t.Fatalf("utilization not derived: %v", s.Utilization)
	}
}

func TestCampaignConcurrentUpdates(t *testing.T) {
	c := NewCampaign("race", 1000, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				c.TrialStart(i)
				c.AddPeriods(2)
				c.TrialEnd(i, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.TrialsDone != 1000 || s.Periods != 2000 || s.ActiveWorkers != 0 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestLineFormat(t *testing.T) {
	c := NewCampaign("fig8", 64, 2)
	c.TrialEnd(0, time.Millisecond)
	c.AddPeriods(4096)
	line := c.Line()
	for _, want := range []string{"progress", "campaign=fig8", "trials=1/64", "periods=4096", "util="} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line missing %q:\n%s", want, line)
		}
	}
	// No replay frontend feeding the campaign: no throughput keys, so the
	// non-replay line format is unchanged.
	if strings.Contains(line, "records=") || strings.Contains(line, "mb_per_sec=") {
		t.Fatalf("non-replay line carries replay keys:\n%s", line)
	}
}

func TestReplayThroughputCounters(t *testing.T) {
	c := NewCampaign("replay", 8, 4)
	c.AddRecords(1 << 20)
	c.AddBytes(8 << 20)
	s := c.Snapshot()
	if s.Records != 1<<20 || s.Bytes != 8<<20 {
		t.Fatalf("counters: %+v", s)
	}
	if s.RecordsPerSec <= 0 || s.MBPerSec <= 0 {
		t.Fatalf("throughput rates not derived: %+v", s)
	}
	line := s.Line()
	for _, want := range []string{"records=1048576", "records_per_sec=", "mb_per_sec="} {
		if !strings.Contains(line, want) {
			t.Fatalf("replay line missing %q:\n%s", want, line)
		}
	}
}

func TestExpvarPublication(t *testing.T) {
	c := NewCampaign("published", 5, 1)
	c.Publish()
	defer c.Unpublish()
	c.AddMitigations(7)

	v := expvar.Get("pride.campaigns")
	if v == nil {
		t.Fatal("pride.campaigns not published")
	}
	var got map[string]Snapshot
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar value is not JSON: %v\n%s", err, v.String())
	}
	snap, ok := got["published"]
	if !ok {
		t.Fatalf("campaign missing from expvar map: %v", got)
	}
	if snap.Mitigations != 7 || snap.TrialsTotal != 5 {
		t.Fatalf("expvar snapshot stale: %+v", snap)
	}

	// Latest-wins republication must not panic (expvar.Publish would).
	c2 := NewCampaign("published", 9, 1)
	c2.Publish()
	defer c2.Unpublish()
}

func TestStartReporterEmitsAndStops(t *testing.T) {
	c := NewCampaign("ticker", 3, 1)
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := c.StartReporter(context.Background(), w, 2*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "campaign=ticker") {
		t.Fatalf("reporter emitted nothing useful:\n%q", out)
	}
	// After stop, no further lines.
	mu.Lock()
	n := len(buf.String())
	mu.Unlock()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(buf.String()) != n {
		t.Fatal("reporter kept writing after stop")
	}
}

func TestStartReporterZeroIntervalIsNoop(t *testing.T) {
	c := NewCampaign("off", 1, 1)
	stop := c.StartReporter(context.Background(), writerFunc(func(p []byte) (int, error) {
		t.Error("reporter wrote with interval 0")
		return len(p), nil
	}), 0)
	stop()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestJobCountersAndLineGating(t *testing.T) {
	c := NewCampaign("serve", 0, 1)
	if line := c.Line(); strings.Contains(line, "jobs=") {
		t.Fatalf("job keys on a campaign with no jobs: %q", line)
	}
	c.JobQueued()
	c.JobQueued()
	c.JobStarted()
	c.AddJobRetries(3)
	c.AddCacheHits(1)
	c.AddJobsDrained(1)
	c.JobFinished()
	s := c.Snapshot()
	if s.JobsSubmitted != 2 || s.JobsQueued != 1 || s.JobsRunning != 0 ||
		s.JobRetries != 3 || s.JobsDrained != 1 || s.CacheHits != 1 {
		t.Fatalf("snapshot job counters wrong: %+v", s)
	}
	want := " jobs=2 queued=1 running=0 job_retries=3 drained=1 cache_hits=1"
	if line := s.Line(); !strings.HasSuffix(line, want) {
		t.Fatalf("line %q does not end with %q", line, want)
	}
}
