// Package obs provides lightweight observability for long simulation
// campaigns: lock-free counters a worker pool can bump from any goroutine,
// derived rates (trials/sec, periods/sec, worker utilization), publication
// of every live campaign under one expvar variable, and a periodic
// structured-log progress line.
//
// A Campaign implements trialrunner.Observer (TrialStart/TrialEnd) plus the
// engines' progress sinks (AddPeriods/AddMitigations/AddActivations), so a
// single value threads through the whole stack. Observation is one-way: a
// Campaign never feeds anything back into the simulation, so metering cannot
// perturb the bit-for-bit determinism guarantees.
package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Campaign aggregates the counters of one simulation campaign. All methods
// are safe for concurrent use.
type Campaign struct {
	name    string
	workers int
	start   time.Time

	trialsTotal   atomic.Int64
	trialsDone    atomic.Int64
	trialsSkipped atomic.Int64
	active        atomic.Int64
	busyNanos     atomic.Int64
	periods       atomic.Int64
	mitigations   atomic.Int64
	activations   atomic.Int64
	records       atomic.Int64
	bytes         atomic.Int64

	trialRetries      atomic.Int64
	checkpointRetries atomic.Int64
	engineFallbacks   atomic.Int64
	quarantined       atomic.Int64

	jobsSubmitted atomic.Int64
	jobsQueued    atomic.Int64
	jobsRunning   atomic.Int64
	jobRetries    atomic.Int64
	jobsDrained   atomic.Int64
	cacheHits     atomic.Int64
}

// NewCampaign returns a Campaign named name, expecting totalTrials trials on
// a pool of `workers` goroutines (workers scales the utilization metric;
// pass the -workers value).
func NewCampaign(name string, totalTrials, workers int) *Campaign {
	if workers < 1 {
		workers = 1
	}
	c := &Campaign{name: name, workers: workers, start: time.Now()}
	c.trialsTotal.Store(int64(totalTrials))
	return c
}

// Name returns the campaign name.
func (c *Campaign) Name() string { return c.name }

// TrialStart implements trialrunner.Observer.
func (c *Campaign) TrialStart(int) { c.active.Add(1) }

// TrialEnd implements trialrunner.Observer.
func (c *Campaign) TrialEnd(_ int, d time.Duration) {
	c.active.Add(-1)
	c.trialsDone.Add(1)
	c.busyNanos.Add(int64(d))
}

// SkipTrials records n trials restored from a checkpoint rather than
// executed, so a resumed campaign's progress fraction starts where the
// interrupted run left off.
func (c *Campaign) SkipTrials(n int) { c.trialsSkipped.Add(int64(n)) }

// AddPeriods records n simulated tREFI periods (montecarlo.ProgressSink,
// system.ProgressSink).
func (c *Campaign) AddPeriods(n int64) { c.periods.Add(n) }

// AddMitigations records n mitigations issued.
func (c *Campaign) AddMitigations(n int64) { c.mitigations.Add(n) }

// AddActivations records n simulated demand activations (sim.ProgressSink).
func (c *Campaign) AddActivations(n int64) { c.activations.Add(n) }

// AddRecords records n trace records demuxed by a replay frontend
// (system.ReplaySink).
func (c *Campaign) AddRecords(n int64) { c.records.Add(n) }

// AddBytes records n trace bytes consumed by a replay frontend
// (system.ReplaySink).
func (c *Campaign) AddBytes(n int64) { c.bytes.Add(n) }

// AddTrialRetries records n retried trial attempts (trialrunner's retry
// policy re-executing a panicked/errored trial).
func (c *Campaign) AddTrialRetries(n int64) { c.trialRetries.Add(n) }

// AddCheckpointRetries records n retried checkpoint writes (transient I/O
// errors absorbed by the checkpoint writer's backoff loop).
func (c *Campaign) AddCheckpointRetries(n int64) { c.checkpointRetries.Add(n) }

// AddEngineFallbacks records n trials re-run on the exact reference engine
// after a self-check guard or gap-accounting trip on the event engine.
func (c *Campaign) AddEngineFallbacks(n int64) { c.engineFallbacks.Add(n) }

// AddQuarantined records n trials whose retry budget was exhausted.
func (c *Campaign) AddQuarantined(n int64) { c.quarantined.Add(n) }

// Job-lifecycle counters, bumped by the campaign server daemon. A campaign
// tracking a server's job queue uses JobQueued/JobStarted/JobFinished to keep
// the queued and running gauges consistent; the remaining counters are
// monotone tallies.

// JobQueued records a job accepted onto the queue.
func (c *Campaign) JobQueued() {
	c.jobsSubmitted.Add(1)
	c.jobsQueued.Add(1)
}

// JobStarted records a job moving from the queue to a worker.
func (c *Campaign) JobStarted() {
	c.jobsQueued.Add(-1)
	c.jobsRunning.Add(1)
}

// JobFinished records a running job reaching a terminal state (done, failed,
// or resumable).
func (c *Campaign) JobFinished() { c.jobsRunning.Add(-1) }

// AddJobRetries records n retried job attempts (the server's per-job backoff
// loop re-running a failed job).
func (c *Campaign) AddJobRetries(n int64) { c.jobRetries.Add(n) }

// AddJobsDrained records n in-flight jobs checkpointed and marked resumable
// by a graceful shutdown.
func (c *Campaign) AddJobsDrained(n int64) { c.jobsDrained.Add(n) }

// AddCacheHits records n submissions served from the result cache without
// recompute.
func (c *Campaign) AddCacheHits(n int64) { c.cacheHits.Add(n) }

// Snapshot is a point-in-time view of a campaign with derived rates.
type Snapshot struct {
	Name           string  `json:"name"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TrialsTotal    int64   `json:"trials_total"`
	TrialsDone     int64   `json:"trials_done"`
	TrialsSkipped  int64   `json:"trials_skipped"`
	ActiveWorkers  int64   `json:"active_workers"`
	Periods        int64   `json:"periods"`
	Mitigations    int64   `json:"mitigations"`
	Activations    int64   `json:"activations"`
	// Throughput counters of trace-driven replays: demuxed records and
	// their byte volume. Both zero outside a replay campaign.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Resilience counters: retries absorbed, fallbacks taken, trials given
	// up on. All zero in a healthy undisturbed run.
	TrialRetries      int64 `json:"trial_retries"`
	CheckpointRetries int64 `json:"checkpoint_retries"`
	EngineFallbacks   int64 `json:"engine_fallbacks"`
	Quarantined       int64 `json:"quarantined"`
	// Job-lifecycle counters of a campaign server daemon. All zero outside
	// pride-serve.
	JobsSubmitted int64   `json:"jobs_submitted"`
	JobsQueued    int64   `json:"jobs_queued"`
	JobsRunning   int64   `json:"jobs_running"`
	JobRetries    int64   `json:"job_retries"`
	JobsDrained   int64   `json:"jobs_drained"`
	CacheHits     int64   `json:"cache_hits"`
	TrialsPerSec  float64 `json:"trials_per_sec"`
	PeriodsPerSec float64 `json:"periods_per_sec"`
	RecordsPerSec float64 `json:"records_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	// Utilization is busy-worker time over elapsed wall-clock time times the
	// pool width: 1.0 means every worker computed the whole time.
	Utilization float64 `json:"utilization"`
}

// Snapshot captures the current state.
func (c *Campaign) Snapshot() Snapshot {
	elapsed := time.Since(c.start)
	s := Snapshot{
		Name:           c.name,
		ElapsedSeconds: elapsed.Seconds(),
		TrialsTotal:    c.trialsTotal.Load(),
		TrialsDone:     c.trialsDone.Load(),
		TrialsSkipped:  c.trialsSkipped.Load(),
		ActiveWorkers:  c.active.Load(),
		Periods:        c.periods.Load(),
		Mitigations:    c.mitigations.Load(),
		Activations:    c.activations.Load(),
		Records:        c.records.Load(),
		Bytes:          c.bytes.Load(),

		TrialRetries:      c.trialRetries.Load(),
		CheckpointRetries: c.checkpointRetries.Load(),
		EngineFallbacks:   c.engineFallbacks.Load(),
		Quarantined:       c.quarantined.Load(),

		JobsSubmitted: c.jobsSubmitted.Load(),
		JobsQueued:    c.jobsQueued.Load(),
		JobsRunning:   c.jobsRunning.Load(),
		JobRetries:    c.jobRetries.Load(),
		JobsDrained:   c.jobsDrained.Load(),
		CacheHits:     c.cacheHits.Load(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.TrialsPerSec = float64(s.TrialsDone) / sec
		s.PeriodsPerSec = float64(s.Periods) / sec
		s.RecordsPerSec = float64(s.Records) / sec
		s.MBPerSec = float64(s.Bytes) / (1e6 * sec)
		s.Utilization = float64(c.busyNanos.Load()) / (float64(elapsed) * float64(c.workers))
	}
	return s
}

// Line renders the snapshot as one structured key=value progress line, the
// format the CLIs emit to stderr.
func (s Snapshot) Line() string {
	line := fmt.Sprintf(
		"progress campaign=%s elapsed=%.1fs trials=%d/%d skipped=%d trials_per_sec=%.2f periods=%d periods_per_sec=%.3g mitigations=%d activations=%d active_workers=%d util=%.2f",
		s.Name, s.ElapsedSeconds, s.TrialsDone+s.TrialsSkipped, s.TrialsTotal, s.TrialsSkipped,
		s.TrialsPerSec, s.Periods, s.PeriodsPerSec, s.Mitigations, s.Activations,
		s.ActiveWorkers, s.Utilization)
	// Replay throughput keys appear only when a trace frontend is feeding
	// the campaign, so non-replay campaign lines stay byte-identical to
	// what they were before the replay pipeline existed.
	if s.Records != 0 {
		line += fmt.Sprintf(" records=%d records_per_sec=%.3g mb_per_sec=%.2f",
			s.Records, s.RecordsPerSec, s.MBPerSec)
	}
	// Resilience keys appear only once something went wrong, so the healthy
	// line stays compact and a non-clean run is visible at a glance.
	if s.TrialRetries != 0 || s.CheckpointRetries != 0 || s.EngineFallbacks != 0 || s.Quarantined != 0 {
		line += fmt.Sprintf(" trial_retries=%d checkpoint_retries=%d engine_fallbacks=%d quarantined=%d",
			s.TrialRetries, s.CheckpointRetries, s.EngineFallbacks, s.Quarantined)
	}
	// Job-lifecycle keys appear only on a campaign that has accepted jobs
	// (the pride-serve daemon), so CLI campaign lines are untouched.
	if s.JobsSubmitted != 0 {
		line += fmt.Sprintf(" jobs=%d queued=%d running=%d job_retries=%d drained=%d cache_hits=%d",
			s.JobsSubmitted, s.JobsQueued, s.JobsRunning, s.JobRetries, s.JobsDrained, s.CacheHits)
	}
	return line
}

// Line renders the campaign's current progress line.
func (c *Campaign) Line() string { return c.Snapshot().Line() }

// The expvar surface: every published campaign appears as one entry of the
// "pride.campaigns" variable, a JSON object keyed by campaign name. A
// process that imports net/http/pprof or expvar's handler exposes it at
// /debug/vars; tests and embedders read it via expvar.Get.
var (
	publishOnce sync.Once
	regMu       sync.Mutex
	registry    = map[string]*Campaign{}
)

// Publish registers the campaign under the "pride.campaigns" expvar.
// Publishing a second campaign with the same name replaces the first
// (latest wins), so repeated CLI invocations in one process stay sane.
func (c *Campaign) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("pride.campaigns", expvar.Func(func() any {
			regMu.Lock()
			defer regMu.Unlock()
			out := make(map[string]Snapshot, len(registry))
			for name, camp := range registry {
				out[name] = camp.Snapshot()
			}
			return out
		}))
	})
	regMu.Lock()
	registry[c.name] = c
	regMu.Unlock()
}

// Unpublish removes the campaign from the expvar surface.
func (c *Campaign) Unpublish() {
	regMu.Lock()
	delete(registry, c.name)
	regMu.Unlock()
}

// StartReporter emits the campaign's progress line to w every `every` until
// ctx is done or the returned stop function is called. Stop blocks until the
// reporter goroutine has exited, so no line lands on w after it returns. The
// final line is NOT emitted on stop — callers that want a completion summary
// print c.Line() themselves, so the summary lands after the run's own
// output.
func (c *Campaign) StartReporter(ctx context.Context, w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, c.Line())
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
