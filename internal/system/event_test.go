package system

import (
	"context"
	"reflect"
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/tracker"
)

// pOneScheme is PrIDE with insertion probability 1, the configuration where
// the event engine's gaps are always zero and the per-bank shared streams
// are consumed in the exact engine's order — so trials are bit-identical.
func pOneScheme() sim.Scheme {
	return sim.Scheme{
		Name:                "PrIDE-p1",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			cfg := core.DefaultConfig(p.ACTsPerTREFI())
			cfg.RowBits = p.RowBits
			cfg.InsertionProb = 1
			return core.New(cfg, r)
		},
	}
}

func TestRunEngineBitIdenticalAtPOne(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 3, TRH: 400, MaxTREFI: 3000}
	for seed := uint64(1); seed <= 3; seed++ {
		exact := RunEngine(cfg, pOneScheme(), seed, engine.Exact)
		event := RunEngine(cfg, pOneScheme(), seed, engine.Event)
		if !reflect.DeepEqual(exact, event) {
			t.Errorf("seed %d: p=1 engines diverged:\nexact %+v\nevent %+v", seed, exact, event)
		}
	}
}

func TestRunEngineFallsBackWithoutSkipAhead(t *testing.T) {
	// PRoHIT's insertion decision is table-state-coupled: no skip-ahead,
	// so the event engine must fall back to an identically-seeded exact run.
	prohit := sim.Scheme{
		Name:                "PRoHIT",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			return baseline.NewPRoHIT(baseline.DefaultPRoHITEntries, p.RowBits,
				baseline.DefaultPRoHITInsertProb, baseline.DefaultPRoHITPromoteProb, r)
		},
	}
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 80, MaxTREFI: 3000}
	exact := Run(cfg, prohit, 7)
	event := RunEngine(cfg, prohit, 7, engine.Event)
	if !reflect.DeepEqual(exact, event) {
		t.Fatalf("fallback diverged:\nexact %+v\nevent %+v", exact, event)
	}
}

// TestMeasureMTTFEngineAgreesWithCampaign pins the serial sampler's engine
// plumbing: MeasureMTTFEngine derives trial seeds exactly like
// MeasureMTTFCampaign, so for EITHER engine the serial measurement and a
// multi-worker campaign are bit-identical. (Before MeasureMTTFEngine the
// serial path drew seeds sequentially and hardwired the exact engine, so the
// two samplers could never be compared trial for trial.)
func TestMeasureMTTFEngineAgreesWithCampaign(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	const trials, seed = 8, 11
	for _, eng := range []engine.Kind{engine.Exact, engine.Event} {
		serialMean, serialFailed := MeasureMTTFEngine(cfg, sim.PrIDEScheme(), trials, seed, eng)
		campMean, campFailed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
			CampaignOptions{Workers: 4, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if serialFailed == 0 {
			t.Fatalf("engine %v: no failures at TRH=150", eng)
		}
		if serialMean != campMean || serialFailed != campFailed {
			t.Fatalf("engine %v: serial (%.17g, %d) != campaign (%.17g, %d)",
				eng, serialMean, serialFailed, campMean, campFailed)
		}
	}
}

// TestRunEventMultiTREFIAdvance exercises the bulk advance at a surviving
// threshold: a 100k-refresh-interval horizon retires through multi-window
// gap chunks (each spanning thousands of tREFIs, collapsed by memctrl's
// quiet cadence) and must still report the horizon exactly. The boundary
// bookkeeping's bit-exactness is pinned separately, by memctrl's collapse
// twins and the p=1 engine identity above.
func TestRunEventMultiTREFIAdvance(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 1, TRH: 100_000, MaxTREFI: 100_000}
	res := RunEngine(cfg, sim.PrIDEScheme(), 5, engine.Event)
	if res.Failed {
		t.Fatalf("unexpected failure at TRH=100000: %+v", res)
	}
	if res.TREFIsSimulated != cfg.MaxTREFI {
		t.Fatalf("TREFIsSimulated = %d, want %d", res.TREFIsSimulated, cfg.MaxTREFI)
	}
}

func TestMTTFCampaignEventEngine(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	const trials, seed = 8, 11
	wantMean, wantFailed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 1, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	if wantFailed == 0 {
		t.Fatal("event engine saw no failures at TRH=150")
	}
	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 4, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	if mean != wantMean || failed != wantFailed {
		t.Fatalf("workers=4: (%.17g, %d) != workers=1 (%.17g, %d)", mean, failed, wantMean, wantFailed)
	}

	// Same failure process on the exact engine: both samplers must see most
	// trials fail and means of the same order of magnitude.
	exactMean, exactFailed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), trials, seed, 4)
	if exactFailed < 6 || wantFailed < 6 {
		t.Fatalf("too few failures to compare: exact %d, event %d", exactFailed, wantFailed)
	}
	if ratio := wantMean / exactMean; ratio < 1.0/3 || ratio > 3 {
		t.Errorf("MTTF means: event %.3g vs exact %.3g (ratio %.2f)", wantMean, exactMean, ratio)
	}

	if MTTFCampaignKey(cfg, sim.PrIDEScheme(), trials, seed, engine.Exact) ==
		MTTFCampaignKey(cfg, sim.PrIDEScheme(), trials, seed, engine.Event) {
		t.Fatal("MTTF keys identical across engines")
	}
}
