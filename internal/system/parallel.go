package system

import (
	"fmt"

	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// MeasureMTTFParallel is the worker-pool counterpart of MeasureMTTF: the
// same independent system-level trials, with trial t's seed derived by index
// (rng.DeriveSeed(seed, t)) instead of drawn sequentially, executed on
// `workers` goroutines. Trial results fold in trial order, so the measured
// mean and failure count are a pure function of (cfg, s, trials, seed) —
// the worker count only changes wall-clock time. workers == 1 runs every
// trial inline on the calling goroutine.
func MeasureMTTFParallel(cfg Config, s sim.Scheme, trials int, seed uint64, workers int) (meanSeconds float64, failed int) {
	if trials < 1 {
		panic(fmt.Sprintf("system: trials must be >= 1, got %d", trials))
	}
	results := trialrunner.Map(workers, trials, func(t int) Result {
		return Run(cfg, s, rng.DeriveSeed(seed, uint64(t)))
	})
	total := 0.0
	for _, res := range results {
		if res.Failed {
			failed++
			total += res.TimeToFail.Seconds()
		}
	}
	if failed == 0 {
		return 0, 0
	}
	return total / float64(failed), failed
}
