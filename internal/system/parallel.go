package system

import (
	"context"

	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// MeasureMTTFParallel is the worker-pool counterpart of MeasureMTTF: the
// same independent system-level trials with the same index-derived seeds
// (rng.DeriveSeed(seed, t)), executed on `workers` goroutines. Trial results
// fold in trial order, so the measured mean and failure count are a pure
// function of (cfg, s, trials, seed) — bit-identical to the serial sampler —
// and the worker count only changes wall-clock time. workers == 1 runs every
// trial inline on the calling goroutine. Fail-loud convenience form of
// MeasureMTTFCampaign: no cancellation, no checkpoint, and a panicking trial
// takes the process down with a stack naming the trial.
func MeasureMTTFParallel(cfg Config, s sim.Scheme, trials int, seed uint64, workers int) (meanSeconds float64, failed int) {
	if err := trialrunner.ValidateWorkers(workers); err != nil {
		panic(err)
	}
	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, s, trials, seed, CampaignOptions{Workers: workers})
	trialrunner.MustPanicFree(err)
	return mean, failed
}
