package system

import (
	"math"
	"testing"
	"time"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/sim"
)

func sysParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 1024
	p.RowBits = 10
	return p
}

func TestFailsQuicklyAtTinyThreshold(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 100, MaxTREFI: 5000}
	res := Run(cfg, sim.PrIDEScheme(), 1)
	if !res.Failed {
		t.Fatal("no failure at TRH=100 within 5000 tREFI; tracker is suspiciously perfect")
	}
	if res.TimeToFail <= 0 || res.TimeToFail > time.Duration(cfg.MaxTREFI)*cfg.Params.TREFI {
		t.Fatalf("implausible time-to-fail %v", res.TimeToFail)
	}
}

func TestSurvivesAtHighThreshold(t *testing.T) {
	// At the victim-disturbance equivalent of TRH-D=2000 (threshold 4000),
	// PrIDE's analytic TTF is thousands of years; a 20K-tREFI horizon
	// (~78ms) must see nothing.
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 4000, MaxTREFI: 20_000}
	res := Run(cfg, sim.PrIDEScheme(), 2)
	if res.Failed {
		t.Fatalf("failure at TRH=4000 after %v — analytic TTF is ~10^3 years", res.TimeToFail)
	}
}

func TestMeasuredMTTFMatchesAnalyticOrder(t *testing.T) {
	// End-to-end validation of the Table IX chain: at a victim threshold
	// of 500 (device TRH-D = 250), failures are frequent enough to
	// measure, and the measured system MTTF must agree with the analytic
	// model within an order of magnitude (the analytic model is
	// deliberately pessimistic, so the measured MTTF should be >= ~0.3x).
	p := sysParams()
	const banks = 4
	const victimTRH = 500 // device TRH-D = 250
	cfg := Config{Params: p, Banks: banks, TRH: victimTRH, MaxTREFI: 200_000}
	mean, failed := MeasureMTTF(cfg, sim.PrIDEScheme(), 12, 3)
	if failed < 8 {
		t.Fatalf("only %d/12 trials failed; cannot estimate MTTF", failed)
	}
	r := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	// chances = total victim disturbances = victimTRH (2 * TRH-D).
	predicted := analytic.SystemTTFYears(r, float64(victimTRH), banks) * analytic.SecondsPerYear
	ratio := mean / predicted

	// The analytic model is a GUARANTEE, i.e. a lower bound on the true
	// TTF (worst insertion position, worst start occupancy, maximum
	// tardiness for every insertion — Section IV-C's deliberate
	// pessimism). The measured MTTF must therefore sit at or above the
	// prediction...
	if math.IsNaN(ratio) || ratio < 1 {
		t.Fatalf("measured MTTF %.4gs BELOW the analytic guarantee %.4gs — the bound is violated",
			mean, predicted)
	}
	// ...and in this tiny-threshold regime (chances ~ 1.6x the maximum
	// tardiness) the pessimism factor is large but bounded: the N*W
	// tardiness term and the worst-position loss each cost ~e^2..e^3.
	// Beyond ~10^3 would indicate the simulator and the model have
	// diverged structurally.
	if ratio > 1000 {
		t.Fatalf("measured MTTF %.4gs is %.0fx the analytic %.4gs — model and simulator diverged",
			mean, ratio, predicted)
	}
}

func TestMoreBanksFailSooner(t *testing.T) {
	p := sysParams()
	one, failed1 := MeasureMTTF(Config{Params: p, Banks: 1, TRH: 300, MaxTREFI: 100_000}, sim.PrIDEScheme(), 10, 5)
	many, failedN := MeasureMTTF(Config{Params: p, Banks: 8, TRH: 300, MaxTREFI: 100_000}, sim.PrIDEScheme(), 10, 5)
	if failed1 < 8 || failedN < 8 {
		t.Fatalf("insufficient failures: %d, %d", failed1, failedN)
	}
	if many >= one {
		t.Fatalf("8-bank MTTF %.4gs not below 1-bank MTTF %.4gs", many, one)
	}
}

func TestRFMExtendsTTF(t *testing.T) {
	p := sysParams()
	cfg := Config{Params: p, Banks: 2, TRH: 400, MaxTREFI: 60_000}
	base, bFailed := MeasureMTTF(cfg, sim.PrIDEScheme(), 8, 7)
	_, rFailed := MeasureMTTF(cfg, sim.PrIDERFMScheme(16), 8, 7)
	if bFailed < 6 {
		t.Fatalf("baseline PrIDE failed only %d/8 times at TRH=400", bFailed)
	}
	// RFM16's analytic TTF at device TRH-D=200-equivalent... at victim
	// threshold 400 (TRH-D=200) RFM16 still fails in seconds, but far
	// more slowly than plain PrIDE; within this horizon it should fail
	// rarely or not at all.
	if rFailed >= bFailed {
		t.Fatalf("RFM16 failed as often as plain PrIDE (%d vs %d)", rFailed, bFailed)
	}
	_ = base
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 20_000}
	a := Run(cfg, sim.PrIDEScheme(), 42)
	b := Run(cfg, sim.PrIDEScheme(), 42)
	if a != b {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Params: sysParams(), Banks: 1, TRH: 100, MaxTREFI: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Params: sysParams(), Banks: 0, TRH: 100, MaxTREFI: 10},
		{Params: sysParams(), Banks: 1, TRH: 1, MaxTREFI: 10},
		{Params: sysParams(), Banks: 1, TRH: 100, MaxTREFI: 0},
		{Params: dram.Params{}, Banks: 1, TRH: 100, MaxTREFI: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureMTTF with 0 trials did not panic")
		}
	}()
	MeasureMTTF(good, sim.PrIDEScheme(), 0, 1)
}
