package system

import (
	"context"
	"testing"

	"pride/internal/engine"
	"pride/internal/faultinject"
	"pride/internal/obs"
	"pride/internal/sim"
)

// TestMTTFForcedTripFallsBackToExact forces a guard trip on every
// event-engine trial of an MTTF campaign: each trial re-runs on the exact
// engine with the same trial-derived seed, so the campaign matches the
// exact-engine campaign bit-for-bit and every fallback is counted.
func TestMTTFForcedTripFallsBackToExact(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	const trials, seed = 6, 21
	exactMean, exactFailed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 2, Engine: engine.Exact})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Every: 1})
	camp := obs.NewCampaign("mttf-trip", trials, 2)
	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 2, Engine: engine.Event, Progress: camp, Observer: camp, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if mean != exactMean || failed != exactFailed {
		t.Fatalf("tripped-everywhere event campaign (%v, %d) differs from exact campaign (%v, %d)",
			mean, failed, exactMean, exactFailed)
	}
	if n := camp.Snapshot().EngineFallbacks; n != int64(trials) {
		t.Fatalf("EngineFallbacks = %d, want %d (one per trial)", n, trials)
	}
}

// TestSystemSelfCheckInvariance pins that the runtime guards never perturb a
// whole-system run: identical results with self-checking on and off, and a
// healthy simulation trips nothing.
func TestSystemSelfCheckInvariance(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 100, MaxTREFI: 5000}
	checked := cfg
	checked.SelfCheck = true
	for _, eng := range []engine.Kind{engine.Exact, engine.Event} {
		want := RunEngine(cfg, sim.PrIDEScheme(), 9, eng)
		got := RunEngine(checked, sim.PrIDEScheme(), 9, eng)
		if got != want {
			t.Fatalf("engine %v: SelfCheck changed the system result:\n got %+v\nwant %+v", eng, got, want)
		}
	}

	// Campaign-level SelfCheck (the -selfcheck flag path) is equally inert.
	const trials, seed = 4, 21
	plainMean, plainFailed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 2, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if mean != plainMean || failed != plainFailed {
		t.Fatal("-selfcheck changed the MTTF campaign result")
	}
}
