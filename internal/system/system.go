// Package system simulates a whole DRAM subsystem under attack: many banks,
// each with its own independently-seeded tracker, concurrently hammered the
// way Section VII-C's time-to-fail analysis assumes (all banks continuously
// attacked, tFAW limiting how many are active at once).
//
// Its purpose is end-to-end validation of the analytic TTF chain: at low
// device thresholds failures happen within simulable time, so the measured
// time-to-first-flip can be compared against analytic.SystemTTFYears — the
// same math that generates Table IX — rather than trusting the closed form
// alone.
package system

import (
	"fmt"
	"time"

	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/memctrl"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/sim"
)

// Config parameterizes a system-level attack simulation.
type Config struct {
	// Params are the per-bank DRAM parameters.
	Params dram.Params
	// Banks is the number of concurrently attacked banks (the paper's
	// tFAW-limited 22; each gets its own tracker and RNG stream).
	Banks int
	// TRH is the device double-sided Rowhammer threshold under test.
	TRH int
	// MaxTREFI bounds the simulation length in refresh intervals.
	MaxTREFI int
	// SelfCheck enables runtime invariant guards in every bank's
	// controller, bank and tracker (-selfcheck). A violated guard panics
	// with a guard.Violation; campaigns catch event-engine violations and
	// fall back to the exact engine. Not part of the checkpoint key.
	SelfCheck bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	switch {
	case c.Banks < 1:
		return fmt.Errorf("system: Banks must be >= 1, got %d", c.Banks)
	case c.TRH < 2:
		return fmt.Errorf("system: TRH must be >= 2, got %d", c.TRH)
	case c.MaxTREFI < 1:
		return fmt.Errorf("system: MaxTREFI must be >= 1, got %d", c.MaxTREFI)
	}
	return nil
}

// Result reports one system-level trial.
type Result struct {
	// Failed reports whether any bank flipped within the horizon.
	Failed bool
	// TimeToFail is the simulated time of the first flip (valid when
	// Failed).
	TimeToFail time.Duration
	// FailedBank is the index of the first failing bank.
	FailedBank int
	// TREFIsSimulated counts elapsed refresh intervals.
	TREFIsSimulated int
}

// gapUnset marks a bank whose next insertion gap has not been drawn yet.
// The draw is deferred to the moment the exact engine would consume it, so
// at p = 1 (where gaps are always zero) the two engines consume the shared
// per-bank stream in the same order and stay bit-identical.
const gapUnset = -1

// bank bundles one bank's simulation state.
type bankState struct {
	ctrl *memctrl.Controller
	pat  *patterns.Pattern

	// Event-engine state: the bank's private stream (shared with its
	// tracker), its gap sampler, and the idle ACTs remaining before the next
	// insertion — carried across tREFI boundaries.
	r   *rng.Stream
	sk  rng.Skip
	gap int
}

// runScratch is the reusable per-worker state of a system trial: the DRAM
// banks (reset between trials), the per-bank hammer patterns (rewound
// between trials), and the bank-state slice itself. A scratch is bound to
// one campaign's fixed Config; nothing in it ever reaches a Result, so the
// campaign's worker-count invariance is untouched.
type runScratch struct {
	drams  []*dram.Bank
	pats   []*patterns.Pattern
	states []bankState
}

// prepare sizes the scratch for n banks, keeping previously-built banks and
// patterns when the size already matches.
func (sc *runScratch) prepare(n int) {
	if len(sc.states) != n {
		sc.drams = make([]*dram.Bank, n)
		sc.pats = make([]*patterns.Pattern, n)
		sc.states = make([]bankState, n)
	}
}

// Run simulates every bank being double-sided-hammered continuously until
// the first bit flip or the horizon. Each bank runs the scheme with an
// independent RNG stream; time advances in lockstep, one tREFI at a time
// (W activations per bank per tREFI — the saturated-bus worst case of the
// paper's analysis).
func Run(cfg Config, s sim.Scheme, seed uint64) Result {
	return run(cfg, s, seed, &runScratch{}, engine.Exact)
}

// RunEngine is Run on the selected engine. The event engine carries each
// bank's geometric insertion gap across tREFI boundaries and retires the
// idle stretches through memctrl.ActivateRun; it falls back to the exact
// loop when the scheme's tracker does not support skip-ahead.
func RunEngine(cfg Config, s sim.Scheme, seed uint64, eng engine.Kind) Result {
	return run(cfg, s, seed, &runScratch{}, eng)
}

// run is Run against caller-supplied worker scratch, so campaign workers
// reuse bank arrays and patterns across trials.
func run(cfg Config, s sim.Scheme, seed uint64, sc *runScratch, eng engine.Kind) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	seeds := rng.New(seed)
	sc.prepare(cfg.Banks)
	banks := sc.states
	for i := range banks {
		if sc.drams[i] == nil {
			sc.drams[i] = dram.MustNewBank(cfg.Params, cfg.TRH)
		} else {
			sc.drams[i].Reset()
		}
		if sc.pats[i] == nil {
			// Distinct victims per bank; the pattern is the classic
			// double-sided hammer (Section VI's worst case for the
			// reported TRH-D).
			sc.pats[i] = patterns.DoubleSided(cfg.Params.RowsPerBank / 2)
		} else {
			sc.pats[i].Reset()
		}
		// Each bank's tracker and its gap sampler share one forked stream,
		// mirroring the exact engine's per-bank stream usage.
		br := seeds.Fork()
		trk := s.New(cfg.Params, br)
		mcfg := memctrl.DefaultConfig(cfg.Params)
		mcfg.RFMThreshold = s.RFMThreshold
		if s.MitigationEveryNREF > 0 {
			mcfg.MitigationEveryNREF = s.MitigationEveryNREF
		}
		mcfg.SelfCheck = cfg.SelfCheck
		banks[i] = bankState{
			ctrl: memctrl.New(mcfg, sc.drams[i], trk),
			pat:  sc.pats[i],
			r:    br,
			gap:  gapUnset,
		}
	}

	// All banks run the same scheme, so skip-ahead support is uniform:
	// probe bank 0 before any gap draw perturbs a stream.
	if eng == engine.Event {
		if _, ok := banks[0].ctrl.SkipAdvancer(); !ok {
			eng = engine.Exact
		} else {
			for i := range banks {
				sa, _ := banks[i].ctrl.SkipAdvancer()
				banks[i].sk = rng.NewSkip(rng.NewThreshold(sa.InsertionProb()))
			}
		}
	}

	w := cfg.Params.ACTsPerTREFI()
	if eng == engine.Event {
		// Banks never interact and each owns a private stream, so the
		// interleaved per-tREFI sweep is equivalent to running each bank to
		// completion on its own — and the per-bank pass is where the
		// multi-tREFI bulk advance lives: a long insertion gap is no longer
		// chopped into w-ACT windows but retired in one ActivateRunGroup
		// call, whose quiet-cadence collapse turns hundreds of refresh
		// windows into modular arithmetic.
		//
		// The lockstep loop returns the lexicographically first failure
		// (tREFI, then bank index). Banks run in index order against a
		// shrinking horizon: a later bank only wins by failing STRICTLY
		// earlier than the incumbent, so it needs at most incumbent-1
		// windows of simulation.
		best := Result{TREFIsSimulated: cfg.MaxTREFI}
		horizon := cfg.MaxTREFI
		for bi := range banks {
			if horizon == 0 {
				break
			}
			ft, failed := banks[bi].runEvent(w, horizon)
			if !failed {
				continue
			}
			best = Result{
				Failed:          true,
				TimeToFail:      time.Duration(ft) * cfg.Params.TREFI,
				FailedBank:      bi,
				TREFIsSimulated: ft,
			}
			horizon = ft - 1
		}
		return best
	}
	for trefi := 1; trefi <= cfg.MaxTREFI; trefi++ {
		for bi := range banks {
			b := &banks[bi]
			for a := 0; a < w; a++ {
				b.ctrl.Activate(b.pat.Next())
			}
			if len(b.ctrl.Bank().Flips()) > 0 {
				return Result{
					Failed:          true,
					TimeToFail:      time.Duration(trefi) * cfg.Params.TREFI,
					FailedBank:      bi,
					TREFIsSimulated: trefi,
				}
			}
		}
	}
	return Result{TREFIsSimulated: cfg.MaxTREFI}
}

// runEvent retires up to maxTREFI refresh intervals (maxTREFI*w demand ACTs)
// of the bank's hammer pattern on the event engine and reports the refresh
// interval of the bank's first bit flip, if any. Idle stretches are NOT
// split at tREFI boundaries — memctrl does its own exact boundary
// accounting — so a gap spanning many windows is one call. Chunks never
// exceed the remaining budget, so a detected flip always lands within the
// horizon; its window is recovered from the flip's global ACT index (window
// t covers ACTs (t-1)*w+1 .. t*w, with boundary REF flips attributed to the
// window they close — exactly the lockstep loop's attribution).
func (b *bankState) runEvent(w, maxTREFI int) (failTREFI int, failed bool) {
	left := maxTREFI * w
	for left > 0 {
		if b.gap == gapUnset {
			b.gap = b.r.SkipT(b.sk)
		}
		if b.gap >= left {
			b.idleACTs(left)
			b.gap -= left
			left = 0
		} else {
			b.idleACTs(b.gap)
			left -= b.gap
			b.ctrl.ActivateInsert(b.pat.Next())
			left--
			b.gap = gapUnset
		}
		if flips := b.ctrl.Bank().Flips(); len(flips) > 0 {
			return int((flips[0].ACTIndex + uint64(w) - 1) / uint64(w)), true
		}
	}
	return 0, false
}

// idleACTs retires n insertion-free activations of the bank's pattern. The
// double-sided pattern's 2-cycle goes through the batched multi-row path;
// exotic caller-supplied patterns with long cycles fall back to same-row
// run batching.
func (b *bankState) idleACTs(n int) {
	if n <= 0 {
		return
	}
	if b.pat.CycleLen() <= patterns.MaxBatchGroup {
		rows, phase := b.pat.Group()
		b.ctrl.ActivateRunGroup(rows, phase, n)
		b.pat.Advance(n)
		return
	}
	for n > 0 {
		row, k := b.pat.Run(n)
		b.ctrl.ActivateRun(row, k)
		b.pat.Advance(k)
		n -= k
	}
}

// MeasureMTTF runs `trials` independent system simulations and returns the
// mean time-to-fail in seconds over the failing trials, plus how many
// trials failed within the horizon. Comparing the mean against
// analytic.SystemTTFYears validates the Eq. 1 / Section VII-C chain
// empirically.
func MeasureMTTF(cfg Config, s sim.Scheme, trials int, seed uint64) (meanSeconds float64, failed int) {
	return MeasureMTTFEngine(cfg, s, trials, seed, engine.Exact)
}

// MeasureMTTFEngine is MeasureMTTF on the selected engine. Trial seeds are
// index-derived exactly like MeasureMTTFCampaign's, so a serial measurement
// agrees trial-for-trial with a campaign at any worker count — on the same
// engine, bit for bit.
func MeasureMTTFEngine(cfg Config, s sim.Scheme, trials int, seed uint64, eng engine.Kind) (meanSeconds float64, failed int) {
	if trials < 1 {
		panic(fmt.Sprintf("system: trials must be >= 1, got %d", trials))
	}
	var sc runScratch
	total := 0.0
	for t := 0; t < trials; t++ {
		res := run(cfg, s, rng.DeriveSeed(seed, uint64(t)), &sc, eng)
		if res.Failed {
			failed++
			total += res.TimeToFail.Seconds()
		}
	}
	if failed == 0 {
		return 0, 0
	}
	return total / float64(failed), failed
}
