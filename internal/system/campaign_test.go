package system

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// ttfSink is a ProgressSink that can cancel a context after a fixed number
// of completed trials.
type ttfSink struct {
	mu          sync.Mutex
	cancel      context.CancelFunc
	cancelAfter int
	trials      int
	periods     int64
}

func (s *ttfSink) AddPeriods(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trials++
	s.periods += n
	if s.cancel != nil && s.trials == s.cancelAfter {
		s.cancel()
	}
}

func TestMTTFCampaignMatchesParallel(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	const trials, seed = 4, 7
	wantMean, wantFailed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), trials, seed, 2)

	sink := &ttfSink{}
	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed,
		CampaignOptions{Workers: 3, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if mean != wantMean || failed != wantFailed {
		t.Fatalf("campaign (%v, %d) differs from parallel (%v, %d)", mean, failed, wantMean, wantFailed)
	}
	if sink.trials != trials || sink.periods <= 0 || sink.periods > int64(trials)*int64(cfg.MaxTREFI) {
		t.Fatalf("sink metered %d trials / %d periods over %d x <=%d", sink.trials, sink.periods, trials, cfg.MaxTREFI)
	}
}

func TestMTTFCampaignResumeIsBitIdentical(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	const trials, seed = 4, 9
	wantMean, wantFailed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), trials, seed, 1)

	path := filepath.Join(t.TempDir(), "mttf.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &ttfSink{cancel: cancel, cancelAfter: 1}
	_, _, err := MeasureMTTFCampaign(ctx, cfg, sim.PrIDEScheme(), trials, seed, CampaignOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: path},
		Progress:   sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}

	mean, failed, err := MeasureMTTFCampaign(context.Background(), cfg, sim.PrIDEScheme(), trials, seed, CampaignOptions{
		Workers:    2,
		Checkpoint: trialrunner.Checkpoint{Path: path},
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	// The mean folds trial durations in index order, so even the float sum is
	// reproduced exactly on resume.
	if mean != wantMean || failed != wantFailed {
		t.Fatalf("resumed (%v, %d) differs from uninterrupted (%v, %d)", mean, failed, wantMean, wantFailed)
	}
}
