package system

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"pride/internal/addrmap"
	"pride/internal/dram"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/trace"
	"pride/internal/tracker"
	"pride/internal/trialrunner"
	"pride/internal/workload"
)

// serverMapping is a 2-channel × 1-rank × 4-bank × 1K-row test topology:
// small enough that replays run in milliseconds, wide enough that every
// addrmap field is exercised end-to-end.
func serverMapping() addrmap.Mapping {
	return addrmap.Mapping{ColumnBits: 4, BankBits: 2, RowBits: 10, RankBits: 0, ChannelBits: 1, XORBankHash: true}
}

func serverConfig(t *testing.T) TopologyConfig {
	t.Helper()
	return TopologyConfig{
		Params:  dram.DDR5(),
		Mapping: serverMapping(),
		Scheme:  sim.PrIDEScheme(),
		TRH:     500,
		Seed:    42,
	}
}

func serverSource(n int) *workload.AddrSource {
	spec := workload.Spec{Name: "lbm", MPKI: 45, RowHitRate: 0.75, MLP: 5}
	return workload.NewAddrSource(spec, serverMapping(), n, 7)
}

func TestTopologyGeometry(t *testing.T) {
	top, err := NewTopology(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if top.Channels() != 2 || top.Ranks() != 1 || top.Banks() != 4 || top.Shards() != 8 {
		t.Fatalf("geometry: ch=%d rk=%d bk=%d shards=%d", top.Channels(), top.Ranks(), top.Banks(), top.Shards())
	}
	p := top.Params()
	if p.RowsPerBank != 1024 || p.RowBits != 10 || p.BanksPerRank != 4 || p.Banks != 8 {
		t.Fatalf("derived params: %+v", p)
	}
	if p.TFAWLimit > p.Banks {
		t.Fatalf("TFAWLimit %d exceeds %d banks", p.TFAWLimit, p.Banks)
	}
	// Round-trip shard index <-> coordinate.
	for shard := 0; shard < top.Shards(); shard++ {
		ch, rk, bk := top.shardCoord(shard)
		if got := top.shardIndex(addrmap.Coord{Channel: ch, Rank: rk, Bank: bk}); got != shard {
			t.Fatalf("shard %d -> (%d,%d,%d) -> %d", shard, ch, rk, bk, got)
		}
	}
}

func TestTopologyConfigRejects(t *testing.T) {
	base := serverConfig(t)
	cases := map[string]func(c *TopologyConfig){
		"bad mapping":     func(c *TopologyConfig) { c.Mapping.RowBits = 0 },
		"huge rows":       func(c *TopologyConfig) { c.Mapping.RowBits = 31; c.Mapping.XORBankHash = false },
		"tiny rows":       func(c *TopologyConfig) { c.Mapping.RowBits = 1; c.Mapping.XORBankHash = false },
		"low TRH":         func(c *TopologyConfig) { c.TRH = 1 },
		"nil scheme":      func(c *TopologyConfig) { c.Scheme.New = nil },
		"budget count":    func(c *TopologyConfig) { c.RFMBudgets = []int{1, 2, 3} },
		"negative budget": func(c *TopologyConfig) { c.RFMBudgets = []int{-1} },
	}
	for name, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := NewTopology(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReplayWorkerInvariance(t *testing.T) {
	top, err := NewTopology(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	var ref ReplayResult
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := top.ReplayCampaign(context.Background(), serverSource(n), ReplayOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = res
			if res.Records != n {
				t.Fatalf("replayed %d records, want %d", res.Records, n)
			}
			var acts uint64
			for _, s := range res.Shards {
				acts += s.ACTs
			}
			if acts != n {
				t.Fatalf("shards account for %d ACTs, want %d", acts, n)
			}
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}
}

func TestReplayGeneratorVsTraceBitIdentity(t *testing.T) {
	top, err := NewTopology(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000

	// Path A: the generator drives the replay directly.
	direct, err := top.Replay(serverSource(n))
	if err != nil {
		t.Fatal(err)
	}

	// Path B: the same generator's records are written to a binary trace,
	// read back through the streaming decoder, and replayed.
	records, err := trace.Drain(serverSource(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, serverMapping(), records); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := top.Replay(rd)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(direct, replayed) {
		t.Fatal("generator-driven replay differs from replaying the trace it emitted")
	}
}

func TestReplayCheckpointResume(t *testing.T) {
	top, err := NewTopology(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	fresh, err := top.Replay(serverSource(n))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "replay.ckpt")
	cp := trialrunner.Checkpoint{Path: path}
	first, err := top.ReplayCampaign(context.Background(), serverSource(n), ReplayOptions{Workers: 4, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := top.ReplayCampaign(context.Background(), serverSource(n), ReplayOptions{Workers: 2, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) || !reflect.DeepEqual(resumed, fresh) {
		t.Fatal("checkpointed/resumed replay differs from a fresh serial replay")
	}
}

func TestReplayRejectsMappingMismatch(t *testing.T) {
	top, err := NewTopology(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	other := serverMapping()
	other.ChannelBits = 0
	src := trace.NewSliceSource(other, nil)
	if _, err := top.Replay(src); err == nil {
		t.Fatal("replay accepted a trace recorded under a different mapping")
	}
}

func TestReplayPerChannelRFMBudgets(t *testing.T) {
	cfg := serverConfig(t)
	// Channel 0 gets no RFM budget, channel 1 a tight one: RFM commands
	// must appear only on channel 1's shards.
	cfg.RFMBudgets = []int{0, 32}
	top, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Replay(serverSource(60000))
	if err != nil {
		t.Fatal(err)
	}
	perCh := res.PerChannel()
	if len(perCh) != 2 {
		t.Fatalf("%d channel summaries", len(perCh))
	}
	if perCh[0].RFMs != 0 {
		t.Fatalf("channel 0 issued %d RFMs with a zero budget", perCh[0].RFMs)
	}
	if perCh[1].RFMs == 0 {
		t.Fatal("channel 1 issued no RFMs with a 32-ACT budget")
	}
	// The uniform single-budget form applies everywhere.
	cfg.RFMBudgets = []int{32}
	top2, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := top2.Replay(serverSource(60000))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.PerChannel() {
		if c.RFMs == 0 {
			t.Fatalf("channel %d issued no RFMs under the uniform budget", c.Channel)
		}
	}
}

// nullTracker never mitigates: the undefended bank the scrambler tests need
// deterministic flips from.
type nullTracker struct{}

func (nullTracker) Name() string                           { return "null" }
func (nullTracker) OnActivate(int)                         {}
func (nullTracker) OnMitigate() (tracker.Mitigation, bool) { return tracker.Mitigation{}, false }
func (nullTracker) Occupancy() int                         { return 0 }
func (nullTracker) StorageBits() int                       { return 0 }
func (nullTracker) Reset()                                 {}

func nullScheme() sim.Scheme {
	return sim.Scheme{
		Name:                "null",
		MitigationEveryNREF: 1,
		New: func(dram.Params, *rng.Stream) tracker.Tracker {
			return nullTracker{}
		},
	}
}

// TestReplayScrambledVictimAccounting is the Section II-D geometry argument
// on the replay path: with a RowScrambler standing in for the vendor remap,
// externally adjacent aggressors land on unrelated internal rows (no flip),
// an attacker who knows the internal geometry still flips the victim, and
// the reported flip comes back in EXTERNAL row addresses.
func TestReplayScrambledVictimAccounting(t *testing.T) {
	m := addrmap.Mapping{ColumnBits: 2, BankBits: 0, RowBits: 12, RankBits: 0, ChannelBits: 0}
	cfg := TopologyConfig{
		Params:       dram.DDR5(),
		Mapping:      m,
		Scheme:       nullScheme(),
		TRH:          200,
		Seed:         1,
		ScrambleSeed: 777,
	}
	top, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiled := m.MustCompile()
	// 3·TRH/4 hammers per side: the double-sided victim accrues 1.5·TRH
	// disturbances (flips), while any single-sided neighbour of one
	// aggressor stays at 0.75·TRH (no flip) — so a flip can only come from
	// true internal adjacency, never from one hot aggressor alone.
	hammer := func(rows ...int) []uint64 {
		var addrs []uint64
		for i := 0; i < 3*cfg.TRH/4; i++ {
			for _, r := range rows {
				addrs = append(addrs, compiled.Encode(addrmap.Coord{Row: r}))
			}
		}
		return addrs
	}

	// The scrambler the shard will build (shard 0 under ScrambleSeed 777).
	scr := addrmap.NewRowScrambler(1<<12, rng.DeriveSeed(777, 0))

	// Externally adjacent aggressors around external row 2000: internally
	// unrelated, so the double-sided hammer decays into two single-sided
	// hammers of random rows — no flip at 3×TRH activations per side.
	blind, err := top.Replay(trace.NewSliceSource(m, hammer(1999, 2001)))
	if err != nil {
		t.Fatal(err)
	}
	if n := blind.TotalFlips(); n != 0 {
		t.Fatalf("externally adjacent aggressors flipped %d rows through the scrambler", n)
	}

	// An attacker who knows the internal geometry targets internal victim
	// 2000 by hammering the EXTERNAL addresses of its internal neighbours.
	victimInternal := 2000
	informed, err := top.Replay(trace.NewSliceSource(m, hammer(
		scr.Unscramble(victimInternal-1), scr.Unscramble(victimInternal+1))))
	if err != nil {
		t.Fatal(err)
	}
	if n := informed.TotalFlips(); n == 0 {
		t.Fatal("internally adjacent aggressors did not flip the victim")
	}
	// Victim accounting reports the external address of the internal victim.
	want := scr.Unscramble(victimInternal)
	found := false
	for _, f := range informed.Shards[0].Flips {
		if f.Row == want {
			found = true
		}
		if f.Row == victimInternal && want != victimInternal {
			t.Fatalf("flip reported in internal address space (row %d)", f.Row)
		}
	}
	if !found {
		t.Fatalf("flips %v do not include the external victim %d", informed.Shards[0].Flips, want)
	}

	// The same trace without scrambling flips the victim directly: the
	// scrambler is the only thing separating the two runs.
	cfg.ScrambleSeed = 0
	plain, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := plain.Replay(trace.NewSliceSource(m, hammer(1999, 2001)))
	if err != nil {
		t.Fatal(err)
	}
	if direct.TotalFlips() == 0 {
		t.Fatal("unscrambled double-sided hammer did not flip")
	}
}

func TestReplayCampaignKeyIgnoresWorkers(t *testing.T) {
	cfg := serverConfig(t)
	key := ReplayCampaignKey(cfg, 1000, 0xDEADBEEF)
	if key == "" {
		t.Fatal("empty key")
	}
	// The key pins scheme, mapping, budgets, scramble, seed, and the trace
	// fingerprint — and changes when any of them change.
	variants := []TopologyConfig{}
	v := cfg
	v.TRH = 600
	variants = append(variants, v)
	v = cfg
	v.Seed = 43
	variants = append(variants, v)
	v = cfg
	v.ScrambleSeed = 9
	variants = append(variants, v)
	v = cfg
	v.RFMBudgets = []int{0, 32}
	variants = append(variants, v)
	for i, vc := range variants {
		if ReplayCampaignKey(vc, 1000, 0xDEADBEEF) == key {
			t.Errorf("variant %d: key unchanged", i)
		}
	}
	if ReplayCampaignKey(cfg, 1001, 0xDEADBEEF) == key || ReplayCampaignKey(cfg, 1000, 0xDEADBEEE) == key {
		t.Error("key ignores the trace fingerprint")
	}
}
