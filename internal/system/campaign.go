package system

import (
	"context"
	"fmt"

	"pride/internal/engine"
	"pride/internal/guard"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/trialrunner"
)

// ProgressSink receives coarse progress counters from a running TTF
// campaign, one update per completed trial. internal/obs.Campaign satisfies
// it structurally; a sink is observation-only.
type ProgressSink interface {
	// AddPeriods records n freshly-simulated refresh intervals (tREFIs).
	AddPeriods(n int64)
}

// CampaignOptions configures a cancellable, checkpointable, observable TTF
// campaign. The zero value behaves exactly like MeasureMTTFParallel at
// trialrunner.DefaultWorkers(): no checkpoint, no metering.
type CampaignOptions struct {
	// Workers is the pool size; 0 selects trialrunner.DefaultWorkers().
	// Workers never affects the result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the experiment's canonical key (configuration + seed,
	// never the worker count).
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives per-trial counter updates.
	Progress ProgressSink
	// Observer, when non-nil, receives per-trial lifecycle callbacks.
	Observer trialrunner.Observer
	// Engine selects the simulation engine: engine.Exact (the zero value)
	// steps every activation; engine.Event skips ahead between insertions.
	// Trial outcomes on the event engine are statistically — not
	// bit-for-bit — equivalent, so the canonical checkpoint key embeds the
	// engine and a campaign never resumes across an engine switch.
	Engine engine.Kind
	// SelfCheck enables runtime invariant guards in the per-bank
	// controllers, banks and trackers (-selfcheck). An event-engine trial
	// whose guard trips is re-run on the exact engine (the divergence
	// counted via AddEngineFallbacks on Progress) instead of aborting the
	// campaign.
	SelfCheck bool
	// Retry bounds re-execution of panicked/errored trials; see
	// trialrunner.RetryPolicy. Zero keeps single-attempt semantics.
	Retry trialrunner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults into trial
	// execution and checkpoint I/O (chaos testing; faultinject.Injector
	// implements it). Production runs leave it nil.
	Faults trialrunner.TrialFaults
}

func (o CampaignOptions) runnerOpts() trialrunner.Options {
	return trialrunner.Options{Workers: o.Workers, Observer: o.Observer, Retry: o.Retry, Faults: o.Faults}
}

// fallbackSink is the optional Progress capability for counting event→exact
// engine fallbacks (internal/obs.Campaign implements it).
type fallbackSink interface{ AddEngineFallbacks(n int64) }

// engineTripper is the optional Faults capability that forces an invariant
// trip for a given trial index (faultinject.Injector implements it).
type engineTripper interface{ EngineTrip(trial uint64) bool }

// tripForced reports whether the fault schedule forces an engine trip on
// trial i.
func (o CampaignOptions) tripForced(i int) bool {
	if et, ok := o.Faults.(engineTripper); ok {
		return et.EngineTrip(uint64(i))
	}
	return false
}

// countFallback records one event→exact fallback on the progress sink.
func (o CampaignOptions) countFallback() {
	if fs, ok := o.Progress.(fallbackSink); ok {
		fs.AddEngineFallbacks(1)
	}
}

// MTTFCampaignKey is the canonical checkpoint key of a TTF campaign: every
// parameter a trial's outcome depends on, and nothing else (in particular
// not the worker count).
func MTTFCampaignKey(cfg Config, s sim.Scheme, trials int, seed uint64, eng engine.Kind) string {
	return fmt.Sprintf("system.mttf|scheme=%s|params=%+v|banks=%d|trh=%d|maxtrefi=%d|trials=%d|seed=%d%s",
		s.Name, cfg.Params, cfg.Banks, cfg.TRH, cfg.MaxTREFI, trials, seed, engine.KeySuffix(eng))
}

// MeasureMTTFCampaign is MeasureMTTFParallel as a long-running campaign: the
// same independent trials with index-derived seeds — so the measured mean
// and failure count are bit-for-bit identical to the Parallel engine at any
// worker count — plus cancellation with graceful drain, per-trial panic
// isolation, durable checkpoint/resume, and progress metering.
func MeasureMTTFCampaign(ctx context.Context, cfg Config, s sim.Scheme, trials int, seed uint64, opts CampaignOptions) (meanSeconds float64, failed int, err error) {
	if trials < 1 {
		panic(fmt.Sprintf("system: trials must be >= 1, got %d", trials))
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = MTTFCampaignKey(cfg, s, trials, seed, opts.Engine)
	}
	cfg.SelfCheck = cfg.SelfCheck || opts.SelfCheck
	var onDone func(t int, r Result) error
	if sink := opts.Progress; sink != nil {
		onDone = func(t int, r Result) error {
			sink.AddPeriods(int64(r.TREFIsSimulated))
			return nil
		}
	}
	// One scratch arena per worker index: trials run by the same worker
	// reuse the bank arrays and hammer patterns.
	ropts := opts.runnerOpts()
	scratch := make([]runScratch, ropts.PoolSize(trials))
	results, err := trialrunner.MapCheckpointedWorker(ctx, trials, func(worker, t int) Result {
		trialSeed := rng.DeriveSeed(seed, uint64(t))
		if opts.Engine != engine.Event {
			return run(cfg, s, trialSeed, &scratch[worker], opts.Engine)
		}
		// Guarded event run: a tripped invariant (real or injected) falls
		// back to the exact reference engine under the same derived seed
		// (run resets the scratch's banks itself), so the campaign
		// degrades gracefully instead of aborting.
		forced := opts.tripForced(t)
		r, v := guard.Run(func() Result {
			if forced {
				guard.Failf("system.event", "forced-trip", "injected engine trip (trial %d)", t)
			}
			return run(cfg, s, trialSeed, &scratch[worker], engine.Event)
		})
		if v == nil {
			return r
		}
		opts.countFallback()
		return run(cfg, s, trialSeed, &scratch[worker], engine.Exact)
	}, onDone, ropts, cp)
	if err != nil {
		return 0, 0, err
	}
	total := 0.0
	for _, res := range results {
		if res.Failed {
			failed++
			total += res.TimeToFail.Seconds()
		}
	}
	if failed == 0 {
		return 0, 0, nil
	}
	return total / float64(failed), failed, nil
}
