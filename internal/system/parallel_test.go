package system

import (
	"runtime"
	"testing"

	"pride/internal/sim"
)

func sysWorkerGrid() []int {
	grid := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		grid = append(grid, n)
	}
	return grid
}

func TestMeasureMTTFParallelDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 150, MaxTREFI: 30_000}
	wantMean, wantFailed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), 8, 11, 1)
	if wantFailed == 0 {
		t.Fatal("no failures at TRH=150; cannot exercise the merge path")
	}
	for _, workers := range sysWorkerGrid()[1:] {
		mean, failed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), 8, 11, workers)
		if mean != wantMean || failed != wantFailed {
			t.Fatalf("workers=%d: (%.17g, %d) != serial (%.17g, %d)",
				workers, mean, failed, wantMean, wantFailed)
		}
	}
}

func TestMeasureMTTFParallelAgreesWithSerialSampler(t *testing.T) {
	// Same index-derived trial seeds, same estimator: the serial sampler and
	// the worker pool must agree bit for bit, not just statistically.
	cfg := Config{Params: sysParams(), Banks: 2, TRH: 120, MaxTREFI: 40_000}
	serialMean, serialFailed := MeasureMTTF(cfg, sim.PrIDEScheme(), 8, 23)
	parMean, parFailed := MeasureMTTFParallel(cfg, sim.PrIDEScheme(), 8, 23, 4)
	if serialFailed < 6 {
		t.Fatalf("insufficient failures: serial %d", serialFailed)
	}
	if serialMean != parMean || serialFailed != parFailed {
		t.Fatalf("serial (%.17g, %d) != parallel (%.17g, %d)",
			serialMean, serialFailed, parMean, parFailed)
	}
}

func TestMeasureMTTFParallelPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 trials did not panic")
		}
	}()
	MeasureMTTFParallel(Config{Params: sysParams(), Banks: 1, TRH: 100, MaxTREFI: 10},
		sim.PrIDEScheme(), 0, 1, 1)
}
