package system

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pride/internal/addrmap"
	"pride/internal/dram"
	"pride/internal/memctrl"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/trace"
	"pride/internal/trialrunner"
)

// Topology scales the per-bank model to a server: N channels × ranks × banks
// as laid out by an addrmap.Mapping, every bank owning its own
// memctrl.Controller, tracker and index-derived rng stream, with per-channel
// RFM budgets and an optional per-bank RowScrambler standing in for the
// vendor's internal row remap.
//
// Banks never interact — tFAW throttles bandwidth, not correctness, and the
// paper's security analysis is per-bank — so a trace replays as independent
// per-bank ACT streams: the demux pass shards the record stream by
// (channel, rank, bank), and a trialrunner pool drains the shards with a
// deterministic shard-order merge. Shard state is built lazily inside each
// shard's trial from index-derived seeds, so results are bit-identical at
// any worker count and across repeated replays of the same source.
type Topology struct {
	cfg      TopologyConfig
	compiled addrmap.Compiled
	params   dram.Params // per-bank params derived from cfg.Params + Mapping
	channels int
	ranks    int
	banks    int
}

// TopologyConfig parameterizes a server topology.
type TopologyConfig struct {
	// Params supplies the per-bank DRAM timing parameters. The structural
	// fields (RowsPerBank, RowBits, BanksPerRank, Banks) are derived from
	// Mapping — the mapping is the single source of geometric truth.
	Params dram.Params
	// Mapping lays out physical addresses over channel/rank/bank/row.
	Mapping addrmap.Mapping
	// Scheme is the Rowhammer mitigation every bank runs.
	Scheme sim.Scheme
	// TRH is the device double-sided Rowhammer threshold under test.
	TRH int
	// Seed derives every bank's tracker stream (index-derived per shard).
	Seed uint64
	// RFMBudgets sets the per-channel RFM threshold: nil or empty uses the
	// scheme's default for every channel, one element applies to every
	// channel, and len == Channels() gives each channel its own budget —
	// the knob for asymmetric-budget experiments.
	RFMBudgets []int
	// ScrambleSeed, when nonzero, gives every bank a RowScrambler keyed by
	// DeriveSeed(ScrambleSeed, shard): trace rows are EXTERNAL addresses,
	// the bank hammers the scrambled INTERNAL geometry, and reported flips
	// are translated back to external rows.
	ScrambleSeed uint64
	// SelfCheck enables runtime invariant guards in every bank's
	// controller, bank and tracker. Not part of the checkpoint key.
	SelfCheck bool
}

// Validate reports whether the configuration is usable.
func (c TopologyConfig) Validate() error {
	if err := c.Mapping.Validate(); err != nil {
		return err
	}
	switch {
	case c.Mapping.RowBits > 30:
		return fmt.Errorf("system: mapping row width %d exceeds the 30-bit shard-queue limit", c.Mapping.RowBits)
	case c.Mapping.RowBits < 2:
		return fmt.Errorf("system: mapping row width %d cannot hold a bank (need >= 2)", c.Mapping.RowBits)
	case c.TRH < 2:
		return fmt.Errorf("system: TRH must be >= 2, got %d", c.TRH)
	case c.Scheme.New == nil:
		return fmt.Errorf("system: scheme %q has no constructor", c.Scheme.Name)
	}
	channels := 1 << c.Mapping.ChannelBits
	if n := len(c.RFMBudgets); n != 0 && n != 1 && n != channels {
		return fmt.Errorf("system: %d RFM budgets for %d channels (want 0, 1, or %d)", n, channels, channels)
	}
	for _, b := range c.RFMBudgets {
		if b < 0 {
			return fmt.Errorf("system: negative RFM budget %d", b)
		}
	}
	return nil
}

// NewTopology derives the full-server geometry from the mapping and returns
// the topology. The per-bank structural parameters are overwritten from the
// mapping; the timing parameters are taken from cfg.Params as given.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		cfg:      cfg,
		compiled: cfg.Mapping.MustCompile(),
		channels: 1 << cfg.Mapping.ChannelBits,
		ranks:    1 << cfg.Mapping.RankBits,
		banks:    1 << cfg.Mapping.BankBits,
	}
	p := cfg.Params
	p.RowBits = cfg.Mapping.RowBits
	p.RowsPerBank = 1 << cfg.Mapping.RowBits
	p.BanksPerRank = t.banks
	p.Banks = t.channels * t.ranks * t.banks
	if p.TFAWLimit > p.Banks || p.TFAWLimit <= 0 {
		p.TFAWLimit = p.Banks
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t.params = p
	return t, nil
}

// Params returns the derived per-bank parameters.
func (t *Topology) Params() dram.Params { return t.params }

// Channels returns the channel count.
func (t *Topology) Channels() int { return t.channels }

// Ranks returns the per-channel rank count.
func (t *Topology) Ranks() int { return t.ranks }

// Banks returns the per-rank bank count.
func (t *Topology) Banks() int { return t.banks }

// Shards returns the total number of independent banks (= replay shards).
func (t *Topology) Shards() int { return t.channels * t.ranks * t.banks }

// shardIndex flattens a coordinate to its shard: channel-major, then rank,
// then bank — the merge order of every replay result.
func (t *Topology) shardIndex(c addrmap.Coord) int {
	return (c.Channel*t.ranks+c.Rank)*t.banks + c.Bank
}

// shardCoord is the inverse of shardIndex.
func (t *Topology) shardCoord(shard int) (channel, rank, bank int) {
	bank = shard % t.banks
	rank = (shard / t.banks) % t.ranks
	channel = shard / (t.banks * t.ranks)
	return
}

// rfmThreshold resolves the channel's RFM budget.
func (t *Topology) rfmThreshold(channel int) int {
	switch len(t.cfg.RFMBudgets) {
	case 0:
		return t.cfg.Scheme.RFMThreshold
	case 1:
		return t.cfg.RFMBudgets[0]
	default:
		return t.cfg.RFMBudgets[channel]
	}
}

// ReplayFlip is one Rowhammer failure observed during replay, in EXTERNAL
// row addresses (unscrambled back when a RowScrambler is active) with the
// bank-local activation index at which it occurred.
type ReplayFlip struct {
	Row      int    `json:"row"`
	ACTIndex uint64 `json:"act_index"`
}

// ShardResult reports one bank's replay: the controller's command counters
// plus the bank's damage summary. It is the unit of checkpointing, so every
// field is serializable.
type ShardResult struct {
	Channel int `json:"channel"`
	Rank    int `json:"rank"`
	Bank    int `json:"bank"`

	ACTs            uint64 `json:"acts"`
	REFs            uint64 `json:"refs"`
	RFMs            uint64 `json:"rfms"`
	Mitigations     uint64 `json:"mitigations"`
	VictimRefreshes uint64 `json:"victim_refreshes"`

	MaxDisturbance int          `json:"max_disturbance"`
	MaxHammers     int          `json:"max_hammers"`
	Flips          []ReplayFlip `json:"flips,omitempty"`
}

// ReplayResult is a full-trace replay: one ShardResult per bank in shard
// order, plus the demux totals.
type ReplayResult struct {
	Shards  []ShardResult
	Records uint64
	// CRC32 fingerprints the decoded record stream (CRC-32C over the
	// little-endian record values); it keys the campaign checkpoint.
	CRC32 uint32
}

// TotalFlips counts flips across all shards.
func (r ReplayResult) TotalFlips() int {
	n := 0
	for i := range r.Shards {
		n += len(r.Shards[i].Flips)
	}
	return n
}

// ChannelSummary aggregates a replay over one channel, for fleet-level
// reporting.
type ChannelSummary struct {
	Channel         int
	ACTs            uint64
	REFs            uint64
	RFMs            uint64
	Mitigations     uint64
	VictimRefreshes uint64
	Flips           int
	MaxDisturbance  int
}

// PerChannel aggregates the shard results by channel, in channel order.
func (r ReplayResult) PerChannel() []ChannelSummary {
	var out []ChannelSummary
	byChannel := map[int]int{}
	for i := range r.Shards {
		s := &r.Shards[i]
		idx, ok := byChannel[s.Channel]
		if !ok {
			idx = len(out)
			byChannel[s.Channel] = idx
			out = append(out, ChannelSummary{Channel: s.Channel})
		}
		c := &out[idx]
		c.ACTs += s.ACTs
		c.REFs += s.REFs
		c.RFMs += s.RFMs
		c.Mitigations += s.Mitigations
		c.VictimRefreshes += s.VictimRefreshes
		c.Flips += len(s.Flips)
		if s.MaxDisturbance > c.MaxDisturbance {
			c.MaxDisturbance = s.MaxDisturbance
		}
	}
	return out
}

// ReplaySink receives coarse progress counters from a running replay:
// demuxed records and their byte volume. internal/obs.Campaign satisfies it
// structurally; a sink is observation-only.
type ReplaySink interface {
	AddRecords(n int64)
	AddBytes(n int64)
}

// activationSink is the optional ReplaySink capability for counting replayed
// activations per completed shard (internal/obs.Campaign implements it).
type activationSink interface{ AddActivations(n int64) }

// mitigationSink is the optional ReplaySink capability for counting
// dispatched mitigations (internal/obs.Campaign implements it).
type mitigationSink interface{ AddMitigations(n int64) }

// ReplayOptions configures a cancellable, checkpointable, observable replay
// campaign. The zero value replays serially with no checkpoint or metering.
// There is no Engine knob: replay is inherently exact, one trace record per
// demand ACT.
type ReplayOptions struct {
	// Workers is the pool size; 0 selects trialrunner.DefaultWorkers().
	// Workers never affects the result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the replay's canonical key (configuration + trace
	// fingerprint, never the worker count).
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives demux and per-shard counter updates.
	Progress ReplaySink
	// Observer, when non-nil, receives per-shard lifecycle callbacks.
	Observer trialrunner.Observer
	// Retry bounds re-execution of panicked/errored shards.
	Retry trialrunner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults into shard
	// execution and checkpoint I/O (chaos testing).
	Faults trialrunner.TrialFaults
}

// ReplayCampaignKey is the canonical checkpoint key of a replay campaign:
// the topology configuration plus the decoded trace's length and
// fingerprint — everything a shard's outcome depends on, and nothing else
// (in particular not the worker count).
func ReplayCampaignKey(cfg TopologyConfig, records uint64, crc uint32) string {
	return fmt.Sprintf("system.replay|scheme=%s|params=%+v|mapping=%s|trh=%d|rfm=%v|scramble=%d|seed=%d|records=%d|crc=%08x",
		cfg.Scheme.Name, cfg.Params, cfg.Mapping.String(), cfg.TRH, cfg.RFMBudgets,
		cfg.ScrambleSeed, cfg.Seed, records, crc)
}

// demuxBatch is the record batch size of the demux pass: large enough to
// amortize the Source call, small enough to stay in cache.
const demuxBatch = 4096

// demux shards the record stream by (channel, rank, bank) into per-shard
// row queues, fingerprinting the decoded records as it goes. The source's
// mapping must equal the topology's — a trace recorded under one geometry
// must not silently replay under another.
func (t *Topology) demux(src trace.Source, sink ReplaySink) (queues [][]int32, records uint64, crc uint32, err error) {
	if sm := src.Mapping(); sm != t.cfg.Mapping {
		return nil, 0, 0, fmt.Errorf("system: trace mapping %s differs from topology mapping %s",
			sm.String(), t.cfg.Mapping.String())
	}
	queues = make([][]int32, t.Shards())
	var (
		batch [demuxBatch]uint64
		le    [demuxBatch * 8]byte
	)
	for {
		n, rerr := src.ReadBatch(batch[:])
		for i, addr := range batch[:n] {
			channel, rank, bank, row := t.compiled.Route(addr)
			shard := (channel*t.ranks+rank)*t.banks + bank
			queues[shard] = append(queues[shard], int32(row))
			binary.LittleEndian.PutUint64(le[i*8:], addr)
		}
		// One CRC pass per batch: the fingerprint is over the little-endian
		// record bytes, identical to a per-record update but ~8x cheaper.
		crc = crc32.Update(crc, castagnoli, le[:n*8])
		records += uint64(n)
		if sink != nil && n > 0 {
			sink.AddRecords(int64(n))
			sink.AddBytes(int64(n) * trace.RecordSize)
		}
		if rerr == io.EOF {
			return queues, records, crc, nil
		}
		if rerr != nil {
			return nil, 0, 0, rerr
		}
	}
}

// castagnoli matches internal/trace's record CRC polynomial, so the demux
// fingerprint of a binary trace's records is comparable across runs
// regardless of the source implementation.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// replayShard replays one bank's row queue from scratch: tracker, bank,
// scrambler and stream are all built from index-derived seeds inside the
// shard, so the result depends only on (config, shard, queue) — the
// property that makes replay bit-identical at any worker count and across
// resumed campaigns.
func (t *Topology) replayShard(shard int, rows []int32) ShardResult {
	channel, rank, bank := t.shardCoord(shard)
	stream := rng.Derived(t.cfg.Seed, uint64(shard))
	trk := t.cfg.Scheme.New(t.params, stream)
	dbank := dram.MustNewBank(t.params, t.cfg.TRH)
	mcfg := memctrl.DefaultConfig(t.params)
	mcfg.RFMThreshold = t.rfmThreshold(channel)
	if t.cfg.Scheme.MitigationEveryNREF > 0 {
		mcfg.MitigationEveryNREF = t.cfg.Scheme.MitigationEveryNREF
	}
	mcfg.SelfCheck = t.cfg.SelfCheck
	ctrl := memctrl.New(mcfg, dbank, trk)

	var scr *addrmap.RowScrambler
	if t.cfg.ScrambleSeed != 0 {
		scr = addrmap.NewRowScrambler(t.params.RowsPerBank, rng.DeriveSeed(t.cfg.ScrambleSeed, uint64(shard)))
	}
	if scr != nil {
		for _, row := range rows {
			ctrl.Activate(scr.Scramble(int(row)))
		}
	} else {
		for _, row := range rows {
			ctrl.Activate(int(row))
		}
	}

	stats := ctrl.Stats()
	res := ShardResult{
		Channel:         channel,
		Rank:            rank,
		Bank:            bank,
		ACTs:            stats.ACTs,
		REFs:            stats.REFs,
		RFMs:            stats.RFMs,
		Mitigations:     stats.Mitigations,
		VictimRefreshes: stats.VictimRefreshes,
		MaxDisturbance:  dbank.MaxDisturbance(),
		MaxHammers:      dbank.MaxHammers(),
	}
	for _, f := range dbank.Flips() {
		row := f.Row
		if scr != nil {
			// The bank flipped an internal row; victim accounting reports
			// the external address the attacker (and the trace) sees.
			row = scr.Unscramble(row)
		}
		res.Flips = append(res.Flips, ReplayFlip{Row: row, ACTIndex: f.ACTIndex})
	}
	return res
}

// Replay replays a trace serially: ReplayCampaign with one worker and no
// checkpoint.
func (t *Topology) Replay(src trace.Source) (ReplayResult, error) {
	return t.ReplayCampaign(context.Background(), src, ReplayOptions{Workers: 1})
}

// ReplayCampaign replays a trace across the topology: the demux pass shards
// the stream, then a trialrunner pool drains the shards with a
// deterministic shard-order merge — bit-identical at any worker count —
// with cancellation, graceful drain, durable checkpoint/resume and progress
// metering, the same campaign contract the TTF CLIs keep.
func (t *Topology) ReplayCampaign(ctx context.Context, src trace.Source, opts ReplayOptions) (ReplayResult, error) {
	queues, records, crc, err := t.demux(src, opts.Progress)
	if err != nil {
		return ReplayResult{}, err
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = ReplayCampaignKey(t.cfg, records, crc)
	}
	var onDone func(i int, r ShardResult) error
	if sink := opts.Progress; sink != nil {
		as, hasActs := sink.(activationSink)
		ms, hasMits := sink.(mitigationSink)
		onDone = func(i int, r ShardResult) error {
			if hasActs {
				as.AddActivations(int64(r.ACTs))
			}
			if hasMits {
				ms.AddMitigations(int64(r.Mitigations))
			}
			return nil
		}
	}
	ropts := trialrunner.Options{Workers: opts.Workers, Observer: opts.Observer, Retry: opts.Retry, Faults: opts.Faults}
	shards, err := trialrunner.MapCheckpointed(ctx, t.Shards(), func(i int) ShardResult {
		return t.replayShard(i, queues[i])
	}, onDone, ropts, cp)
	if err != nil {
		return ReplayResult{}, err
	}
	return ReplayResult{Shards: shards, Records: records, CRC32: crc}, nil
}
