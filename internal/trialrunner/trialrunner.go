// Package trialrunner shards seeded, independent-trial experiments across a
// pool of worker goroutines with bit-for-bit deterministic merged output
// regardless of the worker count.
//
// The simulation workloads in this repository (Monte-Carlo loss estimation,
// attack-suite trials, time-to-fail sampling) all share the same structure:
// many independent trials, each driven by its own RNG stream, whose partial
// results combine through an order-insensitive-in-principle but
// order-fixed-in-practice merge (counter sums, running maxima with
// first-wins tie-breaking). Two rules make the output worker-count
// invariant:
//
//  1. Trial i derives its RNG stream from the experiment seed by index
//     (rng.DeriveSeed(base, i)), never from shared mutable state, so the
//     stream a trial consumes does not depend on which worker runs it or
//     when.
//  2. Partial results are merged strictly in trial order (0, 1, 2, ...),
//     never in completion order, so non-commutative details of the merge
//     (tie-breaking, float summation order) are fixed.
//
// With workers == 1 the runner executes every trial inline on the calling
// goroutine — the exact serial path, with no goroutines or channels — and
// any workers >= 2 produces bit-identical merged results.
package trialrunner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
)

// DefaultWorkers returns the default pool size: runtime.NumCPU().
func DefaultWorkers() int {
	return runtime.NumCPU()
}

// ValidateWorkers reports whether a worker count is usable. CLIs surface
// this error for their -workers flag; the Run/Map entry points panic on the
// same condition because by then it is a programmer error.
func ValidateWorkers(workers int) error {
	if workers < 1 {
		return fmt.Errorf("trialrunner: workers must be >= 1, got %d", workers)
	}
	return nil
}

// Map executes trials 0..trials-1 on up to `workers` goroutines and returns
// their results indexed by trial number. The assignment of trials to workers
// is dynamic (an atomic work counter, so long trials do not stall the pool),
// but the returned slice depends only on the trial function.
//
// A panicking trial re-panics on the calling goroutine (wrapped in a
// *PanicError), never on a worker: programmer errors still fail loudly, but
// the sibling trials finish first and the process dies with a stack that
// names the trial. Cancellable or error-reporting callers should use MapOpts
// instead.
func Map[R any](workers, trials int, trial func(i int) R) []R {
	if err := ValidateWorkers(workers); err != nil {
		panic(err)
	}
	results, err := MapOpts(context.Background(), trials, trial, nil, Options{Workers: workers})
	MustPanicFree(err)
	return results
}

// MustPanicFree panics if err is non-nil. A *PanicError re-panics with the
// original trial's stack appended, so the process still dies with a trace
// that names the faulty trial. The panic-propagating wrappers (Map, and the
// engines' Parallel entry points, which delegate to their cancellable
// Campaign counterparts) use it to keep their historical fail-loud contract.
func MustPanicFree(err error) {
	if err == nil {
		return
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(fmt.Sprintf("%v\n%s", err, pe.Stack))
	}
	panic(err)
}

// Run executes trials 0..trials-1 across `workers` goroutines and folds the
// partial results strictly in trial order:
//
//	acc := trial(0); acc = merge(acc, trial(1)); ... ; merge(acc, trial(n-1))
//
// merge may mutate and return its first argument (every partial result is
// owned by the fold once its trial completes). Because the fold order is
// fixed, merge does not need to be commutative — running maxima with
// first-wins tie-breaking and float accumulation both come out bit-identical
// for every worker count. Requires trials >= 1.
func Run[R any](workers, trials int, trial func(i int) R, merge func(acc, next R) R) R {
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: Run requires trials >= 1, got %d", trials))
	}
	results := Map(workers, trials, trial)
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc
}
