// Package trialrunner shards seeded, independent-trial experiments across a
// pool of worker goroutines with bit-for-bit deterministic merged output
// regardless of the worker count.
//
// The simulation workloads in this repository (Monte-Carlo loss estimation,
// attack-suite trials, time-to-fail sampling) all share the same structure:
// many independent trials, each driven by its own RNG stream, whose partial
// results combine through an order-insensitive-in-principle but
// order-fixed-in-practice merge (counter sums, running maxima with
// first-wins tie-breaking). Two rules make the output worker-count
// invariant:
//
//  1. Trial i derives its RNG stream from the experiment seed by index
//     (rng.DeriveSeed(base, i)), never from shared mutable state, so the
//     stream a trial consumes does not depend on which worker runs it or
//     when.
//  2. Partial results are merged strictly in trial order (0, 1, 2, ...),
//     never in completion order, so non-commutative details of the merge
//     (tie-breaking, float summation order) are fixed.
//
// With workers == 1 the runner executes every trial inline on the calling
// goroutine — the exact serial path, with no goroutines or channels — and
// any workers >= 2 produces bit-identical merged results.
package trialrunner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool size: runtime.NumCPU().
func DefaultWorkers() int {
	return runtime.NumCPU()
}

// ValidateWorkers reports whether a worker count is usable. CLIs surface
// this error for their -workers flag; the Run/Map entry points panic on the
// same condition because by then it is a programmer error.
func ValidateWorkers(workers int) error {
	if workers < 1 {
		return fmt.Errorf("trialrunner: workers must be >= 1, got %d", workers)
	}
	return nil
}

// Map executes trials 0..trials-1 on up to `workers` goroutines and returns
// their results indexed by trial number. The assignment of trials to workers
// is dynamic (an atomic work counter, so long trials do not stall the pool),
// but the returned slice depends only on the trial function.
func Map[R any](workers, trials int, trial func(i int) R) []R {
	if err := ValidateWorkers(workers); err != nil {
		panic(err)
	}
	if trials < 0 {
		panic(fmt.Sprintf("trialrunner: trials must be >= 0, got %d", trials))
	}
	results := make([]R, trials)
	if trials == 0 {
		return results
	}
	if workers > trials {
		workers = trials
	}
	if workers == 1 {
		for i := 0; i < trials; i++ {
			results[i] = trial(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				results[i] = trial(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// Run executes trials 0..trials-1 across `workers` goroutines and folds the
// partial results strictly in trial order:
//
//	acc := trial(0); acc = merge(acc, trial(1)); ... ; merge(acc, trial(n-1))
//
// merge may mutate and return its first argument (every partial result is
// owned by the fold once its trial completes). Because the fold order is
// fixed, merge does not need to be commutative — running maxima with
// first-wins tie-breaking and float accumulation both come out bit-identical
// for every worker count. Requires trials >= 1.
func Run[R any](workers, trials int, trial func(i int) R, merge func(acc, next R) R) R {
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: Run requires trials >= 1, got %d", trials))
	}
	results := Map(workers, trials, trial)
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc
}
