package trialrunner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// cpResult is a representative trial result: counters that must survive the
// JSON round trip exactly.
type cpResult struct {
	Trial  int
	Counts []uint64
}

func cpTrial(i int) cpResult {
	return cpResult{Trial: i, Counts: []uint64{uint64(i) * 3, 1 << uint(i%60), ^uint64(0) - uint64(i)}}
}

func cpMerge(a, b cpResult) cpResult {
	for i := range b.Counts {
		a.Counts[i] += b.Counts[i]
	}
	return a
}

func tmpCheckpoint(t *testing.T) Checkpoint {
	t.Helper()
	return Checkpoint{Path: filepath.Join(t.TempDir(), "run.ckpt"), Key: "test|seed=1"}
}

func TestRunCheckpointedCompletesAndCleansUp(t *testing.T) {
	cp := tmpCheckpoint(t)
	want := Run(1, 17, cpTrial, cpMerge)
	got, err := RunCheckpointed(context.Background(), 17, cpTrial, cpMerge, nil, Options{Workers: 3}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointed result differs:\n got %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(cp.Path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file not removed after completion: %v", err)
	}
}

func TestRunCheckpointedResumeIsBitIdentical(t *testing.T) {
	const trials = 40
	want := Run(1, trials, cpTrial, cpMerge)

	for _, cancelAt := range []int64{1, 7, 20, 39} {
		for _, workers := range []int{1, 2, 7} {
			cp := tmpCheckpoint(t)
			ctx, cancel := context.WithCancel(context.Background())
			var done atomic.Int64
			_, err := RunCheckpointed(ctx, trials, cpTrial, cpMerge, func(i int, r cpResult) error {
				if done.Add(1) == cancelAt {
					cancel()
				}
				return nil
			}, Options{Workers: workers}, cp)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelAt=%d workers=%d: err = %v, want Canceled", cancelAt, workers, err)
			}
			if _, err := os.Stat(cp.Path); err != nil {
				t.Fatalf("cancelAt=%d workers=%d: interrupted run kept no checkpoint: %v", cancelAt, workers, err)
			}

			// Resume at a different worker count than the interrupted run.
			var fresh atomic.Int64
			got, err := RunCheckpointed(context.Background(), trials,
				func(i int) cpResult { fresh.Add(1); return cpTrial(i) },
				cpMerge, nil, Options{Workers: workers%3 + 1}, cp)
			if err != nil {
				t.Fatalf("cancelAt=%d workers=%d: resume failed: %v", cancelAt, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cancelAt=%d workers=%d: resumed result differs from uninterrupted run", cancelAt, workers)
			}
			if n := fresh.Load(); n > trials-cancelAt {
				t.Fatalf("cancelAt=%d workers=%d: resume re-ran %d trials, at most %d were outstanding",
					cancelAt, workers, n, trials-cancelAt)
			}
		}
	}
}

func TestMapCheckpointedToleratesTruncatedTail(t *testing.T) {
	const trials = 12
	cp := tmpCheckpoint(t)
	// Write a complete checkpoint by interrupting at the very end, then chop
	// bytes off the tail to simulate a crash mid-write.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, err := MapCheckpointed(ctx, trials, cpTrial, func(i int, r cpResult) error {
		if done.Add(1) == trials-1 {
			cancel()
		}
		return nil
	}, Options{Workers: 1}, cp)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cp.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp.Path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := MapCheckpointed(context.Background(), trials, cpTrial, nil, Options{Workers: 2}, cp)
	if err != nil {
		t.Fatalf("resume over truncated tail failed: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d corrupted after truncated-tail resume", i)
		}
	}
}

func TestCheckpointKeyMismatchRejected(t *testing.T) {
	cp := tmpCheckpoint(t)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, _ = MapCheckpointed(ctx, 10, cpTrial, func(i int, r cpResult) error {
		if done.Add(1) == 3 {
			cancel()
		}
		return nil
	}, Options{Workers: 1}, cp)
	cancel()

	other := cp
	other.Key = "test|seed=2"
	_, err := MapCheckpointed(context.Background(), 10, cpTrial, nil, Options{Workers: 1}, other)
	if err == nil || !strings.Contains(err.Error(), "different experiment") {
		t.Fatalf("key mismatch not rejected: %v", err)
	}

	_, err = MapCheckpointed(context.Background(), 11, cpTrial, nil, Options{Workers: 1}, cp)
	if err == nil || !strings.Contains(err.Error(), "trials") {
		t.Fatalf("trial-count mismatch not rejected: %v", err)
	}
}

func TestCheckpointPanickedTrialNotRecorded(t *testing.T) {
	cp := tmpCheckpoint(t)
	_, err := MapCheckpointed(context.Background(), 6, func(i int) cpResult {
		if i == 2 {
			panic("flaky trial")
		}
		return cpTrial(i)
	}, nil, Options{Workers: 2}, cp)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Trial != 2 {
		t.Fatalf("err = %v, want PanicError for trial 2", err)
	}
	// The checkpoint survives with the healthy trials; a fixed binary can
	// resume and only re-run the panicked one.
	var fresh atomic.Int64
	got, err := MapCheckpointed(context.Background(), 6, func(i int) cpResult {
		fresh.Add(1)
		return cpTrial(i)
	}, nil, Options{Workers: 1}, cp)
	if err != nil {
		t.Fatalf("resume after panic failed: %v", err)
	}
	if fresh.Load() != 1 {
		t.Fatalf("resume re-ran %d trials, want just the panicked one", fresh.Load())
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d wrong after panic-resume", i)
		}
	}
}

// skipCountingObserver also implements the checkpoint layer's skipReporter.
type skipCountingObserver struct {
	countingObserver
	skipped atomic.Int64
}

func (o *skipCountingObserver) SkipTrials(n int) { o.skipped.Add(int64(n)) }

func TestCheckpointReportsSkipsToObserver(t *testing.T) {
	cp := tmpCheckpoint(t)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, _ = MapCheckpointed(ctx, 10, cpTrial, func(i int, r cpResult) error {
		if done.Add(1) == 4 {
			cancel()
		}
		return nil
	}, Options{Workers: 1}, cp)
	cancel()

	var obs skipCountingObserver
	_, err := MapCheckpointed(context.Background(), 10, cpTrial, nil, Options{Workers: 2, Observer: &obs}, cp)
	if err != nil {
		t.Fatal(err)
	}
	skipped := obs.skipped.Load()
	if skipped < 4 || skipped >= 10 {
		t.Fatalf("observer told of %d restored trials, interrupted run completed at least 4", skipped)
	}
	if obs.starts.Load() != 10-skipped {
		t.Fatalf("observer saw %d fresh starts with %d restored", obs.starts.Load(), skipped)
	}
}

func TestCheckpointDisabledPassthrough(t *testing.T) {
	got, err := MapCheckpointed(context.Background(), 5, cpTrial, nil, Options{Workers: 1}, Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestCheckpointCreatesParentDirectory(t *testing.T) {
	dir := t.TempDir()
	cp := Checkpoint{Path: filepath.Join(dir, "nested", "deep", "run.ckpt"), Key: "k"}
	_, err := MapCheckpointed(context.Background(), 3, cpTrial, nil, Options{Workers: 1}, cp)
	if err != nil {
		t.Fatal(err)
	}
}
