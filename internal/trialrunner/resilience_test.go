package trialrunner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pride/internal/faultinject"
)

func TestCheckpointShortWriteRetriesAndRecovers(t *testing.T) {
	const trials = 10
	cp := tmpCheckpoint(t)
	cp.RetryBackoff = time.Microsecond
	inj := faultinject.New(1)
	// The 2nd checkpoint write tears: half the pending payload lands on disk
	// and the write fails. The bounded retry replays the full payload after a
	// newline terminator isolates the fragment.
	inj.Arm(faultinject.SiteCheckpointWrite, faultinject.Trigger{Nth: 2, Kind: faultinject.KindShortWrite})
	obs := &retryObs{}
	got, err := MapCheckpointed(context.Background(), trials, cpTrial, nil,
		Options{Workers: 1, Observer: obs, Faults: inj}, cp)
	if err != nil {
		t.Fatalf("short-write fault was not retried away: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d corrupted after short-write recovery", i)
		}
	}
	if _, err := os.Stat(cp.Path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not removed after recovered completion: %v", err)
	}
	if n := obs.cpRetries.Load(); n < 1 {
		t.Fatalf("checkpoint retries = %d, want >= 1", n)
	}
	if inj.Fired(faultinject.SiteCheckpointWrite) != 1 {
		t.Fatalf("checkpoint.write fired %d times, want 1", inj.Fired(faultinject.SiteCheckpointWrite))
	}
}

func TestCheckpointPersistentWriteFaultSurfaces(t *testing.T) {
	cp := tmpCheckpoint(t)
	cp.Retries = 2
	cp.RetryBackoff = time.Microsecond
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteCheckpointWrite, faultinject.Trigger{Every: 1})
	_, err := MapCheckpointed(context.Background(), 4, cpTrial, nil,
		Options{Workers: 1, Faults: inj}, cp)
	if err == nil {
		t.Fatal("persistent write fault did not surface")
	}
	if !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("error does not report the exhausted attempts: %v", err)
	}
}

func TestCheckpointMidFileCorruptionKeepsIntactRecords(t *testing.T) {
	const trials = 10
	cp := tmpCheckpoint(t)
	// Interrupt just before the end so a populated checkpoint survives.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, err := MapCheckpointed(ctx, trials, cpTrial, func(i int, r cpResult) error {
		if done.Add(1) == trials-1 {
			cancel()
		}
		return nil
	}, Options{Workers: 1}, cp)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	// Flip one byte inside a MIDDLE record's payload. The CRC no longer
	// matches, so that one record is dropped and re-run; every other record
	// is kept.
	data, err := os.ReadFile(cp.Path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 5 {
		t.Fatalf("checkpoint has %d lines, want enough to corrupt a middle record", len(lines))
	}
	target := lines[3] // header is line 0; this is the 3rd record
	var rec checkpointRecord
	if err := json.Unmarshal(target, &rec); err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndexByte(target, '1')
	if idx < 0 {
		idx = bytes.LastIndexByte(target, '0')
	}
	target[idx] ^= 0x04 // still a digit, still valid JSON, wrong CRC
	if err := os.WriteFile(cp.Path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var fresh atomic.Int64
	got, err := MapCheckpointed(context.Background(), trials,
		func(i int) cpResult { fresh.Add(1); return cpTrial(i) },
		nil, Options{Workers: 1}, cp)
	if err != nil {
		t.Fatalf("resume over corrupted record failed: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d wrong after corruption recovery", i)
		}
	}
	// Exactly the corrupted record and the one outstanding trial re-ran;
	// the other stored records were all kept.
	if n := fresh.Load(); n != 2 {
		t.Fatalf("resume re-ran %d trials, want 2 (1 corrupted + 1 outstanding)", n)
	}
}

func TestCheckpointLegacyV1Loads(t *testing.T) {
	const trials = 6
	cp := tmpCheckpoint(t)
	// Hand-write a version-1 file: no CRC on the records, as written before
	// the checksum existed.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Version: 1, Key: cp.Key, Trials: trials}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		raw, err := json.Marshal(cpTrial(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(checkpointRecord{Trial: i, Result: raw}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(cp.Path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var fresh atomic.Int64
	got, err := MapCheckpointed(context.Background(), trials,
		func(i int) cpResult { fresh.Add(1); return cpTrial(i) },
		nil, Options{Workers: 1}, cp)
	if err != nil {
		t.Fatalf("version-1 checkpoint did not load: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d wrong after v1 resume", i)
		}
	}
	if n := fresh.Load(); n != 2 {
		t.Fatalf("v1 resume re-ran %d trials, want the 2 missing ones", n)
	}
}

func TestCheckpointKeyMismatchErrorIsActionable(t *testing.T) {
	cp := tmpCheckpoint(t)
	// Populate under one key, reopen under another.
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCheckpointed(ctx, 4, cpTrial, func(i int, r cpResult) error {
		cancel()
		return nil
	}, Options{Workers: 1}, cp)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	other := cp
	other.Key = "test|seed=2"
	_, err = MapCheckpointed(context.Background(), 4, cpTrial, nil, Options{Workers: 1}, other)
	if err == nil {
		t.Fatal("key mismatch accepted")
	}
	if !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("mismatch error does not wrap ErrStaleCheckpoint: %v", err)
	}
	for _, want := range []string{cp.Key, other.Key, "-checkpoint-force", cp.Path} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error missing %q:\n%v", want, err)
		}
	}
}

func TestCheckpointForceFreshArchivesStale(t *testing.T) {
	cp := tmpCheckpoint(t)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCheckpointed(ctx, 4, cpTrial, func(i int, r cpResult) error {
		cancel()
		return nil
	}, Options{Workers: 1}, cp)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	forced := cp
	forced.Key = "test|seed=2"
	forced.ForceFresh = true
	got, err := MapCheckpointed(context.Background(), 4, cpTrial, nil, Options{Workers: 1}, forced)
	if err != nil {
		t.Fatalf("ForceFresh did not recover from the stale checkpoint: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("trial %d wrong after forced-fresh run", i)
		}
	}
	data, err := os.ReadFile(cp.Path + staleSuffix)
	if err != nil {
		t.Fatalf("stale checkpoint was not archived: %v", err)
	}
	if !bytes.Contains(data, []byte(cp.Key)) {
		t.Fatal("archived file does not hold the original checkpoint")
	}
}

func TestCheckpointForceFreshDoesNotMaskIOErrors(t *testing.T) {
	cp := tmpCheckpoint(t)
	cp.ForceFresh = true
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteCheckpointOpen, faultinject.Trigger{Nth: 1})
	_, err := MapCheckpointed(context.Background(), 4, cpTrial, nil,
		Options{Workers: 1, Faults: inj}, cp)
	if err == nil {
		t.Fatal("ForceFresh swallowed an injected open failure")
	}
	if errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("I/O failure misclassified as stale: %v", err)
	}
}

func TestResumeBitIdenticalUnderInjectedWriteFaults(t *testing.T) {
	const trials = 16
	want, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	cp := tmpCheckpoint(t)
	cp.RetryBackoff = time.Microsecond
	inj := faultinject.New(3)
	// Torn writes keep firing while the run progresses, and the cancel site
	// interrupts it partway: the surviving checkpoint must contain only
	// intact records.
	inj.Arm(faultinject.SiteCheckpointWrite, faultinject.Trigger{Every: 3, Kind: faultinject.KindShortWrite})
	inj.Arm(faultinject.SiteTrialCancel, faultinject.Trigger{Nth: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj.BindCancel(cancel)
	_, err = MapCheckpointed(ctx, trials, cpTrial, nil, Options{Workers: 1, Faults: inj}, cp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("chaos run err = %v, want Canceled", err)
	}
	if _, err := os.Stat(cp.Path); err != nil {
		t.Fatalf("interrupted chaos run kept no checkpoint: %v", err)
	}

	// Undisturbed resume merges the surviving records with fresh trials into
	// the exact undisturbed result.
	got, err := MapCheckpointed(context.Background(), trials, cpTrial, nil, Options{Workers: 2}, cp)
	if err != nil {
		t.Fatalf("resume after chaos run failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed result differs from undisturbed run after injected write faults")
	}
}

func TestCheckpointCreateAndRenameFaultsSurface(t *testing.T) {
	for _, site := range []string{faultinject.SiteCheckpointCreate, faultinject.SiteCheckpointRename} {
		cp := tmpCheckpoint(t)
		inj := faultinject.New(1)
		inj.Arm(site, faultinject.Trigger{Nth: 1})
		_, err := MapCheckpointed(context.Background(), 3, cpTrial, nil,
			Options{Workers: 1, Faults: inj}, cp)
		if err == nil {
			t.Fatalf("site %s: injected fault did not surface", site)
		}
		var fault *faultinject.Fault
		if !errors.As(err, &fault) {
			t.Fatalf("site %s: error does not expose the injected fault: %v", site, err)
		}
		if fault.Site != site {
			t.Fatalf("fault fired at %s, want %s", fault.Site, site)
		}
	}
}

func FuzzLoadCheckpoint(f *testing.F) {
	// Seed corpus: a valid v2 file, a valid v1 file, torn and corrupted
	// variants, wrong headers, junk.
	valid := func(version int) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.Encode(checkpointHeader{Magic: checkpointMagic, Version: version, Key: "fuzz", Trials: 8})
		for i := 0; i < 5; i++ {
			raw, _ := json.Marshal(cpTrial(i))
			rec := checkpointRecord{Trial: i, Result: raw}
			if version >= 2 {
				rec.CRC = recordCRC(i, raw)
			}
			enc.Encode(rec)
		}
		return buf.Bytes()
	}
	v2 := valid(2)
	f.Add(v2)
	f.Add(valid(1))
	f.Add(v2[:len(v2)-7])
	f.Add([]byte(`{"magic":"pride-checkpoint","version":2,"key":"fuzz","trials":8}` + "\n" + `{"trial":99,"result":1,"crc":0}`))
	f.Add([]byte(`{"magic":"other","version":9}`))
	f.Add([]byte("\x00\xff garbage\n{{{"))
	f.Add([]byte(""))
	mangled := append([]byte{}, v2...)
	mangled[len(mangled)/2] ^= 0x20
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := t.TempDir() + "/fuzz.ckpt"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		const trials = 8
		stored, err := loadCheckpoint(Checkpoint{Path: path, Key: "fuzz"}, trials, nil)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		for trial, raw := range stored {
			if trial < 0 || trial >= trials {
				t.Fatalf("loadCheckpoint returned out-of-range trial %d", trial)
			}
			if len(raw) == 0 {
				t.Fatalf("loadCheckpoint returned empty payload for trial %d", trial)
			}
			if !json.Valid(raw) {
				t.Fatalf("loadCheckpoint returned invalid JSON for trial %d: %q", trial, raw)
			}
		}
	})
}
