package trialrunner

import (
	"fmt"
	"runtime"
	"testing"

	"pride/internal/rng"
)

// workerCounts is the satellite-mandated determinism grid: serial, a small
// pool, and the machine's full width.
func workerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestMapReturnsResultsInTrialOrder(t *testing.T) {
	for _, workers := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := Map(workers, 100, func(i int) int { return i * i })
			for i, v := range got {
				if v != i*i {
					t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestRunFoldsInTrialOrder(t *testing.T) {
	// A deliberately non-commutative merge (list append): the fold order,
	// and hence the output, must be 0..n-1 for every worker count.
	want := make([]int, 64)
	for i := range want {
		want[i] = i
	}
	for _, workers := range workerCounts() {
		got := Run(workers, len(want),
			func(i int) []int { return []int{i} },
			func(acc, next []int) []int { return append(acc, next...) })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: fold order broken at %d: got %d", workers, i, got[i])
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// A seeded stochastic trial: each trial consumes its own derived RNG
	// stream, so the merged sum must be identical for every worker count.
	const seed, trials = 99, 200
	trial := func(i int) uint64 {
		s := rng.Derived(seed, uint64(i))
		total := uint64(0)
		for d := 0; d < 1000; d++ {
			total += s.Uint64()
		}
		return total
	}
	merge := func(a, b uint64) uint64 { return a + b }
	want := Run(1, trials, trial, merge)
	for _, workers := range workerCounts()[1:] {
		if got := Run(workers, trials, trial, merge); got != want {
			t.Fatalf("workers=%d: merged sum %#x != serial %#x", workers, got, want)
		}
	}
}

func TestMapHandlesEdgeShapes(t *testing.T) {
	if got := Map(8, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("0 trials returned %d results", len(got))
	}
	// More workers than trials: the pool must clamp, not deadlock.
	got := Map(64, 3, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if err := ValidateWorkers(bad); err == nil {
			t.Errorf("workers=%d accepted", bad)
		}
	}
	for _, good := range []int{1, 2, 128} {
		if err := ValidateWorkers(good); err != nil {
			t.Errorf("workers=%d rejected: %v", good, err)
		}
	}
}

func TestDefaultWorkersMatchesNumCPU(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Fatalf("DefaultWorkers() = %d, want %d", got, runtime.NumCPU())
	}
}

func TestMapPanicsOnInvalidInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Map(0 workers)", func() { Map(0, 5, func(i int) int { return i }) })
	mustPanic("Map(-1 trials)", func() { Map(1, -1, func(i int) int { return i }) })
	mustPanic("Run(0 trials)", func() {
		Run(1, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	})
}
