package trialrunner

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pride/internal/faultinject"
)

// retryObs counts the optional resilience callbacks alongside the required
// Observer pair, mirroring what obs.Campaign implements.
type retryObs struct {
	starts, ends, retries, quarantined, cpRetries atomic.Int64
}

func (o *retryObs) TrialStart(int)               { o.starts.Add(1) }
func (o *retryObs) TrialEnd(int, time.Duration)  { o.ends.Add(1) }
func (o *retryObs) AddTrialRetries(n int64)      { o.retries.Add(n) }
func (o *retryObs) AddQuarantined(n int64)       { o.quarantined.Add(n) }
func (o *retryObs) SkipTrials(n int)             {}
func (o *retryObs) AddCheckpointRetries(n int64) { o.cpRetries.Add(n) }

func TestRetryRecoversTransientErrorFault(t *testing.T) {
	const trials = 6
	want, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	// Trial index 2 fails its first attempt (default Attempts = 1 leading
	// attempt); the retry replays the same trial-derived work and succeeds.
	inj.Arm(faultinject.SiteTrialErr, faultinject.Trigger{Nth: 3})
	obs := &retryObs{}
	got, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{
		Workers:  2,
		Observer: obs,
		Retry:    RetryPolicy{Attempts: 2},
		Faults:   inj,
	})
	if err != nil {
		t.Fatalf("retry did not recover the transient fault: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retried run differs from undisturbed run:\n got %+v\nwant %+v", got, want)
	}
	if n := obs.retries.Load(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := obs.quarantined.Load(); n != 0 {
		t.Fatalf("quarantined = %d, want 0", n)
	}
	if obs.starts.Load() != trials || obs.ends.Load() != trials {
		t.Fatalf("observer saw %d starts / %d ends, want %d each (once per trial, not per attempt)",
			obs.starts.Load(), obs.ends.Load(), trials)
	}
}

func TestRetryRecoversPanicKindFault(t *testing.T) {
	const trials = 4
	want, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteTrialPanic, faultinject.Trigger{Nth: 1, Kind: faultinject.KindPanic})
	got, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{
		Workers: 1,
		Retry:   RetryPolicy{Attempts: 2},
		Faults:  inj,
	})
	if err != nil {
		t.Fatalf("retry did not recover the injected panic: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("retried run differs from undisturbed run")
	}
	if inj.Fired(faultinject.SiteTrialPanic) == 0 {
		t.Fatal("panic fault never fired")
	}
}

func TestQuarantineAfterExhaustedRetries(t *testing.T) {
	const trials = 5
	inj := faultinject.New(1)
	// Trial index 1 fails EVERY attempt: the retry budget runs dry and the
	// trial is quarantined, while the other trials complete normally.
	inj.Arm(faultinject.SiteTrialErr, faultinject.Trigger{Nth: 2, Attempts: -1})
	obs := &retryObs{}
	got, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{
		Workers:  1,
		Observer: obs,
		Retry:    RetryPolicy{Attempts: 3},
		Faults:   inj,
	})
	if err == nil {
		t.Fatal("quarantined run returned nil error")
	}
	var tf *TrialFailure
	if !errors.As(err, &tf) {
		t.Fatalf("error does not wrap *TrialFailure: %v", err)
	}
	if tf.Trial != 1 || tf.Attempts != 3 {
		t.Fatalf("TrialFailure{Trial:%d, Attempts:%d}, want trial 1 after 3 attempts", tf.Trial, tf.Attempts)
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("error does not wrap *QuarantineError: %v", err)
	}
	if !reflect.DeepEqual(qe.Trials, []int{1}) {
		t.Fatalf("quarantined trials = %v, want [1]", qe.Trials)
	}
	var fault *faultinject.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("error chain does not expose the injected *Fault: %v", err)
	}
	if n := obs.retries.Load(); n != 2 {
		t.Fatalf("retries = %d, want 2 (attempts 2 and 3)", n)
	}
	if n := obs.quarantined.Load(); n != 1 {
		t.Fatalf("quarantined = %d, want 1", n)
	}
	// The healthy trials' results are still intact.
	for _, i := range []int{0, 2, 3, 4} {
		if !reflect.DeepEqual(got[i], cpTrial(i)) {
			t.Fatalf("healthy trial %d corrupted by the quarantine", i)
		}
	}
}

func TestSingleAttemptKeepsBarePanicError(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteTrialPanic, faultinject.Trigger{Nth: 1, Kind: faultinject.KindPanic, Attempts: -1})
	_, err := MapOpts(context.Background(), 3, cpTrial, nil, Options{Workers: 1, Faults: inj})
	if err == nil {
		t.Fatal("faulted single-attempt run returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("single-attempt failure is not a bare *PanicError: %v", err)
	}
	var tf *TrialFailure
	if errors.As(err, &tf) {
		t.Fatal("single-attempt failure wrapped in *TrialFailure; historic bare-error contract broken")
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		t.Fatal("single-attempt failure produced a QuarantineError")
	}
}

func TestDeadlineFailsSlowTrial(t *testing.T) {
	slow := func(i int) int {
		if i == 1 {
			time.Sleep(50 * time.Millisecond)
		}
		return i
	}
	_, err := MapOpts(context.Background(), 3, slow, nil, Options{
		Workers: 1,
		Retry:   RetryPolicy{Deadline: 10 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("slow trial passed its deadline")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error does not wrap *DeadlineError: %v", err)
	}
	if de.Trial != 1 {
		t.Fatalf("DeadlineError.Trial = %d, want 1", de.Trial)
	}
	if de.Elapsed <= de.Deadline {
		t.Fatalf("DeadlineError reports elapsed %v <= deadline %v", de.Elapsed, de.Deadline)
	}
}

func TestTrialCancelSiteCancelsRun(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteTrialCancel, faultinject.Trigger{Nth: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj.BindCancel(cancel)
	_, err := MapOpts(ctx, 64, cpTrial, nil, Options{Workers: 1, Faults: inj})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the trial.cancel site", err)
	}
	if inj.Fired(faultinject.SiteTrialCancel) != 1 {
		t.Fatalf("trial.cancel fired %d times, want 1", inj.Fired(faultinject.SiteTrialCancel))
	}
}

func TestRetryDeterministicAcrossWorkerCounts(t *testing.T) {
	const trials = 12
	want, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		inj := faultinject.New(9)
		inj.Arm(faultinject.SiteTrialErr, faultinject.Trigger{Prob: 0.5})
		got, err := MapOpts(context.Background(), trials, cpTrial, nil, Options{
			Workers: workers,
			Retry:   RetryPolicy{Attempts: 2},
			Faults:  inj,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: chaos run differs from undisturbed run", workers)
		}
	}
}

func TestBackoffFor(t *testing.T) {
	zero := RetryPolicy{}
	if d := zero.BackoffFor(1); d != 0 {
		t.Fatalf("zero policy backs off %v", d)
	}
	p := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for a, w := range want {
		if d := p.BackoffFor(a); d != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", a, d, w)
		}
	}
	// No cap: pure doubling.
	unc := RetryPolicy{Backoff: time.Millisecond}
	if d := unc.BackoffFor(4); d != 8*time.Millisecond {
		t.Errorf("uncapped BackoffFor(4) = %v, want 8ms", d)
	}
}

func TestRetryBackoffDelaysRetries(t *testing.T) {
	// Two attempts with a 30ms backoff: the trial fails once, so a full run
	// must take at least one backoff.
	in := faultinject.New(1)
	in.Arm(faultinject.SiteTrialErr, faultinject.Trigger{Nth: 1})
	start := time.Now()
	_, err := MapOpts(context.Background(), 1, func(i int) int { return i }, nil,
		Options{Workers: 1, Retry: RetryPolicy{Attempts: 2, Backoff: 30 * time.Millisecond}, Faults: in})
	if err != nil {
		t.Fatalf("retry did not absorb the fault: %v", err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("run finished in %v; backoff was not applied", el)
	}
}
