package trialrunner

import (
	"fmt"
	"testing"

	"pride/internal/rng"
)

// cpuTrial is a RNG-bound trial comparable to one Monte-Carlo shard: it
// burns a fixed number of draws from its own derived stream.
func cpuTrial(i int) uint64 {
	s := rng.Derived(1, uint64(i))
	total := uint64(0)
	for d := 0; d < 200_000; d++ {
		total += s.Uint64()
	}
	return total
}

// BenchmarkRunScaling measures wall-clock across worker counts on a fixed
// 64-trial workload. On an idle multi-core machine ns/op should fall
// near-linearly from workers=1 through the physical core count:
//
//	go test ./internal/trialrunner -bench=RunScaling -benchtime=3x
func BenchmarkRunScaling(b *testing.B) {
	serial := Run(1, 64, cpuTrial, func(a, n uint64) uint64 { return a + n })
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := Run(workers, 64, cpuTrial, func(a, n uint64) uint64 { return a + n })
				if got != serial {
					b.Fatalf("workers=%d produced %#x, serial produced %#x", workers, got, serial)
				}
			}
		})
	}
}
