package trialrunner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOptsMatchesMap(t *testing.T) {
	trial := func(i int) int { return i * i }
	want := Map(3, 100, trial)
	for _, workers := range []int{1, 2, 7} {
		got, err := MapOpts(context.Background(), 100, trial, nil, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapOptsPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		results, err := MapOpts(context.Background(), 10, func(i int) int {
			if i == 4 {
				panic("boom")
			}
			return i
		}, nil, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error for panicking trial", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a PanicError", workers, err)
		}
		if pe.Trial != 4 || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError = trial %d value %v", workers, pe.Trial, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError carries no stack", workers)
		}
		if !strings.Contains(err.Error(), "trial 4") {
			t.Fatalf("workers=%d: error does not name the trial: %v", workers, err)
		}
		// The siblings still ran.
		for _, i := range []int{0, 3, 5, 9} {
			if results[i] != i {
				t.Fatalf("workers=%d: sibling trial %d = %d after panic", workers, i, results[i])
			}
		}
	}
}

func TestMapOptsMultiplePanicsSortedByTrial(t *testing.T) {
	_, err := MapOpts(context.Background(), 20, func(i int) int {
		if i%7 == 3 {
			panic(fmt.Sprintf("bad-%d", i))
		}
		return i
	}, nil, Options{Workers: 4})
	if err == nil {
		t.Fatal("no error")
	}
	// Joined message lists trial 3 before trial 10 before trial 17.
	msg := err.Error()
	i3, i10, i17 := strings.Index(msg, "trial 3 "), strings.Index(msg, "trial 10 "), strings.Index(msg, "trial 17 ")
	if i3 < 0 || i10 < 0 || i17 < 0 || !(i3 < i10 && i10 < i17) {
		t.Fatalf("panics not reported in trial order:\n%s", msg)
	}
}

func TestMapRepanicsOnTrialPanic(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Map did not re-panic")
		}
		if !strings.Contains(fmt.Sprint(v), "trial 2 panicked") {
			t.Fatalf("re-panic does not name the trial: %v", v)
		}
	}()
	Map(2, 5, func(i int) int {
		if i == 2 {
			panic("kaput")
		}
		return i
	})
}

func TestMapOptsCancellationDrains(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var completed atomic.Int64
		const trials = 200
		_, err := MapOpts(ctx, trials, func(i int) int {
			time.Sleep(200 * time.Microsecond) // give cancellation time to land mid-run
			return i
		}, func(i int, r int) error {
			if completed.Add(1) == 10 {
				cancel()
			}
			return nil
		}, Options{Workers: workers})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The pool stopped early: some trials never ran. In-flight trials
		// were allowed to finish, so completed >= 10.
		n := completed.Load()
		if n < 10 || n >= trials {
			t.Fatalf("workers=%d: %d trials completed after cancel at 10", workers, n)
		}
	}
}

func TestMapOptsOnDoneSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	inHook := false
	seen := map[int]bool{}
	_, err := MapOpts(context.Background(), 64, func(i int) int { return i * 3 }, func(i int, r int) error {
		mu.Lock()
		if inHook {
			mu.Unlock()
			t.Error("onDone reentered concurrently")
			return nil
		}
		inHook = true
		mu.Unlock()
		if r != i*3 {
			t.Errorf("onDone(%d) got result %d", i, r)
		}
		mu.Lock()
		seen[i] = true
		inHook = false
		mu.Unlock()
		return nil
	}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("onDone fired for %d/64 trials", len(seen))
	}
}

func TestMapOptsOnDoneErrorAbortsRun(t *testing.T) {
	sentinel := errors.New("disk full")
	var calls atomic.Int64
	_, err := MapOpts(context.Background(), 500, func(i int) int { return i }, func(i int, r int) error {
		if calls.Add(1) == 5 {
			return sentinel
		}
		return nil
	}, Options{Workers: 4})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the hook error", err)
	}
	if n := calls.Load(); n >= 500 {
		t.Fatalf("run did not abort: %d onDone calls", n)
	}
}

func TestMapOptsSkip(t *testing.T) {
	var ran atomic.Int64
	results, err := MapOpts(context.Background(), 10, func(i int) int {
		ran.Add(1)
		return i + 1
	}, nil, Options{Workers: 3, Skip: func(i int) bool { return i%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("ran %d trials, want 5", ran.Load())
	}
	for i, r := range results {
		want := 0
		if i%2 == 1 {
			want = i + 1
		}
		if r != want {
			t.Fatalf("trial %d = %d, want %d", i, r, want)
		}
	}
}

type countingObserver struct {
	starts, ends atomic.Int64
	busy         atomic.Int64
}

func (o *countingObserver) TrialStart(int)                  { o.starts.Add(1) }
func (o *countingObserver) TrialEnd(_ int, d time.Duration) { o.ends.Add(1); o.busy.Add(int64(d)) }

func TestMapOptsObserverPairsStartEnd(t *testing.T) {
	var obs countingObserver
	_, err := MapOpts(context.Background(), 40, func(i int) int {
		if i == 7 {
			panic("observed panic")
		}
		return i
	}, nil, Options{Workers: 4, Observer: &obs})
	if err == nil {
		t.Fatal("expected the panic to surface as an error")
	}
	if obs.starts.Load() != 40 || obs.ends.Load() != 40 {
		t.Fatalf("observer saw %d starts / %d ends, want 40/40 (panicked trials included)",
			obs.starts.Load(), obs.ends.Load())
	}
	if obs.busy.Load() < 0 {
		t.Fatal("negative busy time")
	}
}

func TestRunOptsMatchesRun(t *testing.T) {
	trial := func(i int) int { return i * i }
	merge := func(a, b int) int { return a + b }
	want := Run(4, 33, trial, merge)
	for _, workers := range []int{1, 2, 5} {
		got, err := RunOpts(context.Background(), 33, trial, merge, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: RunOpts = %d, want %d", workers, got, want)
		}
	}
}

func TestMapOptsWorkerIndexContract(t *testing.T) {
	// Worker indices must be stable scratch selectors: always in
	// [0, PoolSize(trials)), with trials sharing an index never running
	// concurrently. A per-worker "arena" tracks concurrent entry.
	for _, workers := range []int{1, 2, 4, 16} {
		opts := Options{Workers: workers}
		const trials = 64
		pool := opts.PoolSize(trials)
		busy := make([]atomic.Bool, pool)
		var bad atomic.Bool
		_, err := MapOptsWorker(context.Background(), trials, func(worker, i int) int {
			if worker < 0 || worker >= pool {
				bad.Store(true)
				return 0
			}
			if !busy[worker].CompareAndSwap(false, true) {
				bad.Store(true) // two trials inside the same worker's arena
				return 0
			}
			time.Sleep(time.Microsecond)
			busy[worker].Store(false)
			return worker
		}, nil, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if bad.Load() {
			t.Fatalf("workers=%d: worker index contract violated", workers)
		}
	}
}

func TestSingleWorkerSeesIndexZero(t *testing.T) {
	_, err := MapOptsWorker(context.Background(), 10, func(worker, i int) int {
		if worker != 0 {
			t.Errorf("trial %d on worker %d, want 0", i, worker)
		}
		return i
	}, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoolSize(t *testing.T) {
	cases := []struct {
		workers, trials, want int
	}{
		{4, 100, 4},
		{4, 2, 2}, // clamped to trials
		{1, 50, 1},
		{8, 0, 8}, // degenerate trial counts leave the pool size alone
		{3, -1, 3},
	}
	for _, c := range cases {
		if got := (Options{Workers: c.workers}).PoolSize(c.trials); got != c.want {
			t.Errorf("PoolSize(workers=%d, trials=%d) = %d, want %d", c.workers, c.trials, got, c.want)
		}
	}
	if got := (Options{}).PoolSize(1); got != 1 {
		t.Errorf("default-workers PoolSize(1) = %d, want 1", got)
	}
}

func TestMapOptsZeroWorkersMeansDefault(t *testing.T) {
	got, err := MapOpts(context.Background(), 8, func(i int) int { return i }, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[7] != 7 {
		t.Fatalf("bad results with default workers: %v", got)
	}
}
