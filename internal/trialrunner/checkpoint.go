package trialrunner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Checkpoint configures periodic on-disk snapshots of completed-trial
// results, so an interrupted campaign resumes instead of restarting.
//
// The file is line-oriented JSON: a header line identifying the experiment
// (magic, version, key, trial count) followed by one record per completed
// trial, keyed by the deterministic trial index and carrying a CRC32 of its
// payload. Because trial i's result is a pure function of (experiment, i) —
// never of the worker count or of completion order — a resumed run that
// merges stored and fresh results in trial order produces a bit-for-bit
// identical final result to an uninterrupted run. The CRC extends the
// recovery guarantee from tail truncation to arbitrary mid-file corruption:
// loading keeps every record that still checksums and drops the rest, and
// the dropped trials simply re-run.
type Checkpoint struct {
	// Path is the checkpoint file. Empty disables checkpointing.
	Path string
	// Key identifies the experiment (configuration + seed). A checkpoint
	// written under a different key, or for a different trial count, is
	// rejected rather than silently merged into the wrong experiment
	// (unless ForceFresh archives it instead).
	Key string
	// Every is the flush/fsync cadence in freshly-completed trials.
	// 0 means after every trial (the trials in this repository are seconds
	// long; durability dominates write cost).
	Every int
	// ForceFresh, instead of erroring on a stale checkpoint (wrong key,
	// wrong trial count, unreadable header), archives the file by renaming
	// it to Path+".stale" and starts fresh. I/O errors still fail.
	ForceFresh bool
	// Retries is the number of retry attempts after a failed checkpoint
	// write/sync, with exponential backoff. 0 selects the default (3);
	// negative disables retrying.
	Retries int
	// RetryBackoff is the first retry's backoff, doubling per attempt.
	// 0 selects the default (1ms).
	RetryBackoff time.Duration
}

// Enabled reports whether checkpointing is configured.
func (c Checkpoint) Enabled() bool { return c.Path != "" }

func (c Checkpoint) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

func (c Checkpoint) retries() int {
	if c.Retries == 0 {
		return 3
	}
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c Checkpoint) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return time.Millisecond
	}
	return c.RetryBackoff
}

const (
	checkpointMagic = "pride-checkpoint"
	// checkpointVersion 2 adds a per-record CRC32. Version-1 files (no CRC)
	// are still readable, so pre-existing checkpoints resume.
	checkpointVersion = 2

	// staleSuffix is appended to an archived checkpoint's name by ForceFresh.
	staleSuffix = ".stale"
)

// ErrStaleCheckpoint marks (wraps) load errors that mean "this file does not
// belong to this experiment" — wrong key, wrong trial count, unrecognisable
// header — as opposed to I/O failures. These are exactly the errors
// Checkpoint.ForceFresh resolves by archiving the file.
var ErrStaleCheckpoint = errors.New("stale checkpoint")

// skipReporter is satisfied by observers (internal/obs.Campaign among them)
// that want to know how many trials a resumed run restored from the
// checkpoint instead of executing, so progress fractions start where the
// interrupted run left off.
type skipReporter interface{ SkipTrials(n int) }

// checkpointRetryReporter is the optional observer capability for counting
// retried checkpoint writes (internal/obs.Campaign implements it).
type checkpointRetryReporter interface{ AddCheckpointRetries(n int64) }

// CheckpointFaults is the checkpoint layer's fault-injection hook
// (faultinject.Injector implements it): op is the file operation about to
// run ("open", "create", "write", "sync", "rename"); a non-nil error fails
// it. A fault exposing Short() true additionally leaves a torn prefix of
// the pending payload on disk before failing, exercising CRC recovery.
// The pool discovers the capability on Options.Faults structurally, so one
// injector serves both trial and checkpoint sites.
type CheckpointFaults interface {
	CheckpointFault(op string) error
}

type checkpointHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	Trials  int    `json:"trials"`
}

type checkpointRecord struct {
	Trial  int             `json:"trial"`
	Result json.RawMessage `json:"result"`
	// CRC is the IEEE CRC32 of "<trial>:<result bytes>" (version >= 2).
	CRC uint32 `json:"crc,omitempty"`
}

// recordCRC checksums a record's payload. The trial index is mixed in so a
// corruption that swaps two records' indices is caught even when both
// payloads are individually intact.
func recordCRC(trial int, result json.RawMessage) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(strconv.Itoa(trial)))
	h.Write([]byte{':'})
	h.Write(result)
	return h.Sum32()
}

// loadCheckpoint reads the stored records of an existing checkpoint file.
// A missing file yields an empty map. Corrupt records — truncated tails,
// mid-file bit flips, malformed lines — are dropped individually: every
// record that parses and checksums is kept, and the dropped trials re-run.
// A header that names a different experiment or trial count is an error
// (wrapping ErrStaleCheckpoint) — resuming it would corrupt the merged
// result — unless cp.ForceFresh archives the file and starts fresh.
func loadCheckpoint(cp Checkpoint, trials int, faults CheckpointFaults) (map[int]json.RawMessage, error) {
	stored, err := readCheckpoint(cp, trials, faults)
	if err != nil && cp.ForceFresh && errors.Is(err, ErrStaleCheckpoint) {
		if aerr := os.Rename(cp.Path, cp.Path+staleSuffix); aerr != nil {
			return nil, fmt.Errorf("trialrunner: archiving stale checkpoint: %w (stale because: %v)", aerr, err)
		}
		return map[int]json.RawMessage{}, nil
	}
	return stored, err
}

func readCheckpoint(cp Checkpoint, trials int, faults CheckpointFaults) (map[int]json.RawMessage, error) {
	if faults != nil {
		if err := faults.CheckpointFault("open"); err != nil {
			return nil, fmt.Errorf("trialrunner: opening checkpoint: %w", err)
		}
	}
	f, err := os.Open(cp.Path)
	if os.IsNotExist(err) {
		return map[int]json.RawMessage{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trialrunner: opening checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	if !sc.Scan() {
		// Empty file (e.g. created then killed before the header flushed):
		// treat as a fresh start.
		return map[int]json.RawMessage{}, sc.Err()
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trialrunner: checkpoint %s: malformed header (%v): %w (delete the file, or pass -checkpoint-force to archive it)", cp.Path, err, ErrStaleCheckpoint)
	}
	if hdr.Magic != checkpointMagic || hdr.Version < 1 || hdr.Version > checkpointVersion {
		return nil, fmt.Errorf("trialrunner: checkpoint %s: not a version 1..%d %s file (magic %q, version %d): %w (delete the file, or pass -checkpoint-force to archive it)", cp.Path, checkpointVersion, checkpointMagic, hdr.Magic, hdr.Version, ErrStaleCheckpoint)
	}
	if hdr.Key != cp.Key {
		return nil, fmt.Errorf("trialrunner: checkpoint %s was written by a different experiment:\n  stored key:   %q\n  expected key: %q\nresuming it would corrupt the merged result: %w (delete the file, point -checkpoint elsewhere, or pass -checkpoint-force to archive it)", cp.Path, hdr.Key, cp.Key, ErrStaleCheckpoint)
	}
	if hdr.Trials != trials {
		return nil, fmt.Errorf("trialrunner: checkpoint %s holds %d trials, experiment has %d: %w (delete the file, point -checkpoint elsewhere, or pass -checkpoint-force to archive it)", cp.Path, hdr.Trials, trials, ErrStaleCheckpoint)
	}

	// Version-2 records carry a CRC and are verified; version-1 records have
	// none and are accepted as-is (legacy files predate the checksum).
	requireCRC := hdr.Version >= 2
	stored := make(map[int]json.RawMessage)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn write or corrupted line; later records may still be
			// intact, keep scanning.
			continue
		}
		if rec.Trial < 0 || rec.Trial >= trials || rec.Result == nil {
			continue
		}
		if requireCRC && rec.CRC != recordCRC(rec.Trial, rec.Result) {
			continue
		}
		stored[rec.Trial] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trialrunner: reading checkpoint: %w", err)
	}
	return stored, nil
}

// LoadCheckpoint reads the stored trial records of an existing checkpoint
// file without running anything, keyed by trial index. A missing file yields
// an empty map; corrupt records are dropped individually; a header naming a
// different experiment or trial count errors (wrapping ErrStaleCheckpoint)
// unless cp.ForceFresh archives the file. Campaigns whose trials form a
// dependency chain (the island search's migration epochs) use it to restore
// intermediate state before calling MapCheckpointed, which only hands back
// stored results after the run completes.
func LoadCheckpoint(cp Checkpoint, trials int) (map[int]json.RawMessage, error) {
	return loadCheckpoint(cp, trials, nil)
}

// checkpointWriter appends freshly-completed trial records, flushing and
// syncing every cp.every() records. Records accumulate in a pending buffer
// and are written to the file directly (no bufio: its sticky error state
// would defeat retrying), so a failed or torn write retries with backoff
// from the complete pending payload. It is only ever called under MapOpts'
// onDone mutex, so it needs no locking of its own.
type checkpointWriter struct {
	f         *os.File
	every     int
	sinceSync int
	pending   bytes.Buffer
	// dirty records that a failed write may have left a partial line on
	// disk; the next attempt first writes "\n" so the torn fragment becomes
	// a (CRC-rejected) line of its own instead of corrupting the next
	// record.
	dirty   bool
	retries int
	backoff time.Duration
	faults  CheckpointFaults
	onRetry func(n int64)
}

func checkpointFaultsOf(opts Options) CheckpointFaults {
	if cf, ok := opts.Faults.(CheckpointFaults); ok {
		return cf
	}
	return nil
}

// newCheckpointWriter atomically rewrites the checkpoint with the header and
// the still-valid stored records (normalizing away any corrupt lines), then
// leaves the file open for appending. The temp-file + rename install means a
// crash mid-rewrite leaves the previous checkpoint intact.
func newCheckpointWriter(cp Checkpoint, trials int, stored map[int]json.RawMessage, faults CheckpointFaults, onRetry func(n int64)) (*checkpointWriter, error) {
	fault := func(op string) error {
		if faults == nil {
			return nil
		}
		return faults.CheckpointFault(op)
	}
	tmp := cp.Path + ".tmp"
	if err := fault("create"); err != nil {
		return nil, fmt.Errorf("trialrunner: creating checkpoint: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trialrunner: creating checkpoint: %w", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Version: checkpointVersion, Key: cp.Key, Trials: trials}); err != nil {
		f.Close()
		return nil, err
	}
	// Deterministic record order on rewrite: trial index.
	for i := 0; i < trials; i++ {
		raw, ok := stored[i]
		if !ok {
			continue
		}
		if err := enc.Encode(checkpointRecord{Trial: i, Result: raw, CRC: recordCRC(i, raw)}); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := fault("rename"); err != nil {
		return nil, fmt.Errorf("trialrunner: installing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cp.Path); err != nil {
		return nil, fmt.Errorf("trialrunner: installing checkpoint: %w", err)
	}
	syncDir(cp.Path)
	if err := fault("open"); err != nil {
		return nil, fmt.Errorf("trialrunner: reopening checkpoint: %w", err)
	}
	af, err := os.OpenFile(cp.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trialrunner: reopening checkpoint: %w", err)
	}
	return &checkpointWriter{
		f:       af,
		every:   cp.every(),
		retries: cp.retries(),
		backoff: cp.retryBackoff(),
		faults:  faults,
		onRetry: onRetry,
	}, nil
}

// syncDir fsyncs the directory containing path, making the rename durable.
// Best-effort: some filesystems reject directory fsync, and the rename
// itself is already atomic.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// record appends one completed trial to the pending buffer, flushing and
// syncing every cp.every() records.
func (w *checkpointWriter) record(trial int, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("trialrunner: marshalling trial %d result: %w", trial, err)
	}
	if err := json.NewEncoder(&w.pending).Encode(checkpointRecord{Trial: trial, Result: raw, CRC: recordCRC(trial, raw)}); err != nil {
		return fmt.Errorf("trialrunner: writing checkpoint record: %w", err)
	}
	w.sinceSync++
	if w.sinceSync >= w.every {
		w.sinceSync = 0
		return w.sync()
	}
	return nil
}

// sync writes the pending records to the file and fsyncs, retrying with
// exponential backoff on failure. A retry replays the complete pending
// payload; if a previous attempt tore mid-line, a newline terminator first
// isolates the fragment (the CRC loader drops it, and the replayed copy of
// the same record supersedes it — duplicate intact records are idempotent,
// the loader keys by trial index).
func (w *checkpointWriter) sync() error {
	var lastErr error
	backoff := w.backoff
	for attempt := 0; attempt <= w.retries; attempt++ {
		if attempt > 0 {
			if w.onRetry != nil {
				w.onRetry(1)
			}
			time.Sleep(backoff)
			backoff *= 2
		}
		if lastErr = w.trySync(); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("trialrunner: checkpoint write failed after %d attempt(s): %w", w.retries+1, lastErr)
}

func (w *checkpointWriter) trySync() error {
	if w.dirty {
		if _, err := w.f.Write([]byte("\n")); err != nil {
			return err
		}
		w.dirty = false
	}
	if w.faults != nil {
		if err := w.faults.CheckpointFault("write"); err != nil {
			if s, ok := err.(interface{ Short() bool }); ok && s.Short() && w.pending.Len() > 0 {
				// Land a torn prefix on disk for real, so recovery is
				// exercised against an actual partial line.
				if n, _ := w.f.Write(w.pending.Bytes()[:(w.pending.Len()+1)/2]); n > 0 {
					w.dirty = true
				}
			}
			return err
		}
	}
	if w.pending.Len() > 0 {
		if _, err := w.f.Write(w.pending.Bytes()); err != nil {
			// Unknown how much landed; terminate the fragment next attempt.
			w.dirty = true
			return err
		}
	}
	if w.faults != nil {
		if err := w.faults.CheckpointFault("sync"); err != nil {
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.pending.Reset()
	return nil
}

// close flushes, syncs and closes the file (kept on disk).
func (w *checkpointWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MapCheckpointed is MapOpts with a durable resume layer. With cp.Enabled():
//
//   - Results already recorded under cp.Path (same key, same trial count)
//     are not re-executed; they are restored from disk into the returned
//     slice.
//   - Every freshly-completed trial is appended to cp.Path, flushed and
//     fsynced every cp.Every completions — and always once more on the way
//     out, so a cancelled run's final state is on disk before the call
//     returns (SIGINT/SIGTERM drain + final checkpoint).
//   - On full completion the checkpoint file is removed.
//
// On a nil error the returned slice is complete: fresh results computed this
// run, stored ones decoded from the checkpoint. R must round-trip through
// encoding/json exactly; the integer-counter results in this repository all
// do, which is what makes resumed merges bit-identical.
func MapCheckpointed[R any](ctx context.Context, trials int, trial func(i int) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) ([]R, error) {
	return MapCheckpointedWorker(ctx, trials, func(_, i int) R { return trial(i) }, onDone, opts, cp)
}

// MapCheckpointedWorker is MapCheckpointed for worker-indexed trial
// functions; see MapOptsWorker for the worker-index contract.
func MapCheckpointedWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) ([]R, error) {
	if !cp.Enabled() {
		return MapOptsWorker(ctx, trials, trial, onDone, opts)
	}
	if trials < 0 {
		panic(fmt.Sprintf("trialrunner: trials must be >= 0, got %d", trials))
	}
	if dir := filepath.Dir(cp.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trialrunner: creating checkpoint directory: %w", err)
		}
	}
	faults := checkpointFaultsOf(opts)
	stored, err := loadCheckpoint(cp, trials, faults)
	if err != nil {
		return nil, err
	}
	if sr, ok := opts.Observer.(skipReporter); ok && len(stored) > 0 {
		sr.SkipTrials(len(stored))
	}
	var onRetry func(n int64)
	if rr, ok := opts.Observer.(checkpointRetryReporter); ok {
		onRetry = rr.AddCheckpointRetries
	}
	w, err := newCheckpointWriter(cp, trials, stored, faults, onRetry)
	if err != nil {
		return nil, err
	}

	prevSkip := opts.Skip
	opts.Skip = func(i int) bool {
		if _, ok := stored[i]; ok {
			return true
		}
		return prevSkip != nil && prevSkip(i)
	}
	wrapped := func(i int, r R) error {
		if err := w.record(i, r); err != nil {
			return err
		}
		if onDone != nil {
			return onDone(i, r)
		}
		return nil
	}

	results, runErr := MapOptsWorker(ctx, trials, trial, wrapped, opts)
	if cerr := w.close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return results, runErr
	}
	// Restore the skipped trials from the checkpoint before handing the
	// slice back complete.
	for i, raw := range stored {
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			return results, fmt.Errorf("trialrunner: decoding checkpointed trial %d: %w", i, err)
		}
	}
	if err := os.Remove(cp.Path); err != nil {
		return results, fmt.Errorf("trialrunner: removing completed checkpoint: %w", err)
	}
	return results, nil
}

// RunCheckpointed is the fold counterpart of MapCheckpointed: on a nil error
// it merges all trial results strictly in trial order (stored and fresh
// alike), exactly like Run. Requires trials >= 1.
func RunCheckpointed[R any](ctx context.Context, trials int, trial func(i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) (R, error) {
	return RunCheckpointedWorker(ctx, trials, func(_, i int) R { return trial(i) }, merge, onDone, opts, cp)
}

// RunCheckpointedWorker is RunCheckpointed for worker-indexed trial
// functions; see MapOptsWorker for the worker-index contract.
func RunCheckpointedWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) (R, error) {
	var zero R
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: RunCheckpointed requires trials >= 1, got %d", trials))
	}
	results, err := MapCheckpointedWorker(ctx, trials, trial, onDone, opts, cp)
	if err != nil {
		return zero, err
	}
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc, nil
}
