package trialrunner

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint configures periodic on-disk snapshots of completed-trial
// results, so an interrupted campaign resumes instead of restarting.
//
// The file is line-oriented JSON: a header line identifying the experiment
// (magic, version, key, trial count) followed by one record per completed
// trial, keyed by the deterministic trial index. Because trial i's result is
// a pure function of (experiment, i) — never of the worker count or of
// completion order — a resumed run that merges stored and fresh results in
// trial order produces a bit-for-bit identical final result to an
// uninterrupted run.
type Checkpoint struct {
	// Path is the checkpoint file. Empty disables checkpointing.
	Path string
	// Key identifies the experiment (configuration + seed). A checkpoint
	// written under a different key, or for a different trial count, is
	// rejected rather than silently merged into the wrong experiment.
	Key string
	// Every is the flush/fsync cadence in freshly-completed trials.
	// 0 means after every trial (the trials in this repository are seconds
	// long; durability dominates write cost).
	Every int
}

// Enabled reports whether checkpointing is configured.
func (c Checkpoint) Enabled() bool { return c.Path != "" }

func (c Checkpoint) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

const (
	checkpointMagic   = "pride-checkpoint"
	checkpointVersion = 1
)

// skipReporter is satisfied by observers (internal/obs.Campaign among them)
// that want to know how many trials a resumed run restored from the
// checkpoint instead of executing, so progress fractions start where the
// interrupted run left off.
type skipReporter interface{ SkipTrials(n int) }

type checkpointHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	Trials  int    `json:"trials"`
}

type checkpointRecord struct {
	Trial  int             `json:"trial"`
	Result json.RawMessage `json:"result"`
}

// loadCheckpoint reads the stored records of an existing checkpoint file.
// A missing file yields an empty map. A truncated tail (the run died
// mid-write) is tolerated: records are read up to the first malformed line
// and the rest is discarded. A header that names a different experiment or
// trial count is an error — resuming it would corrupt the merged result.
func loadCheckpoint(cp Checkpoint, trials int) (map[int]json.RawMessage, error) {
	f, err := os.Open(cp.Path)
	if os.IsNotExist(err) {
		return map[int]json.RawMessage{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trialrunner: opening checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	if !sc.Scan() {
		// Empty file (e.g. created then killed before the header flushed):
		// treat as a fresh start.
		return map[int]json.RawMessage{}, sc.Err()
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trialrunner: checkpoint %s: malformed header: %w", cp.Path, err)
	}
	if hdr.Magic != checkpointMagic || hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("trialrunner: checkpoint %s: not a version-%d %s file", cp.Path, checkpointVersion, checkpointMagic)
	}
	if hdr.Key != cp.Key {
		return nil, fmt.Errorf("trialrunner: checkpoint %s was written by a different experiment (key %q, want %q); delete it or point -checkpoint elsewhere", cp.Path, hdr.Key, cp.Key)
	}
	if hdr.Trials != trials {
		return nil, fmt.Errorf("trialrunner: checkpoint %s holds %d trials, experiment has %d; delete it or point -checkpoint elsewhere", cp.Path, hdr.Trials, trials)
	}

	stored := make(map[int]json.RawMessage)
	for sc.Scan() {
		var rec checkpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// Partial tail from an interrupted write; everything before it
			// is intact.
			break
		}
		if rec.Trial < 0 || rec.Trial >= trials || rec.Result == nil {
			break
		}
		stored[rec.Trial] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trialrunner: reading checkpoint: %w", err)
	}
	return stored, nil
}

// checkpointWriter appends freshly-completed trial records, flushing and
// syncing every cp.every() records. It is only ever called under MapOpts'
// onDone mutex, so it needs no locking of its own.
type checkpointWriter struct {
	f         *os.File
	bw        *bufio.Writer
	every     int
	sinceSync int
}

// newCheckpointWriter atomically rewrites the checkpoint with the header and
// the still-valid stored records (normalizing away any truncated tail), then
// leaves the file open for appending.
func newCheckpointWriter(cp Checkpoint, trials int, stored map[int]json.RawMessage) (*checkpointWriter, error) {
	tmp := cp.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trialrunner: creating checkpoint: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Version: checkpointVersion, Key: cp.Key, Trials: trials}); err != nil {
		f.Close()
		return nil, err
	}
	// Deterministic record order on rewrite: trial index.
	for i := 0; i < trials; i++ {
		raw, ok := stored[i]
		if !ok {
			continue
		}
		if err := enc.Encode(checkpointRecord{Trial: i, Result: raw}); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, cp.Path); err != nil {
		return nil, fmt.Errorf("trialrunner: installing checkpoint: %w", err)
	}
	af, err := os.OpenFile(cp.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trialrunner: reopening checkpoint: %w", err)
	}
	return &checkpointWriter{f: af, bw: bufio.NewWriter(af), every: cp.every()}, nil
}

// record appends one completed trial.
func (w *checkpointWriter) record(trial int, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("trialrunner: marshalling trial %d result: %w", trial, err)
	}
	if err := json.NewEncoder(w.bw).Encode(checkpointRecord{Trial: trial, Result: raw}); err != nil {
		return fmt.Errorf("trialrunner: writing checkpoint record: %w", err)
	}
	w.sinceSync++
	if w.sinceSync >= w.every {
		w.sinceSync = 0
		return w.sync()
	}
	return nil
}

func (w *checkpointWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close flushes, syncs and closes the file (kept on disk).
func (w *checkpointWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MapCheckpointed is MapOpts with a durable resume layer. With cp.Enabled():
//
//   - Results already recorded under cp.Path (same key, same trial count)
//     are not re-executed; they are restored from disk into the returned
//     slice.
//   - Every freshly-completed trial is appended to cp.Path, flushed and
//     fsynced every cp.Every completions — and always once more on the way
//     out, so a cancelled run's final state is on disk before the call
//     returns (SIGINT drain + final checkpoint).
//   - On full completion the checkpoint file is removed.
//
// On a nil error the returned slice is complete: fresh results computed this
// run, stored ones decoded from the checkpoint. R must round-trip through
// encoding/json exactly; the integer-counter results in this repository all
// do, which is what makes resumed merges bit-identical.
func MapCheckpointed[R any](ctx context.Context, trials int, trial func(i int) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) ([]R, error) {
	return MapCheckpointedWorker(ctx, trials, func(_, i int) R { return trial(i) }, onDone, opts, cp)
}

// MapCheckpointedWorker is MapCheckpointed for worker-indexed trial
// functions; see MapOptsWorker for the worker-index contract.
func MapCheckpointedWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) ([]R, error) {
	if !cp.Enabled() {
		return MapOptsWorker(ctx, trials, trial, onDone, opts)
	}
	if trials < 0 {
		panic(fmt.Sprintf("trialrunner: trials must be >= 0, got %d", trials))
	}
	if dir := filepath.Dir(cp.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trialrunner: creating checkpoint directory: %w", err)
		}
	}
	stored, err := loadCheckpoint(cp, trials)
	if err != nil {
		return nil, err
	}
	if sr, ok := opts.Observer.(skipReporter); ok && len(stored) > 0 {
		sr.SkipTrials(len(stored))
	}
	w, err := newCheckpointWriter(cp, trials, stored)
	if err != nil {
		return nil, err
	}

	prevSkip := opts.Skip
	opts.Skip = func(i int) bool {
		if _, ok := stored[i]; ok {
			return true
		}
		return prevSkip != nil && prevSkip(i)
	}
	wrapped := func(i int, r R) error {
		if err := w.record(i, r); err != nil {
			return err
		}
		if onDone != nil {
			return onDone(i, r)
		}
		return nil
	}

	results, runErr := MapOptsWorker(ctx, trials, trial, wrapped, opts)
	if cerr := w.close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return results, runErr
	}
	// Restore the skipped trials from the checkpoint before handing the
	// slice back complete.
	for i, raw := range stored {
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			return results, fmt.Errorf("trialrunner: decoding checkpointed trial %d: %w", i, err)
		}
	}
	if err := os.Remove(cp.Path); err != nil {
		return results, fmt.Errorf("trialrunner: removing completed checkpoint: %w", err)
	}
	return results, nil
}

// RunCheckpointed is the fold counterpart of MapCheckpointed: on a nil error
// it merges all trial results strictly in trial order (stored and fresh
// alike), exactly like Run. Requires trials >= 1.
func RunCheckpointed[R any](ctx context.Context, trials int, trial func(i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) (R, error) {
	return RunCheckpointedWorker(ctx, trials, func(_, i int) R { return trial(i) }, merge, onDone, opts, cp)
}

// RunCheckpointedWorker is RunCheckpointed for worker-indexed trial
// functions; see MapOptsWorker for the worker-index contract.
func RunCheckpointedWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options, cp Checkpoint) (R, error) {
	var zero R
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: RunCheckpointed requires trials >= 1, got %d", trials))
	}
	results, err := MapCheckpointedWorker(ctx, trials, trial, onDone, opts, cp)
	if err != nil {
		return zero, err
	}
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc, nil
}
