package trialrunner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError reports a trial that panicked. The pool recovers the panic on
// the worker goroutine, so one faulty trial surfaces as an error result from
// MapOpts/RunCheckpointed instead of killing the whole process (and, for a
// checkpointed campaign, instead of losing every completed trial).
type PanicError struct {
	// Trial is the index of the trial that panicked.
	Trial int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("trialrunner: trial %d panicked: %v", e.Trial, e.Value)
}

// Observer receives per-trial lifecycle callbacks for progress metering
// (internal/obs implements it). Callbacks fire on worker goroutines,
// concurrently; implementations must be safe for concurrent use. The
// callbacks carry no results and cannot influence them, so observation never
// perturbs determinism.
type Observer interface {
	// TrialStart fires just before trial i runs.
	TrialStart(trial int)
	// TrialEnd fires after trial i finishes (normally or by panic) with its
	// wall-clock duration.
	TrialEnd(trial int, d time.Duration)
}

// Options configures a cancellable, resumable, observable run. The zero
// value means: DefaultWorkers(), no trials skipped, no observer.
type Options struct {
	// Workers is the pool size (>= 1). 0 selects DefaultWorkers().
	Workers int
	// Skip, when non-nil, reports that trial i is already complete (its
	// result is supplied elsewhere, e.g. from a checkpoint) and must not be
	// executed. Skipped trials are left as zero values in the result slice
	// and produce no onDone callback.
	Skip func(i int) bool
	// Observer, when non-nil, receives TrialStart/TrialEnd callbacks.
	Observer Observer
}

// workers resolves the pool size.
func (o Options) workers() int {
	if o.Workers == 0 {
		return DefaultWorkers()
	}
	return o.Workers
}

// PoolSize returns the number of distinct worker indices a run over the
// given trial count will use: the resolved pool size, clamped to the trial
// count. Engines that keep per-worker scratch state size their scratch
// slices with this before calling MapOptsWorker and friends.
func (o Options) PoolSize(trials int) int {
	w := o.workers()
	if trials >= 1 && w > trials {
		w = trials
	}
	return w
}

// MapOpts executes trials 0..trials-1 on a worker pool and returns their
// results indexed by trial number, like Map, with three additions:
//
//   - Cancellation: when ctx is cancelled the pool drains gracefully — no
//     new trials are claimed, in-flight trials run to completion (so their
//     results can still be checkpointed) — and the error wraps ctx.Err().
//   - Panic isolation: a panicking trial is recovered on its worker and
//     reported as a *PanicError in the returned error; the remaining trials
//     still run.
//   - Completion hook: onDone, when non-nil, is called exactly once per
//     freshly-completed (non-skipped, non-panicked) trial with its result.
//     Calls are serialized under an internal mutex, in completion order. An
//     onDone error aborts the run like a cancellation (graceful drain) and
//     is included in the returned error.
//
// On a nil error the result slice is complete except for skipped trials.
// The trial-to-worker assignment remains dynamic and the results remain a
// pure function of the trial function — worker count, cancellation timing
// and hooks never change the value any individual trial produces.
func MapOpts[R any](ctx context.Context, trials int, trial func(i int) R, onDone func(i int, r R) error, opts Options) ([]R, error) {
	return MapOptsWorker(ctx, trials, func(_, i int) R { return trial(i) }, onDone, opts)
}

// MapOptsWorker is MapOpts for trial functions that also receive the stable
// index of the worker goroutine executing them, in [0, opts.PoolSize(trials)).
// Two trials that observe the same worker index never run concurrently, and a
// single-worker run executes every trial inline with worker index 0, so
// engines can keep one reusable scratch arena per worker index instead of
// allocating per trial.
//
// The worker index must only select scratch storage — never influence a
// trial's result — or the worker-count invariance the package guarantees is
// lost.
func MapOptsWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, onDone func(i int, r R) error, opts Options) ([]R, error) {
	workers := opts.workers()
	if err := ValidateWorkers(workers); err != nil {
		panic(err)
	}
	if trials < 0 {
		panic(fmt.Sprintf("trialrunner: trials must be >= 0, got %d", trials))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, trials)
	if trials == 0 {
		return results, nil
	}
	if workers > trials {
		workers = trials
	}

	var (
		mu      sync.Mutex
		panics  []*PanicError
		hookErr error
		stopped atomic.Bool // set on hook error; ctx handles cancellation
		next    atomic.Int64
		wg      sync.WaitGroup
	)

	runOne := func(worker, i int) {
		if opts.Observer != nil {
			opts.Observer.TrialStart(i)
		}
		start := time.Now()
		perr := func() (perr *PanicError) {
			defer func() {
				if v := recover(); v != nil {
					perr = &PanicError{Trial: i, Value: v, Stack: debug.Stack()}
				}
			}()
			results[i] = trial(worker, i)
			return nil
		}()
		if opts.Observer != nil {
			opts.Observer.TrialEnd(i, time.Since(start))
		}
		mu.Lock()
		defer mu.Unlock()
		if perr != nil {
			panics = append(panics, perr)
			return
		}
		if onDone != nil && hookErr == nil {
			if err := onDone(i, results[i]); err != nil {
				hookErr = err
				stopped.Store(true)
			}
		}
	}

	loop := func(worker int) {
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= trials {
				return
			}
			if opts.Skip != nil && opts.Skip(i) {
				continue
			}
			runOne(worker, i)
		}
	}

	if workers == 1 {
		loop(0)
	} else {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				loop(worker)
			}(w)
		}
		wg.Wait()
	}

	// Assemble a deterministic error: panics sorted by trial index, then the
	// hook error, then the cancellation cause.
	sort.Slice(panics, func(a, b int) bool { return panics[a].Trial < panics[b].Trial })
	errs := make([]error, 0, len(panics)+2)
	for _, p := range panics {
		errs = append(errs, p)
	}
	if hookErr != nil {
		errs = append(errs, hookErr)
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return results, errors.Join(errs...)
}

// RunOpts is the fold counterpart of MapOpts: on a nil error it merges the
// results strictly in trial order, exactly like Run. Requires trials >= 1
// and no skipped trials (use RunCheckpointed when resuming from stored
// results).
func RunOpts[R any](ctx context.Context, trials int, trial func(i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options) (R, error) {
	var zero R
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: RunOpts requires trials >= 1, got %d", trials))
	}
	results, err := MapOpts(ctx, trials, trial, onDone, opts)
	if err != nil {
		return zero, err
	}
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc, nil
}
