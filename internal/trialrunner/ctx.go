package trialrunner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError reports a trial that panicked. The pool recovers the panic on
// the worker goroutine, so one faulty trial surfaces as an error result from
// MapOpts/RunCheckpointed instead of killing the whole process (and, for a
// checkpointed campaign, instead of losing every completed trial).
type PanicError struct {
	// Trial is the index of the trial that panicked.
	Trial int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("trialrunner: trial %d panicked: %v", e.Trial, e.Value)
}

// Unwrap exposes a panic value that was itself an error (a guard.Violation,
// an injected fault), so errors.As sees through the panic wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TrialFailure reports a trial whose every attempt failed. With the default
// single-attempt policy the pool reports the bare underlying error instead;
// TrialFailure appears only when a retry budget was actually exhausted.
type TrialFailure struct {
	// Trial is the index of the failed trial.
	Trial int
	// Attempts is how many attempts were made.
	Attempts int
	// Err is the last attempt's error (*PanicError, *DeadlineError, or an
	// injected fault).
	Err error
}

// Error implements error.
func (e *TrialFailure) Error() string {
	return fmt.Sprintf("trialrunner: trial %d failed after %d attempts: %v", e.Trial, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *TrialFailure) Unwrap() error { return e.Err }

// QuarantineError summarises the trials that exhausted their retry budget in
// one run. It is joined into the final error after the per-trial failures,
// so callers can list the quarantined set without walking the join.
type QuarantineError struct {
	// Trials holds the quarantined trial indices in ascending order.
	Trials []int
}

// Error implements error.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("trialrunner: %d trial(s) quarantined after exhausting retries: %v", len(e.Trials), e.Trials)
}

// DeadlineError reports a trial attempt that ran longer than the per-trial
// deadline. The check is post-completion: the attempt runs to the end (so
// shared scratch arenas are never abandoned mid-use) and its wall-clock
// duration is compared afterwards, making the deadline a detector for
// wedged-but-terminating trials rather than a preemption mechanism.
type DeadlineError struct {
	// Trial is the index of the slow trial.
	Trial int
	// Elapsed is the attempt's measured duration.
	Elapsed time.Duration
	// Deadline is the configured limit it exceeded.
	Deadline time.Duration
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("trialrunner: trial %d exceeded deadline: ran %v > %v", e.Trial, e.Elapsed, e.Deadline)
}

// RetryPolicy bounds re-execution of failed trial attempts. Because every
// trial derives its RNG stream from its trial index (not from execution
// order), a retried attempt replays the identical stream: a transient fault
// (an injected one, a flaky hook) retries to the exact result the
// undisturbed run produces, and a deterministic bug fails every attempt and
// quarantines the trial instead of flaking.
type RetryPolicy struct {
	// Attempts is the total number of attempts per trial (>= 1).
	// 0 means 1: a single attempt, no retry.
	Attempts int
	// Deadline, when > 0, fails any attempt whose wall-clock duration
	// exceeds it (post-completion check, see DeadlineError).
	Deadline time.Duration
	// Backoff, when > 0, is the pause before the first retry, doubling per
	// subsequent attempt up to MaxBackoff. Zero keeps the historic
	// immediate-retry behavior. Backoff only delays execution — it never
	// feeds into trial RNG streams, so it cannot perturb results.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means no cap.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// BackoffFor returns the pause before attempt number `attempt` (attempt 1 is
// the first retry): Backoff doubled attempt-1 times, capped at MaxBackoff.
// Zero for attempt < 1 or a zero Backoff. The campaign server reuses this at
// the job level, layering deterministic jitter on top.
func (p RetryPolicy) BackoffFor(attempt int) time.Duration {
	if attempt < 1 || p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// TrialFaults is the pool's fault-injection hook (faultinject.Injector
// implements it). When armed, it is consulted before every attempt; a
// non-nil error fails the attempt before the trial function runs. A fault
// value exposing Panics() true is raised as a panic through the pool's real
// recover machinery instead, so chaos tests exercise the same code path a
// genuine trial panic does.
type TrialFaults interface {
	TrialFault(trial, attempt int) error
}

// retryReporter and quarantineReporter are optional observer capabilities,
// discovered structurally (obs.Campaign implements both): retries and
// quarantines are reported to whatever observer the campaign installed
// without widening the Observer interface every existing implementation
// must satisfy.
type retryReporter interface{ AddTrialRetries(n int64) }
type quarantineReporter interface{ AddQuarantined(n int64) }

// Observer receives per-trial lifecycle callbacks for progress metering
// (internal/obs implements it). Callbacks fire on worker goroutines,
// concurrently; implementations must be safe for concurrent use. The
// callbacks carry no results and cannot influence them, so observation never
// perturbs determinism.
type Observer interface {
	// TrialStart fires just before trial i runs.
	TrialStart(trial int)
	// TrialEnd fires after trial i finishes (normally or by panic) with its
	// wall-clock duration.
	TrialEnd(trial int, d time.Duration)
}

// Options configures a cancellable, resumable, observable run. The zero
// value means: DefaultWorkers(), no trials skipped, no observer.
type Options struct {
	// Workers is the pool size (>= 1). 0 selects DefaultWorkers().
	Workers int
	// Skip, when non-nil, reports that trial i is already complete (its
	// result is supplied elsewhere, e.g. from a checkpoint) and must not be
	// executed. Skipped trials are left as zero values in the result slice
	// and produce no onDone callback.
	Skip func(i int) bool
	// Observer, when non-nil, receives TrialStart/TrialEnd callbacks.
	Observer Observer
	// Retry bounds re-execution of failed trials. The zero value keeps the
	// historic semantics: one attempt, failure is terminal.
	Retry RetryPolicy
	// Faults, when non-nil, injects deterministic faults into trial
	// execution (chaos testing). Production runs leave it nil.
	Faults TrialFaults
}

// workers resolves the pool size.
func (o Options) workers() int {
	if o.Workers == 0 {
		return DefaultWorkers()
	}
	return o.Workers
}

// PoolSize returns the number of distinct worker indices a run over the
// given trial count will use: the resolved pool size, clamped to the trial
// count. Engines that keep per-worker scratch state size their scratch
// slices with this before calling MapOptsWorker and friends.
func (o Options) PoolSize(trials int) int {
	w := o.workers()
	if trials >= 1 && w > trials {
		w = trials
	}
	return w
}

// MapOpts executes trials 0..trials-1 on a worker pool and returns their
// results indexed by trial number, like Map, with three additions:
//
//   - Cancellation: when ctx is cancelled the pool drains gracefully — no
//     new trials are claimed, in-flight trials run to completion (so their
//     results can still be checkpointed) — and the error wraps ctx.Err().
//   - Panic isolation: a panicking trial is recovered on its worker and
//     reported as a *PanicError in the returned error; the remaining trials
//     still run.
//   - Completion hook: onDone, when non-nil, is called exactly once per
//     freshly-completed (non-skipped, non-panicked) trial with its result.
//     Calls are serialized under an internal mutex, in completion order. An
//     onDone error aborts the run like a cancellation (graceful drain) and
//     is included in the returned error.
//
// On a nil error the result slice is complete except for skipped trials.
// The trial-to-worker assignment remains dynamic and the results remain a
// pure function of the trial function — worker count, cancellation timing
// and hooks never change the value any individual trial produces.
func MapOpts[R any](ctx context.Context, trials int, trial func(i int) R, onDone func(i int, r R) error, opts Options) ([]R, error) {
	return MapOptsWorker(ctx, trials, func(_, i int) R { return trial(i) }, onDone, opts)
}

// MapOptsWorker is MapOpts for trial functions that also receive the stable
// index of the worker goroutine executing them, in [0, opts.PoolSize(trials)).
// Two trials that observe the same worker index never run concurrently, and a
// single-worker run executes every trial inline with worker index 0, so
// engines can keep one reusable scratch arena per worker index instead of
// allocating per trial.
//
// The worker index must only select scratch storage — never influence a
// trial's result — or the worker-count invariance the package guarantees is
// lost.
func MapOptsWorker[R any](ctx context.Context, trials int, trial func(worker, i int) R, onDone func(i int, r R) error, opts Options) ([]R, error) {
	workers := opts.workers()
	if err := ValidateWorkers(workers); err != nil {
		panic(err)
	}
	if trials < 0 {
		panic(fmt.Sprintf("trialrunner: trials must be >= 0, got %d", trials))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, trials)
	if trials == 0 {
		return results, nil
	}
	if workers > trials {
		workers = trials
	}

	var (
		mu       sync.Mutex
		failures []TrialFailure
		hookErr  error
		stopped  atomic.Bool // set on hook error; ctx handles cancellation
		next     atomic.Int64
		wg       sync.WaitGroup
	)

	// runAttempt executes one attempt of trial i and reports how it failed,
	// nil on success. Injected faults fire before the trial function; a
	// panic-kind fault is raised through the same recover machinery a real
	// trial panic uses.
	runAttempt := func(worker, i, attempt int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Trial: i, Value: v, Stack: debug.Stack()}
			}
		}()
		if opts.Faults != nil {
			if f := opts.Faults.TrialFault(i, attempt); f != nil {
				if p, ok := f.(interface{ Panics() bool }); ok && p.Panics() {
					panic(f)
				}
				return f
			}
		}
		results[i] = trial(worker, i)
		return nil
	}

	maxAttempts := opts.Retry.attempts()

	runOne := func(worker, i int) {
		if opts.Observer != nil {
			opts.Observer.TrialStart(i)
		}
		start := time.Now()
		var lastErr error
		attempts := 0
		for a := 0; a < maxAttempts; a++ {
			attempts = a + 1
			attemptStart := time.Now()
			aErr := runAttempt(worker, i, a)
			if aErr == nil && opts.Retry.Deadline > 0 {
				if el := time.Since(attemptStart); el > opts.Retry.Deadline {
					aErr = &DeadlineError{Trial: i, Elapsed: el, Deadline: opts.Retry.Deadline}
				}
			}
			if aErr == nil {
				lastErr = nil
				break
			}
			lastErr = aErr
			if a+1 < maxAttempts {
				if rr, ok := opts.Observer.(retryReporter); ok {
					rr.AddTrialRetries(1)
				}
				if d := opts.Retry.BackoffFor(a + 1); d > 0 {
					select {
					case <-ctx.Done():
					case <-time.After(d):
					}
				}
			}
		}
		if opts.Observer != nil {
			opts.Observer.TrialEnd(i, time.Since(start))
		}
		mu.Lock()
		defer mu.Unlock()
		if lastErr != nil {
			failures = append(failures, TrialFailure{Trial: i, Attempts: attempts, Err: lastErr})
			if maxAttempts > 1 {
				if qr, ok := opts.Observer.(quarantineReporter); ok {
					qr.AddQuarantined(1)
				}
			}
			return
		}
		if onDone != nil && hookErr == nil {
			if err := onDone(i, results[i]); err != nil {
				hookErr = err
				stopped.Store(true)
			}
		}
	}

	loop := func(worker int) {
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= trials {
				return
			}
			if opts.Skip != nil && opts.Skip(i) {
				continue
			}
			runOne(worker, i)
		}
	}

	if workers == 1 {
		loop(0)
	} else {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				loop(worker)
			}(w)
		}
		wg.Wait()
	}

	// Assemble a deterministic error: failures sorted by trial index, then
	// the quarantine summary, then the hook error, then the cancellation
	// cause. Single-attempt failures surface as their bare underlying error
	// (historically a *PanicError); only an exhausted retry budget wraps
	// the error in a *TrialFailure and lists the trial as quarantined.
	sort.Slice(failures, func(a, b int) bool { return failures[a].Trial < failures[b].Trial })
	errs := make([]error, 0, len(failures)+3)
	var quarantined []int
	for i := range failures {
		f := &failures[i]
		if maxAttempts > 1 {
			errs = append(errs, f)
			quarantined = append(quarantined, f.Trial)
		} else {
			errs = append(errs, f.Err)
		}
	}
	if len(quarantined) > 0 {
		errs = append(errs, &QuarantineError{Trials: quarantined})
	}
	if hookErr != nil {
		errs = append(errs, hookErr)
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return results, errors.Join(errs...)
}

// RunOpts is the fold counterpart of MapOpts: on a nil error it merges the
// results strictly in trial order, exactly like Run. Requires trials >= 1
// and no skipped trials (use RunCheckpointed when resuming from stored
// results).
func RunOpts[R any](ctx context.Context, trials int, trial func(i int) R, merge func(acc, next R) R, onDone func(i int, r R) error, opts Options) (R, error) {
	var zero R
	if trials < 1 {
		panic(fmt.Sprintf("trialrunner: RunOpts requires trials >= 1, got %d", trials))
	}
	results, err := MapOpts(ctx, trials, trial, onDone, opts)
	if err != nil {
		return zero, err
	}
	acc := results[0]
	for i := 1; i < trials; i++ {
		acc = merge(acc, results[i])
	}
	return acc, nil
}
