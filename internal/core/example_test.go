package core_test

import (
	"fmt"

	"pride/internal/analytic"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/rng"
)

// Example shows the minimal PrIDE lifecycle: observe activations, service
// mitigation opportunities at each REF.
func Example() {
	w := dram.DDR5().ACTsPerTREFI()
	trk := core.New(core.DefaultConfig(w), rng.New(42))

	for i := 0; i < 10*w; i++ {
		trk.OnActivate(12345) // hammer one row
		if (i+1)%w == 0 {
			if m, ok := trk.OnMitigate(); ok {
				fmt.Printf("refresh victims of row %d at distance %d\n", m.Row, m.Level)
			}
		}
	}
	fmt.Printf("sampled %d of %d activations\n",
		trk.Stats().Insertions, trk.Stats().Activations)
	// Output:
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// refresh victims of row 12345 at distance 1
	// sampled 11 of 790 activations
}

// ExampleConfig_rfm shows the RFM co-design: the FIFO is unchanged, only
// the insertion probability follows the higher mitigation rate.
func ExampleConfig_rfm() {
	cfg := core.RFMConfig(core.RFM16)
	fmt.Printf("entries=%d p=1/%d transitive=%v\n",
		cfg.Entries, int(1/cfg.InsertionProb), cfg.TransitiveProtection)
	// Output:
	// entries=4 p=1/17 transitive=true
}

// Example_securityBound connects the tracker to its analytic guarantee.
func Example_securityBound() {
	p := dram.DDR5()
	r := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	fmt.Printf("TRH-S* = %.0f, TRH-D* = %.0f, storage = %d bits\n",
		r.TRHStar, r.TRHDoubleSided(),
		core.New(core.DefaultConfig(p.ACTsPerTREFI()), rng.New(1)).StorageBits())
	// Output:
	// TRH-S* = 3808, TRH-D* = 1904, storage = 85 bits
}
