// Package core implements PrIDE, the paper's primary contribution: a
// Probabilistic In-DRAM tracker consisting of an N-entry FIFO buffer with
// probabilistic insertion (Section IV).
//
// PrIDE's three policies are all access-pattern independent:
//
//   - Insertion: every activation enters the buffer with probability p,
//     regardless of the buffer's contents (requirements R1 and R2 of
//     Section IV-B: invalid entries and duplicate hits do not change the
//     decision).
//   - Eviction: FIFO — inserting into a full buffer evicts the oldest entry.
//   - Mitigation: FIFO — each mitigation opportunity pops the oldest entry.
//
// Because no decision depends on which addresses are accessed, the failure
// probability of any attack round can be bounded analytically; the companion
// package internal/analytic computes those bounds.
//
// The default configuration matches the paper: 4 entries, p = 1/(W+1) = 1/80,
// and multi-level mitigation for transitive-attack protection (Section IV-E).
package core

import (
	"fmt"

	"pride/internal/guard"
	"pride/internal/rng"
	"pride/internal/tracker"
)

// Policy selects the eviction/mitigation victim. The paper's PrIDE uses
// FIFO for both; Random is provided for the Section VIII ablation (PROTEAS
// explored random policies — also access-pattern independent, but with a
// higher loss probability and unbounded tardiness).
type Policy int

const (
	// FIFO selects the oldest entry (PrIDE's choice).
	FIFO Policy = iota
	// Random selects a uniformly random valid entry.
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a PrIDE tracker.
type Config struct {
	// Entries is the FIFO buffer size N (paper default: 4).
	Entries int
	// InsertionProb is the sampling probability p. The paper uses
	// 1/(W+1) = 1/80 with transitive protection, 1/W = 1/79 without,
	// and 1/17, 1/41 for the RFM16/RFM40 co-designs.
	InsertionProb float64
	// TransitiveProtection enables multi-level mitigation: a mitigated
	// row is re-inserted with probability p at level+1 (Section IV-E).
	TransitiveProtection bool
	// MaxLevel caps the mitigation level; the paper's entries carry a
	// 3-bit level, so the cap is 7. Levels beyond the cap are dropped
	// rather than wrapped.
	MaxLevel int
	// Eviction and Mitigation select the victim policies; both default
	// to FIFO (PrIDE). Setting either to Random yields the PROTEAS-style
	// ablation variant.
	Eviction   Policy
	Mitigation Policy
	// RowBits is the row-address width, used only for storage accounting
	// (17 bits for the paper's 128K-row banks).
	RowBits int

	// The following two switches deliberately VIOLATE requirements R1/R2
	// of Section IV-B. They exist only so tests and ablation benchmarks
	// can demonstrate why the requirements matter; never enable them in
	// a real configuration.

	// InsecureAlwaysInsertIfInvalid inserts unconditionally whenever the
	// buffer has an invalid entry (violates R1).
	InsecureAlwaysInsertIfInvalid bool
	// InsecureSkipDuplicates suppresses insertion when the row is already
	// tracked (violates R2).
	InsecureSkipDuplicates bool

	// SelfCheck enables runtime invariant guards on the FIFO structure
	// (occupancy and pointer bounds, entry-level ranges). A violated guard
	// panics with a guard.Violation. Off by default; the checks are integer
	// compares, enabled by the -selfcheck campaign flag.
	SelfCheck bool
}

// DefaultConfig returns the paper's default PrIDE configuration for a
// mitigation window of w activations (w = 79 for DDR5 with one mitigation
// per tREFI): 4 entries, p = 1/(w+1), transitive protection on.
func DefaultConfig(w int) Config {
	return Config{
		Entries:              4,
		InsertionProb:        1.0 / float64(w+1),
		TransitiveProtection: true,
		MaxLevel:             7,
		Eviction:             FIFO,
		Mitigation:           FIFO,
		RowBits:              17,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("pride: Entries must be positive, got %d", c.Entries)
	case c.InsertionProb <= 0 || c.InsertionProb > 1:
		return fmt.Errorf("pride: InsertionProb must be in (0,1], got %v", c.InsertionProb)
	case c.MaxLevel < 1:
		return fmt.Errorf("pride: MaxLevel must be >= 1, got %d", c.MaxLevel)
	case c.RowBits <= 0:
		return fmt.Errorf("pride: RowBits must be positive, got %d", c.RowBits)
	case c.Eviction != FIFO && c.Eviction != Random:
		return fmt.Errorf("pride: unknown eviction policy %v", c.Eviction)
	case c.Mitigation != FIFO && c.Mitigation != Random:
		return fmt.Errorf("pride: unknown mitigation policy %v", c.Mitigation)
	}
	return nil
}

// EventKind labels the tracker events an Observer can watch.
type EventKind int

const (
	// EventInsert fires when an entry enters the FIFO.
	EventInsert EventKind = iota
	// EventEvict fires when an entry is displaced without mitigation —
	// the raw material of Tracker Retention Failures.
	EventEvict
	// EventMitigate fires when an entry is popped for mitigation.
	EventMitigate
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventEvict:
		return "evict"
	case EventMitigate:
		return "mitigate"
	default:
		return "unknown"
	}
}

// entry is one FIFO slot: a row address and its 3-bit mitigation level.
type entry struct {
	row   int
	level int
}

// PrIDE is the probabilistic in-DRAM tracker (Figure 5). The FIFO is a
// circular buffer: ptr points at the oldest entry and occ counts the valid
// entries; the newest entry lives at (ptr+occ-1) mod N.
type PrIDE struct {
	cfg Config
	rng *rng.Stream
	// insertT is cfg.InsertionProb precomputed as an integer acceptance
	// threshold, so the per-ACT sampling decision is one raw draw plus an
	// integer compare (bit-identical to the float compare it replaces).
	insertT rng.Threshold

	buf []entry
	ptr int
	occ int

	stats    Statistics
	observer func(EventKind, int)
}

// Statistics counts the tracker's decisions for analysis and energy
// accounting.
type Statistics struct {
	// Activations is the number of demand ACTs observed.
	Activations uint64
	// Insertions counts successful buffer insertions (including
	// re-insertions from transitive protection).
	Insertions uint64
	// Evictions counts entries lost to FIFO (or random) eviction without
	// mitigation — the raw material of Tracker Retention Failures.
	Evictions uint64
	// Mitigations counts entries popped for mitigation.
	Mitigations uint64
	// Reinsertion counts transitive-protection re-insertions.
	Reinsertions uint64
	// IdleMitigations counts mitigation opportunities with an empty buffer.
	IdleMitigations uint64
}

var (
	_ tracker.Tracker       = (*PrIDE)(nil)
	_ tracker.SkipAdvancer  = (*PrIDE)(nil)
	_ tracker.IdleMitigator = (*PrIDE)(nil)
)

// New returns a PrIDE tracker with the given configuration, drawing
// randomness from the provided stream. It panics on an invalid
// configuration: tracker construction happens at experiment setup time,
// where a loud failure is the correct behaviour.
func New(cfg Config, r *rng.Stream) *PrIDE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if r == nil {
		panic("pride: nil rng stream")
	}
	return &PrIDE{
		cfg:     cfg,
		rng:     r,
		insertT: rng.NewThreshold(cfg.InsertionProb),
		buf:     make([]entry, cfg.Entries),
	}
}

// Name implements tracker.Tracker.
func (p *PrIDE) Name() string {
	if p.cfg.Eviction == Random || p.cfg.Mitigation == Random {
		return fmt.Sprintf("PrIDE(evict=%v,mitigate=%v)", p.cfg.Eviction, p.cfg.Mitigation)
	}
	return "PrIDE"
}

// Config returns the tracker's configuration.
func (p *PrIDE) Config() Config { return p.cfg }

// SetSelfCheck implements tracker.SelfChecker: it toggles the FIFO
// invariant guards at runtime, so campaign layers can enable them from one
// flag without reconstructing the tracker.
func (p *PrIDE) SetSelfCheck(on bool) { p.cfg.SelfCheck = on }

// check verifies the FIFO structural invariants: occupancy within
// [0, Entries], head pointer within [0, Entries). Called from the mutating
// operations when SelfCheck is on.
func (p *PrIDE) check(op string) {
	if p.occ < 0 || p.occ > p.cfg.Entries {
		guard.Failf("pride", "fifo-occupancy", "%s: occ %d outside [0,%d]", op, p.occ, p.cfg.Entries)
	}
	if p.ptr < 0 || p.ptr >= p.cfg.Entries {
		guard.Failf("pride", "fifo-pointer", "%s: ptr %d outside [0,%d)", op, p.ptr, p.cfg.Entries)
	}
}

// Observe registers fn to be called for every insert/evict/mitigate event
// with the affected row. The hardware has no such port; it exists for the
// loss-probability measurements of Fig 18 and for tests. Pass nil to
// detach.
func (p *PrIDE) Observe(fn func(kind EventKind, row int)) { p.observer = fn }

// emit notifies the observer, if any.
func (p *PrIDE) emit(kind EventKind, row int) {
	if p.observer != nil {
		p.observer(kind, row)
	}
}

// OnActivate observes a demand activation: the row is sampled for insertion
// with probability p, independent of the buffer state (R1, R2).
func (p *PrIDE) OnActivate(row int) {
	p.stats.Activations++

	insert := p.rng.BernoulliT(p.insertT)

	// Deliberate R1 violation for the ablation: always insert when the
	// buffer has room. This couples the insertion decision to buffer
	// state, inflating occupancy and thrashing (higher TRF).
	if p.cfg.InsecureAlwaysInsertIfInvalid && p.occ < p.cfg.Entries {
		insert = true
	}
	if !insert {
		return
	}
	// Deliberate R2 violation for the ablation: skip duplicates. The
	// existing entry may then be evicted with no replacement in flight.
	if p.cfg.InsecureSkipDuplicates && p.contains(row) {
		return
	}
	p.insert(entry{row: row, level: 1})
}

// SupportsSkipAhead implements tracker.SkipAdvancer. The insecure R1/R2
// ablation switches couple the insertion decision to buffer state, which
// breaks the i.i.d.-Bernoulli premise of geometric gap sampling; those
// configurations must run on the exact per-ACT engine.
func (p *PrIDE) SupportsSkipAhead() bool {
	return !p.cfg.InsecureAlwaysInsertIfInvalid && !p.cfg.InsecureSkipDuplicates
}

// InsertionProb implements tracker.SkipAdvancer. It returns the threshold's
// lattice-rounded probability rather than the raw configuration value so the
// gap sampler and the exact engine's BernoulliT fire at identical rates.
func (p *PrIDE) InsertionProb() float64 { return p.insertT.Prob() }

// AdvanceIdle implements tracker.SkipAdvancer: n activations whose insertion
// draws all failed. A failed draw changes nothing but the activation count,
// so the fast-forward is a single counter add. Consumes no draws.
func (p *PrIDE) AdvanceIdle(n int) {
	if n < 0 {
		panic(fmt.Sprintf("pride: AdvanceIdle(%d)", n))
	}
	p.stats.Activations += uint64(n)
}

// ActivateInsert implements tracker.SkipAdvancer: one activation whose
// insertion draw succeeded. Consumes no draws — the caller's geometric gap
// draw already decided this insertion.
func (p *PrIDE) ActivateInsert(row int) {
	p.stats.Activations++
	p.insert(entry{row: row, level: 1})
}

// AdvanceIdleMitigations implements tracker.IdleMitigator: n mitigation
// opportunities that each found the buffer empty. An empty pop returns
// before any draw, policy decision, or observer event (see OnMitigate), so
// the fast-forward is a single counter add. Consumes no draws.
func (p *PrIDE) AdvanceIdleMitigations(n int) {
	if n < 0 {
		panic(fmt.Sprintf("pride: AdvanceIdleMitigations(%d)", n))
	}
	p.stats.IdleMitigations += uint64(n)
}

// insert places e at the FIFO tail, evicting per the eviction policy when
// the buffer is full.
func (p *PrIDE) insert(e entry) {
	if p.cfg.SelfCheck && (e.level < 1 || e.level > p.cfg.MaxLevel) {
		guard.Failf("pride", "entry-level", "insert: level %d outside [1,%d]", e.level, p.cfg.MaxLevel)
	}
	if p.occ == p.cfg.Entries {
		p.evict()
	}
	p.buf[(p.ptr+p.occ)%p.cfg.Entries] = e
	p.occ++
	p.stats.Insertions++
	if p.cfg.SelfCheck {
		p.check("insert")
	}
	p.emit(EventInsert, e.row)
}

// evict removes one entry without mitigation.
func (p *PrIDE) evict() {
	if p.cfg.SelfCheck && p.occ <= 0 {
		guard.Failf("pride", "fifo-occupancy", "evict: occ %d, nothing to evict", p.occ)
	}
	switch p.cfg.Eviction {
	case FIFO:
		p.emit(EventEvict, p.buf[p.ptr].row)
		p.ptr = (p.ptr + 1) % p.cfg.Entries
	case Random:
		k := p.rng.Intn(p.occ)
		p.emit(EventEvict, p.buf[(p.ptr+k)%p.cfg.Entries].row)
		p.removeAt(k)
	}
	p.occ--
	p.stats.Evictions++
}

// removeAt removes the k-th oldest entry (0 = head) while preserving the
// queue order of the survivors: entries older than the victim shift one slot
// toward the tail, then the head pointer advances past the vacated slot. N
// is at most a handful of entries, so the shift is a few struct copies. The
// caller decrements occ.
func (p *PrIDE) removeAt(k int) {
	n := p.cfg.Entries
	for i := k; i > 0; i-- {
		p.buf[(p.ptr+i)%n] = p.buf[(p.ptr+i-1)%n]
	}
	p.ptr = (p.ptr + 1) % n
}

// OnMitigate pops one entry per the mitigation policy. With transitive
// protection, the mitigated row is re-inserted with probability p at
// level+1, giving the mitigative activations themselves a chance of being
// mitigated (Section IV-E).
func (p *PrIDE) OnMitigate() (tracker.Mitigation, bool) {
	if p.occ == 0 {
		p.stats.IdleMitigations++
		return tracker.Mitigation{}, false
	}
	var e entry
	switch p.cfg.Mitigation {
	case FIFO:
		e = p.buf[p.ptr]
		p.ptr = (p.ptr + 1) % p.cfg.Entries
	case Random:
		k := p.rng.Intn(p.occ)
		e = p.buf[(p.ptr+k)%p.cfg.Entries]
		p.removeAt(k)
	}
	p.occ--
	p.stats.Mitigations++
	if p.cfg.SelfCheck {
		p.check("mitigate")
		if e.level < 1 || e.level > p.cfg.MaxLevel {
			guard.Failf("pride", "entry-level", "mitigate: popped level %d outside [1,%d]", e.level, p.cfg.MaxLevel)
		}
	}
	p.emit(EventMitigate, e.row)

	if p.cfg.TransitiveProtection && e.level < p.cfg.MaxLevel {
		if p.rng.BernoulliT(p.insertT) {
			p.insert(entry{row: e.row, level: e.level + 1})
			p.stats.Reinsertions++
		}
	}
	return tracker.Mitigation{Row: e.row, Level: e.level}, true
}

// Occupancy implements tracker.Tracker.
func (p *PrIDE) Occupancy() int { return p.occ }

// Contains reports whether row is currently tracked. Exposed for tests and
// analysis; the hardware would have no such read port.
func (p *PrIDE) Contains(row int) bool { return p.contains(row) }

func (p *PrIDE) contains(row int) bool {
	for i := 0; i < p.occ; i++ {
		if p.buf[(p.ptr+i)%p.cfg.Entries].row == row {
			return true
		}
	}
	return false
}

// Snapshot returns the queue contents oldest-first, as (row, level) pairs.
func (p *PrIDE) Snapshot() []tracker.Mitigation {
	out := make([]tracker.Mitigation, 0, p.occ)
	for i := 0; i < p.occ; i++ {
		e := p.buf[(p.ptr+i)%p.cfg.Entries]
		out = append(out, tracker.Mitigation{Row: e.row, Level: e.level})
	}
	return out
}

// StorageBits implements tracker.Tracker: N entries of (rowBits + 3-bit
// level), plus the PTR register (indexes 0..N-1, ceil(log2 N) bits) and the
// Occ register (counts 0..N inclusive, so ceil(log2(N+1)) bits — one more
// value than PTR, and for non-power-of-two N often the same width). Both are
// negligible; we count them anyway for honesty.
func (p *PrIDE) StorageBits() int {
	perEntry := p.cfg.RowBits + 3
	regBits := ceilLog2(p.cfg.Entries) + ceilLog2(p.cfg.Entries+1)
	return p.cfg.Entries*perEntry + regBits
}

// Stats returns a copy of the decision counters.
func (p *PrIDE) Stats() Statistics { return p.stats }

// Reset implements tracker.Tracker.
func (p *PrIDE) Reset() {
	p.ptr = 0
	p.occ = 0
	p.stats = Statistics{}
}

func ceilLog2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
