package core

// RFMThreshold values evaluated in the paper (Section V): an RFM command is
// issued by the memory controller each time a bank accumulates this many
// activations, giving the in-DRAM tracker an extra mitigation opportunity.
const (
	// RFM40 roughly doubles the mitigation rate (one extra mitigation per
	// 40 ACTs vs. the baseline ~1 per 79).
	RFM40 = 40
	// RFM16 gives roughly five times the baseline mitigation rate.
	RFM16 = 16
)

// RFMConfig returns the PrIDE configuration co-designed with RFM at the
// given threshold (Section V-B): the FIFO is unmodified (4 entries), and the
// insertion probability is revised to 1/(threshold+1) so the insertion rate
// matches the mitigation rate — RFM16 uses p=1/17, RFM40 uses p=1/41, as in
// the paper.
func RFMConfig(threshold int) Config {
	cfg := DefaultConfig(threshold)
	return cfg
}
