package core

import (
	"math"
	"testing"
	"testing/quick"

	"pride/internal/rng"
	"pride/internal/tracker"
)

func newTest(cfg Config, seed uint64) *PrIDE {
	return New(cfg, rng.New(seed))
}

func simpleConfig(n int, p float64) Config {
	return Config{
		Entries:       n,
		InsertionProb: p,
		MaxLevel:      7,
		RowBits:       17,
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(79)
	if cfg.Entries != 4 {
		t.Fatalf("default entries = %d, want 4", cfg.Entries)
	}
	if got, want := cfg.InsertionProb, 1.0/80; math.Abs(got-want) > 1e-15 {
		t.Fatalf("default p = %v, want 1/80", got)
	}
	if !cfg.TransitiveProtection {
		t.Fatal("default must enable transitive protection")
	}
	if cfg.MaxLevel != 7 {
		t.Fatalf("MaxLevel = %d, want 7 (3-bit level field)", cfg.MaxLevel)
	}
}

func TestRFMConfigs(t *testing.T) {
	if got, want := RFMConfig(RFM16).InsertionProb, 1.0/17; math.Abs(got-want) > 1e-15 {
		t.Fatalf("RFM16 p = %v, want 1/17", got)
	}
	if got, want := RFMConfig(RFM40).InsertionProb, 1.0/41; math.Abs(got-want) > 1e-15 {
		t.Fatalf("RFM40 p = %v, want 1/41", got)
	}
	if RFMConfig(RFM16).Entries != 4 {
		t.Fatal("RFM co-design must keep the 4-entry FIFO unmodified")
	}
}

func TestStorageBitsMatchesPaperBudget(t *testing.T) {
	// Section VII-D: 4 entries x 20 bits (17-bit row + 3-bit level) = 80
	// bits = 10 bytes per bank, plus two tiny registers.
	p := newTest(DefaultConfig(79), 1)
	bits := p.StorageBits()
	if bits < 80 || bits > 88 {
		t.Fatalf("StorageBits = %d, want 80 (10 bytes) + small registers", bits)
	}
}

func TestInsertionIsProbabilistic(t *testing.T) {
	const pIns = 1.0 / 80
	pr := newTest(simpleConfig(4, pIns), 2)
	const n = 400000
	for i := 0; i < n; i++ {
		pr.OnActivate(i % 997)
	}
	got := float64(pr.Stats().Insertions) / n
	tol := 5 * math.Sqrt(pIns*(1-pIns)/n)
	if math.Abs(got-pIns) > tol {
		t.Fatalf("insertion rate = %v, want %v +- %v", got, pIns, tol)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	pr := newTest(simpleConfig(4, 1), 3) // p=1: every ACT inserts
	for _, r := range []int{10, 20, 30} {
		pr.OnActivate(r)
	}
	if pr.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", pr.Occupancy())
	}
	want := []int{10, 20, 30}
	for _, w := range want {
		m, ok := pr.OnMitigate()
		if !ok {
			t.Fatal("mitigation returned nothing")
		}
		if m.Row != w {
			t.Fatalf("mitigated %d, want %d (FIFO order)", m.Row, w)
		}
		if m.Level != 1 {
			t.Fatalf("demand insertion level = %d, want 1", m.Level)
		}
	}
	if _, ok := pr.OnMitigate(); ok {
		t.Fatal("mitigation from empty buffer")
	}
}

func TestFIFOEvictionDropsOldest(t *testing.T) {
	pr := newTest(simpleConfig(2, 1), 4)
	pr.OnActivate(1)
	pr.OnActivate(2)
	pr.OnActivate(3) // evicts 1
	if pr.Contains(1) {
		t.Fatal("oldest entry not evicted")
	}
	m, _ := pr.OnMitigate()
	if m.Row != 2 {
		t.Fatalf("oldest surviving entry = %d, want 2", m.Row)
	}
	if pr.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", pr.Stats().Evictions)
	}
}

func TestDuplicatesAreInserted(t *testing.T) {
	// Requirement R2: a matching entry must not suppress insertion.
	pr := newTest(simpleConfig(4, 1), 5)
	pr.OnActivate(42)
	pr.OnActivate(42)
	if pr.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 duplicate entries (R2)", pr.Occupancy())
	}
}

func TestInsecureSkipDuplicatesViolatesR2(t *testing.T) {
	cfg := simpleConfig(4, 1)
	cfg.InsecureSkipDuplicates = true
	pr := New(cfg, rng.New(6))
	pr.OnActivate(42)
	pr.OnActivate(42)
	if pr.Occupancy() != 1 {
		t.Fatalf("insecure variant occupancy = %d, want 1", pr.Occupancy())
	}
}

func TestInsecureAlwaysInsertViolatesR1(t *testing.T) {
	cfg := simpleConfig(4, 1e-12) // essentially never sample
	cfg.InsecureAlwaysInsertIfInvalid = true
	pr := New(cfg, rng.New(7))
	pr.OnActivate(1)
	pr.OnActivate(2)
	if pr.Occupancy() != 2 {
		t.Fatalf("R1-violating variant should have inserted both, occupancy = %d", pr.Occupancy())
	}
	// The secure tracker with the same (tiny) p inserts nothing.
	sec := newTest(simpleConfig(4, 1e-12), 7)
	sec.OnActivate(1)
	sec.OnActivate(2)
	if sec.Occupancy() != 0 {
		t.Fatalf("secure tracker sampled at p=1e-12, occupancy = %d", sec.Occupancy())
	}
}

func TestTransitiveReinsertionIncrementsLevel(t *testing.T) {
	cfg := simpleConfig(4, 1)
	cfg.TransitiveProtection = true
	pr := New(cfg, rng.New(8))
	pr.OnActivate(99)
	m1, _ := pr.OnMitigate() // re-inserts at level 2 (p=1)
	if m1.Level != 1 {
		t.Fatalf("first mitigation level = %d, want 1", m1.Level)
	}
	m2, ok := pr.OnMitigate()
	if !ok {
		t.Fatal("re-inserted entry missing")
	}
	if m2.Row != 99 || m2.Level != 2 {
		t.Fatalf("re-inserted mitigation = %+v, want row 99 level 2", m2)
	}
	if pr.Stats().Reinsertions != 2 { // m2's pop re-inserted at level 3 too
		t.Fatalf("reinsertions = %d, want 2", pr.Stats().Reinsertions)
	}
}

func TestTransitiveLevelCapped(t *testing.T) {
	cfg := simpleConfig(4, 1)
	cfg.TransitiveProtection = true
	cfg.MaxLevel = 3
	pr := New(cfg, rng.New(9))
	pr.OnActivate(5)
	levels := []int{}
	for {
		m, ok := pr.OnMitigate()
		if !ok {
			break
		}
		levels = append(levels, m.Level)
		if len(levels) > 10 {
			t.Fatal("level cap not enforced: unbounded re-insertion")
		}
	}
	want := []int{1, 2, 3}
	if len(levels) != len(want) {
		t.Fatalf("mitigation levels = %v, want %v", levels, want)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("mitigation levels = %v, want %v", levels, want)
		}
	}
}

func TestNoTransitiveReinsertionWhenDisabled(t *testing.T) {
	pr := newTest(simpleConfig(4, 1), 10)
	pr.OnActivate(5)
	pr.OnMitigate()
	if pr.Occupancy() != 0 {
		t.Fatal("re-insertion happened with transitive protection disabled")
	}
}

// The core security property (Figure 1c, Section IV-A): the tracker's
// decisions must not depend on WHICH addresses are accessed. With a fixed
// seed, any two address sequences of the same length must produce identical
// insertion/eviction/mitigation DECISION sequences (only the stored
// addresses differ).
func TestPatternIndependenceProperty(t *testing.T) {
	check := func(seed uint64, addrsA, addrsB []uint16) bool {
		n := len(addrsA)
		if len(addrsB) < n {
			n = len(addrsB)
		}
		if n == 0 {
			return true
		}
		cfg := DefaultConfig(79)
		pa := New(cfg, rng.New(seed))
		pb := New(cfg, rng.New(seed))
		for i := 0; i < n; i++ {
			pa.OnActivate(int(addrsA[i]))
			pb.OnActivate(int(addrsB[i]))
			if pa.Occupancy() != pb.Occupancy() {
				return false
			}
			if i%17 == 0 {
				_, okA := pa.OnMitigate()
				_, okB := pb.OnMitigate()
				if okA != okB || pa.Occupancy() != pb.Occupancy() {
					return false
				}
			}
		}
		sa, sb := pa.Stats(), pb.Stats()
		return sa == sb
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy is always within [0, N] and matches Snapshot length.
func TestOccupancyBoundsProperty(t *testing.T) {
	check := func(seed uint64, ops []byte) bool {
		cfg := simpleConfig(3, 0.3)
		cfg.TransitiveProtection = true
		pr := New(cfg, rng.New(seed))
		for _, op := range ops {
			if op%5 == 0 {
				pr.OnMitigate()
			} else {
				pr.OnActivate(int(op))
			}
			occ := pr.Occupancy()
			if occ < 0 || occ > 3 || occ != len(pr.Snapshot()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: insertions - evictions - mitigated-pops == occupancy.
func TestFlowConservationProperty(t *testing.T) {
	check := func(seed uint64, ops []byte) bool {
		cfg := simpleConfig(4, 0.5)
		cfg.TransitiveProtection = true
		pr := New(cfg, rng.New(seed))
		for _, op := range ops {
			if op%7 == 0 {
				pr.OnMitigate()
			} else {
				pr.OnActivate(int(op) * 3)
			}
		}
		s := pr.Stats()
		return int(s.Insertions)-int(s.Evictions)-int(s.Mitigations) == pr.Occupancy()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPoliciesStillPatternIndependent(t *testing.T) {
	// The PROTEAS-style ablation: Random eviction/mitigation is also
	// pattern independent (Section VIII), just worse quantitatively.
	cfg := simpleConfig(4, 0.5)
	cfg.Eviction = Random
	cfg.Mitigation = Random
	pa := New(cfg, rng.New(77))
	pb := New(cfg, rng.New(77))
	for i := 0; i < 5000; i++ {
		pa.OnActivate(i % 3)
		pb.OnActivate(i % 1009)
		if i%11 == 0 {
			_, okA := pa.OnMitigate()
			_, okB := pb.OnMitigate()
			if okA != okB {
				t.Fatal("random-policy decisions diverged across patterns")
			}
		}
		if pa.Occupancy() != pb.Occupancy() {
			t.Fatal("random-policy occupancy diverged across patterns")
		}
	}
}

func TestRandomMitigationDrainsAllEntries(t *testing.T) {
	cfg := simpleConfig(4, 1)
	cfg.Mitigation = Random
	pr := New(cfg, rng.New(12))
	rows := map[int]bool{}
	for _, r := range []int{1, 2, 3, 4} {
		pr.OnActivate(r)
	}
	for i := 0; i < 4; i++ {
		m, ok := pr.OnMitigate()
		if !ok {
			t.Fatal("buffer drained early")
		}
		rows[m.Row] = true
	}
	if len(rows) != 4 {
		t.Fatalf("random mitigation returned duplicate rows: %v", rows)
	}
}

// minusOne reports whether got equals want with exactly the one entry whose
// row is victim removed, relative order of all survivors preserved.
func minusOne(want, got []tracker.Mitigation, victim int) bool {
	if len(got) != len(want)-1 {
		return false
	}
	i := 0
	removed := false
	for _, e := range want {
		if !removed && e.Row == victim {
			removed = true
			continue
		}
		if i >= len(got) || got[i] != e {
			return false
		}
		i++
	}
	return removed && i == len(got)
}

func TestRandomMitigationPreservesSurvivorOrder(t *testing.T) {
	// Regression: the old compaction moved the head entry into the victim's
	// slot, reordering the FIFO survivors; removal must keep queue order.
	for seed := uint64(0); seed < 50; seed++ {
		cfg := simpleConfig(4, 1)
		cfg.Mitigation = Random
		pr := New(cfg, rng.New(seed))
		for _, r := range []int{10, 20, 30, 40} {
			pr.OnActivate(r)
		}
		for pr.Occupancy() > 0 {
			before := pr.Snapshot()
			m, ok := pr.OnMitigate()
			if !ok {
				t.Fatal("buffer drained early")
			}
			after := pr.Snapshot()
			if !minusOne(before, after, m.Row) {
				t.Fatalf("seed %d: mitigating row %d from %v left %v; survivor order not preserved",
					seed, m.Row, before, after)
			}
		}
	}
}

func TestRandomEvictionPreservesSurvivorOrder(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		cfg := simpleConfig(4, 1)
		cfg.Eviction = Random
		pr := New(cfg, rng.New(seed))
		var evicted []int
		pr.Observe(func(kind EventKind, row int) {
			if kind == EventEvict {
				evicted = append(evicted, row)
			}
		})
		for _, r := range []int{10, 20, 30, 40} {
			pr.OnActivate(r)
		}
		// Each further insert (p=1) evicts one uniform victim; survivors
		// must keep their queue order with the new row appended.
		for next := 50; next < 150; next += 10 {
			before := pr.Snapshot()
			evicted = evicted[:0]
			pr.OnActivate(next)
			after := pr.Snapshot()
			if len(evicted) != 1 {
				t.Fatalf("seed %d: expected exactly one eviction, got %v", seed, evicted)
			}
			if len(after) == 0 || after[len(after)-1].Row != next {
				t.Fatalf("seed %d: new row %d not at the tail: %v", seed, next, after)
			}
			if !minusOne(before, after[:len(after)-1], evicted[0]) {
				t.Fatalf("seed %d: evicting row %d from %v left %v; survivor order not preserved",
					seed, evicted[0], before, after)
			}
		}
	}
}

func TestStorageBitsHandComputed(t *testing.T) {
	// N*(rowBits+3) payload, plus PTR (ceil(log2 N) bits, indexes 0..N-1)
	// and Occ (ceil(log2(N+1)) bits, counts 0..N inclusive).
	cases := []struct {
		entries, rowBits, want int
	}{
		{1, 17, 1*20 + 0 + 1},  // PTR degenerate, Occ in {0,1}
		{2, 10, 2*13 + 1 + 2},  // Occ counts 0..2: two bits
		{3, 17, 3*20 + 2 + 2},  // non-power-of-two: Occ 0..3 fits 2 bits
		{4, 17, 4*20 + 2 + 3},  // paper default: 85 bits, not 86
		{5, 8, 5*11 + 3 + 3},   // Occ 0..5 fits 3 bits
		{8, 17, 8*20 + 3 + 4},  // Occ 0..8 needs 4 bits
		{16, 17, 16*20 + 4 + 5},
	}
	for _, c := range cases {
		cfg := simpleConfig(c.entries, 0.5)
		cfg.RowBits = c.rowBits
		got := newTest(cfg, 1).StorageBits()
		if got != c.want {
			t.Errorf("StorageBits(N=%d, rowBits=%d) = %d, want %d",
				c.entries, c.rowBits, got, c.want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Config{
		{Entries: 0, InsertionProb: 0.5, MaxLevel: 1, RowBits: 17},
		{Entries: 4, InsertionProb: 0, MaxLevel: 1, RowBits: 17},
		{Entries: 4, InsertionProb: 1.5, MaxLevel: 1, RowBits: 17},
		{Entries: 4, InsertionProb: 0.5, MaxLevel: 0, RowBits: 17},
		{Entries: 4, InsertionProb: 0.5, MaxLevel: 1, RowBits: 0},
		{Entries: 4, InsertionProb: 0.5, MaxLevel: 1, RowBits: 17, Eviction: Policy(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{}, rng.New(1)) },
		func() { New(DefaultConfig(79), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New accepted invalid input")
				}
			}()
			f()
		}()
	}
}

func TestResetRestoresEmptyState(t *testing.T) {
	pr := newTest(simpleConfig(4, 1), 13)
	for i := 0; i < 10; i++ {
		pr.OnActivate(i)
	}
	pr.Reset()
	if pr.Occupancy() != 0 {
		t.Fatal("Reset left entries")
	}
	if pr.Stats() != (Statistics{}) {
		t.Fatal("Reset left statistics")
	}
	if _, ok := pr.OnMitigate(); ok {
		t.Fatal("mitigation after Reset")
	}
}

func TestTrackerInterfaceCompliance(t *testing.T) {
	var tr tracker.Tracker = newTest(DefaultConfig(79), 14)
	if tr.Name() != "PrIDE" {
		t.Fatalf("Name = %q, want PrIDE", tr.Name())
	}
	tr.OnActivate(1)
	tr.Reset()
	if tr.Occupancy() != 0 {
		t.Fatal("interface Reset failed")
	}
	if tr.StorageBits() <= 0 {
		t.Fatal("StorageBits must be positive")
	}
}

func TestIdleMitigationCounted(t *testing.T) {
	pr := newTest(simpleConfig(4, 0.5), 15)
	pr.OnMitigate()
	pr.OnMitigate()
	if got := pr.Stats().IdleMitigations; got != 2 {
		t.Fatalf("idle mitigations = %d, want 2", got)
	}
}

func BenchmarkOnActivate(b *testing.B) {
	pr := newTest(DefaultConfig(79), 1)
	for i := 0; i < b.N; i++ {
		pr.OnActivate(i & 0x1FFFF)
	}
}

func BenchmarkActivateMitigateCycle(b *testing.B) {
	pr := newTest(DefaultConfig(79), 1)
	for i := 0; i < b.N; i++ {
		pr.OnActivate(i & 0x1FFFF)
		if i%79 == 78 {
			pr.OnMitigate()
		}
	}
}
