package analytic

import (
	"math"
	"testing"

	"pride/internal/tracker"
)

// These tests pin the degenerate corners of the TRH* derivation, where the
// closed forms simplify enough to check by hand: certain insertion (p = 1),
// a single-entry buffer (N = 1), and an RFM co-design whose extra budget is
// zero (which must collapse to plain PrIDE exactly).

func TestPEqualsOneDegeneratesToZeroTIF(t *testing.T) {
	// With p = 1 every activation is mitigated: TIF = (1-p)^TRH = 0 for any
	// positive round, and TRH*_TIF = ln(round/TTF)/ln(0) = 0 — the tracker
	// alone imposes no threshold, only tardiness does.
	if got := TIF(1, 1); got != 0 {
		t.Fatalf("TIF(1, 1) = %v, want 0", got)
	}
	if got := TRHStarTIF(1, ddr5().TREFI, DefaultTargetTTFYears); got != 0 {
		t.Fatalf("TRH*_TIF(p=1) = %v, want 0", got)
	}
	if got := TRHStarTIFTRF(1, 0, ddr5().TREFI, DefaultTargetTTFYears); got != 0 {
		t.Fatalf("TRH*_TIF+TRF(p=1, L=0) = %v, want 0", got)
	}
	// The full Analyze at p=1, N=1 hits the OTHER degenerate corner: with
	// certain insertion every later activation displaces the single entry,
	// so the loss model says L = 1, p-hat = 0, and no finite threshold is
	// secure — the thrashing tracker never completes a mitigation. The
	// formula's raw division would return -Inf (a sign artifact of
	// ln(1-0) = +0); the hardened form must report +Inf.
	r := Analyze("certain", 1, w79, 1, ddr5().TREFI, DefaultTargetTTFYears)
	if r.Loss != 1 {
		t.Fatalf("Analyze(p=1, N=1) loss = %v, want 1 (every insertion displaces the entry)", r.Loss)
	}
	if !math.IsInf(r.TRHStar, 1) {
		t.Fatalf("Analyze(p=1, N=1) TRH* = %v, want +Inf (tracker thrashes, nothing is ever mitigated)", r.TRHStar)
	}
}

func TestSingleEntryDegenerateForm(t *testing.T) {
	// N = 1 is the PARA-register limit: tardiness is exactly one window, and
	// the loss model must agree with the closed-form single-entry loss (an
	// entry survives only if no later insertion displaces it before its
	// mitigation slot).
	p := 1.0 / float64(w79)
	r := Analyze("single", 1, w79, p, ddr5().TREFI, DefaultTargetTTFYears)
	if r.Tardiness != w79 {
		t.Fatalf("N=1 tardiness = %d, want W = %d", r.Tardiness, w79)
	}
	if r.Loss != LossProbability(1, w79, p) {
		t.Fatalf("N=1 loss = %v, want LossProbability(1, W, p) = %v", r.Loss, LossProbability(1, w79, p))
	}
	if r.PHat != p*(1-r.Loss) {
		t.Fatalf("N=1 p-hat = %v, want p(1-L) = %v", r.PHat, p*(1-r.Loss))
	}
	// Consistency of the threshold decomposition.
	wantBase := TRHStarTIFTRF(p, r.Loss, ddr5().TREFI, DefaultTargetTTFYears)
	if math.Abs(r.TRHStarNoTardiness-wantBase) > 1e-9 {
		t.Fatalf("N=1 base = %v, want TRHStarTIFTRF = %v", r.TRHStarNoTardiness, wantBase)
	}
	if math.Abs(r.TRHStar-(wantBase+float64(w79))) > 1e-9 {
		t.Fatal("N=1 TRH* must equal base + W exactly")
	}
}

func TestZeroRFMBudgetCollapsesToPlainPrIDE(t *testing.T) {
	// The RFM co-design is modelled by shrinking the window to the RFM
	// threshold. With zero extra RFM budget the threshold stays at the full
	// window W and the "co-design" must reproduce plain PrIDE to the bit —
	// same N, same W, same p, same round, hence the identical Result.
	plain := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	rfm0 := Analyze(plain.Name, 4, w79, 1/float64(w79+1), ddr5().TREFI, DefaultTargetTTFYears)
	if plain != rfm0 {
		t.Fatalf("zero-budget RFM co-design diverged from plain PrIDE:\nplain %+v\nrfm0  %+v", plain, rfm0)
	}
	// And a real budget must strictly help (smaller window, lower TRH*).
	rfm40 := EvaluateScheme(SchemePrIDERFM40, ddr5(), DefaultTargetTTFYears)
	if rfm40.TRHStar >= plain.TRHStar {
		t.Fatalf("RFM40 TRH* = %.0f, must be below plain PrIDE's %.0f", rfm40.TRHStar, plain.TRHStar)
	}
}

func TestMINTAnalyticThreshold(t *testing.T) {
	// MINT: N=1, p = 1/W exactly (the interval schedule gives every ACT the
	// same selection probability), L = 0 (the slot is always mitigated
	// before displacement), tardiness one window. TRH* = TRH*_TIF(1/79) + 79
	// = 3056 + 79 ~ 3135.
	r := EvaluateScheme(SchemeMINT, ddr5(), DefaultTargetTTFYears)
	want := TRHStarTIF(1.0/float64(w79), ddr5().TREFI, DefaultTargetTTFYears) + float64(w79)
	if math.Abs(r.TRHStar-want) > 1e-9 {
		t.Fatalf("MINT TRH* = %v, want TRH*_TIF(1/W) + W = %v", r.TRHStar, want)
	}
	if math.Abs(r.TRHStar-3135) > 15 {
		t.Fatalf("MINT TRH* = %.0f, want ~3135", r.TRHStar)
	}
	if r.Entries != 1 || r.Loss != 0 || r.Tardiness != w79 {
		t.Fatalf("MINT degenerate form wrong: %+v", r)
	}
	// MINT's single zero-loss slot beats PrIDE's 4-entry FIFO analytically
	// (no N*W tardiness), which is the shootout's headline comparison.
	pride := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	if r.TRHStar >= pride.TRHStar {
		t.Fatalf("MINT TRH* %.0f must be below PrIDE's %.0f", r.TRHStar, pride.TRHStar)
	}
}

func TestMOATAnalyticThresholdIsATO(t *testing.T) {
	// MOAT is deterministic: TRH* = ATO regardless of the security target.
	for _, ttf := range []float64{100, 10_000, 1e6} {
		r := EvaluateScheme(SchemeMOAT, ddr5(), ttf)
		if r.TRHStar != float64(tracker.DefaultMOATATO) {
			t.Fatalf("MOAT TRH* = %v at TTF %v years, want ATO = %d", r.TRHStar, ttf, tracker.DefaultMOATATO)
		}
		if r.TRHStarNoTardiness != r.TRHStar || r.Tardiness != 0 {
			t.Fatalf("MOAT must have no tardiness term: %+v", r)
		}
	}
	// Deterministic beats every probabilistic scheme in the zoo.
	moat := EvaluateScheme(SchemeMOAT, ddr5(), DefaultTargetTTFYears)
	for _, s := range AllSchemes() {
		if s == SchemeMOAT {
			continue
		}
		if r := EvaluateScheme(s, ddr5(), DefaultTargetTTFYears); r.TRHStar <= moat.TRHStar {
			t.Fatalf("%v TRH* = %.0f, expected above MOAT's deterministic %.0f", s, r.TRHStar, moat.TRHStar)
		}
	}
}
