package analytic

import (
	"math"
	"pride/internal/dram"
	"testing"
)

func ddr5() dram.Params { return dram.DDR5() }

func TestEq4Constant(t *testing.T) {
	// Eq. 4: ln(tREFI/MTTF) = -38.93 for tREFI=3.9us, MTTF=10K years.
	got := lnRoundOverTTF(ddr5().TREFI, DefaultTargetTTFYears)
	if math.Abs(got-(-38.93)) > 0.02 {
		t.Fatalf("ln(tREFI/MTTF) = %v, paper says -38.93", got)
	}
}

func TestTIF(t *testing.T) {
	if got := TIF(0.5, 1); got != 0.5 {
		t.Fatalf("TIF(0.5,1) = %v", got)
	}
	if got := TIF(1, 10); got != 0 {
		t.Fatalf("TIF(1,10) = %v, want 0", got)
	}
	// TIF decreases with TRH.
	if TIF(0.01, 100) <= TIF(0.01, 1000) {
		t.Fatal("TIF must decrease with TRH")
	}
}

func TestTRHStarTIFIdeal(t *testing.T) {
	// Section IV-B: p = 1/79 gives TRH*_TIF = 3.06K (Table XII: 3056).
	got := TRHStarTIF(1.0/79, ddr5().TREFI, DefaultTargetTTFYears)
	if math.Abs(got-3056) > 10 {
		t.Fatalf("TRH*_TIF = %v, paper says 3056", got)
	}
}

func TestTableIIITRHColumn(t *testing.T) {
	// Table III: TRH*(TIF+TRF) per buffer size, p=1/79.
	want := map[int]float64{
		1:  8290,
		2:  4400,
		4:  3470,
		8:  3250,
		16: 3150,
	}
	for n, wantTRH := range want {
		loss := LossProbability(n, w79, 1.0/w79)
		got := TRHStarTIFTRF(1.0/w79, loss, ddr5().TREFI, DefaultTargetTTFYears)
		if math.Abs(got-wantTRH)/wantTRH > 0.03 {
			t.Errorf("TRH*(TIF+TRF, N=%d) = %.0f, paper Table III says %.0f", n, got, wantTRH)
		}
	}
}

func TestTableXIIOurModelColumn(t *testing.T) {
	// Table XII: full TRH* (with tardiness) per buffer size, p=1/79.
	want := map[int]float64{
		1:  8366,
		2:  4561,
		4:  3787,
		8:  3883,
		16: 4415,
	}
	for n, wantTRH := range want {
		r := Analyze("PrIDE", n, w79, 1.0/w79, ddr5().TREFI, DefaultTargetTTFYears)
		if math.Abs(r.TRHStar-wantTRH)/wantTRH > 0.03 {
			t.Errorf("TRH*(N=%d) = %.0f, paper Table XII says %.0f", n, r.TRHStar, wantTRH)
		}
	}
}

func TestFig9MinimumNearFourEntries(t *testing.T) {
	// Fig 9: TRH* is minimized around buffer size 4-5, not 16.
	trh := map[int]float64{}
	for n := 1; n <= 16; n++ {
		trh[n] = Analyze("PrIDE", n, w79, 1.0/w79, ddr5().TREFI, DefaultTargetTTFYears).TRHStar
	}
	bestN, best := 0, math.Inf(1)
	for n, v := range trh {
		if v < best {
			bestN, best = n, v
		}
	}
	if bestN < 4 || bestN > 5 {
		t.Fatalf("TRH* minimized at N=%d (%.0f), paper says 4-5", bestN, best)
	}
	if trh[16] <= trh[4] {
		t.Fatalf("larger buffers must not always help: TRH*(16)=%v vs TRH*(4)=%v", trh[16], trh[4])
	}
	// Paper: TRH* at 4 is 3.79K, at 5 is 3.78K, at 16 is 4.42K.
	if math.Abs(trh[4]-3790) > 100 {
		t.Errorf("TRH*(4) = %.0f, paper says 3790", trh[4])
	}
	if math.Abs(trh[16]-4420) > 130 {
		t.Errorf("TRH*(16) = %.0f, paper says 4420", trh[16])
	}
}

func TestDefaultPrIDEMatchesPaper(t *testing.T) {
	// Section IV-F: PrIDE with transitive protection (p=1/80) tolerates
	// TRH* = 3.83K; Table VI: TRH-D* = 1.92K.
	r := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	if math.Abs(r.TRHStar-3830)/3830 > 0.02 {
		t.Fatalf("PrIDE TRH* = %.0f, paper says 3830", r.TRHStar)
	}
	if math.Abs(r.TRHDoubleSided()-1920)/1920 > 0.02 {
		t.Fatalf("PrIDE TRH-D* = %.0f, paper says 1920", r.TRHDoubleSided())
	}
	if r.Entries != 4 || r.Window != 79 {
		t.Fatalf("unexpected config: %+v", r)
	}
	if math.Abs(r.P-1.0/80) > 1e-12 {
		t.Fatalf("PrIDE p = %v, want 1/80", r.P)
	}
}

func TestTableVMitigationRates(t *testing.T) {
	// Table V: TRH* at different mitigation rates.
	cases := []struct {
		scheme Scheme
		want   float64
		tol    float64
	}{
		{SchemePrIDEHalfRate, 7520, 0.03},
		{SchemePrIDE, 3830, 0.02},
		{SchemePrIDERFM40, 1980, 0.03},
		{SchemePrIDERFM16, 823, 0.05},
	}
	for _, c := range cases {
		r := EvaluateScheme(c.scheme, ddr5(), DefaultTargetTTFYears)
		if math.Abs(r.TRHStar-c.want)/c.want > c.tol {
			t.Errorf("%v TRH* = %.0f, paper Table V says %.0f", c.scheme, r.TRHStar, c.want)
		}
	}
}

func TestTableIVPARAComparison(t *testing.T) {
	// Table IV: PARA-DRFM 17K, PARA-DRFM+ 8.4K, PrIDE 3.8K.
	para := EvaluateScheme(SchemePARADRFM, ddr5(), DefaultTargetTTFYears)
	if math.Abs(para.TRHStar-17000)/17000 > 0.04 {
		t.Errorf("PARA-DRFM TRH* = %.0f, paper says 17K", para.TRHStar)
	}
	paraPlus := EvaluateScheme(SchemePARADRFMPlus, ddr5(), DefaultTargetTTFYears)
	if math.Abs(paraPlus.TRHStar-8400)/8400 > 0.04 {
		t.Errorf("PARA-DRFM+ TRH* = %.0f, paper says 8.4K", paraPlus.TRHStar)
	}
	pride := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	if pride.TRHStar >= paraPlus.TRHStar || paraPlus.TRHStar >= para.TRHStar {
		t.Fatalf("ordering violated: PrIDE %.0f < PARA-DRFM+ %.0f < PARA-DRFM %.0f expected",
			pride.TRHStar, paraPlus.TRHStar, para.TRHStar)
	}
}

func TestPARFMComparison(t *testing.T) {
	// Section V-C: PARFM TRH* ~7.1K (our reconstruction gives ~6.6K with
	// Mithril's DDR4 window; assert the ranking and ballpark).
	parfm := EvaluateScheme(SchemePARFM, ddr5(), DefaultTargetTTFYears)
	if parfm.TRHStar < 6000 || parfm.TRHStar > 7500 {
		t.Errorf("PARFM TRH* = %.0f, want ~6.6-7.1K", parfm.TRHStar)
	}
	pride := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	if parfm.TRHStar <= pride.TRHStar {
		t.Fatal("PARFM must be worse (higher TRH*) than PrIDE")
	}
	if parfm.Entries <= 4*10 {
		t.Fatalf("PARFM needs a large buffer (Mithril: 166 entries for DDR4), got %d", parfm.Entries)
	}
}

func TestTableVIDoubleSided(t *testing.T) {
	// Table VI: TRH-S* and TRH-D* per scheme.
	cases := []struct {
		scheme       Scheme
		wantS, wantD float64
		tolS, tolD   float64
	}{
		{SchemePARADRFM, 17000, 8500, 0.04, 0.04},
		{SchemePrIDE, 3830, 1920, 0.02, 0.02},
		{SchemePrIDERFM40, 1980, 992, 0.03, 0.03},
		{SchemePrIDERFM16, 823, 412, 0.05, 0.05},
	}
	for _, c := range cases {
		r := EvaluateScheme(c.scheme, ddr5(), DefaultTargetTTFYears)
		if math.Abs(r.TRHStar-c.wantS)/c.wantS > c.tolS {
			t.Errorf("%v TRH-S* = %.0f, want %.0f", c.scheme, r.TRHStar, c.wantS)
		}
		if d := r.TRHDoubleSided(); math.Abs(d-c.wantD)/c.wantD > c.tolD {
			t.Errorf("%v TRH-D* = %.0f, want %.0f", c.scheme, d, c.wantD)
		}
	}
}

func TestVictimSharing(t *testing.T) {
	r := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	// BR=1: two aggressors share the victim -> half; BR=2: four -> quarter.
	if got := r.TRHVictimSharing(2); math.Abs(got-r.TRHStar/2) > 1e-9 {
		t.Fatalf("BR=1 sharing = %v, want TRH*/2", got)
	}
	if got := r.TRHVictimSharing(4); math.Abs(got-r.TRHStar/4) > 1e-9 {
		t.Fatalf("BR=2 sharing = %v, want TRH*/4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TRHVictimSharing(0) did not panic")
		}
	}()
	r.TRHVictimSharing(0)
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range AllSchemes() {
		if s.String() == "unknown" {
			t.Fatalf("scheme %d has no name", int(s))
		}
	}
	if Scheme(99).String() != "unknown" {
		t.Fatal("out-of-range scheme must stringify as unknown")
	}
}

func TestTardinessScalesWithNW(t *testing.T) {
	r := Analyze("x", 4, 79, 1.0/80, ddr5().TREFI, DefaultTargetTTFYears)
	if r.Tardiness != 4*79 {
		t.Fatalf("tardiness = %d, want N*W = 316", r.Tardiness)
	}
	if r.TRHStar-r.TRHStarNoTardiness != float64(r.Tardiness) {
		t.Fatal("TRH* must exceed the no-tardiness value by exactly N*W")
	}
}

func TestLongerTTFRaisesTRH(t *testing.T) {
	// Table VIII's trend: a stricter target needs a higher threshold.
	prev := 0.0
	for _, ttf := range []float64{100, 1000, 10_000, 100_000} {
		r := EvaluateScheme(SchemePrIDE, ddr5(), ttf)
		if r.TRHStar <= prev {
			t.Fatalf("TRH* not increasing with target TTF at %v", ttf)
		}
		prev = r.TRHStar
	}
}
