package analytic

import (
	"math"

	"pride/internal/dram"
)

// RoundFailureProb returns the probability that an attack round escapes a
// tracker characterized by r (Section III-A, inverted Eq. 8): the first
// Tardiness activations can never be mitigated in time, and each remaining
// chance independently fails to be mitigated with probability (1 - p̂).
//
// chances is the total mitigation chances the victim row offers: TRH for a
// single-sided attack, 2*TRH-D for a double-sided one (Section VI).
func RoundFailureProb(r Result, chances float64) float64 {
	eff := chances - float64(r.Tardiness)
	if eff <= 0 {
		return 1
	}
	return math.Exp(eff * math.Log(1-r.PHat))
}

// BankTTFYears returns the expected time-to-failure in years of a single
// continuously attacked bank (Eq. 1): roundTime / P_RF.
func BankTTFYears(r Result, chances float64) float64 {
	return r.RoundTime.Seconds() / RoundFailureProb(r, chances) / SecondsPerYear
}

// SystemTTFYears returns the expected time-to-failure of a system in which
// concurrentBanks banks are attacked simultaneously (Section VII-B/C: 64
// banks, of which 22 can be active concurrently due to tFAW).
func SystemTTFYears(r Result, chances float64, concurrentBanks int) float64 {
	return BankTTFYears(r, chances) / float64(concurrentBanks)
}

// SensitivityRow is one row of Table VIII: the critical thresholds of PrIDE
// for a given per-bank target TTF.
type SensitivityRow struct {
	// TargetTTFBankYears is the per-bank target.
	TargetTTFBankYears float64
	// MTTFSystemYears is the corresponding system-level MTTF (bank target
	// divided by the tFAW-limited concurrent banks).
	MTTFSystemYears float64
	TRHSingle       float64
	TRHDouble       float64
}

// TTFSensitivity reproduces Table VIII: PrIDE's TRH-S*/TRH-D* across
// per-bank target TTFs (in years).
func TTFSensitivity(p dram.Params, targetYears []float64) []SensitivityRow {
	rows := make([]SensitivityRow, 0, len(targetYears))
	for _, tgt := range targetYears {
		r := EvaluateScheme(SchemePrIDE, p, tgt)
		rows = append(rows, SensitivityRow{
			TargetTTFBankYears: tgt,
			MTTFSystemYears:    tgt / float64(p.TFAWLimit),
			TRHSingle:          r.TRHStar,
			TRHDouble:          r.TRHDoubleSided(),
		})
	}
	return rows
}

// DeviceTTFRow is one row of Table IX: the expected system time-to-failure
// when devices with a given double-sided threshold are continuously
// attacked.
type DeviceTTFRow struct {
	DeviceTRHD int
	// TTFYears maps scheme name to system time-to-fail in years.
	TTFYears map[string]float64
}

// DeviceTTFTable reproduces Table IX for the given device thresholds and
// schemes. All banks are assumed continuously attacked; the system has
// p.Banks banks of which p.TFAWLimit are concurrently active.
func DeviceTTFTable(p dram.Params, thresholds []int, schemes []Scheme) []DeviceTTFRow {
	results := make([]Result, 0, len(schemes))
	for _, s := range schemes {
		results = append(results, EvaluateScheme(s, p, DefaultTargetTTFYears))
	}
	rows := make([]DeviceTTFRow, 0, len(thresholds))
	for _, trhd := range thresholds {
		row := DeviceTTFRow{DeviceTRHD: trhd, TTFYears: map[string]float64{}}
		for _, r := range results {
			chances := 2 * float64(trhd) // double-sided: victim shared by two aggressors
			row.TTFYears[r.Name] = SystemTTFYears(r, chances, p.TFAWLimit)
		}
		rows = append(rows, row)
	}
	return rows
}
