package analytic_test

import (
	"fmt"

	"pride/internal/analytic"
	"pride/internal/dram"
)

// Example walks the paper's headline derivation: from the loss probability
// of the 4-entry FIFO to the critical Rowhammer threshold (Eq. 8).
func Example() {
	p := dram.DDR5()
	w := p.ACTsPerTREFI()

	loss := analytic.LossProbability(4, w, 1.0/float64(w))
	fmt.Printf("W = %d, L(N=4) = %.3f\n", w, loss)

	r := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	fmt.Printf("TRH-S* = %.0f, TRH-D* = %.0f\n", r.TRHStar, r.TRHDoubleSided())
	// Output:
	// W = 79, L(N=4) = 0.118
	// TRH-S* = 3808, TRH-D* = 1904
}

// ExampleSystemTTFYears reproduces one Table IX cell: the expected system
// time-to-fail when every bank of a TRH-D=2000 device is attacked.
func ExampleSystemTTFYears() {
	p := dram.DDR5()
	r := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	years := analytic.SystemTTFYears(r, 2*2000, p.TFAWLimit)
	fmt.Printf("TTF at TRH-D=2000: ~%.0f years\n", years)
	// Output:
	// TTF at TRH-D=2000: ~3886 years
}

// ExampleLossAtPosition shows Eq. 7's endpoints (Fig 8).
func ExampleLossAtPosition() {
	fmt.Printf("L_1 = %.2f, L_79 = %.2f\n",
		analytic.LossAtPosition(79, 1), analytic.LossAtPosition(79, 79))
	// Output:
	// L_1 = 0.63, L_79 = 0.00
}
