package analytic

import (
	"fmt"
	"math"
	"time"
)

// SecondsPerYear converts calendar years to seconds for all time-to-failure
// math. Target TTFs are expressed in years as float64 because the paper's
// regimes (10^4..10^6 years and beyond) overflow time.Duration.
const SecondsPerYear = 365.25 * 24 * 3600

// DefaultTargetTTFYears is the paper's per-bank security target: one failure
// per 10,000 years, chosen so the bank-FIT rate matches naturally occurring
// DRAM errors (Section III-C).
const DefaultTargetTTFYears = 10_000.0

// TIF returns the Tracker Insertion Failure probability of an attack round
// of trh activations with insertion probability p (Eq. 2):
//
//	TIF = (1 - p)^TRH
func TIF(p float64, trh int) float64 {
	return math.Pow(1-p, float64(trh))
}

// lnRoundOverTTF returns ln(roundTime / targetTTF), the "-38.93" constant of
// Eq. 4 generalized to any round time and target (for the paper's defaults,
// tREFI = 3.9us and TTF = 10,000 years, it evaluates to -38.93).
func lnRoundOverTTF(roundTime time.Duration, ttfYears float64) float64 {
	return math.Log(roundTime.Seconds() / (ttfYears * SecondsPerYear))
}

// trhBase evaluates ln(round/TTF) / ln(1 - pHat) with its two degenerate
// limits pinned: pHat = 1 (certain mitigation, threshold 0) falls out of the
// formula, but pHat = 0 must be handled explicitly — ln(1-0) is +0 and the
// raw division returns -Inf, a sign artifact, where the limit pHat -> 0+ is
// +Inf (the tracker never mitigates, so no finite threshold is secure).
func trhBase(pHat float64, roundTime time.Duration, ttfYears float64) float64 {
	if pHat <= 0 {
		return math.Inf(1)
	}
	return lnRoundOverTTF(roundTime, ttfYears) / math.Log(1-pHat)
}

// TRHStarTIF returns the critical Rowhammer threshold of an idealized
// tracker limited only by insertion failures (Eq. 3/4):
//
//	TRH*_TIF = ln(roundTime/TTF) / ln(1-p)
//
// For p = 1/79 and the default target, this is the paper's 3.06K.
func TRHStarTIF(p float64, roundTime time.Duration, ttfYears float64) float64 {
	return trhBase(p, roundTime, ttfYears)
}

// TRHStarTIFTRF returns the critical threshold of a tracker with insertion
// and retention failures but no tardiness (Eq. 5/6): the insertion
// probability is discounted by the loss probability, p̂ = p(1-L).
func TRHStarTIFTRF(p, loss float64, roundTime time.Duration, ttfYears float64) float64 {
	return trhBase(p*(1-loss), roundTime, ttfYears)
}

// Result is the full analytic characterization of one tracker configuration:
// the ingredients of Eq. 8 plus the resulting thresholds.
type Result struct {
	// Name identifies the scheme ("PrIDE", "PARA-DRFM", ...).
	Name string
	// Entries is the tracker size N.
	Entries int
	// Window is W, demand activations per mitigation opportunity.
	Window int
	// P is the insertion probability.
	P float64
	// Loss is the worst-case loss probability L (Appendix A).
	Loss float64
	// PHat is the effective mitigation probability p(1-L).
	PHat float64
	// Tardiness is the maximum activations between insertion and
	// mitigation, N*W (Section IV-D).
	Tardiness int
	// RoundTime is the duration of one mitigation period (Eq. 1's time
	// per attack round).
	RoundTime time.Duration
	// TRHStar is the single-sided critical threshold (Eq. 8).
	TRHStar float64
	// TRHStarNoTardiness excludes the tardiness term (Fig. 9's second
	// series).
	TRHStarNoTardiness float64
}

// TRHDoubleSided returns the double-sided critical threshold: half the
// single-sided one, because the shared victim gives the tracker twice the
// chances of mitigation (Section VI).
func (r Result) TRHDoubleSided() float64 { return r.TRHStar / 2 }

// TRHVictimSharing returns the per-aggressor critical threshold for a
// victim-sharing attack with the given number of aggressors within the
// blast radius (2 for BR=1 double-sided, 4 for BR=2; Section VI).
func (r Result) TRHVictimSharing(aggressors int) float64 {
	if aggressors < 1 {
		panic(fmt.Sprintf("analytic: aggressors must be >= 1, got %d", aggressors))
	}
	return r.TRHStar / float64(aggressors)
}

// Analyze computes the full Eq. 8 characterization of an n-entry FIFO
// tracker with window w and insertion probability p, for a mitigation round
// time and target TTF in years:
//
//	TRH* = ln(round/TTF)/ln(1 - p(1-L)) + N*W
func Analyze(name string, n, w int, p float64, roundTime time.Duration, ttfYears float64) Result {
	loss := LossProbability(n, w, p)
	pHat := p * (1 - loss)
	base := trhBase(pHat, roundTime, ttfYears)
	tard := n * w
	return Result{
		Name:               name,
		Entries:            n,
		Window:             w,
		P:                  p,
		Loss:               loss,
		PHat:               pHat,
		Tardiness:          tard,
		RoundTime:          roundTime,
		TRHStar:            base + float64(tard),
		TRHStarNoTardiness: base,
	}
}
