package analytic

import (
	"math"

	"pride/internal/dram"
)

// SaroiuWolmanTRH returns the critical threshold computed with our
// reconstruction of the Saroiu-Wolman methodology for configuring
// row-sampling defenses (Appendix D / reference [33]).
//
// Their model analyzes a full tREFW window instead of a per-round model: an
// attacker can fit ACTsPerTREFW/TRH attack attempts into one refresh period,
// each attempt escapes sampling with probability (1-p̂)^TRH, and the MTTF is
// the expected number of refresh windows until some attempt escapes. The
// original uses a recurrence (their Eq. 1-3) without a closed form; we solve
// the equivalent fixed point
//
//	(1-p̂)^T * (ACTsPerTREFW / T) = tREFW / MTTF
//
// by a few Newton-free iterations (the left side is monotone in T), then add
// the tracker's tardiness, exactly as Appendix D does.
//
// As in the paper's Table XII, the resulting TRH* tracks our per-round model
// closely and sits slightly below it (our model is deliberately pessimistic).
func SaroiuWolmanTRH(pHat float64, tardiness int, p dram.Params, ttfYears float64) float64 {
	actsPerTREFW := float64(p.ACTsPerTREFW())
	logq := math.Log(1 - pHat)
	rhs := p.TREFW.Seconds() / (ttfYears * SecondsPerYear)
	// Solve T*logq + log(A/T) = log(rhs) iteratively; convergence is
	// immediate because log(A/T) varies slowly in T.
	t := math.Log(rhs) / logq // ignore the attempts term for the seed
	for i := 0; i < 50; i++ {
		next := (math.Log(rhs) - math.Log(actsPerTREFW/t)) / logq
		if math.Abs(next-t) < 1e-9 {
			t = next
			break
		}
		t = next
	}
	return t + float64(tardiness)
}

// SWRow is one row of Table XII: PrIDE's TRH* per the paper's model and per
// the Saroiu-Wolman reconstruction, as the buffer size varies.
type SWRow struct {
	Entries int // 0 means the idealized (no-loss, no-tardiness) tracker
	Loss    float64
	PHat    float64
	// Tardiness is N*W.
	Tardiness int
	// OurTRH is the paper's closed-form model (Eq. 8).
	OurTRH float64
	// SWTRH is the Saroiu-Wolman-style window model.
	SWTRH float64
}

// SaroiuWolmanTable reproduces Table XII for the given buffer sizes with
// p = 1/W (the table's configuration, without transitive protection).
func SaroiuWolmanTable(p dram.Params, sizes []int, ttfYears float64) []SWRow {
	w := p.ACTsPerTREFI()
	ins := 1 / float64(w)
	rows := make([]SWRow, 0, len(sizes)+1)

	// The idealized row: no loss, no tardiness.
	ideal := SWRow{Entries: 0, Loss: 0, PHat: ins, Tardiness: 0}
	ideal.OurTRH = TRHStarTIF(ins, p.TREFI, ttfYears)
	ideal.SWTRH = SaroiuWolmanTRH(ins, 0, p, ttfYears)
	rows = append(rows, ideal)

	for _, n := range sizes {
		loss := LossProbability(n, w, ins)
		pHat := ins * (1 - loss)
		tard := n * w
		r := SWRow{Entries: n, Loss: loss, PHat: pHat, Tardiness: tard}
		r.OurTRH = TRHStarTIFTRF(ins, loss, p.TREFI, ttfYears) + float64(tard)
		r.SWTRH = SaroiuWolmanTRH(pHat, tard, p, ttfYears)
		rows = append(rows, r)
	}
	return rows
}
