package analytic

import "fmt"

// SRAMRow is one row of Table XI: the per-bank SRAM cost of a tracking
// scheme at a given device threshold.
type SRAMRow struct {
	Name string
	// Bytes maps device TRH-D to per-bank SRAM bytes.
	Bytes map[int]float64
}

// trackerEntryCosts describes how a counter-based tracker's entry count
// scales: entries = ACTsPerTREFW / (TRH-D * divisor), entryBits wide.
// The counter-based trackers all need enough entries to track every row
// that could cross the mitigation threshold within a refresh window, so
// their storage is inversely proportional to the threshold (Section VIII,
// Table XI), while PrIDE's 4-entry FIFO is constant.
type trackerEntryCosts struct {
	name string
	// bytesAt4K anchors the published per-bank cost at device TRH-D=4000
	// (Table XI's first column); costs scale as 4000/TRH-D.
	bytesAt4K float64
}

// SRAMOverheadTable reproduces Table XI: per-bank SRAM of Graphene, TWiCe,
// CAT and PrIDE at the given device thresholds. The counter-based schemes'
// storage is anchored at the paper's published TRH-D=4K costs and scales
// inversely with the threshold (their entry counts are proportional to
// ACTsPerTREFW/TRH); PrIDE is a constant 10 bytes.
func SRAMOverheadTable(thresholds []int, prideBits int) []SRAMRow {
	anchored := []trackerEntryCosts{
		{name: "Graphene", bytesAt4K: 42.5 * 1024},
		{name: "TWiCe", bytesAt4K: 300 * 1024},
		{name: "CAT", bytesAt4K: 196 * 1024},
	}
	rows := make([]SRAMRow, 0, len(anchored)+1)
	for _, a := range anchored {
		r := SRAMRow{Name: a.name, Bytes: map[int]float64{}}
		for _, t := range thresholds {
			if t <= 0 {
				panic(fmt.Sprintf("analytic: threshold must be positive, got %d", t))
			}
			r.Bytes[t] = a.bytesAt4K * 4000 / float64(t)
		}
		rows = append(rows, r)
	}
	pride := SRAMRow{Name: "PrIDE", Bytes: map[int]float64{}}
	for _, t := range thresholds {
		pride.Bytes[t] = float64(prideBits) / 8
	}
	rows = append(rows, pride)
	return rows
}
