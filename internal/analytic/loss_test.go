package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

const w79 = 79

func TestLossAtPositionEndpoints(t *testing.T) {
	// Fig 8: position 1 has the highest loss (0.63); position W has zero.
	first := LossAtPosition(w79, 1)
	if math.Abs(first-0.63) > 0.005 {
		t.Fatalf("L_1 = %v, want ~0.63 (paper Fig 8)", first)
	}
	if last := LossAtPosition(w79, w79); last != 0 {
		t.Fatalf("L_W = %v, want exactly 0", last)
	}
}

func TestLossAtPositionMonotone(t *testing.T) {
	prev := math.Inf(1)
	for k := 1; k <= w79; k++ {
		l := LossAtPosition(w79, k)
		if l > prev {
			t.Fatalf("loss increased at position %d: %v > %v", k, l, prev)
		}
		prev = l
	}
}

func TestLossAtPositionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LossAtPosition(0, 1) },
		func() { LossAtPosition(79, 0) },
		func() { LossAtPosition(79, 80) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 16, 79, 160} {
		for _, p := range []float64{1.0 / 80, 0.1, 0.5} {
			pmf := binomialPMF(n, p)
			sum := 0.0
			mean := 0.0
			for k, v := range pmf {
				if v < 0 {
					t.Fatalf("negative pmf value at k=%d", k)
				}
				sum += v
				mean += float64(k) * v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("pmf(n=%d,p=%v) sums to %v", n, p, sum)
			}
			if math.Abs(mean-float64(n)*p) > 1e-9 {
				t.Fatalf("pmf mean = %v, want %v", mean, float64(n)*p)
			}
		}
	}
}

func TestSingleEntryDPMatchesClosedForm(t *testing.T) {
	// The DP with N=1 must reproduce Eq. 7 exactly.
	m := NewLossModel(1, w79, 1.0/w79)
	for k := 1; k <= w79; k++ {
		dp := m.LossFromStart(0, k)
		cf := LossAtPosition(w79, k)
		if math.Abs(dp-cf) > 1e-12 {
			t.Fatalf("k=%d: DP %v != closed form %v", k, dp, cf)
		}
	}
}

func TestTwoEntryWorkedExample(t *testing.T) {
	// Appendix A's worked example for the 2-entry tracker:
	// S0 loss ~= 26%, S1 loss ~= 35.6%, overall ~= 30%.
	m := NewLossModel(2, w79, 1.0/w79)
	lx := m.WorstCaseLossByState()
	if math.Abs(lx[0]-0.26) > 0.01 {
		t.Fatalf("S0 loss = %v, want ~0.26", lx[0])
	}
	if math.Abs(lx[1]-0.356) > 0.012 {
		t.Fatalf("S1 loss = %v, want ~0.356", lx[1])
	}
	total := m.Loss()
	if math.Abs(total-0.30) > 0.012 {
		t.Fatalf("overall 2-entry loss = %v, want ~0.30", total)
	}
}

func TestTableIIILossProbabilities(t *testing.T) {
	// Table III: loss probability vs buffer size with p = 1/79.
	want := map[int]float64{
		1:  0.630,
		2:  0.305,
		4:  0.119,
		8:  0.060,
		16: 0.030,
	}
	for n, wantL := range want {
		got := LossProbability(n, w79, 1.0/w79)
		if math.Abs(got-wantL) > 0.012 {
			t.Errorf("Loss(N=%d) = %.4f, paper Table III says %.3f", n, got, wantL)
		}
	}
}

func TestLossDecreasesWithBufferSize(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		l := LossProbability(n, w79, 1.0/w79)
		if l >= prev {
			t.Fatalf("loss did not decrease at N=%d: %v >= %v", n, l, prev)
		}
		prev = l
	}
}

func TestStationaryOccupancySumsToOne(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		pi := NewLossModel(n, w79, 1.0/w79).StationaryOccupancy()
		sum := 0.0
		for _, v := range pi {
			if v < -1e-12 {
				t.Fatalf("negative stationary probability at N=%d: %v", n, pi)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("stationary distribution for N=%d sums to %v", n, sum)
		}
	}
}

func TestStationaryTwoEntryMatchesAppendix(t *testing.T) {
	// Appendix A: overall loss = P(S0)*0.26 + P(S1)*0.356 ~= 30%; the
	// implied stationary split is roughly 59/41.
	pi := NewLossModel(2, w79, 1.0/w79).StationaryOccupancy()
	if math.Abs(pi[0]-0.59) > 0.03 || math.Abs(pi[1]-0.41) > 0.03 {
		t.Fatalf("stationary = %v, want ~[0.59 0.41]", pi)
	}
}

func TestWorstCasePositionIsFirst(t *testing.T) {
	// The paper's pessimistic-position assumption: inserting at position 1
	// maximizes loss, for every buffer size and start state.
	for _, n := range []int{1, 2, 4, 8} {
		m := NewLossModel(n, w79, 1.0/w79)
		for x := 0; x < n; x++ {
			l1 := m.LossFromStart(x, 1)
			for k := 2; k <= w79; k += 7 {
				if lk := m.LossFromStart(x, k); lk > l1+1e-12 {
					t.Fatalf("N=%d x=%d: position %d loss %v exceeds position-1 loss %v", n, x, k, lk, l1)
				}
			}
		}
	}
}

func TestLossIncreasesWithStartOccupancy(t *testing.T) {
	// Inserting into a fuller buffer is riskier (Appendix A: S1 > S0).
	for _, n := range []int{2, 4, 8} {
		m := NewLossModel(n, w79, 1.0/w79)
		lx := m.WorstCaseLossByState()
		for x := 1; x < n; x++ {
			if lx[x] <= lx[x-1] {
				t.Fatalf("N=%d: L_%d=%v not greater than L_%d=%v", n, x, lx[x], x-1, lx[x-1])
			}
		}
	}
}

func TestRandomRandomWorseThanFIFO(t *testing.T) {
	// Section VIII ablation: the Random-eviction + Random-mitigation
	// design (PROTEAS's alternative) has a higher loss probability than
	// PrIDE's FIFO/FIFO — on top of its unbounded tardiness.
	for _, n := range []int{2, 4, 8} {
		fifo := LossProbability(n, w79, 1.0/w79)
		rr := RandomRandomLoss(n, w79, 1.0/w79)
		if rr <= fifo {
			t.Fatalf("N=%d: random/random loss %v not worse than FIFO %v", n, rr, fifo)
		}
	}
	// Monte-Carlo cross-checked values: N=4 random/random is ~0.11-0.13.
	if rr := RandomRandomLoss(4, w79, 1.0/w79); rr < 0.09 || rr > 0.16 {
		t.Fatalf("random/random N=4 loss = %v, MC cross-check says ~0.11-0.13", rr)
	}
}

func TestRandomEvictionWorseThanFIFOAtDefaultSize(t *testing.T) {
	// Section VIII: "Random eviction-policy has higher loss-probability
	// than FIFO". Our exact model confirms this for the paper's default
	// size (N=4) and larger: at high occupancy FIFO eviction protects the
	// target by always killing the entry ahead of it, while random
	// eviction can hit the target directly.
	for _, n := range []int{4, 8} {
		fifo := LossProbability(n, w79, 1.0/w79)
		re := RandomEvictionLoss(n, w79, 1.0/w79)
		if re <= fifo {
			t.Fatalf("N=%d: random-eviction loss %v not worse than FIFO %v", n, re, fifo)
		}
	}
	// Interesting nuance the exact model exposes: at N=2 the ordering
	// reverses slightly (the target is usually the oldest entry there,
	// which FIFO eviction always kills first). Pin it so a regression in
	// either DP branch is caught.
	fifo2 := LossProbability(2, w79, 1.0/w79)
	re2 := RandomEvictionLoss(2, w79, 1.0/w79)
	if re2 >= fifo2 {
		t.Fatalf("N=2: expected random eviction (%v) slightly below FIFO (%v); DP regression?", re2, fifo2)
	}
}

func TestRandomEvictionSingleEntryEquivalent(t *testing.T) {
	// With one entry, random and FIFO eviction are the same policy.
	fifo := LossProbability(1, w79, 1.0/w79)
	random := RandomEvictionLoss(1, w79, 1.0/w79)
	if math.Abs(fifo-random) > 1e-12 {
		t.Fatalf("single-entry policies differ: %v vs %v", fifo, random)
	}
}

// Property: loss probabilities are valid probabilities for arbitrary
// (small) configurations.
func TestLossIsProbabilityProperty(t *testing.T) {
	check := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%8) + 1
		w := int(wRaw%100) + 2
		l := LossProbability(n, w, 1/float64(w))
		return l >= 0 && l <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: loss decreases as insertion probability decreases (fewer
// competing insertions dislodge the target).
func TestLossMonotoneInInsertionProb(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{0.001, 0.005, 1.0 / 79, 0.05, 0.2} {
		l := LossProbability(4, w79, p)
		if l < prev {
			t.Fatalf("loss not monotone in p at %v: %v < %v", p, l, prev)
		}
		prev = l
	}
}

func TestNewLossModelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLossModel(0, 79, 0.1) },
		func() { NewLossModel(4, 0, 0.1) },
		func() { NewLossModel(4, 79, 0) },
		func() { NewLossModel(4, 79, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkLossProbabilityN4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LossProbability(4, w79, 1.0/w79)
	}
}

func BenchmarkLossProbabilityN16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LossProbability(16, w79, 1.0/w79)
	}
}
