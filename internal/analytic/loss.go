// Package analytic implements the paper's security models: the closed-form
// failure equations (Eq. 2-8), the exact loss-probability model for
// multi-entry FIFO trackers (Appendix A), the time-to-failure computations
// (Section III, VII-B, VII-C), the Saroiu-Wolman cross-check (Appendix D),
// and the storage comparisons (Table XI).
//
// Everything here is deterministic closed-form or dynamic-programming math;
// the stochastic counterparts live in internal/montecarlo and are
// cross-validated against this package in tests.
package analytic

import (
	"fmt"
	"math"
)

// LossAtPosition returns the loss probability of a single-entry tracker when
// the attacked row is inserted at position k (1-based) of a w-activation
// mitigation window with insertion probability 1/w (Eq. 7):
//
//	L_k = 1 - (1 - 1/w)^(w-k)
//
// Position 1 is the worst case (most remaining activations to dislodge the
// entry); position w has zero loss probability.
func LossAtPosition(w, k int) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("analytic: window must be positive, got %d", w))
	}
	if k < 1 || k > w {
		panic(fmt.Sprintf("analytic: position %d out of [1,%d]", k, w))
	}
	p := 1.0 / float64(w)
	return 1 - math.Pow(1-p, float64(w-k))
}

// binomialPMF returns P(B=k) for B ~ Binomial(n, p), computed iteratively in
// log space to stay stable for the n<=~200 windows used here.
func binomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	if p >= 1 {
		// Certain insertion: all mass at k=n. The recurrence below would
		// divide by q=0 (0 * Inf = NaN), so handle the edge directly.
		pmf[n] = 1
		return pmf
	}
	// Start from P(0) = (1-p)^n and use the recurrence
	// P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
	q := 1 - p
	cur := math.Pow(q, float64(n))
	ratio := p / q
	for k := 0; k <= n; k++ {
		pmf[k] = cur
		if k < n {
			cur *= float64(n-k) / float64(k+1) * ratio
		}
	}
	return pmf
}

// Eviction selects the loss model's eviction policy.
type Eviction int

const (
	// EvictFIFO is PrIDE's eviction policy.
	EvictFIFO Eviction = iota
	// EvictRandom is the PROTEAS-style ablation (Section VIII): a uniform
	// random entry is evicted on overflow. Mitigation remains FIFO.
	EvictRandom
)

// LossModel computes loss probabilities for an n-entry FIFO tracker with
// probabilistic insertion, exactly, by dynamic programming over the state
// (entries ahead of the target, entries behind it, activations left in the
// current window). It implements Appendix A, generalized from the 2-entry
// worked example to any n.
type LossModel struct {
	// N is the tracker size (entries).
	N int
	// W is the number of activations per mitigation window.
	W int
	// P is the insertion probability.
	P float64
	// Policy selects FIFO (PrIDE) or Random (ablation) eviction.
	Policy Eviction

	// loss[a][b][r] = P(target is eventually evicted | a entries ahead,
	// b behind, r activations remain in the current window). Lazily built.
	loss [][][]float64
}

// NewLossModel validates and returns a loss model.
func NewLossModel(n, w int, p float64) *LossModel {
	m := &LossModel{N: n, W: w, P: p}
	if err := m.validate(); err != nil {
		panic(err)
	}
	return m
}

func (m *LossModel) validate() error {
	switch {
	case m.N <= 0:
		return fmt.Errorf("analytic: tracker size must be positive, got %d", m.N)
	case m.W <= 0:
		return fmt.Errorf("analytic: window must be positive, got %d", m.W)
	case m.P <= 0 || m.P > 1:
		return fmt.Errorf("analytic: insertion probability must be in (0,1], got %v", m.P)
	}
	return nil
}

// build fills the DP table. States: a in [0,N-1] (entries ahead of the
// target), b in [0,N-1] (entries behind), r in [0,W].
//
// Transitions per activation:
//   - no insertion (1-p): r decreases.
//   - insertion (p) into a non-full buffer: b increases.
//   - insertion (p) into a full buffer: the eviction policy removes one
//     entry. FIFO removes the oldest: the target itself if a==0 (loss),
//     else one of the entries ahead. Random removes uniformly.
//
// At r==0 a mitigation pops the oldest entry: the target survives
// (mitigated) if a==0, else a decreases and a fresh W-activation window
// begins. Because a never increases, the recursion across windows
// terminates after at most N window boundaries.
func (m *LossModel) build() {
	if m.loss != nil {
		return
	}
	n, w, p := m.N, m.W, m.P
	q := 1 - p
	m.loss = make([][][]float64, n)
	for a := 0; a < n; a++ {
		m.loss[a] = make([][]float64, n)
		for b := 0; b < n; b++ {
			m.loss[a][b] = make([]float64, w+1)
		}
	}
	at := func(a, b int, r int) float64 {
		if b > n-1 {
			// Occupancy is capped at N, so b is capped at N-1-a via
			// the full-buffer branch; clamp defensively for the
			// random policy's bookkeeping.
			b = n - 1
		}
		return m.loss[a][b][r]
	}
	for a := 0; a < n; a++ {
		for r := 0; r <= w; r++ {
			for b := 0; b < n; b++ {
				occ := a + 1 + b
				if occ > n {
					continue // unreachable state
				}
				var v float64
				if r == 0 {
					// Window boundary: FIFO mitigation pops the oldest.
					if a == 0 {
						v = 0 // target mitigated: survives
					} else {
						v = at(a-1, b, w)
					}
				} else {
					var insert float64
					if occ < n {
						insert = at(a, b+1, r-1)
					} else {
						switch m.Policy {
						case EvictFIFO:
							if a == 0 {
								insert = 1 // target evicted: loss
							} else {
								insert = at(a-1, b+1, r-1)
							}
						case EvictRandom:
							fn := float64(n)
							insert = 1 / fn // target evicted
							if a > 0 {
								insert += float64(a) / fn * at(a-1, b+1, r-1)
							}
							if b > 0 {
								// An entry behind the target is evicted and
								// replaced by the incoming one: b unchanged.
								insert += float64(b) / fn * at(a, b, r-1)
							}
						}
					}
					v = q*at(a, b, r-1) + p*insert
				}
				m.loss[a][b][r] = v
			}
		}
	}
}

// LossFromStart returns the loss probability of a target inserted at
// position k (1-based) of a window that began with startOcc valid entries.
// This is the paper's L_x evaluated at an arbitrary position.
func (m *LossModel) LossFromStart(startOcc, k int) float64 {
	if startOcc < 0 || startOcc > m.N-1 {
		panic(fmt.Sprintf("analytic: start occupancy %d out of [0,%d]", startOcc, m.N-1))
	}
	if k < 1 || k > m.W {
		panic(fmt.Sprintf("analytic: position %d out of [1,%d]", k, m.W))
	}
	m.build()
	return m.loss[startOcc][0][m.W-k]
}

// WorstCaseLossByState returns L_x for x = 0..N-1: the loss probability when
// the target is inserted at the worst-case position (k=1) of a window
// starting with x valid entries.
func (m *LossModel) WorstCaseLossByState() []float64 {
	out := make([]float64, m.N)
	for x := 0; x < m.N; x++ {
		out[x] = m.LossFromStart(x, 1)
	}
	return out
}

// StationaryOccupancy returns the steady-state distribution P_x of the
// start-of-window occupancy (x = 0..N-1), from the N-state Markov chain of
// Appendix A: during a window Binomial(W, p) insertions arrive (occupancy
// saturating at N), and the end-of-window mitigation removes one entry.
func (m *LossModel) StationaryOccupancy() []float64 {
	n := m.N
	pmf := binomialPMF(m.W, m.P)
	// trans[x][y] = P(next start occupancy = y | current = x).
	trans := make([][]float64, n)
	for x := 0; x < n; x++ {
		trans[x] = make([]float64, n)
		for k, pk := range pmf {
			o := x + k
			if o > n {
				o = n
			}
			y := o - 1
			if y < 0 {
				y = 0
			}
			trans[x][y] += pk
		}
	}
	// Power iteration; the chain is tiny (N<=~32) and ergodic.
	pi := make([]float64, n)
	pi[0] = 1
	next := make([]float64, n)
	for iter := 0; iter < 10000; iter++ {
		for y := range next {
			next[y] = 0
		}
		for x := 0; x < n; x++ {
			if pi[x] == 0 {
				continue
			}
			for y := 0; y < n; y++ {
				next[y] += pi[x] * trans[x][y]
			}
		}
		delta := 0.0
		for y := 0; y < n; y++ {
			delta += math.Abs(next[y] - pi[y])
			pi[y] = next[y]
		}
		if delta < 1e-15 {
			break
		}
	}
	return pi
}

// Loss returns the overall worst-case loss probability L of the tracker:
// sum over start states x of P_x * L_x (Appendix A). This is the L used in
// Eq. 6 and Eq. 8; it is pessimistic by construction (worst position, and
// self-evictions counted as losses).
func (m *LossModel) Loss() float64 {
	lx := m.WorstCaseLossByState()
	px := m.StationaryOccupancy()
	l := 0.0
	for x := range lx {
		l += px[x] * lx[x]
	}
	return l
}

// LossProbability is the convenience entry point used by the table
// generators: the overall worst-case loss probability of an n-entry FIFO
// tracker with window w and insertion probability p.
func LossProbability(n, w int, p float64) float64 {
	return NewLossModel(n, w, p).Loss()
}

// RandomEvictionLoss returns the overall loss probability of the ablation
// variant that evicts a uniformly random entry on overflow (Section VIII:
// "Random eviction-policy has higher loss-probability than FIFO").
func RandomEvictionLoss(n, w int, p float64) float64 {
	m := NewLossModel(n, w, p)
	m.Policy = EvictRandom
	return m.Loss()
}
