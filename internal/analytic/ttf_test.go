package analytic

import (
	"math"
	"testing"

	"pride/internal/dram"
)

func TestRoundFailureProbBounds(t *testing.T) {
	r := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	// Within tardiness, failure is certain.
	if got := RoundFailureProb(r, float64(r.Tardiness)); got != 1 {
		t.Fatalf("P_RF at tardiness = %v, want 1", got)
	}
	if got := RoundFailureProb(r, 0); got != 1 {
		t.Fatalf("P_RF at 0 chances = %v, want 1", got)
	}
	// Monotone decreasing in chances.
	prev := 1.0
	for c := float64(r.Tardiness); c < 10000; c += 500 {
		p := RoundFailureProb(r, c)
		if p > prev {
			t.Fatalf("P_RF increased at %v chances", c)
		}
		if p < 0 || p > 1 {
			t.Fatalf("P_RF out of range: %v", p)
		}
		prev = p
	}
}

func TestTRHStarRecoversTargetTTF(t *testing.T) {
	// Consistency: evaluating the bank TTF exactly at TRH* must give back
	// (approximately) the 10,000-year target.
	r := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	years := BankTTFYears(r, r.TRHStar)
	if math.Abs(math.Log10(years)-4) > 0.01 {
		t.Fatalf("TTF at TRH* = %v years, want 1e4", years)
	}
}

func TestTableVIII(t *testing.T) {
	// Table VIII: Target-TTF sensitivity for PrIDE.
	rows := TTFSensitivity(ddr5(), []float64{100, 1_000, 10_000, 100_000, 1_000_000})
	want := []struct{ s, d, sys float64 }{
		{3420, 1710, 4.5},
		{3630, 1810, 45},
		{3830, 1920, 454},
		{4040, 2020, 4500},
		{4250, 2120, 45000},
	}
	for i, w := range want {
		if math.Abs(rows[i].TRHSingle-w.s)/w.s > 0.02 {
			t.Errorf("row %d: TRH-S* = %.0f, paper says %.0f", i, rows[i].TRHSingle, w.s)
		}
		if math.Abs(rows[i].TRHDouble-w.d)/w.d > 0.02 {
			t.Errorf("row %d: TRH-D* = %.0f, paper says %.0f", i, rows[i].TRHDouble, w.d)
		}
		if math.Abs(rows[i].MTTFSystemYears-w.sys)/w.sys > 0.02 {
			t.Errorf("row %d: system MTTF = %.1f years, paper says %.1f", i, rows[i].MTTFSystemYears, w.sys)
		}
	}
}

func TestTableIXKeyRows(t *testing.T) {
	// Table IX spot checks (system TTF in years; tolerances are loose —
	// the paper rounds heavily and the shape is what matters).
	rows := DeviceTTFTable(ddr5(), []int{4800, 2000, 1800, 1000, 400, 200},
		[]Scheme{SchemePrIDE, SchemePrIDERFM40, SchemePrIDERFM16})
	byTRH := map[int]DeviceTTFRow{}
	for _, r := range rows {
		byTRH[r.DeviceTRHD] = r
	}
	const year = 1.0
	const day = year / 365.25
	const sec = year / (365.25 * 24 * 3600)

	// TRH-D 4800 (today): all three schemes exceed 1 million years.
	for _, s := range []string{"PrIDE", "PrIDE+RFM40", "PrIDE+RFM16"} {
		if got := byTRH[4800].TTFYears[s]; got < 1e6 {
			t.Errorf("TRH-D=4800 %s TTF = %v years, paper says > 1 Mln", s, got)
		}
	}
	// TRH-D 2000: PrIDE ~2936 years.
	if got := byTRH[2000].TTFYears["PrIDE"]; math.Abs(math.Log10(got)-math.Log10(2936)) > 0.15 {
		t.Errorf("TRH-D=2000 PrIDE TTF = %v years, paper says 2936", got)
	}
	// TRH-D 1800: PrIDE ~36 years.
	if got := byTRH[1800].TTFYears["PrIDE"]; math.Abs(math.Log10(got)-math.Log10(36)) > 0.2 {
		t.Errorf("TRH-D=1800 PrIDE TTF = %v years, paper says 36", got)
	}
	// TRH-D 1000: PrIDE ~23 seconds; RFM40 ~674 years; RFM16 > 1 Mln.
	if got := byTRH[1000].TTFYears["PrIDE"]; math.Abs(math.Log10(got)-math.Log10(23*sec)) > 0.3 {
		t.Errorf("TRH-D=1000 PrIDE TTF = %v years, paper says ~23 sec (%v years)", got, 23*sec)
	}
	if got := byTRH[1000].TTFYears["PrIDE+RFM40"]; math.Abs(math.Log10(got)-math.Log10(674)) > 0.5 {
		t.Errorf("TRH-D=1000 RFM40 TTF = %v years, paper says 674", got)
	}
	if got := byTRH[1000].TTFYears["PrIDE+RFM16"]; got < 1e6 {
		t.Errorf("TRH-D=1000 RFM16 TTF = %v years, paper says > 1 Mln", got)
	}
	// TRH-D 400: PrIDE and RFM40 fail immediately; RFM16 ~140 years.
	if got := byTRH[400].TTFYears["PrIDE"]; got > sec {
		t.Errorf("TRH-D=400 PrIDE TTF = %v years, paper says < 1 sec", got)
	}
	if got := byTRH[400].TTFYears["PrIDE+RFM40"]; got > sec {
		t.Errorf("TRH-D=400 RFM40 TTF = %v years, paper says < 1 sec", got)
	}
	if got := byTRH[400].TTFYears["PrIDE+RFM16"]; math.Abs(math.Log10(got)-math.Log10(140)) > 0.6 {
		t.Errorf("TRH-D=400 RFM16 TTF = %v years, paper says 140", got)
	}
	// TRH-D 200: even RFM16 fails within seconds.
	if got := byTRH[200].TTFYears["PrIDE+RFM16"]; got > day {
		t.Errorf("TRH-D=200 RFM16 TTF = %v years, paper says ~3 sec", got)
	}
	_ = day
}

func TestDeviceTTFMonotone(t *testing.T) {
	// Higher device thresholds always mean longer TTFs, for every scheme.
	thresholds := []int{400, 800, 1200, 1600, 2000, 2400, 4800}
	rows := DeviceTTFTable(ddr5(), thresholds, AllSchemes())
	for _, s := range AllSchemes() {
		prev := -1.0
		for _, r := range rows {
			got := r.TTFYears[s.String()]
			if got < prev {
				t.Fatalf("%v: TTF decreased at TRH-D=%d", s, r.DeviceTRHD)
			}
			prev = got
		}
	}
}

func TestSaroiuWolmanTable(t *testing.T) {
	rows := SaroiuWolmanTable(ddr5(), []int{1, 2, 4, 8, 16}, DefaultTargetTTFYears)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (ideal + 5 sizes)", len(rows))
	}
	// Ideal row: both models agree at ~3056 (Table XII row 1). Our SW
	// reconstruction sits a bit below the closed form, as in the paper.
	if math.Abs(rows[0].OurTRH-3056) > 10 {
		t.Errorf("ideal OurTRH = %.0f, want 3056", rows[0].OurTRH)
	}
	if math.Abs(rows[0].SWTRH-rows[0].OurTRH)/rows[0].OurTRH > 0.12 {
		t.Errorf("ideal SW = %.0f diverges from our %.0f by more than 12%%", rows[0].SWTRH, rows[0].OurTRH)
	}
	for _, r := range rows {
		// Table XII's relationship: our model is the (slightly) pessimistic
		// one — SW never exceeds it.
		if r.SWTRH > r.OurTRH {
			t.Errorf("N=%d: SW TRH %.0f exceeds our model's %.0f", r.Entries, r.SWTRH, r.OurTRH)
		}
		// And the two stay within ~12% of each other.
		if math.Abs(r.SWTRH-r.OurTRH)/r.OurTRH > 0.12 {
			t.Errorf("N=%d: SW %.0f vs ours %.0f diverge too much", r.Entries, r.SWTRH, r.OurTRH)
		}
	}
	// Loss column must match Table XII (same values as Table III).
	if math.Abs(rows[1].Loss-0.63) > 0.01 {
		t.Errorf("N=1 loss = %v, want 0.63", rows[1].Loss)
	}
	if math.Abs(rows[3].Loss-0.12) > 0.01 {
		t.Errorf("N=4 loss = %v, want 0.12", rows[3].Loss)
	}
}

func TestSRAMOverheadTable(t *testing.T) {
	rows := SRAMOverheadTable([]int{4000, 400}, 84)
	byName := map[string]SRAMRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Table XI anchors at TRH-D=4K.
	if got := byName["Graphene"].Bytes[4000]; math.Abs(got-42.5*1024) > 1 {
		t.Errorf("Graphene @4K = %v bytes, want 42.5KB", got)
	}
	// 10x lower threshold -> 10x storage for counter-based schemes.
	if got := byName["Graphene"].Bytes[400]; math.Abs(got-425*1024) > 10 {
		t.Errorf("Graphene @400 = %v bytes, want 425KB", got)
	}
	if got := byName["TWiCe"].Bytes[400]; math.Abs(got-10*300*1024) > 1024 {
		t.Errorf("TWiCe @400 = %v bytes, want ~3MB (10x the 300KB anchor)", got)
	}
	if got := byName["CAT"].Bytes[400]; math.Abs(got-10*196*1024) > 2048 {
		t.Errorf("CAT @400 = %v bytes, want ~1.96MB (10x the 196KB anchor)", got)
	}
	// PrIDE is constant ~10 bytes at both thresholds.
	for _, trh := range []int{4000, 400} {
		if got := byName["PrIDE"].Bytes[trh]; got < 10 || got > 11 {
			t.Errorf("PrIDE @%d = %v bytes, want ~10", trh, got)
		}
	}
}

func TestSRAMOverheadPanicsOnBadThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for threshold 0")
		}
	}()
	SRAMOverheadTable([]int{0}, 84)
}

func TestDDR4SchemeEvaluation(t *testing.T) {
	// The models must work for DDR4 parameters too (used by PARFM).
	r := Analyze("PrIDE-DDR4", 4, dram.DDR4().ACTsPerTREFI(),
		1/float64(dram.DDR4().ACTsPerTREFI()+1), dram.DDR4().TREFI, DefaultTargetTTFYears)
	if r.TRHStar <= 0 || math.IsNaN(r.TRHStar) {
		t.Fatalf("DDR4 TRH* = %v", r.TRHStar)
	}
	// DDR4's longer window (166) means a higher TRH* than DDR5's.
	r5 := EvaluateScheme(SchemePrIDE, ddr5(), DefaultTargetTTFYears)
	if r.TRHStar <= r5.TRHStar {
		t.Fatalf("DDR4 TRH* %v should exceed DDR5's %v", r.TRHStar, r5.TRHStar)
	}
}
