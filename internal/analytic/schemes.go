package analytic

import (
	"time"

	"pride/internal/dram"
	"pride/internal/tracker"
)

// Scheme identifies a mitigation scheme whose analytic security model this
// package can evaluate.
type Scheme int

const (
	// SchemePrIDE is the paper's default: 4-entry FIFO, one mitigation
	// per tREFI, transitive protection (p = 1/(W+1) = 1/80).
	SchemePrIDE Scheme = iota
	// SchemePrIDEHalfRate is PrIDE with one mitigation per two tREFI
	// (Table V's 0.5x row).
	SchemePrIDEHalfRate
	// SchemePrIDERFM40 is the RFM co-design with RFM threshold 40
	// (~2x mitigation rate, p = 1/41).
	SchemePrIDERFM40
	// SchemePrIDERFM16 is the RFM co-design with RFM threshold 16
	// (~5x mitigation rate, p = 1/17).
	SchemePrIDERFM16
	// SchemePARADRFM is PARA adapted to DDR5's DRFM command, limited to
	// one mitigation per two tREFI (p = 1/160). Analytically it is a
	// single-entry tracker: a selection that is not yet issued is
	// overwritten by the next selection (Section IV-G).
	SchemePARADRFM
	// SchemePARADRFMPlus is the enhanced variant with one DRFM per tREFI
	// (p = 1/80).
	SchemePARADRFMPlus
	// SchemePARFM is PARA+RFM per Mithril: buffer all addresses since the
	// last mitigation, pick one uniformly at random, clear the buffer. We
	// model it with Mithril's DDR4 window of 166 activations.
	SchemePARFM
	// SchemeMINT is the minimalist single-slot interval tracker
	// (arXiv:2407.16038): exactly one activation per mitigation window is
	// selected, uniformly, ahead of time. The worst-case attacker spreads
	// each aggressor's activations one per interval, recovering Eq. 4 with
	// p = 1/W exactly; the slot is always mitigated before displacement, so
	// L = 0, and tardiness is a single window.
	SchemeMINT
	// SchemeMOAT is the per-row-counter PRAC tracker (arXiv:2407.09995):
	// the ALERT threshold ATO is a deterministic cap on unmitigated
	// activations, so TRH* = ATO with no probabilistic terms at all.
	SchemeMOAT
)

// String returns the scheme name as used in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case SchemePrIDE:
		return "PrIDE"
	case SchemePrIDEHalfRate:
		return "PrIDE-0.5x"
	case SchemePrIDERFM40:
		return "PrIDE+RFM40"
	case SchemePrIDERFM16:
		return "PrIDE+RFM16"
	case SchemePARADRFM:
		return "PARA-DRFM"
	case SchemePARADRFMPlus:
		return "PARA-DRFM+"
	case SchemePARFM:
		return "PARFM"
	case SchemeMINT:
		return "MINT"
	case SchemeMOAT:
		return "MOAT"
	default:
		return "unknown"
	}
}

// AllSchemes lists every scheme in table order.
func AllSchemes() []Scheme {
	return []Scheme{
		SchemePrIDE, SchemePrIDEHalfRate, SchemePrIDERFM40, SchemePrIDERFM16,
		SchemePARADRFM, SchemePARADRFMPlus, SchemePARFM, SchemeMINT, SchemeMOAT,
	}
}

// EvaluateScheme returns the analytic Result for a scheme under the given
// DRAM parameters and target time-to-fail.
//
// Modelling notes (also recorded in DESIGN.md):
//   - PrIDE variants use N=4 and p = 1/(W+1) (transitive protection,
//     Section IV-E/F).
//   - PARA-DRFM(+) is a 1-entry tracker with W = 160 (80): the pending
//     selection register is overwritten by a newer selection, which is
//     exactly the single-entry FIFO loss model; this reproduces the paper's
//     17K and 8.4K.
//   - PARFM keeps every address since the last mitigation, so it has no
//     retention loss (L=0) and its per-activation mitigation probability is
//     1/W with W=166 (DDR4, per Mithril); its tardiness is one window. The
//     paper reports 7.1K citing Mithril; this model gives ~6.6K — same
//     ranking, see EXPERIMENTS.md.
func EvaluateScheme(s Scheme, p dram.Params, ttfYears float64) Result {
	w := p.ACTsPerTREFI()
	round := p.TREFI
	switch s {
	case SchemePrIDE:
		return Analyze(s.String(), 4, w, 1/float64(w+1), round, ttfYears)
	case SchemePrIDEHalfRate:
		w2 := 2 * w
		return Analyze(s.String(), 4, w2, 1/float64(w2+1), 2*round, ttfYears)
	case SchemePrIDERFM40:
		return Analyze(s.String(), 4, 40, 1.0/41, round*40/time.Duration(w), ttfYears)
	case SchemePrIDERFM16:
		return Analyze(s.String(), 4, 16, 1.0/17, round*16/time.Duration(w), ttfYears)
	case SchemePARADRFM:
		return Analyze(s.String(), 1, 2*w+2, 1/float64(2*w+2), 2*round, ttfYears)
	case SchemePARADRFMPlus:
		return Analyze(s.String(), 1, w+1, 1/float64(w+1), round, ttfYears)
	case SchemePARFM:
		wd := dram.DDR4().ACTsPerTREFI()
		r := Result{
			Name:      s.String(),
			Entries:   wd,
			Window:    wd,
			P:         1 / float64(wd),
			Loss:      0,
			PHat:      1 / float64(wd),
			Tardiness: wd,
		}
		r.TRHStarNoTardiness = TRHStarTIF(r.PHat, dram.DDR4().TREFI, ttfYears)
		r.TRHStar = r.TRHStarNoTardiness + float64(r.Tardiness)
		return r
	case SchemeMINT:
		// Exactly one insertion per interval: no eviction ever (L = 0),
		// p = 1/W per activation for the interval-spreading worst-case
		// attacker, tardiness one window.
		r := Result{
			Name:      s.String(),
			Entries:   1,
			Window:    w,
			P:         1 / float64(w),
			Loss:      0,
			PHat:      1 / float64(w),
			Tardiness: w,
			RoundTime: round,
		}
		r.TRHStarNoTardiness = TRHStarTIF(r.PHat, round, ttfYears)
		r.TRHStar = r.TRHStarNoTardiness + float64(r.Tardiness)
		return r
	case SchemeMOAT:
		// Deterministic: the ALERT threshold caps disturbance at ATO with
		// certainty, independent of round time or target TTF. The
		// probabilistic fields are degenerate (every over-threshold
		// activation is mitigated, p-hat = 1).
		ato := float64(tracker.DefaultMOATATO)
		return Result{
			Name:               s.String(),
			Entries:            1,
			Window:             w,
			P:                  1,
			Loss:               0,
			PHat:               1,
			Tardiness:          0,
			RoundTime:          round,
			TRHStar:            ato,
			TRHStarNoTardiness: ato,
		}
	default:
		panic("analytic: unknown scheme")
	}
}
