package analytic

import "math"

// RandomRandomLoss returns the worst-case loss probability of the Section
// VIII ablation design that uses Random for BOTH the eviction policy and the
// mitigation policy (the design PROTEAS explored before PrIDE settled on
// FIFO/FIFO).
//
// Under random policies the target's queue position is irrelevant; the state
// reduces to the buffer occupancy. Because random mitigation may pop younger
// entries while the target lingers (it also gives the design unbounded
// tardiness), the loss probability is strictly higher than FIFO/FIFO's — the
// quantitative reason the paper's final design is FIFO/FIFO.
//
// The model is exact: the within-window dynamic program is linear in the
// unknown start-of-window loss values X[occ], and we iterate that linear map
// to its fixed point (it is a contraction because every window has positive
// survival probability).
func RandomRandomLoss(n, w int, p float64) float64 {
	m := NewLossModel(n, w, p) // reuse validation and the occupancy chain
	q := 1 - p

	// X[o] = P(target eventually evicted | window starts, target in
	// buffer, occupancy o), o in 1..n (index 0 unused).
	x := make([]float64, n+1)
	next := make([]float64, n+1)
	// l[o][r]: within-window DP, occupancy o in 1..n, r ACTs remaining.
	l := make([][]float64, n+1)
	for o := 1; o <= n; o++ {
		l[o] = make([]float64, w+1)
	}

	for iter := 0; iter < 100000; iter++ {
		for o := 1; o <= n; o++ {
			// Window boundary (r=0): random mitigation pops the target
			// with probability 1/o (survive); otherwise a fresh window
			// begins with occupancy o-1.
			if o == 1 {
				l[o][0] = 0
			} else {
				l[o][0] = float64(o-1) / float64(o) * x[o-1]
			}
		}
		for r := 1; r <= w; r++ {
			for o := 1; o <= n; o++ {
				var ins float64
				if o < n {
					ins = l[o+1][r-1]
				} else {
					// Full buffer: random eviction hits the target with
					// probability 1/n (loss); otherwise occupancy stays n.
					ins = 1/float64(n) + float64(n-1)/float64(n)*l[n][r-1]
				}
				l[o][r] = q*l[o][r-1] + p*ins
			}
		}
		delta := 0.0
		for o := 1; o <= n; o++ {
			next[o] = l[o][w]
			delta += math.Abs(next[o] - x[o])
		}
		copy(x, next)
		if delta < 1e-14 {
			break
		}
	}

	// Weight by the start-of-window occupancy distribution with the target
	// inserted at the worst-case position (k=1, so w-1 ACTs remain).
	pi := m.StationaryOccupancy()
	total := 0.0
	for start, weight := range pi {
		occ := start + 1 // the target's own insertion
		// Recompute one window with r=w-1 using the converged X.
		total += weight * windowLossRR(n, w-1, p, occ, x)
	}
	return total
}

// windowLossRR evaluates the within-window loss for a single start state
// using the converged boundary values x.
func windowLossRR(n, w int, p float64, startOcc int, x []float64) float64 {
	q := 1 - p
	l := make([][]float64, n+1)
	for o := 1; o <= n; o++ {
		l[o] = make([]float64, w+1)
		if o == 1 {
			l[o][0] = 0
		} else {
			l[o][0] = float64(o-1) / float64(o) * x[o-1]
		}
	}
	for r := 1; r <= w; r++ {
		for o := 1; o <= n; o++ {
			var ins float64
			if o < n {
				ins = l[o+1][r-1]
			} else {
				ins = 1/float64(n) + float64(n-1)/float64(n)*l[n][r-1]
			}
			l[o][r] = q*l[o][r-1] + p*ins
		}
	}
	return l[startOcc][w]
}
