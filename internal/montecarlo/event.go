package montecarlo

import (
	"fmt"

	"pride/internal/guard"
	"pride/internal/rng"
)

// This file implements the event-driven counterparts of SimulateLoss and
// SimulateRounds. The exact engines pay one RNG draw and one branch per
// activation slot; with PrIDE's pattern-independent Bernoulli(p) insertion
// the overwhelming majority of slots are non-events, so the event engines
// sample the geometric gap to the next insertion instead (rng.SkipT) and
// advance the clock directly to it, handling the window boundaries crossed
// on the way in closed form. Work drops from O(Periods·W) to O(insertions).
//
// The two engines consume different raw draw SEQUENCES (one draw per
// insertion instead of one per slot), so their outputs are not bit-identical
// under one seed — except at p = 1, where every slot inserts and the
// sequences coincide, a deterministic identity the tests pin. Everywhere
// else correctness is enforced by cross-validation against the exact engine
// and the analytic DP model within confidence bounds.

// SimulateLossEvent is the event-driven SimulateLoss: identical estimator,
// identical attribution semantics, O(insertions) work. Results are
// statistically (not bit-) equivalent to SimulateLoss under the same seed.
func SimulateLossEvent(cfg LossConfig, r *rng.Stream) LossResult {
	return simulateLossEvent(cfg, r, &lossScratch{})
}

func simulateLossEvent(cfg LossConfig, r *rng.Stream, sc *lossScratch) LossResult {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if r == nil {
		panic("montecarlo: nil rng stream")
	}
	res := LossResult{
		PerPosition:    make([]PositionStats, cfg.Window),
		StartOccupancy: make([]uint64, cfg.Entries+1),
	}
	sk := rng.NewSkip(rng.NewThreshold(cfg.InsertionProb))
	buf := sc.entries(cfg.Entries)
	ptr, occ := 0, 0

	// The loop below runs once per INSERTION — the whole point of the
	// engine — so its state lives in locals (ring indices wrap by compare,
	// not modulo; the result slices are hoisted) to keep the per-insertion
	// cost at one raw draw, one log, and a handful of adds.
	entries := cfg.Entries
	perPos := res.PerPosition
	startOcc := res.StartOccupancy

	w := cfg.Window
	total := cfg.Periods * w // global activation slots, 0-based
	period := 0              // period whose window the clock is inside
	t := 0                   // next unsimulated global slot
	pos := 0                 // t - period*w, tracked incrementally
	startOcc[0]++            // period 0 starts empty

	for {
		g := r.SkipT(sk)
		if g >= total-t {
			break // no further insertion lands inside the budget
		}
		t += g
		pos += g
		// The insertion lands at 1-based window position pos%w+1; replay
		// every window boundary crossed on the way there. Each boundary is
		// the exact engine's end-of-window step — pop the oldest entry,
		// attribute the mitigation, record the next window's start
		// occupancy — and once the FIFO is empty the remaining boundaries
		// collapse to a single closed-form occupancy-zero batch. The
		// single-crossing case skips the integer division: most gaps cross
		// at most one boundary for the probabilities the engines sweep.
		if pos >= w {
			var m int
			if pos < 2*w {
				m, pos = 1, pos-w
			} else {
				m = pos / w
				pos -= m * w
			}
			period += m
			for ; m > 0 && occ > 0; m-- {
				perPos[buf[ptr].position-1].Mitigated++
				if ptr++; ptr == entries {
					ptr = 0
				}
				occ--
				startOcc[occ]++
			}
			if m > 0 {
				startOcc[0] += uint64(m)
			}
		}
		if cfg.SelfCheck {
			// Gap accounting: after replaying the crossed boundaries the
			// clock must sit inside the current window with a consistent
			// period index, and the FIFO inside its bounds — any drift here
			// silently mis-attributes every later insertion.
			if pos < 0 || pos >= w {
				guard.Failf("montecarlo.event", "gap-accounting", "window position %d outside [0,%d) at slot %d", pos, w, t)
			}
			if t-pos != period*w {
				guard.Failf("montecarlo.event", "gap-accounting", "slot %d, position %d inconsistent with period %d (w=%d)", t, pos, period, w)
			}
			if occ < 0 || occ > entries || ptr < 0 || ptr >= entries {
				guard.Failf("montecarlo.event", "fifo-bounds", "occ %d ptr %d outside FIFO of %d", occ, ptr, entries)
			}
		}
		k := pos + 1
		perPos[pos].Insertions++
		if occ == entries {
			perPos[buf[ptr].position-1].Evicted++
			if ptr++; ptr == entries {
				ptr = 0
			}
			occ--
		}
		tail := ptr + occ
		if tail >= entries {
			tail -= entries
		}
		buf[tail] = taggedEntry{position: k}
		occ++
		t++
		pos++
	}

	// Drain the boundaries after the last insertion. The final period's end
	// has no following window start, so the last boundary pops without
	// recording an occupancy sample; once the FIFO empties, the remaining
	// empty starts are a single closed-form add.
	rem := cfg.Periods - period
	if cfg.SelfCheck && rem < 0 {
		guard.Failf("montecarlo.event", "gap-accounting", "drain: period %d beyond budget %d", period, cfg.Periods)
	}
	pops := occ
	if pops > rem {
		pops = rem
	}
	for i := 1; i <= pops; i++ {
		perPos[buf[ptr].position-1].Mitigated++
		if ptr++; ptr == entries {
			ptr = 0
		}
		occ--
		if i < rem {
			startOcc[occ]++
		}
	}
	if rem > pops {
		startOcc[0] += uint64(rem - pops - 1)
	}
	return res
}

// SimulateRoundsEvent is the event-driven SimulateRounds. The exact round
// loop reduces to a closed form: every insertion in the single-row round
// tracks the aggressor, so the round is mitigated iff the FIRST insertion
// lands strictly before the last window boundary at slot B = (TRH/W)·W
// (0-based; B = 0 when TRH < W means no boundary fires and every round
// fails). One geometric draw decides each round.
func SimulateRoundsEvent(cfg RoundConfig, r *rng.Stream) RoundResult {
	return simulateRoundsEvent(cfg, r, &roundScratch{})
}

func simulateRoundsEvent(cfg RoundConfig, r *rng.Stream, _ *roundScratch) RoundResult {
	if cfg.Entries <= 0 || cfg.Window <= 0 || cfg.TRH <= 0 || cfg.Rounds <= 0 {
		panic(fmt.Sprintf("montecarlo: invalid round config %+v", cfg))
	}
	if cfg.InsertionProb <= 0 || cfg.InsertionProb > 1 {
		panic(fmt.Sprintf("montecarlo: invalid insertion probability %v", cfg.InsertionProb))
	}
	if r == nil {
		panic("montecarlo: nil rng stream")
	}
	res := RoundResult{Rounds: cfg.Rounds}
	sk := rng.NewSkip(rng.NewThreshold(cfg.InsertionProb))
	b := (cfg.TRH / cfg.Window) * cfg.Window
	for round := 0; round < cfg.Rounds; round++ {
		if r.SkipT(sk) >= b {
			res.Failures++
		}
	}
	return res
}
