// Package montecarlo provides the stochastic counterparts of the analytical
// models in internal/analytic, following the paper's methodology (footnote 1
// of Section IV-C): stream millions of tREFI windows through a FIFO tracker
// with probabilistic insertion and measure, per window position, how often an
// inserted entry is evicted without mitigation.
//
// The Monte-Carlo results are cross-validated against the exact DP model in
// tests and regenerated for Fig 8 and Fig 18 by cmd/pride-security and
// cmd/pride-attack.
package montecarlo

import (
	"fmt"

	"pride/internal/guard"
	"pride/internal/rng"
)

// LossConfig parameterizes a loss-probability simulation.
type LossConfig struct {
	// Entries is the tracker size N.
	Entries int
	// Window is W, the activations per mitigation window.
	Window int
	// InsertionProb is the sampling probability p.
	InsertionProb float64
	// Periods is the number of tREFI windows to simulate (the paper uses
	// 100 million; tests use far fewer since the estimator is unbiased).
	Periods int
	// SelfCheck enables runtime invariant guards (FIFO occupancy bounds,
	// event-engine gap accounting). A violated guard panics with a
	// guard.Violation; campaigns catch it and fall back to the exact
	// engine. Not part of the checkpoint key.
	SelfCheck bool
}

// Validate reports whether the config describes a runnable simulation.
// Campaign entry points panic on an invalid config (a programming error in
// the calling binary); services validating externally-supplied specs call
// this first and turn the error into a client-facing rejection instead.
func (c LossConfig) Validate() error { return c.validate() }

func (c LossConfig) validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("montecarlo: Entries must be positive, got %d", c.Entries)
	case c.Window <= 0:
		return fmt.Errorf("montecarlo: Window must be positive, got %d", c.Window)
	case c.InsertionProb <= 0 || c.InsertionProb > 1:
		return fmt.Errorf("montecarlo: InsertionProb must be in (0,1], got %v", c.InsertionProb)
	case c.Periods <= 0:
		return fmt.Errorf("montecarlo: Periods must be positive, got %d", c.Periods)
	}
	return nil
}

// PositionStats accumulates, for one window position k, how many insertions
// happened there and how they were resolved.
type PositionStats struct {
	Insertions uint64
	Evicted    uint64
	Mitigated  uint64
}

// LossProb returns the measured loss probability: evictions divided by
// resolved insertions. Unresolved entries (still buffered when the
// simulation ends) are excluded.
func (s PositionStats) LossProb() float64 {
	resolved := s.Evicted + s.Mitigated
	if resolved == 0 {
		return 0
	}
	return float64(s.Evicted) / float64(resolved)
}

// LossResult is the outcome of a loss-probability simulation.
type LossResult struct {
	// PerPosition has one entry per window position (index 0 = position 1,
	// the earliest and riskiest).
	PerPosition []PositionStats
	// StartOccupancy histograms the buffer occupancy at window starts,
	// for cross-checking the Appendix-A Markov chain.
	StartOccupancy []uint64
}

// WorstLoss returns the maximum per-position measured loss probability —
// the quantity the paper's model upper-bounds.
func (r LossResult) WorstLoss() float64 {
	worst := 0.0
	for _, s := range r.PerPosition {
		if l := s.LossProb(); l > worst {
			worst = l
		}
	}
	return worst
}

// OccupancyDistribution returns the start-of-window occupancy distribution
// as probabilities.
func (r LossResult) OccupancyDistribution() []float64 {
	total := uint64(0)
	for _, c := range r.StartOccupancy {
		total += c
	}
	out := make([]float64, len(r.StartOccupancy))
	if total == 0 {
		return out
	}
	for i, c := range r.StartOccupancy {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// taggedEntry is a FIFO slot carrying the window position it was inserted at
// so its eventual fate can be attributed.
type taggedEntry struct {
	position int // 1-based position within its insertion window
}

// lossScratch is the reusable working storage of one loss-simulation trial.
// Campaign workers keep one per worker index and pass it to consecutive
// chunks, so the FIFO buffer is allocated once per worker instead of once
// per chunk. Only scratch lives here — never anything that reaches the
// returned LossResult.
type lossScratch struct {
	buf []taggedEntry
}

// entries returns a length-n buffer, reusing the previous allocation when it
// is large enough. Stale contents are harmless: the simulation never reads a
// slot before writing it (occ starts at 0).
func (s *lossScratch) entries(n int) []taggedEntry {
	if cap(s.buf) < n {
		s.buf = make([]taggedEntry, n)
	}
	return s.buf[:n]
}

// SimulateLoss streams cfg.Periods windows through an N-entry FIFO tracker
// with probabilistic insertion, FIFO eviction and one FIFO mitigation per
// window, and attributes every eviction/mitigation to the insertion position
// of the affected entry (the paper's Monte-Carlo methodology).
func SimulateLoss(cfg LossConfig, r *rng.Stream) LossResult {
	return simulateLoss(cfg, r, &lossScratch{})
}

func simulateLoss(cfg LossConfig, r *rng.Stream, sc *lossScratch) LossResult {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if r == nil {
		panic("montecarlo: nil rng stream")
	}
	res := LossResult{
		PerPosition:    make([]PositionStats, cfg.Window),
		StartOccupancy: make([]uint64, cfg.Entries+1),
	}
	// Per-ACT sampling via the precomputed integer threshold: bit-identical
	// decisions to Bernoulli(cfg.InsertionProb), one raw draw per ACT.
	insertT := rng.NewThreshold(cfg.InsertionProb)
	// Circular FIFO of tagged entries.
	buf := sc.entries(cfg.Entries)
	ptr, occ := 0, 0

	for period := 0; period < cfg.Periods; period++ {
		res.StartOccupancy[occ]++
		for k := 1; k <= cfg.Window; k++ {
			if !r.BernoulliT(insertT) {
				continue
			}
			res.PerPosition[k-1].Insertions++
			if occ == cfg.Entries {
				// FIFO eviction: the oldest entry is lost.
				old := buf[ptr]
				res.PerPosition[old.position-1].Evicted++
				ptr = (ptr + 1) % cfg.Entries
				occ--
			}
			buf[(ptr+occ)%cfg.Entries] = taggedEntry{position: k}
			occ++
		}
		// One mitigation per window: pop the oldest.
		if occ > 0 {
			old := buf[ptr]
			res.PerPosition[old.position-1].Mitigated++
			ptr = (ptr + 1) % cfg.Entries
			occ--
		}
		if cfg.SelfCheck && (occ < 0 || occ > cfg.Entries || ptr < 0 || ptr >= cfg.Entries) {
			guard.Failf("montecarlo", "fifo-bounds", "period %d: occ %d ptr %d outside FIFO of %d", period, occ, ptr, cfg.Entries)
		}
	}
	return res
}

// RoundConfig parameterizes an attack-round failure simulation: an aggressor
// row is activated `TRH` times, spread one per activation slot from the
// worst-case position, while background insertions compete; the round fails
// if the aggressor is never mitigated.
type RoundConfig struct {
	Entries       int
	Window        int
	InsertionProb float64
	// TRH is the round length in aggressor activations.
	TRH int
	// Rounds is the number of independent rounds to simulate.
	Rounds int
	// SelfCheck enables runtime invariant guards; see LossConfig.SelfCheck.
	SelfCheck bool
}

// RoundResult reports measured attack-round outcomes.
type RoundResult struct {
	Rounds   int
	Failures int
}

// FailureProb returns the measured round-failure probability.
func (r RoundResult) FailureProb() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Rounds)
}

// SimulateRounds measures the round-failure probability: the probability
// that TRH consecutive aggressor activations never result in a mitigation of
// the aggressor. Every activation slot is an aggressor activation (the
// closed-page worst case), and the aggressor's entry competes with nothing
// else — the pessimistic single-row round of Section III-A. The measured
// probability must not exceed the analytic (1-p̂)^(TRH-tardiness) bound.
func SimulateRounds(cfg RoundConfig, r *rng.Stream) RoundResult {
	return simulateRounds(cfg, r, &roundScratch{})
}

// slot is a FIFO slot of the round simulation.
type slot struct{ row int }

// roundScratch is the reusable working storage of one round-simulation
// trial, mirroring lossScratch.
type roundScratch struct {
	buf []slot
}

func (s *roundScratch) entries(n int) []slot {
	if cap(s.buf) < n {
		s.buf = make([]slot, n)
	}
	return s.buf[:n]
}

func simulateRounds(cfg RoundConfig, r *rng.Stream, sc *roundScratch) RoundResult {
	if cfg.Entries <= 0 || cfg.Window <= 0 || cfg.TRH <= 0 || cfg.Rounds <= 0 {
		panic(fmt.Sprintf("montecarlo: invalid round config %+v", cfg))
	}
	if cfg.InsertionProb <= 0 || cfg.InsertionProb > 1 {
		panic(fmt.Sprintf("montecarlo: invalid insertion probability %v", cfg.InsertionProb))
	}
	if r == nil {
		panic("montecarlo: nil rng stream")
	}
	const aggressor = 1 // single-row round: every slot activates the aggressor

	res := RoundResult{Rounds: cfg.Rounds}
	insertT := rng.NewThreshold(cfg.InsertionProb)
	buf := sc.entries(cfg.Entries)
	for round := 0; round < cfg.Rounds; round++ {
		ptr, occ := 0, 0
		mitigated := false
		pos := 0
		for act := 0; act < cfg.TRH && !mitigated; act++ {
			if r.BernoulliT(insertT) {
				if occ == cfg.Entries {
					ptr = (ptr + 1) % cfg.Entries
					occ--
				}
				buf[(ptr+occ)%cfg.Entries] = slot{row: aggressor}
				occ++
			}
			pos++
			if pos == cfg.Window {
				pos = 0
				if occ > 0 {
					if buf[ptr].row == aggressor {
						mitigated = true
					}
					ptr = (ptr + 1) % cfg.Entries
					occ--
				}
			}
		}
		if !mitigated {
			res.Failures++
		}
	}
	return res
}
