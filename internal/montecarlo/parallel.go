package montecarlo

import (
	"context"

	"pride/internal/trialrunner"
)

// Sharding plan: a simulation budget is cut into independent chunks, each
// driven by its own index-derived RNG stream (rng.Derived(seed, chunk)).
// The plan is a pure function of the budget — never of the worker count —
// so the merged result is bit-for-bit identical for any number of workers,
// including 1. Chunks target a pool-friendly count while staying large
// enough that the per-chunk warm-up transient (each chunk starts with an
// empty FIFO rather than a stationary one) stays statistically negligible.
const (
	// targetChunks is the sharding granularity: enough chunks that pools of
	// any practical width load-balance, few enough that per-chunk overhead
	// and warm-up bias vanish.
	targetChunks = 64
	// minLossChunkPeriods floors the chunk size so tiny budgets are not
	// atomized (the warm-up transient is tens of windows per chunk).
	minLossChunkPeriods = 4096
	// minRoundChunk floors the per-chunk round count; rounds carry no
	// cross-round state at all, so the floor only bounds scheduling
	// overhead.
	minRoundChunk = 512
)

// chunkSizes cuts total into deterministic shard sizes of at least minChunk,
// independent of worker count.
func chunkSizes(total, minChunk int) []int {
	chunk := (total + targetChunks - 1) / targetChunks
	if chunk < minChunk {
		chunk = minChunk
	}
	n := (total + chunk - 1) / chunk
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = chunk
	}
	sizes[n-1] = total - (n-1)*chunk
	return sizes
}

// merge accumulates o into r (same configuration, so equal slice lengths).
func (r *LossResult) merge(o LossResult) {
	for i := range o.PerPosition {
		r.PerPosition[i].Insertions += o.PerPosition[i].Insertions
		r.PerPosition[i].Evicted += o.PerPosition[i].Evicted
		r.PerPosition[i].Mitigated += o.PerPosition[i].Mitigated
	}
	for i := range o.StartOccupancy {
		r.StartOccupancy[i] += o.StartOccupancy[i]
	}
}

// SimulateLossParallel shards cfg.Periods into independent chunks and runs
// them on `workers` goroutines, merging per-position and occupancy counters
// in chunk order. Chunk i always consumes stream rng.Derived(seed, i), so
// the result is a pure function of (cfg, seed): workers only changes how
// fast it arrives. workers == 1 runs every chunk inline on the calling
// goroutine.
//
// The estimator is the same unbiased one as SimulateLoss; the only
// difference from one long serial stream is that each chunk restarts from an
// empty FIFO, a warm-up transient of tens of windows per >=4096-window
// chunk. The cross-validation tests hold the parallel engine to the exact DP
// model with the same tolerances as the serial one.
//
// This is the fail-loud convenience form of SimulateLossCampaign: no
// cancellation, no checkpoint, and a panicking chunk takes the process down
// with a stack naming the chunk.
func SimulateLossParallel(cfg LossConfig, seed uint64, workers int) LossResult {
	if err := trialrunner.ValidateWorkers(workers); err != nil {
		panic(err)
	}
	res, err := SimulateLossCampaign(context.Background(), cfg, seed, CampaignOptions{Workers: workers})
	trialrunner.MustPanicFree(err)
	return res
}

// SimulateRoundsParallel shards cfg.Rounds across `workers` goroutines.
// Rounds are fully independent (each resets the tracker), so sharding is
// exact, not merely unbiased: the chunk plan and per-chunk streams depend
// only on (cfg, seed) and the merged counts are worker-count invariant.
// Fail-loud convenience form of SimulateRoundsCampaign.
func SimulateRoundsParallel(cfg RoundConfig, seed uint64, workers int) RoundResult {
	if err := trialrunner.ValidateWorkers(workers); err != nil {
		panic(err)
	}
	res, err := SimulateRoundsCampaign(context.Background(), cfg, seed, CampaignOptions{Workers: workers})
	trialrunner.MustPanicFree(err)
	return res
}
