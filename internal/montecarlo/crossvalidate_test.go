package montecarlo

import (
	"math"
	"testing"
	"testing/quick"

	"pride/internal/analytic"
	"pride/internal/rng"
)

// The DP loss model (internal/analytic) and the Monte-Carlo engine are
// independent implementations of the same stochastic process. These tests
// force them to agree across randomized configurations, not just the
// paper's defaults.

func TestCrossValidateWorstPositionLoss(t *testing.T) {
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%6) + 1
		w := int(wRaw%60) + 20
		p := 1 / float64(w)

		model := analytic.NewLossModel(n, w, p)
		// Model: P(loss | inserted at position 1), averaged over the
		// stationary start-occupancy distribution.
		want := 0.0
		pi := model.StationaryOccupancy()
		for x := 0; x < n; x++ {
			want += pi[x] * model.LossFromStart(x, 1)
		}

		res := SimulateLoss(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 60_000,
		}, rng.New(seed))
		s := res.PerPosition[0]
		resolved := s.Evicted + s.Mitigated
		if resolved < 200 {
			return true // too few samples at this position; skip
		}
		got := s.LossProb()
		tol := 5*math.Sqrt(want*(1-want)/float64(resolved)) + 0.02
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateOccupancyChain(t *testing.T) {
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%5) + 1
		w := int(wRaw%50) + 30
		p := 1 / float64(w)
		want := analytic.NewLossModel(n, w, p).StationaryOccupancy()
		res := SimulateLoss(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 40_000,
		}, rng.New(seed))
		got := res.OccupancyDistribution()
		for x := 0; x < n; x++ {
			if math.Abs(got[x]-want[x]) > 0.025 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateParallelWorstPositionLoss(t *testing.T) {
	// Mirror of TestCrossValidateWorstPositionLoss for the sharded engine:
	// the parallel loss estimator must agree with the exact DP model across
	// randomized configurations. Budgets above one chunk exercise the merge
	// path; the tolerance is the same as the serial cross-check.
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%6) + 1
		w := int(wRaw%60) + 20
		p := 1 / float64(w)

		model := analytic.NewLossModel(n, w, p)
		want := 0.0
		pi := model.StationaryOccupancy()
		for x := 0; x < n; x++ {
			want += pi[x] * model.LossFromStart(x, 1)
		}

		res := SimulateLossParallel(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 60_000,
		}, seed, 4)
		s := res.PerPosition[0]
		resolved := s.Evicted + s.Mitigated
		if resolved < 200 {
			return true // too few samples at this position; skip
		}
		got := s.LossProb()
		tol := 5*math.Sqrt(want*(1-want)/float64(resolved)) + 0.02
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateParallelOccupancyChain(t *testing.T) {
	// The merged start-occupancy histogram of the sharded engine must still
	// match the Appendix-A Markov chain's stationary distribution.
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%5) + 1
		w := int(wRaw%50) + 30
		p := 1 / float64(w)
		want := analytic.NewLossModel(n, w, p).StationaryOccupancy()
		res := SimulateLossParallel(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 40_000,
		}, seed, 4)
		got := res.OccupancyDistribution()
		for x := 0; x < n; x++ {
			if math.Abs(got[x]-want[x]) > 0.025 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateHigherInsertionProbability(t *testing.T) {
	// The models must also agree away from p = 1/W (the RFM co-designs
	// use p = 1/17 with W = 16-ish windows).
	for _, cfg := range []struct {
		n, w int
		p    float64
	}{
		{4, 16, 1.0 / 17},
		{4, 40, 1.0 / 41},
		{2, 30, 0.1},
	} {
		model := analytic.NewLossModel(cfg.n, cfg.w, cfg.p)
		pi := model.StationaryOccupancy()
		want := 0.0
		for x := 0; x < cfg.n; x++ {
			want += pi[x] * model.LossFromStart(x, 1)
		}
		res := SimulateLoss(LossConfig{
			Entries: cfg.n, Window: cfg.w, InsertionProb: cfg.p, Periods: 150_000,
		}, rng.New(uint64(cfg.n*cfg.w)))
		got := res.PerPosition[0].LossProb()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("n=%d w=%d p=%.4f: MC %.4f vs DP %.4f", cfg.n, cfg.w, cfg.p, got, want)
		}
	}
}
