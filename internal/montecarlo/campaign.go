package montecarlo

import (
	"context"
	"fmt"

	"pride/internal/engine"
	"pride/internal/guard"
	"pride/internal/rng"
	"pride/internal/trialrunner"
)

// ProgressSink receives coarse progress counters from a running campaign,
// one update per completed chunk. internal/obs.Campaign satisfies it
// structurally; the engine never imports the metrics package, and a sink can
// never feed anything back into the simulation, so metering cannot perturb
// the bit-for-bit determinism guarantees.
type ProgressSink interface {
	// AddPeriods records n freshly-simulated tREFI windows.
	AddPeriods(n int64)
	// AddMitigations records n mitigations issued by the tracker.
	AddMitigations(n int64)
}

// CampaignOptions configures a cancellable, checkpointable, observable
// campaign. The zero value behaves exactly like the plain Parallel entry
// points at trialrunner.DefaultWorkers(): no checkpoint, no metering.
type CampaignOptions struct {
	// Workers is the pool size; 0 selects trialrunner.DefaultWorkers().
	// Workers never affects the result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the experiment's canonical key (configuration + seed,
	// never the worker count), so a resume is safe across -workers changes
	// but rejected across configuration changes.
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives per-chunk counter updates.
	Progress ProgressSink
	// Observer, when non-nil, receives per-trial lifecycle callbacks
	// (internal/obs.Campaign implements both roles).
	Observer trialrunner.Observer
	// Engine selects the simulation engine: engine.Exact (the zero value)
	// steps every activation slot; engine.Event advances directly to the
	// next insertion via geometric skip-ahead. The two produce
	// statistically — not bit-for-bit — equivalent results, so the
	// canonical checkpoint key embeds the engine and a campaign never
	// resumes across an engine switch.
	Engine engine.Kind
	// SelfCheck enables runtime invariant guards in the simulation engines
	// (-selfcheck). An event-engine trial whose guard trips is re-run on
	// the exact engine (the divergence counted via AddEngineFallbacks on
	// Progress) instead of aborting the campaign.
	SelfCheck bool
	// Retry bounds re-execution of panicked/errored trials; see
	// trialrunner.RetryPolicy. Zero keeps single-attempt semantics.
	Retry trialrunner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults into trial
	// execution and checkpoint I/O (chaos testing; faultinject.Injector
	// implements it). Production runs leave it nil.
	Faults trialrunner.TrialFaults
}

func (o CampaignOptions) runnerOpts() trialrunner.Options {
	return trialrunner.Options{Workers: o.Workers, Observer: o.Observer, Retry: o.Retry, Faults: o.Faults}
}

// fallbackSink is the optional Progress capability for counting event→exact
// engine fallbacks (internal/obs.Campaign implements it).
type fallbackSink interface{ AddEngineFallbacks(n int64) }

// engineTripper is the optional Faults capability that forces an invariant
// trip for a given trial index (faultinject.Injector implements it).
type engineTripper interface{ EngineTrip(trial uint64) bool }

// tripForced reports whether the fault schedule forces an engine trip on
// trial i.
func (o CampaignOptions) tripForced(i int) bool {
	if et, ok := o.Faults.(engineTripper); ok {
		return et.EngineTrip(uint64(i))
	}
	return false
}

// countFallback records one event→exact fallback on the progress sink.
func (o CampaignOptions) countFallback() {
	if fs, ok := o.Progress.(fallbackSink); ok {
		fs.AddEngineFallbacks(1)
	}
}

// LossCampaignKey is the canonical checkpoint key of a loss campaign: every
// parameter the chunk plan, per-chunk RNG streams, and per-chunk draw
// sequences depend on — including the engine — and nothing else (in
// particular not the worker count). The exact engine keeps the historical
// key spelling, so checkpoints written before engines existed still resume.
func LossCampaignKey(cfg LossConfig, seed uint64, eng engine.Kind) string {
	return fmt.Sprintf("montecarlo.loss|n=%d|w=%d|p=%g|periods=%d|seed=%d%s",
		cfg.Entries, cfg.Window, cfg.InsertionProb, cfg.Periods, seed, engine.KeySuffix(eng))
}

// LossCampaignTrials reports how many chunks (checkpointable trials) a loss
// campaign over cfg runs — the trial total a progress meter should expect.
func LossCampaignTrials(cfg LossConfig) int {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return len(chunkSizes(cfg.Periods, minLossChunkPeriods))
}

// totalMitigations sums the mitigation counter across window positions.
func (r LossResult) totalMitigations() int64 {
	var total int64
	for _, s := range r.PerPosition {
		total += int64(s.Mitigated)
	}
	return total
}

// SimulateLossCampaign is SimulateLossParallel as a long-running campaign:
// the same chunk plan and index-derived RNG streams (so the merged result is
// bit-for-bit identical to the Parallel and serial engines), plus
// cancellation with graceful drain, per-chunk panic isolation, durable
// checkpoint/resume, and progress metering.
//
// When ctx is cancelled, in-flight chunks finish, land in the checkpoint
// (when enabled), and the error wraps ctx.Err(); rerunning the identical
// campaign resumes from the completed chunks and returns a result
// bit-identical to an uninterrupted run at any worker count.
func SimulateLossCampaign(ctx context.Context, cfg LossConfig, seed uint64, opts CampaignOptions) (LossResult, error) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = LossCampaignKey(cfg, seed, opts.Engine)
	}
	cfg.SelfCheck = cfg.SelfCheck || opts.SelfCheck
	sizes := chunkSizes(cfg.Periods, minLossChunkPeriods)
	var onDone func(i int, r LossResult) error
	if sink := opts.Progress; sink != nil {
		onDone = func(i int, r LossResult) error {
			sink.AddPeriods(int64(sizes[i]))
			sink.AddMitigations(r.totalMitigations())
			return nil
		}
	}
	// One scratch arena per worker index: chunks run by the same worker
	// reuse the FIFO buffer. Scratch never reaches a result, so worker-count
	// invariance is untouched.
	ropts := opts.runnerOpts()
	scratch := make([]lossScratch, ropts.PoolSize(len(sizes)))
	return trialrunner.RunCheckpointedWorker(ctx, len(sizes),
		func(worker, i int) LossResult {
			c := cfg
			c.Periods = sizes[i]
			if opts.Engine != engine.Event {
				return simulateLoss(c, rng.Derived(seed, uint64(i)), &scratch[worker])
			}
			// Guarded event run: a tripped invariant (real or injected)
			// falls back to the exact reference engine on a fresh stream
			// derived from the same trial index, so the campaign degrades
			// gracefully instead of aborting.
			forced := opts.tripForced(i)
			r, v := guard.Run(func() LossResult {
				if forced {
					guard.Failf("montecarlo.event", "forced-trip", "injected engine trip (trial %d)", i)
				}
				return simulateLossEvent(c, rng.Derived(seed, uint64(i)), &scratch[worker])
			})
			if v == nil {
				return r
			}
			opts.countFallback()
			return simulateLoss(c, rng.Derived(seed, uint64(i)), &scratch[worker])
		},
		func(acc, next LossResult) LossResult {
			acc.merge(next)
			return acc
		},
		onDone, ropts, cp)
}

// RoundsCampaignKey is the canonical checkpoint key of a round-failure
// campaign; like LossCampaignKey it embeds the engine, with the exact
// engine keeping the historical spelling.
func RoundsCampaignKey(cfg RoundConfig, seed uint64, eng engine.Kind) string {
	return fmt.Sprintf("montecarlo.rounds|n=%d|w=%d|p=%g|trh=%d|rounds=%d|seed=%d%s",
		cfg.Entries, cfg.Window, cfg.InsertionProb, cfg.TRH, cfg.Rounds, seed, engine.KeySuffix(eng))
}

// RoundsCampaignTrials reports how many chunks a rounds campaign runs.
func RoundsCampaignTrials(cfg RoundConfig) int {
	if cfg.Rounds <= 0 {
		panic(fmt.Sprintf("montecarlo: invalid round config %+v", cfg))
	}
	return len(chunkSizes(cfg.Rounds, minRoundChunk))
}

// SimulateRoundsCampaign is SimulateRoundsParallel as a campaign, with the
// same cancellation/checkpoint/metering contract as SimulateLossCampaign.
// Progress reports each chunk's activation slots as window-equivalents
// (rounds x TRH / W, an upper bound since rounds end early on mitigation)
// and every non-failing round as one mitigation of the aggressor.
func SimulateRoundsCampaign(ctx context.Context, cfg RoundConfig, seed uint64, opts CampaignOptions) (RoundResult, error) {
	if cfg.Rounds <= 0 {
		panic(fmt.Sprintf("montecarlo: invalid round config %+v", cfg))
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = RoundsCampaignKey(cfg, seed, opts.Engine)
	}
	cfg.SelfCheck = cfg.SelfCheck || opts.SelfCheck
	sizes := chunkSizes(cfg.Rounds, minRoundChunk)
	var onDone func(i int, r RoundResult) error
	if sink := opts.Progress; sink != nil {
		onDone = func(i int, r RoundResult) error {
			sink.AddPeriods(int64(r.Rounds) * int64(cfg.TRH) / int64(cfg.Window))
			sink.AddMitigations(int64(r.Rounds - r.Failures))
			return nil
		}
	}
	ropts := opts.runnerOpts()
	scratch := make([]roundScratch, ropts.PoolSize(len(sizes)))
	return trialrunner.RunCheckpointedWorker(ctx, len(sizes),
		func(worker, i int) RoundResult {
			c := cfg
			c.Rounds = sizes[i]
			if opts.Engine != engine.Event {
				return simulateRounds(c, rng.Derived(seed, uint64(i)), &scratch[worker])
			}
			forced := opts.tripForced(i)
			r, v := guard.Run(func() RoundResult {
				if forced {
					guard.Failf("montecarlo.event", "forced-trip", "injected engine trip (trial %d)", i)
				}
				return simulateRoundsEvent(c, rng.Derived(seed, uint64(i)), &scratch[worker])
			})
			if v == nil {
				return r
			}
			opts.countFallback()
			return simulateRounds(c, rng.Derived(seed, uint64(i)), &scratch[worker])
		},
		func(acc, next RoundResult) RoundResult {
			acc.Rounds += next.Rounds
			acc.Failures += next.Failures
			return acc
		},
		onDone, ropts, cp)
}
