package montecarlo

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pride/internal/trialrunner"
)

func checkpointAt(path string) trialrunner.Checkpoint {
	return trialrunner.Checkpoint{Path: path}
}

// cancellingSink is a ProgressSink that cancels a context after a fixed
// number of chunk completions — the test stand-in for a SIGINT landing
// mid-campaign.
type cancellingSink struct {
	mu          sync.Mutex
	cancel      context.CancelFunc
	cancelAfter int
	chunks      int
	periods     int64
	mitigations int64
}

func (s *cancellingSink) AddPeriods(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunks++
	s.periods += n
	if s.cancel != nil && s.chunks == s.cancelAfter {
		s.cancel()
	}
}

func (s *cancellingSink) AddMitigations(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mitigations += n
}

func TestLossCampaignMatchesParallel(t *testing.T) {
	c := cfg(2, 12*4096)
	want := SimulateLossParallel(c, 99, 3)
	got, err := SimulateLossCampaign(context.Background(), c, 99, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("campaign result differs from parallel engine")
	}
}

func TestLossCampaignProgressTotals(t *testing.T) {
	c := cfg(2, 9*4096)
	sink := &cancellingSink{}
	res, err := SimulateLossCampaign(context.Background(), c, 3, CampaignOptions{Workers: 2, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if sink.periods != int64(c.Periods) {
		t.Fatalf("sink saw %d periods, campaign simulated %d", sink.periods, c.Periods)
	}
	if sink.chunks != LossCampaignTrials(c) {
		t.Fatalf("sink saw %d chunks, plan has %d", sink.chunks, LossCampaignTrials(c))
	}
	if sink.mitigations != res.totalMitigations() || sink.mitigations == 0 {
		t.Fatalf("sink saw %d mitigations, result holds %d", sink.mitigations, res.totalMitigations())
	}
}

func TestLossCampaignResumeIsBitIdentical(t *testing.T) {
	c := cfg(2, 16*4096)
	const seed = 42
	want := SimulateLossParallel(c, seed, 1)

	cancelPoints := []int{1, 8, 15}
	if testing.Short() {
		cancelPoints = []int{8}
	}
	for _, cancelAfter := range cancelPoints {
		for _, workers := range []int{1, 3} {
			path := filepath.Join(t.TempDir(), "loss.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			sink := &cancellingSink{cancel: cancel, cancelAfter: cancelAfter}
			_, err := SimulateLossCampaign(ctx, c, seed, CampaignOptions{
				Workers:    workers,
				Checkpoint: checkpointAt(path),
				Progress:   sink,
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelAfter=%d workers=%d: err = %v, want Canceled", cancelAfter, workers, err)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: no checkpoint after interrupt: %v", cancelAfter, workers, err)
			}

			got, err := SimulateLossCampaign(context.Background(), c, seed, CampaignOptions{
				Workers:    workers%3 + 1,
				Checkpoint: checkpointAt(path),
			})
			if err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: resume failed: %v", cancelAfter, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cancelAfter=%d workers=%d: resumed result differs from uninterrupted run", cancelAfter, workers)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cancelAfter=%d workers=%d: completed campaign left its checkpoint behind", cancelAfter, workers)
			}
		}
	}
}

func TestLossCampaignRejectsForeignCheckpoint(t *testing.T) {
	c := cfg(2, 8*4096)
	path := filepath.Join(t.TempDir(), "loss.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancellingSink{cancel: cancel, cancelAfter: 1}
	_, _ = SimulateLossCampaign(ctx, c, 7, CampaignOptions{Workers: 1, Checkpoint: checkpointAt(path), Progress: sink})
	cancel()

	// Same path, different seed: the auto key must reject the resume.
	_, err := SimulateLossCampaign(context.Background(), c, 8, CampaignOptions{Workers: 1, Checkpoint: checkpointAt(path)})
	if err == nil {
		t.Fatal("campaign resumed a checkpoint written under a different seed")
	}
}

func TestRoundsCampaignResumeIsBitIdentical(t *testing.T) {
	rc := RoundConfig{Entries: 2, Window: w79, InsertionProb: 1.0 / w79, TRH: 500, Rounds: 8 * 512}
	const seed = 11
	want := SimulateRoundsParallel(rc, seed, 1)

	path := filepath.Join(t.TempDir(), "rounds.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancellingSink{cancel: cancel, cancelAfter: 3}
	_, err := SimulateRoundsCampaign(ctx, rc, seed, CampaignOptions{Workers: 2, Checkpoint: checkpointAt(path), Progress: sink})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}

	got, err := SimulateRoundsCampaign(context.Background(), rc, seed, CampaignOptions{Workers: 3, Checkpoint: checkpointAt(path)})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if got != want {
		t.Fatalf("resumed rounds result %+v differs from uninterrupted %+v", got, want)
	}
	if sink.mitigations != int64(0) && sink.mitigations > int64(rc.Rounds) {
		t.Fatalf("sink mitigations %d exceed round count %d", sink.mitigations, rc.Rounds)
	}
}
