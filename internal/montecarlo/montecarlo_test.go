package montecarlo

import (
	"math"
	"testing"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/rng"
)

const w79 = 79

func cfg(n, periods int) LossConfig {
	return LossConfig{Entries: n, Window: w79, InsertionProb: 1.0 / w79, Periods: periods}
}

func TestSingleEntryMatchesClosedForm(t *testing.T) {
	// Fig 8: Monte-Carlo per-position loss must match Eq. 7.
	res := SimulateLoss(cfg(1, 400_000), rng.New(1))
	for _, k := range []int{1, 10, 40, 70, 79} {
		got := res.PerPosition[k-1].LossProb()
		want := analytic.LossAtPosition(w79, k)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("position %d: MC loss %.4f vs closed form %.4f", k, got, want)
		}
	}
	// Worst position ~0.63, last position exactly 0.
	if got := res.PerPosition[0].LossProb(); math.Abs(got-0.63) > 0.02 {
		t.Errorf("position 1 loss = %v, want ~0.63", got)
	}
	if got := res.PerPosition[w79-1].LossProb(); got != 0 {
		t.Errorf("position W loss = %v, want 0", got)
	}
}

func TestMultiEntryNeverExceedsModel(t *testing.T) {
	// The analytical model is a worst-case bound: measured loss at any
	// position must stay below the model's overall L (Appendix C's claim).
	for _, n := range []int{2, 4, 6, 16} {
		model := analytic.LossProbability(n, w79, 1.0/w79)
		res := SimulateLoss(cfg(n, 150_000), rng.New(uint64(n)))
		for k, ps := range res.PerPosition {
			resolved := ps.Evicted + ps.Mitigated
			if resolved == 0 {
				continue
			}
			// Per-position binomial noise allowance: 4.5 sigma above the
			// bound (we test 79 positions x 4 sizes, so the max-order
			// statistic needs headroom).
			tol := 4.5 * math.Sqrt(model*(1-model)/float64(resolved))
			if got := ps.LossProb(); got > model+tol {
				t.Errorf("N=%d position %d: measured loss %.4f exceeds model bound %.4f (+%.4f noise)",
					n, k+1, got, model, tol)
			}
		}
	}
}

func TestStartOccupancyMatchesMarkovChain(t *testing.T) {
	// The Appendix-A Markov chain's stationary distribution must agree
	// with the measured start-of-window occupancy histogram.
	for _, n := range []int{2, 4} {
		res := SimulateLoss(cfg(n, 300_000), rng.New(7+uint64(n)))
		got := res.OccupancyDistribution()
		want := analytic.NewLossModel(n, w79, 1.0/w79).StationaryOccupancy()
		for x := 0; x < n; x++ {
			if math.Abs(got[x]-want[x]) > 0.01 {
				t.Errorf("N=%d: P(occ=%d) measured %.4f vs Markov %.4f", n, x, got[x], want[x])
			}
		}
		// Occupancy N at window start is impossible (mitigation precedes).
		if got[n] != 0 {
			t.Errorf("N=%d: start occupancy reached N with prob %v", n, got[n])
		}
	}
}

func TestPositionLossDecreasesInK(t *testing.T) {
	res := SimulateLoss(cfg(4, 300_000), rng.New(3))
	// Compare quartile buckets to smooth noise.
	bucket := func(lo, hi int) float64 {
		var ev, res2 uint64
		for k := lo; k <= hi; k++ {
			ev += res.PerPosition[k-1].Evicted
			res2 += res.PerPosition[k-1].Evicted + res.PerPosition[k-1].Mitigated
		}
		return float64(ev) / float64(res2)
	}
	early, late := bucket(1, 20), bucket(60, 79)
	if early <= late {
		t.Fatalf("early-position loss %.4f not greater than late %.4f", early, late)
	}
}

func TestInsertionRateMatchesP(t *testing.T) {
	res := SimulateLoss(cfg(4, 100_000), rng.New(4))
	var ins uint64
	for _, s := range res.PerPosition {
		ins += s.Insertions
	}
	total := float64(100_000 * w79)
	got := float64(ins) / total
	want := 1.0 / w79
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("insertion rate %.5f, want %.5f", got, want)
	}
}

func TestLossConfigValidation(t *testing.T) {
	bad := []LossConfig{
		{Entries: 0, Window: 79, InsertionProb: 0.1, Periods: 1},
		{Entries: 4, Window: 0, InsertionProb: 0.1, Periods: 1},
		{Entries: 4, Window: 79, InsertionProb: 0, Periods: 1},
		{Entries: 4, Window: 79, InsertionProb: 2, Periods: 1},
		{Entries: 4, Window: 79, InsertionProb: 0.1, Periods: 0},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, c)
				}
			}()
			SimulateLoss(c, rng.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil rng accepted")
			}
		}()
		SimulateLoss(cfg(4, 10), nil)
	}()
}

func TestRoundsFailureBelowAnalyticBound(t *testing.T) {
	// At a small TRH the failure probability is measurable; it must not
	// exceed the analytic pessimistic bound (1-p̂)^(TRH - N*W).
	n, trh := 4, 500
	r := analytic.Analyze("PrIDE", n, w79, 1.0/w79, dram.DDR5().TREFI, analytic.DefaultTargetTTFYears)
	bound := analytic.RoundFailureProb(r, float64(trh))
	res := SimulateRounds(RoundConfig{
		Entries: n, Window: w79, InsertionProb: 1.0 / w79, TRH: trh, Rounds: 40_000,
	}, rng.New(5))
	got := res.FailureProb()
	if got > bound {
		t.Fatalf("measured round failure %.5f exceeds analytic bound %.5f", got, bound)
	}
	// And it must be positive at this TRH (the tracker is not magic).
	if res.Failures == 0 {
		t.Fatal("no failures at TRH=500; simulation suspiciously perfect")
	}
}

func TestRoundsFailureDecreasesWithTRH(t *testing.T) {
	probs := []float64{}
	for _, trh := range []int{100, 200, 350} {
		res := SimulateRounds(RoundConfig{
			Entries: 4, Window: w79, InsertionProb: 1.0 / w79, TRH: trh, Rounds: 30_000,
		}, rng.New(uint64(trh)))
		probs = append(probs, res.FailureProb())
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] >= probs[i-1] {
			t.Fatalf("round failure prob not decreasing: %v", probs)
		}
	}
}

func TestRoundsPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateRounds(RoundConfig{Entries: 0, Window: 1, InsertionProb: 0.1, TRH: 1, Rounds: 1}, rng.New(1))
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := SimulateLoss(cfg(4, 20_000), rng.New(42))
	b := SimulateLoss(cfg(4, 20_000), rng.New(42))
	for k := range a.PerPosition {
		if a.PerPosition[k] != b.PerPosition[k] {
			t.Fatalf("position %d stats differ across identical runs", k+1)
		}
	}
}

func BenchmarkSimulateLoss1KPeriods(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		SimulateLoss(cfg(4, 1000), r)
	}
}
