package montecarlo

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"pride/internal/rng"
)

// workerGrid is the satellite-mandated determinism grid: serial, a small
// pool, and the machine's full width.
func workerGrid() []int {
	grid := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		grid = append(grid, n)
	}
	return grid
}

func TestSimulateLossParallelDeterministicAcrossWorkers(t *testing.T) {
	cases := []LossConfig{
		{Entries: 1, Window: 79, InsertionProb: 1.0 / 79, Periods: 30_000},
		{Entries: 4, Window: 79, InsertionProb: 1.0 / 79, Periods: 50_000},
		{Entries: 6, Window: 40, InsertionProb: 0.05, Periods: 20_000},
		// Below one chunk: the plan degenerates to a single shard.
		{Entries: 2, Window: 30, InsertionProb: 1.0 / 30, Periods: 1000},
	}
	for _, cfg := range cases {
		t.Run(fmt.Sprintf("N=%d_W=%d_P=%d", cfg.Entries, cfg.Window, cfg.Periods), func(t *testing.T) {
			want := SimulateLossParallel(cfg, 42, 1)
			for _, workers := range workerGrid()[1:] {
				got := SimulateLossParallel(cfg, 42, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d diverged from serial:\n got %+v\nwant %+v", workers, got, want)
				}
			}
		})
	}
}

func TestSimulateRoundsParallelDeterministicAcrossWorkers(t *testing.T) {
	cfg := RoundConfig{Entries: 4, Window: 79, InsertionProb: 1.0 / 79, TRH: 2000, Rounds: 4000}
	want := SimulateRoundsParallel(cfg, 7, 1)
	if want.Rounds != cfg.Rounds {
		t.Fatalf("merged rounds = %d, want %d", want.Rounds, cfg.Rounds)
	}
	for _, workers := range workerGrid()[1:] {
		if got := SimulateRoundsParallel(cfg, 7, workers); got != want {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

func TestSimulateLossParallelCountersAddUp(t *testing.T) {
	cfg := LossConfig{Entries: 4, Window: 79, InsertionProb: 1.0 / 79, Periods: 40_000}
	res := SimulateLossParallel(cfg, 3, 4)
	// Every simulated window contributes exactly one start-occupancy count.
	total := uint64(0)
	for _, c := range res.StartOccupancy {
		total += c
	}
	if total != uint64(cfg.Periods) {
		t.Fatalf("start-occupancy counts %d != periods %d", total, cfg.Periods)
	}
	// Each position resolves at most as many entries as it inserted.
	for k, s := range res.PerPosition {
		if s.Evicted+s.Mitigated > s.Insertions {
			t.Fatalf("position %d resolved %d of %d insertions", k+1, s.Evicted+s.Mitigated, s.Insertions)
		}
	}
}

func TestSimulateLossParallelAgreesWithSerialEstimator(t *testing.T) {
	// The sharded engine is a different RNG consumption schedule, not a
	// different estimator: its worst-position loss must agree with the
	// single-stream engine within Monte-Carlo noise.
	cfg := LossConfig{Entries: 1, Window: 79, InsertionProb: 1.0 / 79, Periods: 120_000}
	serial := SimulateLoss(cfg, rng.New(11))
	par := SimulateLossParallel(cfg, 11, 4)
	a, b := serial.PerPosition[0].LossProb(), par.PerPosition[0].LossProb()
	if math.Abs(a-b) > 0.05 {
		t.Fatalf("serial %.4f and parallel %.4f estimates diverge", a, b)
	}
}

func TestSimulateLossParallelPanicsOnBadInput(t *testing.T) {
	good := LossConfig{Entries: 1, Window: 10, InsertionProb: 0.1, Periods: 100}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	bad := good
	bad.Periods = 0
	mustPanic("zero periods", func() { SimulateLossParallel(bad, 1, 1) })
	mustPanic("zero workers", func() { SimulateLossParallel(good, 1, 0) })
	mustPanic("zero rounds", func() {
		SimulateRoundsParallel(RoundConfig{Entries: 1, Window: 10, InsertionProb: 0.1, TRH: 10}, 1, 1)
	})
}

func TestChunkSizesCoverBudgetExactly(t *testing.T) {
	for _, total := range []int{1, 100, 4096, 4097, 60_000, 1_000_000, 10_000_000} {
		sizes := chunkSizes(total, minLossChunkPeriods)
		sum := 0
		for _, s := range sizes {
			if s <= 0 {
				t.Fatalf("total=%d: non-positive chunk %d in %v", total, s, sizes)
			}
			sum += s
		}
		if sum != total {
			t.Fatalf("total=%d: chunks sum to %d", total, sum)
		}
		if len(sizes) > targetChunks+1 {
			t.Fatalf("total=%d: %d chunks exceeds target %d", total, len(sizes), targetChunks)
		}
	}
}
