package montecarlo

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"pride/internal/engine"
	"pride/internal/faultinject"
	"pride/internal/obs"
	"pride/internal/rng"
	"pride/internal/trialrunner"
)

// TestChaosCampaignBitIdentical is the end-to-end acceptance run of the
// fault-injection harness: one seeded schedule tears a checkpoint write,
// panics a trial's first attempt, and trips an event-engine guard — and the
// campaign still completes bit-identical to the undisturbed run, with every
// recovery visible in the obs counters. InsertionProb 1 makes the event and
// exact engines bit-identical, so the forced fallback cannot perturb the
// merged result.
func TestChaosCampaignBitIdentical(t *testing.T) {
	cfg := LossConfig{Entries: 4, Window: 8, InsertionProb: 1, Periods: 20480}
	const seed = 42
	trials := LossCampaignTrials(cfg)
	if trials < 4 {
		t.Fatalf("chunk plan yields %d trials; the schedule below needs >= 4", trials)
	}

	want, err := SimulateLossCampaign(context.Background(), cfg, seed,
		CampaignOptions{Workers: 2, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(7)
	inj.Arm(faultinject.SiteCheckpointWrite, faultinject.Trigger{Nth: 2, Kind: faultinject.KindShortWrite})
	inj.Arm(faultinject.SiteTrialPanic, faultinject.Trigger{Nth: 2, Kind: faultinject.KindPanic})
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Nth: 3})
	camp := obs.NewCampaign("chaos", trials, 2)
	cp := trialrunner.Checkpoint{Path: t.TempDir() + "/chaos.ckpt", RetryBackoff: time.Microsecond}

	got, err := SimulateLossCampaign(context.Background(), cfg, seed, CampaignOptions{
		Workers:    2,
		Checkpoint: cp,
		Progress:   camp,
		Observer:   camp,
		Engine:     engine.Event,
		Retry:      trialrunner.RetryPolicy{Attempts: 2},
		Faults:     inj,
	})
	if err != nil {
		t.Fatalf("chaos campaign did not recover: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos campaign diverged from undisturbed run:\n got %+v\nwant %+v", got, want)
	}

	s := camp.Snapshot()
	if s.TrialRetries < 1 {
		t.Fatalf("TrialRetries = %d, want >= 1 (injected trial panic)", s.TrialRetries)
	}
	if s.EngineFallbacks < 1 {
		t.Fatalf("EngineFallbacks = %d, want >= 1 (injected engine trip)", s.EngineFallbacks)
	}
	if s.CheckpointRetries < 1 {
		t.Fatalf("CheckpointRetries = %d, want >= 1 (injected torn write)", s.CheckpointRetries)
	}
	if s.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0 (every fault recovers)", s.Quarantined)
	}
	if _, err := os.Stat(cp.Path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not removed after recovered completion: %v", err)
	}

	// The whole schedule replays bit-identically from its seed: a second
	// armed run takes the exact same recovery path.
	for _, site := range []string{faultinject.SiteCheckpointWrite, faultinject.SiteTrialPanic, faultinject.SiteEngineTrip} {
		if inj.Fired(site) != 1 {
			t.Fatalf("site %s fired %d times, want 1", site, inj.Fired(site))
		}
	}
}

// TestForcedTripEveryTrialFallsBackToExact forces a guard trip on every
// event-engine trial: the campaign must degrade to the exact reference
// engine wholesale, matching the exact campaign bit-for-bit even at p < 1
// (where the two engines normally diverge draw-by-draw).
func TestForcedTripEveryTrialFallsBackToExact(t *testing.T) {
	cfg := LossConfig{Entries: 4, Window: 16, InsertionProb: 0.25, Periods: 20480}
	const seed = 9
	trials := LossCampaignTrials(cfg)

	exact, err := SimulateLossCampaign(context.Background(), cfg, seed,
		CampaignOptions{Workers: 2, Engine: engine.Exact})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Every: 1})
	camp := obs.NewCampaign("trip-all", trials, 2)
	got, err := SimulateLossCampaign(context.Background(), cfg, seed, CampaignOptions{
		Workers:  2,
		Progress: camp,
		Observer: camp,
		Engine:   engine.Event,
		Faults:   inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exact) {
		t.Fatal("tripped-everywhere event campaign differs from the exact campaign")
	}
	if n := camp.Snapshot().EngineFallbacks; n != int64(trials) {
		t.Fatalf("EngineFallbacks = %d, want %d (one per trial)", n, trials)
	}
}

// TestRoundsForcedTripFallsBackToExact covers the same contract for the
// round-failure campaign shape.
func TestRoundsForcedTripFallsBackToExact(t *testing.T) {
	cfg := RoundConfig{Entries: 4, Window: 16, InsertionProb: 0.5, TRH: 64, Rounds: 2048}
	const seed = 3
	exact, err := SimulateRoundsCampaign(context.Background(), cfg, seed,
		CampaignOptions{Workers: 2, Engine: engine.Exact})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Every: 1})
	got, err := SimulateRoundsCampaign(context.Background(), cfg, seed, CampaignOptions{
		Workers: 2,
		Engine:  engine.Event,
		Faults:  inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exact) {
		t.Fatal("tripped-everywhere rounds campaign differs from the exact campaign")
	}
}

// TestSelfCheckInvariance pins that enabling the runtime guards never
// changes a simulation result — the guards read state, they never write it.
// A healthy engine must also never trip one.
func TestSelfCheckInvariance(t *testing.T) {
	lcfg := LossConfig{Entries: 4, Window: 16, InsertionProb: 0.5, Periods: 4096}
	checked := lcfg
	checked.SelfCheck = true
	if got, want := SimulateLoss(checked, rng.New(11)), SimulateLoss(lcfg, rng.New(11)); !reflect.DeepEqual(got, want) {
		t.Fatal("SelfCheck changed SimulateLoss's result")
	}
	if got, want := SimulateLossEvent(checked, rng.New(11)), SimulateLossEvent(lcfg, rng.New(11)); !reflect.DeepEqual(got, want) {
		t.Fatal("SelfCheck changed SimulateLossEvent's result")
	}

	rcfg := RoundConfig{Entries: 4, Window: 16, InsertionProb: 0.5, TRH: 64, Rounds: 512}
	rchecked := rcfg
	rchecked.SelfCheck = true
	if got, want := SimulateRounds(rchecked, rng.New(11)), SimulateRounds(rcfg, rng.New(11)); !reflect.DeepEqual(got, want) {
		t.Fatal("SelfCheck changed SimulateRounds's result")
	}
	if got, want := SimulateRoundsEvent(rchecked, rng.New(11)), SimulateRoundsEvent(rcfg, rng.New(11)); !reflect.DeepEqual(got, want) {
		t.Fatal("SelfCheck changed SimulateRoundsEvent's result")
	}

	// Campaign-level SelfCheck (the -selfcheck flag path) is equally inert.
	plain, err := SimulateLossCampaign(context.Background(), lcfg, 5, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := SimulateLossCampaign(context.Background(), lcfg, 5, CampaignOptions{Workers: 2, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, guarded) {
		t.Fatal("-selfcheck changed the campaign result")
	}
}
