package montecarlo

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"pride/internal/analytic"
	"pride/internal/engine"
	"pride/internal/rng"
)

// countingStream wraps a stream to count raw draws, pinning the event
// engine's O(insertions) draw complexity.
type countingStream struct {
	inner rng.Source
	draws atomic.Int64
}

func (c *countingStream) Uint64() uint64 {
	c.draws.Add(1)
	return c.inner.Uint64()
}

// TestLossEventBitIdenticalAtPOne is the deterministic cross-check: at
// p = 1 every slot inserts, so the event engine draws once per slot exactly
// like the exact engine, and the two must agree bit-for-bit — counters,
// attribution, and occupancy histogram.
func TestLossEventBitIdenticalAtPOne(t *testing.T) {
	c := LossConfig{Entries: 3, Window: 17, InsertionProb: 1, Periods: 5000}
	exact := SimulateLoss(c, rng.New(7))
	event := SimulateLossEvent(c, rng.New(7))
	if !reflect.DeepEqual(exact, event) {
		t.Fatalf("p=1 engines diverged:\nexact %+v\nevent %+v", exact, event)
	}
}

// TestLossEventMatchesDPModel mirrors the exact engine's DP
// cross-validation: the event engine is an independent implementation of
// the same stochastic process and must agree with the analytic model across
// randomized configurations.
func TestLossEventMatchesDPModel(t *testing.T) {
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%6) + 1
		w := int(wRaw%60) + 20
		p := 1 / float64(w)

		model := analytic.NewLossModel(n, w, p)
		want := 0.0
		pi := model.StationaryOccupancy()
		for x := 0; x < n; x++ {
			want += pi[x] * model.LossFromStart(x, 1)
		}

		res := SimulateLossEvent(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 60_000,
		}, rng.New(seed))
		s := res.PerPosition[0]
		resolved := s.Evicted + s.Mitigated
		if resolved < 200 {
			return true // too few samples at this position; skip
		}
		got := s.LossProb()
		tol := 5*math.Sqrt(want*(1-want)/float64(resolved)) + 0.02
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestLossEventOccupancyMatchesMarkovChain holds the event engine's
// start-of-window occupancy histogram to the Appendix-A stationary
// distribution, the statistic most sensitive to boundary-drain bookkeeping
// mistakes.
func TestLossEventOccupancyMatchesMarkovChain(t *testing.T) {
	check := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%5) + 1
		w := int(wRaw%50) + 30
		p := 1 / float64(w)
		want := analytic.NewLossModel(n, w, p).StationaryOccupancy()
		res := SimulateLossEvent(LossConfig{
			Entries: n, Window: w, InsertionProb: p, Periods: 40_000,
		}, rng.New(seed))
		got := res.OccupancyDistribution()
		for x := 0; x < n; x++ {
			if math.Abs(got[x]-want[x]) > 0.025 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestLossEventConservation pins the internal consistency invariants the
// estimator relies on, independent of any model: every window start is
// sampled exactly once, and every insertion is eventually evicted,
// mitigated, or still buffered (within Entries) at the end.
func TestLossEventConservation(t *testing.T) {
	for _, c := range []LossConfig{
		{Entries: 1, Window: 79, InsertionProb: 1.0 / 79, Periods: 30_000},
		{Entries: 4, Window: 16, InsertionProb: 1.0 / 17, Periods: 30_000},
		{Entries: 2, Window: 30, InsertionProb: 0.4, Periods: 10_000},
		{Entries: 5, Window: 25, InsertionProb: 1e-4, Periods: 50_000}, // mostly-empty: exercises the closed-form drains
	} {
		res := SimulateLossEvent(c, rng.New(uint64(c.Entries)))
		var starts uint64
		for _, s := range res.StartOccupancy {
			starts += s
		}
		if starts != uint64(c.Periods) {
			t.Errorf("%+v: %d start-occupancy samples, want %d", c, starts, c.Periods)
		}
		var ins, evict, mit uint64
		for _, s := range res.PerPosition {
			ins += s.Insertions
			evict += s.Evicted
			mit += s.Mitigated
		}
		unresolved := ins - evict - mit
		if unresolved > uint64(c.Entries) {
			t.Errorf("%+v: %d unresolved insertions exceed capacity %d", c, unresolved, c.Entries)
		}
	}
}

// TestLossEventAgreesWithExactEngine cross-validates the two engines
// directly on the statistic the paper reports (worst-position loss), using
// independent seeds and a two-estimator binomial tolerance.
func TestLossEventAgreesWithExactEngine(t *testing.T) {
	c := cfg(2, 150_000)
	exact := SimulateLoss(c, rng.New(3))
	event := SimulateLossEvent(c, rng.New(4))
	a, b := exact.PerPosition[0], event.PerPosition[0]
	pa, pb := a.LossProb(), b.LossProb()
	ra, rb := float64(a.Evicted+a.Mitigated), float64(b.Evicted+b.Mitigated)
	tol := 5 * math.Sqrt(pa*(1-pa)/ra+pb*(1-pb)/rb)
	if math.Abs(pa-pb) > tol {
		t.Fatalf("worst-position loss: exact %.5f vs event %.5f (tol %.5f)", pa, pb, tol)
	}
	// Insertion totals are binomial with identical parameters.
	var ia, ib float64
	for k := range exact.PerPosition {
		ia += float64(exact.PerPosition[k].Insertions)
		ib += float64(event.PerPosition[k].Insertions)
	}
	n := float64(c.Periods * c.Window)
	p := c.InsertionProb
	sigma := math.Sqrt(n * p * (1 - p))
	if math.Abs(ia-ib) > 10*sigma {
		t.Fatalf("insertion totals: exact %v vs event %v (sigma %v)", ia, ib, sigma)
	}
}

// TestLossEventDrawComplexity pins the whole point of the engine: raw draws
// scale with insertions (one per insertion plus one overshoot per chunk),
// not with activation slots.
func TestLossEventDrawComplexity(t *testing.T) {
	c := cfg(2, 20_000) // ~20k insertions over ~1.6M slots at p=1/79
	src := &countingStream{inner: rng.NewXorShift64Star(5)}
	res := SimulateLossEvent(c, rng.NewStream(src))
	var ins int64
	for _, s := range res.PerPosition {
		ins += int64(s.Insertions)
	}
	if got := src.draws.Load(); got != ins+1 {
		t.Fatalf("event engine drew %d times for %d insertions, want insertions+1", got, ins)
	}
}

// TestRoundsEventMatchesExactDistribution compares the engines' failure
// probabilities with a two-estimator tolerance, across the closed-form edge
// cases (TRH < W: no boundary, certain failure; TRH >> W).
func TestRoundsEventMatchesExactDistribution(t *testing.T) {
	for _, rc := range []RoundConfig{
		{Entries: 2, Window: w79, InsertionProb: 1.0 / w79, TRH: 500, Rounds: 40_000},
		{Entries: 1, Window: w79, InsertionProb: 1.0 / (w79 + 1), TRH: 4999, Rounds: 20_000},
		{Entries: 4, Window: 16, InsertionProb: 1.0 / 17, TRH: 139, Rounds: 40_000},
	} {
		exact := SimulateRounds(rc, rng.New(21))
		event := SimulateRoundsEvent(rc, rng.New(22))
		pa, pb := exact.FailureProb(), event.FailureProb()
		n := float64(rc.Rounds)
		tol := 5*math.Sqrt(pa*(1-pa)/n+pb*(1-pb)/n) + 1e-9
		if math.Abs(pa-pb) > tol {
			t.Errorf("%+v: exact failure %.5f vs event %.5f (tol %.5f)", rc, pa, pb, tol)
		}
	}
	// TRH < W: no mitigation boundary fits in the round, both engines must
	// report certain failure.
	short := RoundConfig{Entries: 2, Window: w79, InsertionProb: 0.5, TRH: w79 - 1, Rounds: 500}
	if got := SimulateRounds(short, rng.New(23)); got.Failures != got.Rounds {
		t.Fatalf("exact engine: %d/%d failures for TRH < W, want all", got.Failures, got.Rounds)
	}
	if got := SimulateRoundsEvent(short, rng.New(24)); got.Failures != got.Rounds {
		t.Fatalf("event engine: %d/%d failures for TRH < W, want all", got.Failures, got.Rounds)
	}
}

// TestRoundsEventBelowAnalyticBound mirrors the exact engine's bound test.
func TestRoundsEventBelowAnalyticBound(t *testing.T) {
	rc := RoundConfig{Entries: 1, Window: w79, InsertionProb: 1.0 / w79, TRH: 1000, Rounds: 60_000}
	res := SimulateRoundsEvent(rc, rng.New(31))
	bound := math.Pow(1-rc.InsertionProb, float64(rc.TRH-2*rc.Window))
	if got := res.FailureProb(); got > bound {
		t.Fatalf("event round failure %.6f exceeds analytic bound %.6f", got, bound)
	}
}

// TestEventCampaignWorkerInvariance: the event engine inherits the chunk
// plan and index-derived streams, so its campaign results must be pure
// functions of (cfg, seed) — bit-identical at any worker count.
func TestEventCampaignWorkerInvariance(t *testing.T) {
	c := cfg(2, 10*4096)
	var want LossResult
	for i, workers := range []int{1, 2, 5} {
		got, err := SimulateLossCampaign(context.Background(), c, 77, CampaignOptions{
			Workers: workers, Engine: engine.Event,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event campaign at %d workers differs from 1 worker", workers)
		}
	}

	rc := RoundConfig{Entries: 2, Window: w79, InsertionProb: 1.0 / w79, TRH: 400, Rounds: 6 * 512}
	a, err := SimulateRoundsCampaign(context.Background(), rc, 9, CampaignOptions{Workers: 1, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRoundsCampaign(context.Background(), rc, 9, CampaignOptions{Workers: 4, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("event rounds campaign: %+v at 1 worker, %+v at 4", a, b)
	}
}

// TestEventCampaignResumeIsBitIdentical is the event-engine version of the
// exact engine's resume guarantee.
func TestEventCampaignResumeIsBitIdentical(t *testing.T) {
	c := cfg(2, 12*4096)
	const seed = 42
	want, err := SimulateLossCampaign(context.Background(), c, seed, CampaignOptions{Workers: 1, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "loss-event.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancellingSink{cancel: cancel, cancelAfter: 4}
	_, err = SimulateLossCampaign(ctx, c, seed, CampaignOptions{
		Workers: 2, Engine: engine.Event, Checkpoint: checkpointAt(path), Progress: sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}

	got, err := SimulateLossCampaign(context.Background(), c, seed, CampaignOptions{
		Workers: 3, Engine: engine.Event, Checkpoint: checkpointAt(path),
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed event campaign differs from uninterrupted run")
	}
}

// TestEngineKeysSeparateCheckpoints: a checkpoint written under one engine
// must never resume under the other — the per-chunk results differ.
func TestEngineKeysSeparateCheckpoints(t *testing.T) {
	c := cfg(2, 8*4096)
	if LossCampaignKey(c, 1, engine.Exact) == LossCampaignKey(c, 1, engine.Event) {
		t.Fatal("loss keys identical across engines")
	}
	rc := RoundConfig{Entries: 2, Window: w79, InsertionProb: 1.0 / w79, TRH: 400, Rounds: 512}
	if RoundsCampaignKey(rc, 1, engine.Exact) == RoundsCampaignKey(rc, 1, engine.Event) {
		t.Fatal("rounds keys identical across engines")
	}

	// Write a partial exact-engine checkpoint, then try to resume it as an
	// event campaign.
	path := filepath.Join(t.TempDir(), "loss.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancellingSink{cancel: cancel, cancelAfter: 1}
	_, _ = SimulateLossCampaign(ctx, c, 7, CampaignOptions{
		Workers: 1, Engine: engine.Exact, Checkpoint: checkpointAt(path), Progress: sink,
	})
	cancel()
	_, err := SimulateLossCampaign(context.Background(), c, 7, CampaignOptions{
		Workers: 1, Engine: engine.Event, Checkpoint: checkpointAt(path),
	})
	if err == nil {
		t.Fatal("event campaign resumed an exact-engine checkpoint")
	}
}
