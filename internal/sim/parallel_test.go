package sim

import (
	"reflect"
	"runtime"
	"testing"

	"pride/internal/patterns"
	"pride/internal/rng"
)

func simWorkerGrid() []int {
	grid := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		grid = append(grid, n)
	}
	return grid
}

func parallelSuite(seed uint64) []*patterns.Pattern {
	return []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.TRRespass(1000, 20, 3),
		patterns.DoubleSided(3000),
		patterns.UniformRandom(4096, 512, rng.New(seed)),
	}
}

func TestMaxDisturbanceOverSuiteParallelDeterministic(t *testing.T) {
	suite := parallelSuite(5)
	cfg := attackCfg(30_000)
	for _, scheme := range []Scheme{PrIDEScheme(), PrIDERFMScheme(16)} {
		t.Run(scheme.Name, func(t *testing.T) {
			want := MaxDisturbanceOverSuiteParallel(cfg, scheme, suite, 2, 77, 1)
			if want.MaxDisturbance == 0 || want.Pattern == "" {
				t.Fatalf("degenerate merged result: %+v", want)
			}
			for _, workers := range simWorkerGrid()[1:] {
				got := MaxDisturbanceOverSuiteParallel(cfg, scheme, suite, 2, 77, workers)
				if got != want {
					t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
				}
			}
		})
	}
}

func TestMaxDisturbanceOverSuiteParallelMatchesSerialShape(t *testing.T) {
	// The parallel adapter derives seeds by index rather than sequentially,
	// so exact equality with the legacy serial function is not expected —
	// but both estimate the same worst case, and PrIDE's bound must hold
	// for either.
	suite := parallelSuite(9)
	cfg := attackCfg(40_000)
	serial := MaxDisturbanceOverSuite(cfg, PrIDEScheme(), suite, 2, 13)
	par := MaxDisturbanceOverSuiteParallel(cfg, PrIDEScheme(), suite, 2, 13, 4)
	if par.Scheme != serial.Scheme {
		t.Fatalf("scheme label %q != %q", par.Scheme, serial.Scheme)
	}
	lo, hi := serial.MaxDisturbance, par.MaxDisturbance
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi > 3*lo {
		t.Fatalf("serial %d and parallel %d worst disturbances implausibly far apart",
			serial.MaxDisturbance, par.MaxDisturbance)
	}
}

func TestMeasureSuiteLossParallelDeterministic(t *testing.T) {
	suite := patterns.Fig18Suite(4096, 150, 21)
	if len(suite) < 3 {
		t.Fatalf("suite too small: %d", len(suite))
	}
	want := MeasureSuiteLossParallel(4, 79, suite, 60_000, 33, 1)
	if len(want) != len(suite) {
		t.Fatalf("measurements = %d, want %d", len(want), len(suite))
	}
	for i, m := range want {
		if m.Pattern != suite[i].Name {
			t.Fatalf("measurement %d is for %q, want %q (suite order broken)", i, m.Pattern, suite[i].Name)
		}
	}
	for _, workers := range simWorkerGrid()[1:] {
		got := MeasureSuiteLossParallel(4, 79, suite, 60_000, 33, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from serial measurements", workers)
		}
	}
}

func TestMaxDisturbanceOverSuiteParallelPanicsOnEmptyGrid(t *testing.T) {
	for name, f := range map[string]func(){
		"empty suite": func() {
			MaxDisturbanceOverSuiteParallel(attackCfg(1000), PrIDEScheme(), nil, 1, 1, 1)
		},
		"zero seeds": func() {
			MaxDisturbanceOverSuiteParallel(attackCfg(1000), PrIDEScheme(), parallelSuite(1), 0, 1, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPatternCloneIsIndependent(t *testing.T) {
	pat := patterns.TRRespass(100, 5, 2)
	pat.Next()
	pat.Next()
	clone := pat.Clone()
	if clone.Name != pat.Name || clone.Len() != pat.Len() {
		t.Fatalf("clone lost identity: %+v", clone)
	}
	// The clone starts rewound and advancing it must not move the parent.
	first := clone.Next()
	if first != pat.Sequence[0] {
		t.Fatalf("clone did not rewind: first = %d, want %d", first, pat.Sequence[0])
	}
	if next := pat.Next(); next != pat.Sequence[2] {
		t.Fatalf("advancing clone moved parent cursor: got %d, want %d", next, pat.Sequence[2])
	}
}
