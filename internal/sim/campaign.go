package sim

import (
	"context"
	"fmt"

	"pride/internal/engine"
	"pride/internal/guard"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/trialrunner"
)

// ProgressSink receives coarse progress counters from a running attack
// campaign, one update per completed trial. internal/obs.Campaign satisfies
// it structurally; a sink is observation-only and cannot perturb the
// bit-for-bit determinism guarantees.
type ProgressSink interface {
	// AddActivations records n freshly-simulated demand activations.
	AddActivations(n int64)
	// AddMitigations records n mitigations dispatched by the controller.
	AddMitigations(n int64)
}

// CampaignOptions configures a cancellable, checkpointable, observable
// attack campaign. The zero value behaves exactly like the plain Parallel
// entry points at trialrunner.DefaultWorkers(): no checkpoint, no metering.
type CampaignOptions struct {
	// Workers is the pool size; 0 selects trialrunner.DefaultWorkers().
	// Workers never affects the result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the experiment's canonical key (configuration + seed,
	// never the worker count).
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives per-trial counter updates.
	Progress ProgressSink
	// Observer, when non-nil, receives per-trial lifecycle callbacks.
	Observer trialrunner.Observer
	// Engine selects the simulation engine: engine.Exact (the zero value)
	// steps every activation; engine.Event skips ahead between insertions.
	// Trials on the event engine are statistically — not bit-for-bit —
	// equivalent to exact trials (identical where the event engine falls
	// back), so the canonical checkpoint key embeds the engine and a
	// campaign never resumes across an engine switch.
	Engine engine.Kind
	// SelfCheck enables runtime invariant guards in the controller, bank
	// and tracker (-selfcheck). An event-engine trial whose guard trips is
	// re-run on the exact engine (the divergence counted via
	// AddEngineFallbacks on Progress) instead of aborting the campaign.
	SelfCheck bool
	// Retry bounds re-execution of panicked/errored trials; see
	// trialrunner.RetryPolicy. Zero keeps single-attempt semantics.
	Retry trialrunner.RetryPolicy
	// Faults, when non-nil, injects deterministic faults into trial
	// execution and checkpoint I/O (chaos testing; faultinject.Injector
	// implements it). Production runs leave it nil.
	Faults trialrunner.TrialFaults
}

func (o CampaignOptions) runnerOpts() trialrunner.Options {
	return trialrunner.Options{Workers: o.Workers, Observer: o.Observer, Retry: o.Retry, Faults: o.Faults}
}

// fallbackSink is the optional Progress capability for counting event→exact
// engine fallbacks (internal/obs.Campaign implements it).
type fallbackSink interface{ AddEngineFallbacks(n int64) }

// engineTripper is the optional Faults capability that forces an invariant
// trip for a given trial index (faultinject.Injector implements it).
type engineTripper interface{ EngineTrip(trial uint64) bool }

// tripForced reports whether the fault schedule forces an engine trip on
// trial i.
func (o CampaignOptions) tripForced(i int) bool {
	if et, ok := o.Faults.(engineTripper); ok {
		return et.EngineTrip(uint64(i))
	}
	return false
}

// countFallback records one event→exact fallback on the progress sink.
func (o CampaignOptions) countFallback() {
	if fs, ok := o.Progress.(fallbackSink); ok {
		fs.AddEngineFallbacks(1)
	}
}

// AttackCampaignKey is the canonical checkpoint key of a Fig 15 suite
// campaign: everything the trial grid and per-trial seeds depend on
// (configuration, scheme name, suite size, seeds per pattern, base seed) and
// nothing else. Pattern suites are deterministic given their size in this
// repository; a caller mixing suites of equal length under one path must set
// Checkpoint.Key itself.
func AttackCampaignKey(cfg AttackConfig, s Scheme, suiteLen, seeds int, baseSeed uint64, eng engine.Kind) string {
	return fmt.Sprintf("sim.attack|scheme=%s|params=%+v|acts=%d|trh=%d|policy=%d|patterns=%d|seeds=%d|seed=%d%s",
		s.Name, cfg.Params, cfg.ACTs, cfg.TRH, cfg.Policy, suiteLen, seeds, baseSeed, engine.KeySuffix(eng))
}

// MaxDisturbanceOverSuiteCampaign is MaxDisturbanceOverSuiteParallel as a
// long-running campaign: the same trial grid (every pattern x `seeds`
// trials) with index-derived per-trial seeds — so the merged result is
// bit-for-bit identical to the Parallel engine at any worker count — plus
// cancellation with graceful drain, per-trial panic isolation, durable
// checkpoint/resume, and progress metering.
func MaxDisturbanceOverSuiteCampaign(ctx context.Context, cfg AttackConfig, s Scheme, suite []*patterns.Pattern, seeds int, baseSeed uint64, opts CampaignOptions) (AttackResult, error) {
	if len(suite) == 0 || seeds < 1 {
		panic(fmt.Sprintf("sim: suite of %d patterns x %d seeds has no trials", len(suite), seeds))
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = AttackCampaignKey(cfg, s, len(suite), seeds, baseSeed, opts.Engine)
	}
	cfg.SelfCheck = cfg.SelfCheck || opts.SelfCheck
	trials := len(suite) * seeds
	var onDone func(t int, r AttackResult) error
	if sink := opts.Progress; sink != nil {
		onDone = func(t int, r AttackResult) error {
			sink.AddActivations(int64(cfg.ACTs))
			sink.AddMitigations(int64(r.Mitigations))
			return nil
		}
	}
	// One scratch arena per worker index: trials run by the same worker
	// reuse the DRAM bank and the pattern clones.
	ropts := opts.runnerOpts()
	scratch := make([]attackScratch, ropts.PoolSize(trials))
	results, err := trialrunner.MapCheckpointedWorker(ctx, trials, func(worker, t int) AttackResult {
		sc := &scratch[worker]
		pat := sc.clone(suite, t/seeds)
		seed := rng.DeriveSeed(baseSeed, uint64(t))
		if opts.Engine != engine.Event {
			return runAttack(cfg, s, pat, seed, sc.bankFor(cfg.Params, cfg.TRH))
		}
		// Guarded event run: a tripped invariant (real or injected) falls
		// back to the exact reference engine against a freshly-reset bank
		// and the same derived seed, so the campaign degrades gracefully
		// instead of aborting.
		forced := opts.tripForced(t)
		r, v := guard.Run(func() AttackResult {
			if forced {
				guard.Failf("sim.event", "forced-trip", "injected engine trip (trial %d)", t)
			}
			return runAttackEvent(cfg, s, pat, seed, sc.bankFor(cfg.Params, cfg.TRH))
		})
		if v == nil {
			return r
		}
		opts.countFallback()
		return runAttack(cfg, s, pat, seed, sc.bankFor(cfg.Params, cfg.TRH))
	}, onDone, ropts, cp)
	if err != nil {
		return AttackResult{}, err
	}
	// Fold from a zero accumulator like the serial loop, so the Pattern
	// headline is only attributed to trials that actually disturbed rows.
	worst := AttackResult{Scheme: s.Name}
	for _, res := range results {
		worst = mergeWorst(worst, res)
	}
	return worst, nil
}

// SuiteLossCampaignKey is the canonical checkpoint key of a Fig 18 suite
// loss campaign. The same suite-identity caveat as AttackCampaignKey
// applies.
func SuiteLossCampaignKey(entries, w, suiteLen, acts int, baseSeed uint64, eng engine.Kind) string {
	return fmt.Sprintf("sim.suiteloss|n=%d|w=%d|patterns=%d|acts=%d|seed=%d%s",
		entries, w, suiteLen, acts, baseSeed, engine.KeySuffix(eng))
}

// totalMitigated sums the mitigation counter across a measurement's rows.
func (m LossMeasurement) totalMitigated() int64 {
	var total int64
	for _, r := range m.Rows {
		total += int64(r.Mitigated)
	}
	return total
}

// MeasureSuiteLossCampaign is MeasureSuiteLossParallel as a campaign, with
// the same cancellation/checkpoint/metering contract as
// MaxDisturbanceOverSuiteCampaign. On a nil error the measurements come back
// in suite order, bit-identical to the Parallel engine.
func MeasureSuiteLossCampaign(ctx context.Context, entries, w int, suite []*patterns.Pattern, acts int, baseSeed uint64, opts CampaignOptions) ([]LossMeasurement, error) {
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = SuiteLossCampaignKey(entries, w, len(suite), acts, baseSeed, opts.Engine)
	}
	var onDone func(i int, m LossMeasurement) error
	if sink := opts.Progress; sink != nil {
		onDone = func(i int, m LossMeasurement) error {
			sink.AddActivations(int64(acts))
			sink.AddMitigations(m.totalMitigated())
			return nil
		}
	}
	// Per-worker row accumulators: each pattern appears once per campaign so
	// clone caching buys nothing here, but the fate table is reused.
	ropts := opts.runnerOpts()
	scratch := make([]lossMeasureScratch, ropts.PoolSize(len(suite)))
	return trialrunner.MapCheckpointedWorker(ctx, len(suite), func(worker, i int) LossMeasurement {
		seed := rng.DeriveSeed(baseSeed, uint64(i))
		if opts.Engine != engine.Event {
			return measurePatternLoss(entries, w, suite[i].Clone(), acts, seed, &scratch[worker], opts.SelfCheck)
		}
		forced := opts.tripForced(i)
		m, v := guard.Run(func() LossMeasurement {
			if forced {
				guard.Failf("sim.event", "forced-trip", "injected engine trip (trial %d)", i)
			}
			return measurePatternLossEvent(entries, w, suite[i].Clone(), acts, seed, &scratch[worker], opts.SelfCheck)
		})
		if v == nil {
			return m
		}
		opts.countFallback()
		return measurePatternLoss(entries, w, suite[i].Clone(), acts, seed, &scratch[worker], opts.SelfCheck)
	}, onDone, ropts, cp)
}
