package sim

import (
	"context"
	"fmt"

	"pride/internal/engine"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/trialrunner"
)

// ProgressSink receives coarse progress counters from a running attack
// campaign, one update per completed trial. internal/obs.Campaign satisfies
// it structurally; a sink is observation-only and cannot perturb the
// bit-for-bit determinism guarantees.
type ProgressSink interface {
	// AddActivations records n freshly-simulated demand activations.
	AddActivations(n int64)
	// AddMitigations records n mitigations dispatched by the controller.
	AddMitigations(n int64)
}

// CampaignOptions configures a cancellable, checkpointable, observable
// attack campaign. The zero value behaves exactly like the plain Parallel
// entry points at trialrunner.DefaultWorkers(): no checkpoint, no metering.
type CampaignOptions struct {
	// Workers is the pool size; 0 selects trialrunner.DefaultWorkers().
	// Workers never affects the result, only how fast it arrives.
	Workers int
	// Checkpoint enables durable resume when its Path is set. An empty Key
	// is filled with the experiment's canonical key (configuration + seed,
	// never the worker count).
	Checkpoint trialrunner.Checkpoint
	// Progress, when non-nil, receives per-trial counter updates.
	Progress ProgressSink
	// Observer, when non-nil, receives per-trial lifecycle callbacks.
	Observer trialrunner.Observer
	// Engine selects the simulation engine: engine.Exact (the zero value)
	// steps every activation; engine.Event skips ahead between insertions.
	// Trials on the event engine are statistically — not bit-for-bit —
	// equivalent to exact trials (identical where the event engine falls
	// back), so the canonical checkpoint key embeds the engine and a
	// campaign never resumes across an engine switch.
	Engine engine.Kind
}

func (o CampaignOptions) runnerOpts() trialrunner.Options {
	return trialrunner.Options{Workers: o.Workers, Observer: o.Observer}
}

// AttackCampaignKey is the canonical checkpoint key of a Fig 15 suite
// campaign: everything the trial grid and per-trial seeds depend on
// (configuration, scheme name, suite size, seeds per pattern, base seed) and
// nothing else. Pattern suites are deterministic given their size in this
// repository; a caller mixing suites of equal length under one path must set
// Checkpoint.Key itself.
func AttackCampaignKey(cfg AttackConfig, s Scheme, suiteLen, seeds int, baseSeed uint64, eng engine.Kind) string {
	return fmt.Sprintf("sim.attack|scheme=%s|params=%+v|acts=%d|trh=%d|policy=%d|patterns=%d|seeds=%d|seed=%d%s",
		s.Name, cfg.Params, cfg.ACTs, cfg.TRH, cfg.Policy, suiteLen, seeds, baseSeed, engine.KeySuffix(eng))
}

// MaxDisturbanceOverSuiteCampaign is MaxDisturbanceOverSuiteParallel as a
// long-running campaign: the same trial grid (every pattern x `seeds`
// trials) with index-derived per-trial seeds — so the merged result is
// bit-for-bit identical to the Parallel engine at any worker count — plus
// cancellation with graceful drain, per-trial panic isolation, durable
// checkpoint/resume, and progress metering.
func MaxDisturbanceOverSuiteCampaign(ctx context.Context, cfg AttackConfig, s Scheme, suite []*patterns.Pattern, seeds int, baseSeed uint64, opts CampaignOptions) (AttackResult, error) {
	if len(suite) == 0 || seeds < 1 {
		panic(fmt.Sprintf("sim: suite of %d patterns x %d seeds has no trials", len(suite), seeds))
	}
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = AttackCampaignKey(cfg, s, len(suite), seeds, baseSeed, opts.Engine)
	}
	trials := len(suite) * seeds
	var onDone func(t int, r AttackResult) error
	if sink := opts.Progress; sink != nil {
		onDone = func(t int, r AttackResult) error {
			sink.AddActivations(int64(cfg.ACTs))
			sink.AddMitigations(int64(r.Mitigations))
			return nil
		}
	}
	// One scratch arena per worker index: trials run by the same worker
	// reuse the DRAM bank and the pattern clones.
	ropts := opts.runnerOpts()
	scratch := make([]attackScratch, ropts.PoolSize(trials))
	results, err := trialrunner.MapCheckpointedWorker(ctx, trials, func(worker, t int) AttackResult {
		sc := &scratch[worker]
		return runAttackEngine(cfg, s, sc.clone(suite, t/seeds), rng.DeriveSeed(baseSeed, uint64(t)),
			sc.bankFor(cfg.Params, cfg.TRH), opts.Engine)
	}, onDone, ropts, cp)
	if err != nil {
		return AttackResult{}, err
	}
	// Fold from a zero accumulator like the serial loop, so the Pattern
	// headline is only attributed to trials that actually disturbed rows.
	worst := AttackResult{Scheme: s.Name}
	for _, res := range results {
		worst = mergeWorst(worst, res)
	}
	return worst, nil
}

// SuiteLossCampaignKey is the canonical checkpoint key of a Fig 18 suite
// loss campaign. The same suite-identity caveat as AttackCampaignKey
// applies.
func SuiteLossCampaignKey(entries, w, suiteLen, acts int, baseSeed uint64, eng engine.Kind) string {
	return fmt.Sprintf("sim.suiteloss|n=%d|w=%d|patterns=%d|acts=%d|seed=%d%s",
		entries, w, suiteLen, acts, baseSeed, engine.KeySuffix(eng))
}

// totalMitigated sums the mitigation counter across a measurement's rows.
func (m LossMeasurement) totalMitigated() int64 {
	var total int64
	for _, r := range m.Rows {
		total += int64(r.Mitigated)
	}
	return total
}

// MeasureSuiteLossCampaign is MeasureSuiteLossParallel as a campaign, with
// the same cancellation/checkpoint/metering contract as
// MaxDisturbanceOverSuiteCampaign. On a nil error the measurements come back
// in suite order, bit-identical to the Parallel engine.
func MeasureSuiteLossCampaign(ctx context.Context, entries, w int, suite []*patterns.Pattern, acts int, baseSeed uint64, opts CampaignOptions) ([]LossMeasurement, error) {
	cp := opts.Checkpoint
	if cp.Key == "" {
		cp.Key = SuiteLossCampaignKey(entries, w, len(suite), acts, baseSeed, opts.Engine)
	}
	var onDone func(i int, m LossMeasurement) error
	if sink := opts.Progress; sink != nil {
		onDone = func(i int, m LossMeasurement) error {
			sink.AddActivations(int64(acts))
			sink.AddMitigations(m.totalMitigated())
			return nil
		}
	}
	// Per-worker row accumulators: each pattern appears once per campaign so
	// clone caching buys nothing here, but the fate table is reused.
	ropts := opts.runnerOpts()
	scratch := make([]lossMeasureScratch, ropts.PoolSize(len(suite)))
	return trialrunner.MapCheckpointedWorker(ctx, len(suite), func(worker, i int) LossMeasurement {
		return measurePatternLossEngine(entries, w, suite[i].Clone(), acts,
			rng.DeriveSeed(baseSeed, uint64(i)), &scratch[worker], opts.Engine)
	}, onDone, ropts, cp)
}
