// Package sim is the full-system attack simulator: it replays attack
// patterns (internal/patterns) through a memory controller
// (internal/memctrl) driving a DRAM bank (internal/dram) protected by a
// tracker (internal/core or internal/baseline), and measures the paper's
// evaluation metrics — Maximum Disturbance for Fig 15 and per-row measured
// loss probability for Fig 18 / Appendix C.
package sim

import (
	"fmt"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/memctrl"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/tracker"
)

// Scheme bundles a tracker factory with the controller settings the scheme
// needs (RFM threshold, mitigation cadence). Factories take a private RNG
// stream so trials with different seeds are independent.
type Scheme struct {
	Name string
	// RFMThreshold configures the controller's RAA counter (0 = no RFM).
	RFMThreshold int
	// MitigationEveryNREF is the REF-to-mitigation cadence (default 1).
	MitigationEveryNREF int
	// New constructs a fresh tracker for one trial.
	New func(p dram.Params, r *rng.Stream) tracker.Tracker
}

// PrIDEScheme returns the paper's default PrIDE configuration as a Scheme.
func PrIDEScheme() Scheme {
	return Scheme{
		Name:                "PrIDE",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			cfg := core.DefaultConfig(p.ACTsPerTREFI())
			cfg.RowBits = p.RowBits
			return core.New(cfg, r)
		},
	}
}

// PrIDERFMScheme returns PrIDE co-designed with RFM at the given threshold.
func PrIDERFMScheme(threshold int) Scheme {
	return Scheme{
		Name:                fmt.Sprintf("PrIDE+RFM%d", threshold),
		RFMThreshold:        threshold,
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			cfg := core.RFMConfig(threshold)
			cfg.RowBits = p.RowBits
			return core.New(cfg, r)
		},
	}
}

// Fig15Schemes returns the tracker line-up of Figure 15: PRoHIT, DSAC,
// PARA-MC, PARFM, and PrIDE without RFM, plus the PrIDE RFM co-designs.
func Fig15Schemes() []Scheme {
	return []Scheme{
		{
			Name:                "PRoHIT",
			MitigationEveryNREF: 1,
			New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
				return baseline.NewPRoHIT(baseline.DefaultPRoHITEntries, p.RowBits,
					baseline.DefaultPRoHITInsertProb, baseline.DefaultPRoHITPromoteProb, r)
			},
		},
		{
			Name:                "DSAC",
			MitigationEveryNREF: 1,
			New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
				return baseline.NewDSAC(baseline.DefaultDSACEntries, p.RowBits, r)
			},
		},
		{
			Name:                "PARA-MC",
			MitigationEveryNREF: 1,
			New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
				return baseline.NewPARA(1/float64(p.ACTsPerTREFI()+1), r)
			},
		},
		{
			Name:                "PARFM",
			MitigationEveryNREF: 1,
			New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
				return baseline.NewPARFM(p.ACTsPerTREFI(), p.RowBits, r)
			},
		},
		PrIDEScheme(),
		PrIDERFMScheme(core.RFM40),
		PrIDERFMScheme(core.RFM16),
	}
}

// TRRScheme returns the vendor-style deterministic TRR baseline (a small
// counter table with periodic-eviction weaknesses). It is not part of the
// paper's Figure 15 line-up, but the adversarial search targets it because
// it represents the deployed in-DRAM trackers the TRRespass/Blacksmith line
// of work bypassed.
func TRRScheme() Scheme {
	return Scheme{
		Name:                "TRR",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			return baseline.NewTRR(baseline.DefaultTRREntries, p.RowBits)
		},
	}
}

// MINTScheme returns the minimalist single-slot interval tracker
// (arXiv:2407.16038): one mitigation per tREFI like PrIDE, but the inserted
// activation is pre-selected per interval instead of drawn per ACT.
func MINTScheme() Scheme {
	return Scheme{
		Name:                "MINT",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			return tracker.NewMINT(p.ACTsPerTREFI(), p.RowBits, r)
		},
	}
}

// MOATScheme returns the per-row-counter PRAC tracker (arXiv:2407.09995)
// with the default ATI/ATO thresholds. MOAT is deterministic and
// pattern-dependent, so the event engine falls back to the exact per-ACT
// loop for it.
func MOATScheme() Scheme {
	return Scheme{
		Name:                "MOAT",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			return tracker.NewMOAT(p.RowsPerBank, p.RowBits, tracker.DefaultMOATATI, tracker.DefaultMOATATO)
		},
	}
}

// ZooSchemes returns the cross-design tracker zoo beyond the paper's own
// line-up: the related-work trackers the shootout compares PrIDE against.
func ZooSchemes() []Scheme {
	return []Scheme{MINTScheme(), MOATScheme()}
}

// SearchSchemes returns the tracker line-up the adversarial search targets:
// the Figure 15 schemes plus the TRR baseline and the tracker zoo.
func SearchSchemes() []Scheme {
	return append(append(Fig15Schemes(), TRRScheme()), ZooSchemes()...)
}

// SchemeByName resolves a scheme from SearchSchemes by its exact name.
func SchemeByName(name string) (Scheme, error) {
	var names []string
	for _, s := range SearchSchemes() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return Scheme{}, fmt.Errorf("sim: unknown scheme %q (have %v)", name, names)
}

// RowPolicy selects the DRAM page policy for a trial.
type RowPolicy int

const (
	// ClosedPage precharges after every access, so every access is an
	// activation — the attacker's best case, and the paper's default
	// assumption (Section IV-D).
	ClosedPage RowPolicy = iota
	// OpenPage keeps the last row open: consecutive accesses to the same
	// row do not re-activate it, so an attacker must interleave rows to
	// hammer (Section IV-D: "there must be an intervening access to
	// another row to cause multiple activations to the same target row").
	OpenPage
)

// AttackConfig parameterizes one attack trial.
type AttackConfig struct {
	Params dram.Params
	// ACTs is the trial length in demand activations (the paper attacks
	// for a full refresh window, ~650K ACTs; tests scale down).
	ACTs int
	// TRH, when positive, enables bit-flip detection at that device
	// threshold.
	TRH int
	// Policy is the page policy; the zero value is the paper's
	// closed-page worst case.
	Policy RowPolicy
	// SelfCheck enables runtime invariant guards in the controller, bank
	// and tracker for this trial (-selfcheck). A violated guard panics
	// with a guard.Violation; campaigns catch event-engine violations and
	// fall back to the exact engine. Not part of any checkpoint key.
	SelfCheck bool
}

// Validate reports whether the config describes a runnable attack trial.
// RunAttack and the campaigns panic on an invalid config (a programming
// error in the calling binary); services validating externally-supplied
// specs call this first and reject the spec instead.
func (c AttackConfig) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("sim: %v", err)
	}
	if c.ACTs <= 0 {
		return fmt.Errorf("sim: ACTs must be positive, got %d", c.ACTs)
	}
	if c.TRH < 0 {
		return fmt.Errorf("sim: TRH must be >= 0, got %d", c.TRH)
	}
	if c.Policy != ClosedPage && c.Policy != OpenPage {
		return fmt.Errorf("sim: unknown row policy %d", c.Policy)
	}
	return nil
}

// AttackResult reports one trial's metrics.
type AttackResult struct {
	Scheme  string
	Pattern string
	// MaxDisturbance is the maximum activations any row received before a
	// mitigation ended its round (Fig 15's metric).
	MaxDisturbance int
	// MaxHammers is the peak disturbance any victim accumulated,
	// including transitive (silent) activations.
	MaxHammers int
	// Flips is the number of Rowhammer failures (when TRH > 0).
	Flips int
	// Mitigations is the number of mitigations dispatched.
	Mitigations uint64
}

// attackScratch is the reusable working state of one campaign worker: the
// DRAM bank (reset between trials) and lazily-built per-suite-index pattern
// clones, so a long campaign allocates its row arrays and clones once per
// worker instead of once per trial. A scratch is bound to one campaign's
// fixed AttackConfig; nothing in it ever reaches a result, so worker-count
// invariance is untouched.
type attackScratch struct {
	bank   *dram.Bank
	clones []*patterns.Pattern
}

// bankFor returns a freshly-reset bank for the campaign's fixed parameters,
// allocating it on the worker's first trial.
func (sc *attackScratch) bankFor(p dram.Params, trh int) *dram.Bank {
	if sc.bank == nil {
		sc.bank = dram.MustNewBank(p, trh)
	} else {
		sc.bank.Reset()
	}
	return sc.bank
}

// clone returns this worker's private clone of suite[i], building it on
// first use. RunAttack resets the pattern cursor itself, so reuse across
// trials is safe.
func (sc *attackScratch) clone(suite []*patterns.Pattern, i int) *patterns.Pattern {
	if len(sc.clones) != len(suite) {
		sc.clones = make([]*patterns.Pattern, len(suite))
	}
	if sc.clones[i] == nil {
		sc.clones[i] = suite[i].Clone()
	}
	return sc.clones[i]
}

// RunAttack replays one pattern against one scheme for cfg.ACTs activations
// and returns the measured metrics.
func RunAttack(cfg AttackConfig, s Scheme, pat *patterns.Pattern, seed uint64) AttackResult {
	return runAttack(cfg, s, pat, seed, nil)
}

// runAttack is RunAttack against a caller-supplied, freshly-reset bank
// matching cfg (nil allocates one), so campaign workers can reuse a bank
// across trials.
func runAttack(cfg AttackConfig, s Scheme, pat *patterns.Pattern, seed uint64, bank *dram.Bank) AttackResult {
	if cfg.ACTs <= 0 {
		panic(fmt.Sprintf("sim: ACTs must be positive, got %d", cfg.ACTs))
	}
	if bank == nil {
		bank = dram.MustNewBank(cfg.Params, cfg.TRH)
	}
	trk := s.New(cfg.Params, rng.New(seed))
	mcfg := memctrl.DefaultConfig(cfg.Params)
	mcfg.RFMThreshold = s.RFMThreshold
	if s.MitigationEveryNREF > 0 {
		mcfg.MitigationEveryNREF = s.MitigationEveryNREF
	}
	mcfg.SelfCheck = cfg.SelfCheck
	ctrl := memctrl.New(mcfg, bank, trk)
	steppedReplay(ctrl, pat, cfg)
	return attackResult(s, pat, bank, ctrl)
}

// steppedReplay is the exact per-ACT attack loop: one pattern step, one
// controller activation (modulo open-row hits) per slot.
func steppedReplay(ctrl *memctrl.Controller, pat *patterns.Pattern, cfg AttackConfig) {
	pat.Reset()
	openRow := -1
	for i := 0; i < cfg.ACTs; i++ {
		row := pat.Next()
		if cfg.Policy == OpenPage {
			// Same-row accesses hit the open row buffer: no activation,
			// no hammering, no tracker event. The slot is still consumed
			// (the access occupies the command bus).
			if row == openRow {
				continue
			}
			openRow = row
		}
		ctrl.Activate(row)
	}
}

// attackResult collects one trial's metrics from the bank and controller.
func attackResult(s Scheme, pat *patterns.Pattern, bank *dram.Bank, ctrl *memctrl.Controller) AttackResult {
	return AttackResult{
		Scheme:         s.Name,
		Pattern:        pat.Name,
		MaxDisturbance: bank.MaxDisturbance(),
		MaxHammers:     bank.MaxHammers(),
		Flips:          len(bank.Flips()),
		Mitigations:    ctrl.Stats().Mitigations,
	}
}

// MaxDisturbanceOverSuite runs every pattern in the suite against a scheme
// across `seeds` trials each and returns the worst disturbance observed —
// one bar of Figure 15.
func MaxDisturbanceOverSuite(cfg AttackConfig, s Scheme, suite []*patterns.Pattern, seeds int, baseSeed uint64) AttackResult {
	worst := AttackResult{Scheme: s.Name}
	seedStream := rng.New(baseSeed)
	for _, pat := range suite {
		for t := 0; t < seeds; t++ {
			res := RunAttack(cfg, s, pat, seedStream.Uint64())
			if res.MaxDisturbance > worst.MaxDisturbance {
				worst.MaxDisturbance = res.MaxDisturbance
				worst.Pattern = pat.Name
			}
			if res.MaxHammers > worst.MaxHammers {
				worst.MaxHammers = res.MaxHammers
			}
			worst.Flips += res.Flips
			worst.Mitigations += res.Mitigations
		}
	}
	return worst
}
