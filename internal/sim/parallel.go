package sim

import (
	"context"

	"pride/internal/patterns"
	"pride/internal/trialrunner"
)

// The parallel adapters shard a suite evaluation into one trial per
// (pattern, seed-index) pair. Trial t always replays a private clone of
// suite[t/seeds] with the index-derived stream seed rng.DeriveSeed(baseSeed,
// t), and partial results merge in trial order, so the output is a pure
// function of (cfg, scheme, suite, seeds, baseSeed) — the worker count only
// changes wall-clock time. workers == 1 runs every trial inline on the
// calling goroutine.

// mergeWorst folds trial results exactly like the serial suite loop:
// first-wins maximum for the disturbance headline (and its pattern
// attribution), running maximum for peak hammers, sums for flips and
// mitigations.
func mergeWorst(acc, next AttackResult) AttackResult {
	if next.MaxDisturbance > acc.MaxDisturbance {
		acc.MaxDisturbance = next.MaxDisturbance
		acc.Pattern = next.Pattern
	}
	if next.MaxHammers > acc.MaxHammers {
		acc.MaxHammers = next.MaxHammers
	}
	acc.Flips += next.Flips
	acc.Mitigations += next.Mitigations
	return acc
}

// MaxDisturbanceOverSuiteParallel is the worker-pool counterpart of
// MaxDisturbanceOverSuite: the same trial grid (every pattern x `seeds`
// trials), with per-trial seeds derived by index instead of drawn
// sequentially, executed on `workers` goroutines. Fail-loud convenience form
// of MaxDisturbanceOverSuiteCampaign: no cancellation, no checkpoint, and a
// panicking trial takes the process down with a stack naming the trial.
func MaxDisturbanceOverSuiteParallel(cfg AttackConfig, s Scheme, suite []*patterns.Pattern, seeds int, baseSeed uint64, workers int) AttackResult {
	if err := trialrunner.ValidateWorkers(workers); err != nil {
		panic(err)
	}
	worst, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, s, suite, seeds, baseSeed, CampaignOptions{Workers: workers})
	trialrunner.MustPanicFree(err)
	return worst
}

// MeasureSuiteLossParallel runs the Fig 18 / Appendix C loss measurement for
// every trace in the suite on `workers` goroutines and returns the
// measurements in suite order. Trace i always gets seed
// rng.DeriveSeed(baseSeed, i) and a private pattern clone. Fail-loud
// convenience form of MeasureSuiteLossCampaign.
func MeasureSuiteLossParallel(entries, w int, suite []*patterns.Pattern, acts int, baseSeed uint64, workers int) []LossMeasurement {
	if err := trialrunner.ValidateWorkers(workers); err != nil {
		panic(err)
	}
	ms, err := MeasureSuiteLossCampaign(context.Background(), entries, w, suite, acts, baseSeed, CampaignOptions{Workers: workers})
	trialrunner.MustPanicFree(err)
	return ms
}
