package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pride/internal/trialrunner"
)

// attackSink is a ProgressSink that can cancel a context after a fixed
// number of completed trials — the test stand-in for a SIGINT landing
// mid-campaign.
type attackSink struct {
	mu          sync.Mutex
	cancel      context.CancelFunc
	cancelAfter int
	trials      int
	activations int64
	mitigations int64
}

func (s *attackSink) AddActivations(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trials++
	s.activations += n
	if s.cancel != nil && s.trials == s.cancelAfter {
		s.cancel()
	}
}

func (s *attackSink) AddMitigations(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mitigations += n
}

func TestAttackCampaignMatchesParallel(t *testing.T) {
	suite := parallelSuite(5)
	cfg := attackCfg(10_000)
	want := MaxDisturbanceOverSuiteParallel(cfg, PrIDEScheme(), suite, 2, 77, 2)
	got, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, 2, 77, CampaignOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("campaign %+v differs from parallel %+v", got, want)
	}
}

func TestAttackCampaignResumeIsBitIdentical(t *testing.T) {
	suite := parallelSuite(9)
	cfg := attackCfg(5_000)
	const seeds, baseSeed = 3, 13
	want := MaxDisturbanceOverSuiteParallel(cfg, PrIDEScheme(), suite, seeds, baseSeed, 1)

	cancelPoints := []int{2, 7, 11}
	if testing.Short() {
		cancelPoints = []int{7}
	}
	for _, cancelAfter := range cancelPoints {
		for _, workers := range []int{1, 4} {
			path := filepath.Join(t.TempDir(), "attack.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			sink := &attackSink{cancel: cancel, cancelAfter: cancelAfter}
			_, err := MaxDisturbanceOverSuiteCampaign(ctx, cfg, PrIDEScheme(), suite, seeds, baseSeed, CampaignOptions{
				Workers:    workers,
				Checkpoint: trialrunner.Checkpoint{Path: path},
				Progress:   sink,
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelAfter=%d workers=%d: err = %v, want Canceled", cancelAfter, workers, err)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: no checkpoint after interrupt: %v", cancelAfter, workers, err)
			}

			got, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, seeds, baseSeed, CampaignOptions{
				Workers:    workers%3 + 1,
				Checkpoint: trialrunner.Checkpoint{Path: path},
			})
			if err != nil {
				t.Fatalf("cancelAfter=%d workers=%d: resume failed: %v", cancelAfter, workers, err)
			}
			if got != want {
				t.Fatalf("cancelAfter=%d workers=%d: resumed %+v differs from uninterrupted %+v",
					cancelAfter, workers, got, want)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cancelAfter=%d workers=%d: completed campaign left its checkpoint behind", cancelAfter, workers)
			}
		}
	}
}

func TestSuiteLossCampaignMatchesParallelAndMeters(t *testing.T) {
	suite := parallelSuite(21)
	const acts, baseSeed = 30_000, 3
	want := MeasureSuiteLossParallel(64, 79, suite, acts, baseSeed, 2)

	sink := &attackSink{}
	got, err := MeasureSuiteLossCampaign(context.Background(), 64, 79, suite, acts, baseSeed, CampaignOptions{Workers: 3, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("campaign measurements differ from parallel engine")
	}
	if sink.activations != int64(len(suite))*acts {
		t.Fatalf("sink saw %d activations, campaign replayed %d", sink.activations, int64(len(suite))*acts)
	}
	if sink.mitigations == 0 {
		t.Fatal("no mitigations metered over the whole suite")
	}
}

func TestSuiteLossCampaignResumeIsBitIdentical(t *testing.T) {
	suite := parallelSuite(4)
	const acts, baseSeed = 20_000, 17
	want := MeasureSuiteLossParallel(64, 79, suite, acts, baseSeed, 1)

	path := filepath.Join(t.TempDir(), "suiteloss.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	sink := &attackSink{cancel: cancel, cancelAfter: 1}
	_, err := MeasureSuiteLossCampaign(ctx, 64, 79, suite, acts, baseSeed, CampaignOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: path},
		Progress:   sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}

	got, err := MeasureSuiteLossCampaign(context.Background(), 64, 79, suite, acts, baseSeed, CampaignOptions{
		Workers:    2,
		Checkpoint: trialrunner.Checkpoint{Path: path},
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed suite-loss measurements differ from uninterrupted run")
	}
}
