package sim

import (
	"math"
	"testing"

	"pride/internal/analytic"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/tracker"
)

func simParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 4096
	p.RowBits = 12
	return p
}

func attackCfg(acts int) AttackConfig {
	return AttackConfig{Params: simParams(), ACTs: acts}
}

func TestPrIDEBoundsDisturbanceUnderSingleSided(t *testing.T) {
	// A single-sided attack for several tREFW-scale windows: PrIDE's max
	// disturbance must stay below its analytic TRH* (3.83K); the paper
	// measures ~1.3K across its full suite.
	res := RunAttack(attackCfg(400_000), PrIDEScheme(), patterns.SingleSided(2000), 1)
	trh := analytic.EvaluateScheme(analytic.SchemePrIDE, simParams(), analytic.DefaultTargetTTFYears)
	if float64(res.MaxDisturbance) > trh.TRHStar {
		t.Fatalf("PrIDE max disturbance %d exceeds analytic TRH* %.0f", res.MaxDisturbance, trh.TRHStar)
	}
	if res.Mitigations == 0 {
		t.Fatal("no mitigations dispatched")
	}
}

func TestPrIDEBoundsDisturbanceUnderTRRespass(t *testing.T) {
	res := RunAttack(attackCfg(400_000), PrIDEScheme(), patterns.TRRespass(1000, 40, 3), 2)
	trh := analytic.EvaluateScheme(analytic.SchemePrIDE, simParams(), analytic.DefaultTargetTTFYears)
	if float64(res.MaxDisturbance) > trh.TRHStar {
		t.Fatalf("PrIDE under TRRespass: disturbance %d exceeds TRH* %.0f", res.MaxDisturbance, trh.TRHStar)
	}
}

// blacksmithBreaker is the crafted frequency-domain pattern our suite uses
// to demonstrate the Fig 15 breaks: high- and low-frequency aggressor pairs
// plus decoys, which keeps frequency-ranked trackers chasing the wrong rows.
func blacksmithBreaker() *patterns.Pattern {
	return patterns.Blacksmith(patterns.BlacksmithConfig{
		Base: 1000, Pairs: 8, Period: 32,
		Frequencies: []int{2, 2, 4, 4, 8, 8, 16, 16},
		Phases:      []int{0, 1, 0, 2, 0, 4, 0, 8},
		Amplitudes:  []int{4, 4, 2, 2, 1, 1, 1, 1},
		DecoyRows:   []int{3000, 3010, 3020, 3030},
	})
}

func TestCraftedPatternsBreakPRoHITButNotPrIDE(t *testing.T) {
	// The Fig 15 shape: against crafted patterns, PRoHIT's counter-driven
	// ranking starves the true aggressors (disturbance grows linearly
	// with attack duration — unbounded), while PrIDE's disturbance stays
	// flat and below its analytic TRH*.
	trh := analytic.EvaluateScheme(analytic.SchemePrIDE, simParams(), analytic.DefaultTargetTTFYears)
	for _, pat := range []*patterns.Pattern{
		blacksmithBreaker(),
		patterns.CounterStarver(1000, 30, 10, 40, 1),
	} {
		short := RunAttack(attackCfg(300_000), fig15ByName(t, "PRoHIT"), pat, 3)
		long := RunAttack(attackCfg(600_000), fig15ByName(t, "PRoHIT"), pat, 3)
		pride := RunAttack(attackCfg(600_000), PrIDEScheme(), pat, 3)
		if long.MaxDisturbance <= 2*pride.MaxDisturbance {
			t.Errorf("%s: PRoHIT disturbance %d not clearly worse than PrIDE %d",
				pat.Name, long.MaxDisturbance, pride.MaxDisturbance)
		}
		// Unbounded growth: doubling the attack length nearly doubles
		// PRoHIT's worst disturbance (the aggressors are simply never
		// mitigated), while PrIDE's stays flat.
		if float64(long.MaxDisturbance) < 1.5*float64(short.MaxDisturbance) {
			t.Errorf("%s: PRoHIT disturbance did not grow with runtime (%d -> %d)",
				pat.Name, short.MaxDisturbance, long.MaxDisturbance)
		}
		if float64(pride.MaxDisturbance) > trh.TRHStar {
			t.Errorf("%s: PrIDE disturbance %d exceeds TRH* %.0f",
				pat.Name, pride.MaxDisturbance, trh.TRHStar)
		}
	}
}

func TestPrIDEDisturbanceIsPatternIndependent(t *testing.T) {
	// The paper's central claim (Fig 1c): PrIDE's worst-case behaviour
	// does not depend on the access pattern. Across wildly different
	// attack families, PrIDE's max disturbance stays in a narrow band,
	// while the counter-driven PRoHIT's spans an order of magnitude.
	pats := []*patterns.Pattern{
		patterns.SingleSided(4000),
		patterns.TRRespass(1000, 40, 3),
		blacksmithBreaker(),
		patterns.CounterStarver(1000, 30, 10, 40, 1),
	}
	spread := func(s Scheme) (lo, hi int) {
		lo = 1 << 30
		for i, pat := range pats {
			res := RunAttack(attackCfg(400_000), s, pat, 100+uint64(i))
			if res.MaxDisturbance < lo {
				lo = res.MaxDisturbance
			}
			if res.MaxDisturbance > hi {
				hi = res.MaxDisturbance
			}
		}
		return lo, hi
	}
	pLo, pHi := spread(PrIDEScheme())
	if float64(pHi) > 3.0*float64(pLo) {
		t.Fatalf("PrIDE disturbance spread [%d,%d] too pattern-dependent", pLo, pHi)
	}
	cLo, cHi := spread(fig15ByName(t, "PRoHIT"))
	if float64(cHi) < 5.0*float64(cLo) {
		t.Fatalf("PRoHIT disturbance spread [%d,%d] unexpectedly pattern-independent", cLo, cHi)
	}
}

func fig15ByName(t *testing.T, name string) Scheme {
	t.Helper()
	for _, s := range Fig15Schemes() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("scheme %s not in Fig15Schemes", name)
	return Scheme{}
}

func TestFig15SchemeLineup(t *testing.T) {
	want := []string{"PRoHIT", "DSAC", "PARA-MC", "PARFM", "PrIDE", "PrIDE+RFM40", "PrIDE+RFM16"}
	got := Fig15Schemes()
	if len(got) != len(want) {
		t.Fatalf("schemes = %d, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("scheme[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestRFMReducesDisturbance(t *testing.T) {
	// Fig 15: PrIDE ~1.3K, RFM40 ~566, RFM16 ~266. Assert the ordering
	// and rough magnitudes under a hostile suite subset.
	suite := patterns.Fig15Suite(4096, 12, 11)
	cfg := attackCfg(150_000)
	base := MaxDisturbanceOverSuite(cfg, PrIDEScheme(), suite, 2, 101)
	rfm40 := MaxDisturbanceOverSuite(cfg, PrIDERFMScheme(40), suite, 2, 102)
	rfm16 := MaxDisturbanceOverSuite(cfg, PrIDERFMScheme(16), suite, 2, 103)
	if !(rfm16.MaxDisturbance < rfm40.MaxDisturbance && rfm40.MaxDisturbance < base.MaxDisturbance) {
		t.Fatalf("disturbance ordering violated: RFM16 %d, RFM40 %d, PrIDE %d",
			rfm16.MaxDisturbance, rfm40.MaxDisturbance, base.MaxDisturbance)
	}
	// Magnitude: PrIDE's worst disturbance stays under its TRH* of ~3.8K
	// and typically lands near the paper's 1.3K.
	if base.MaxDisturbance > 3830 {
		t.Fatalf("PrIDE suite disturbance %d exceeds TRH*", base.MaxDisturbance)
	}
}

func TestPRoHITExceedsPrIDEOnSuite(t *testing.T) {
	// Fig 15's headline, over the randomized suite: the pattern-dependent
	// tracker's worst case is much worse than PrIDE's.
	suite := patterns.Fig15Suite(4096, 9, 13)
	suite = append(suite, blacksmithBreaker())
	cfg := attackCfg(200_000)
	pride := MaxDisturbanceOverSuite(cfg, PrIDEScheme(), suite, 1, 7)
	res := MaxDisturbanceOverSuite(cfg, fig15ByName(t, "PRoHIT"), suite, 1, 7)
	if res.MaxDisturbance <= pride.MaxDisturbance {
		t.Errorf("PRoHIT suite disturbance %d not worse than PrIDE's %d",
			res.MaxDisturbance, pride.MaxDisturbance)
	}
}

func TestHalfDoubleDefeatedByMitigationLevels(t *testing.T) {
	// Transitive attack: hammering far aggressors (distance 2) drives
	// mitigations whose silent refreshes hammer the distance-1 rows'
	// neighbours. PrIDE's multi-level re-insertion caps the victim's
	// hammer count; a PrIDE WITHOUT transitive protection lets it grow.
	pat := patterns.HalfDouble(2000, 16)
	cfg := AttackConfig{Params: simParams(), ACTs: 600_000}

	with := RunAttack(cfg, PrIDEScheme(), pat, 21)

	noProt := PrIDEScheme()
	noProt.Name = "PrIDE-noTransitive"
	noProt.New = func(p dram.Params, r *rng.Stream) tracker.Tracker {
		c := core.DefaultConfig(p.ACTsPerTREFI())
		c.RowBits = p.RowBits
		c.TransitiveProtection = false
		return core.New(c, r)
	}
	without := RunAttack(cfg, noProt, pat, 21)

	if with.MaxHammers >= without.MaxHammers {
		t.Fatalf("transitive protection did not reduce peak hammers: with=%d without=%d",
			with.MaxHammers, without.MaxHammers)
	}
}

func TestVictimSharingIneffectiveAgainstPrIDE(t *testing.T) {
	// Section VI: with PrIDE, the shared victim's total hammers are
	// bounded because any aggressor's mitigation refreshes it. Compare
	// the victim's peak hammer count under BR=1 sharing to 2x the
	// single-sided disturbance bound.
	pat := patterns.VictimSharing(2000, 1)
	res := RunAttack(attackCfg(400_000), PrIDEScheme(), pat, 31)
	trh := analytic.EvaluateScheme(analytic.SchemePrIDE, simParams(), analytic.DefaultTargetTTFYears)
	if float64(res.MaxHammers) > trh.TRHStar {
		t.Fatalf("victim-sharing peak hammers %d exceed TRH* %.0f", res.MaxHammers, trh.TRHStar)
	}
}

func TestFlipDetectionAtLowTRH(t *testing.T) {
	// With an absurdly low device TRH, even PrIDE cannot prevent flips —
	// the failure-detection plumbing must report them.
	cfg := AttackConfig{Params: simParams(), ACTs: 100_000, TRH: 64}
	res := RunAttack(cfg, PrIDEScheme(), patterns.DoubleSided(2000), 41)
	if res.Flips == 0 {
		t.Fatal("no flips detected at TRH=64")
	}
}

func TestRunAttackDeterministic(t *testing.T) {
	pat := patterns.TRRespass(500, 8, 3)
	a := RunAttack(attackCfg(50_000), PrIDEScheme(), pat, 99)
	b := RunAttack(attackCfg(50_000), PrIDEScheme(), pat, 99)
	if a != b {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestRunAttackPanicsOnBadACTs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunAttack(AttackConfig{Params: simParams()}, PrIDEScheme(), patterns.SingleSided(1), 1)
}

func TestMeasurePatternLossBelowModel(t *testing.T) {
	// Appendix C / Fig 18: for adversarial traces, the measured loss
	// probability never exceeds the analytical estimate.
	for _, n := range []int{4, 6, 16} {
		model := analytic.LossProbability(n, 79, 1.0/79)
		suite := patterns.Fig18Suite(4096, 100, 17) // 9 traces
		for _, pat := range suite {
			m := MeasurePatternLoss(n, 79, pat, 400_000, 55)
			worst := m.WorstRow()
			resolved := worst.Evicted + worst.Mitigated
			if resolved < 50 {
				continue // too few samples to compare
			}
			noise := 4 * math.Sqrt(model*(1-model)/float64(resolved))
			if got := worst.LossProb(); got > model+noise {
				t.Errorf("N=%d pattern %s: measured loss %.4f exceeds model %.4f (+%.4f)",
					n, pat.Name, got, model, noise)
			}
		}
	}
}

func TestMeasurePatternLossAccounting(t *testing.T) {
	pat := patterns.SingleSided(123)
	m := MeasurePatternLoss(4, 79, pat, 200_000, 5)
	if len(m.Rows) != 1 {
		t.Fatalf("rows measured = %d, want 1", len(m.Rows))
	}
	r := m.Rows[0]
	if r.Row != 123 {
		t.Fatalf("row = %d, want 123", r.Row)
	}
	if r.Inserted == 0 || r.Inserted < r.Evicted+r.Mitigated {
		t.Fatalf("inconsistent accounting: %+v", r)
	}
}

func TestMaxDisturbanceOverSuiteTracksWorstPattern(t *testing.T) {
	suite := []*patterns.Pattern{
		patterns.SingleSided(100),
		patterns.TRRespass(1000, 30, 3),
	}
	res := MaxDisturbanceOverSuite(attackCfg(30_000), fig15ByName(t, "DSAC"), suite, 1, 1)
	if res.Pattern == "" || res.MaxDisturbance == 0 {
		t.Fatalf("suite result empty: %+v", res)
	}
}

func TestOpenPagePolicyBlocksSingleSided(t *testing.T) {
	// Section IV-D: with an open-page policy, repeated accesses to one
	// row hit the row buffer and never re-activate — a pure single-sided
	// stream produces exactly one ACT.
	cfg := attackCfg(10_000)
	cfg.Policy = OpenPage
	res := RunAttack(cfg, PrIDEScheme(), patterns.SingleSided(2000), 1)
	if res.MaxDisturbance != 1 {
		t.Fatalf("open-page single-sided disturbance = %d, want 1", res.MaxDisturbance)
	}
	// A double-sided pattern alternates rows, so every access activates:
	// open-page does not help.
	res2 := RunAttack(cfg, PrIDEScheme(), patterns.DoubleSided(2000), 1)
	closed := attackCfg(10_000)
	res3 := RunAttack(closed, PrIDEScheme(), patterns.DoubleSided(2000), 1)
	if res2.MaxDisturbance < res3.MaxDisturbance/2 {
		t.Fatalf("open-page should not blunt a double-sided attack: %d vs %d",
			res2.MaxDisturbance, res3.MaxDisturbance)
	}
}

func TestOpenPageHalvesPerRowRate(t *testing.T) {
	// Under open-page, an ABAB pattern still activates every access, but
	// an AAABBB-style burst pattern collapses to one ACT per burst: the
	// per-aggressor activation rate is bounded by half the accesses, the
	// W/2 bound of Section IV-D.
	burst := &patterns.Pattern{
		Name:       "bursty",
		Sequence:   []int{2000, 2000, 2000, 2002, 2002, 2002},
		Aggressors: []int{2000, 2002},
	}
	cfg := attackCfg(60_000)
	cfg.Policy = OpenPage
	res := RunAttack(cfg, PrIDEScheme(), burst, 2)
	closed := attackCfg(60_000)
	resClosed := RunAttack(closed, PrIDEScheme(), burst, 2)
	// The per-aggressor ACT rate drops to 1/3 (one ACT per 3-access
	// burst); the peak hammer count drops with it, though not linearly
	// (it also depends on when mitigations land).
	if res.MaxHammers >= resClosed.MaxHammers {
		t.Fatalf("open-page peak hammers %d not below closed-page %d",
			res.MaxHammers, resClosed.MaxHammers)
	}
}

func TestBlastRadiusTwoVictimSharing(t *testing.T) {
	// Section VI, BR=2: four aggressors share the victim, and every one of
	// their activations is a chance to refresh it (level-1 mitigation of
	// B/D covers C directly; with blast radius 2, mitigations refresh two
	// rows per side). The victim's peak hammers stay bounded by TRH*.
	p := simParams()
	p.BlastRadius = 2
	pat := patterns.VictimSharing(2000, 2)
	res := RunAttack(AttackConfig{Params: p, ACTs: 300_000}, PrIDEScheme(), pat, 61)
	trh := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	if float64(res.MaxHammers) > trh.TRHStar {
		t.Fatalf("BR=2 victim peak hammers %d exceed TRH* %.0f", res.MaxHammers, trh.TRHStar)
	}
	if res.Mitigations == 0 {
		t.Fatal("no mitigations under BR=2 sharing attack")
	}
}
