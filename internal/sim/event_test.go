package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/tracker"
)

// pOneScheme is PrIDE with insertion probability forced to 1: the one
// configuration where the event engine's geometric gaps (always zero) make
// it consume the shared stream exactly like the exact engine, so trials
// must be bit-identical.
func pOneScheme() Scheme {
	return Scheme{
		Name:                "PrIDE-p1",
		MitigationEveryNREF: 1,
		New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
			cfg := core.DefaultConfig(p.ACTsPerTREFI())
			cfg.RowBits = p.RowBits
			cfg.InsertionProb = 1
			return core.New(cfg, r)
		},
	}
}

func TestRunAttackEngineBitIdenticalAtPOne(t *testing.T) {
	cfg := attackCfg(60_000)
	cfg.TRH = 900 // exercise flip accounting through HammerN too
	for _, pat := range []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.TRRespass(1000, 40, 3),
		blacksmithBreaker(),
	} {
		exact := RunAttackEngine(cfg, pOneScheme(), pat, 5, engine.Exact)
		event := RunAttackEngine(cfg, pOneScheme(), pat, 5, engine.Event)
		if !reflect.DeepEqual(exact, event) {
			t.Errorf("%s: p=1 engines diverged:\nexact %+v\nevent %+v", pat.Name, exact, event)
		}
	}
}

// blacksmithTight is a Blacksmith schedule with every pair firing in every
// slot: the generated sequence has a small fundamental cycle (6 rows), so
// unlike blacksmithBreaker its idle stretches retire through the batched
// multi-row path.
func blacksmithTight() *patterns.Pattern {
	return patterns.Blacksmith(patterns.BlacksmithConfig{
		Base:        1500,
		Pairs:       3,
		Period:      3,
		Frequencies: []int{1, 1, 1},
		Phases:      []int{0, 0, 0},
		Amplitudes:  []int{1, 1, 1},
	})
}

// TestRunAttackEngineBitIdenticalAtPOneBatchedGroups is the p=1 identity for
// patterns whose idle stretches retire through ActivateRunGroup/HammerCycle
// (cycle <= MaxBatchGroup): the alternating double-sided pair the tentpole
// fix targets, a victim-sharing group, round-robin many-sided, and a
// tight Blacksmith schedule.
func TestRunAttackEngineBitIdenticalAtPOneBatchedGroups(t *testing.T) {
	cfg := attackCfg(60_000)
	cfg.TRH = 900
	for _, pat := range []*patterns.Pattern{
		patterns.DoubleSided(2000),
		patterns.VictimSharing(2000, 2),
		patterns.TRRespass(1000, 40, 3),
		blacksmithTight(),
	} {
		if pat.CycleLen() > patterns.MaxBatchGroup {
			t.Fatalf("%s: cycle %d exceeds MaxBatchGroup — test no longer hits the batched path", pat.Name, pat.CycleLen())
		}
		exact := RunAttackEngine(cfg, pOneScheme(), pat, 5, engine.Exact)
		event := RunAttackEngine(cfg, pOneScheme(), pat.Clone(), 5, engine.Event)
		if !reflect.DeepEqual(exact, event) {
			t.Errorf("%s: p=1 engines diverged:\nexact %+v\nevent %+v", pat.Name, exact, event)
		}
	}
}

// TestRunAttackEventStatisticallyCloseOnBatchedPatterns cross-validates the
// batched multi-row path at the real insertion probability: independent draw
// sequences, same process, so REF-cadence-driven mitigation counts must
// agree tightly and disturbance must stay the same order of magnitude.
func TestRunAttackEventStatisticallyCloseOnBatchedPatterns(t *testing.T) {
	cfg := attackCfg(400_000)
	for _, pat := range []*patterns.Pattern{
		patterns.DoubleSided(2000),
		patterns.TRRespass(1000, 40, 3),
		blacksmithTight(),
	} {
		event := RunAttackEngine(cfg, PrIDEScheme(), pat, 1, engine.Event)
		exact := RunAttack(cfg, PrIDEScheme(), pat.Clone(), 1)
		if event.Mitigations == 0 || exact.Mitigations == 0 {
			t.Fatalf("%s: no mitigations (event %d, exact %d)", pat.Name, event.Mitigations, exact.Mitigations)
		}
		ratio := float64(event.Mitigations) / float64(exact.Mitigations)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: mitigations event %d vs exact %d (ratio %.3f)", pat.Name, event.Mitigations, exact.Mitigations, ratio)
		}
		if event.MaxDisturbance < cfg.Params.ACTsPerTREFI() || event.MaxDisturbance > 4*exact.MaxDisturbance {
			t.Errorf("%s: max disturbance event %d vs exact %d", pat.Name, event.MaxDisturbance, exact.MaxDisturbance)
		}
	}
}

func TestRunAttackEngineFallbacksAreBitIdentical(t *testing.T) {
	cfg := attackCfg(40_000)
	pat := patterns.TRRespass(1000, 40, 3)
	// DSAC's insertion decision depends on tracked counters, so it has no
	// skip-ahead; the event engine must fall back to the exact loop with an
	// identically-constructed trial.
	dsac := Fig15Schemes()[1]
	if got := RunAttackEngine(cfg, dsac, pat, 9, engine.Event); !reflect.DeepEqual(got, RunAttack(cfg, dsac, pat.Clone(), 9)) {
		t.Errorf("DSAC event trial differs from exact fallback")
	}
	// OpenPage couples activations to row-buffer state, so slots are not
	// iid Bernoulli: the event engine must fall back even for PrIDE.
	open := cfg
	open.Policy = OpenPage
	if got := RunAttackEngine(open, PrIDEScheme(), pat, 9, engine.Event); !reflect.DeepEqual(got, RunAttack(open, PrIDEScheme(), pat.Clone(), 9)) {
		t.Errorf("OpenPage event trial differs from exact fallback")
	}
}

func TestMINTEventBitIdenticalToExact(t *testing.T) {
	// MINT's schedule draws happen inside OnMitigate on both paths, so the
	// scheduled event loop is bit-identical to the exact per-ACT loop at the
	// real insertion probability — not just at a rigged p=1 like PrIDE.
	cfg := attackCfg(60_000)
	cfg.TRH = 900
	for _, pat := range []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.TRRespass(1000, 40, 3),
		blacksmithBreaker(),
	} {
		exact := RunAttackEngine(cfg, MINTScheme(), pat, 5, engine.Exact)
		event := RunAttackEngine(cfg, MINTScheme(), pat.Clone(), 5, engine.Event)
		if !reflect.DeepEqual(exact, event) {
			t.Errorf("%s: MINT engines diverged:\nexact %+v\nevent %+v", pat.Name, exact, event)
		}
		if exact.Mitigations == 0 {
			t.Errorf("%s: MINT dispatched no mitigations", pat.Name)
		}
	}
}

func TestMOATEventFallsBackToExact(t *testing.T) {
	// MOAT's insertion decision is a counter compare — pattern-dependent, so
	// no skip-ahead of either kind. The event engine must take the exact
	// per-ACT path and produce a bit-identical trial.
	cfg := attackCfg(60_000)
	for _, pat := range []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.TRRespass(1000, 40, 3),
	} {
		exact := RunAttack(cfg, MOATScheme(), pat, 7)
		event := RunAttackEngine(cfg, MOATScheme(), pat.Clone(), 7, engine.Event)
		if !reflect.DeepEqual(exact, event) {
			t.Errorf("%s: MOAT event trial differs from exact fallback:\nexact %+v\nevent %+v",
				pat.Name, exact, event)
		}
	}
}

func TestMOATDisturbanceCappedAtATO(t *testing.T) {
	// MOAT's ALERT threshold is a deterministic cap: no row can accumulate
	// more than ATO activations between mitigations, for ANY pattern.
	cfg := attackCfg(200_000)
	for _, pat := range []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.DoubleSided(2500),
		patterns.TRRespass(1000, 40, 3),
	} {
		res := RunAttackEngine(cfg, MOATScheme(), pat, 3, engine.Event)
		if res.MaxDisturbance > tracker.DefaultMOATATO {
			t.Errorf("%s: MOAT max disturbance %d exceeds the deterministic ATO cap %d",
				pat.Name, res.MaxDisturbance, tracker.DefaultMOATATO)
		}
		if res.Mitigations == 0 {
			t.Errorf("%s: MOAT dispatched no mitigations", pat.Name)
		}
	}
}

func TestRunAttackEventReproducibleAndSecure(t *testing.T) {
	// The event engine is deterministic per seed, and its PrIDE trials must
	// satisfy the same security bound the exact-engine tests pin: max
	// disturbance below the analytic TRH*.
	cfg := attackCfg(400_000)
	pat := patterns.SingleSided(2000)
	a := RunAttackEngine(cfg, PrIDEScheme(), pat, 1, engine.Event)
	b := RunAttackEngine(cfg, PrIDEScheme(), pat.Clone(), 1, engine.Event)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event engine not reproducible: %+v vs %+v", a, b)
	}
	if a.Mitigations == 0 {
		t.Fatal("event engine dispatched no mitigations")
	}
	exact := RunAttack(cfg, PrIDEScheme(), pat.Clone(), 1)
	// Mitigation opportunities are REF-cadence-driven and only skipped when
	// the FIFO is idle, so the two engines' dispatch counts are tightly
	// coupled even though individual draws differ.
	ratio := float64(a.Mitigations) / float64(exact.Mitigations)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mitigations: event %d vs exact %d (ratio %.3f)", a.Mitigations, exact.Mitigations, ratio)
	}
	if a.MaxDisturbance < cfg.Params.ACTsPerTREFI() || a.MaxDisturbance > 4*exact.MaxDisturbance {
		t.Errorf("max disturbance: event %d vs exact %d", a.MaxDisturbance, exact.MaxDisturbance)
	}
}

func TestMeasurePatternLossEngineBitIdenticalAtWOne(t *testing.T) {
	// w=1 means insertion probability 1/w = 1 and a mitigation after every
	// ACT: the degenerate configuration where the engines share draw
	// sequences and must agree exactly.
	pat := patterns.TRRespass(100, 8, 3)
	exact := MeasurePatternLossEngine(4, 1, pat, 20_000, 3, engine.Exact)
	event := MeasurePatternLossEngine(4, 1, pat.Clone(), 20_000, 3, engine.Event)
	if !reflect.DeepEqual(exact, event) {
		t.Fatalf("w=1 engines diverged:\nexact %+v\nevent %+v", exact, event)
	}
}

func TestMeasurePatternLossEventStatisticallyClose(t *testing.T) {
	// Same estimator, independent draw sequences: each row's measured loss
	// probability must agree within a two-estimator binomial tolerance.
	pat := patterns.TRRespass(1000, 40, 3)
	const acts = 2_500_000 // ~790 insertions per aggressor row
	exact := MeasurePatternLoss(4, 79, pat, acts, 11)
	event := MeasurePatternLossEngine(4, 79, pat.Clone(), acts, 12, engine.Event)
	if len(event.Rows) == 0 {
		t.Fatal("event measurement saw no rows")
	}
	byRow := map[int]RowLoss{}
	for _, r := range exact.Rows {
		byRow[r.Row] = r
	}
	compared := 0
	for _, ev := range event.Rows {
		ex, ok := byRow[ev.Row]
		if !ok {
			continue
		}
		ra, rb := float64(ex.Evicted+ex.Mitigated), float64(ev.Evicted+ev.Mitigated)
		if ra < 200 || rb < 200 {
			continue
		}
		pa, pb := ex.LossProb(), ev.LossProb()
		tol := 5*math.Sqrt(pa*(1-pa)/ra+pb*(1-pb)/rb) + 0.01
		if math.Abs(pa-pb) > tol {
			t.Errorf("row %d: exact loss %.4f vs event %.4f (tol %.4f)", ev.Row, pa, pb, tol)
		}
		compared++
	}
	if compared < 10 {
		t.Fatalf("only %d rows had enough samples to compare", compared)
	}
}

func TestAttackCampaignEventEngine(t *testing.T) {
	cfg := attackCfg(20_000)
	suite := []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.TRRespass(1000, 40, 3),
	}
	var want AttackResult
	for i, workers := range []int{1, 3} {
		got, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, 2, 77,
			CampaignOptions{Workers: workers, Engine: engine.Event})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event attack campaign at %d workers differs from 1 worker", workers)
		}
	}
	if want.Mitigations == 0 {
		t.Fatal("event attack campaign dispatched no mitigations")
	}
	if AttackCampaignKey(cfg, PrIDEScheme(), 2, 2, 77, engine.Exact) ==
		AttackCampaignKey(cfg, PrIDEScheme(), 2, 2, 77, engine.Event) {
		t.Fatal("attack keys identical across engines")
	}
}

func TestSuiteLossCampaignEventEngine(t *testing.T) {
	suite := []*patterns.Pattern{
		patterns.SingleSided(2000),
		patterns.DoubleSided(2500),
		patterns.TRRespass(1000, 40, 3),
	}
	const acts = 60_000
	want, err := MeasureSuiteLossCampaign(context.Background(), 64, 79, suite, acts, 33,
		CampaignOptions{Workers: 1, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureSuiteLossCampaign(context.Background(), 64, 79, suite, acts, 33,
		CampaignOptions{Workers: 3, Engine: engine.Event})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("event suite-loss campaign differs across worker counts")
	}
	if SuiteLossCampaignKey(64, 79, len(suite), acts, 33, engine.Exact) ==
		SuiteLossCampaignKey(64, 79, len(suite), acts, 33, engine.Event) {
		t.Fatal("suite-loss keys identical across engines")
	}
}
