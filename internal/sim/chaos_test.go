package sim

import (
	"context"
	"reflect"
	"testing"

	"pride/internal/engine"
	"pride/internal/faultinject"
	"pride/internal/obs"
)

// TestAttackForcedTripFallsBackToExact forces a guard trip on every
// event-engine attack trial: each one must re-run on the exact engine with
// the same trial-derived seed, so the campaign equals the exact-engine
// campaign bit-for-bit and every fallback is counted.
func TestAttackForcedTripFallsBackToExact(t *testing.T) {
	suite := parallelSuite(5)
	cfg := attackCfg(10_000)
	const seeds, baseSeed = 2, 77
	exact, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, seeds, baseSeed,
		CampaignOptions{Workers: 2, Engine: engine.Exact})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Every: 1})
	trials := len(suite) * seeds
	camp := obs.NewCampaign("attack-trip", trials, 2)
	got, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, seeds, baseSeed,
		CampaignOptions{Workers: 2, Engine: engine.Event, Progress: camp, Observer: camp, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if got != exact {
		t.Fatalf("tripped-everywhere event campaign %+v differs from exact campaign %+v", got, exact)
	}
	if n := camp.Snapshot().EngineFallbacks; n != int64(trials) {
		t.Fatalf("EngineFallbacks = %d, want %d (one per trial)", n, trials)
	}
}

// TestSuiteLossForcedTripFallsBackToExact covers the same contract for the
// Fig 18 loss-measurement campaign shape.
func TestSuiteLossForcedTripFallsBackToExact(t *testing.T) {
	suite := parallelSuite(3)
	const entries, w, acts, seed = 4, 16, 20_000, 11
	exact, err := MeasureSuiteLossCampaign(context.Background(), entries, w, suite, acts, seed,
		CampaignOptions{Workers: 2, Engine: engine.Exact})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteEngineTrip, faultinject.Trigger{Every: 1})
	got, err := MeasureSuiteLossCampaign(context.Background(), entries, w, suite, acts, seed,
		CampaignOptions{Workers: 2, Engine: engine.Event, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exact) {
		t.Fatal("tripped-everywhere loss campaign differs from the exact campaign")
	}
}

// TestAttackSelfCheckInvariance pins that the runtime guards are read-only:
// a healthy attack run produces identical results (and trips nothing) with
// self-checking on and off, on both engines.
func TestAttackSelfCheckInvariance(t *testing.T) {
	cfg := attackCfg(20_000)
	checked := cfg
	checked.SelfCheck = true
	pat := parallelSuite(5)[1] // TRRespass exercises the FIFO hardest
	for _, eng := range []engine.Kind{engine.Exact, engine.Event} {
		want := RunAttackEngine(cfg, PrIDEScheme(), pat.Clone(), 7, eng)
		got := RunAttackEngine(checked, PrIDEScheme(), pat.Clone(), 7, eng)
		if got != want {
			t.Fatalf("engine %v: SelfCheck changed the attack result:\n got %+v\nwant %+v", eng, got, want)
		}
	}

	// Campaign-level SelfCheck (the -selfcheck flag path) is equally inert.
	suite := parallelSuite(5)
	plain, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, 2, 77,
		CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := MaxDisturbanceOverSuiteCampaign(context.Background(), cfg, PrIDEScheme(), suite, 2, 77,
		CampaignOptions{Workers: 2, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain != guarded {
		t.Fatal("-selfcheck changed the attack campaign result")
	}
}
