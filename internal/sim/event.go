package sim

import (
	"fmt"

	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/memctrl"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/tracker"
)

// This file implements the event-driven attack engine. The exact engine
// (sim.go) steps every activation: one pattern step, one tracker draw, one
// bank-counter update per ACT. With a skip-ahead tracker (PrIDE, PARA) the
// insertion decision is a pattern-independent Bernoulli(p), so the event
// engine samples the geometric gap to the next insertion (rng.SkipT) and
// retires the gap in bulk: pattern runs collapse through Pattern.Run/Advance
// into memctrl.ActivateRun segments, whose deterministic hammer/REF/RFM
// bookkeeping is ACT-for-ACT identical to the stepped path.
//
// The gap draws and the tracker's transitive-mitigation draws share ONE
// stream, in the same order the exact engine consumes them (gap drawn
// immediately before the insertion it decides). At p = 1 every slot inserts
// and the two engines' draw sequences coincide exactly, which the tests pin
// as bit-identity; below p = 1 equivalence is statistical.
//
// Scheduled trackers (MINT) pre-commit each interval's insertion position
// instead of drawing per ACT, so geometric gaps would simulate the wrong
// process; for those the engine queries tracker.ScheduledAdvancer.NextInsert
// and idles to either the scheduled slot or the next mitigation opportunity,
// re-querying after every opportunity. Because the schedule draw happens
// inside OnMitigate on both paths, the scheduled event path is bit-identical
// to the exact path at ANY insertion probability.
//
// Trackers without either capability (PRoHIT, DSAC, PARFM, MOAT, insecure
// PrIDE ablations) and the OpenPage policy (activations depend on row-buffer
// state, so slots are not iid) fall back to the exact loop.

// RunAttackEngine is RunAttack on the selected engine. The event engine
// falls back to the exact loop when the scheme's tracker does not support
// skip-ahead or the policy is OpenPage; the fallback constructs the trial
// identically to RunAttack, so it is bit-identical to the exact engine.
func RunAttackEngine(cfg AttackConfig, s Scheme, pat *patterns.Pattern, seed uint64, eng engine.Kind) AttackResult {
	return runAttackEngine(cfg, s, pat, seed, nil, eng)
}

// runAttackEngine dispatches one trial to the selected engine, optionally
// against a caller-supplied freshly-reset bank.
func runAttackEngine(cfg AttackConfig, s Scheme, pat *patterns.Pattern, seed uint64, bank *dram.Bank, eng engine.Kind) AttackResult {
	if eng == engine.Event {
		return runAttackEvent(cfg, s, pat, seed, bank)
	}
	return runAttack(cfg, s, pat, seed, bank)
}

func runAttackEvent(cfg AttackConfig, s Scheme, pat *patterns.Pattern, seed uint64, bank *dram.Bank) AttackResult {
	if cfg.ACTs <= 0 {
		panic(fmt.Sprintf("sim: ACTs must be positive, got %d", cfg.ACTs))
	}
	if bank == nil {
		bank = dram.MustNewBank(cfg.Params, cfg.TRH)
	}
	// The gap sampler and the tracker share one stream, like the exact
	// engine's per-ACT draws and transitive draws do.
	r := rng.New(seed)
	trk := s.New(cfg.Params, r)
	mcfg := memctrl.DefaultConfig(cfg.Params)
	mcfg.RFMThreshold = s.RFMThreshold
	if s.MitigationEveryNREF > 0 {
		mcfg.MitigationEveryNREF = s.MitigationEveryNREF
	}
	mcfg.SelfCheck = cfg.SelfCheck
	ctrl := memctrl.New(mcfg, bank, trk)

	sa, ok := ctrl.SkipAdvancer()
	if !ok || cfg.Policy == OpenPage {
		if sched, sok := ctrl.ScheduledAdvancer(); sok && cfg.Policy != OpenPage {
			scheduledReplay(ctrl, sched, pat, cfg)
			return attackResult(s, pat, bank, ctrl)
		}
		steppedReplay(ctrl, pat, cfg)
		return attackResult(s, pat, bank, ctrl)
	}

	sk := rng.NewSkip(rng.NewThreshold(sa.InsertionProb()))
	pat.Reset()
	left := cfg.ACTs
	for left > 0 {
		g := r.SkipT(sk)
		if g >= left {
			// No further insertion lands inside the budget: the rest of the
			// trial is one idle stretch.
			idleACTs(ctrl, pat, left)
			break
		}
		idleACTs(ctrl, pat, g)
		left -= g
		ctrl.ActivateInsert(pat.Next())
		left--
	}
	return attackResult(s, pat, bank, ctrl)
}

// scheduledReplay is the event loop for scheduled trackers: idle to the
// tracker's next scheduled insertion when it lands before the next
// mitigation opportunity, otherwise idle through the opportunity (inside
// ActivateRun, which fires OnMitigate at the exact boundary, advancing the
// schedule) and re-query.
func scheduledReplay(ctrl *memctrl.Controller, sched tracker.ScheduledAdvancer, pat *patterns.Pattern, cfg AttackConfig) {
	pat.Reset()
	left := cfg.ACTs
	for left > 0 {
		idle, ok := sched.NextInsert()
		if ok && idle < ctrl.ACTsToNextMitigation() {
			if idle >= left {
				idleACTs(ctrl, pat, left)
				return
			}
			idleACTs(ctrl, pat, idle)
			left -= idle
			ctrl.ActivateInsert(pat.Next())
			left--
			continue
		}
		// No insertion lands before the next opportunity.
		n := ctrl.ACTsToNextMitigation()
		if n > left {
			n = left
		}
		idleACTs(ctrl, pat, n)
		left -= n
	}
}

// idleACTs retires n insertion-free activations. Patterns with a small
// fundamental cycle (single-sided, double-sided, TRRespass, Blacksmith
// without decoy drift) retire the whole stretch through one
// ActivateRunGroup call — the alternating-pattern fix: a length-2 cycle no
// longer degenerates to per-ACT work. Longer cycles fall back to same-row
// run batching.
func idleACTs(ctrl *memctrl.Controller, pat *patterns.Pattern, n int) {
	if n <= 0 {
		return
	}
	if pat.CycleLen() <= patterns.MaxBatchGroup {
		rows, phase := pat.Group()
		ctrl.ActivateRunGroup(rows, phase, n)
		pat.Advance(n)
		return
	}
	for n > 0 {
		row, k := pat.Run(n)
		ctrl.ActivateRun(row, k)
		pat.Advance(k)
		n -= k
	}
}

// MeasurePatternLossEngine is MeasurePatternLoss on the selected engine.
func MeasurePatternLossEngine(entries, w int, pat *patterns.Pattern, acts int, seed uint64, eng engine.Kind) LossMeasurement {
	return measurePatternLossEngine(entries, w, pat, acts, seed, &lossMeasureScratch{}, eng, false)
}

func measurePatternLossEngine(entries, w int, pat *patterns.Pattern, acts int, seed uint64, sc *lossMeasureScratch, eng engine.Kind, selfCheck bool) LossMeasurement {
	if eng == engine.Event {
		return measurePatternLossEvent(entries, w, pat, acts, seed, sc, selfCheck)
	}
	return measurePatternLoss(entries, w, pat, acts, seed, sc, selfCheck)
}

// measurePatternLossEvent is the event-driven measurePatternLoss: the
// tracker-only replay has no bank, so an idle stretch is just AdvanceIdle
// plus cursor movement, split at the every-w-ACTs mitigation boundaries.
func measurePatternLossEvent(entries, w int, pat *patterns.Pattern, acts int, seed uint64, sc *lossMeasureScratch, selfCheck bool) LossMeasurement {
	if acts <= 0 {
		panic(fmt.Sprintf("sim: acts must be positive, got %d", acts))
	}
	r := rng.New(seed)
	trk := core.New(lossTrackerConfig(entries, w, selfCheck), r)

	sc.reset()
	sc.observe(trk)

	sk := rng.NewSkip(rng.NewThreshold(trk.InsertionProb()))
	pat.Reset()
	pos := 0 // ACTs into the current mitigation window
	idle := func(n int) {
		if trk.Occupancy() == 0 && n > 0 {
			// Empty FIFO and no insertion lands inside the stretch, so every
			// window boundary is an idle pop: no draws, no observer events
			// (see core.PrIDE.OnMitigate). The whole stretch collapses to
			// counter arithmetic.
			trk.AdvanceIdle(n)
			trk.AdvanceIdleMitigations((pos + n) / w)
			pos = (pos + n) % w
			pat.Advance(n)
			return
		}
		for n > 0 {
			k := w - pos
			if n < k {
				k = n
			}
			trk.AdvanceIdle(k)
			pat.Advance(k)
			pos += k
			n -= k
			if pos == w {
				pos = 0
				trk.OnMitigate()
			}
		}
	}
	left := acts
	for left > 0 {
		g := r.SkipT(sk)
		if g >= left {
			idle(left)
			break
		}
		idle(g)
		left -= g
		trk.ActivateInsert(pat.Next())
		left--
		pos++
		if pos == w {
			pos = 0
			trk.OnMitigate()
		}
	}
	return sc.measurement(pat)
}
