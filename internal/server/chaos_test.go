package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pride/internal/addrmap"
	"pride/internal/dram"
	"pride/internal/faultinject"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trialrunner"
	"pride/internal/workload"
)

// TestChaosRunBitIdenticalToDirectCampaign is the acceptance gate for the
// daemon's robustness contract: a replay submission that survives an injected
// admission failure, a failed first attempt (job.run), a mid-stream trace
// read error, a drain mid-campaign, a daemon restart, and an injected result
// write failure must produce a byte-for-byte identical result to the same
// campaign run directly through system.ReplayCampaign — the CLI path, no
// server, no faults.
func TestChaosRunBitIdenticalToDirectCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay campaign; run without -short (the chaos CI job does)")
	}
	dataDir := t.TempDir()

	// Daemon life 1: chaos at admission, job execution and trace decode.
	in1, err := faultinject.Parse(99, "server.enqueue:nth=1;job.run:nth=1;trace.read:nth=1")
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := testServer(t, Config{
		DataDir:  dataDir,
		Faults:   in1,
		JobRetry: trialrunner.RetryPolicy{Attempts: 3, Backoff: time.Millisecond},
	})

	// The armed enqueue fault rejects the first submission retryably.
	code, _, _ := postSpec(t, ts1, replaySpec, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("faulted submit = %d, want 503", code)
	}
	code, j, _ := postSpec(t, ts1, replaySpec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("retried submit = %d, want 202", code)
	}

	// Attempt 1 dies at job.run, attempt 2 dies on the first trace read;
	// wait for the clean attempt 3 to be underway, then drain mid-campaign.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, got := getJob(t, ts1, j.ID)
		if got.Attempts >= 3 && got.State == StateRunning {
			break
		}
		if got.State == StateDone || got.State == StateFailed {
			t.Fatalf("job finished before the drain could land: %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached attempt 3: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if drained := s1.Drain(); drained != 1 {
		t.Fatalf("Drain() = %d, want 1 interrupted job", drained)
	}
	ts1.Close()
	for site, want := range map[string]int{
		faultinject.SiteServerEnqueue: 1,
		faultinject.SiteJobRun:        1,
		faultinject.SiteTraceRead:     1,
	} {
		if got := in1.Fired(site); got != want {
			t.Errorf("site %s fired %d times, want %d", site, got, want)
		}
	}

	// Daemon life 2: restart on the same data directory with a result-write
	// fault armed; the resumed job completes and the store's retry absorbs
	// the failed first write.
	in2, err := faultinject.Parse(99, "job.result-write:nth=1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := testServer(t, Config{DataDir: dataDir, Faults: in2})
	code, j2, _ := postSpec(t, ts2, replaySpec, nil)
	if code != http.StatusAccepted || j2.ID != j.ID {
		t.Fatalf("resubmit = %d id=%s, want 202 id=%s", code, j2.ID, j.ID)
	}
	done := waitState(t, ts2, j2.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("chaos job failed: %s", done.Error)
	}
	if got := in2.Fired(faultinject.SiteJobResultWrite); got != 1 {
		t.Errorf("result-write site fired %d times, want 1", got)
	}

	// A third submission is a pure cache hit.
	code, j3, _ := postSpec(t, ts2, replaySpec, nil)
	if code != http.StatusOK || !j3.Cached || !bytes.Equal(j3.Result, done.Result) {
		t.Fatalf("cache hit after chaos: code=%d cached=%v", code, j3.Cached)
	}

	// The CLI path: the identical campaign straight through the system
	// layer, mirroring how prepareReplay builds it from replaySpec's fields.
	var wspec workload.Spec
	for _, w := range workload.All() {
		if w.Name == "lbm" {
			wspec = w
		}
	}
	m, err := addrmap.ParseMapping("col=6 bank=2 row=10 rank=0 chan=1 xor=0")
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := sim.SchemeByName("PrIDE")
	if err != nil {
		t.Fatal(err)
	}
	src := workload.NewAddrSource(wspec, m, 8000000, 7)
	topo, err := system.NewTopology(system.TopologyConfig{
		Params:  dram.DDR5(),
		Mapping: src.Mapping(),
		Scheme:  scheme,
		TRH:     500,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.ReplayCampaign(context.Background(), src, system.ReplayOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(ReplayResult{
		Records:    res.Records,
		CRC32:      fmt.Sprintf("%08x", res.CRC32),
		TotalFlips: res.TotalFlips(),
		PerChannel: res.PerChannel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The HTTP layer re-indents responses; compare the compact forms.
	var served bytes.Buffer
	if err := json.Compact(&served, done.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), wantJSON) {
		t.Fatalf("chaos-run result differs from the direct campaign:\n  server: %s\n  direct: %s", served.Bytes(), wantJSON)
	}
}
