package server

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client gets burst tokens,
// refilled at rate tokens per second. A zero rate disables limiting.
// Buckets are created on first sight and never expire — the client
// cardinality of a campaign server is operators and CI jobs, not the open
// internet.
type limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}, now: time.Now}
}

// Allow reports whether the client may proceed, consuming one token if so.
func (l *limiter) Allow(client string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientID identifies the requester for rate limiting: the X-Pride-Client
// header when set (CI jobs and scripted sweeps name themselves), otherwise
// the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Pride-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
