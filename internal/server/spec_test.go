package server

import (
	"strings"
	"testing"

	"pride/internal/engine"
	"pride/internal/montecarlo"
)

func TestSpecPrepareValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"no sub-spec", Spec{Kind: "security"}, "exactly one"},
		{"two sub-specs", Spec{Kind: "security", Security: &SecuritySpec{Periods: 1}, TTF: &TTFSpec{}}, "exactly one"},
		{"kind/sub-spec mismatch", Spec{Kind: "security", TTF: &TTFSpec{}}, `kind "security" requires`},
		{"unknown kind", Spec{Kind: "nope", Security: &SecuritySpec{Periods: 1}}, "unknown kind"},
		{"unknown engine", Spec{Kind: "security", Engine: "warp", Security: &SecuritySpec{Periods: 1}}, "unknown engine"},
		{"bad periods", Spec{Kind: "security", Security: &SecuritySpec{Periods: -1}}, "Periods"},
		{"unknown scheme", Spec{Kind: "ttfsim", TTF: &TTFSpec{Scheme: "nope", Banks: 1, TRH: 100, MaxTREFI: 10, Trials: 1}}, "unknown scheme"},
		{"bad trials", Spec{Kind: "ttfsim", TTF: &TTFSpec{Scheme: "PrIDE", Banks: 1, TRH: 100, MaxTREFI: 10, Trials: 0}}, "trials"},
		{"bad acts", Spec{Kind: "attack", Attack: &AttackSpec{Scheme: "PrIDE", ACTs: 0}}, "ACTs"},
		{"replay both sources", Spec{Kind: "replay", Replay: &ReplaySpec{Workload: "lbm", TracePath: "/t", Scheme: "PrIDE", TRH: 500}}, "exactly one of workload"},
		{"replay neither source", Spec{Kind: "replay", Replay: &ReplaySpec{Scheme: "PrIDE", TRH: 500}}, "exactly one of workload"},
		{"replay engine rejected", Spec{Kind: "replay", Engine: "exact", Replay: &ReplaySpec{Workload: "lbm", ACTs: 10, Mapping: "col=6 bank=2 row=10 rank=0 chan=0 xor=0", Scheme: "PrIDE", TRH: 500}}, "inherently exact"},
		{"replay unknown workload", Spec{Kind: "replay", Replay: &ReplaySpec{Workload: "quake", ACTs: 10, Mapping: "col=6 bank=2 row=10 rank=0 chan=0 xor=0", Scheme: "PrIDE", TRH: 500}}, "unknown workload"},
	}
	for _, tc := range cases {
		_, err := tc.spec.prepare()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSecurityKeyMatchesCLIKey(t *testing.T) {
	// The server's cache key must be the exact checkpoint key the
	// equivalent CLI run derives — that identity is what makes a CLI
	// checkpoint and a server cache entry interchangeable descriptions of
	// the same computation.
	spec := Spec{Kind: "security", Seed: 42, Security: &SecuritySpec{Entries: 2, Window: 16, Periods: 1000}}
	p, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	cfg := montecarlo.LossConfig{Entries: 2, Window: 16, InsertionProb: 1.0 / 16, Periods: 1000}
	if want := montecarlo.LossCampaignKey(cfg, 42, engine.Event); p.key != want {
		t.Fatalf("key = %q, want %q", p.key, want)
	}
}

func TestSpecKeyIgnoresExecutionHints(t *testing.T) {
	base := Spec{Kind: "security", Seed: 1, Security: &SecuritySpec{Periods: 100}}
	p1, err := base.prepare()
	if err != nil {
		t.Fatal(err)
	}
	hinted := base
	hinted.Workers = 7
	hinted.TrialRetries = 3
	p2, err := hinted.prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p1.key != p2.key {
		t.Fatalf("execution hints changed the cache key:\n  %q\n  %q", p1.key, p2.key)
	}
	if jobID(p1.key) != jobID(p2.key) {
		t.Fatal("job IDs differ for equal keys")
	}
}

func TestReplayKeyStableAcrossPrepares(t *testing.T) {
	spec := Spec{Kind: "replay", Seed: 9, Replay: &ReplaySpec{
		Workload: "lbm", Mapping: "col=6 bank=2 row=10 rank=0 chan=1 xor=0",
		ACTs: 5000, Scheme: "PrIDE", TRH: 500,
	}}
	p1, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p1.key != p2.key {
		t.Fatalf("replay key not stable:\n  %q\n  %q", p1.key, p2.key)
	}
	if !strings.Contains(p1.key, "records=5000") {
		t.Fatalf("replay key %q does not pin the record count", p1.key)
	}
}

func TestJobIDAndSeedAreDeterministic(t *testing.T) {
	if jobID("k") != jobID("k") || jobSeed("k") != jobSeed("k") {
		t.Fatal("jobID/jobSeed not deterministic")
	}
	if jobID("a") == jobID("b") {
		t.Fatal("distinct keys collided")
	}
	if len(jobID("x")) != 16 {
		t.Fatalf("jobID length = %d, want 16", len(jobID("x")))
	}
}
