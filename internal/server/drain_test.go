package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replaySpec is sized so the campaign runs long enough (hundreds of ms on a
// single worker) for a drain to land mid-flight deterministically.
const replaySpec = `{"kind":"replay","seed":7,"workers":1,"replay":{"workload":"lbm","mapping":"col=6 bank=2 row=10 rank=0 chan=1 xor=0","acts":8000000,"scheme":"PrIDE","trh":500}}`

// TestDrainMidReplayResumesBitIdentical is the daemon-restart contract: kill
// the server while a replay campaign is running, restart it on the same data
// directory, resubmit the identical spec, and the finished result must be
// bit-identical to an undisturbed run — the checkpoint made the interruption
// invisible.
func TestDrainMidReplayResumesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay campaign; run without -short (the chaos CI job does)")
	}
	dataDir := t.TempDir()

	// Daemon life 1: submit, wait until the campaign is actually running,
	// then drain mid-job (this is what SIGTERM triggers in pride-serve).
	s1, ts1 := testServer(t, Config{DataDir: dataDir, JobWorkers: 1})
	code, j, body := postSpec(t, ts1, replaySpec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s), want 202", code, body)
	}
	waitState(t, ts1, j.ID, StateRunning)
	time.Sleep(50 * time.Millisecond) // let the in-flight shard make progress
	if drained := s1.Drain(); drained != 1 {
		t.Fatalf("Drain() = %d interrupted jobs, want 1", drained)
	}
	if _, got := getJob(t, ts1, j.ID); got.State != StateResumable {
		t.Fatalf("interrupted job state = %q, want %q", got.State, StateResumable)
	}
	if got := s1.Campaign().Snapshot().JobsDrained; got != 1 {
		t.Fatalf("drained counter = %d, want 1", got)
	}
	ckpt := filepath.Join(dataDir, "checkpoints", j.ID+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the drain: %v", err)
	}
	ts1.Close()

	// Daemon life 2: same data directory, identical spec. Not a cache hit
	// (no result landed), but the campaign resumes from the checkpoint.
	_, ts2 := testServer(t, Config{DataDir: dataDir, JobWorkers: 1})
	code, j2, _ := postSpec(t, ts2, replaySpec, nil)
	if code != http.StatusAccepted || j2.ID != j.ID {
		t.Fatalf("resubmit = %d id=%s, want 202 id=%s (same spec, same job)", code, j2.ID, j.ID)
	}
	resumed := waitState(t, ts2, j2.ID, StateDone, StateFailed)
	if resumed.State != StateDone {
		t.Fatalf("resumed job failed: %s", resumed.Error)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up after completion: %v", err)
	}

	// Reference: the same spec run undisturbed on a fresh data directory.
	_, ts3 := testServer(t, Config{JobWorkers: 1})
	_, jr, _ := postSpec(t, ts3, replaySpec, nil)
	ref := waitState(t, ts3, jr.ID, StateDone, StateFailed)
	if ref.State != StateDone {
		t.Fatalf("reference job failed: %s", ref.Error)
	}

	if !bytes.Equal(resumed.Result, ref.Result) {
		t.Fatalf("resumed result differs from undisturbed run:\n  resumed: %s\n  ref:     %s", resumed.Result, ref.Result)
	}
	var res ReplayResult
	if err := json.Unmarshal(resumed.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Records != 8000000 || len(res.PerChannel) == 0 {
		t.Fatalf("implausible replay result: %+v", res)
	}
}
