package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pride/internal/faultinject"
	"pride/internal/trialrunner"
)

// smallSecuritySpec is a sub-second campaign for lifecycle tests.
func smallSecuritySpec(seed uint64) string {
	return fmt.Sprintf(`{"kind":"security","seed":%d,"security":{"entries":1,"window":16,"periods":2000}}`, seed)
}

// testServer builds a started Server on a fresh temp dir. The cleanup drains
// it.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.JobRetry.Backoff == 0 {
		cfg.JobRetry.Backoff = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec string, hdr map[string]string) (int, Job, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var j Job
	json.Unmarshal(buf.Bytes(), &j)
	return resp.StatusCode, j, buf.String()
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, Job) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j Job
	json.NewDecoder(resp.Body).Decode(&j)
	return resp.StatusCode, j
}

// waitState polls until the job reaches any of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, j := getJob(t, ts, id)
		for _, w := range want {
			if j.State == w {
				return j
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, j := getJob(t, ts, id)
	t.Fatalf("job %s stuck in state %q (err %q), want one of %v", id, j.State, j.Error, want)
	return Job{}
}

func TestSubmitPollDoneAndCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})
	code, j, body := postSpec(t, ts, smallSecuritySpec(1), nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s), want 202", code, body)
	}
	if j.State != StateQueued || j.ID == "" || j.Kind != "security" {
		t.Fatalf("submit response: %+v", j)
	}
	done := waitState(t, ts, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	var res SecurityResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}

	// Identical resubmission: served from cache, no recompute, bit-identical.
	code, j2, _ := postSpec(t, ts, smallSecuritySpec(1), nil)
	if code != http.StatusOK || !j2.Cached || j2.State != StateDone {
		t.Fatalf("resubmit = %d %+v, want cached done", code, j2)
	}
	if !bytes.Equal(j2.Result, done.Result) {
		t.Fatalf("cached result differs:\n  %s\n  %s", j2.Result, done.Result)
	}
	if got := s.Campaign().Snapshot().CacheHits; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	// A different seed is a different key: not cached.
	code, j3, _ := postSpec(t, ts, smallSecuritySpec(2), nil)
	if code != http.StatusAccepted || j3.ID == j.ID {
		t.Fatalf("different seed reused job: %d %+v", code, j3)
	}
}

func TestSubmitIsIdempotentWhileInFlight(t *testing.T) {
	// A long-enough job that the second submission lands while the first
	// is queued or running: both must name the same job.
	_, ts := testServer(t, Config{})
	spec := `{"kind":"security","seed":3,"security":{"entries":1,"window":16,"periods":2000000}}`
	code1, j1, _ := postSpec(t, ts, spec, nil)
	code2, j2, _ := postSpec(t, ts, spec, nil)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit = %d", code1)
	}
	if code2 != http.StatusOK || j2.ID != j1.ID {
		t.Fatalf("second submit = %d id=%s, want 200 id=%s", code2, j2.ID, j1.ID)
	}
}

func TestSubmitValidationAndNotFound(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, _, body := postSpec(t, ts, `{"kind":"security"}`, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "exactly one") {
		t.Fatalf("invalid spec = %d %s", code, body)
	}
	code, _, body = postSpec(t, ts, `{"kind":"security","typo":1,"security":{"periods":10}}`, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "typo") {
		t.Fatalf("unknown field = %d %s", code, body)
	}
	if code, _ := getJob(t, ts, "deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

func TestRateLimiting(t *testing.T) {
	_, ts := testServer(t, Config{RateLimit: 0.001, RateBurst: 2})
	hdr := map[string]string{"X-Pride-Client": "hammer"}
	// Burst of 2 passes (cache/validation outcome irrelevant), third is cut.
	codes := []int{}
	for i := 0; i < 3; i++ {
		code, _, _ := postSpec(t, ts, smallSecuritySpec(uint64(10+i)), hdr)
		codes = append(codes, code)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third submission = %v, want 429", codes)
	}
	// A different client has its own bucket.
	code, _, _ := postSpec(t, ts, smallSecuritySpec(99), map[string]string{"X-Pride-Client": "other"})
	if code == http.StatusTooManyRequests {
		t.Fatal("distinct client shared the bucket")
	}
}

func TestQueueFullRejects(t *testing.T) {
	// One worker, queue depth 1, jobs slow enough to pile up.
	_, ts := testServer(t, Config{QueueDepth: 1, JobWorkers: 1})
	long := func(seed int) string {
		return fmt.Sprintf(`{"kind":"security","seed":%d,"workers":1,"security":{"entries":1,"window":16,"periods":3000000}}`, seed)
	}
	sawFull := false
	for i := 0; i < 4; i++ {
		code, _, body := postSpec(t, ts, long(100+i), nil)
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "queue full") {
				t.Fatalf("503 body = %s", body)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("queue never filled")
	}
}

func TestEnqueueFaultIs503AndRetryable(t *testing.T) {
	in := faultinject.New(1)
	in.Arm(faultinject.SiteServerEnqueue, faultinject.Trigger{Nth: 1})
	_, ts := testServer(t, Config{Faults: in})
	code, _, body := postSpec(t, ts, smallSecuritySpec(7), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("faulted submit = %d %s, want 503", code, body)
	}
	// The client's retry of the identical spec succeeds and completes.
	code, j, _ := postSpec(t, ts, smallSecuritySpec(7), nil)
	if code != http.StatusAccepted {
		t.Fatalf("retry = %d, want 202", code)
	}
	if got := waitState(t, ts, j.ID, StateDone, StateFailed); got.State != StateDone {
		t.Fatalf("retried job failed: %s", got.Error)
	}
}

func TestJobRunFaultsAreRetriedThenExhausted(t *testing.T) {
	// Job 0: one injected failure, absorbed by the retry budget.
	in := faultinject.New(1)
	in.Arm(faultinject.SiteJobRun, faultinject.Trigger{Nth: 1})
	s, ts := testServer(t, Config{Faults: in, JobRetry: trialrunner.RetryPolicy{Attempts: 3, Backoff: time.Millisecond}})
	_, j, _ := postSpec(t, ts, smallSecuritySpec(21), nil)
	done := waitState(t, ts, j.ID, StateDone, StateFailed)
	if done.State != StateDone || done.Attempts != 2 {
		t.Fatalf("job = %+v, want done after 2 attempts", done)
	}
	if got := s.Campaign().Snapshot().JobRetries; got != 1 {
		t.Fatalf("job retries = %d, want 1", got)
	}

	// Every attempt failing exhausts the budget and fails the job.
	in2 := faultinject.New(1)
	in2.Arm(faultinject.SiteJobRun, faultinject.Trigger{Nth: 1, Attempts: -1})
	_, ts2 := testServer(t, Config{Faults: in2, JobRetry: trialrunner.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}})
	_, j2, _ := postSpec(t, ts2, smallSecuritySpec(22), nil)
	failed := waitState(t, ts2, j2.ID, StateDone, StateFailed)
	if failed.State != StateFailed || !strings.Contains(failed.Error, "after 2 attempt(s)") {
		t.Fatalf("job = %+v, want failed after 2 attempts", failed)
	}
}

func TestPanicKindJobFaultIsRecovered(t *testing.T) {
	in := faultinject.New(1)
	in.Arm(faultinject.SiteJobRun, faultinject.Trigger{Nth: 1, Kind: faultinject.KindPanic})
	_, ts := testServer(t, Config{Faults: in, JobRetry: trialrunner.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}})
	_, j, _ := postSpec(t, ts, smallSecuritySpec(23), nil)
	done := waitState(t, ts, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("panic-kind fault not absorbed: %+v", done)
	}
}

func TestResultWriteFaultIsAbsorbed(t *testing.T) {
	in := faultinject.New(1)
	in.Arm(faultinject.SiteJobResultWrite, faultinject.Trigger{Nth: 1})
	_, ts := testServer(t, Config{Faults: in})
	_, j, _ := postSpec(t, ts, smallSecuritySpec(24), nil)
	done := waitState(t, ts, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("result-write fault not absorbed by the store's retry: %+v", done)
	}
}

func TestHealthReadyAndVars(t *testing.T) {
	s, ts := testServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "pride.campaigns") {
		t.Fatal("/debug/vars does not expose pride.campaigns")
	}

	// Drain flips readiness but not liveness.
	s.Drain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", resp.StatusCode)
	}
	code, _, body := postSpec(t, ts, smallSecuritySpec(31), nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("submit during drain = %d %s, want 503 draining", code, body)
	}
}

func TestLimiterRefills(t *testing.T) {
	l := newLimiter(100, 1)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	if !l.Allow("c") {
		t.Fatal("first request rejected")
	}
	if l.Allow("c") {
		t.Fatal("empty bucket allowed")
	}
	now = now.Add(20 * time.Millisecond) // 2 tokens at 100/s, capped at burst 1
	if !l.Allow("c") {
		t.Fatal("refilled bucket rejected")
	}
	if l.Allow("c") {
		t.Fatal("burst cap not applied")
	}
}

func TestStoreRejectsKeyCollision(t *testing.T) {
	st, err := newResultStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("key-a", "security", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	env, ok, err := st.Get("key-a")
	if err != nil || !ok || env.Kind != "security" {
		t.Fatalf("roundtrip: env=%+v ok=%v err=%v", env, ok, err)
	}
	if _, ok, err := st.Get("key-missing"); err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	// Forge the file a lookup of key-b would read, but with key-a's envelope
	// inside: the store must refuse, never serve a wrong result silently.
	data, err := os.ReadFile(filepath.Join(st.dir, jobID("key-a")+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.dir, jobID("key-b")+".json"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get("key-b"); err == nil || !strings.Contains(err.Error(), "holds key") {
		t.Fatalf("collision not rejected: %v", err)
	}
	// GetByID is the key-less path (cross-restart status queries).
	if env, ok, err := st.GetByID(jobID("key-a")); err != nil || !ok || env.Key != "key-a" {
		t.Fatalf("GetByID: env=%+v ok=%v err=%v", env, ok, err)
	}
}
