package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"pride/internal/addrmap"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/faultinject"
	"pride/internal/montecarlo"
	"pride/internal/obs"
	"pride/internal/patterns"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trace"
	"pride/internal/trialrunner"
	"pride/internal/workload"
)

// Spec is the wire form of one campaign submission: which experiment to run
// and its configuration. Exactly one of the kind-specific sub-specs must be
// set, matching Kind. Fields that cannot change a result (Workers,
// TrialRetries, TrialDeadline) are execution hints and are excluded from the
// job's cache key.
type Spec struct {
	// Kind selects the campaign: "security", "attack", "ttfsim" or
	// "replay" — the same four experiments the CLIs run.
	Kind string `json:"kind"`
	// Seed is the campaign base seed; every trial derives its own stream
	// from it.
	Seed uint64 `json:"seed"`
	// Engine selects the simulation engine for the stochastic kinds:
	// "event" (default) or "exact". Replay is inherently exact and
	// rejects the field.
	Engine string `json:"engine,omitempty"`
	// SelfCheck enables runtime invariant guards. Not part of the cache
	// key (guards never change results, only confidence).
	SelfCheck bool `json:"selfcheck,omitempty"`
	// Workers overrides the per-campaign worker-pool size (0 selects the
	// server default). Never part of the cache key.
	Workers int `json:"workers,omitempty"`
	// TrialRetries retries a panicked/errored trial this many times before
	// quarantining it. Never part of the cache key.
	TrialRetries int `json:"trial_retries,omitempty"`

	Security *SecuritySpec `json:"security,omitempty"`
	Attack   *AttackSpec   `json:"attack,omitempty"`
	TTF      *TTFSpec      `json:"ttfsim,omitempty"`
	Replay   *ReplaySpec   `json:"replay,omitempty"`
}

// SecuritySpec runs a montecarlo insertion-loss campaign (the paper's Fig 8
// methodology: a size-1 FIFO sampled at p = 1/W unless overridden).
type SecuritySpec struct {
	// Entries is the tracker size N (default 1).
	Entries int `json:"entries,omitempty"`
	// Window is W, activations per mitigation window (default the DDR5
	// ACTs-per-tREFI).
	Window int `json:"window,omitempty"`
	// InsertionProb is the sampling probability (default 1/Window).
	InsertionProb float64 `json:"insertion_prob,omitempty"`
	// Periods is the number of tREFI windows to simulate.
	Periods int `json:"periods"`
}

// AttackSpec runs a worst-pattern disturbance campaign over a generated
// Fig 15 pattern suite.
type AttackSpec struct {
	// Scheme names the mitigation under attack (sim.SchemeByName).
	Scheme string `json:"scheme"`
	// ACTs is the trial length in demand activations.
	ACTs int `json:"acts"`
	// TRH, when positive, enables bit-flip detection at that threshold.
	TRH int `json:"trh,omitempty"`
	// Patterns is the suite size (default 16).
	Patterns int `json:"patterns,omitempty"`
	// Seeds is the number of seeds per pattern (default 4).
	Seeds int `json:"seeds,omitempty"`
}

// TTFSpec runs a multi-bank mean-time-to-failure campaign.
type TTFSpec struct {
	// Scheme names the mitigation (sim.SchemeByName).
	Scheme string `json:"scheme"`
	// Banks is the number of concurrently attacked banks.
	Banks int `json:"banks"`
	// TRH is the device Rowhammer threshold under test.
	TRH int `json:"trh"`
	// MaxTREFI bounds the simulation horizon in refresh intervals.
	MaxTREFI int `json:"max_trefi"`
	// Trials is the campaign trial count.
	Trials int `json:"trials"`
}

// ReplaySpec runs a server-scale sharded trace replay, fed either by a
// workload generator (deterministic in the spec) or a binary trace file on
// the server's filesystem.
type ReplaySpec struct {
	// Workload names a generator spec (workload.All); mutually exclusive
	// with TracePath.
	Workload string `json:"workload,omitempty"`
	// Mapping is the address-mapping string for generated workloads, e.g.
	// "ch1:ra1:ba3:ro12:co6" (addrmap.ParseMapping).
	Mapping string `json:"mapping,omitempty"`
	// ACTs is the generated record count (generator mode only).
	ACTs int `json:"acts,omitempty"`
	// TracePath is a binary ACT trace on the server host; mutually
	// exclusive with Workload.
	TracePath string `json:"trace_path,omitempty"`
	// Scheme names the mitigation every bank runs.
	Scheme string `json:"scheme"`
	// TRH is the device Rowhammer threshold under test.
	TRH int `json:"trh"`
}

// runOpts carries the server-side execution environment into a prepared
// campaign run. Nothing in it reaches a result.
type runOpts struct {
	workers    int
	checkpoint trialrunner.Checkpoint
	retry      trialrunner.RetryPolicy
	faults     *faultinject.Injector
	camp       *obs.Campaign
}

// campaignFaults narrows the server's injector to the campaigns' Faults
// field without ever producing a typed-nil interface.
func (o runOpts) campaignFaults() trialrunner.TrialFaults {
	if o.faults == nil {
		return nil
	}
	return o.faults
}

// prepared is a validated, runnable form of a Spec: its canonical cache key
// (the exact checkpoint key the equivalent CLI run would use) and a run
// function producing the JSON-encodable result.
type prepared struct {
	key string
	run func(ctx context.Context, o runOpts) (any, error)
}

// engineKind resolves the spec's engine string.
func (s Spec) engineKind() (engine.Kind, error) {
	switch s.Engine {
	case "", "event":
		return engine.Event, nil
	case "exact":
		return engine.Exact, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want \"event\" or \"exact\")", s.Engine)
	}
}

// trialRetry maps the spec's execution hints to the campaigns' trial-level
// retry policy.
func (s Spec) trialRetry() trialrunner.RetryPolicy {
	p := trialrunner.RetryPolicy{}
	if s.TrialRetries > 0 {
		p.Attempts = s.TrialRetries + 1
	}
	return p
}

// prepare validates the spec into the existing config structs and returns
// its runnable form. All validation errors are client errors (the spec is
// wrong), never server state.
func (s Spec) prepare() (prepared, error) {
	set := 0
	for _, sub := range []bool{s.Security != nil, s.Attack != nil, s.TTF != nil, s.Replay != nil} {
		if sub {
			set++
		}
	}
	if set != 1 {
		return prepared{}, fmt.Errorf("exactly one of security/attack/ttfsim/replay must be set, got %d", set)
	}
	switch s.Kind {
	case "security":
		if s.Security == nil {
			return prepared{}, fmt.Errorf("kind %q requires the %q sub-spec", s.Kind, s.Kind)
		}
		return s.prepareSecurity()
	case "attack":
		if s.Attack == nil {
			return prepared{}, fmt.Errorf("kind %q requires the %q sub-spec", s.Kind, s.Kind)
		}
		return s.prepareAttack()
	case "ttfsim":
		if s.TTF == nil {
			return prepared{}, fmt.Errorf("kind %q requires the %q sub-spec", s.Kind, s.Kind)
		}
		return s.prepareTTF()
	case "replay":
		if s.Replay == nil {
			return prepared{}, fmt.Errorf("kind %q requires the %q sub-spec", s.Kind, s.Kind)
		}
		return s.prepareReplay()
	default:
		return prepared{}, fmt.Errorf("unknown kind %q (want security, attack, ttfsim or replay)", s.Kind)
	}
}

// SecurityResult is the stored result of a security job.
type SecurityResult struct {
	WorstLoss float64               `json:"worst_loss"`
	Detail    montecarlo.LossResult `json:"detail"`
}

func (s Spec) prepareSecurity() (prepared, error) {
	sub := *s.Security
	p := dram.DDR5()
	if sub.Window == 0 {
		sub.Window = p.ACTsPerTREFI()
	}
	if sub.Entries == 0 {
		sub.Entries = 1
	}
	if sub.InsertionProb == 0 {
		sub.InsertionProb = 1 / float64(sub.Window)
	}
	cfg := montecarlo.LossConfig{
		Entries:       sub.Entries,
		Window:        sub.Window,
		InsertionProb: sub.InsertionProb,
		Periods:       sub.Periods,
		SelfCheck:     s.SelfCheck,
	}
	if err := cfg.Validate(); err != nil {
		return prepared{}, err
	}
	eng, err := s.engineKind()
	if err != nil {
		return prepared{}, err
	}
	seed := s.Seed
	return prepared{
		key: montecarlo.LossCampaignKey(cfg, seed, eng),
		run: func(ctx context.Context, o runOpts) (any, error) {
			copts := montecarlo.CampaignOptions{
				Workers:    o.workers,
				Checkpoint: o.checkpoint,
				Engine:     eng,
				SelfCheck:  s.SelfCheck,
				Retry:      o.retry,
				Faults:     o.campaignFaults(),
			}
			if o.camp != nil {
				copts.Progress = o.camp
				copts.Observer = o.camp
			}
			res, err := montecarlo.SimulateLossCampaign(ctx, cfg, seed, copts)
			if err != nil {
				return nil, err
			}
			return SecurityResult{WorstLoss: res.WorstLoss(), Detail: res}, nil
		},
	}, nil
}

func (s Spec) prepareAttack() (prepared, error) {
	sub := *s.Attack
	scheme, err := sim.SchemeByName(sub.Scheme)
	if err != nil {
		return prepared{}, err
	}
	if sub.Patterns == 0 {
		sub.Patterns = 16
	}
	if sub.Seeds == 0 {
		sub.Seeds = 4
	}
	if sub.Patterns < 1 || sub.Seeds < 1 {
		return prepared{}, fmt.Errorf("attack: patterns and seeds must be >= 1, got %d and %d", sub.Patterns, sub.Seeds)
	}
	p := dram.DDR5()
	// Attacks span a small row window; the smaller bank matches
	// pride-attack's Fig 15 setup and its checkpoint keys.
	p.RowsPerBank = 8192
	p.RowBits = 13
	cfg := sim.AttackConfig{Params: p, ACTs: sub.ACTs, TRH: sub.TRH, SelfCheck: s.SelfCheck}
	if err := cfg.Validate(); err != nil {
		return prepared{}, err
	}
	eng, err := s.engineKind()
	if err != nil {
		return prepared{}, err
	}
	seed := s.Seed
	nPat := sub.Patterns
	seeds := sub.Seeds
	return prepared{
		key: sim.AttackCampaignKey(cfg, scheme, nPat, seeds, seed, eng),
		run: func(ctx context.Context, o runOpts) (any, error) {
			suite := patterns.Fig15Suite(cfg.Params.RowsPerBank, nPat, seed)
			copts := sim.CampaignOptions{
				Workers:    o.workers,
				Checkpoint: o.checkpoint,
				Engine:     eng,
				SelfCheck:  s.SelfCheck,
				Retry:      o.retry,
				Faults:     o.campaignFaults(),
			}
			if o.camp != nil {
				copts.Progress = o.camp
				copts.Observer = o.camp
			}
			res, err := sim.MaxDisturbanceOverSuiteCampaign(ctx, cfg, scheme, suite, seeds, seed, copts)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}, nil
}

// TTFResult is the stored result of a ttfsim job.
type TTFResult struct {
	MeanSeconds float64 `json:"mean_seconds"`
	Failed      int     `json:"failed"`
	Trials      int     `json:"trials"`
}

func (s Spec) prepareTTF() (prepared, error) {
	sub := *s.TTF
	scheme, err := sim.SchemeByName(sub.Scheme)
	if err != nil {
		return prepared{}, err
	}
	if sub.Trials < 1 {
		return prepared{}, fmt.Errorf("ttfsim: trials must be >= 1, got %d", sub.Trials)
	}
	params := dram.DDR5()
	// The smaller bank matches pride-ttfsim's setup and its checkpoint
	// keys: TTF depends on tracker behaviour, not bank capacity.
	params.RowsPerBank = 4096
	params.RowBits = 12
	cfg := system.Config{
		Params:    params,
		Banks:     sub.Banks,
		TRH:       sub.TRH,
		MaxTREFI:  sub.MaxTREFI,
		SelfCheck: s.SelfCheck,
	}
	if err := cfg.Validate(); err != nil {
		return prepared{}, err
	}
	eng, err := s.engineKind()
	if err != nil {
		return prepared{}, err
	}
	seed := s.Seed
	trials := sub.Trials
	return prepared{
		key: system.MTTFCampaignKey(cfg, scheme, trials, seed, eng),
		run: func(ctx context.Context, o runOpts) (any, error) {
			copts := system.CampaignOptions{
				Workers:    o.workers,
				Checkpoint: o.checkpoint,
				Engine:     eng,
				SelfCheck:  s.SelfCheck,
				Retry:      o.retry,
				Faults:     o.campaignFaults(),
			}
			if o.camp != nil {
				copts.Progress = o.camp
				copts.Observer = o.camp
			}
			mean, failed, err := system.MeasureMTTFCampaign(ctx, cfg, scheme, trials, seed, copts)
			if err != nil {
				return nil, err
			}
			return TTFResult{MeanSeconds: mean, Failed: failed, Trials: trials}, nil
		},
	}, nil
}

// ReplayResult is the stored result of a replay job: the deterministic
// per-channel aggregate plus the stream fingerprint — exactly what
// pride-replay prints.
type ReplayResult struct {
	Records    uint64                  `json:"records"`
	CRC32      string                  `json:"crc32"`
	TotalFlips int                     `json:"total_flips"`
	PerChannel []system.ChannelSummary `json:"per_channel"`
}

func (s Spec) prepareReplay() (prepared, error) {
	sub := *s.Replay
	if s.Engine != "" {
		return prepared{}, fmt.Errorf("replay: the engine field is rejected (replay is inherently exact)")
	}
	if (sub.Workload == "") == (sub.TracePath == "") {
		return prepared{}, fmt.Errorf("replay: exactly one of workload and trace_path must be set")
	}
	scheme, err := sim.SchemeByName(sub.Scheme)
	if err != nil {
		return prepared{}, err
	}

	// makeSource opens a fresh record stream; replay consumes its source,
	// so the key pre-pass and every run attempt each need their own.
	var makeSource func() (trace.Source, func(), error)
	if sub.TracePath != "" {
		path := sub.TracePath
		makeSource = func() (trace.Source, func(), error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			tr, err := trace.NewReader(bufio.NewReaderSize(f, 1<<16))
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %v", path, err)
			}
			return tr, func() { f.Close() }, nil
		}
	} else {
		var wspec workload.Spec
		found := false
		for _, w := range workload.All() {
			if w.Name == sub.Workload {
				wspec, found = w, true
				break
			}
		}
		if !found {
			return prepared{}, fmt.Errorf("replay: unknown workload %q", sub.Workload)
		}
		if sub.ACTs < 1 {
			return prepared{}, fmt.Errorf("replay: acts must be >= 1 for a generated workload, got %d", sub.ACTs)
		}
		m, err := addrmap.ParseMapping(sub.Mapping)
		if err != nil {
			return prepared{}, fmt.Errorf("replay: mapping: %v", err)
		}
		acts, wseed := sub.ACTs, s.Seed
		makeSource = func() (trace.Source, func(), error) {
			return workload.NewAddrSource(wspec, m, acts, wseed), func() {}, nil
		}
	}

	// The topology mapping comes from the source itself (the trace header
	// is the single source of geometric truth), so probe one source for it
	// and for the cache-key fingerprint in the same pass.
	src, closeSrc, err := makeSource()
	if err != nil {
		return prepared{}, err
	}
	tcfg := system.TopologyConfig{
		Params:    dram.DDR5(),
		Mapping:   src.Mapping(),
		Scheme:    scheme,
		TRH:       sub.TRH,
		Seed:      s.Seed,
		SelfCheck: s.SelfCheck,
	}
	if err := tcfg.Validate(); err != nil {
		closeSrc()
		return prepared{}, err
	}
	records, crc, err := fingerprint(src)
	closeSrc()
	if err != nil {
		return prepared{}, err
	}

	return prepared{
		key: system.ReplayCampaignKey(tcfg, records, crc),
		run: func(ctx context.Context, o runOpts) (any, error) {
			topo, err := system.NewTopology(tcfg)
			if err != nil {
				return nil, err
			}
			src, closeSrc, err := makeSource()
			if err != nil {
				return nil, err
			}
			defer closeSrc()
			ropts := system.ReplayOptions{
				Workers:    o.workers,
				Checkpoint: o.checkpoint,
				Retry:      o.retry,
				Faults:     o.campaignFaults(),
			}
			if o.camp != nil {
				ropts.Progress = o.camp
				ropts.Observer = o.camp
			}
			res, err := topo.ReplayCampaign(ctx, faultedSource(src, o.faults), ropts)
			if err != nil {
				return nil, err
			}
			return ReplayResult{
				Records:    res.Records,
				CRC32:      fmt.Sprintf("%08x", res.CRC32),
				TotalFlips: res.TotalFlips(),
				PerChannel: res.PerChannel(),
			}, nil
		},
	}, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fingerprint drains src counting records and computing the same CRC-32C
// over their little-endian bytes that the replay demux computes, so the
// cache key a submission is filed under equals the checkpoint key the
// campaign itself derives.
func fingerprint(src trace.Source) (records uint64, crc uint32, err error) {
	var (
		batch [4096]uint64
		le    [4096 * 8]byte
	)
	for {
		n, rerr := src.ReadBatch(batch[:])
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(le[i*8:], batch[i])
		}
		crc = crc32.Update(crc, castagnoli, le[:n*8])
		records += uint64(n)
		if rerr == io.EOF {
			return records, crc, nil
		}
		if rerr != nil {
			return 0, 0, rerr
		}
	}
}

// faultSource wraps a replay source with the trace.read fault site: a chaos
// schedule can fail a read mid-demux and watch the job-level retry absorb
// it.
type faultSource struct {
	trace.Source
	in *faultinject.Injector
}

func (f faultSource) ReadBatch(dst []uint64) (int, error) {
	if err := f.in.TraceReadFault(); err != nil {
		return 0, err
	}
	return f.Source.ReadBatch(dst)
}

// faultedSource wraps src when an injector is armed; a nil injector returns
// src untouched.
func faultedSource(src trace.Source, in *faultinject.Injector) trace.Source {
	if in == nil {
		return src
	}
	return faultSource{Source: src, in: in}
}
