// Package server implements the pride-serve campaign daemon: an HTTP/JSON
// front end that validates campaign specs into the existing config structs
// and runs them on a bounded job queue with a fault-tolerant lifecycle.
//
// The robustness contract:
//
//   - Jobs are cached by the campaign's canonical checkpoint key: a repeat
//     submission with the same config+seed is served from the result store
//     without recompute, and a submission whose previous run was interrupted
//     resumes from its persisted checkpoint instead of restarting.
//   - Failed jobs retry with exponential backoff plus deterministic
//     per-job jitter (trialrunner.RetryPolicy semantics lifted to the job
//     level); each attempt runs under an optional deadline, and because
//     campaigns checkpoint as they go, a timed-out attempt's completed
//     trials survive into the next attempt — progress is monotone.
//   - SIGTERM drains gracefully: /readyz flips to 503, new submissions are
//     rejected, in-flight campaigns checkpoint and their jobs are reported
//     resumable. Since results are pure functions of the spec, a kill at
//     ANY point followed by a resume is bit-identical to an undisturbed
//     run.
//   - Every failure path is chaos-testable via the faultinject sites
//     server.enqueue, job.run, job.result-write and trace.read.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pride/internal/faultinject"
	"pride/internal/obs"
	"pride/internal/rng"
	"pride/internal/trialrunner"
)

// Job states. A job is born queued, moves to running on a worker, and ends
// done (result persisted), failed (retry budget exhausted) or resumable
// (interrupted by a drain; resubmitting the same spec resumes it from its
// checkpoint).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateResumable = "resumable"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default; only DataDir is required.
type Config struct {
	// DataDir roots the server's durable state: results/ (the cache) and
	// checkpoints/ (in-flight campaign progress).
	DataDir string
	// QueueDepth bounds the job queue (default 64). A full queue rejects
	// submissions with 503 rather than queueing unboundedly.
	QueueDepth int
	// JobWorkers is the number of concurrent jobs (default 2). Each job
	// runs its campaign on its own trial-worker pool.
	JobWorkers int
	// CampaignWorkers is the per-campaign trial pool size (0 selects
	// trialrunner.DefaultWorkers()). A spec's workers field overrides it
	// per job. Never affects results.
	CampaignWorkers int
	// JobRetry bounds per-job re-execution: Attempts total attempts
	// (default 3), Backoff the first retry's pause (default 100ms,
	// doubling, capped by MaxBackoff default 5s), Deadline the per-attempt
	// wall-clock limit (0 disables). Deterministic per-job jitter in
	// [0, backoff/2) is layered on top.
	JobRetry trialrunner.RetryPolicy
	// RateLimit is the per-client token refill rate in requests/second
	// (0 disables). RateBurst is the bucket depth (default 10).
	RateLimit float64
	RateBurst int
	// Faults, when non-nil, injects deterministic faults into the server
	// sites and is threaded into every campaign (chaos testing).
	Faults *faultinject.Injector
	// Log, when non-nil, receives one structured line per job state
	// change.
	Log io.Writer
}

func (c Config) queueDepth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) jobWorkers() int {
	if c.JobWorkers < 1 {
		return 2
	}
	return c.JobWorkers
}

func (c Config) jobRetry() trialrunner.RetryPolicy {
	p := c.JobRetry
	if p.Attempts < 1 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// Job is the server-side record of one submitted campaign.
type Job struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	// Cached reports the job was served from the result store without
	// recompute.
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`

	spec      Spec
	prep      prepared
	submitIdx int
}

// view snapshots the job for JSON responses. Callers hold s.mu.
func (j *Job) view() Job {
	return Job{
		ID: j.ID, Kind: j.Kind, Key: j.Key, State: j.State,
		Attempts: j.Attempts, Cached: j.Cached, Error: j.Error, Result: j.Result,
	}
}

// Server runs the campaign job queue and its HTTP API.
type Server struct {
	cfg     Config
	retry   trialrunner.RetryPolicy
	camp    *obs.Campaign
	store   *resultStore
	lim     *limiter
	mux     *http.ServeMux
	ckptDir string

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	draining bool
	nextIdx  int
	drained  int
}

// New builds a Server rooted at cfg.DataDir. Call Start to launch the
// worker pool, Handler for the HTTP surface, and Drain to shut down.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Config.DataDir is required")
	}
	store, err := newResultStore(filepath.Join(cfg.DataDir, "results"), cfg.Faults)
	if err != nil {
		return nil, err
	}
	ckptDir := filepath.Join(cfg.DataDir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o777); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		retry:     cfg.jobRetry(),
		camp:      obs.NewCampaign("serve", 0, cfg.jobWorkers()),
		store:     store,
		lim:       newLimiter(cfg.RateLimit, cfg.RateBurst),
		ckptDir:   ckptDir,
		runCtx:    runCtx,
		cancelRun: cancel,
		jobs:      map[string]*Job{},
		queue:     make(chan *Job, cfg.queueDepth()),
	}
	s.camp.Publish()
	s.mux = s.routes()
	return s, nil
}

// Campaign returns the server's obs meter (job-lifecycle counters included),
// for wiring a progress reporter.
func (s *Server) Campaign() *obs.Campaign { return s.camp }

// Start launches the job workers.
func (s *Server) Start() {
	for i := 0; i < s.cfg.jobWorkers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain shuts the server down gracefully: new submissions are rejected and
// /readyz flips to 503, in-flight campaigns are cancelled (they finish
// their in-flight trials and checkpoint), and every interrupted job is
// marked resumable. It blocks until the workers have exited and returns how
// many jobs were interrupted — the daemon's exit code is 130 when nonzero,
// matching the CLI interruption convention.
func (s *Server) Drain() int {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.cancelRun()
	s.wg.Wait()
	s.camp.Unpublish()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drained
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// worker pulls jobs off the queue until it closes on drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// setState transitions a job, logging the change.
func (s *Server) setState(j *Job, state string) {
	s.mu.Lock()
	j.State = state
	s.mu.Unlock()
	s.logf("job id=%s kind=%s state=%s attempts=%d", j.ID, j.Kind, state, j.Attempts)
}

// markResumable records an interrupted job: its checkpoint (if any trials
// completed) stays on disk keyed by the job ID, so resubmitting the same
// spec resumes instead of restarting.
func (s *Server) markResumable(j *Job) {
	s.mu.Lock()
	j.State = StateResumable
	j.Error = "interrupted by drain; resubmit the same spec to resume from its checkpoint"
	s.drained++
	s.mu.Unlock()
	s.camp.AddJobsDrained(1)
	s.logf("job id=%s kind=%s state=%s attempts=%d", j.ID, j.Kind, StateResumable, j.Attempts)
}

// runJob drives one job through the retry lifecycle.
func (s *Server) runJob(j *Job) {
	s.camp.JobStarted()
	defer s.camp.JobFinished()
	if s.runCtx.Err() != nil {
		// Drained while still queued: nothing ran, nothing checkpointed;
		// resubmission simply runs it.
		s.markResumable(j)
		return
	}
	s.setState(j, StateRunning)
	seed := jobSeed(j.Key)
	maxAttempts := s.retry.Attempts
	var lastErr error
	for a := 0; a < maxAttempts; a++ {
		if a > 0 {
			s.camp.AddJobRetries(1)
			if !s.backoff(seed, a) {
				s.markResumable(j)
				return
			}
		}
		s.mu.Lock()
		j.Attempts = a + 1
		s.mu.Unlock()
		res, err := s.attempt(j, a)
		if err == nil {
			if perr := s.store.Put(j.Key, j.Kind, res); perr != nil {
				// The campaign completed but the result didn't land; the
				// store already retried with backoff, so treat it like any
				// other attempt failure. The campaign's own checkpoint was
				// removed on success, so the re-run recomputes — correctness
				// over speed on a failing disk.
				lastErr = perr
				continue
			}
			raw, _ := json.Marshal(res)
			s.mu.Lock()
			j.Result = raw
			j.Error = ""
			j.State = StateDone
			s.mu.Unlock()
			s.logf("job id=%s kind=%s state=%s attempts=%d", j.ID, j.Kind, StateDone, j.Attempts)
			return
		}
		if s.runCtx.Err() != nil {
			s.markResumable(j)
			return
		}
		lastErr = err
		s.logf("job id=%s kind=%s attempt=%d err=%q", j.ID, j.Kind, a+1, err)
	}
	s.mu.Lock()
	j.State = StateFailed
	j.Error = fmt.Sprintf("failed after %d attempt(s): %v", maxAttempts, lastErr)
	s.mu.Unlock()
	s.logf("job id=%s kind=%s state=%s attempts=%d err=%q", j.ID, j.Kind, StateFailed, maxAttempts, lastErr)
}

// backoff sleeps the exponential pause before retry attempt a, with
// deterministic per-job jitter in [0, pause/2) derived from the job key —
// reproducible run-to-run, no shared RNG, no thundering herd. Returns false
// when the drain interrupted the sleep.
func (s *Server) backoff(seed uint64, attempt int) bool {
	d := s.retry.BackoffFor(attempt)
	if d <= 0 {
		return true
	}
	jitter := time.Duration(rng.Derived(seed, uint64(attempt)).Float64() * float64(d) / 2)
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-s.runCtx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attempt executes one attempt of the job's campaign. The job.run fault
// site is consulted first (a panic-kind fault is raised through the same
// recover machinery a genuine campaign panic uses); the campaign then runs
// under the per-attempt deadline with its checkpoint keyed by the job ID.
func (s *Server) attempt(j *Job, a int) (res any, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("server: job %s panicked: %v", j.ID, v)
		}
	}()
	if s.cfg.Faults != nil {
		if f := s.cfg.Faults.JobFault(j.submitIdx, a); f != nil {
			if p, ok := f.(interface{ Panics() bool }); ok && p.Panics() {
				panic(f)
			}
			return nil, f
		}
	}
	actx := s.runCtx
	cancel := context.CancelFunc(func() {})
	if s.retry.Deadline > 0 {
		actx, cancel = context.WithTimeout(actx, s.retry.Deadline)
	}
	defer cancel()
	workers := j.spec.Workers
	if workers == 0 {
		workers = s.cfg.CampaignWorkers
	}
	res, err = j.prep.run(actx, runOpts{
		workers:    workers,
		checkpoint: trialrunner.Checkpoint{Path: filepath.Join(s.ckptDir, j.ID+".ckpt")},
		retry:      j.spec.trialRetry(),
		faults:     s.cfg.Faults,
		camp:       s.camp,
	})
	if err != nil && s.runCtx.Err() == nil && errors.Is(actx.Err(), context.DeadlineExceeded) {
		// The attempt's own deadline fired, not a drain. The campaign
		// checkpointed its completed trials on the way out, so the retry
		// resumes rather than restarting — attempts make monotone progress.
		err = fmt.Errorf("server: job %s attempt %d hit the %v deadline: %w", j.ID, a+1, s.retry.Deadline, err)
	}
	return res, err
}

// routes builds the HTTP surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	// The expvar surface: pride.campaigns (the obs registry, this server's
	// "serve" campaign included) plus the runtime defaults.
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleSubmit accepts a campaign spec, files it under its canonical cache
// key, and returns the job — possibly already done (cache hit), possibly
// pre-existing (idempotent resubmission), freshly queued otherwise.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.lim.Allow(clientID(r)) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "rate limit exceeded"})
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	prep, err := spec.prepare()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	id := jobID(prep.key)

	// Serve from the result cache: same config+seed, no recompute. The
	// check precedes the queue entirely — a cached submission costs one
	// file read even when the daemon is saturated or draining.
	if env, ok, err := s.store.Get(prep.key); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	} else if ok {
		s.camp.AddCacheHits(1)
		writeJSON(w, http.StatusOK, Job{
			ID: id, Kind: spec.Kind, Key: prep.key,
			State: StateDone, Cached: true, Result: env.Result,
		})
		return
	}

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.State != StateResumable && j.State != StateFailed {
		// Idempotent: an identical spec in flight returns the same job.
		v := j.view()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.Err(faultinject.SiteServerEnqueue); err != nil {
			s.mu.Unlock()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
	}
	j := &Job{
		ID: id, Kind: spec.Kind, Key: prep.key, State: StateQueued,
		spec: spec, prep: prep, submitIdx: s.nextIdx,
	}
	select {
	case s.queue <- j:
		s.nextIdx++
		s.jobs[id] = j
		v := j.view()
		s.mu.Unlock()
		s.camp.JobQueued()
		s.logf("job id=%s kind=%s state=%s", v.ID, v.Kind, StateQueued)
		writeJSON(w, http.StatusAccepted, v)
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "job queue full"})
	}
}

// handleJob returns one job's state. Jobs completed in a previous daemon
// life are answered from the result store.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok {
		v := j.view()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	s.mu.Unlock()
	if env, ok, err := s.store.GetByID(id); err == nil && ok {
		writeJSON(w, http.StatusOK, Job{
			ID: id, Kind: env.Kind, Key: env.Key,
			State: StateDone, Cached: true, Result: env.Result,
		})
		return
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
}

// handleList returns every job this daemon life has seen.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	// Deterministic order for scripts and tests.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k-1].ID > views[k].ID; k-- {
			views[k-1], views[k] = views[k], views[k-1]
		}
	}
	writeJSON(w, http.StatusOK, views)
}
