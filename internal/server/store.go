package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pride/internal/faultinject"
)

// jobID derives the stable job identifier from a campaign cache key: the
// first 16 hex digits of its SHA-256. The ID doubles as the result and
// checkpoint filename, which is what makes submission idempotent across
// daemon restarts — the same spec always lands on the same files.
func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// jobSeed derives the deterministic jitter seed of a job from its key, so
// backoff jitter is reproducible run-to-run without any shared RNG state.
func jobSeed(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	var s uint64
	for i := 0; i < 8; i++ {
		s = s<<8 | uint64(sum[i])
	}
	return s
}

// resultEnvelope is the on-disk form of one completed job: the full cache
// key (collision guard — the filename only holds a truncated hash), the
// spec kind, and the campaign's JSON result.
type resultEnvelope struct {
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
}

// resultStore persists completed job results under dir, one JSON file per
// cache key, written atomically (tmp + rename). Writes consult the
// job.result-write fault site and absorb transient failures with a bounded
// backoff, mirroring the checkpoint writer's durability contract.
type resultStore struct {
	dir    string
	faults *faultinject.Injector

	retries int
	backoff time.Duration
}

func newResultStore(dir string, faults *faultinject.Injector) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &resultStore{dir: dir, faults: faults, retries: 3, backoff: time.Millisecond}, nil
}

func (s *resultStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Get returns the stored envelope for the given key, reporting whether one
// exists. A file whose embedded key differs (a truncated-hash collision, or
// a corrupted file) is an error, never a silent wrong-result cache hit.
func (s *resultStore) Get(key string) (resultEnvelope, bool, error) {
	data, err := os.ReadFile(s.path(jobID(key)))
	if os.IsNotExist(err) {
		return resultEnvelope{}, false, nil
	}
	if err != nil {
		return resultEnvelope{}, false, err
	}
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return resultEnvelope{}, false, fmt.Errorf("server: result %s: %v", jobID(key), err)
	}
	if env.Key != key {
		return resultEnvelope{}, false, fmt.Errorf("server: result %s holds key %q, want %q", jobID(key), env.Key, key)
	}
	return env, true, nil
}

// GetByID returns the stored envelope by job ID, for status queries about
// jobs completed in a previous daemon life (the key is inside the file).
func (s *resultStore) GetByID(id string) (resultEnvelope, bool, error) {
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return resultEnvelope{}, false, nil
	}
	if err != nil {
		return resultEnvelope{}, false, err
	}
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return resultEnvelope{}, false, fmt.Errorf("server: result %s: %v", id, err)
	}
	return env, true, nil
}

// Put persists a completed result. Each attempt first consults the
// job.result-write fault site; a failed write (injected or real) retries
// with doubling backoff until the budget is spent.
func (s *resultStore) Put(key, kind string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("server: encoding result: %v", err)
	}
	data, err := json.Marshal(resultEnvelope{Key: key, Kind: kind, Result: raw})
	if err != nil {
		return fmt.Errorf("server: encoding result: %v", err)
	}
	var lastErr error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoff << (attempt - 1))
		}
		if lastErr = s.writeOnce(jobID(key), data); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("server: result write failed after %d attempt(s): %w", s.retries+1, lastErr)
}

func (s *resultStore) writeOnce(id string, data []byte) error {
	if s.faults != nil {
		if err := s.faults.Err(faultinject.SiteJobResultWrite); err != nil {
			return err
		}
	}
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(id))
}
