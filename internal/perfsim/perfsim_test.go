package perfsim

import (
	"math"
	"testing"

	"pride/internal/workload"
)

func mcfLike() workload.Spec {
	return workload.Spec{Name: "mcf", MPKI: 55, RowHitRate: 0.25, MLP: 3.5}
}

func computeBound() workload.Spec {
	return workload.Spec{Name: "povray", MPKI: 0.1, RowHitRate: 0.6, MLP: 1.2}
}

func TestPrIDEHasZeroSlowdown(t *testing.T) {
	// Fig 14: PrIDE's mitigations hide inside tRFC, so its timing is
	// bit-identical to the baseline.
	cfg := DefaultConfig()
	base := Run(cfg, mcfLike(), 30_000, 1)
	pride := Run(cfg, mcfLike(), 30_000, 1) // same config: PrIDE adds no commands
	if base.IPC != pride.IPC {
		t.Fatalf("PrIDE IPC %v differs from baseline %v", pride.IPC, base.IPC)
	}
}

func TestRFMSlowdownOrdering(t *testing.T) {
	// RFM16 blocks banks ~2.5x as often as RFM40: slowdown must be worse.
	cfg := DefaultConfig()
	base := Run(cfg, mcfLike(), 40_000, 2)
	cfg.RFMThreshold = 40
	rfm40 := Run(cfg, mcfLike(), 40_000, 2)
	cfg.RFMThreshold = 16
	rfm16 := Run(cfg, mcfLike(), 40_000, 2)
	if !(rfm16.IPC < rfm40.IPC && rfm40.IPC <= base.IPC) {
		t.Fatalf("IPC ordering violated: base %v, RFM40 %v, RFM16 %v",
			base.IPC, rfm40.IPC, rfm16.IPC)
	}
}

func TestFig14GeoMeansMatchPaper(t *testing.T) {
	// Fig 14's headline numbers: PrIDE 0%, RFM40 ~0.1%, RFM16 ~1.6%
	// average slowdown. Our synthetic traces must land in the same
	// regime: RFM40 under 1%, RFM16 in the ~0.5-4% band.
	rows := Fig14(DefaultConfig(), workload.All(), 12_000, 3)
	pride := GeoMean(rows, "PrIDE")
	rfm40 := GeoMean(rows, "PrIDE+RFM40")
	rfm16 := GeoMean(rows, "PrIDE+RFM16")
	if pride != 1 {
		t.Fatalf("PrIDE geomean = %v, want exactly 1 (zero slowdown)", pride)
	}
	s40, s16 := 1-rfm40, 1-rfm16
	if s40 < 0 || s40 > 0.005 {
		t.Fatalf("RFM40 slowdown = %.4f, paper says ~0.001", s40)
	}
	if s16 < 0.003 || s16 > 0.04 {
		t.Fatalf("RFM16 slowdown = %.4f, paper says ~0.016", s16)
	}
	// The paper's ratio is strongly nonlinear (0.1%% vs 1.6%%): RFM16 must
	// cost several times RFM40, not the naive 2.5x of the block rates.
	if s16 < 3*s40 {
		t.Fatalf("RFM16 slowdown %.4f not >> RFM40 %.4f", s16, s40)
	}
}

func TestMemoryBoundWorkloadsSufferMore(t *testing.T) {
	// The Fig 14 shape: RFM's cost scales with ACT rate, so mcf/lbm lose
	// more than povray/exchange2.
	cfg := DefaultConfig()
	cfg.RFMThreshold = 16
	baseCfg := DefaultConfig()

	mcfBase := Run(baseCfg, mcfLike(), 40_000, 4)
	mcfRFM := Run(cfg, mcfLike(), 40_000, 4)
	povBase := Run(baseCfg, computeBound(), 4_000, 4)
	povRFM := Run(cfg, computeBound(), 4_000, 4)

	mcfSlow := 1 - mcfRFM.IPC/mcfBase.IPC
	povSlow := 1 - povRFM.IPC/povBase.IPC
	if mcfSlow <= povSlow {
		t.Fatalf("memory-bound slowdown %.4f not worse than compute-bound %.4f", mcfSlow, povSlow)
	}
}

func TestRFMCountMatchesThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RFMThreshold = 16
	res := Run(cfg, mcfLike(), 30_000, 5)
	// Roughly one RFM per 16 row misses (row hits don't activate).
	misses := float64(res.Requests) * (1 - mcfLike().RowHitRate)
	want := misses / 16
	if math.Abs(float64(res.RFMs)-want)/want > 0.15 {
		t.Fatalf("RFMs = %d, want ~%.0f", res.RFMs, want)
	}
}

func TestHigherMPKILowersIPC(t *testing.T) {
	cfg := DefaultConfig()
	low := Run(cfg, workload.Spec{Name: "a", MPKI: 1, RowHitRate: 0.5, MLP: 2}, 5_000, 6)
	high := Run(cfg, workload.Spec{Name: "b", MPKI: 50, RowHitRate: 0.5, MLP: 2}, 5_000, 6)
	if high.IPC >= low.IPC {
		t.Fatalf("MPKI=50 IPC %v not below MPKI=1 IPC %v", high.IPC, low.IPC)
	}
}

func TestRowHitsAreFaster(t *testing.T) {
	cfg := DefaultConfig()
	hits := Run(cfg, workload.Spec{Name: "h", MPKI: 30, RowHitRate: 0.95, MLP: 2}, 20_000, 7)
	misses := Run(cfg, workload.Spec{Name: "m", MPKI: 30, RowHitRate: 0.05, MLP: 2}, 20_000, 7)
	if hits.AvgLatencyNs >= misses.AvgLatencyNs {
		t.Fatalf("row-hit latency %v not below row-miss latency %v",
			hits.AvgLatencyNs, misses.AvgLatencyNs)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := Run(cfg, mcfLike(), 10_000, 42)
	b := Run(cfg, mcfLike(), 10_000, 42)
	if a != b {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CoreGHz = 0 },
		func(c *Config) { c.BaseCPI = -1 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.RFMThreshold = -1 },
		func(c *Config) { c.TRCDNs = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGeoMeanEdgeCases(t *testing.T) {
	if got := GeoMean(nil, "x"); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	rows := []NormalizedRow{
		{Workload: "a", Normalized: map[string]float64{"s": 0.5}},
		{Workload: "b", Normalized: map[string]float64{"s": 2.0}},
	}
	if got := GeoMean(rows, "s"); math.Abs(got-1) > 1e-12 {
		t.Fatalf("GeoMean(0.5,2) = %v, want 1", got)
	}
	if got := GeoMean(rows, "missing"); got != 0 {
		t.Fatalf("GeoMean of missing scheme = %v, want 0", got)
	}
}

func BenchmarkRun10K(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		Run(cfg, mcfLike(), 10_000, uint64(i))
	}
}
