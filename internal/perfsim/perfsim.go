// Package perfsim is the performance model substituting for the paper's
// gem5 simulations (Table VII, Fig 14): a bank-level DDR5 timing simulator
// driven by workload traces, with a simple out-of-order core model.
//
// Figure 14's entire effect is DRAM-side: an RFM command makes a bank
// unavailable for 180ns every RFM_TH activations, and mitigations for plain
// PrIDE hide inside the tRFC of regular REF commands (hence zero slowdown).
// The model therefore tracks, per bank, when the bank is next free —
// accounting for tRC occupancy, REF blackouts and RFM blackouts — and
// charges the core for the exposed portion of each miss latency, divided by
// the workload's memory-level parallelism.
package perfsim

import (
	"fmt"
	"math"
	"time"

	"pride/internal/dram"
	"pride/internal/workload"
)

// Config parameterizes a performance simulation (Table VII's system).
type Config struct {
	// Params are the DRAM parameters.
	Params dram.Params
	// CoreGHz is the core clock (Table VII: 3 GHz).
	CoreGHz float64
	// BaseCPI is the core's cycles-per-instruction when no DRAM miss is
	// outstanding (8-wide fetch, so well below 1).
	BaseCPI float64
	// TRCDNs, TCLNs are activation-to-read and read latencies in ns
	// (Table VII: 14.2ns each).
	TRCDNs float64
	TCLNs  float64
	// RFMThreshold issues an RFM blocking the bank every threshold ACTs
	// to that bank (0 = disabled).
	RFMThreshold int
	// RFMBlockNs is the bank-unavailable time per RFM (Section VII-A:
	// 180ns, enough to refresh two rows on each side).
	RFMBlockNs float64
	// Banks is the number of banks the trace spreads over.
	Banks int
	// RowsPerBank for trace generation.
	RowsPerBank int
	// Cores is the number of cores running rate copies of the workload
	// (Table VII: 4). The aggregate request rate scales with it.
	Cores int
	// RFMForceMargin is the RAA multiple at which a deferred RFM must be
	// issued even if it delays demand traffic (the RAAIMT-to-RAAMMT
	// margin of DDR5 refresh management).
	RFMForceMargin float64
}

// DefaultConfig returns the paper's Table VII configuration.
func DefaultConfig() Config {
	return Config{
		Params:         dram.DDR5(),
		CoreGHz:        3.0,
		BaseCPI:        0.25,
		TRCDNs:         14.2,
		TCLNs:          14.2,
		RFMBlockNs:     180,
		Banks:          32,
		RowsPerBank:    128 * 1024,
		Cores:          4,
		RFMForceMargin: 1.25,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CoreGHz <= 0 || c.BaseCPI <= 0:
		return fmt.Errorf("perfsim: core parameters must be positive: %+v", c)
	case c.TRCDNs < 0 || c.TCLNs < 0 || c.RFMBlockNs < 0:
		return fmt.Errorf("perfsim: negative latency: %+v", c)
	case c.Banks < 1 || c.RowsPerBank < 1:
		return fmt.Errorf("perfsim: bad bank shape: %+v", c)
	case c.RFMThreshold < 0:
		return fmt.Errorf("perfsim: negative RFM threshold: %d", c.RFMThreshold)
	case c.Cores < 1:
		return fmt.Errorf("perfsim: Cores must be >= 1, got %d", c.Cores)
	case c.RFMForceMargin < 1:
		return fmt.Errorf("perfsim: RFMForceMargin must be >= 1, got %v", c.RFMForceMargin)
	}
	return c.Params.Validate()
}

// Result reports one workload's simulated performance.
type Result struct {
	Workload string
	// IPC is instructions per core cycle.
	IPC float64
	// AvgLatencyNs is the mean exposed DRAM latency per request.
	AvgLatencyNs float64
	// RFMs counts RFM commands issued across banks.
	RFMs uint64
	// Requests is the number of DRAM requests simulated.
	Requests int
}

// bankState tracks one bank's timing.
type bankState struct {
	freeAt  float64 // ns at which the bank can next accept a command
	openRow int
	acts    int  // RAA counter: ACTs since the last RFM
	pending bool // an RFM is owed but deferred into idle slack
}

// Run simulates `requests` DRAM requests of the workload through the banked
// timing model and returns the achieved IPC.
func Run(cfg Config, spec workload.Spec, requests int, seed uint64) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if requests < 1 {
		panic(fmt.Sprintf("perfsim: requests must be positive, got %d", requests))
	}
	trace := workload.Trace(spec, cfg.Banks, cfg.RowsPerBank, requests, seed)

	banks := make([]bankState, cfg.Banks)
	for i := range banks {
		banks[i].openRow = -1
	}
	trcNs := float64(cfg.Params.TRC) / float64(time.Nanosecond)
	trefiNs := float64(cfg.Params.TREFI) / float64(time.Nanosecond)
	trfcNs := float64(cfg.Params.TRFC) / float64(time.Nanosecond)

	now := 0.0 // ns
	instrs := 0.0
	totalExposed := 0.0
	var rfms uint64
	nsPerInstr := cfg.BaseCPI / cfg.CoreGHz

	for _, req := range trace {
		// The cores retire the gap instructions before the miss; with
		// `Cores` rate copies sharing the channel, aggregate requests
		// arrive Cores times as often per wall-clock nanosecond.
		now += float64(req.InstrGap) * nsPerInstr / float64(cfg.Cores)
		instrs += float64(req.InstrGap)

		b := &banks[req.Bank]

		// REF blackout: each bank is refreshed for tRFC at every tREFI
		// boundary. If the request lands inside a blackout, it waits.
		refPhase := now - float64(int(now/trefiNs))*trefiNs
		start := now
		if refPhase < trfcNs {
			start = now + (trfcNs - refPhase)
		}
		// Lazy RFM issue (DDR5's RAAIMT/RAAMMT margin): a pending RFM is
		// absorbed by idle bank time when possible; it only delays demand
		// traffic once the RAA counter exhausts its margin (2x threshold),
		// which is how controllers keep RFM off the critical path for all
		// but the most bank-intensive phases.
		if b.pending {
			if idle := now - b.freeAt; idle >= cfg.RFMBlockNs {
				b.pending = false
				b.acts -= cfg.RFMThreshold
				rfms++
			} else if float64(b.acts) >= cfg.RFMForceMargin*float64(cfg.RFMThreshold) {
				b.freeAt += cfg.RFMBlockNs
				b.pending = false
				b.acts -= cfg.RFMThreshold
				rfms++
			}
		}

		if b.freeAt > start {
			start = b.freeAt
		}

		var svc float64
		if req.Row == b.openRow {
			svc = cfg.TCLNs
		} else {
			// Row miss: precharge+activate consumes the bank for tRC.
			svc = cfg.TRCDNs + cfg.TCLNs
			b.openRow = req.Row
			b.freeAt = start + trcNs
			b.acts++
			if cfg.RFMThreshold > 0 && b.acts >= cfg.RFMThreshold {
				b.pending = true
			}
		}
		done := start + svc
		latency := done - now
		// The OoO cores overlap misses: each core hides latency behind
		// MLP outstanding misses, and the Cores rate copies overlap each
		// other, so the aggregate timeline advances by latency/(MLP*Cores)
		// per request.
		exposed := latency / (spec.MLP * float64(cfg.Cores))
		totalExposed += latency
		now += exposed
	}

	cycles := now * cfg.CoreGHz
	res := Result{
		Workload:     spec.Name,
		AvgLatencyNs: totalExposed / float64(requests),
		RFMs:         rfms,
		Requests:     requests,
	}
	if cycles > 0 {
		res.IPC = instrs / cycles
	}
	return res
}

// NormalizedRow is one bar group of Fig 14: a workload's IPC under each
// scheme, normalized to the no-RFM baseline.
type NormalizedRow struct {
	Workload string
	// Normalized maps scheme name to IPC relative to baseline.
	Normalized map[string]float64
}

// SchemePerf names a perfsim configuration variant for Fig 14.
type SchemePerf struct {
	Name         string
	RFMThreshold int
}

// Fig14Schemes returns the paper's performance line-up: the DDR5 baseline,
// PrIDE (identical timing — its mitigations hide in tRFC), and the RFM
// co-designs.
func Fig14Schemes() []SchemePerf {
	return []SchemePerf{
		{Name: "Baseline", RFMThreshold: 0},
		{Name: "PrIDE", RFMThreshold: 0}, // in-tRFC mitigation: no timing change
		{Name: "PrIDE+RFM40", RFMThreshold: 40},
		{Name: "PrIDE+RFM16", RFMThreshold: 16},
	}
}

// Fig14 runs every workload under every scheme and returns normalized
// performance (Fig 14). requests controls fidelity (the paper simulates
// 250M instructions; tests use far fewer).
func Fig14(cfg Config, specs []workload.Spec, requests int, seed uint64) []NormalizedRow {
	rows := make([]NormalizedRow, 0, len(specs))
	for _, spec := range specs {
		row := NormalizedRow{Workload: spec.Name, Normalized: map[string]float64{}}
		var baseIPC float64
		for _, s := range Fig14Schemes() {
			c := cfg
			c.RFMThreshold = s.RFMThreshold
			res := Run(c, spec, requests, seed)
			if s.Name == "Baseline" {
				baseIPC = res.IPC
				row.Normalized[s.Name] = 1
				continue
			}
			row.Normalized[s.Name] = res.IPC / baseIPC
		}
		rows = append(rows, row)
	}
	return rows
}

// GeoMean returns the geometric mean of the normalized IPC for one scheme
// across rows (Fig 14's rightmost bars).
func GeoMean(rows []NormalizedRow, scheme string) float64 {
	if len(rows) == 0 {
		return 0
	}
	logSum := 0.0
	for _, r := range rows {
		v := r.Normalized[scheme]
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(rows)))
}
