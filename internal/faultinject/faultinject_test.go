package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Fire(SiteCheckpointWrite) {
			t.Fatal("unarmed site fired")
		}
		if in.FireAt(SiteTrialPanic, uint64(i)) {
			t.Fatal("unarmed indexed site fired")
		}
	}
	if err := in.Err(SiteCheckpointSync); err != nil {
		t.Fatalf("unarmed Err = %v", err)
	}
	if err := in.TrialFault(3, 0); err != nil {
		t.Fatalf("unarmed TrialFault = %v", err)
	}
	if in.EngineTrip(7) {
		t.Fatal("unarmed EngineTrip fired")
	}
}

func TestNthAndEveryTriggers(t *testing.T) {
	in := New(1)
	in.Arm("a", Trigger{Nth: 3})
	var fires []int
	for i := 1; i <= 6; i++ {
		if in.Fire("a") {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("nth=3 fires = %v", fires)
	}

	in.Arm("b", Trigger{Every: 2})
	fires = nil
	for i := 1; i <= 6; i++ {
		if in.Fire("b") {
			fires = append(fires, i)
		}
	}
	if want := []int{2, 4, 6}; !equalInts(fires, want) {
		t.Fatalf("every=2 fires = %v, want %v", fires, want)
	}
	if got := in.Fired("b"); got != 3 {
		t.Fatalf("Fired(b) = %d", got)
	}
	if got := in.Calls("b"); got != 6 {
		t.Fatalf("Calls(b) = %d", got)
	}
}

func TestLimitCapsCallCountedFires(t *testing.T) {
	in := New(1)
	in.Arm("a", Trigger{Every: 1, Limit: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if in.Fire("a") {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("limit=2 fired %d times", n)
	}
}

func TestProbFiresDeterministicallyFromSeed(t *testing.T) {
	runOnce := func(seed uint64) []bool {
		in := New(seed)
		in.Arm("p", Trigger{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire("p")
		}
		return out
	}
	a, b := runOnce(42), runOnce(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed prob sequences diverge at call %d", i)
		}
	}
	c := runOnce(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-draw sequences")
	}
}

func TestSiteStreamsIndependentOfArmingOrder(t *testing.T) {
	seq := func(in *Injector, name string) []bool {
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.Fire(name)
		}
		return out
	}
	in1 := New(9)
	in1.Arm("x", Trigger{Prob: 0.5})
	in1.Arm("y", Trigger{Prob: 0.5})
	in2 := New(9)
	in2.Arm("y", Trigger{Prob: 0.5})
	in2.Arm("x", Trigger{Prob: 0.5})
	if x1, x2 := seq(in1, "x"), seq(in2, "x"); !equalBools(x1, x2) {
		t.Fatal("site x sequence depends on arming order")
	}
	if y1, y2 := seq(in1, "y"), seq(in2, "y"); !equalBools(y1, y2) {
		t.Fatal("site y sequence depends on arming order")
	}
}

func TestFireAtIsSchedulingIndependent(t *testing.T) {
	decide := func(order []uint64) map[uint64]bool {
		in := New(7)
		in.Arm(SiteEngineTrip, Trigger{Prob: 0.4})
		out := make(map[uint64]bool)
		for _, i := range order {
			out[i] = in.FireAt(SiteEngineTrip, i)
		}
		return out
	}
	fwd := decide([]uint64{0, 1, 2, 3, 4, 5, 6, 7})
	rev := decide([]uint64{7, 6, 5, 4, 3, 2, 1, 0})
	for i := uint64(0); i < 8; i++ {
		if fwd[i] != rev[i] {
			t.Fatalf("FireAt decision for index %d depends on call order", i)
		}
	}
	any := false
	for _, v := range fwd {
		if v {
			any = true
		}
	}
	if !any {
		t.Fatal("prob=0.4 over 8 indices fired nothing (suspicious)")
	}
}

func TestFireAtNthAndEvery(t *testing.T) {
	in := New(1)
	in.Arm("n", Trigger{Nth: 3})
	for i := uint64(0); i < 6; i++ {
		want := i == 2
		if got := in.FireAt("n", i); got != want {
			t.Fatalf("nth=3 FireAt(%d) = %v", i, got)
		}
	}
	in.Arm("e", Trigger{Every: 3})
	for i := uint64(0); i < 9; i++ {
		want := (i+1)%3 == 0
		if got := in.FireAt("e", i); got != want {
			t.Fatalf("every=3 FireAt(%d) = %v", i, got)
		}
	}
}

func TestErrReturnsFault(t *testing.T) {
	in := New(1)
	in.Arm(SiteCheckpointWrite, Trigger{Nth: 2, Kind: KindShortWrite})
	if err := in.Err(SiteCheckpointWrite); err != nil {
		t.Fatalf("call 1 errored: %v", err)
	}
	err := in.Err(SiteCheckpointWrite)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("call 2 error %v is not a *Fault", err)
	}
	if f.Site != SiteCheckpointWrite || f.Kind != KindShortWrite || f.Call != 2 {
		t.Fatalf("fault = %+v", f)
	}
	for _, want := range []string{"shortwrite", SiteCheckpointWrite, "call 2"} {
		if !strings.Contains(f.Error(), want) {
			t.Fatalf("fault message missing %q: %q", want, f.Error())
		}
	}
}

func TestCheckpointFaultRoutesToSite(t *testing.T) {
	in := New(1)
	in.Arm(SiteCheckpointSync, Trigger{Nth: 1})
	if err := in.CheckpointFault("write"); err != nil {
		t.Fatalf("write faulted: %v", err)
	}
	if err := in.CheckpointFault("sync"); err == nil {
		t.Fatal("sync did not fault")
	}
}

func TestTrialFaultAttemptsSemantics(t *testing.T) {
	// Default Attempts=0 means exactly the first attempt fails.
	in := New(1)
	in.Arm(SiteTrialPanic, Trigger{Nth: 4, Kind: KindPanic})
	if err := in.TrialFault(2, 0); err != nil {
		t.Fatalf("trial 2 faulted: %v", err)
	}
	err := in.TrialFault(3, 0)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != KindPanic {
		t.Fatalf("trial 3 attempt 0: %v", err)
	}
	if err := in.TrialFault(3, 1); err != nil {
		t.Fatalf("trial 3 attempt 1 should succeed: %v", err)
	}

	// Attempts=-1 fails every attempt (quarantine path).
	in2 := New(1)
	in2.Arm(SiteTrialErr, Trigger{Nth: 1, Attempts: -1})
	for a := 0; a < 5; a++ {
		if err := in2.TrialFault(0, a); err == nil {
			t.Fatalf("attempts=-1 let attempt %d through", a)
		}
	}

	// Attempts=2 fails the first two attempts only.
	in3 := New(1)
	in3.Arm(SiteTrialErr, Trigger{Nth: 1, Attempts: 2})
	for a := 0; a < 4; a++ {
		err := in3.TrialFault(0, a)
		if (a < 2) != (err != nil) {
			t.Fatalf("attempts=2 attempt %d: err=%v", a, err)
		}
	}
}

func TestBindCancelFires(t *testing.T) {
	in := New(1)
	in.Arm(SiteTrialCancel, Trigger{Nth: 2})
	n := 0
	in.BindCancel(func() { n++ })
	in.TrialFault(0, 0)
	if n != 0 {
		t.Fatal("cancel fired on first attempt-0 call")
	}
	in.TrialFault(1, 0)
	if n != 1 {
		t.Fatalf("cancel fired %d times, want 1", n)
	}
	// Retries (attempt>0) do not advance the cancel site.
	in.TrialFault(1, 1)
	if got := in.Calls(SiteTrialCancel); got != 2 {
		t.Fatalf("retry advanced cancel site: calls=%d", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "checkpoint.write:nth=2,kind=shortwrite;trial.panic:nth=4,kind=panic;engine.trip:every=3;flaky:prob=0.25,limit=5,attempts=-1"
	in, err := Parse(99, spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if in.Seed() != 99 {
		t.Fatalf("seed = %d", in.Seed())
	}
	out := in.String()
	in2, err := Parse(99, out)
	if err != nil {
		t.Fatalf("Parse(String()): %v (spec %q)", err, out)
	}
	if got := in2.String(); got != out {
		t.Fatalf("round trip unstable: %q vs %q", got, out)
	}
	// Semantics survive the round trip.
	if !in2.FireAt(SiteEngineTrip, 2) || in2.FireAt(SiteEngineTrip, 3) {
		t.Fatal("engine.trip every=3 semantics lost in round trip")
	}
	if in2.Err(SiteCheckpointWrite) != nil {
		t.Fatal("checkpoint.write nth=2 fired on call 1 after round trip")
	}
	if in2.Err(SiteCheckpointWrite) == nil {
		t.Fatal("checkpoint.write nth=2 missing after round trip")
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	in, err := Parse(1, "")
	if err != nil || in == nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{
		"nocolon",
		"site:badfield=1",
		"site:nth=xyz",
		"site:kind=meteor",
		":nth=1",
		"site:nth",
	} {
		if _, err := Parse(1, bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestInjectorConcurrencySafe(t *testing.T) {
	in := New(5)
	in.Arm("c", Trigger{Prob: 0.5})
	in.Arm(SiteEngineTrip, Trigger{Prob: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Fire("c")
				in.FireAt(SiteEngineTrip, uint64(w*200+i))
			}
		}(w)
	}
	wg.Wait()
	if got := in.Calls("c"); got != 1600 {
		t.Fatalf("Calls = %d, want 1600", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJobFaultAttemptsAndKind(t *testing.T) {
	// Default Attempts=0: exactly the first attempt of the targeted job
	// fails; the armed Kind travels with the fault so kind=panic reaches
	// the job runner's recover machinery.
	in := New(1)
	in.Arm(SiteJobRun, Trigger{Nth: 2, Kind: KindPanic})
	if err := in.JobFault(0, 0); err != nil {
		t.Fatalf("job 0 faulted: %v", err)
	}
	err := in.JobFault(1, 0)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != KindPanic || f.Site != SiteJobRun {
		t.Fatalf("job 1 attempt 0: %v", err)
	}
	if err := in.JobFault(1, 1); err != nil {
		t.Fatalf("job 1 attempt 1 should succeed: %v", err)
	}

	// Attempts=-1 fails every attempt, exhausting the job retry budget.
	in2 := New(1)
	in2.Arm(SiteJobRun, Trigger{Nth: 1, Attempts: -1})
	for a := 0; a < 4; a++ {
		if err := in2.JobFault(0, a); err == nil {
			t.Fatalf("attempts=-1 let attempt %d through", a)
		}
	}
}

func TestTraceReadFaultIsCallCounted(t *testing.T) {
	in := New(1)
	in.Arm(SiteTraceRead, Trigger{Nth: 3})
	for call := 1; call <= 5; call++ {
		err := in.TraceReadFault()
		if (call == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v", call, err)
		}
	}
}

func TestServerSitesRoundTripSpec(t *testing.T) {
	in := New(9)
	in.Arm(SiteServerEnqueue, Trigger{Nth: 1})
	in.Arm(SiteJobRun, Trigger{Nth: 1, Attempts: 2})
	in.Arm(SiteJobResultWrite, Trigger{Every: 2})
	in.Arm(SiteTraceRead, Trigger{Prob: 0.25})
	spec := in.String()
	in2, err := Parse(9, spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	if got := in2.String(); got != spec {
		t.Fatalf("spec did not round-trip:\n  first:  %q\n  second: %q", spec, got)
	}
}
