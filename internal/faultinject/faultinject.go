// Package faultinject provides deterministic, seeded fault schedules for
// chaos-testing the campaign stack. An Injector is armed with per-site
// triggers (nth-call, every-k-calls, probabilistic) and consulted from
// injection points threaded through the layers under test:
//
//   - checkpoint I/O (trialrunner): open/create/write/sync/rename failures
//     and short (torn) writes, via the CheckpointFault hook;
//   - trial execution (trialrunner): forced panics and forced errors per
//     (trial, attempt), via the TrialFault hook;
//   - engine self-checks (montecarlo/sim/system): forced invariant trips
//     that exercise the event→exact fallback, via EngineTrip;
//   - context cancellation: a bound cancel function invoked when the
//     trial.cancel site fires, the test stand-in for a SIGINT/SIGTERM;
//   - the campaign server (internal/server): job admission (server.enqueue,
//     a fired fault rejects the submission with a retryable error), job
//     execution (job.run, consulted per (job, attempt) like the trial.*
//     sites so the job-level retry/backoff machinery is exercised), and
//     result persistence (job.result-write, a fired fault fails the cache
//     write and triggers the store's retry loop);
//   - trace decoding (trace.read): consulted per ReadBatch of a replay
//     job's trace source, so a mid-stream I/O failure on a multi-GB trace
//     is drillable (the decode error carries the byte offset and record
//     index of the failure point).
//
// The full site list: checkpoint.open, checkpoint.create, checkpoint.write,
// checkpoint.sync, checkpoint.rename, trial.panic, trial.err, trial.cancel,
// engine.trip, server.enqueue, job.run, job.result-write, trace.read.
//
// Determinism: probabilistic decisions for indexed sites (trials, engine
// trips) are a pure function of (seed, site, index) — never of scheduling —
// so a chaos run replays bit-identically from its seed at any worker count.
// Call-counted sites (checkpoint I/O) are deterministic whenever the call
// order is (single-writer checkpoint appends are; they run under the pool's
// onDone mutex in completion order, which is deterministic at workers=1).
//
// A schedule round-trips through a compact spec string
// ("checkpoint.write:nth=2,kind=shortwrite;trial.panic:at=1"), so a failing
// chaos run is reproducible from the seed and spec in its log line.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pride/internal/rng"
)

// Kind classifies what an injected fault does at its injection point.
type Kind int

const (
	// KindError fails the operation/attempt with the *Fault as a plain error.
	KindError Kind = iota
	// KindPanic makes a trial attempt panic with the *Fault (exercising the
	// pool's recover/retry machinery rather than its error path).
	KindPanic
	// KindShortWrite makes a checkpoint write land only a prefix of its
	// payload before failing — the torn-write case CRC recovery must catch.
	KindShortWrite
)

// String returns the spec spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindShortWrite:
		return "shortwrite"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "shortwrite":
		return KindShortWrite, nil
	default:
		return KindError, fmt.Errorf("faultinject: unknown kind %q", s)
	}
}

// Fault is the error an injected fault surfaces as.
type Fault struct {
	// Site is the injection point that fired.
	Site string
	// Kind is what the fault does there.
	Kind Kind
	// Call is the 1-based call (or 0-based index, for indexed sites) the
	// fault fired at, for log lines.
	Call int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fault at site %q (call %d)", f.Kind, f.Site, f.Call)
}

// Panics reports whether the fault should be raised as a panic at its
// injection point (KindPanic) rather than returned as an error. Injection
// points discover the capability structurally, so they need no dependency
// on this package.
func (f *Fault) Panics() bool { return f.Kind == KindPanic }

// Short reports whether the fault is a torn write (KindShortWrite): the
// injection point should land a partial payload before failing. Discovered
// structurally, like Panics.
func (f *Fault) Short() bool { return f.Kind == KindShortWrite }

// Canonical site names. Layers consult sites by these names; tests arm them.
const (
	SiteCheckpointOpen   = "checkpoint.open"
	SiteCheckpointCreate = "checkpoint.create"
	SiteCheckpointWrite  = "checkpoint.write"
	SiteCheckpointSync   = "checkpoint.sync"
	SiteCheckpointRename = "checkpoint.rename"
	SiteTrialPanic       = "trial.panic"
	SiteTrialErr         = "trial.err"
	SiteTrialCancel      = "trial.cancel"
	SiteEngineTrip       = "engine.trip"
	SiteServerEnqueue    = "server.enqueue"
	SiteJobRun           = "job.run"
	SiteJobResultWrite   = "job.result-write"
	SiteTraceRead        = "trace.read"
)

// Trigger describes when an armed site fires. Conditions compose as OR; the
// zero Trigger never fires.
type Trigger struct {
	// Nth fires on exactly the n-th call (1-based) for call-counted sites,
	// or at index n-1 for indexed sites. 0 disables.
	Nth int
	// Every fires on every k-th call (call%k == 0, 1-based), or at every
	// k-th index ((index+1)%k == 0). 0 disables; 1 fires always.
	Every int
	// Prob fires with this probability per call/index, drawn from the
	// site's private seeded stream (call-counted) or derived statelessly
	// from (seed, site, index) (indexed). 0 disables.
	Prob float64
	// Limit caps the total fires of a call-counted site (0 = unlimited).
	// Indexed sites ignore it: a cap would reintroduce scheduling order
	// into the decision.
	Limit int
	// Kind is what the fault does when it fires (default KindError).
	Kind Kind
	// Attempts is how many leading attempts of a faulted trial fail, for
	// the trial.* sites: the default 0 means 1 (the first attempt fails and
	// a retry succeeds); -1 means every attempt fails, exhausting the retry
	// budget and quarantining the trial. Other sites ignore it.
	Attempts int
}

func (t Trigger) failsAttempt(attempt int) bool {
	if t.Attempts < 0 {
		return true
	}
	n := t.Attempts
	if n == 0 {
		n = 1
	}
	return attempt < n
}

// site is the mutable per-site state: the armed trigger, a call counter, a
// fire counter, and a private deterministic stream for Prob draws.
type site struct {
	trig  Trigger
	calls int
	fired int
	r     *rng.Stream
	thr   rng.Threshold
}

// Injector is a seeded set of armed fault sites. All methods are safe for
// concurrent use; an unarmed site never fires and costs one map lookup.
type Injector struct {
	seed uint64

	mu     sync.Mutex
	sites  map[string]*site
	cancel func()
}

// New returns an Injector with no sites armed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*site)}
}

// Seed returns the injector's seed, for log lines.
func (in *Injector) Seed() uint64 { return in.seed }

// siteSeed derives the per-site stream seed from (seed, site name) alone, so
// arming order never changes a site's draw sequence.
func (in *Injector) siteSeed(name string) uint64 {
	// FNV-1a over the site name, mixed through the index-derivation hash.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return rng.DeriveSeed(in.seed, h)
}

// Arm installs (or replaces) the trigger of a site, resetting its counters.
func (in *Injector) Arm(name string, t Trigger) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[name] = &site{
		trig: t,
		r:    rng.New(in.siteSeed(name)),
		thr:  rng.NewThreshold(clampProb(t.Prob)),
	}
}

func clampProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// BindCancel registers the cancel function the trial.cancel site invokes
// when it fires — the deterministic stand-in for a signal landing mid-run.
func (in *Injector) BindCancel(cancel func()) {
	in.mu.Lock()
	in.cancel = cancel
	in.mu.Unlock()
}

// Fire counts one call to a call-counted site and reports whether the armed
// trigger fires on it. Unarmed sites never fire.
func (in *Injector) Fire(name string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		return false
	}
	s.calls++
	if s.trig.Limit > 0 && s.fired >= s.trig.Limit {
		return false
	}
	hit := false
	if s.trig.Nth > 0 && s.calls == s.trig.Nth {
		hit = true
	}
	if !hit && s.trig.Every > 0 && s.calls%s.trig.Every == 0 {
		hit = true
	}
	if !hit && s.trig.Prob > 0 && s.r.BernoulliT(s.thr) {
		hit = true
	}
	if hit {
		s.fired++
	}
	return hit
}

// FireAt decides, deterministically and independently of call order, whether
// the site fires at the given logical index (a trial number, an engine-trip
// slot). The decision is a pure function of (seed, site, index, trigger):
// Nth matches index == Nth-1, Every matches (index+1)%Every == 0, and Prob
// draws one Bernoulli from a stream derived from (seed, site, index). Limit
// is ignored (it would couple the decision to scheduling order). FireAt
// counts fires but not calls.
func (in *Injector) FireAt(name string, index uint64) bool {
	in.mu.Lock()
	s := in.sites[name]
	if s == nil {
		in.mu.Unlock()
		return false
	}
	trig, thr, siteSeed := s.trig, s.thr, in.siteSeed(name)
	in.mu.Unlock()

	hit := false
	if trig.Nth > 0 && index == uint64(trig.Nth-1) {
		hit = true
	}
	if !hit && trig.Every > 0 && (index+1)%uint64(trig.Every) == 0 {
		hit = true
	}
	if !hit && trig.Prob > 0 && rng.Derived(siteSeed, index).BernoulliT(thr) {
		hit = true
	}
	if hit {
		in.mu.Lock()
		s.fired++
		in.mu.Unlock()
	}
	return hit
}

// Err is Fire returning the fault as an error: nil when the site does not
// fire, a *Fault of the armed kind when it does.
func (in *Injector) Err(name string) error {
	if !in.Fire(name) {
		return nil
	}
	in.mu.Lock()
	s := in.sites[name]
	call, kind := s.calls, s.trig.Kind
	in.mu.Unlock()
	return &Fault{Site: name, Kind: kind, Call: call}
}

// Calls returns how many times a call-counted site has been consulted.
func (in *Injector) Calls(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.sites[name]; s != nil {
		return s.calls
	}
	return 0
}

// Fired returns how many times a site has fired, for test assertions and
// chaos-run summaries.
func (in *Injector) Fired(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.sites[name]; s != nil {
		return s.fired
	}
	return 0
}

// CheckpointFault implements trialrunner's checkpoint fault hook: op is the
// bare operation name ("open", "create", "write", "sync", "rename"),
// consulted as site "checkpoint.<op>".
func (in *Injector) CheckpointFault(op string) error {
	return in.Err("checkpoint." + op)
}

// TrialFault implements trialrunner's trial fault hook: consulted before
// attempt `attempt` (0-based) of trial `trial`. The trial.panic and
// trial.err sites decide per trial index (scheduling-independent), failing
// the number of leading attempts their trigger's Attempts field names. The
// trial.cancel site is call-counted on first attempts and invokes the bound
// cancel function when it fires.
func (in *Injector) TrialFault(trial, attempt int) error {
	if attempt == 0 && in.Fire(SiteTrialCancel) {
		in.mu.Lock()
		cancel := in.cancel
		in.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	if f := in.trialSite(SiteTrialPanic, KindPanic, trial, attempt); f != nil {
		return f
	}
	if f := in.trialSite(SiteTrialErr, KindError, trial, attempt); f != nil {
		return f
	}
	return nil
}

func (in *Injector) trialSite(name string, kind Kind, trial, attempt int) error {
	in.mu.Lock()
	s := in.sites[name]
	in.mu.Unlock()
	if s == nil || !s.trig.failsAttempt(attempt) {
		return nil
	}
	if !in.FireAt(name, uint64(trial)) {
		return nil
	}
	return &Fault{Site: name, Kind: kind, Call: trial}
}

// JobFault implements the campaign server's job fault hook: consulted before
// attempt `attempt` (0-based) of job `job`. The job.run site decides per job
// index — scheduling-independent, exactly like the trial.* sites — failing
// the number of leading attempts its trigger's Attempts field names, so a
// transient job fault retries to the identical result and attempts=-1
// exhausts the job's retry budget. The armed Kind is honoured: kind=panic
// faults are raised through the job runner's recover machinery.
func (in *Injector) JobFault(job, attempt int) error {
	in.mu.Lock()
	s := in.sites[SiteJobRun]
	var kind Kind
	if s != nil {
		kind = s.trig.Kind
	}
	in.mu.Unlock()
	if s == nil || !s.trig.failsAttempt(attempt) {
		return nil
	}
	if !in.FireAt(SiteJobRun, uint64(job)) {
		return nil
	}
	return &Fault{Site: SiteJobRun, Kind: kind, Call: job}
}

// TraceReadFault implements the trace layer's fault hook: consulted once per
// ReadBatch of a fault-wrapped trace source (call-counted, site trace.read).
func (in *Injector) TraceReadFault() error {
	return in.Err(SiteTraceRead)
}

// EngineTrip reports whether the forced-invariant-trip site fires for the
// given trial index. Campaign layers consult it inside their guarded
// event-engine runs; a trip makes the trial fall back to the exact engine
// exactly as a real guard violation would.
func (in *Injector) EngineTrip(trial uint64) bool {
	return in.FireAt(SiteEngineTrip, trial)
}

// String renders the armed schedule as a spec string (sites sorted by name)
// that Parse accepts, so chaos log lines are replayable.
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for name := range in.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		t := in.sites[name].trig
		var kv []string
		if t.Nth > 0 {
			kv = append(kv, fmt.Sprintf("nth=%d", t.Nth))
		}
		if t.Every > 0 {
			kv = append(kv, fmt.Sprintf("every=%d", t.Every))
		}
		if t.Prob > 0 {
			kv = append(kv, fmt.Sprintf("prob=%g", t.Prob))
		}
		if t.Limit > 0 {
			kv = append(kv, fmt.Sprintf("limit=%d", t.Limit))
		}
		if t.Kind != KindError {
			kv = append(kv, "kind="+t.Kind.String())
		}
		if t.Attempts != 0 {
			kv = append(kv, fmt.Sprintf("attempts=%d", t.Attempts))
		}
		parts = append(parts, name+":"+strings.Join(kv, ","))
	}
	return strings.Join(parts, ";")
}

// Parse builds an Injector from a seed and a spec string:
//
//	site:key=val,key=val;site2:key=val
//
// Keys: nth, every, prob, limit, attempts (integers / float), and
// kind=error|panic|shortwrite. An empty spec yields an injector with no
// sites armed. Parse(seed, in.String()) reproduces in's schedule.
func Parse(seed uint64, spec string) (*Injector, error) {
	in := New(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return in, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, kvs, ok := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: malformed site clause %q (want site:key=val,...)", part)
		}
		var t Trigger
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: malformed trigger field %q in site %q", kv, name)
			}
			var err error
			switch k {
			case "nth":
				t.Nth, err = strconv.Atoi(v)
			case "every":
				t.Every, err = strconv.Atoi(v)
			case "prob":
				t.Prob, err = strconv.ParseFloat(v, 64)
			case "limit":
				t.Limit, err = strconv.Atoi(v)
			case "attempts":
				t.Attempts, err = strconv.Atoi(v)
			case "kind":
				t.Kind, err = parseKind(v)
			default:
				return nil, fmt.Errorf("faultinject: unknown trigger field %q in site %q", k, name)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad value for %s in site %q: %v", k, name, err)
			}
		}
		in.Arm(name, t)
	}
	return in, nil
}
