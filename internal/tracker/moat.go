// MOAT (arXiv:2407.09995) secures the JEDEC PRAC framework with exactly one
// tracked row: every DRAM row carries an in-mat activation counter, and the
// tracker is just a register holding the hottest row currently above an
// internal threshold.
//
// Two thresholds drive it:
//
//   - ATI (threshold-internal): a row whose counter reaches ATI becomes the
//     pending mitigation candidate; the highest-count such row is mitigated
//     at the next mitigation opportunity (REF, or RFM when co-designed) and
//     its counter resets. This is the normal, zero-slowdown path.
//   - ATO (threshold-outstanding): a row whose counter reaches ATO raises
//     the PRAC ALERT — the controller back-pressures traffic and the row is
//     mitigated IMMEDIATELY (modelled via the ImmediateMitigator drain, the
//     same mechanism PARA uses). ATO is therefore a hard cap: no row can
//     ever accumulate more than ATO activations between mitigations, which
//     makes MOAT's analytic threshold simply TRH* = ATO, deterministically.
//
// MOAT is fully deterministic — no RNG — so it does NOT implement the
// skip-ahead contract: the event engines must take the exact per-ACT path
// (a pattern-dependent counter compare cannot be fast-forwarded), and a
// fallback test pins that the event engine's answer is bit-identical to the
// exact engine's.
//
// Storage accounting: the per-row counters live in the DRAM mats per PRAC,
// not in SRAM, so StorageBits counts only the tracker-side registers (the
// pending row and its valid bit). DRAMCounterBits reports the in-mat cost
// separately for the shootout table's footnote.
package tracker

import "fmt"

// Default MOAT thresholds: ATO=128 is the paper's headline configuration
// (TRH* = 128, far below any deployed device's threshold), with the internal
// threshold at 32 so the common case is handled by regular REFs and ALERT
// back-off stays rare.
const (
	DefaultMOATATI = 32
	DefaultMOATATO = 128
)

// MOATStatistics counts MOAT's decisions for analysis.
type MOATStatistics struct {
	// Activations is the number of demand ACTs observed.
	Activations uint64
	// Alerts counts ATO crossings (immediate mitigations).
	Alerts uint64
	// Mitigations counts pending rows mitigated at opportunities.
	Mitigations uint64
}

// MOAT is the per-row-counter tracker.
type MOAT struct {
	rows    int
	rowBits int
	ati     int
	ato     int

	counts []int32
	// hot is the number of rows currently at or above ATI — the backlog the
	// mitigation opportunities drain, reported as Occupancy.
	hot int

	pendingRow   int
	pendingValid bool
	alerts       []Mitigation

	stats MOATStatistics
}

var _ Tracker = (*MOAT)(nil)

// NewMOAT returns a MOAT tracker over a bank of the given row count, with
// internal threshold ati and alert threshold ato. It panics on an invalid
// configuration.
func NewMOAT(rows, rowBits, ati, ato int) *MOAT {
	if rows < 1 {
		panic(fmt.Sprintf("moat: rows must be >= 1, got %d", rows))
	}
	if rowBits < 1 || 1<<rowBits < rows {
		panic(fmt.Sprintf("moat: %d row bits cannot address %d rows", rowBits, rows))
	}
	if ati < 1 {
		panic(fmt.Sprintf("moat: ATI must be >= 1, got %d", ati))
	}
	if ato <= ati {
		panic(fmt.Sprintf("moat: ATO (%d) must exceed ATI (%d)", ato, ati))
	}
	return &MOAT{rows: rows, rowBits: rowBits, ati: ati, ato: ato, counts: make([]int32, rows)}
}

// Name implements Tracker.
func (m *MOAT) Name() string { return "MOAT" }

// ATI returns the internal mitigation threshold.
func (m *MOAT) ATI() int { return m.ati }

// ATO returns the alert threshold — the deterministic disturbance cap.
func (m *MOAT) ATO() int { return m.ato }

// OnActivate bumps the row's counter. Crossing ATI makes the row the
// pending candidate if it is now the hottest; crossing ATO queues an
// immediate ALERT mitigation and resets the counter.
func (m *MOAT) OnActivate(row int) {
	m.stats.Activations++
	c := m.counts[row] + 1
	m.counts[row] = c
	switch {
	case int(c) >= m.ato:
		m.alerts = append(m.alerts, Mitigation{Row: row, Level: 1})
		m.counts[row] = 0
		m.hot--
		m.stats.Alerts++
		if m.pendingValid && m.pendingRow == row {
			m.pendingValid = false
		}
	case int(c) >= m.ati:
		if int(c) == m.ati {
			m.hot++
		}
		if !m.pendingValid || (row != m.pendingRow && c > m.counts[m.pendingRow]) {
			m.pendingRow = row
			m.pendingValid = true
		}
	}
}

// DrainImmediate returns and clears the ALERT mitigations (structurally
// satisfying baseline.ImmediateMitigator, like PARA). The returned slice is
// reused: it is valid only until the next OnActivate.
func (m *MOAT) DrainImmediate() []Mitigation {
	out := m.alerts
	m.alerts = m.alerts[:0]
	return out
}

// OnMitigate mitigates the pending (hottest ATI-crossing) row, resetting its
// counter. Candidates are re-established by subsequent activations, matching
// the hardware's update-on-ACT register.
func (m *MOAT) OnMitigate() (Mitigation, bool) {
	if !m.pendingValid {
		return Mitigation{}, false
	}
	row := m.pendingRow
	m.pendingValid = false
	m.counts[row] = 0
	m.hot--
	m.stats.Mitigations++
	return Mitigation{Row: row, Level: 1}, true
}

// Occupancy implements Tracker: the number of rows at or above ATI awaiting
// mitigation.
func (m *MOAT) Occupancy() int { return m.hot }

// StorageBits implements Tracker: only the SRAM-side registers — the pending
// row register and its valid bit. The per-row counters are in-DRAM (PRAC),
// accounted by DRAMCounterBits.
func (m *MOAT) StorageBits() int { return m.rowBits + 1 }

// DRAMCounterBits returns the in-mat counter cost: one 0..ATO-1 counter per
// row (the counter resets upon reaching ATO, so ATO itself is never stored).
func (m *MOAT) DRAMCounterBits() int { return m.rows * counterBits(m.ato-1) }

// Stats returns a copy of the decision counters.
func (m *MOAT) Stats() MOATStatistics { return m.stats }

// Reset implements Tracker.
func (m *MOAT) Reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.hot = 0
	m.pendingValid = false
	m.alerts = m.alerts[:0]
	m.stats = MOATStatistics{}
}
