// MINT — the Minimalist In-DRAM Tracker (arXiv:2407.16038, same author
// cluster as PrIDE) — is the logical endpoint of the probabilistic-tracker
// line: a SINGLE tracking slot and a schedule instead of per-ACT coin flips.
//
// At the start of each mitigation interval (the W activations between
// consecutive mitigation opportunities) MINT draws one target position X
// uniformly from [1, W]. The X-th activation of the interval is captured
// into the slot; at the interval's end the captured row is mitigated and a
// fresh X is drawn for the next interval. Every activation therefore has
// exactly probability 1/W of being selected, yet the tracker makes no
// per-ACT draws at all — selection is decided before the interval begins,
// independent of which rows are accessed. That keeps MINT
// pattern-oblivious like PrIDE (the analytic bound of Eq. 4 applies with
// p = 1/W) while shrinking storage to a single row register plus two
// ceil(log2 W)-bit counters.
//
// Differences from PrIDE worth keeping in mind when reading the shootout
// table: MINT has no transitive protection (every mitigation is level 1),
// its tardiness is one window (W) instead of N*W, and it has zero retention
// loss — the slot is always mitigated before it can be displaced.
package tracker

import (
	"fmt"

	"pride/internal/guard"
	"pride/internal/rng"
)

// MINTStatistics counts MINT's decisions for analysis.
type MINTStatistics struct {
	// Activations is the number of demand ACTs observed.
	Activations uint64
	// Captures counts activations selected into the slot.
	Captures uint64
	// Mitigations counts captured rows handed to the mitigation engine.
	Mitigations uint64
	// EmptyIntervals counts mitigation opportunities where the interval
	// held fewer activations than the target position (nothing captured).
	EmptyIntervals uint64
}

// MINT is the single-slot interval tracker. The position counter saturates
// at W: once the interval's target position has passed (captured or not),
// further activations in an over-long interval cannot change the slot, which
// is exactly the behaviour of a hardware counter sized for one tREFI.
type MINT struct {
	w       int
	rowBits int
	rng     *rng.Stream

	pos       int // activations observed this interval, saturating at w
	target    int // 1-based position selected for capture this interval
	slotRow   int
	slotValid bool

	selfCheck bool
	stats     MINTStatistics
}

var (
	_ Tracker           = (*MINT)(nil)
	_ ScheduledAdvancer = (*MINT)(nil)
	_ SelfChecker       = (*MINT)(nil)
)

// NewMINT returns a MINT tracker for a mitigation window of w activations
// (w = 79 for DDR5 with one mitigation per tREFI), drawing its per-interval
// target positions from r. rowBits sizes the slot's row register for storage
// accounting. It panics on an invalid configuration.
func NewMINT(w, rowBits int, r *rng.Stream) *MINT {
	if w < 1 {
		panic(fmt.Sprintf("mint: window must be >= 1, got %d", w))
	}
	if rowBits < 1 {
		panic(fmt.Sprintf("mint: rowBits must be >= 1, got %d", rowBits))
	}
	if r == nil {
		panic("mint: nil rng stream")
	}
	m := &MINT{w: w, rowBits: rowBits, rng: r}
	m.drawTarget()
	return m
}

// drawTarget selects the next interval's capture position uniformly from
// [1, w]. A single raw draw with a modulo fold (negligible bias at 64 bits)
// rather than rejection sampling, so rigged constant test sources terminate.
func (m *MINT) drawTarget() {
	m.target = 1 + int(m.rng.Uint64()%uint64(m.w))
}

// Name implements Tracker.
func (m *MINT) Name() string { return "MINT" }

// Window returns the configured mitigation window W.
func (m *MINT) Window() int { return m.w }

// SetSelfCheck implements SelfChecker.
func (m *MINT) SetSelfCheck(on bool) { m.selfCheck = on }

// OnActivate observes one demand activation: if it sits at the interval's
// selected position, it is captured into the slot. No draws.
func (m *MINT) OnActivate(row int) {
	m.stats.Activations++
	if m.pos >= m.w {
		return // interval over-ran the window; the schedule has passed
	}
	m.pos++
	if m.pos == m.target {
		m.slotRow = row
		m.slotValid = true
		m.stats.Captures++
	}
}

// OnMitigate ends the interval: the captured row (if any) is mitigated at
// level 1, the position counter resets, and the next interval's target is
// drawn — the one draw MINT makes per mitigation opportunity.
func (m *MINT) OnMitigate() (Mitigation, bool) {
	out, ok := Mitigation{}, false
	if m.slotValid {
		out, ok = Mitigation{Row: m.slotRow, Level: 1}, true
		m.slotValid = false
		m.stats.Mitigations++
	} else {
		m.stats.EmptyIntervals++
	}
	m.pos = 0
	m.drawTarget()
	return out, ok
}

// SupportsSkipAhead implements ScheduledAdvancer: MINT's selection is fixed
// before the interval begins, so it is unconditionally pattern-independent.
func (m *MINT) SupportsSkipAhead() bool { return true }

// NextInsert implements ScheduledAdvancer: the distance to the scheduled
// capture, or ok=false once the interval's slot has passed.
func (m *MINT) NextInsert() (int, bool) {
	if m.pos >= m.target {
		return 0, false
	}
	return m.target - m.pos - 1, true
}

// AdvanceIdle implements ScheduledAdvancer: n activations that do not reach
// the scheduled position. The fast-forward is a saturating counter add.
func (m *MINT) AdvanceIdle(n int) {
	if n < 0 {
		panic(fmt.Sprintf("mint: AdvanceIdle(%d)", n))
	}
	m.stats.Activations += uint64(n)
	if m.selfCheck && m.pos < m.target && m.pos+n >= m.target {
		guard.Failf("mint", "schedule-crossed",
			"AdvanceIdle(%d) from position %d crosses the scheduled slot %d", n, m.pos, m.target)
	}
	m.pos += n
	if m.pos > m.w {
		m.pos = m.w
	}
}

// ActivateInsert implements ScheduledAdvancer: the activation at the
// scheduled position, captured without a draw.
func (m *MINT) ActivateInsert(row int) {
	m.stats.Activations++
	if m.selfCheck && m.pos+1 != m.target {
		guard.Failf("mint", "schedule-position",
			"ActivateInsert at position %d, schedule says %d", m.pos+1, m.target)
	}
	if m.pos < m.w {
		m.pos++
	}
	m.slotRow = row
	m.slotValid = true
	m.stats.Captures++
}

// Occupancy implements Tracker.
func (m *MINT) Occupancy() int {
	if m.slotValid {
		return 1
	}
	return 0
}

// Snapshot returns the slot contents oldest-first (at most one entry), for
// the conformance suite's FIFO-order property.
func (m *MINT) Snapshot() []Mitigation {
	if !m.slotValid {
		return nil
	}
	return []Mitigation{{Row: m.slotRow, Level: 1}}
}

// StorageBits implements Tracker, itemized against the paper's bit budget:
// the row register (rowBits) with its valid bit, the interval position
// counter (0..W, ceil(log2(W+1)) bits), and the target-position register
// (1..W, ceil(log2 W) bits). For rowBits=17 and W=79 this is 32 bits —
// versus PrIDE's 85 and the kilobit-scale counter tables.
func (m *MINT) StorageBits() int {
	return m.rowBits + 1 + counterBits(m.w) + counterBits(m.w-1)
}

// Stats returns a copy of the decision counters.
func (m *MINT) Stats() MINTStatistics { return m.stats }

// Reset implements Tracker: the slot and interval position clear, and a
// fresh target is drawn from the stream (the schedule cannot rewind — like
// hardware, a reset starts a new interval rather than replaying an old one).
func (m *MINT) Reset() {
	m.pos = 0
	m.slotValid = false
	m.stats = MINTStatistics{}
	m.drawTarget()
}

// counterBits returns the width of a hardware counter representing every
// value in 0..max inclusive: ceil(log2(max+1)) bits.
func counterBits(max int) int {
	b := 0
	for v := max; v > 0; v >>= 1 {
		b++
	}
	return b
}
