// Package tracker defines the interface shared by every in-DRAM (and
// controller-side) Rowhammer tracker in this repository: the paper's PrIDE
// as well as the baselines it is compared against (TRR, DSAC, PRoHIT, PARA,
// PARFM, Graphene).
//
// A tracker, per Section II-G of the paper, is an N-entry structure managed
// by three policies — insertion, eviction, and mitigation — and the interface
// mirrors exactly the two events those policies react to: a demand activation
// and a mitigation opportunity.
package tracker

// Mitigation describes one mitigative action selected by a tracker: refresh
// the neighbours of Row at distance band Level (Level 1 = the immediately
// adjacent rows; Level m = the m-th neighbours, used by PrIDE's
// transitive-attack defence, Section IV-E).
type Mitigation struct {
	Row   int
	Level int
}

// Tracker is the canonical in-DRAM tracker abstraction.
//
// Implementations are single-goroutine objects: a DRAM bank's mitigation
// engine is inherently serial, and the simulators drive one tracker per bank
// from one goroutine. None of the implementations in this repository are
// safe for concurrent use, by design.
type Tracker interface {
	// Name returns a short scheme identifier ("PrIDE", "DSAC", ...).
	Name() string

	// OnActivate observes one demand activation of row. The tracker may
	// update internal state (sample the row, bump counters, ...).
	OnActivate(row int)

	// OnMitigate is called at each mitigation opportunity (every REF for
	// the default 1-per-tREFI rate, plus every RFM when co-designed with
	// refresh management). It returns the mitigation the device should
	// perform and true, or false if the tracker has nothing to mitigate.
	OnMitigate() (Mitigation, bool)

	// Occupancy returns the number of currently valid tracking entries.
	Occupancy() int

	// StorageBits returns the per-bank SRAM cost of the tracker in bits,
	// used for Table XI style storage comparisons.
	StorageBits() int

	// Reset restores the tracker to its initial (empty) state without
	// reseeding any internal randomness source.
	Reset()
}

// SkipAdvancer is implemented by trackers whose insertion decision is an
// i.i.d. Bernoulli(p) draw independent of tracker state — PrIDE's defining
// property (requirements R1/R2 of Section IV-B) and PARA's by construction.
// For such trackers the event-driven engines replace the per-ACT
// draw-and-probe loop with geometric inter-arrival sampling: draw the gap to
// the next insertion once, account for the gap with AdvanceIdle, and apply
// the insertion with ActivateInsert.
//
// The pair (AdvanceIdle(n); ActivateInsert(row)) must leave the tracker in
// exactly the state n failed-draw OnActivate calls followed by one
// successful-draw OnActivate(row) would, while consuming ZERO draws from the
// tracker's randomness stream — the caller has already consumed the one
// geometric draw that stands in for the n+1 Bernoulli draws. Draws made
// outside OnActivate (e.g. PrIDE's transitive re-insertion inside
// OnMitigate, Random-policy victim selection) are unaffected and still come
// from the tracker's stream.
type SkipAdvancer interface {
	Tracker

	// SupportsSkipAhead reports whether the CURRENT configuration keeps the
	// insertion decision state-independent. Configurations that couple
	// insertion to buffer contents (PrIDE's deliberately insecure R1/R2
	// ablation switches) must return false, directing the engines back to
	// the exact per-ACT path.
	SupportsSkipAhead() bool

	// InsertionProb returns the per-ACT insertion probability p the
	// skip-ahead gap must be sampled with.
	InsertionProb() float64

	// AdvanceIdle accounts for n consecutive activations whose insertion
	// draws all failed. Equivalent to n OnActivate calls that do not
	// insert; consumes no draws. n may be zero; negative n panics.
	AdvanceIdle(n int)

	// ActivateInsert observes one activation whose insertion draw
	// succeeded. Equivalent to an OnActivate(row) whose draw fires;
	// consumes no draws.
	ActivateInsert(row int)
}

// SelfChecker is implemented by trackers that can enable runtime invariant
// guards (-selfcheck): cheap assertions on internal state (FIFO occupancy
// and pointer bounds, entry-level ranges) that panic with a guard.Violation
// when an engine bug or memory corruption silently breaks the structure.
// Discovered structurally by the simulation layers, so trackers without
// self-checks need no stub.
type SelfChecker interface {
	// SetSelfCheck enables or disables the tracker's invariant guards.
	SetSelfCheck(on bool)
}
