// Package tracker defines the interface shared by every in-DRAM (and
// controller-side) Rowhammer tracker in this repository: the paper's PrIDE
// as well as the baselines it is compared against (TRR, DSAC, PRoHIT, PARA,
// PARFM, Graphene).
//
// A tracker, per Section II-G of the paper, is an N-entry structure managed
// by three policies — insertion, eviction, and mitigation — and the interface
// mirrors exactly the two events those policies react to: a demand activation
// and a mitigation opportunity.
package tracker

// Mitigation describes one mitigative action selected by a tracker: refresh
// the neighbours of Row at distance band Level (Level 1 = the immediately
// adjacent rows; Level m = the m-th neighbours, used by PrIDE's
// transitive-attack defence, Section IV-E).
type Mitigation struct {
	Row   int
	Level int
}

// Tracker is the canonical in-DRAM tracker abstraction.
//
// Implementations are single-goroutine objects: a DRAM bank's mitigation
// engine is inherently serial, and the simulators drive one tracker per bank
// from one goroutine. None of the implementations in this repository are
// safe for concurrent use, by design.
type Tracker interface {
	// Name returns a short scheme identifier ("PrIDE", "DSAC", ...).
	Name() string

	// OnActivate observes one demand activation of row. The tracker may
	// update internal state (sample the row, bump counters, ...).
	OnActivate(row int)

	// OnMitigate is called at each mitigation opportunity (every REF for
	// the default 1-per-tREFI rate, plus every RFM when co-designed with
	// refresh management). It returns the mitigation the device should
	// perform and true, or false if the tracker has nothing to mitigate.
	OnMitigate() (Mitigation, bool)

	// Occupancy returns the number of currently valid tracking entries.
	Occupancy() int

	// StorageBits returns the per-bank SRAM cost of the tracker in bits,
	// used for Table XI style storage comparisons.
	StorageBits() int

	// Reset restores the tracker to its initial (empty) state without
	// reseeding any internal randomness source.
	Reset()
}
