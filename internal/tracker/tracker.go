// Package tracker defines the interface shared by every in-DRAM (and
// controller-side) Rowhammer tracker in this repository: the paper's PrIDE
// as well as the baselines it is compared against (TRR, DSAC, PRoHIT, PARA,
// PARFM, Graphene).
//
// A tracker, per Section II-G of the paper, is an N-entry structure managed
// by three policies — insertion, eviction, and mitigation — and the interface
// mirrors exactly the two events those policies react to: a demand activation
// and a mitigation opportunity.
package tracker

// Mitigation describes one mitigative action selected by a tracker: refresh
// the neighbours of Row at distance band Level (Level 1 = the immediately
// adjacent rows; Level m = the m-th neighbours, used by PrIDE's
// transitive-attack defence, Section IV-E).
type Mitigation struct {
	Row   int
	Level int
}

// Tracker is the canonical in-DRAM tracker abstraction.
//
// Implementations are single-goroutine objects: a DRAM bank's mitigation
// engine is inherently serial, and the simulators drive one tracker per bank
// from one goroutine. None of the implementations in this repository are
// safe for concurrent use, by design.
type Tracker interface {
	// Name returns a short scheme identifier ("PrIDE", "DSAC", ...).
	Name() string

	// OnActivate observes one demand activation of row. The tracker may
	// update internal state (sample the row, bump counters, ...).
	OnActivate(row int)

	// OnMitigate is called at each mitigation opportunity (every REF for
	// the default 1-per-tREFI rate, plus every RFM when co-designed with
	// refresh management). It returns the mitigation the device should
	// perform and true, or false if the tracker has nothing to mitigate.
	OnMitigate() (Mitigation, bool)

	// Occupancy returns the number of currently valid tracking entries.
	Occupancy() int

	// StorageBits returns the per-bank SRAM cost of the tracker in bits,
	// used for Table XI style storage comparisons.
	StorageBits() int

	// Reset restores the tracker to its initial (empty) state without
	// reseeding any internal randomness source.
	Reset()
}

// Advancer is the fast-forward surface shared by every tracker the
// event-driven engines can skip ahead: the pattern-independent insertion
// decision has been pre-resolved by the caller (a geometric gap draw for
// Bernoulli trackers, a schedule query for interval trackers), so idle
// stretches retire in bulk and the chosen activation applies without a draw.
//
// The pair (AdvanceIdle(n); ActivateInsert(row)) must leave the tracker in
// exactly the state n non-inserting OnActivate calls followed by one
// inserting OnActivate(row) would, while consuming ZERO draws from the
// tracker's randomness stream. Draws made outside OnActivate (e.g. PrIDE's
// transitive re-insertion inside OnMitigate, MINT's next-interval selection)
// are unaffected and still come from the tracker's stream.
type Advancer interface {
	Tracker

	// SupportsSkipAhead reports whether the CURRENT configuration keeps the
	// insertion decision state-independent. Configurations that couple
	// insertion to buffer contents (PrIDE's deliberately insecure R1/R2
	// ablation switches) must return false, directing the engines back to
	// the exact per-ACT path.
	SupportsSkipAhead() bool

	// AdvanceIdle accounts for n consecutive activations that do not
	// insert. Equivalent to n OnActivate calls that do not insert;
	// consumes no draws. n may be zero; negative n panics.
	AdvanceIdle(n int)

	// ActivateInsert observes one activation whose insertion was
	// pre-decided by the caller. Equivalent to an OnActivate(row) that
	// inserts; consumes no draws.
	ActivateInsert(row int)
}

// SkipAdvancer is implemented by trackers whose insertion decision is an
// i.i.d. Bernoulli(p) draw independent of tracker state — PrIDE's defining
// property (requirements R1/R2 of Section IV-B) and PARA's by construction.
// For such trackers the event-driven engines replace the per-ACT
// draw-and-probe loop with geometric inter-arrival sampling: draw the gap to
// the next insertion once (consuming the one draw that stands in for the
// n+1 Bernoulli draws), account for the gap with AdvanceIdle, and apply the
// insertion with ActivateInsert.
type SkipAdvancer interface {
	Advancer

	// InsertionProb returns the per-ACT insertion probability p the
	// skip-ahead gap must be sampled with.
	InsertionProb() float64
}

// ScheduledAdvancer is implemented by trackers whose insertion decision is a
// pattern-independent SCHEDULE rather than an i.i.d. per-ACT draw: MINT
// picks one activation slot per mitigation interval ahead of time, so the
// position of the next insertion is already known and geometric gap sampling
// would simulate the wrong process. The event engines instead query the
// schedule, idle up to either the scheduled slot or the next mitigation
// opportunity (whichever comes first), and re-query after every mitigation —
// OnMitigate is where scheduled trackers advance their schedule.
//
// Because the schedule is drawn outside OnActivate, the event path consumes
// draws in exactly the exact path's order, making the two engines
// bit-identical for any insertion probability, not just p = 1.
type ScheduledAdvancer interface {
	Advancer

	// NextInsert returns the number of idle activations before the next
	// scheduled insertion, and ok=true if one is still pending in the
	// current mitigation interval. ok=false means no activation inserts
	// until after the next OnMitigate (the slot was already captured, or
	// the schedule points past the interval). It is a pure query: no draws,
	// no state change, stable across repeated calls.
	NextInsert() (idle int, ok bool)
}

// IdleMitigator is implemented by trackers for which a mitigation
// opportunity arriving at an EMPTY tracker is a pure counter event: no
// draws, no state change, nothing observable beyond bookkeeping. The
// event engines use it to retire whole stretches of mitigation cadence in
// closed form while the tracker is empty — PrIDE qualifies (an empty pop
// returns before any draw or observer event), MINT does not (its
// OnMitigate advances the interval schedule and draws regardless of
// occupancy) and so deliberately omits the method.
type IdleMitigator interface {
	Tracker

	// AdvanceIdleMitigations accounts for n mitigation opportunities that
	// each found the tracker empty. Equivalent to n OnMitigate calls with
	// Occupancy()==0; consumes no draws. n may be zero; negative n panics.
	AdvanceIdleMitigations(n int)
}

// SelfChecker is implemented by trackers that can enable runtime invariant
// guards (-selfcheck): cheap assertions on internal state (FIFO occupancy
// and pointer bounds, entry-level ranges) that panic with a guard.Violation
// when an engine bug or memory corruption silently breaks the structure.
// Discovered structurally by the simulation layers, so trackers without
// self-checks need no stub.
type SelfChecker interface {
	// SetSelfCheck enables or disables the tracker's invariant guards.
	SetSelfCheck(on bool)
}
