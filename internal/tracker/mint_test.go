package tracker_test

import (
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// constSource is a rigged rng.Source returning a fixed value, so tests can
// force MINT's target draw: target = 1 + v mod W.
type constSource struct{ v uint64 }

func (c *constSource) Uint64() uint64 { return c.v }

func TestMINTCapturesScheduledPosition(t *testing.T) {
	const w = 8
	// v = 2 forces target position 3 for every interval.
	m := tracker.NewMINT(w, 17, rng.NewStream(&constSource{v: 2}))

	rows := []int{10, 20, 30, 40, 50, 60, 70, 80}
	for _, r := range rows {
		m.OnActivate(r)
	}
	if got := m.Snapshot(); len(got) != 1 || got[0].Row != 30 || got[0].Level != 1 {
		t.Fatalf("Snapshot() = %v, want the 3rd activation (row 30) at level 1", got)
	}
	mit, ok := m.OnMitigate()
	if !ok || mit.Row != 30 || mit.Level != 1 {
		t.Fatalf("OnMitigate() = (%v, %v), want row 30 level 1", mit, ok)
	}
	if got := m.Occupancy(); got != 0 {
		t.Fatalf("Occupancy() after mitigation = %d, want 0", got)
	}

	st := m.Stats()
	if st.Activations != uint64(len(rows)) || st.Captures != 1 || st.Mitigations != 1 || st.EmptyIntervals != 0 {
		t.Fatalf("Stats() = %+v, want 8 activations, 1 capture, 1 mitigation, 0 empty intervals", st)
	}
}

func TestMINTEmptyInterval(t *testing.T) {
	const w = 8
	// v = 7 forces target position 8: an interval with fewer than 8
	// activations captures nothing.
	m := tracker.NewMINT(w, 17, rng.NewStream(&constSource{v: 7}))

	for i := 0; i < 5; i++ {
		m.OnActivate(i)
	}
	if mit, ok := m.OnMitigate(); ok {
		t.Fatalf("OnMitigate() after a 5-ACT interval with target 8 = (%v, true), want nothing captured", mit)
	}
	if st := m.Stats(); st.EmptyIntervals != 1 {
		t.Fatalf("Stats().EmptyIntervals = %d, want 1", st.EmptyIntervals)
	}

	// The next interval's target is again position 8; this time reach it.
	for i := 0; i < 8; i++ {
		m.OnActivate(100 + i)
	}
	if mit, ok := m.OnMitigate(); !ok || mit.Row != 107 {
		t.Fatalf("OnMitigate() = (%v, %v), want the 8th activation (row 107)", mit, ok)
	}
}

func TestMINTOverrunKeepsCapture(t *testing.T) {
	const w = 4
	// Target position 1: the interval's first activation is captured and an
	// over-long interval (more ACTs than W) must not displace it.
	m := tracker.NewMINT(w, 17, rng.NewStream(&constSource{v: 0}))

	m.OnActivate(42)
	for i := 0; i < 3*w; i++ {
		m.OnActivate(1000 + i)
	}
	if mit, ok := m.OnMitigate(); !ok || mit.Row != 42 {
		t.Fatalf("OnMitigate() after an overrun interval = (%v, %v), want the captured row 42", mit, ok)
	}
}

func TestMINTNextInsertTracksSchedule(t *testing.T) {
	const w = 8
	m := tracker.NewMINT(w, 17, rng.NewStream(&constSource{v: 2})) // target 3

	if idle, ok := m.NextInsert(); !ok || idle != 2 {
		t.Fatalf("fresh NextInsert() = (%d, %v), want (2, true)", idle, ok)
	}
	m.AdvanceIdle(2)
	if idle, ok := m.NextInsert(); !ok || idle != 0 {
		t.Fatalf("NextInsert() at the slot = (%d, %v), want (0, true)", idle, ok)
	}
	m.ActivateInsert(7)
	if _, ok := m.NextInsert(); ok {
		t.Fatal("NextInsert() after the capture reports another pending insertion")
	}
	if mit, ok := m.OnMitigate(); !ok || mit.Row != 7 {
		t.Fatalf("OnMitigate() = (%v, %v), want row 7", mit, ok)
	}
	// A fresh interval re-arms the schedule.
	if idle, ok := m.NextInsert(); !ok || idle != 2 {
		t.Fatalf("NextInsert() after mitigation = (%d, %v), want (2, true)", idle, ok)
	}
}

func TestMINTStorageBits(t *testing.T) {
	// rowBits 17, W = 79: 17 + 1 valid + 7-bit position (0..79) + 7-bit
	// target (1..79) = 32 bits, versus PrIDE's 85.
	if got := tracker.NewMINT(79, 17, rng.New(1)).StorageBits(); got != 32 {
		t.Fatalf("StorageBits() = %d, want 32", got)
	}
}

func TestMINTInvalidConfigPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero window", func() { tracker.NewMINT(0, 17, rng.New(1)) }},
		{"zero rowBits", func() { tracker.NewMINT(79, 0, rng.New(1)) }},
		{"nil rng", func() { tracker.NewMINT(79, 17, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
