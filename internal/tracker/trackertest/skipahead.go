package trackertest

import (
	"reflect"
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// SkipSpec describes one tracker.SkipAdvancer implementation under the
// skip-ahead equivalence suite.
//
// Do NOT register trackers whose victim-selection policies draw Intn from
// the tracker stream (PrIDE's Random ablation): the suite drives trackers
// with constant rigged sources, and rejection-sampling Intn over a constant
// source can spin forever. FIFO-policy trackers are safe — their only
// stream draws are threshold compares.
type SkipSpec struct {
	// Name labels the subtests.
	Name string
	// New builds a fresh instance drawing all randomness from r. The suite
	// passes rigged streams whose raw draws it controls, so every
	// threshold compare the tracker makes resolves the way the schedule
	// dictates.
	New func(r *rng.Stream) tracker.SkipAdvancer
	// Snapshot, when non-nil, exposes the tracked entries oldest-first and
	// tightens the equivalence check from occupancy-only to full queue
	// state.
	Snapshot func(tr tracker.Tracker) []tracker.Mitigation
	// Prob, when non-zero, is the configured insertion probability;
	// InsertionProb() must return its lattice rounding.
	Prob float64
}

// modeSource is a rigged rng.Source returning a settable constant, so the
// harness decides the outcome of every threshold compare: fireDraw makes
// any Bernoulli with p > 0 fire, idleDraw makes any Bernoulli with p < 1
// fail.
type modeSource struct {
	v     uint64
	draws int
}

const (
	fireDraw = uint64(0)
	idleDraw = ^uint64(0)
)

func (m *modeSource) Uint64() uint64 {
	m.draws++
	return m.v
}

// skipPair holds a stepped reference instance and a skip-ahead instance
// driven through identical event schedules.
type skipPair struct {
	t *testing.T
	s SkipSpec

	stepped     tracker.SkipAdvancer
	steppedSrc  *modeSource
	steppedImm  immediateMitigator
	hasImm      bool
	skip        tracker.SkipAdvancer
	skipSrc     *modeSource
	skipImm     immediateMitigator
	steppedRows int // row counter for idle-ACT addresses
}

func newSkipPair(t *testing.T, s SkipSpec) *skipPair {
	t.Helper()
	p := &skipPair{t: t, s: s}
	p.steppedSrc = &modeSource{v: idleDraw}
	p.skipSrc = &modeSource{v: idleDraw}
	p.stepped = s.New(rng.NewStream(p.steppedSrc))
	p.skip = s.New(rng.NewStream(p.skipSrc))
	p.steppedImm, p.hasImm = p.stepped.(immediateMitigator)
	if p.hasImm {
		p.skipImm = p.skip.(immediateMitigator)
	}
	return p
}

// idle advances both instances over n activations with failing insertion
// draws: the stepped instance pays n OnActivate calls, the skip instance one
// AdvanceIdle. The skip instance must consume zero draws.
func (p *skipPair) idle(n int) {
	p.t.Helper()
	p.steppedSrc.v = idleDraw
	for i := 0; i < n; i++ {
		p.stepped.OnActivate(p.steppedRows % Rows)
		p.steppedRows++
		if p.hasImm {
			if got := p.steppedImm.DrainImmediate(); len(got) != 0 {
				p.t.Fatalf("idle activation produced immediate mitigations %v", got)
			}
		}
	}
	before := p.skipSrc.draws
	p.skip.AdvanceIdle(n)
	if p.skipSrc.draws != before {
		p.t.Fatalf("AdvanceIdle(%d) consumed %d draws, contract says 0", n, p.skipSrc.draws-before)
	}
	p.compare("idle")
}

// insert applies one successful-draw activation to both instances.
func (p *skipPair) insert(row int) {
	p.t.Helper()
	p.steppedSrc.v = fireDraw
	p.stepped.OnActivate(row)
	before := p.skipSrc.draws
	p.skip.ActivateInsert(row)
	if p.skipSrc.draws != before {
		p.t.Fatalf("ActivateInsert consumed %d draws, contract says 0", p.skipSrc.draws-before)
	}
	var a, b []tracker.Mitigation
	if p.hasImm {
		a = append(a, p.steppedImm.DrainImmediate()...)
		b = append(b, p.skipImm.DrainImmediate()...)
		if !reflect.DeepEqual(a, b) {
			p.t.Fatalf("immediate mitigations diverged: stepped %v, skip %v", a, b)
		}
	}
	p.compare("insert")
}

// mitigate drives one mitigation opportunity on both instances with the
// given rigged draw (feeding e.g. PrIDE's transitive re-insertion compare).
func (p *skipPair) mitigate(draw uint64) {
	p.t.Helper()
	p.steppedSrc.v = draw
	p.skipSrc.v = draw
	am, aok := p.stepped.OnMitigate()
	bm, bok := p.skip.OnMitigate()
	if am != bm || aok != bok {
		p.t.Fatalf("OnMitigate diverged: stepped (%v,%v), skip (%v,%v)", am, aok, bm, bok)
	}
	p.compare("mitigate")
}

func (p *skipPair) compare(event string) {
	p.t.Helper()
	if a, b := p.stepped.Occupancy(), p.skip.Occupancy(); a != b {
		p.t.Fatalf("after %s: occupancy diverged, stepped %d, skip %d", event, a, b)
	}
	if p.s.Snapshot != nil {
		a, b := p.s.Snapshot(p.stepped), p.s.Snapshot(p.skip)
		if !reflect.DeepEqual(a, b) {
			p.t.Fatalf("after %s: queue state diverged:\nstepped %v\nskip    %v", event, a, b)
		}
	}
}

// RunSkipAhead runs the skip-ahead equivalence suite against s as subtests
// of t: (AdvanceIdle(n); ActivateInsert(row)) must be state-equivalent to n
// failed-draw OnActivate calls plus one successful-draw OnActivate(row),
// consuming zero tracker-stream draws, across pure idle runs and randomized
// interleavings with mitigation opportunities.
func RunSkipAhead(t *testing.T, s SkipSpec) {
	t.Helper()
	if s.New == nil {
		t.Fatalf("%s: SkipSpec.New is nil", s.Name)
	}

	t.Run("Supports", func(t *testing.T) {
		tr := s.New(rng.New(1))
		if !tr.SupportsSkipAhead() {
			t.Fatal("SupportsSkipAhead() = false for a registered skip-ahead spec")
		}
		p := tr.InsertionProb()
		if p <= 0 || p > 1 {
			t.Fatalf("InsertionProb() = %v, want in (0,1]", p)
		}
		if s.Prob != 0 {
			if want := rng.NewThreshold(s.Prob).Prob(); p != want {
				t.Fatalf("InsertionProb() = %v, want lattice rounding %v of %v", p, want, s.Prob)
			}
		}
	})

	t.Run("AdvanceIdleMatchesSteppedIdle", func(t *testing.T) {
		for _, n := range []int{0, 1, 7, 100, 5000} {
			p := newSkipPair(t, s)
			// Build up some queue state first so the idle run must
			// preserve a non-trivial FIFO, then fast-forward.
			for _, row := range []int{3, 1, 4, 1, 5} {
				p.insert(row)
			}
			p.mitigate(idleDraw)
			p.idle(n)
			// Drain both queues, comparing every popped mitigation.
			for p.stepped.Occupancy() > 0 || p.skip.Occupancy() > 0 {
				p.mitigate(idleDraw)
			}
			p.mitigate(idleDraw) // both empty: must agree on (zero, false) too
		}
	})

	t.Run("InterleavedScheduleEquivalence", func(t *testing.T) {
		for _, seed := range []uint64{17, 18, 19} {
			p := newSkipPair(t, s)
			sched := rng.New(seed)
			for ev := 0; ev < 300; ev++ {
				switch r := sched.Uint64() % 10; {
				case r < 6:
					p.idle(sched.Intn(50))
				case r < 8:
					p.insert(sched.Intn(Rows))
				default:
					draw := idleDraw
					if sched.Uint64()%2 == 0 {
						// Exercise draw-consuming mitigation paths
						// (PrIDE's transitive re-insertion).
						draw = fireDraw
					}
					p.mitigate(draw)
				}
			}
		}
	})

	t.Run("AdvanceIdleNegativePanics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceIdle(-1) did not panic")
			}
		}()
		s.New(rng.New(2)).AdvanceIdle(-1)
	})
}
