// Package trackertest provides a conformance suite that every
// tracker.Tracker implementation in this repository must pass. The suite
// checks only the contract of the interface — name stability, storage
// accounting, bounded occupancy, Reset semantics, and same-seed
// determinism — so that the cross-scheme comparison experiments can treat
// PrIDE and all baselines interchangeably.
package trackertest

import (
	"reflect"
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// Rows is the row-address space the suite drives trackers over. Specs must
// construct trackers that accept activations anywhere in [0, Rows); CAT in
// particular must be built over at least this many rows.
const Rows = 1024

// Spec describes one tracker implementation under conformance test.
type Spec struct {
	// Name labels the subtests; it does not have to equal Tracker.Name().
	Name string
	// New builds a fresh instance. Stateless trackers may ignore the seed;
	// randomized ones must derive all randomness from it so that two
	// instances with equal seeds behave identically.
	New func(seed uint64) tracker.Tracker
	// MaxOccupancy bounds Occupancy() throughout any interleaving when
	// positive; zero skips the bound check (for trackers whose occupancy is
	// workload-defined rather than capacity-defined).
	MaxOccupancy int
	// AllowZeroStorage permits StorageBits() == 0 (PARA keeps no state).
	AllowZeroStorage bool
}

// immediateMitigator matches baseline.ImmediateMitigator structurally so the
// suite can drain inline mitigations without importing the baseline package.
type immediateMitigator interface {
	DrainImmediate() []tracker.Mitigation
}

// trace is everything externally observable about one driven run: the
// mitigation stream and the occupancy after every event.
type trace struct {
	Mitigations []tracker.Mitigation
	Occupancy   []int
}

// drive replays a seeded pseudo-random interleaving of nSteps activations
// and periodic OnMitigate calls, returning the observable trace. The event
// schedule depends only on streamSeed, never on the tracker under test.
func drive(tr tracker.Tracker, streamSeed uint64, nSteps int) trace {
	var tc trace
	stream := rng.New(streamSeed)
	im, hasImmediate := tr.(immediateMitigator)
	for i := 0; i < nSteps; i++ {
		tr.OnActivate(int(stream.Uint64() % Rows))
		if hasImmediate {
			tc.Mitigations = append(tc.Mitigations, im.DrainImmediate()...)
		}
		// Roughly one mitigation slot per 8 activations, like a tREFI-paced
		// mitigation budget.
		if stream.Uint64()%8 == 0 {
			if m, ok := tr.OnMitigate(); ok {
				tc.Mitigations = append(tc.Mitigations, m)
			}
		}
		tc.Occupancy = append(tc.Occupancy, tr.Occupancy())
	}
	return tc
}

// RunConformance runs the full contract suite against s as subtests of t.
func RunConformance(t *testing.T, s Spec) {
	t.Helper()
	if s.New == nil {
		t.Fatalf("%s: Spec.New is nil", s.Name)
	}

	t.Run("NameStable", func(t *testing.T) {
		tr := s.New(1)
		name := tr.Name()
		if name == "" {
			t.Fatal("Name() is empty")
		}
		drive(tr, 2, 200)
		if got := tr.Name(); got != name {
			t.Fatalf("Name() changed under activity: %q -> %q", name, got)
		}
		tr.Reset()
		if got := tr.Name(); got != name {
			t.Fatalf("Name() changed across Reset: %q -> %q", name, got)
		}
	})

	t.Run("StorageBitsConstant", func(t *testing.T) {
		tr := s.New(1)
		bits := tr.StorageBits()
		if bits < 0 {
			t.Fatalf("StorageBits() = %d, must be non-negative", bits)
		}
		if bits == 0 && !s.AllowZeroStorage {
			t.Fatal("StorageBits() = 0 for a stateful tracker")
		}
		drive(tr, 3, 300)
		if got := tr.StorageBits(); got != bits {
			t.Fatalf("StorageBits() is workload-dependent: %d -> %d; storage is a hardware budget, not a fill level", bits, got)
		}
		tr.Reset()
		if got := tr.StorageBits(); got != bits {
			t.Fatalf("StorageBits() changed across Reset: %d -> %d", bits, got)
		}
	})

	t.Run("ResetRestoresFreshState", func(t *testing.T) {
		// Fresh occupancy is implementation-defined (CAT's root leaf counts
		// as one), so Reset is compared against a fresh instance rather
		// than against zero.
		freshOcc := s.New(1).Occupancy()
		tr := s.New(1)
		drive(tr, 4, 400)
		tr.Reset()
		if got := tr.Occupancy(); got != freshOcc {
			t.Fatalf("Occupancy() after Reset = %d, fresh instance has %d", got, freshOcc)
		}
		tr.Reset() // Reset must be idempotent.
		if got := tr.Occupancy(); got != freshOcc {
			t.Fatalf("Occupancy() after double Reset = %d, fresh instance has %d", got, freshOcc)
		}
	})

	t.Run("OccupancyBounded", func(t *testing.T) {
		for _, streamSeed := range []uint64{5, 6, 7} {
			tr := s.New(streamSeed)
			tc := drive(tr, streamSeed, 600)
			for i, occ := range tc.Occupancy {
				if occ < 0 {
					t.Fatalf("stream %d: negative Occupancy() %d after event %d", streamSeed, occ, i)
				}
				if s.MaxOccupancy > 0 && occ > s.MaxOccupancy {
					t.Fatalf("stream %d: Occupancy() %d exceeds capacity %d after event %d",
						streamSeed, occ, s.MaxOccupancy, i)
				}
			}
		}
	})

	t.Run("MitigationsWellFormed", func(t *testing.T) {
		tr := s.New(8)
		tc := drive(tr, 8, 600)
		for _, m := range tc.Mitigations {
			if m.Row < 0 || m.Row >= Rows {
				t.Fatalf("mitigation row %d outside the driven space [0, %d)", m.Row, Rows)
			}
			if m.Level < 1 {
				t.Fatalf("mitigation level %d for row %d, levels are 1-based", m.Level, m.Row)
			}
		}
	})

	t.Run("SameSeedDeterminism", func(t *testing.T) {
		a := drive(s.New(9), 10, 500)
		b := drive(s.New(9), 10, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("two instances with the same seed diverged under an identical event stream")
		}
	})
}
