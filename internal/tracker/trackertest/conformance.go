// Package trackertest provides a conformance suite that every
// tracker.Tracker implementation in this repository must pass. The suite
// checks only the contract of the interface — name stability, storage
// accounting, bounded occupancy, Reset semantics, and same-seed
// determinism — so that the cross-scheme comparison experiments can treat
// PrIDE and all baselines interchangeably.
package trackertest

import (
	"reflect"
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// Rows is the row-address space the suite drives trackers over. Specs must
// construct trackers that accept activations anywhere in [0, Rows); CAT in
// particular must be built over at least this many rows.
const Rows = 1024

// Spec describes one tracker implementation under conformance test.
type Spec struct {
	// Name labels the subtests; it does not have to equal Tracker.Name().
	Name string
	// New builds a fresh instance. Stateless trackers may ignore the seed;
	// randomized ones must derive all randomness from it so that two
	// instances with equal seeds behave identically.
	New func(seed uint64) tracker.Tracker
	// MaxOccupancy bounds Occupancy() throughout any interleaving when
	// positive; zero skips the bound check (for trackers whose occupancy is
	// workload-defined rather than capacity-defined).
	MaxOccupancy int
	// AllowZeroStorage permits StorageBits() == 0 (PARA keeps no state).
	AllowZeroStorage bool
	// Snapshot, when non-nil, exposes the tracked entries oldest-first and
	// enables the FIFO-order property: after every event, the snapshot must
	// equal the previous snapshot with zero or more entries removed from the
	// FRONT and zero or more appended at the BACK. Set it only for trackers
	// whose eviction and mitigation policies are both FIFO.
	Snapshot func(tr tracker.Tracker) []tracker.Mitigation
	// ZeroAllocActivate, when true, asserts the steady-state per-activation
	// hot path — OnActivate, inline mitigation drains, and the periodic
	// OnMitigate — performs zero heap allocations, the property the
	// allocation-free engine loops rely on. Leave it false for trackers with
	// structurally allocating hot paths (TWiCe's map, CAT's tree splits).
	ZeroAllocActivate bool
}

// immediateMitigator matches baseline.ImmediateMitigator structurally so the
// suite can drain inline mitigations without importing the baseline package.
type immediateMitigator interface {
	DrainImmediate() []tracker.Mitigation
}

// trace is everything externally observable about one driven run: the
// mitigation stream and the occupancy after every event.
type trace struct {
	Mitigations []tracker.Mitigation
	Occupancy   []int
}

// drive replays a seeded pseudo-random interleaving of nSteps activations
// and periodic OnMitigate calls, returning the observable trace. The event
// schedule depends only on streamSeed, never on the tracker under test.
func drive(tr tracker.Tracker, streamSeed uint64, nSteps int) trace {
	var tc trace
	stream := rng.New(streamSeed)
	im, hasImmediate := tr.(immediateMitigator)
	for i := 0; i < nSteps; i++ {
		tr.OnActivate(int(stream.Uint64() % Rows))
		if hasImmediate {
			tc.Mitigations = append(tc.Mitigations, im.DrainImmediate()...)
		}
		// Roughly one mitigation slot per 8 activations, like a tREFI-paced
		// mitigation budget.
		if stream.Uint64()%8 == 0 {
			if m, ok := tr.OnMitigate(); ok {
				tc.Mitigations = append(tc.Mitigations, m)
			}
		}
		tc.Occupancy = append(tc.Occupancy, tr.Occupancy())
	}
	return tc
}

// RunConformance runs the full contract suite against s as subtests of t.
func RunConformance(t *testing.T, s Spec) {
	t.Helper()
	if s.New == nil {
		t.Fatalf("%s: Spec.New is nil", s.Name)
	}

	t.Run("NameStable", func(t *testing.T) {
		tr := s.New(1)
		name := tr.Name()
		if name == "" {
			t.Fatal("Name() is empty")
		}
		drive(tr, 2, 200)
		if got := tr.Name(); got != name {
			t.Fatalf("Name() changed under activity: %q -> %q", name, got)
		}
		tr.Reset()
		if got := tr.Name(); got != name {
			t.Fatalf("Name() changed across Reset: %q -> %q", name, got)
		}
	})

	t.Run("StorageBitsConstant", func(t *testing.T) {
		tr := s.New(1)
		bits := tr.StorageBits()
		if bits < 0 {
			t.Fatalf("StorageBits() = %d, must be non-negative", bits)
		}
		if bits == 0 && !s.AllowZeroStorage {
			t.Fatal("StorageBits() = 0 for a stateful tracker")
		}
		drive(tr, 3, 300)
		if got := tr.StorageBits(); got != bits {
			t.Fatalf("StorageBits() is workload-dependent: %d -> %d; storage is a hardware budget, not a fill level", bits, got)
		}
		tr.Reset()
		if got := tr.StorageBits(); got != bits {
			t.Fatalf("StorageBits() changed across Reset: %d -> %d", bits, got)
		}
	})

	t.Run("ResetRestoresFreshState", func(t *testing.T) {
		// Fresh occupancy is implementation-defined (CAT's root leaf counts
		// as one), so Reset is compared against a fresh instance rather
		// than against zero.
		freshOcc := s.New(1).Occupancy()
		tr := s.New(1)
		drive(tr, 4, 400)
		tr.Reset()
		if got := tr.Occupancy(); got != freshOcc {
			t.Fatalf("Occupancy() after Reset = %d, fresh instance has %d", got, freshOcc)
		}
		tr.Reset() // Reset must be idempotent.
		if got := tr.Occupancy(); got != freshOcc {
			t.Fatalf("Occupancy() after double Reset = %d, fresh instance has %d", got, freshOcc)
		}
	})

	t.Run("OccupancyBounded", func(t *testing.T) {
		for _, streamSeed := range []uint64{5, 6, 7} {
			tr := s.New(streamSeed)
			tc := drive(tr, streamSeed, 600)
			for i, occ := range tc.Occupancy {
				if occ < 0 {
					t.Fatalf("stream %d: negative Occupancy() %d after event %d", streamSeed, occ, i)
				}
				if s.MaxOccupancy > 0 && occ > s.MaxOccupancy {
					t.Fatalf("stream %d: Occupancy() %d exceeds capacity %d after event %d",
						streamSeed, occ, s.MaxOccupancy, i)
				}
			}
		}
	})

	t.Run("MitigationsWellFormed", func(t *testing.T) {
		tr := s.New(8)
		tc := drive(tr, 8, 600)
		for _, m := range tc.Mitigations {
			if m.Row < 0 || m.Row >= Rows {
				t.Fatalf("mitigation row %d outside the driven space [0, %d)", m.Row, Rows)
			}
			if m.Level < 1 {
				t.Fatalf("mitigation level %d for row %d, levels are 1-based", m.Level, m.Row)
			}
		}
	})

	t.Run("SameSeedDeterminism", func(t *testing.T) {
		a := drive(s.New(9), 10, 500)
		b := drive(s.New(9), 10, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("two instances with the same seed diverged under an identical event stream")
		}
	})

	if s.Snapshot != nil {
		t.Run("FIFOOrder", func(t *testing.T) {
			for _, streamSeed := range []uint64{11, 12, 13} {
				tr := s.New(streamSeed)
				stream := rng.New(streamSeed)
				prev := s.Snapshot(tr)
				check := func(event string, i int) {
					t.Helper()
					cur := s.Snapshot(tr)
					if !isFIFOSuccessor(prev, cur) {
						t.Fatalf("stream %d: %s at event %d reordered survivors:\nbefore %v\nafter  %v",
							streamSeed, event, i, prev, cur)
					}
					prev = cur
				}
				for i := 0; i < 400; i++ {
					tr.OnActivate(int(stream.Uint64() % Rows))
					check("OnActivate", i)
					if stream.Uint64()%8 == 0 {
						tr.OnMitigate()
						check("OnMitigate", i)
					}
				}
			}
		})
	}

	if s.ZeroAllocActivate {
		t.Run("ZeroAllocActivate", func(t *testing.T) {
			tr := s.New(14)
			im, hasImmediate := tr.(immediateMitigator)
			// Warm up so amortized buffers (pending-mitigation lists) reach
			// their steady-state capacity before allocations are counted.
			drive(tr, 15, 400)
			if hasImmediate {
				im.DrainImmediate()
			}
			stream := rng.New(16)
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				tr.OnActivate(int(stream.Uint64() % Rows))
				if hasImmediate {
					im.DrainImmediate()
				}
				if i++; i%8 == 0 {
					tr.OnMitigate()
				}
			})
			if allocs != 0 {
				t.Fatalf("per-activation hot path allocates %.1f allocs/op; the engine loops require 0", allocs)
			}
		})
	}
}

// isFIFOSuccessor reports whether cur can be derived from old by removing
// zero or more entries from the front (evictions and mitigations take the
// oldest) and appending zero or more at the back (insertions join the tail)
// — the externally observable invariant of a FIFO-managed queue.
func isFIFOSuccessor(old, cur []tracker.Mitigation) bool {
	for k := 0; k <= len(old); k++ {
		kept := old[k:]
		if len(kept) > len(cur) {
			continue
		}
		match := true
		for i, e := range kept {
			if cur[i] != e {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
