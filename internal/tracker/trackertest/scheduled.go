package trackertest

import (
	"reflect"
	"testing"

	"pride/internal/rng"
	"pride/internal/tracker"
)

// ScheduledSpec describes one tracker.ScheduledAdvancer implementation under
// the scheduled skip-ahead equivalence suite.
//
// Scheduled trackers (MINT) pre-commit each interval's insertion position
// instead of flipping a per-ACT coin, so the suite differs from RunSkipAhead
// in two ways: the reference instance is driven with a REAL seeded stream
// (the schedule draws happen inside OnMitigate on both paths, so identical
// seeds give identical schedules), and the harness follows the tracker's own
// NextInsert answers rather than rigging draw outcomes.
type ScheduledSpec struct {
	// Name labels the subtests.
	Name string
	// New builds a fresh instance drawing all randomness from r.
	New func(r *rng.Stream) tracker.ScheduledAdvancer
	// Snapshot, when non-nil, exposes the tracked entries oldest-first and
	// tightens the equivalence check from occupancy-only to full queue state.
	Snapshot func(tr tracker.Tracker) []tracker.Mitigation
	// Window, when positive, bounds the idle distance NextInsert may report:
	// a fresh interval's scheduled slot must lie within the next Window ACTs.
	Window int
}

// countingSource wraps a real source and counts raw draws, so the suite can
// assert the zero-draw contract on NextInsert/AdvanceIdle/ActivateInsert
// while still feeding genuine randomness to the schedule draws.
type countingSource struct {
	inner interface{ Uint64() uint64 }
	draws int
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.inner.Uint64()
}

// schedPair holds a stepped reference instance and a scheduled instance
// built from identically-seeded streams and driven through identical ACT
// sequences.
type schedPair struct {
	t *testing.T
	s ScheduledSpec

	stepped tracker.ScheduledAdvancer
	sched   tracker.ScheduledAdvancer
	src     *countingSource
	acts    int // global ACT counter; the i-th ACT touches row i % Rows
}

func newSchedPair(t *testing.T, s ScheduledSpec, seed uint64) *schedPair {
	t.Helper()
	p := &schedPair{t: t, s: s}
	p.src = &countingSource{inner: rng.New(seed)}
	p.stepped = s.New(rng.New(seed))
	p.sched = s.New(rng.NewStream(p.src))
	return p
}

func (p *schedPair) row() int { return p.acts % Rows }

// interval drives both instances in lockstep through one mitigation interval
// of n activations followed by OnMitigate. The stepped instance pays one
// OnActivate per ACT; the scheduled instance follows its own NextInsert
// schedule with AdvanceIdle/ActivateInsert, which must consume zero draws.
func (p *schedPair) interval(n int) {
	p.t.Helper()
	left := n
	for left > 0 {
		before := p.src.draws
		idle, ok := p.sched.NextInsert()
		if p.src.draws != before {
			p.t.Fatalf("NextInsert consumed %d draws, contract says 0", p.src.draws-before)
		}
		if ok && idle < 0 {
			p.t.Fatalf("NextInsert() = (%d, true), idle distance must be non-negative", idle)
		}
		if ok && p.s.Window > 0 && idle >= p.s.Window {
			p.t.Fatalf("NextInsert() = (%d, true), scheduled slot outside the window %d", idle, p.s.Window)
		}
		if !ok || idle >= left {
			// No insertion lands in the rest of this interval.
			p.advanceIdle(left)
			left = 0
			break
		}
		p.advanceIdle(idle)
		left -= idle
		row := p.row()
		p.stepped.OnActivate(row)
		before = p.src.draws
		p.sched.ActivateInsert(row)
		if p.src.draws != before {
			p.t.Fatalf("ActivateInsert consumed %d draws, contract says 0", p.src.draws-before)
		}
		p.acts++
		left--
		p.compare("insert")
	}

	am, aok := p.stepped.OnMitigate()
	bm, bok := p.sched.OnMitigate()
	if am != bm || aok != bok {
		p.t.Fatalf("OnMitigate diverged after a %d-ACT interval: stepped (%v,%v), scheduled (%v,%v)",
			n, am, aok, bm, bok)
	}
	p.compare("mitigate")
}

// advanceIdle moves both instances over n insertion-free activations: the
// stepped instance one OnActivate at a time, the scheduled instance in one
// AdvanceIdle call.
func (p *schedPair) advanceIdle(n int) {
	p.t.Helper()
	for i := 0; i < n; i++ {
		p.stepped.OnActivate(p.row())
		p.acts++
	}
	before := p.src.draws
	p.sched.AdvanceIdle(n)
	if p.src.draws != before {
		p.t.Fatalf("AdvanceIdle(%d) consumed %d draws, contract says 0", n, p.src.draws-before)
	}
	p.compare("idle")
}

func (p *schedPair) compare(event string) {
	p.t.Helper()
	if a, b := p.stepped.Occupancy(), p.sched.Occupancy(); a != b {
		p.t.Fatalf("after %s: occupancy diverged, stepped %d, scheduled %d", event, a, b)
	}
	if p.s.Snapshot != nil {
		a, b := p.s.Snapshot(p.stepped), p.s.Snapshot(p.sched)
		if !reflect.DeepEqual(a, b) {
			p.t.Fatalf("after %s: queue state diverged:\nstepped   %v\nscheduled %v", event, a, b)
		}
	}
}

// RunScheduled runs the scheduled skip-ahead equivalence suite against s as
// subtests of t: following NextInsert with AdvanceIdle/ActivateInsert must be
// state- and mitigation-identical to stepping every activation through
// OnActivate, with zero stream draws outside OnMitigate, across intervals
// that undershoot, hit exactly, and overrun the scheduled slot.
func RunScheduled(t *testing.T, s ScheduledSpec) {
	t.Helper()
	if s.New == nil {
		t.Fatalf("%s: ScheduledSpec.New is nil", s.Name)
	}

	t.Run("Supports", func(t *testing.T) {
		tr := s.New(rng.New(1))
		if !tr.SupportsSkipAhead() {
			t.Fatal("SupportsSkipAhead() = false for a registered scheduled spec")
		}
		if idle, ok := tr.NextInsert(); !ok || idle < 0 {
			t.Fatalf("fresh NextInsert() = (%d, %v), a new interval must have a pending slot", idle, ok)
		}
	})

	t.Run("ScheduleEquivalence", func(t *testing.T) {
		for _, seed := range []uint64{21, 22, 23} {
			p := newSchedPair(t, s, seed)
			lens := rng.New(seed + 100)
			w := s.Window
			if w <= 0 {
				w = 64
			}
			for ev := 0; ev < 200; ev++ {
				// Interval lengths from 0 (back-to-back mitigations, empty
				// interval) through w (exact window) to 2w (overrun past the
				// saturation point).
				p.interval(lens.Intn(2*w + 1))
			}
		}
	})

	t.Run("SameSeedScheduleDeterminism", func(t *testing.T) {
		a, b := s.New(rng.New(31)), s.New(rng.New(31))
		for i := 0; i < 200; i++ {
			ai, aok := a.NextInsert()
			bi, bok := b.NextInsert()
			if ai != bi || aok != bok {
				t.Fatalf("interval %d: schedules diverged under equal seeds: (%d,%v) vs (%d,%v)",
					i, ai, aok, bi, bok)
			}
			a.OnMitigate()
			b.OnMitigate()
		}
	})

	if s.Window > 0 {
		t.Run("ScheduleCoversWindow", func(t *testing.T) {
			// The first query of each interval must range over the whole
			// window: both endpoints (idle 0 and idle Window-1) must occur
			// across many intervals, or the selection is not uniform on
			// [1, W] and the analytic p = 1/W claim is wrong.
			tr := s.New(rng.New(41))
			sawMin, sawMax := false, false
			for i := 0; i < 20000 && !(sawMin && sawMax); i++ {
				idle, ok := tr.NextInsert()
				if !ok {
					t.Fatalf("interval %d: fresh interval has no scheduled slot", i)
				}
				sawMin = sawMin || idle == 0
				sawMax = sawMax || idle == s.Window-1
				tr.OnMitigate()
			}
			if !sawMin || !sawMax {
				t.Fatalf("20000 intervals never scheduled both window endpoints (first=%v, last=%v)", sawMin, sawMax)
			}
		})
	}

	t.Run("AdvanceIdleNegativePanics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceIdle(-1) did not panic")
			}
		}()
		s.New(rng.New(2)).AdvanceIdle(-1)
	})
}
