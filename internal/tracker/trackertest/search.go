package trackertest

import (
	"testing"

	"pride/internal/analytic"
	"pride/internal/fuzz"
	"pride/internal/sim"
)

// SearchSpec describes one scheme under adversarial-search conformance test:
// the island-model search is run against it and the outcome checked against
// the paper's central security claim. Every spec asserts the structural
// search invariants (per-island and global histories monotone non-decreasing,
// best reproducible); the Bounded/Climbs flags add the security assertion.
type SearchSpec struct {
	// Name labels the subtests.
	Name string
	// Scheme is the tracker line-up entry under attack.
	Scheme sim.Scheme
	// Config is the search configuration. Config.Attack.Params must be set;
	// the analytic bound is computed from it.
	Config fuzz.Config
	// Seed drives the search.
	Seed uint64
	// Bounded asserts the search plateaus at or below the analytic
	// PrIDE bound TRH* — the claim that no pattern parameter can influence
	// a pattern-oblivious tracker. Set for PrIDE and its RFM co-designs.
	Bounded bool
	// Climbs asserts the search pushes disturbance ABOVE the analytic
	// PrIDE bound — the claim that counter-based trackers' worst case is
	// pattern-shaped and a guided adversary finds it. Set for the
	// counter-based baselines (with a search budget big enough to climb).
	Climbs bool
}

// RunSearchConformance runs the adversarial-search conformance property
// against s as subtests of t.
func RunSearchConformance(t *testing.T, s SearchSpec) {
	t.Helper()
	if s.Bounded && s.Climbs {
		t.Fatalf("%s: Bounded and Climbs are mutually exclusive", s.Name)
	}
	res := fuzz.Search(s.Config, s.Scheme, s.Seed)
	bound := analytic.EvaluateScheme(analytic.SchemePrIDE, s.Config.Attack.Params,
		analytic.DefaultTargetTTFYears).TRHStar

	t.Run("HistoryMonotone", func(t *testing.T) {
		if len(res.IslandHistories) != s.Config.Islands {
			t.Fatalf("%d island histories, want %d", len(res.IslandHistories), s.Config.Islands)
		}
		for i, h := range res.IslandHistories {
			if len(h) != s.Config.Generations {
				t.Fatalf("island %d history has %d generations, want %d", i, len(h), s.Config.Generations)
			}
			for g := 1; g < len(h); g++ {
				if h[g] < h[g-1] {
					t.Fatalf("island %d best regressed at generation %d: %v", i, g, h)
				}
			}
		}
		for g := 1; g < len(res.History); g++ {
			if res.History[g] < res.History[g-1] {
				t.Fatalf("global best regressed at generation %d: %v", g, res.History)
			}
		}
	})

	t.Run("BestReproducible", func(t *testing.T) {
		replay := sim.RunAttackEngine(s.Config.Attack, s.Scheme, res.BestGenome.Build(),
			res.BestSeed, s.Config.Engine)
		if replay.MaxDisturbance != res.BestDisturbance {
			t.Fatalf("replaying the best genome under its recorded seed gave %d, search reported %d",
				replay.MaxDisturbance, res.BestDisturbance)
		}
	})

	if s.Bounded {
		t.Run("PlateauWithinAnalyticBound", func(t *testing.T) {
			if float64(res.BestDisturbance) > bound {
				t.Fatalf("guided search pushed %s to %d, above the analytic TRH* %.1f — the pattern-obliviousness claim is broken",
					s.Scheme.Name, res.BestDisturbance, bound)
			}
		})
	}
	if s.Climbs {
		t.Run("ClimbsPastAnalyticBound", func(t *testing.T) {
			if float64(res.BestDisturbance) <= bound {
				t.Fatalf("guided search against %s only reached %d, at or below the analytic PrIDE bound %.1f — expected a counter-based tracker to be driven past it",
					s.Scheme.Name, res.BestDisturbance, bound)
			}
		})
	}
}
