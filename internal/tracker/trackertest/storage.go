package trackertest

import (
	"testing"

	"pride/internal/tracker"
)

// StorageField is one hardware register or register file in a tracker's
// storage budget, declared by the test so the audit can recompute the total
// independently of the implementation's own arithmetic.
type StorageField struct {
	// Name labels the field in failure messages ("row register", "PCB").
	Name string
	// Bits is the width of one instance of the field.
	Bits int
	// Count is the number of instances (entries in a register file). Zero
	// means 1.
	Count int
}

// StorageSpec declares a tracker's expected bit budget field by field.
type StorageSpec struct {
	// Name labels the subtest.
	Name string
	// New builds a fresh instance.
	New func() tracker.Tracker
	// Fields itemizes every SRAM bit the tracker is expected to claim. The
	// audit fails if StorageBits() drifts from the sum — catching both an
	// implementation change that silently grows the hardware budget and a
	// stale paper-comparison table.
	Fields []StorageField
}

// RunStorageAudit recomputes each spec's claimed StorageBits from its
// declared field widths and fails on any drift, as subtests of t.
func RunStorageAudit(t *testing.T, specs []StorageSpec) {
	t.Helper()
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if s.New == nil {
				t.Fatal("StorageSpec.New is nil")
			}
			want := 0
			for _, f := range s.Fields {
				if f.Bits <= 0 {
					t.Fatalf("field %q: non-positive width %d bits", f.Name, f.Bits)
				}
				if f.Count < 0 {
					t.Fatalf("field %q: negative count %d", f.Name, f.Count)
				}
				n := f.Count
				if n == 0 {
					n = 1
				}
				want += f.Bits * n
			}
			got := s.New().StorageBits()
			if got != want {
				t.Errorf("StorageBits() = %d, declared fields sum to %d", got, want)
				for _, f := range s.Fields {
					n := f.Count
					if n == 0 {
						n = 1
					}
					t.Logf("  %-24s %3d bits x %d = %d", f.Name, f.Bits, n, f.Bits*n)
				}
			}
		})
	}
}
