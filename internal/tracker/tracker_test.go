package tracker_test

import (
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/rng"
	"pride/internal/tracker"
	"pride/internal/tracker/trackertest"
)

// TestConformance runs the shared tracker contract suite against PrIDE and
// every baseline, so the comparison experiments can swap any of them behind
// the tracker.Tracker interface without scheme-specific caveats.
func TestConformance(t *testing.T) {
	const w = 79 // DDR5 activations per tREFI, the paper's default window

	specs := []trackertest.Spec{
		{
			Name: "PrIDE",
			New: func(seed uint64) tracker.Tracker {
				return core.New(core.DefaultConfig(w), rng.New(seed))
			},
			MaxOccupancy: core.DefaultConfig(w).Entries,
			// PrIDE's eviction and mitigation policies are both FIFO, so its
			// queue snapshot must obey the FIFO-order property.
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			ZeroAllocActivate: true,
		},
		{
			Name: "PARA",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARA(1.0/float64(w+1), rng.New(seed))
			},
			// PARA keeps no per-row state; its only occupancy is the
			// pending-mitigation list the suite drains, so no capacity bound.
			AllowZeroStorage:  true,
			ZeroAllocActivate: true,
		},
		{
			Name: "PARA-DRFM",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARADRFM(1.0/float64(w), 2, 17, rng.New(seed))
			},
			MaxOccupancy:      1,
			ZeroAllocActivate: true,
		},
		{
			Name: "PAR-FM",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARFM(w, 17, rng.New(seed))
			},
			MaxOccupancy:      w,
			ZeroAllocActivate: true,
		},
		{
			Name: "TRR",
			New: func(uint64) tracker.Tracker {
				return baseline.NewTRR(baseline.DefaultTRREntries, 17)
			},
			MaxOccupancy:      baseline.DefaultTRREntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "DSAC",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewDSAC(baseline.DefaultDSACEntries, 17, rng.New(seed))
			},
			MaxOccupancy:      baseline.DefaultDSACEntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "PRoHIT",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPRoHIT(baseline.DefaultPRoHITEntries, 17,
					baseline.DefaultPRoHITInsertProb, baseline.DefaultPRoHITPromoteProb, rng.New(seed))
			},
			MaxOccupancy:      baseline.DefaultPRoHITEntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "Graphene",
			New: func(uint64) tracker.Tracker {
				return baseline.NewGraphene(64, 32, 17)
			},
			MaxOccupancy:      64,
			ZeroAllocActivate: true,
		},
		{
			Name: "TWiCe",
			New: func(uint64) tracker.Tracker {
				return baseline.NewTWiCe(32, 8*trackertest.Rows, 100, 17)
			},
			// TWiCe's table is pruned, not capacity-capped; it can never
			// exceed the number of distinct rows in the driven space.
			MaxOccupancy: trackertest.Rows,
		},
		{
			Name: "CAT",
			New: func(uint64) tracker.Tracker {
				return baseline.NewCAT(trackertest.Rows, 32, 64, 10)
			},
			MaxOccupancy: 64,
		},
		{
			Name: "Mithril",
			New: func(uint64) tracker.Tracker {
				return baseline.NewMithril(32, 17)
			},
			MaxOccupancy:      32,
			ZeroAllocActivate: true,
		},
	}

	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			trackertest.RunConformance(t, s)
		})
	}
}

// TestSkipAhead runs the skip-ahead equivalence suite against the trackers
// the event-driven engines fast-forward: (AdvanceIdle; ActivateInsert) must
// be state-equivalent to the stepped OnActivate path, draw-free. Only
// FIFO-policy trackers may be registered here (the suite's rigged constant
// sources would spin a Random-policy Intn forever).
func TestSkipAhead(t *testing.T) {
	const w = 79

	specs := []trackertest.SkipSpec{
		{
			Name: "PrIDE",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				return core.New(core.DefaultConfig(w), r)
			},
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			Prob: core.DefaultConfig(w).InsertionProb,
		},
		{
			// Without transitive protection OnMitigate never draws,
			// covering the pop-only mitigation path.
			Name: "PrIDE-NoTransitive",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				cfg := core.DefaultConfig(w)
				cfg.TransitiveProtection = false
				cfg.InsertionProb = 1.0 / float64(w)
				return core.New(cfg, r)
			},
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			Prob: 1.0 / float64(w),
		},
		{
			Name: "PARA",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				return baseline.NewPARA(1.0/float64(w+1), r)
			},
			Prob: 1.0 / float64(w+1),
		},
	}

	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			trackertest.RunSkipAhead(t, s)
		})
	}
}

// TestSkipAheadGatedOnInsecureAblations pins the safety interlock: the R1/R2
// ablation switches couple insertion to buffer state, so those
// configurations must refuse skip-ahead and run on the exact engine.
func TestSkipAheadGatedOnInsecureAblations(t *testing.T) {
	const w = 79
	base := core.DefaultConfig(w)
	if !core.New(base, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("secure default config reports SupportsSkipAhead() = false")
	}
	r1 := base
	r1.InsecureAlwaysInsertIfInvalid = true
	if core.New(r1, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("InsecureAlwaysInsertIfInvalid config reports SupportsSkipAhead() = true")
	}
	r2 := base
	r2.InsecureSkipDuplicates = true
	if core.New(r2, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("InsecureSkipDuplicates config reports SupportsSkipAhead() = true")
	}
}
