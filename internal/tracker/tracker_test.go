package tracker_test

import (
	"testing"

	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/rng"
	"pride/internal/tracker"
	"pride/internal/tracker/trackertest"
)

// TestConformance runs the shared tracker contract suite against PrIDE and
// every baseline, so the comparison experiments can swap any of them behind
// the tracker.Tracker interface without scheme-specific caveats.
func TestConformance(t *testing.T) {
	const w = 79 // DDR5 activations per tREFI, the paper's default window

	specs := []trackertest.Spec{
		{
			Name: "PrIDE",
			New: func(seed uint64) tracker.Tracker {
				return core.New(core.DefaultConfig(w), rng.New(seed))
			},
			MaxOccupancy: core.DefaultConfig(w).Entries,
			// PrIDE's eviction and mitigation policies are both FIFO, so its
			// queue snapshot must obey the FIFO-order property.
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			ZeroAllocActivate: true,
		},
		{
			Name: "PARA",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARA(1.0/float64(w+1), rng.New(seed))
			},
			// PARA keeps no per-row state; its only occupancy is the
			// pending-mitigation list the suite drains, so no capacity bound.
			AllowZeroStorage:  true,
			ZeroAllocActivate: true,
		},
		{
			Name: "PARA-DRFM",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARADRFM(1.0/float64(w), 2, 17, rng.New(seed))
			},
			MaxOccupancy:      1,
			ZeroAllocActivate: true,
		},
		{
			Name: "PAR-FM",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPARFM(w, 17, rng.New(seed))
			},
			MaxOccupancy:      w,
			ZeroAllocActivate: true,
		},
		{
			Name: "TRR",
			New: func(uint64) tracker.Tracker {
				return baseline.NewTRR(baseline.DefaultTRREntries, 17)
			},
			MaxOccupancy:      baseline.DefaultTRREntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "DSAC",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewDSAC(baseline.DefaultDSACEntries, 17, rng.New(seed))
			},
			MaxOccupancy:      baseline.DefaultDSACEntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "PRoHIT",
			New: func(seed uint64) tracker.Tracker {
				return baseline.NewPRoHIT(baseline.DefaultPRoHITEntries, 17,
					baseline.DefaultPRoHITInsertProb, baseline.DefaultPRoHITPromoteProb, rng.New(seed))
			},
			MaxOccupancy:      baseline.DefaultPRoHITEntries,
			ZeroAllocActivate: true,
		},
		{
			Name: "Graphene",
			New: func(uint64) tracker.Tracker {
				return baseline.NewGraphene(64, 32, 17)
			},
			MaxOccupancy:      64,
			ZeroAllocActivate: true,
		},
		{
			Name: "TWiCe",
			New: func(uint64) tracker.Tracker {
				return baseline.NewTWiCe(32, 8*trackertest.Rows, 100, 17)
			},
			// TWiCe's table is pruned, not capacity-capped; it can never
			// exceed the number of distinct rows in the driven space.
			MaxOccupancy: trackertest.Rows,
		},
		{
			Name: "CAT",
			New: func(uint64) tracker.Tracker {
				return baseline.NewCAT(trackertest.Rows, 32, 64, 10)
			},
			MaxOccupancy: 64,
		},
		{
			Name: "Mithril",
			New: func(uint64) tracker.Tracker {
				return baseline.NewMithril(32, 17)
			},
			MaxOccupancy:      32,
			ZeroAllocActivate: true,
		},
		{
			Name: "MINT",
			New: func(seed uint64) tracker.Tracker {
				return tracker.NewMINT(w, 17, rng.New(seed))
			},
			MaxOccupancy: 1,
			// A single slot is trivially FIFO: the snapshot is empty or one
			// entry, and mitigation always takes it.
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*tracker.MINT).Snapshot()
			},
			ZeroAllocActivate: true,
		},
		{
			Name: "MOAT",
			New: func(uint64) tracker.Tracker {
				return tracker.NewMOAT(trackertest.Rows, 10,
					tracker.DefaultMOATATI, tracker.DefaultMOATATO)
			},
			// Occupancy counts rows at or above ATI; in the worst case every
			// row in the driven space is hot at once.
			MaxOccupancy:      trackertest.Rows,
			ZeroAllocActivate: true,
		},
	}

	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			trackertest.RunConformance(t, s)
		})
	}
}

// TestSkipAhead runs the skip-ahead equivalence suite against the trackers
// the event-driven engines fast-forward: (AdvanceIdle; ActivateInsert) must
// be state-equivalent to the stepped OnActivate path, draw-free. Only
// FIFO-policy trackers may be registered here (the suite's rigged constant
// sources would spin a Random-policy Intn forever).
func TestSkipAhead(t *testing.T) {
	const w = 79

	specs := []trackertest.SkipSpec{
		{
			Name: "PrIDE",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				return core.New(core.DefaultConfig(w), r)
			},
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			Prob: core.DefaultConfig(w).InsertionProb,
		},
		{
			// Without transitive protection OnMitigate never draws,
			// covering the pop-only mitigation path.
			Name: "PrIDE-NoTransitive",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				cfg := core.DefaultConfig(w)
				cfg.TransitiveProtection = false
				cfg.InsertionProb = 1.0 / float64(w)
				return core.New(cfg, r)
			},
			Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
				return tr.(*core.PrIDE).Snapshot()
			},
			Prob: 1.0 / float64(w),
		},
		{
			Name: "PARA",
			New: func(r *rng.Stream) tracker.SkipAdvancer {
				return baseline.NewPARA(1.0/float64(w+1), r)
			},
			Prob: 1.0 / float64(w+1),
		},
	}

	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			trackertest.RunSkipAhead(t, s)
		})
	}
}

// TestScheduled runs the scheduled skip-ahead equivalence suite against
// MINT, the one tracker that pre-commits its insertion positions: following
// NextInsert must be bit-identical to stepping every activation.
func TestScheduled(t *testing.T) {
	const w = 79

	trackertest.RunScheduled(t, trackertest.ScheduledSpec{
		Name: "MINT",
		New: func(r *rng.Stream) tracker.ScheduledAdvancer {
			return tracker.NewMINT(w, 17, r)
		},
		Snapshot: func(tr tracker.Tracker) []tracker.Mitigation {
			return tr.(*tracker.MINT).Snapshot()
		},
		Window: w,
	})
}

// TestStorageAudit recomputes each tracker's claimed StorageBits from its
// declared hardware fields, pinning the bit budgets the shootout table and
// the paper comparisons cite. A drift here means either the implementation
// silently grew its hardware cost or the documented budget went stale.
func TestStorageAudit(t *testing.T) {
	const w = 79

	trackertest.RunStorageAudit(t, []trackertest.StorageSpec{
		{
			// The paper's 85-bit budget: four 20-bit entries (17-bit row +
			// 3-bit level) plus the FIFO's PTR and Occ registers.
			Name: "PrIDE",
			New: func() tracker.Tracker {
				return core.New(core.DefaultConfig(w), rng.New(1))
			},
			Fields: []trackertest.StorageField{
				{Name: "entry row register", Bits: 17, Count: 4},
				{Name: "entry level field", Bits: 3, Count: 4},
				{Name: "PTR register", Bits: 2},
				{Name: "Occ register", Bits: 3},
			},
		},
		{
			// MINT's minimalist budget: one slot plus two window counters.
			Name: "MINT",
			New: func() tracker.Tracker {
				return tracker.NewMINT(w, 17, rng.New(1))
			},
			Fields: []trackertest.StorageField{
				{Name: "slot row register", Bits: 17},
				{Name: "slot valid bit", Bits: 1},
				{Name: "interval position counter", Bits: 7}, // 0..79
				{Name: "target position register", Bits: 7},  // 1..79
			},
		},
		{
			// MOAT's SRAM side is just the pending-row register; the per-row
			// activation counters live in the DRAM mats (PRAC) and are
			// accounted separately by DRAMCounterBits.
			Name: "MOAT",
			New: func() tracker.Tracker {
				return tracker.NewMOAT(trackertest.Rows, 10,
					tracker.DefaultMOATATI, tracker.DefaultMOATATO)
			},
			Fields: []trackertest.StorageField{
				{Name: "pending row register", Bits: 10},
				{Name: "pending valid bit", Bits: 1},
			},
		},
		{
			Name: "PARA-DRFM",
			New: func() tracker.Tracker {
				return baseline.NewPARADRFM(1.0/float64(w), 2, 17, rng.New(1))
			},
			Fields: []trackertest.StorageField{
				{Name: "selection row register", Bits: 17},
				{Name: "selection valid bit", Bits: 1},
				{Name: "DRFM pacing counter", Bits: 8},
			},
		},
		{
			Name: "PAR-FM",
			New: func() tracker.Tracker {
				return baseline.NewPARFM(w, 17, rng.New(1))
			},
			Fields: []trackertest.StorageField{
				{Name: "address buffer", Bits: 17, Count: w},
			},
		},
	})
}

// TestMOATDRAMCounterBits pins the in-mat counter budget MOAT's shootout row
// footnotes: one 7-bit counter (0..127) per row.
func TestMOATDRAMCounterBits(t *testing.T) {
	m := tracker.NewMOAT(8192, 13, tracker.DefaultMOATATI, tracker.DefaultMOATATO)
	if got, want := m.DRAMCounterBits(), 8192*7; got != want {
		t.Fatalf("DRAMCounterBits() = %d, want %d (8192 rows x 7-bit PRAC counters)", got, want)
	}
}

// TestSkipAheadGatedOnInsecureAblations pins the safety interlock: the R1/R2
// ablation switches couple insertion to buffer state, so those
// configurations must refuse skip-ahead and run on the exact engine.
func TestSkipAheadGatedOnInsecureAblations(t *testing.T) {
	const w = 79
	base := core.DefaultConfig(w)
	if !core.New(base, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("secure default config reports SupportsSkipAhead() = false")
	}
	r1 := base
	r1.InsecureAlwaysInsertIfInvalid = true
	if core.New(r1, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("InsecureAlwaysInsertIfInvalid config reports SupportsSkipAhead() = true")
	}
	r2 := base
	r2.InsecureSkipDuplicates = true
	if core.New(r2, rng.New(1)).SupportsSkipAhead() {
		t.Fatal("InsecureSkipDuplicates config reports SupportsSkipAhead() = true")
	}
}
