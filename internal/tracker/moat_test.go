package tracker_test

import (
	"testing"

	"pride/internal/tracker"
)

func TestMOATATOCapsUnmitigatedActivations(t *testing.T) {
	const (
		ati = 4
		ato = 10
	)
	m := tracker.NewMOAT(64, 6, ati, ato)

	// Hammer one row with no mitigation opportunities at all: the ALERT at
	// ATO must fire on exactly every ATO-th activation, so no window of ATO
	// consecutive ACTs ever passes unmitigated.
	alerts := 0
	for i := 1; i <= 3*ato; i++ {
		m.OnActivate(7)
		drained := m.DrainImmediate()
		if i%ato == 0 {
			if len(drained) != 1 || drained[0].Row != 7 {
				t.Fatalf("ACT %d: DrainImmediate() = %v, want the ALERT mitigation of row 7", i, drained)
			}
			alerts++
		} else if len(drained) != 0 {
			t.Fatalf("ACT %d: spurious ALERT %v before reaching ATO", i, drained)
		}
	}
	if st := m.Stats(); st.Alerts != uint64(alerts) || alerts != 3 {
		t.Fatalf("Stats().Alerts = %d after %d observed ALERTs, want 3", st.Alerts, alerts)
	}
}

func TestMOATMitigatesHottestPendingRow(t *testing.T) {
	const (
		ati = 3
		ato = 100
	)
	m := tracker.NewMOAT(64, 6, ati, ato)

	// Row 5 crosses ATI first, then row 9 overtakes it.
	for i := 0; i < 3; i++ {
		m.OnActivate(5)
	}
	for i := 0; i < 5; i++ {
		m.OnActivate(9)
	}
	if got := m.Occupancy(); got != 2 {
		t.Fatalf("Occupancy() = %d, want 2 rows at/above ATI", got)
	}
	mit, ok := m.OnMitigate()
	if !ok || mit.Row != 9 {
		t.Fatalf("OnMitigate() = (%v, %v), want the hotter row 9", mit, ok)
	}
	if got := m.Occupancy(); got != 1 {
		t.Fatalf("Occupancy() after mitigating row 9 = %d, want 1 (row 5 still hot)", got)
	}

	// Row 5 is still above ATI but is no longer registered as pending (the
	// register re-arms on the next activation, like the hardware update
	// path).
	if mit, ok := m.OnMitigate(); ok {
		t.Fatalf("OnMitigate() with an empty pending register = (%v, true)", mit)
	}
	m.OnActivate(5)
	if mit, ok := m.OnMitigate(); !ok || mit.Row != 5 {
		t.Fatalf("OnMitigate() = (%v, %v), want row 5 after it re-arms", mit, ok)
	}
	if got := m.Occupancy(); got != 0 {
		t.Fatalf("Occupancy() = %d, want 0 after both rows are mitigated", got)
	}
}

func TestMOATAlertClearsPending(t *testing.T) {
	const (
		ati = 2
		ato = 4
	)
	m := tracker.NewMOAT(16, 4, ati, ato)

	// Drive one row through ATI to pending, then on to ATO: the ALERT resets
	// the counter, so the stale pending register must not produce a second
	// mitigation of the now-cold row.
	for i := 0; i < 4; i++ {
		m.OnActivate(3)
	}
	if drained := m.DrainImmediate(); len(drained) != 1 || drained[0].Row != 3 {
		t.Fatalf("DrainImmediate() = %v, want the ALERT for row 3", drained)
	}
	if mit, ok := m.OnMitigate(); ok {
		t.Fatalf("OnMitigate() after the ALERT already reset row 3 = (%v, true), want no pending row", mit)
	}
}

func TestMOATInvalidConfigPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero rows", func() { tracker.NewMOAT(0, 4, 2, 4) }},
		{"rowBits too narrow", func() { tracker.NewMOAT(32, 4, 2, 4) }},
		{"zero ATI", func() { tracker.NewMOAT(16, 4, 0, 4) }},
		{"ATO not above ATI", func() { tracker.NewMOAT(16, 4, 4, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
