package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pride/internal/addrmap"
)

// The text trace form is line-oriented and diff-friendly — the same role
// patterns' trace files play for attack patterns — so small traces can be
// committed, reviewed, and edited by hand, then converted to the binary
// form for replay at scale:
//
//	# optional comments
//	mapping: col=13 bank=5 row=17 rank=0 chan=0 xor=1
//	act: 163840 163842 4325376
//	act: 163840
//
// The mapping line must appear exactly once, before any act line. Multiple
// act lines concatenate; addresses are decimal physical addresses under the
// declared mapping. Unknown keys are rejected and errors carry line numbers
// (a typo in a hand-edited trace should fail loudly, not silently change
// the experiment).

// WriteText serializes a trace in the text form.
func WriteText(w io.Writer, m addrmap.Mapping, addrs []uint64) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mapping: %s\n", m.String())
	const perLine = 8
	for i := 0; i < len(addrs); i += perLine {
		end := i + perLine
		if end > len(addrs) {
			end = len(addrs)
		}
		fmt.Fprintf(bw, "act:")
		for _, a := range addrs[i:end] {
			fmt.Fprintf(bw, " %d", a)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadText parses a trace from the text form.
func ReadText(r io.Reader) (addrmap.Mapping, []uint64, error) {
	var (
		m        addrmap.Mapping
		compiled addrmap.Compiled
		haveMap  bool
		addrs    []uint64
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, found := strings.Cut(line, ":")
		if !found {
			return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: missing ':' in %q", lineNo, line)
		}
		rest = strings.TrimSpace(rest)
		switch strings.TrimSpace(key) {
		case "mapping":
			if haveMap {
				return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: duplicate mapping line", lineNo)
			}
			parsed, err := addrmap.ParseMapping(rest)
			if err != nil {
				return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			m = parsed
			compiled = m.MustCompile()
			haveMap = true
		case "act":
			if !haveMap {
				return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: act before mapping", lineNo)
			}
			for _, f := range strings.Fields(rest) {
				a, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, f)
				}
				if !compiled.InRange(a) {
					return addrmap.Mapping{}, nil, fmt.Errorf(
						"trace: line %d: address %d has bits outside the %d-bit mapping",
						lineNo, a, compiled.AddrBits())
				}
				addrs = append(addrs, a)
			}
		default:
			return addrmap.Mapping{}, nil, fmt.Errorf("trace: line %d: unknown key %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return addrmap.Mapping{}, nil, fmt.Errorf("trace: reading: %v", err)
	}
	if !haveMap {
		return addrmap.Mapping{}, nil, fmt.Errorf("trace: missing mapping line")
	}
	return m, addrs, nil
}
