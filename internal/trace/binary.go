package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pride/internal/addrmap"
)

// Binary trace layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "PRIDEACT"
//	8       4     format version (currently 1)
//	12      1     mapping column bits
//	13      1     mapping bank bits
//	14      1     mapping row bits
//	15      1     mapping rank bits
//	16      1     mapping channel bits
//	17      1     flags: bit 0 = XOR bank hash; other bits must be zero
//	18      6     reserved, must be zero
//	24      8     record count
//	32      8×N   records: one physical address per ACT
//
// The header is self-describing (the mapping travels with the records), the
// count is declared up front so a torn tail is detectable, and every record
// must be representable under the mapping — the decoder rejects anything
// else, in the same fail-loudly spirit as patterns.ReadTrace.

// Magic identifies a binary ACT trace; format sniffers compare the first
// eight bytes against it.
const Magic = "PRIDEACT"

// Version is the binary format version this package reads and writes.
const Version = 1

// HeaderSize is the fixed size of the binary trace header in bytes.
const HeaderSize = 32

// RecordSize is the fixed size of one ACT record in bytes.
const RecordSize = 8

var errEOF = io.EOF

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Reader streams records from a binary ACT trace. It buffers internally
// (one fixed buffer allocated at construction) and decodes with zero
// allocations per record; feed it batches via ReadBatch and reuse the batch
// slice across calls. Reader implements Source.
type Reader struct {
	r        io.Reader
	compiled addrmap.Compiled
	count    uint64
	read     uint64
	crc      uint32
	buf      []byte
	start    int
	end      int
	done     bool // trailing-data check performed
}

// readerBufSize is the Reader's internal buffer: large enough that the
// underlying reads amortize to nothing, small enough to stay cache-friendly.
const readerBufSize = 64 * 1024

// NewReader reads and validates the binary header from r and returns a
// Reader positioned at the first record. It rejects a bad magic, an
// unsupported version, nonzero reserved bytes or flags, and a mapping that
// does not Validate.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{buf: make([]byte, readerBufSize)}
	if err := tr.Reset(r); err != nil {
		return nil, err
	}
	return tr, nil
}

// Reset repositions tr at the first record of a new trace read from r,
// validating its header exactly as NewReader does. The internal buffer is
// reused, so a long-running consumer can decode any number of traces through
// one Reader with zero further allocations. On error tr is left unusable
// until a subsequent successful Reset.
func (tr *Reader) Reset(r io.Reader) error {
	*tr = Reader{buf: tr.buf}
	// The record buffer is empty here, so its first bytes can stage the
	// header without an extra (escaping) scratch array.
	hdr := tr.buf[:HeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("trace: reading header: %v", err)
	}
	tr.crc = crc32.Update(0, castagnoli, hdr)
	if string(hdr[0:8]) != Magic {
		return fmt.Errorf("trace: bad magic %q, want %q", hdr[0:8], Magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return fmt.Errorf("trace: unsupported format version %d, want %d", v, Version)
	}
	m := addrmap.Mapping{
		ColumnBits:  int(hdr[12]),
		BankBits:    int(hdr[13]),
		RowBits:     int(hdr[14]),
		RankBits:    int(hdr[15]),
		ChannelBits: int(hdr[16]),
	}
	switch hdr[17] {
	case 0:
	case 1:
		m.XORBankHash = true
	default:
		return fmt.Errorf("trace: unknown flag bits %#x", hdr[17])
	}
	for _, b := range hdr[18:24] {
		if b != 0 {
			return fmt.Errorf("trace: reserved header bytes are not zero")
		}
	}
	compiled, err := m.Compile()
	if err != nil {
		return fmt.Errorf("trace: header mapping: %v", err)
	}
	tr.r = r
	tr.compiled = compiled
	tr.count = binary.LittleEndian.Uint64(hdr[24:32])
	return nil
}

// Mapping returns the address mapping declared in the header.
func (tr *Reader) Mapping() addrmap.Mapping { return tr.compiled.Mapping() }

// offset returns the byte offset of the next undecoded record: where in the
// stream a decode error is located. Multi-GB traces make "record N" alone
// useless for dd/xxd forensics, so every record-level error carries both the
// record index and this offset.
func (tr *Reader) offset() uint64 { return HeaderSize + tr.read*RecordSize }

// Count returns the record count declared in the header.
func (tr *Reader) Count() uint64 { return tr.count }

// CRC32 returns the CRC-32C of every byte consumed so far (header
// included). After the stream is drained it fingerprints the whole trace,
// which the replay campaign folds into its checkpoint key.
func (tr *Reader) CRC32() uint32 { return tr.crc }

// ReadBatch implements Source: it fills dst with up to len(dst) records and
// returns how many it wrote. At the end of the stream it verifies that
// exactly the declared count was present — a torn tail (fewer bytes than
// declared) and trailing data (more) are both errors — and returns io.EOF.
func (tr *Reader) ReadBatch(dst []uint64) (int, error) {
	if tr.read == tr.count {
		if err := tr.checkTrailing(); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && tr.read < tr.count {
		if tr.end-tr.start < RecordSize {
			if err := tr.fill(); err != nil {
				return n, err
			}
		}
		addr := binary.LittleEndian.Uint64(tr.buf[tr.start:])
		if !tr.compiled.InRange(addr) {
			return n, fmt.Errorf("trace: record %d (byte offset %d): address %#x has bits outside the %d-bit mapping",
				tr.read, tr.offset(), addr, tr.compiled.AddrBits())
		}
		tr.start += RecordSize
		dst[n] = addr
		n++
		tr.read++
	}
	return n, nil
}

// fill compacts the buffer and reads until at least one whole record is
// available. EOF before the declared count is a torn tail.
func (tr *Reader) fill() error {
	copy(tr.buf, tr.buf[tr.start:tr.end])
	tr.end -= tr.start
	tr.start = 0
	for tr.end < RecordSize {
		m, err := tr.r.Read(tr.buf[tr.end:])
		if m > 0 {
			tr.crc = crc32.Update(tr.crc, castagnoli, tr.buf[tr.end:tr.end+m])
			tr.end += m
		}
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("trace: torn tail: header declares %d records, stream ends after %d (byte offset %d)",
					tr.count, tr.read, tr.offset())
			}
			return fmt.Errorf("trace: reading record %d (byte offset %d): %v", tr.read, tr.offset(), err)
		}
	}
	return nil
}

// checkTrailing verifies nothing follows the declared records.
func (tr *Reader) checkTrailing() error {
	if tr.done {
		return nil
	}
	tr.done = true
	if tr.end > tr.start {
		return fmt.Errorf("trace: %d trailing bytes after %d declared records (byte offset %d)",
			tr.end-tr.start, tr.count, tr.offset())
	}
	m, err := tr.r.Read(tr.buf[:1])
	if m > 0 {
		return fmt.Errorf("trace: trailing data after %d declared records (byte offset %d)", tr.count, tr.offset())
	}
	if err != nil && err != io.EOF {
		return fmt.Errorf("trace: reading past record %d (byte offset %d): %v", tr.read, tr.offset(), err)
	}
	return nil
}

// Writer emits a binary ACT trace. The record count is declared up front
// (NewWriter writes the complete header immediately, so the output never
// needs seeking); Close fails if the appended records don't match it.
type Writer struct {
	w       *bufio.Writer
	m       addrmap.Compiled
	count   uint64
	written uint64
}

// NewWriter writes the header for a trace of exactly count records under
// mapping m and returns a Writer for appending them.
func NewWriter(w io.Writer, m addrmap.Mapping, count uint64) (*Writer, error) {
	compiled, err := m.Compile()
	if err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	var hdr [HeaderSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	hdr[12] = uint8(m.ColumnBits)
	hdr[13] = uint8(m.BankBits)
	hdr[14] = uint8(m.RowBits)
	hdr[15] = uint8(m.RankBits)
	hdr[16] = uint8(m.ChannelBits)
	if m.XORBankHash {
		hdr[17] = 1
	}
	binary.LittleEndian.PutUint64(hdr[24:32], count)
	bw := bufio.NewWriterSize(w, readerBufSize)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %v", err)
	}
	return &Writer{w: bw, m: compiled, count: count}, nil
}

// WriteBatch appends records. Every address must be representable under the
// mapping, and the total may not exceed the declared count.
func (tw *Writer) WriteBatch(addrs []uint64) error {
	if tw.written+uint64(len(addrs)) > tw.count {
		return fmt.Errorf("trace: writing past the declared count of %d records", tw.count)
	}
	var rec [RecordSize]byte
	for _, addr := range addrs {
		if !tw.m.InRange(addr) {
			return fmt.Errorf("trace: record %d: address %#x has bits outside the %d-bit mapping",
				tw.written, addr, tw.m.AddrBits())
		}
		binary.LittleEndian.PutUint64(rec[:], addr)
		if _, err := tw.w.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing record %d: %v", tw.written, err)
		}
		tw.written++
	}
	return nil
}

// Close flushes the writer and verifies the declared count was met. It does
// not close the underlying io.Writer.
func (tw *Writer) Close() error {
	if tw.written != tw.count {
		return fmt.Errorf("trace: header declares %d records but %d were written", tw.count, tw.written)
	}
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %v", err)
	}
	return nil
}

// WriteAll writes a complete binary trace for an in-memory record slice.
func WriteAll(w io.Writer, m addrmap.Mapping, addrs []uint64) error {
	tw, err := NewWriter(w, m, uint64(len(addrs)))
	if err != nil {
		return err
	}
	if err := tw.WriteBatch(addrs); err != nil {
		return err
	}
	return tw.Close()
}

// ReadAll decodes a complete binary trace into memory: the convenience form
// for tests and small traces. Replay paths should stream via Reader instead.
func ReadAll(r io.Reader) (addrmap.Mapping, []uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return addrmap.Mapping{}, nil, err
	}
	addrs, err := Drain(tr, nil)
	if err != nil {
		return addrmap.Mapping{}, nil, err
	}
	return tr.Mapping(), addrs, nil
}

// Drain appends every remaining record of src to dst and returns it.
func Drain(src Source, dst []uint64) ([]uint64, error) {
	var batch [4096]uint64
	for {
		n, err := src.ReadBatch(batch[:])
		dst = append(dst, batch[:n]...)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
